/**
 * @file
 * Time-frame expansion of a Circuit into CNF for bounded model checking
 * and k-induction.
 */

#ifndef CSL_BITBLAST_UNROLLER_H_
#define CSL_BITBLAST_UNROLLER_H_

#include <vector>

#include "bitblast/cnf_builder.h"
#include "bitblast/encoder.h"
#include "rtl/circuit.h"

namespace csl::bitblast {

/**
 * Maintains an incrementally growing unrolling of a circuit.
 *
 * Frame f holds the values of all cone nets at cycle f. Constraint nets
 * are asserted as unit clauses in every frame as it is created; init
 * constraints are asserted at frame 0 unless the initial state is free
 * (the k-induction step case).
 */
class Unroller
{
  public:
    /**
     * @param circuit            finalized circuit
     * @param cnf                CNF sink (owning solver shared by caller)
     * @param free_initial_state when true, frame-0 registers are fresh
     *                           variables and init constraints are skipped
     * @param extra_roots        additional nets to keep inside the encoded
     *                           cone (e.g. candidate invariants)
     */
    Unroller(const rtl::Circuit &circuit, CnfBuilder &cnf,
             bool free_initial_state,
             const std::vector<rtl::NetId> &extra_roots = {});

    /** Number of encoded frames. */
    size_t numFrames() const { return frames_.size(); }

    /** Encode one more frame. */
    void addFrame();

    /** Encode frames until numFrames() == n. */
    void
    ensureFrames(size_t n)
    {
        while (numFrames() < n)
            addFrame();
    }

    /** OR of all bad nets at @p frame. */
    sat::Lit badLit(size_t frame) const { return badLits_[frame]; }

    /** Word of @p net at @p frame (net must be inside the cone). */
    const Word &wordOf(rtl::NetId net, size_t frame) const;

    /** Model value of @p net at @p frame after a Sat result. */
    uint64_t valueOf(rtl::NetId net, size_t frame) const;

    const std::vector<bool> &cone() const { return cone_; }

  private:
    const rtl::Circuit &circuit_;
    CnfBuilder &cnf_;
    bool freeInitialState_;
    std::vector<bool> cone_;

    std::vector<std::vector<Word>> frames_; ///< per-frame net words
    std::vector<sat::Lit> badLits_;
    std::vector<Word> nextRegWords_; ///< register state entering next frame
};

} // namespace csl::bitblast

#endif // CSL_BITBLAST_UNROLLER_H_
