/**
 * @file
 * Encodes one combinational time-frame of a Circuit into CNF.
 */

#ifndef CSL_BITBLAST_ENCODER_H_
#define CSL_BITBLAST_ENCODER_H_

#include <vector>

#include "bitblast/cnf_builder.h"
#include "rtl/circuit.h"

namespace csl::bitblast {

/**
 * Per-frame net encoding. Register nets take their words from the caller
 * (the Unroller threads state across frames); everything else is encoded
 * on demand in net-id order, restricted to the cone of influence.
 */
class FrameEncoder
{
  public:
    /**
     * @param circuit  finalized circuit
     * @param cnf      CNF sink
     * @param cone     cone-of-influence bitmap (from Circuit); nets
     *                 outside the cone get no encoding
     */
    FrameEncoder(const rtl::Circuit &circuit, CnfBuilder &cnf,
                 const std::vector<bool> &cone);

    /**
     * Encode a frame. @p reg_words supplies the current-state word of
     * every register in the cone (indexed by NetId). On return,
     * words()[id] holds each cone net's word for this frame.
     */
    void encode(const std::vector<Word> &reg_words);

    const Word &word(rtl::NetId id) const { return words_[id]; }
    const std::vector<Word> &words() const { return words_; }

  private:
    const rtl::Circuit &circuit_;
    CnfBuilder &cnf_;
    const std::vector<bool> &cone_;
    std::vector<Word> words_;
};

} // namespace csl::bitblast

#endif // CSL_BITBLAST_ENCODER_H_
