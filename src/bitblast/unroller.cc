#include "bitblast/unroller.h"

#include "base/logging.h"
#include "rtl/transform/passes.h"

namespace csl::bitblast {

using rtl::Net;
using rtl::NetId;
using rtl::Op;

Unroller::Unroller(const rtl::Circuit &circuit, CnfBuilder &cnf,
                   bool free_initial_state,
                   const std::vector<rtl::NetId> &extra_roots)
    : circuit_(circuit), cnf_(cnf), freeInitialState_(free_initial_state),
      cone_(rtl::transform::propertyCone(circuit, extra_roots))
{
    // Prepare frame-0 register state.
    nextRegWords_.assign(circuit_.numNets(), {});
    for (NetId reg : circuit_.registers()) {
        if (!cone_[reg])
            continue;
        const Net &n = circuit_.net(reg);
        if (freeInitialState_ || n.symbolicInit)
            nextRegWords_[reg] = cnf_.freshWord(n.width);
        else
            nextRegWords_[reg] = cnf_.constWord(n.imm, n.width);
    }
}

void
Unroller::addFrame()
{
    FrameEncoder encoder(circuit_, cnf_, cone_);
    encoder.encode(nextRegWords_);
    const size_t frame = frames_.size();

    // Environment assumptions hold in every frame.
    for (NetId c : circuit_.constraints())
        cnf_.assertLit(encoder.word(c)[0]);
    if (frame == 0 && !freeInitialState_) {
        for (NetId c : circuit_.initConstraints())
            cnf_.assertLit(encoder.word(c)[0]);
    }

    std::vector<sat::Lit> bads;
    bads.reserve(circuit_.bads().size());
    for (NetId b : circuit_.bads())
        bads.push_back(encoder.word(b)[0]);
    badLits_.push_back(cnf_.orAll(bads));

    // Thread register state into the next frame.
    for (NetId reg : circuit_.registers()) {
        if (!cone_[reg])
            continue;
        nextRegWords_[reg] = encoder.word(circuit_.net(reg).a);
    }

    frames_.push_back(encoder.words());
}

const Word &
Unroller::wordOf(NetId net, size_t frame) const
{
    csl_assert(frame < frames_.size(), "frame out of range");
    csl_assert(cone_[net], "net ", circuit_.name(net),
               " is outside the property cone");
    return frames_[frame][net];
}

uint64_t
Unroller::valueOf(NetId net, size_t frame) const
{
    return cnf_.wordValue(wordOf(net, frame));
}

} // namespace csl::bitblast
