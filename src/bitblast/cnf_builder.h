/**
 * @file
 * Tseitin-style CNF construction over a Solver: boolean gates plus
 * word-level operations on little-endian literal vectors.
 */

#ifndef CSL_BITBLAST_CNF_BUILDER_H_
#define CSL_BITBLAST_CNF_BUILDER_H_

#include <cstdint>
#include <vector>

#include "sat/solver.h"

namespace csl::bitblast {

/** A word as a little-endian vector of literals (bit 0 first). */
using Word = std::vector<sat::Lit>;

/**
 * Emits Tseitin clauses into a Solver. Gate constructors perform constant
 * propagation against the dedicated true literal, so folded circuit logic
 * stays folded in CNF.
 */
class CnfBuilder
{
  public:
    explicit CnfBuilder(sat::Solver &solver);

    sat::Solver &solver() { return solver_; }

    /** The always-true literal. */
    sat::Lit trueLit() const { return true_; }
    sat::Lit falseLit() const { return ~true_; }
    sat::Lit litConst(bool b) const { return b ? true_ : ~true_; }

    /** Fresh unconstrained literal. */
    sat::Lit fresh();

    // --- Gates -----------------------------------------------------------
    sat::Lit andLit(sat::Lit a, sat::Lit b);
    sat::Lit orLit(sat::Lit a, sat::Lit b);
    sat::Lit xorLit(sat::Lit a, sat::Lit b);
    sat::Lit muxLit(sat::Lit sel, sat::Lit then_l, sat::Lit else_l);
    sat::Lit eqLit(sat::Lit a, sat::Lit b) { return ~xorLit(a, b); }
    sat::Lit andAll(const std::vector<sat::Lit> &lits);
    sat::Lit orAll(const std::vector<sat::Lit> &lits);

    /** Force @p l true (unit clause). */
    void assertLit(sat::Lit l) { solver_.addClause(l); }

    // --- Words -----------------------------------------------------------
    Word constWord(uint64_t value, int width);
    Word freshWord(int width);
    Word notWord(const Word &a);
    Word andWord(const Word &a, const Word &b);
    Word orWord(const Word &a, const Word &b);
    Word xorWord(const Word &a, const Word &b);
    Word muxWord(sat::Lit sel, const Word &then_w, const Word &else_w);
    Word addWord(const Word &a, const Word &b);
    Word subWord(const Word &a, const Word &b);
    Word mulWord(const Word &a, const Word &b);
    sat::Lit eqWord(const Word &a, const Word &b);
    sat::Lit ultWord(const Word &a, const Word &b);

    /** Model value of @p w after a Sat result. */
    uint64_t wordValue(const Word &w) const;

  private:
    bool isTrue(sat::Lit l) const { return l == true_; }
    bool isFalse(sat::Lit l) const { return l == ~true_; }
    bool isConst(sat::Lit l) const { return isTrue(l) || isFalse(l); }

    /** Ripple adder core with carry-in. */
    Word adder(const Word &a, const Word &b, sat::Lit carry_in);

    sat::Solver &solver_;
    sat::Lit true_;
};

} // namespace csl::bitblast

#endif // CSL_BITBLAST_CNF_BUILDER_H_
