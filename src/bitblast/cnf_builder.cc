#include "bitblast/cnf_builder.h"

#include "base/bits.h"
#include "base/logging.h"

namespace csl::bitblast {

using sat::Lit;

CnfBuilder::CnfBuilder(sat::Solver &solver) : solver_(solver)
{
    true_ = sat::mkLit(solver_.newVar());
    solver_.addClause(true_);
}

Lit
CnfBuilder::fresh()
{
    return sat::mkLit(solver_.newVar());
}

Lit
CnfBuilder::andLit(Lit a, Lit b)
{
    if (isFalse(a) || isFalse(b))
        return falseLit();
    if (isTrue(a))
        return b;
    if (isTrue(b))
        return a;
    if (a == b)
        return a;
    if (a == ~b)
        return falseLit();
    Lit y = fresh();
    solver_.addClause(~y, a);
    solver_.addClause(~y, b);
    solver_.addClause(y, ~a, ~b);
    return y;
}

Lit
CnfBuilder::orLit(Lit a, Lit b)
{
    return ~andLit(~a, ~b);
}

Lit
CnfBuilder::xorLit(Lit a, Lit b)
{
    if (isConst(a) && isConst(b))
        return litConst(isTrue(a) != isTrue(b));
    if (isFalse(a))
        return b;
    if (isFalse(b))
        return a;
    if (isTrue(a))
        return ~b;
    if (isTrue(b))
        return ~a;
    if (a == b)
        return falseLit();
    if (a == ~b)
        return trueLit();
    Lit y = fresh();
    solver_.addClause(~y, a, b);
    solver_.addClause(~y, ~a, ~b);
    solver_.addClause(y, ~a, b);
    solver_.addClause(y, a, ~b);
    return y;
}

Lit
CnfBuilder::muxLit(Lit sel, Lit then_l, Lit else_l)
{
    if (isTrue(sel))
        return then_l;
    if (isFalse(sel))
        return else_l;
    if (then_l == else_l)
        return then_l;
    if (isTrue(then_l) && isFalse(else_l))
        return sel;
    if (isFalse(then_l) && isTrue(else_l))
        return ~sel;
    if (isFalse(then_l))
        return andLit(~sel, else_l);
    if (isTrue(then_l))
        return orLit(sel, else_l);
    if (isFalse(else_l))
        return andLit(sel, then_l);
    if (isTrue(else_l))
        return orLit(~sel, then_l);
    Lit y = fresh();
    solver_.addClause(~y, ~sel, then_l);
    solver_.addClause(~y, sel, else_l);
    solver_.addClause(y, ~sel, ~then_l);
    solver_.addClause(y, sel, ~else_l);
    // Redundant but propagation-friendly clauses.
    solver_.addClause(~y, then_l, else_l);
    solver_.addClause(y, ~then_l, ~else_l);
    return y;
}

Lit
CnfBuilder::andAll(const std::vector<Lit> &lits)
{
    Lit acc = trueLit();
    for (Lit l : lits)
        acc = andLit(acc, l);
    return acc;
}

Lit
CnfBuilder::orAll(const std::vector<Lit> &lits)
{
    Lit acc = falseLit();
    for (Lit l : lits)
        acc = orLit(acc, l);
    return acc;
}

// ---------------------------------------------------------------------------
// Words

Word
CnfBuilder::constWord(uint64_t value, int width)
{
    Word w(width);
    for (int i = 0; i < width; ++i)
        w[i] = litConst(bitAt(value, i));
    return w;
}

Word
CnfBuilder::freshWord(int width)
{
    Word w(width);
    for (int i = 0; i < width; ++i)
        w[i] = fresh();
    return w;
}

Word
CnfBuilder::notWord(const Word &a)
{
    Word w(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        w[i] = ~a[i];
    return w;
}

Word
CnfBuilder::andWord(const Word &a, const Word &b)
{
    csl_assert(a.size() == b.size(), "word width mismatch");
    Word w(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        w[i] = andLit(a[i], b[i]);
    return w;
}

Word
CnfBuilder::orWord(const Word &a, const Word &b)
{
    csl_assert(a.size() == b.size(), "word width mismatch");
    Word w(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        w[i] = orLit(a[i], b[i]);
    return w;
}

Word
CnfBuilder::xorWord(const Word &a, const Word &b)
{
    csl_assert(a.size() == b.size(), "word width mismatch");
    Word w(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        w[i] = xorLit(a[i], b[i]);
    return w;
}

Word
CnfBuilder::muxWord(Lit sel, const Word &then_w, const Word &else_w)
{
    csl_assert(then_w.size() == else_w.size(), "word width mismatch");
    Word w(then_w.size());
    for (size_t i = 0; i < then_w.size(); ++i)
        w[i] = muxLit(sel, then_w[i], else_w[i]);
    return w;
}

Word
CnfBuilder::adder(const Word &a, const Word &b, Lit carry_in)
{
    Word sum(a.size());
    Lit carry = carry_in;
    for (size_t i = 0; i < a.size(); ++i) {
        Lit axb = xorLit(a[i], b[i]);
        sum[i] = xorLit(axb, carry);
        // carry' = (a & b) | (carry & (a ^ b))
        carry = orLit(andLit(a[i], b[i]), andLit(carry, axb));
    }
    return sum;
}

Word
CnfBuilder::addWord(const Word &a, const Word &b)
{
    csl_assert(a.size() == b.size(), "word width mismatch");
    return adder(a, b, falseLit());
}

Word
CnfBuilder::subWord(const Word &a, const Word &b)
{
    csl_assert(a.size() == b.size(), "word width mismatch");
    return adder(a, notWord(b), trueLit());
}

Word
CnfBuilder::mulWord(const Word &a, const Word &b)
{
    csl_assert(a.size() == b.size(), "word width mismatch");
    const int width = static_cast<int>(a.size());
    Word acc = constWord(0, width);
    for (int i = 0; i < width; ++i) {
        // addend = (a << i) gated by b[i], truncated to width.
        Word addend = constWord(0, width);
        for (int j = 0; j + i < width; ++j)
            addend[j + i] = andLit(a[j], b[i]);
        acc = addWord(acc, addend);
    }
    return acc;
}

Lit
CnfBuilder::eqWord(const Word &a, const Word &b)
{
    csl_assert(a.size() == b.size(), "word width mismatch");
    std::vector<Lit> bits(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        bits[i] = eqLit(a[i], b[i]);
    return andAll(bits);
}

Lit
CnfBuilder::ultWord(const Word &a, const Word &b)
{
    csl_assert(a.size() == b.size(), "word width mismatch");
    Lit lt = falseLit();
    for (size_t i = 0; i < a.size(); ++i) {
        // From LSB to MSB: higher bits dominate.
        Lit bit_lt = andLit(~a[i], b[i]);
        Lit bit_eq = eqLit(a[i], b[i]);
        lt = orLit(bit_lt, andLit(bit_eq, lt));
    }
    return lt;
}

uint64_t
CnfBuilder::wordValue(const Word &w) const
{
    uint64_t v = 0;
    for (size_t i = 0; i < w.size(); ++i)
        if (solver_.modelValue(w[i]))
            v |= 1ull << i;
    return v;
}

} // namespace csl::bitblast
