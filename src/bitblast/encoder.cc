#include "bitblast/encoder.h"

#include "base/logging.h"

namespace csl::bitblast {

using rtl::Net;
using rtl::NetId;
using rtl::Op;

FrameEncoder::FrameEncoder(const rtl::Circuit &circuit, CnfBuilder &cnf,
                           const std::vector<bool> &cone)
    : circuit_(circuit), cnf_(cnf), cone_(cone)
{
    csl_assert(circuit.finalized(), "encode requires a finalized circuit");
}

void
FrameEncoder::encode(const std::vector<Word> &reg_words)
{
    const NetId count = static_cast<NetId>(circuit_.numNets());
    words_.assign(count, {});
    for (NetId id = 0; id < count; ++id) {
        if (!cone_[id])
            continue;
        const Net &n = circuit_.net(id);
        switch (n.op) {
          case Op::Const:
            words_[id] = cnf_.constWord(n.imm, n.width);
            break;
          case Op::Input:
            words_[id] = cnf_.freshWord(n.width);
            break;
          case Op::Reg:
            csl_assert(!reg_words[id].empty(),
                       "missing register word for ", circuit_.name(id));
            words_[id] = reg_words[id];
            break;
          case Op::Not:
            words_[id] = cnf_.notWord(words_[n.a]);
            break;
          case Op::And:
            words_[id] = cnf_.andWord(words_[n.a], words_[n.b]);
            break;
          case Op::Or:
            words_[id] = cnf_.orWord(words_[n.a], words_[n.b]);
            break;
          case Op::Xor:
            words_[id] = cnf_.xorWord(words_[n.a], words_[n.b]);
            break;
          case Op::Mux:
            words_[id] = cnf_.muxWord(words_[n.a][0], words_[n.b],
                                      words_[n.c]);
            break;
          case Op::Add:
            words_[id] = cnf_.addWord(words_[n.a], words_[n.b]);
            break;
          case Op::Sub:
            words_[id] = cnf_.subWord(words_[n.a], words_[n.b]);
            break;
          case Op::Mul:
            words_[id] = cnf_.mulWord(words_[n.a], words_[n.b]);
            break;
          case Op::Eq:
            words_[id] = {cnf_.eqWord(words_[n.a], words_[n.b])};
            break;
          case Op::Ult:
            words_[id] = {cnf_.ultWord(words_[n.a], words_[n.b])};
            break;
          case Op::Concat: {
            Word w = words_[n.b];
            const Word &hi = words_[n.a];
            w.insert(w.end(), hi.begin(), hi.end());
            words_[id] = std::move(w);
            break;
          }
          case Op::Slice: {
            const Word &src = words_[n.a];
            words_[id] = Word(src.begin() + n.imm,
                              src.begin() + n.imm + n.width);
            break;
          }
        }
        csl_assert(static_cast<int>(words_[id].size()) == n.width,
                   "encoded width mismatch at net ", id);
    }
}

} // namespace csl::bitblast
