/**
 * @file
 * Cycle-accurate interpreter for the RTL IR - the library's Verilator
 * analog. Used by the tandem functional tests, the differential fuzzer,
 * and to replay model-checker counterexamples as concrete waveforms.
 */

#ifndef CSL_SIM_SIMULATOR_H_
#define CSL_SIM_SIMULATOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rtl/circuit.h"

namespace csl::sim {

/**
 * Interprets a finalized Circuit cycle by cycle.
 *
 * Net ids are a valid combinational evaluation order by construction
 * (only registers may reference later nets), so each cycle is a single
 * linear sweep followed by a register update.
 */
class Simulator
{
  public:
    explicit Simulator(const rtl::Circuit &circuit);

    /** Reset registers to initial values; symbolic registers get 0. */
    void reset();

    /**
     * Reset with explicit values for symbolic-init registers (and
     * optionally overriding concrete ones). Keys are register net ids.
     */
    void reset(const std::unordered_map<rtl::NetId, uint64_t> &init_values);

    /**
     * Evaluate combinational logic for the current cycle with the given
     * input values (keyed by input net id; missing inputs read as 0).
     * After this, value() returns this cycle's settled values.
     */
    void evaluate(const std::unordered_map<rtl::NetId, uint64_t> &inputs = {});

    /** Latch register next-states; call after evaluate() to end a cycle. */
    void tick();

    /** evaluate() + tick() in one call. */
    void
    step(const std::unordered_map<rtl::NetId, uint64_t> &inputs = {})
    {
        evaluate(inputs);
        tick();
    }

    /** Settled value of @p net for the cycle last evaluated. */
    uint64_t value(rtl::NetId net) const { return values_[net]; }

    /** True when every constraint net evaluated to 1 this cycle. */
    bool constraintsHold() const;

    /** True when every init-constraint net evaluated to 1 (cycle 0). */
    bool initConstraintsHold() const;

    /** True when any bad net evaluated to 1 this cycle. */
    bool anyBad() const;

    /** Number of completed ticks since the last reset. */
    uint64_t cycle() const { return cycle_; }

  private:
    const rtl::Circuit &circuit_;
    std::vector<uint64_t> values_;   ///< per-net settled values
    std::vector<uint64_t> state_;    ///< register file, indexed like values_
    uint64_t cycle_ = 0;
    bool evaluated_ = false;
};

} // namespace csl::sim

#endif // CSL_SIM_SIMULATOR_H_
