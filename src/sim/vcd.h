/**
 * @file
 * Minimal VCD (value change dump) writer so simulations and replayed
 * counterexample traces can be inspected in a standard waveform viewer.
 */

#ifndef CSL_SIM_VCD_H_
#define CSL_SIM_VCD_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "rtl/circuit.h"
#include "sim/simulator.h"

namespace csl::sim {

/** Streams selected nets of a running simulation into VCD format. */
class VcdWriter
{
  public:
    /**
     * @param os       output stream (kept by reference; must outlive this)
     * @param circuit  the circuit being simulated
     * @param nets     nets to dump; empty means "all named nets"
     */
    VcdWriter(std::ostream &os, const rtl::Circuit &circuit,
              std::vector<rtl::NetId> nets = {});

    /** Record the simulator's settled values for the current cycle. */
    void sample(const Simulator &sim);

  private:
    std::ostream &os_;
    const rtl::Circuit &circuit_;
    std::vector<rtl::NetId> nets_;
    std::vector<std::string> codes_;
    std::vector<uint64_t> last_;
    uint64_t time_ = 0;
    bool first_ = true;
};

} // namespace csl::sim

#endif // CSL_SIM_VCD_H_
