#include "sim/simulator.h"

#include "base/bits.h"
#include "base/logging.h"

namespace csl::sim {

using rtl::Net;
using rtl::NetId;
using rtl::Op;

Simulator::Simulator(const rtl::Circuit &circuit) : circuit_(circuit)
{
    csl_assert(circuit.finalized(), "simulate requires a finalized circuit");
    values_.resize(circuit.numNets(), 0);
    state_.resize(circuit.numNets(), 0);
    reset();
}

void
Simulator::reset()
{
    reset({});
}

void
Simulator::reset(const std::unordered_map<NetId, uint64_t> &init_values)
{
    cycle_ = 0;
    evaluated_ = false;
    for (NetId reg : circuit_.registers()) {
        const Net &n = circuit_.net(reg);
        uint64_t v = n.symbolicInit ? 0 : n.imm;
        auto it = init_values.find(reg);
        if (it != init_values.end())
            v = it->second;
        state_[reg] = truncBits(v, n.width);
    }
}

void
Simulator::evaluate(const std::unordered_map<NetId, uint64_t> &inputs)
{
    const NetId count = static_cast<NetId>(circuit_.numNets());
    for (NetId id = 0; id < count; ++id) {
        const Net &n = circuit_.net(id);
        uint64_t v = 0;
        switch (n.op) {
          case Op::Const:
            v = n.imm;
            break;
          case Op::Input: {
            auto it = inputs.find(id);
            v = it == inputs.end() ? 0 : truncBits(it->second, n.width);
            break;
          }
          case Op::Reg:
            v = state_[id];
            break;
          case Op::Not:
            v = ~values_[n.a];
            break;
          case Op::And:
            v = values_[n.a] & values_[n.b];
            break;
          case Op::Or:
            v = values_[n.a] | values_[n.b];
            break;
          case Op::Xor:
            v = values_[n.a] ^ values_[n.b];
            break;
          case Op::Mux:
            v = values_[n.a] ? values_[n.b] : values_[n.c];
            break;
          case Op::Add:
            v = values_[n.a] + values_[n.b];
            break;
          case Op::Sub:
            v = values_[n.a] - values_[n.b];
            break;
          case Op::Mul:
            v = values_[n.a] * values_[n.b];
            break;
          case Op::Eq:
            v = values_[n.a] == values_[n.b];
            break;
          case Op::Ult:
            v = values_[n.a] < values_[n.b];
            break;
          case Op::Concat:
            v = (values_[n.a] << circuit_.net(n.b).width) | values_[n.b];
            break;
          case Op::Slice:
            v = values_[n.a] >> n.imm;
            break;
        }
        values_[id] = truncBits(v, n.width);
    }
    evaluated_ = true;
}

void
Simulator::tick()
{
    csl_assert(evaluated_, "tick() before evaluate()");
    for (NetId reg : circuit_.registers()) {
        const Net &n = circuit_.net(reg);
        state_[reg] = values_[n.a];
    }
    ++cycle_;
    evaluated_ = false;
}

bool
Simulator::constraintsHold() const
{
    for (NetId id : circuit_.constraints())
        if (!values_[id])
            return false;
    return true;
}

bool
Simulator::initConstraintsHold() const
{
    for (NetId id : circuit_.initConstraints())
        if (!values_[id])
            return false;
    return true;
}

bool
Simulator::anyBad() const
{
    for (NetId id : circuit_.bads())
        if (values_[id])
            return true;
    return false;
}

} // namespace csl::sim
