#include "sim/vcd.h"

#include "base/bits.h"

namespace csl::sim {

namespace {

/** VCD identifier codes: printable ASCII strings, base-94. */
std::string
vcdCode(size_t index)
{
    std::string code;
    do {
        code.push_back(static_cast<char>('!' + index % 94));
        index /= 94;
    } while (index > 0);
    return code;
}

/** Binary rendering of @p value at @p width bits. */
std::string
binary(uint64_t value, int width)
{
    std::string s(width, '0');
    for (int i = 0; i < width; ++i)
        if (bitAt(value, i))
            s[width - 1 - i] = '1';
    return s;
}

} // namespace

VcdWriter::VcdWriter(std::ostream &os, const rtl::Circuit &circuit,
                     std::vector<rtl::NetId> nets)
    : os_(os), circuit_(circuit), nets_(std::move(nets))
{
    if (nets_.empty()) {
        for (rtl::NetId id = 0;
             id < static_cast<rtl::NetId>(circuit_.numNets()); ++id) {
            // "Named" nets are the interesting ones; generated names
            // contain '#'.
            if (circuit_.name(id).find('#') == std::string::npos)
                nets_.push_back(id);
        }
    }
    os_ << "$timescale 1ns $end\n$scope module top $end\n";
    codes_.reserve(nets_.size());
    last_.assign(nets_.size(), 0);
    for (size_t i = 0; i < nets_.size(); ++i) {
        codes_.push_back(vcdCode(i));
        std::string name = circuit_.name(nets_[i]);
        for (char &ch : name)
            if (ch == ' ')
                ch = '_';
        os_ << "$var wire " << int(circuit_.net(nets_[i]).width) << " "
            << codes_[i] << " " << name << " $end\n";
    }
    os_ << "$upscope $end\n$enddefinitions $end\n";
}

void
VcdWriter::sample(const Simulator &sim)
{
    os_ << "#" << time_++ << "\n";
    for (size_t i = 0; i < nets_.size(); ++i) {
        uint64_t v = sim.value(nets_[i]);
        if (!first_ && v == last_[i])
            continue;
        last_[i] = v;
        int width = circuit_.net(nets_[i]).width;
        if (width == 1)
            os_ << (v ? '1' : '0') << codes_[i] << "\n";
        else
            os_ << "b" << binary(v, width) << " " << codes_[i] << "\n";
    }
    first_ = false;
}

} // namespace csl::sim
