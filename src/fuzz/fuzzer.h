/**
 * @file
 * A differential program fuzzer in the spirit of the fuzzing-based
 * checkers the paper surveys (SpecDoctor et al., Section 9): generate
 * random programs, keep those that satisfy the contract constraint on
 * the golden model, then co-simulate two copies of the target processor
 * with different secrets and flag microarchitectural trace divergence.
 * Faster than model checking at finding shallow leaks, but offers no
 * proofs - the contrast the paper draws with formal schemes.
 */

#ifndef CSL_FUZZ_FUZZER_H_
#define CSL_FUZZ_FUZZER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/budget.h"
#include "contract/contract.h"
#include "proc/presets.h"

namespace csl::fuzz {

/** A found leak: the program and the two initial memories. */
struct FuzzAttack
{
    std::vector<uint64_t> program;
    std::vector<uint64_t> dmem1;
    std::vector<uint64_t> dmem2;
    std::vector<uint64_t> regs;
    size_t divergenceCycle = 0;
};

/** Fuzzing campaign summary. */
struct FuzzResult
{
    std::optional<FuzzAttack> attack;
    uint64_t programsTried = 0;
    uint64_t programsValid = 0; ///< passed the contract constraint
    double seconds = 0;
};

/** Options for a fuzzing campaign. */
struct FuzzOptions
{
    contract::Contract contract = contract::Contract::Sandboxing;
    uint64_t seed = 1;
    uint64_t maxPrograms = 20000;
    int horizonCycles = 48; ///< co-simulation window per program
    double timeoutSeconds = 60.0;
};

/** Run a campaign against @p spec. */
FuzzResult runFuzzer(const proc::CoreSpec &spec, const FuzzOptions &options);

} // namespace csl::fuzz

#endif // CSL_FUZZ_FUZZER_H_
