/**
 * @file
 * Seeded random Circuit generation for property-based testing of the
 * reduction pipeline (rtl/transform). The generator deliberately emits
 * the redundancy the passes exist to remove: verbatim-duplicated
 * combinational nets (the Builder would have hash-consed them; raw
 * Circuit::addNet does not), twin register pairs with mirrored
 * next-state logic, frozen symbolic registers, and - optionally -
 * assumptions that pin inputs and equate twin registers. Every produced
 * circuit is valid and finalized, so it can go straight into the
 * simulator, the pass pipeline or a model checker.
 */

#ifndef CSL_FUZZ_RANDOM_CIRCUIT_H_
#define CSL_FUZZ_RANDOM_CIRCUIT_H_

#include <cstdint>

#include "rtl/circuit.h"

namespace csl::fuzz {

/** Knobs for randomCircuit(). */
struct RandomCircuitOptions
{
    /** Combinational nets to grow on top of the leaves. */
    size_t combNets = 80;
    /** Register count (twin pairs count as two). */
    size_t registers = 8;
    /** Free primary inputs. */
    size_t inputs = 4;
    /** Bad-state nets to emit (at least one). */
    size_t bads = 2;
    /**
     * Emit environment assumptions: an input pinned to a literal, a
     * twin-register equality, and a random 1-bit net (every-cycle), plus
     * an init-only assumption. Exercises assume-propagation and the
     * constraint-aware soundness rules.
     */
    bool withConstraints = false;
};

/** Deterministically generate a finalized random circuit from @p seed. */
rtl::Circuit randomCircuit(uint64_t seed,
                           const RandomCircuitOptions &options = {});

} // namespace csl::fuzz

#endif // CSL_FUZZ_RANDOM_CIRCUIT_H_
