#include "fuzz/fuzzer.h"

#include <random>

#include "base/stopwatch.h"
#include "isa/golden.h"
#include "rtl/builder.h"
#include "sim/simulator.h"

namespace csl::fuzz {

using contract::Contract;
using isa::CommitRecord;
using isa::IsaConfig;

namespace {

/** The golden-model side of an ISA observation, as a comparable tuple. */
struct GoldenObs
{
    uint64_t a = 0, b = 0, c = 0;
    bool operator==(const GoldenObs &o) const = default;
};

GoldenObs
obsOf(const CommitRecord &rec, Contract contract)
{
    GoldenObs obs;
    if (contract == Contract::Sandboxing) {
        obs.a = (rec.exception << 1) | rec.isLoad;
        obs.b = (rec.isLoad && rec.writesReg) ? rec.wdata : 0;
    } else {
        bool is_mem = rec.isLoad || rec.isStore;
        obs.a = (rec.exception << 3) | (is_mem << 2) |
                (rec.isBranch << 1) | uint64_t(rec.isMul);
        obs.b = is_mem ? rec.addr : (rec.isBranch ? rec.taken : 0);
        obs.c = rec.isMul ? ((rec.opA << 16) | rec.opB) : 0;
    }
    return obs;
}

/** Per-cycle microarchitectural observation sampled from the simulator. */
struct UarchObs
{
    bool busValid = false;
    uint64_t busAddr = 0;
    uint32_t commitMask = 0;
    bool operator==(const UarchObs &o) const = default;
};

} // namespace

FuzzResult
runFuzzer(const proc::CoreSpec &spec, const FuzzOptions &options)
{
    Stopwatch watch;
    FuzzResult result;
    const IsaConfig &ic = spec.isaConfig();
    std::mt19937_64 rng(options.seed);

    // Build the core once; each trial re-initializes the simulator.
    rtl::Circuit circuit;
    rtl::Builder builder(circuit);
    proc::CoreIfc ifc = proc::buildCore(builder, spec, "cpu");
    builder.finish();
    sim::Simulator simulator(circuit);

    auto random_word = [&](int width) { return truncBits(rng(), width); };

    auto random_instr = [&]() -> uint64_t {
        // Bias toward supported opcodes; occasionally a fully random
        // word (exercises NOP decoding of reserved encodings).
        if (rng() % 8 == 0)
            return random_word(ic.instrBits());
        isa::Instr instr;
        for (;;) {
            auto op = static_cast<isa::Opcode>(rng() % 6);
            if (ic.supports(op)) {
                instr.op = op;
                break;
            }
        }
        instr.f1 = uint8_t(rng() % ic.regCount);
        instr.f2 = uint8_t(rng() % ic.regCount);
        instr.f3 = uint8_t(rng() & maskBits(ic.immLowBits()));
        return isa::encode(instr, ic);
    };

    auto simulate = [&](const std::vector<uint64_t> &imem,
                        const std::vector<uint64_t> &dmem,
                        const std::vector<uint64_t> &regs) {
        std::unordered_map<rtl::NetId, uint64_t> init;
        for (size_t i = 0; i < imem.size(); ++i)
            init[ifc.imem->word(i).id] = imem[i];
        for (size_t i = 0; i < dmem.size(); ++i)
            init[ifc.dmem->word(i).id] = dmem[i];
        for (size_t i = 0; i < regs.size(); ++i)
            init[ifc.archRegs[i].id] = regs[i];
        simulator.reset(init);
        std::vector<UarchObs> trace;
        trace.reserve(options.horizonCycles);
        for (int t = 0; t < options.horizonCycles; ++t) {
            simulator.evaluate();
            UarchObs obs;
            obs.busValid = simulator.value(ifc.memBusValid.id);
            obs.busAddr =
                obs.busValid ? simulator.value(ifc.memBusAddr.id) : 0;
            for (size_t k = 0; k < ifc.commits.size(); ++k)
                obs.commitMask |=
                    uint32_t(simulator.value(ifc.commits[k].valid.id))
                    << k;
            trace.push_back(obs);
            simulator.tick();
        }
        return trace;
    };

    Budget budget(options.timeoutSeconds);
    for (uint64_t trial = 0; trial < options.maxPrograms; ++trial) {
        budget.charge();
        if (budget.exhausted())
            break;
        ++result.programsTried;

        std::vector<uint64_t> imem(ic.imemSize);
        for (auto &w : imem)
            w = random_instr();
        std::vector<uint64_t> regs(ic.regCount);
        for (auto &w : regs)
            w = random_word(ic.dataWidth);
        std::vector<uint64_t> dmem1(ic.dmemSize), dmem2(ic.dmemSize);
        for (size_t i = 0; i < ic.dmemSize; ++i) {
            dmem1[i] = random_word(ic.dataWidth);
            dmem2[i] = i < ic.secretStart() ? dmem1[i]
                                            : random_word(ic.dataWidth);
        }
        // Ensure the secrets actually differ.
        if (dmem1 == dmem2)
            dmem2[ic.dmemSize - 1] ^= 1;

        // Contract constraint check on the golden model.
        isa::GoldenModel g1(ic, imem, dmem1, regs);
        isa::GoldenModel g2(ic, imem, dmem2, regs);
        bool valid = true;
        for (int step = 0; step < options.horizonCycles && valid; ++step)
            valid = obsOf(g1.step(), options.contract) ==
                    obsOf(g2.step(), options.contract);
        if (!valid)
            continue;
        ++result.programsValid;

        // Leakage assertion check by differential co-simulation.
        auto t1 = simulate(imem, dmem1, regs);
        auto t2 = simulate(imem, dmem2, regs);
        for (int t = 0; t < options.horizonCycles; ++t) {
            if (t1[t] == t2[t])
                continue;
            FuzzAttack attack;
            attack.program = imem;
            attack.dmem1 = dmem1;
            attack.dmem2 = dmem2;
            attack.regs = regs;
            attack.divergenceCycle = size_t(t);
            result.attack = attack;
            result.seconds = watch.seconds();
            return result;
        }
    }
    result.seconds = watch.seconds();
    return result;
}

} // namespace csl::fuzz
