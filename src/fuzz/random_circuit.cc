#include "fuzz/random_circuit.h"

#include <random>
#include <unordered_map>
#include <vector>

#include "base/bits.h"

namespace csl::fuzz {

using rtl::Circuit;
using rtl::kNoNet;
using rtl::Net;
using rtl::NetId;
using rtl::Op;

namespace {

constexpr uint8_t kWidths[] = {1, 2, 5, 8, 16};

struct Gen
{
    Circuit circuit;
    std::mt19937_64 rng;
    /** Nets grouped by width, the operand pools. */
    std::unordered_map<uint8_t, std::vector<NetId>> byWidth;

    explicit Gen(uint64_t seed) : rng(seed) {}

    uint64_t roll(uint64_t bound) { return rng() % bound; }

    NetId track(NetId id)
    {
        byWidth[circuit.net(id).width].push_back(id);
        return id;
    }

    NetId constant(uint8_t width, uint64_t value)
    {
        Net net;
        net.op = Op::Const;
        net.width = width;
        net.imm = truncBits(value, width);
        return track(circuit.addNet(net));
    }

    /** A random existing net of @p width (a fresh constant if none). */
    NetId pick(uint8_t width)
    {
        auto &pool = byWidth[width];
        if (pool.empty())
            return constant(width, rng());
        return pool[roll(pool.size())];
    }

    NetId unary(Op op, uint8_t width, NetId a, uint64_t imm = 0)
    {
        Net net;
        net.op = op;
        net.width = width;
        net.a = a;
        net.imm = imm;
        return track(circuit.addNet(net));
    }

    NetId binary(Op op, uint8_t width, NetId a, NetId b)
    {
        Net net;
        net.op = op;
        net.width = width;
        net.a = a;
        net.b = b;
        return track(circuit.addNet(net));
    }

    /** Grow one random combinational net. */
    NetId grow()
    {
        const uint8_t width = kWidths[roll(std::size(kWidths))];
        switch (roll(10)) {
          case 0:
            return unary(Op::Not, width, pick(width));
          case 1:
            return binary(Op::And, width, pick(width), pick(width));
          case 2:
            return binary(Op::Or, width, pick(width), pick(width));
          case 3:
            return binary(Op::Xor, width, pick(width), pick(width));
          case 4:
            return binary(Op::Add, width, pick(width), pick(width));
          case 5:
            return binary(Op::Sub, width, pick(width), pick(width));
          case 6:
            return binary(Op::Eq, 1, pick(width), pick(width));
          case 7:
            return binary(Op::Ult, 1, pick(width), pick(width));
          case 8: {
            Net net;
            net.op = Op::Mux;
            net.width = width;
            net.a = pick(1);
            net.b = pick(width);
            net.c = pick(width);
            return track(circuit.addNet(net));
          }
          default: {
            // Slice out of a wider net when one exists; else a constant.
            const uint8_t from = 16;
            if (width < from) {
                const NetId a = pick(from);
                return unary(Op::Slice, width, a, roll(from - width + 1));
            }
            return constant(width, rng());
          }
        }
    }
};

} // namespace

Circuit
randomCircuit(uint64_t seed, const RandomCircuitOptions &options)
{
    Gen gen(seed);
    Circuit &circuit = gen.circuit;

    // Leaves: a couple of literals and the free inputs.
    gen.constant(1, 1);
    gen.constant(16, gen.rng());
    std::vector<NetId> inputs;
    for (size_t i = 0; i < std::max<size_t>(options.inputs, 1); ++i) {
        Net net;
        net.op = Op::Input;
        net.width = kWidths[gen.roll(std::size(kWidths))];
        inputs.push_back(gen.track(circuit.addNet(net)));
        circuit.setName(inputs.back(), "in" + std::to_string(i));
    }

    // Registers. Roughly half are twin pairs: same width, same concrete
    // init (or symbolic for the constraint-equated pair), with mirrored
    // next-state logic wired below - regmerge fodder. A sprinkle of
    // frozen symbolic registers feeds assume-propagation.
    struct RegPlan
    {
        NetId reg;
        NetId twin = kNoNet; ///< mirrored partner (plan of twin is shared)
        bool frozen = false;
    };
    std::vector<RegPlan> plans;
    size_t made = 0;
    size_t twinPairs = 0;
    while (made < std::max<size_t>(options.registers, 2)) {
        const uint8_t width = kWidths[gen.roll(std::size(kWidths))];
        const bool pair = made + 1 < std::max<size_t>(options.registers, 2) &&
                          gen.roll(2) == 0;
        Net net;
        net.op = Op::Reg;
        net.width = width;
        // The first twin pair under constraints is symbolic so the
        // equality assumption (not the init values) is what merges it.
        const bool symbolicPair =
            pair && options.withConstraints && twinPairs == 0;
        net.symbolicInit = symbolicPair || (!pair && gen.roll(2) == 0);
        net.imm = net.symbolicInit ? 0 : truncBits(gen.rng(), width);
        RegPlan plan;
        plan.reg = gen.track(circuit.addNet(net));
        plan.frozen = !pair && net.symbolicInit && gen.roll(3) == 0;
        circuit.setName(plan.reg, "r" + std::to_string(made));
        ++made;
        if (pair) {
            plan.twin = gen.track(circuit.addNet(net));
            circuit.setName(plan.twin, "r" + std::to_string(made) + "_twin");
            ++made;
            ++twinPairs;
        }
        plans.push_back(plan);
    }

    // Combinational fabric, with occasional verbatim duplicates (the
    // structural-hashing fodder a Builder would have consed away).
    std::vector<NetId> comb;
    for (size_t i = 0; i < options.combNets; ++i) {
        if (!comb.empty() && gen.roll(5) == 0) {
            const Net dup = circuit.net(comb[gen.roll(comb.size())]);
            comb.push_back(gen.track(circuit.addNet(dup)));
            continue;
        }
        comb.push_back(gen.grow());
    }

    // Register next-states. Twins get mirrored logic: op(reg, shared)
    // for each copy, so only optimistic refinement can merge them.
    for (const RegPlan &plan : plans) {
        const Net &reg = circuit.net(plan.reg);
        if (plan.frozen) {
            circuit.connectReg(plan.reg, plan.reg);
            continue;
        }
        if (plan.twin == kNoNet) {
            circuit.connectReg(plan.reg, gen.pick(reg.width));
            continue;
        }
        const NetId shared = gen.pick(reg.width);
        const Op op = gen.roll(2) == 0 ? Op::Add : Op::Xor;
        circuit.connectReg(plan.reg,
                           gen.binary(op, reg.width, plan.reg, shared));
        circuit.connectReg(plan.twin,
                           gen.binary(op, reg.width, plan.twin, shared));
    }

    // Bad nets: comparisons keep them input/state-dependent most seeds.
    for (size_t i = 0; i < std::max<size_t>(options.bads, 1); ++i) {
        const uint8_t width = kWidths[gen.roll(std::size(kWidths))];
        const NetId bad = gen.binary(gen.roll(2) == 0 ? Op::Eq : Op::Ult, 1,
                                     gen.pick(width), gen.pick(width));
        circuit.setName(bad, "bad" + std::to_string(i));
        circuit.addBad(bad);
    }

    if (options.withConstraints) {
        // Pin one input to a literal (assume-propagation target).
        const NetId pinned = inputs[gen.roll(inputs.size())];
        const uint8_t width = circuit.net(pinned).width;
        circuit.addConstraint(gen.binary(
            Op::Eq, 1, pinned, gen.constant(width, gen.rng())));
        // Equate the symbolic twin pair from the initial state.
        for (const RegPlan &plan : plans) {
            if (plan.twin != kNoNet && circuit.net(plan.reg).symbolicInit) {
                circuit.addInitConstraint(
                    gen.binary(Op::Eq, 1, plan.reg, plan.twin));
                break;
            }
        }
        // And one opaque 1-bit assumption the passes cannot decompose.
        circuit.addConstraint(gen.pick(1));
    }

    circuit.finalize();
    return circuit;
}

} // namespace csl::fuzz
