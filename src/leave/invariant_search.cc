#include "leave/invariant_search.h"

#include "base/logging.h"
#include "base/stopwatch.h"
#include "contract/contract.h"
#include "mc/kinduction.h"
#include "rtl/builder.h"

namespace csl::leave {

using proc::CoreIfc;
using rtl::Builder;
using rtl::NetId;
using rtl::Sig;

const char *
leaveResultName(LeaveResult::Kind kind)
{
    switch (kind) {
      case LeaveResult::Kind::Proof: return "PROOF";
      case LeaveResult::Kind::Unknown: return "UNKNOWN";
      case LeaveResult::Kind::Timeout: return "TIMEOUT";
    }
    return "?";
}

namespace {

/**
 * LEAVE's property encoding: two copies compared cycle-aligned, without
 * the shadow two-phase machinery (its in-order targets need neither
 * re-alignment nor drain tracking; the paper notes LEAVE handles the two
 * requirements only "in a limited way for in-order processors").
 */
struct LeaveCircuit
{
    rtl::Circuit circuit;
    std::vector<NetId> candidates;
};

void
buildLeaveCircuit(LeaveCircuit &lc, const proc::CoreSpec &spec,
                  contract::Contract contract)
{
    Builder b(lc.circuit);
    const isa::IsaConfig &ic = spec.isaConfig();
    CoreIfc cpu1 = proc::buildCore(b, spec, "cpu1");
    CoreIfc cpu2 = proc::buildCore(b, spec, "cpu2");

    for (size_t i = 0; i < ic.imemSize; ++i)
        b.assumeInit(b.eq(cpu1.imem->word(i), cpu2.imem->word(i)));
    for (size_t i = 0; i < ic.secretStart(); ++i)
        b.assumeInit(b.eq(cpu1.dmem->word(i), cpu2.dmem->word(i)));
    for (size_t r = 0; r < cpu1.archRegs.size(); ++r)
        b.assumeInit(b.eq(cpu1.archRegs[r], cpu2.archRegs[r]));

    // Cycle-aligned contract constraint check on the commit streams.
    std::vector<Sig> diffs;
    for (size_t k = 0; k < cpu1.commits.size(); ++k) {
        const proc::CommitSlot &s1 = cpu1.commits[k];
        const proc::CommitSlot &s2 = cpu2.commits[k];
        Sig o1 = contract::isaObservation(b, s1, contract);
        Sig o2 = contract::isaObservation(b, s2, contract);
        Sig masked1 = b.mux(s1.valid, o1, b.lit(0, o1.width));
        Sig masked2 = b.mux(s2.valid, o2, b.lit(0, o2.width));
        diffs.push_back(b.ne(b.concat(s1.valid, masked1),
                             b.concat(s2.valid, masked2)));
    }
    b.assume(b.notOf(b.orAll(diffs)), "leave.contractHolds");

    // Leakage assertion: per-cycle microarchitectural equality.
    Sig one = b.one();
    Sig uarch1 = contract::uarchObservation(b, cpu1, one);
    Sig uarch2 = contract::uarchObservation(b, cpu2, one);
    b.assertAlways(b.eq(uarch1, uarch2), "leave.leak");

    // Auto-generated candidates: every register of copy 1 equals its
    // name-twin in copy 2 (the LEAVE paper's candidate family). Secret
    // memory words are generated too and die in the init check.
    const rtl::Circuit &c = lc.circuit;
    size_t index = 0;
    for (NetId reg : c.registers()) {
        std::string name = c.name(reg);
        if (name.rfind("cpu1.", 0) != 0)
            continue;
        NetId twin = c.findByName("cpu2." + name.substr(5));
        if (twin == rtl::kNoNet)
            continue;
        int width = c.net(reg).width;
        Sig eq_net = b.named(b.eq(Sig{reg, width}, Sig{twin, width}),
                             "leave.cand" + std::to_string(index++));
        lc.candidates.push_back(eq_net.id);
    }
    b.finish();
}

} // namespace

LeaveResult
runLeave(const proc::CoreSpec &spec, const LeaveOptions &options)
{
    Stopwatch watch;
    LeaveResult result;
    Budget budget(options.timeoutSeconds);
    if (options.deadline)
        budget.attachDeadline(*options.deadline);

    LeaveCircuit lc;
    buildLeaveCircuit(lc, spec, options.contract);
    result.candidates = lc.candidates.size();

    std::vector<NetId> pruning_front;
    auto survivors = mc::proveInductiveInvariants(
        lc.circuit, lc.candidates, &budget, /*window=*/1, &pruning_front,
        options.houdiniThreads);
    if (!survivors) {
        result.kind = LeaveResult::Kind::Timeout;
        result.pruningFront = pruning_front.size();
        result.seconds = watch.seconds();
        return result;
    }
    result.survivors = survivors->size();

    mc::KInductionOptions kopts;
    kopts.maxK = options.proofDepth;
    kopts.assumedInvariants = *survivors;
    mc::KInduction engine(lc.circuit, kopts);
    mc::KInductionResult kres = engine.run(&budget);
    switch (kres.kind) {
      case mc::KInductionResult::Kind::Proof:
        result.kind = LeaveResult::Kind::Proof;
        break;
      case mc::KInductionResult::Kind::Timeout:
        result.kind = LeaveResult::Kind::Timeout;
        break;
      case mc::KInductionResult::Kind::Cex:
      case mc::KInductionResult::Kind::Unknown:
        // Insufficient invariants: LEAVE reports UNKNOWN (false
        // counterexamples; cannot tell secure from insecure).
        result.kind = LeaveResult::Kind::Unknown;
        break;
    }
    result.seconds = watch.seconds();
    return result;
}

} // namespace csl::leave
