/**
 * @file
 * A LEAVE-style verification scheme (Wang et al., CCS 2023), reproduced
 * for the paper's Section 7.1.3 comparison: automatically generated
 * relational invariant candidates (equality of corresponding state in
 * the two processor copies) are pruned to an inductive subset with a
 * Houdini loop; the surviving invariants then support a 1-inductive
 * proof attempt of the contract property. When the survivors are too
 * weak the scheme reports UNKNOWN - on out-of-order processors the
 * candidates are violated by transient state and the search collapses,
 * exactly the failure mode the paper describes.
 */

#ifndef CSL_LEAVE_INVARIANT_SEARCH_H_
#define CSL_LEAVE_INVARIANT_SEARCH_H_

#include <optional>
#include <string>

#include "base/budget.h"
#include "base/deadline.h"
#include "contract/contract.h"
#include "proc/presets.h"

namespace csl::leave {

/** Outcome of a LEAVE-style run. */
struct LeaveResult
{
    enum class Kind {
        Proof,   ///< invariants found and property proven inductively
        Unknown, ///< invariant search failed to support a proof
        Timeout,
    };
    Kind kind = Kind::Unknown;
    size_t candidates = 0; ///< generated candidate invariants
    size_t survivors = 0;  ///< candidates surviving the Houdini loop
    /**
     * Timeout only: candidates still alive when the Houdini loop was
     * interrupted - unproven, but a sound (and smaller) seed for a
     * resumed search. 0 when the search finished or never started.
     */
    size_t pruningFront = 0;
    double seconds = 0;
};

const char *leaveResultName(LeaveResult::Kind kind);

/** Options for the LEAVE-style run. */
struct LeaveOptions
{
    contract::Contract contract = contract::Contract::Sandboxing;
    double timeoutSeconds = 600.0;
    /** Induction depth for the final proof attempt (LEAVE uses 1). */
    size_t proofDepth = 1;
    /** Optional cooperative deadline/cancellation (staged runs). */
    std::optional<Deadline> deadline;
    /**
     * Worker threads for the Houdini candidate-pruning phase. Each
     * shard prunes a slice of the candidate family over its own circuit
     * clone and publishes survivors to a shared mc::FactBoard; >1 speeds
     * up the initial prune without changing the surviving set (the
     * joint fixpoint afterwards is order-independent).
     */
    size_t houdiniThreads = 1;
};

/** Run the LEAVE-style scheme on @p spec. */
LeaveResult runLeave(const proc::CoreSpec &spec,
                     const LeaveOptions &options);

} // namespace csl::leave

#endif // CSL_LEAVE_INVARIANT_SEARCH_H_
