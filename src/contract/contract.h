/**
 * @file
 * Software-hardware contract observation functions (paper Section 2.2).
 *
 * A contract is a pair of observation functions:
 *  - O_ISA: what the software-level constraint compares, evaluated per
 *    committed instruction (the contract constraint check);
 *  - O_uArch: what the attacker sees, evaluated per cycle (the leakage
 *    assertion check): the memory-bus address sequence and the commit
 *    timing.
 *
 * Supported contracts:
 *  - Sandboxing: O_ISA is the data written back by every committed load
 *    (a program is valid iff sequential execution loads identical values
 *    under both secrets);
 *  - Constant-time: O_ISA is the branch condition of committed branches,
 *    the address of committed memory operations, and the operands of
 *    committed multiplies (the constant-time programming discipline).
 *
 * Both O_ISA variants also carry the architectural exception marker: a
 * trap redirects control flow and is architecturally visible.
 */

#ifndef CSL_CONTRACT_CONTRACT_H_
#define CSL_CONTRACT_CONTRACT_H_

#include "isa/isa.h"
#include "proc/core_ifc.h"
#include "rtl/builder.h"

namespace csl::contract {

/** Which software-hardware contract is being verified. */
enum class Contract {
    Sandboxing,
    ConstantTime,
};

const char *contractName(Contract contract);

/**
 * O_ISA of one commit slot, packed into a single comparable word.
 * Fields irrelevant to the contract are masked to zero so don't-care
 * hardware values cannot cause spurious trace differences.
 */
rtl::Sig isaObservation(rtl::Builder &b, const proc::CommitSlot &slot,
                        Contract contract);

/**
 * O_uArch of a core for the current cycle: (bus valid, masked bus
 * address, per-slot commit valids), packed into one word.
 * @param commit_enable gates the commit-valid bits (the shadow scheme
 * passes the clock-enable so a paused copy shows no activity).
 */
rtl::Sig uarchObservation(rtl::Builder &b, const proc::CoreIfc &core,
                          rtl::Sig commit_enable);

} // namespace csl::contract

#endif // CSL_CONTRACT_CONTRACT_H_
