#include "contract/contract.h"

#include "base/logging.h"

namespace csl::contract {

using rtl::Builder;
using rtl::Sig;

const char *
contractName(Contract contract)
{
    switch (contract) {
      case Contract::Sandboxing: return "sandboxing";
      case Contract::ConstantTime: return "constant-time";
    }
    return "?";
}

Sig
isaObservation(Builder &b, const proc::CommitSlot &slot, Contract contract)
{
    auto masked = [&](Sig cond, Sig value) {
        return b.mux(cond, value, b.lit(0, value.width));
    };
    switch (contract) {
      case Contract::Sandboxing: {
        // (exception, is-load, loaded value)
        Sig load_writes = b.andOf(slot.isLoad, slot.writesReg);
        Sig obs = b.concat(slot.exception, slot.isLoad);
        return b.concat(obs, masked(load_writes, slot.wdata));
      }
      case Contract::ConstantTime: {
        // (exception, is-mem, address, is-branch, condition,
        //  is-mul, opA, opB)
        Sig is_mem = b.orOf(slot.isLoad, slot.isStore);
        Sig obs = b.concat(slot.exception, is_mem);
        obs = b.concat(obs, masked(is_mem, slot.addr));
        obs = b.concat(obs, slot.isBranch);
        obs = b.concat(obs, b.andOf(slot.isBranch, slot.taken));
        obs = b.concat(obs, slot.isMul);
        obs = b.concat(obs, masked(slot.isMul, slot.opA));
        obs = b.concat(obs, masked(slot.isMul, slot.opB));
        return obs;
      }
    }
    csl_panic("unknown contract");
}

Sig
uarchObservation(Builder &b, const proc::CoreIfc &core, Sig commit_enable)
{
    Sig bus_valid = b.andOf(core.memBusValid, commit_enable);
    Sig obs = b.concat(bus_valid,
                       b.mux(bus_valid, core.memBusAddr,
                             b.lit(0, core.memBusAddr.width)));
    for (const proc::CommitSlot &slot : core.commits)
        obs = b.concat(obs, b.andOf(slot.valid, commit_enable));
    return obs;
}

} // namespace csl::contract
