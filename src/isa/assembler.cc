#include "isa/assembler.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <unordered_map>

#include "base/logging.h"

namespace csl::isa {

namespace {

/** Split a line into lowercase tokens, treating ',', '[', ']' as spaces. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::string cleaned;
    for (char ch : line) {
        if (ch == ',' || ch == '[' || ch == ']' || ch == '+')
            cleaned.push_back(' ');
        else
            cleaned.push_back(
                static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
    }
    std::istringstream iss(cleaned);
    std::vector<std::string> tokens;
    std::string token;
    while (iss >> token)
        tokens.push_back(token);
    return tokens;
}

int
parseReg(const std::string &token, const IsaConfig &config)
{
    csl_assert(token.size() >= 2 && token[0] == 'r',
               "expected register, got '", token, "'");
    int r = std::stoi(token.substr(1));
    csl_assert(r >= 0 && r < config.regCount, "register out of range: ",
               token);
    return r;
}

uint64_t
parseImm(const std::string &token, uint64_t limit)
{
    uint64_t v = std::stoull(token, nullptr, 0);
    csl_assert(v < limit, "immediate out of range: ", token);
    return v;
}

} // namespace

Instr
parseInstr(const std::string &line, const IsaConfig &config)
{
    auto tokens = tokenize(line);
    csl_assert(!tokens.empty(), "empty instruction");
    const std::string &mnemonic = tokens[0];
    const uint64_t imm_limit = 1ull << config.immBits();
    Instr instr;

    auto expect = [&](size_t n) {
        csl_assert(tokens.size() == n, "bad operand count in '", line, "'");
    };

    if (mnemonic == "nop") {
        expect(1);
        instr.op = Opcode::Nop;
    } else if (mnemonic == "li") {
        expect(3);
        instr.op = Opcode::Li;
        instr.f1 = static_cast<uint8_t>(parseReg(tokens[1], config));
        uint64_t imm = parseImm(tokens[2], imm_limit);
        instr.f2 = static_cast<uint8_t>(imm >> config.immLowBits());
        instr.f3 = static_cast<uint8_t>(imm & maskBits(config.immLowBits()));
    } else if (mnemonic == "add" || mnemonic == "mul") {
        expect(4);
        instr.op = mnemonic == "add" ? Opcode::Add : Opcode::Mul;
        instr.f1 = static_cast<uint8_t>(parseReg(tokens[1], config));
        instr.f2 = static_cast<uint8_t>(parseReg(tokens[2], config));
        instr.f3 = static_cast<uint8_t>(parseReg(tokens[3], config));
    } else if (mnemonic == "ld") {
        expect(3);
        instr.op = Opcode::Ld;
        instr.f1 = static_cast<uint8_t>(parseReg(tokens[1], config));
        instr.f2 = static_cast<uint8_t>(parseReg(tokens[2], config));
    } else if (mnemonic == "st") {
        expect(3);
        instr.op = Opcode::St;
        instr.f1 = static_cast<uint8_t>(parseReg(tokens[1], config));
        instr.f2 = static_cast<uint8_t>(parseReg(tokens[2], config));
    } else if (mnemonic == "beqz") {
        expect(3);
        instr.op = Opcode::Beqz;
        instr.f1 = static_cast<uint8_t>(parseReg(tokens[1], config));
        uint64_t imm = parseImm(tokens[2], imm_limit);
        instr.f2 = static_cast<uint8_t>(imm >> config.immLowBits());
        instr.f3 = static_cast<uint8_t>(imm & maskBits(config.immLowBits()));
    } else {
        csl_fatal("unknown mnemonic '", mnemonic, "'");
    }
    csl_assert(config.supports(instr.op), "instruction not supported by "
               "this core's feature set: ", mnemonic);
    return instr;
}

std::vector<uint64_t>
assemble(const std::string &source, const IsaConfig &config)
{
    // Pass 1: strip comments, collect labels and instruction lines.
    std::vector<std::string> lines;
    std::unordered_map<std::string, size_t> labels;
    {
        std::istringstream iss(source);
        std::string line;
        while (std::getline(iss, line)) {
            size_t hash = line.find('#');
            if (hash != std::string::npos)
                line.resize(hash);
            size_t slashes = line.find("//");
            if (slashes != std::string::npos)
                line.resize(slashes);
            // Leading "name:" defines a label at the next instruction.
            size_t colon = line.find(':');
            if (colon != std::string::npos &&
                line.find_first_of("[]") == std::string::npos) {
                std::string label = line.substr(0, colon);
                label.erase(std::remove_if(label.begin(), label.end(),
                                           [](unsigned char c) {
                                               return std::isspace(c);
                                           }),
                            label.end());
                csl_assert(!label.empty(), "empty label");
                csl_assert(!labels.count(label), "duplicate label '",
                           label, "'");
                labels[label] = lines.size();
                line = line.substr(colon + 1);
            }
            if (std::all_of(line.begin(), line.end(), [](unsigned char c) {
                    return std::isspace(c);
                }))
                continue;
            lines.push_back(line);
        }
    }

    // Pass 2: resolve labels in branch targets and encode.
    std::vector<uint64_t> words;
    for (size_t pc = 0; pc < lines.size(); ++pc) {
        std::string line = lines[pc];
        auto tokens = tokenize(line);
        if (!tokens.empty() && tokens[0] == "beqz" && tokens.size() == 3 &&
            labels.count(tokens[2])) {
            size_t target = labels.at(tokens[2]);
            uint64_t offset =
                (target + config.imemSize - (pc + 1)) % config.imemSize;
            std::ostringstream oss;
            // Rebuild the line with a numeric offset (register token is
            // already lowercase from tokenize).
            oss << "beqz " << tokens[1] << ", +" << offset;
            line = oss.str();
        }
        words.push_back(encode(parseInstr(line, config), config));
    }
    csl_assert(words.size() <= config.imemSize, "program too long: ",
               words.size(), " > ", config.imemSize);
    Instr nop;
    nop.op = Opcode::Nop;
    while (words.size() < config.imemSize)
        words.push_back(encode(nop, config));
    return words;
}

} // namespace csl::isa
