/**
 * @file
 * A tiny assembler/parser for the toy ISA, used by tests, examples and
 * the attack-decoding pretty printer.
 */

#ifndef CSL_ISA_ASSEMBLER_H_
#define CSL_ISA_ASSEMBLER_H_

#include <string>
#include <vector>

#include "isa/isa.h"

namespace csl::isa {

/**
 * Assemble a program. One instruction per line; `#` or `//` start
 * comments; blank lines are skipped. Mnemonics as produced by
 * disassemble(): li/add/mul/ld/st/beqz/nop. A line of the form
 * `name:` defines a label; `beqz rN, name` branches to it (offsets wrap
 * modulo the instruction memory, so backward branches work). The result
 * is padded with NOPs to config.imemSize. Fatal error on malformed
 * input or overflow.
 */
std::vector<uint64_t> assemble(const std::string &source,
                               const IsaConfig &config);

/** Parse a single instruction line (no comments, no label support). */
Instr parseInstr(const std::string &line, const IsaConfig &config);

} // namespace csl::isa

#endif // CSL_ISA_ASSEMBLER_H_
