#include "isa/golden.h"

#include "base/logging.h"

namespace csl::isa {

GoldenModel::GoldenModel(const IsaConfig &config, std::vector<uint64_t> imem,
                         std::vector<uint64_t> dmem,
                         std::vector<uint64_t> init_regs)
    : config_(config), imem_(std::move(imem)), dmem_(std::move(dmem)),
      regs_(config.regCount, 0)
{
    config_.check();
    csl_assert(imem_.size() == config_.imemSize, "imem size mismatch");
    csl_assert(dmem_.size() == config_.dmemSize, "dmem size mismatch");
    if (!init_regs.empty()) {
        csl_assert(init_regs.size() == regs_.size(), "reg count mismatch");
        for (size_t i = 0; i < regs_.size(); ++i)
            regs_[i] = truncBits(init_regs[i], config_.dataWidth);
    }
    for (uint64_t &w : imem_)
        w = truncBits(w, config_.instrBits());
    for (uint64_t &w : dmem_)
        w = truncBits(w, config_.dataWidth);
}

CommitRecord
GoldenModel::step()
{
    const Instr instr = decode(imem_[pc_], config_);
    const int width = config_.dataWidth;
    CommitRecord rec;
    rec.op = instr.op;
    rec.pc = pc_;

    uint64_t next_pc = (pc_ + 1) % config_.imemSize;
    auto mem_exception = [&](uint64_t addr) {
        bool misaligned = config_.trapOnMisaligned && (addr & 1);
        bool out_of_range =
            config_.trapOnOutOfRange && addr >= config_.dmemSize;
        return misaligned || out_of_range;
    };

    switch (instr.op) {
      case Opcode::Li:
        rec.writesReg = true;
        rec.rd = instr.rd();
        rec.wdata = truncBits(instr.imm(config_), width);
        regs_[rec.rd] = rec.wdata;
        break;
      case Opcode::Add:
      case Opcode::Mul: {
        rec.opA = regs_[instr.srcA()];
        rec.opB = regs_[instr.srcB(config_)];
        rec.isMul = instr.op == Opcode::Mul;
        rec.writesReg = true;
        rec.rd = instr.rd();
        rec.wdata = truncBits(rec.isMul ? rec.opA * rec.opB
                                        : rec.opA + rec.opB,
                              width);
        regs_[rec.rd] = rec.wdata;
        break;
      }
      case Opcode::Ld: {
        rec.isLoad = true;
        rec.addr = regs_[instr.addrReg()];
        if (mem_exception(rec.addr)) {
            rec.exception = true;
            next_pc = 0; // trap vector
        } else {
            rec.writesReg = true;
            rec.rd = instr.rd();
            rec.wdata = dmem_[rec.addr % config_.dmemSize];
            regs_[rec.rd] = rec.wdata;
        }
        break;
      }
      case Opcode::St: {
        rec.isStore = true;
        rec.addr = regs_[instr.addrReg()];
        if (mem_exception(rec.addr)) {
            rec.exception = true;
            next_pc = 0;
        } else {
            dmem_[rec.addr % config_.dmemSize] =
                regs_[instr.dataReg()];
        }
        break;
      }
      case Opcode::Beqz: {
        rec.isBranch = true;
        rec.opA = regs_[instr.condReg()];
        rec.taken = rec.opA == 0;
        if (rec.taken)
            next_pc = (pc_ + 1 + instr.imm(config_)) % config_.imemSize;
        break;
      }
      case Opcode::Nop:
        break;
    }

    pc_ = next_pc;
    return rec;
}

} // namespace csl::isa
