/**
 * @file
 * Golden architectural model: the executable ISA specification.
 *
 * Every processor's commit stream is tandem-tested against this model
 * (the paper's decoupling of functional from security verification,
 * Section 5.4), and the differential fuzzer uses it to evaluate contract
 * constraints on candidate programs.
 */

#ifndef CSL_ISA_GOLDEN_H_
#define CSL_ISA_GOLDEN_H_

#include <cstdint>
#include <vector>

#include "isa/isa.h"

namespace csl::isa {

/** Everything architecturally observable about one executed instruction. */
struct CommitRecord
{
    Opcode op = Opcode::Nop;
    uint64_t pc = 0;
    /** Instruction trapped: no writeback/store, pc redirected to 0. */
    bool exception = false;

    bool writesReg = false;
    int rd = 0;
    uint64_t wdata = 0;

    bool isLoad = false;
    bool isStore = false;
    uint64_t addr = 0; ///< full architectural address (pre-wrap)

    bool isBranch = false;
    bool taken = false;

    bool isMul = false;
    uint64_t opA = 0;
    uint64_t opB = 0;
};

/** Single-stepping architectural simulator. */
class GoldenModel
{
  public:
    /**
     * @param config    ISA parameters (validated)
     * @param imem      instruction words (size == config.imemSize)
     * @param dmem      initial data memory (size == config.dmemSize)
     * @param init_regs initial register values (empty = all zero)
     */
    GoldenModel(const IsaConfig &config, std::vector<uint64_t> imem,
                std::vector<uint64_t> dmem,
                std::vector<uint64_t> init_regs = {});

    /** Execute exactly one instruction. */
    CommitRecord step();

    uint64_t pc() const { return pc_; }
    const std::vector<uint64_t> &regs() const { return regs_; }
    const std::vector<uint64_t> &dmem() const { return dmem_; }

  private:
    IsaConfig config_;
    std::vector<uint64_t> imem_;
    std::vector<uint64_t> dmem_;
    std::vector<uint64_t> regs_;
    uint64_t pc_ = 0;
};

} // namespace csl::isa

#endif // CSL_ISA_GOLDEN_H_
