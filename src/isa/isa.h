/**
 * @file
 * The toy ISA shared by every processor in the repository.
 *
 * The paper's in-house SimpleOoO core runs "4 customized insts (loadimm,
 * ALU, load, branch)"; we reproduce exactly that, plus optional MUL
 * (standing in for Ridecore's RV32IM multiply) and STORE (for the
 * BOOM-like core), gated by feature flags. Cores without a feature decode
 * the corresponding opcodes as NOP, in the golden model and in RTL alike,
 * so all machines agree on architectural semantics.
 *
 * Encoding (parametric in the register count):
 *
 *   | op (3) | f1 (regBits) | f2 (regBits) | f3 (immBits) |
 *
 *   op 0  LI   rd=f1,  imm   = {f2, f3}
 *   op 1  ADD  rd=f1,  rs1=f2, rs2=f3[regBits-1:0]
 *   op 2  MUL  rd=f1,  rs1=f2, rs2=f3[regBits-1:0]   (hasMul)
 *   op 3  LD   rd=f1,  addr reg rs1=f2
 *   op 4  ST   data reg rs1=f1, addr reg rs2=f2      (hasStore)
 *   op 5  BEQZ rs1=f1, offset = {f2, f3}
 *   op 6,7     NOP
 *
 * PC arithmetic wraps modulo the instruction-memory size, so every
 * program is an infinite trace (matching the paper's symbolic-imem
 * model-checking setup).
 */

#ifndef CSL_ISA_ISA_H_
#define CSL_ISA_ISA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/bits.h"

namespace csl::isa {

/** Opcode values (3-bit field). */
enum class Opcode : uint8_t {
    Li = 0,
    Add = 1,
    Mul = 2,
    Ld = 3,
    St = 4,
    Beqz = 5,
    Nop = 6,
};

/** Architectural parameters; every structure size the paper sweeps. */
struct IsaConfig
{
    int dataWidth = 4;   ///< register/memory word width in bits
    int regCount = 4;    ///< architectural registers (power of two)
    size_t imemSize = 8; ///< instruction memory entries (power of two)
    size_t dmemSize = 4; ///< data memory words (power of two)

    bool hasMul = false;
    bool hasStore = false;
    /** Trap on odd data addresses (BOOM-like misalignment source). */
    bool trapOnMisaligned = false;
    /** Trap on addresses >= dmemSize (BOOM-like illegal-access source). */
    bool trapOnOutOfRange = false;

    int regBits() const { return bitsFor(regCount); }
    int pcBits() const { return bitsFor(imemSize); }
    /** Width of the f3 field. */
    int immLowBits() const { return regBits() > 3 ? regBits() : 3; }
    /** Total immediate width ({f2, f3}). */
    int immBits() const { return regBits() + immLowBits(); }
    int instrBits() const { return 3 + 2 * regBits() + immLowBits(); }
    /** First secret word: the upper half of data memory is secret. */
    size_t secretStart() const { return dmemSize / 2; }

    /** Validate invariants (power-of-two sizes, width limits). */
    void check() const;

    /** True when @p op is executable under these features. */
    bool supports(Opcode op) const;
};

/** A decoded instruction. */
struct Instr
{
    Opcode op = Opcode::Nop;
    uint8_t f1 = 0;
    uint8_t f2 = 0;
    uint8_t f3 = 0;

    /** Destination register (LI/ADD/MUL/LD). */
    int rd() const { return f1; }
    /** ALU source registers (ADD/MUL). */
    int srcA() const { return f2; }
    int srcB(const IsaConfig &config) const
    {
        return f3 & (config.regCount - 1);
    }
    /** Address register (LD/ST). */
    int addrReg() const { return f2; }
    /** Store-data register (ST). */
    int dataReg() const { return f1; }
    /** Branch condition register (BEQZ). */
    int condReg() const { return f1; }
    /** Immediate value {f2, f3} (LI/BEQZ). */
    uint64_t
    imm(const IsaConfig &config) const
    {
        return (uint64_t(f2) << config.immLowBits()) | f3;
    }
};

/** Encode @p instr under @p config. */
uint64_t encode(const Instr &instr, const IsaConfig &config);

/** Decode raw bits; unknown/unsupported opcodes become NOP. */
Instr decode(uint64_t bits, const IsaConfig &config);

/** Render one instruction as assembly text. */
std::string disassemble(const Instr &instr, const IsaConfig &config);

/** Render a whole program. */
std::string disassembleProgram(const std::vector<uint64_t> &words,
                               const IsaConfig &config);

} // namespace csl::isa

#endif // CSL_ISA_ISA_H_
