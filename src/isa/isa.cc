#include "isa/isa.h"

#include <sstream>

#include "base/logging.h"

namespace csl::isa {

void
IsaConfig::check() const
{
    csl_assert(dataWidth >= 2 && dataWidth <= 16,
               "dataWidth out of range: ", dataWidth);
    csl_assert(isPowerOfTwo(regCount) && regCount >= 2 && regCount <= 16,
               "regCount must be a power of two in [2,16]");
    csl_assert(isPowerOfTwo(imemSize) && imemSize >= 2,
               "imemSize must be a power of two >= 2");
    csl_assert(isPowerOfTwo(dmemSize) && dmemSize >= 2,
               "dmemSize must be a power of two >= 2");
    csl_assert(size_t(1) << dataWidth >= dmemSize,
               "dataWidth too narrow to address dmem");
    csl_assert(!trapOnOutOfRange || (size_t(1) << dataWidth) > dmemSize,
               "out-of-range traps need addresses beyond dmemSize");
}

bool
IsaConfig::supports(Opcode op) const
{
    switch (op) {
      case Opcode::Li:
      case Opcode::Add:
      case Opcode::Ld:
      case Opcode::Beqz:
        return true;
      case Opcode::Mul:
        return hasMul;
      case Opcode::St:
        return hasStore;
      case Opcode::Nop:
        return true;
    }
    return false;
}

uint64_t
encode(const Instr &instr, const IsaConfig &config)
{
    const int rb = config.regBits();
    const int ib = config.immLowBits();
    uint64_t bits = static_cast<uint64_t>(instr.op) & 0x7;
    bits = (bits << rb) | (instr.f1 & maskBits(rb));
    bits = (bits << rb) | (instr.f2 & maskBits(rb));
    bits = (bits << ib) | (instr.f3 & maskBits(ib));
    return bits;
}

Instr
decode(uint64_t bits, const IsaConfig &config)
{
    const int rb = config.regBits();
    const int ib = config.immLowBits();
    Instr instr;
    instr.f3 = static_cast<uint8_t>(bits & maskBits(ib));
    bits >>= ib;
    instr.f2 = static_cast<uint8_t>(bits & maskBits(rb));
    bits >>= rb;
    instr.f1 = static_cast<uint8_t>(bits & maskBits(rb));
    bits >>= rb;
    uint8_t op = static_cast<uint8_t>(bits & 0x7);
    instr.op = op <= static_cast<uint8_t>(Opcode::Nop)
                   ? static_cast<Opcode>(op)
                   : Opcode::Nop;
    if (!config.supports(instr.op))
        instr.op = Opcode::Nop;
    return instr;
}

std::string
disassemble(const Instr &instr, const IsaConfig &config)
{
    std::ostringstream oss;
    switch (instr.op) {
      case Opcode::Li:
        oss << "li   r" << instr.rd() << ", " << instr.imm(config);
        break;
      case Opcode::Add:
        oss << "add  r" << instr.rd() << ", r" << instr.srcA() << ", r"
            << instr.srcB(config);
        break;
      case Opcode::Mul:
        oss << "mul  r" << instr.rd() << ", r" << instr.srcA() << ", r"
            << instr.srcB(config);
        break;
      case Opcode::Ld:
        oss << "ld   r" << instr.rd() << ", [r" << instr.addrReg() << "]";
        break;
      case Opcode::St:
        oss << "st   r" << instr.dataReg() << ", [r" << instr.addrReg()
            << "]";
        break;
      case Opcode::Beqz:
        oss << "beqz r" << instr.condReg() << ", +" << instr.imm(config);
        break;
      case Opcode::Nop:
        oss << "nop";
        break;
    }
    return oss.str();
}

std::string
disassembleProgram(const std::vector<uint64_t> &words,
                   const IsaConfig &config)
{
    std::ostringstream oss;
    for (size_t pc = 0; pc < words.size(); ++pc) {
        oss << "  " << pc << ": "
            << disassemble(decode(words[pc], config), config) << "\n";
    }
    return oss.str();
}

} // namespace csl::isa
