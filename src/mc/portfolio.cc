#include "mc/portfolio.h"

#include "base/stopwatch.h"

namespace csl::mc {

const char *
verdictName(Verdict verdict)
{
    switch (verdict) {
      case Verdict::Attack: return "ATTACK";
      case Verdict::Proof: return "PROOF";
      case Verdict::BoundedSafe: return "BOUNDED-SAFE";
      case Verdict::Timeout: return "TIMEOUT";
      case Verdict::Diagnosed: return "DIAGNOSED";
    }
    return "?";
}

CheckResult
checkProperty(const rtl::Circuit &circuit, const CheckOptions &options)
{
    Stopwatch watch;
    Budget budget(options.timeoutSeconds);
    if (options.deadline)
        budget.attachDeadline(*options.deadline);
    CheckResult result;

    if (options.tryProof) {
        KInductionOptions kopts;
        kopts.maxK = options.maxDepth;
        kopts.assumedInvariants = options.assumedInvariants;
        kopts.decisionSeed = options.decisionSeed;
        kopts.startSafeDepth = options.startSafeDepth;
        KInduction engine(circuit, std::move(kopts));
        KInductionResult kres = engine.run(&budget);
        result.depth = kres.k;
        result.conflicts = kres.conflicts;
        result.deepestSafeBound = kres.baseSafe;
        switch (kres.kind) {
          case KInductionResult::Kind::Cex:
            result.verdict = Verdict::Attack;
            result.trace = std::move(kres.trace);
            break;
          case KInductionResult::Kind::Proof:
            result.verdict = Verdict::Proof;
            break;
          case KInductionResult::Kind::Unknown:
            result.verdict = Verdict::BoundedSafe;
            break;
          case KInductionResult::Kind::Timeout:
            result.verdict = Verdict::Timeout;
            break;
        }
    } else {
        Bmc engine(circuit, options.decisionSeed);
        if (options.startSafeDepth > 0)
            engine.markSafeUpTo(options.startSafeDepth);
        BmcResult bres = engine.run(options.maxDepth, &budget);
        result.depth = bres.depth;
        result.conflicts = bres.conflicts;
        result.deepestSafeBound = engine.checkedUpTo();
        switch (bres.kind) {
          case BmcResult::Kind::Cex:
            result.verdict = Verdict::Attack;
            result.trace = std::move(bres.trace);
            break;
          case BmcResult::Kind::BoundedSafe:
            result.verdict = Verdict::BoundedSafe;
            break;
          case BmcResult::Kind::Timeout:
            result.verdict = Verdict::Timeout;
            break;
        }
    }
    result.seconds = watch.seconds();
    return result;
}

} // namespace csl::mc
