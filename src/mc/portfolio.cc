#include "mc/portfolio.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <thread>

#include "base/stopwatch.h"

namespace csl::mc {

namespace {

/** One engine's slot in a portfolio run. */
struct EngineRun
{
    std::unique_ptr<rtl::Circuit> clone; ///< null on the inline path
    std::unique_ptr<Engine> engine;
    EngineResult result;
    double seconds = 0;
};

} // namespace

CheckResult
checkProperty(const rtl::Circuit &circuit, const CheckOptions &options)
{
    Stopwatch watch;

    std::vector<EngineKind> kinds = options.engines;
    if (kinds.empty()) {
        // Default set: both engines report minimal-depth attacks, so the
        // facade stays depth-exact for the cross-check oracle. PDR joins
        // only by explicit selection (runner proof stages, --engines).
        kinds.push_back(EngineKind::Bmc);
        if (options.tryProof)
            kinds.push_back(EngineKind::KInduction);
    }

    EngineConfig config;
    config.maxDepth = options.maxDepth;
    config.assumedInvariants = options.assumedInvariants;
    config.decisionSeed = options.decisionSeed;
    config.startSafeDepth = options.startSafeDepth;

    FactBoard board;
    board.publishSafeBound(options.startSafeDepth);

    // The shared time bound. Engines observe a caller cancellation
    // through this slice's shared flag; first-winner cancellation goes
    // through Engine::cancel() instead - cancelling the slice would
    // cancel the caller's deadline too (slices share the flag).
    Deadline shared =
        options.deadline ? options.deadline->slice(options.timeoutSeconds)
                         : Deadline::in(options.timeoutSeconds);

    const size_t n = kinds.size();
    std::vector<EngineRun> runs(n);
    for (size_t i = 0; i < n; ++i) {
        if (n == 1) {
            // Single engine: run inline on the caller's circuit.
            runs[i].engine = makeEngine(kinds[i], circuit, config);
        } else {
            // Private clone per engine: NetIds are indices into value
            // arrays, so they stay valid across the copy and the
            // engines' invariant/bound facts remain exchangeable.
            runs[i].clone = std::make_unique<rtl::Circuit>(circuit);
            runs[i].engine = makeEngine(kinds[i], *runs[i].clone, config);
        }
    }

    std::mutex winner_mutex;
    int winner = -1;

    auto drive = [&](size_t i) {
        Stopwatch engine_watch;
        // Budgets are single-thread objects: one per engine, all bounded
        // by the shared (atomic) deadline slice.
        Budget budget(options.timeoutSeconds);
        budget.attachDeadline(shared);
        Engine &engine = *runs[i].engine;
        engine.start(&board, &budget);
        for (;;) {
            if (engine.step()) {
                runs[i].result = engine.takeResult();
                break;
            }
            if (budget.exhausted()) {
                // Latch the engine's own interrupt so the next step is
                // guaranteed to conclude (with Timeout), then collect.
                engine.cancel();
                engine.step();
                runs[i].result = engine.takeResult();
                break;
            }
        }
        runs[i].seconds = engine_watch.seconds();

        // First conclusive verdict wins; losers are cancelled through
        // their thread-safe interrupt and conclude at the next poll.
        if (runs[i].result.conclusive()) {
            std::lock_guard<std::mutex> lock(winner_mutex);
            if (winner < 0) {
                winner = static_cast<int>(i);
                for (size_t j = 0; j < n; ++j)
                    if (j != i)
                        runs[j].engine->cancel();
            }
        }
    };

    if (n == 1) {
        drive(0);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(n);
        for (size_t i = 0; i < n; ++i)
            threads.emplace_back(drive, i);
        for (std::thread &t : threads)
            t.join();
    }

    CheckResult result;
    result.importedFacts = board.imports();
    size_t best_bound = board.safeBound();
    bool any_bounded = false;
    for (size_t i = 0; i < n; ++i) {
        const EngineResult &er = runs[i].result;
        EngineOutcome outcome;
        outcome.kind = kinds[i];
        outcome.verdict = er.verdict;
        outcome.depth = er.depth;
        outcome.seconds = runs[i].seconds;
        outcome.conflicts = er.conflicts;
        outcome.deepestSafeBound = er.deepestSafeBound;
        outcome.importedFacts = er.importedFacts;
        outcome.winner = static_cast<int>(i) == winner;
        result.engines.push_back(std::move(outcome));
        result.conflicts += er.conflicts;
        best_bound = std::max(best_bound, er.deepestSafeBound);
        any_bounded |= er.verdict == Verdict::BoundedSafe;
    }
    result.deepestSafeBound = best_bound;

    if (winner >= 0) {
        EngineResult &won = runs[winner].result;
        result.verdict = won.verdict;
        result.depth = won.depth;
        result.trace = std::move(won.trace);
        result.winner = engineKindName(kinds[winner]);
    } else {
        // No engine concluded Attack/Proof: synthesize the strongest
        // sound partial verdict from the pooled facts.
        result.verdict =
            any_bounded ? Verdict::BoundedSafe : Verdict::Timeout;
        result.depth = best_bound;
    }
    result.seconds = watch.seconds();
    return result;
}

} // namespace csl::mc
