/**
 * @file
 * The uniform model-checking engine abstraction behind the portfolio
 * facade (DESIGN.md "Engine layer").
 *
 * Every backend - BMC, k-induction, PDR, exhaustive enumeration - is
 * wrapped as an `Engine` with the same life cycle:
 *
 *     engine->start(&board, &budget);   // bind shared facts + budget
 *     while (!engine->step()) { }       // bounded units of work
 *     EngineResult r = engine->takeResult();
 *
 * step() performs one engine-specific unit (a BMC frame, one induction
 * depth, one PDR major round) and returns true once the engine has
 * concluded. cancel() is thread-safe and asynchronous: it interrupts the
 * engine's SAT solvers mid-solve (sat::Solver::requestInterrupt) so a
 * portfolio sibling can stop a losing engine the moment a conclusive
 * verdict exists.
 *
 * The FactBoard is the mutex-guarded exchange for *monotone* facts:
 * bad-free depth bounds and proven invariants only ever grow, so an
 * engine may import them at any point without unsoundness - a stale read
 * is merely less helpful, never wrong.
 */

#ifndef CSL_MC_ENGINE_H_
#define CSL_MC_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "base/budget.h"
#include "mc/trace.h"
#include "rtl/circuit.h"

namespace csl::mc {

/** Final verdict of a verification task. */
enum class Verdict {
    Attack,      ///< counterexample found (a real attack program)
    Proof,       ///< unbounded proof completed
    BoundedSafe, ///< no attack up to maxDepth, no proof attempted/found
    Timeout,     ///< budget exhausted without an answer
    Diagnosed,   ///< static pre-flight found the circuit ill-formed;
                 ///< no engine was run (details in the lint report)
};

/** Render a verdict for tables. */
const char *verdictName(Verdict verdict);

/** The available model-checking backends. */
enum class EngineKind {
    Bmc,        ///< incremental bounded model checking (attack hunting)
    KInduction, ///< k-induction with strengthening invariants
    Pdr,        ///< property-directed reachability (IC3)
    Exhaustive, ///< explicit-state BFS oracle (tiny circuits only)
};

/** Short stable name: "bmc", "kind", "pdr", "exh". */
const char *engineKindName(EngineKind kind);

/** Parse one engine name (accepts the aliases "kinduction",
 * "k-induction" and "exhaustive"). */
std::optional<EngineKind> parseEngineKind(const std::string &name);

/** Parse a comma-separated engine list, e.g. "bmc,kind,pdr".
 * Duplicates collapse; "" parses to the empty list (= defaults).
 * Returns std::nullopt when any element is empty or unknown. */
std::optional<std::vector<EngineKind>>
parseEngineList(const std::string &csv);

/** Render an engine set back to its comma-separated form. */
std::string engineListName(const std::vector<EngineKind> &kinds);

/**
 * Mutex-guarded exchange of monotone facts between concurrently running
 * engines. Both fact families only ever grow:
 *  - the safe bound is a max (frames 0..bound-1 proven bad-free),
 *  - the invariant set is a union of nets proven to hold in every
 *    reachable state.
 * Monotonicity is what makes mid-run sharing sound under any thread
 * interleaving: importing an old snapshot can never inject a fact that
 * later turns false.
 */
class FactBoard
{
  public:
    /** Record that frames 0..depth-1 are bad-free. Keeps the max. */
    void publishSafeBound(size_t depth);

    /** Deepest published bad-free bound. */
    size_t safeBound() const;

    /** Union @p invariants into the proven set. */
    void publishInvariants(const std::vector<rtl::NetId> &invariants);

    /** Snapshot of the proven invariants, sorted (deterministic). */
    std::vector<rtl::NetId> invariants() const;

    /** Count a fact import by some engine (telemetry). */
    void countImport();

    /** Total facts imported across all engines. */
    uint64_t imports() const;

  private:
    mutable std::mutex mutex_;
    size_t safeBound_ = 0;
    std::vector<rtl::NetId> invariants_; ///< sorted, unique
    std::atomic<uint64_t> imports_{0};
};

/** Per-engine configuration (the engine-agnostic subset of
 * CheckOptions; time limits live in the Budget passed to start()). */
struct EngineConfig
{
    /** Maximum BMC depth / induction k. */
    size_t maxDepth = 40;
    /** Trusted strengthening invariants (Houdini survivors). */
    std::vector<rtl::NetId> assumedInvariants;
    /** Non-zero: perturb the SAT decision heuristics. */
    uint64_t decisionSeed = 0;
    /** Frames a previous run of this circuit proved bad-free. */
    size_t startSafeDepth = 0;
    /** Explicit-state budget for the exhaustive engine. */
    size_t maxStates = 1 << 20;
};

/** What an engine concluded, plus its salvageable partial answers. */
struct EngineResult
{
    Verdict verdict = Verdict::Timeout;
    /** Attack: cex frame. Proof: inductive depth / closing frame. */
    size_t depth = 0;
    std::optional<Trace> trace;
    uint64_t conflicts = 0;
    /** Deepest bound this engine knows to be bad-free. */
    size_t deepestSafeBound = 0;
    /** Invariants this engine proved (none of the current backends
     * discover exportable ones yet; surface reserved by the contract). */
    std::vector<rtl::NetId> provenInvariants;
    /** Facts this engine imported from the FactBoard. */
    uint64_t importedFacts = 0;

    /** Attack and Proof decide the property; the rest are partial. */
    bool conclusive() const
    {
        return verdict == Verdict::Attack || verdict == Verdict::Proof;
    }
};

/**
 * A model-checking backend behind the uniform contract described in the
 * file comment. Engines are single-owner: start()/step()/takeResult()
 * belong to one driving thread; only cancel() may be called from
 * another thread.
 */
class Engine
{
  public:
    virtual ~Engine();

    virtual EngineKind kind() const = 0;

    /** Short name for reports ("bmc", "kind", ...). */
    const char *name() const { return engineKindName(kind()); }

    /**
     * Bind the shared fact board (may be null) and the budget charged by
     * this engine's solvers. Must be called once, before step().
     */
    virtual void start(FactBoard *board, Budget *budget) = 0;

    /**
     * One bounded unit of work. Returns true when the engine has
     * concluded (verdict available via takeResult()); false to continue.
     * Engines import/publish FactBoard facts between units.
     */
    virtual bool step() = 0;

    /**
     * Thread-safe asynchronous cancellation: interrupt the engine's
     * solvers; the engine concludes with Timeout at the next step()
     * boundary. Partial facts (safe bounds) remain valid.
     */
    virtual void cancel() = 0;

    /** The conclusion; valid once step() returned true. */
    virtual EngineResult takeResult() = 0;
};

/** Construct a backend over @p circuit. The circuit must stay alive and
 * unchanged for the engine's lifetime. */
std::unique_ptr<Engine> makeEngine(EngineKind kind,
                                   const rtl::Circuit &circuit,
                                   EngineConfig config = {});

} // namespace csl::mc

#endif // CSL_MC_ENGINE_H_
