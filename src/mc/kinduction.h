/**
 * @file
 * k-induction - the unbounded-proof engine (the role of JasperGold's
 * Mp/AM proof engines in the paper's setup).
 *
 * The step case runs on a free initial state: any k+1-cycle path that
 * satisfies the environment constraints, is bad-free for k cycles and
 * ends in a bad state. If no such path exists (Unsat) and BMC has shown
 * the first k frames reachable from the real initial state are bad-free,
 * the property holds for unbounded time.
 *
 * Optional strengthening invariants (1-bit nets known to hold in all
 * reachable states, e.g. the survivors of the LEAVE-style Houdini search)
 * are asserted in every step-case frame; callers are responsible for
 * their validity - proveInductiveInvariants() provides a sound way to
 * establish it.
 */

#ifndef CSL_MC_KINDUCTION_H_
#define CSL_MC_KINDUCTION_H_

#include <memory>
#include <optional>
#include <vector>

#include "base/budget.h"
#include "bitblast/cnf_builder.h"
#include "bitblast/unroller.h"
#include "mc/bmc.h"
#include "mc/trace.h"
#include "rtl/circuit.h"
#include "sat/solver.h"

namespace csl::mc {

/** Outcome of a k-induction run. */
struct KInductionResult
{
    enum class Kind {
        Cex,     ///< base case found a real counterexample
        Proof,   ///< property proven for unbounded time
        Unknown, ///< max k reached without convergence
        Timeout, ///< budget exhausted
    };
    Kind kind = Kind::Unknown;
    size_t k = 0; ///< Proof: inductive depth; Cex: failing frame
    std::optional<Trace> trace;
    uint64_t conflicts = 0;
    /** Deepest base-case bound proven bad-free (salvageable partial
     * answer even when the run timed out or was cancelled). */
    size_t baseSafe = 0;
};

/** Configuration for KInduction. */
struct KInductionOptions
{
    size_t maxK = 64;
    /** Trusted invariants asserted per step frame (see file comment). */
    std::vector<rtl::NetId> assumedInvariants;
    /** Non-zero: perturb both solvers' decisions (witness retries). */
    uint64_t decisionSeed = 0;
    /** Base-case frames a previous run already proved safe (resume). */
    size_t startSafeDepth = 0;
};

/** Interleaved base-case BMC + inductive step engine. */
class KInduction
{
  public:
    KInduction(const rtl::Circuit &circuit, KInductionOptions options = {});
    ~KInduction();

    /** Run until proof, counterexample, maxK, or budget exhaustion. */
    KInductionResult run(Budget *budget = nullptr);

    /**
     * One induction depth: the base case up to the current k, then the
     * step query at k. Returns true once the run has concluded (outcome
     * in current()); false to deepen. The stepwise form is what the
     * portfolio scheduler drives, importing shared facts between steps.
     */
    bool step(Budget *budget = nullptr);

    /** Outcome so far; final once step() returned true. */
    const KInductionResult &current() const { return result_; }

    /** Deepest base-case bound proven (or resumed as) bad-free. */
    size_t baseCheckedUpTo() const { return base_.checkedUpTo(); }

    /**
     * Adopt an externally proven bad-free bound (e.g. published by a
     * concurrently running BMC engine) for the base case: frames
     * 0..depth-1 are skipped instead of re-solved.
     */
    void importBaseSafe(size_t depth) { base_.markSafeUpTo(depth); }

    /** Thread-safe: interrupt both solvers mid-run (see Bmc). */
    void requestInterrupt();
    void clearInterrupt();

  private:
    const rtl::Circuit &circuit_;
    KInductionOptions options_;
    Bmc base_;

    sat::Solver stepSolver_;
    std::unique_ptr<bitblast::CnfBuilder> stepCnf_;
    std::unique_ptr<bitblast::Unroller> stepUnroller_;

    size_t k_ = 1;            ///< next induction depth to try
    KInductionResult result_; ///< outcome accumulator (see current())
};

/**
 * Houdini-style validity check for candidate invariants: returns the
 * maximal subset of @p candidates that is (a) implied by the first
 * @p window frames from the initial state and (b) jointly
 * @p window-inductive under the circuit's constraints (assumed in frames
 * 0..window-1, checked at frame `window`). Nets in the returned set may
 * safely be used as assumedInvariants: by k-induction they hold in every
 * reachable state.
 *
 * A window > 1 lets candidates survive whose one-step counterexamples
 * are excused by environment constraints a few cycles later - e.g. a
 * bound-to-commit load's transiently differing result is vindicated by
 * the contract assumption at its commit, which lies within the window
 * but not within one step.
 *
 * Returns std::nullopt on budget exhaustion (or when the
 * `houdini.interrupt` fault point fires). In that case, when
 * @p partial_out is non-null it receives the candidate set as pruned so
 * far - NOT yet proven inductive, but a sound and smaller seed for
 * restarting the search (the Houdini loop only ever removes candidates,
 * so a resumed run over the pruned set converges to the same fixpoint).
 *
 * @p threads > 1 shards the phase-1 initial-window pruning across that
 * many worker threads, each solving its shard on a private clone of the
 * circuit and publishing survivors through a FactBoard. Pruning is
 * per-candidate, so sharding does not change which candidates survive;
 * the result is identical to the sequential run. The phase-2 joint
 * fixpoint is inherently sequential and always runs single-threaded.
 */
std::optional<std::vector<rtl::NetId>> proveInductiveInvariants(
    const rtl::Circuit &circuit, std::vector<rtl::NetId> candidates,
    Budget *budget = nullptr, size_t window = 1,
    std::vector<rtl::NetId> *partial_out = nullptr, size_t threads = 1);

} // namespace csl::mc

#endif // CSL_MC_KINDUCTION_H_
