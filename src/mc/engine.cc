#include "mc/engine.h"

#include <algorithm>

#include "base/logging.h"
#include "mc/bmc.h"
#include "mc/exhaustive.h"
#include "mc/kinduction.h"
#include "mc/pdr.h"

namespace csl::mc {

using rtl::NetId;

const char *
verdictName(Verdict verdict)
{
    switch (verdict) {
      case Verdict::Attack: return "ATTACK";
      case Verdict::Proof: return "PROOF";
      case Verdict::BoundedSafe: return "BOUNDED-SAFE";
      case Verdict::Timeout: return "TIMEOUT";
      case Verdict::Diagnosed: return "DIAGNOSED";
    }
    return "?";
}

const char *
engineKindName(EngineKind kind)
{
    switch (kind) {
      case EngineKind::Bmc: return "bmc";
      case EngineKind::KInduction: return "kind";
      case EngineKind::Pdr: return "pdr";
      case EngineKind::Exhaustive: return "exh";
    }
    return "?";
}

std::optional<EngineKind>
parseEngineKind(const std::string &name)
{
    if (name == "bmc")
        return EngineKind::Bmc;
    if (name == "kind" || name == "kinduction" || name == "k-induction")
        return EngineKind::KInduction;
    if (name == "pdr")
        return EngineKind::Pdr;
    if (name == "exh" || name == "exhaustive")
        return EngineKind::Exhaustive;
    return std::nullopt;
}

std::optional<std::vector<EngineKind>>
parseEngineList(const std::string &csv)
{
    std::vector<EngineKind> kinds;
    if (csv.empty())
        return kinds; // empty list = "use the defaults"
    size_t pos = 0;
    for (;;) {
        size_t comma = csv.find(',', pos);
        size_t end = comma == std::string::npos ? csv.size() : comma;
        std::optional<EngineKind> kind =
            parseEngineKind(csv.substr(pos, end - pos));
        if (!kind)
            return std::nullopt; // unknown or empty element
        if (std::find(kinds.begin(), kinds.end(), *kind) == kinds.end())
            kinds.push_back(*kind);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return kinds;
}

std::string
engineListName(const std::vector<EngineKind> &kinds)
{
    std::string out;
    for (EngineKind kind : kinds) {
        if (!out.empty())
            out += ',';
        out += engineKindName(kind);
    }
    return out;
}

// ---------------------------------------------------------------------------
// FactBoard

void
FactBoard::publishSafeBound(size_t depth)
{
    std::lock_guard<std::mutex> lock(mutex_);
    safeBound_ = std::max(safeBound_, depth);
}

size_t
FactBoard::safeBound() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return safeBound_;
}

void
FactBoard::publishInvariants(const std::vector<NetId> &invariants)
{
    if (invariants.empty())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    invariants_.insert(invariants_.end(), invariants.begin(),
                       invariants.end());
    std::sort(invariants_.begin(), invariants_.end());
    invariants_.erase(
        std::unique(invariants_.begin(), invariants_.end()),
        invariants_.end());
}

std::vector<NetId>
FactBoard::invariants() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return invariants_;
}

void
FactBoard::countImport()
{
    imports_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t
FactBoard::imports() const
{
    return imports_.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Engine adapters

Engine::~Engine() = default;

namespace {

/** BMC as an Engine: one frame per step; publishes every bound it
 * proves and imports deeper bounds siblings published. */
class BmcEngine final : public Engine
{
  public:
    BmcEngine(const rtl::Circuit &circuit, EngineConfig config)
        : config_(std::move(config)), bmc_(circuit, config_.decisionSeed)
    {
    }

    EngineKind kind() const override { return EngineKind::Bmc; }

    void
    start(FactBoard *board, Budget *budget) override
    {
        board_ = board;
        budget_ = budget;
        if (config_.startSafeDepth > 0)
            bmc_.markSafeUpTo(
                std::min(config_.startSafeDepth, config_.maxDepth));
        publishBound();
    }

    bool
    step() override
    {
        importBound();
        if (cancelled_.load(std::memory_order_relaxed)) {
            finishTimeout();
            return true;
        }
        if (bmc_.checkedUpTo() >= config_.maxDepth) {
            result_.verdict = Verdict::BoundedSafe;
            result_.depth = bmc_.checkedUpTo();
            result_.deepestSafeBound = bmc_.checkedUpTo();
            return true;
        }
        BmcResult step_result =
            bmc_.run(bmc_.checkedUpTo() + 1, budget_);
        result_.conflicts = step_result.conflicts;
        result_.deepestSafeBound = bmc_.checkedUpTo();
        publishBound();
        switch (step_result.kind) {
          case BmcResult::Kind::Cex:
            result_.verdict = Verdict::Attack;
            result_.depth = step_result.depth;
            result_.trace = std::move(step_result.trace);
            return true;
          case BmcResult::Kind::Timeout:
            finishTimeout();
            return true;
          case BmcResult::Kind::BoundedSafe:
            return false; // deepen
        }
        return false;
    }

    void
    cancel() override
    {
        cancelled_.store(true, std::memory_order_relaxed);
        bmc_.requestInterrupt();
    }

    EngineResult takeResult() override { return std::move(result_); }

  private:
    void
    importBound()
    {
        if (!board_)
            return;
        size_t bound = board_->safeBound();
        if (bound > bmc_.checkedUpTo()) {
            bmc_.markSafeUpTo(std::min(bound, config_.maxDepth));
            ++result_.importedFacts;
            board_->countImport();
        }
    }

    void
    publishBound()
    {
        if (board_)
            board_->publishSafeBound(bmc_.checkedUpTo());
    }

    void
    finishTimeout()
    {
        result_.verdict = Verdict::Timeout;
        result_.depth = bmc_.checkedUpTo();
        result_.deepestSafeBound = bmc_.checkedUpTo();
    }

    EngineConfig config_;
    Bmc bmc_;
    FactBoard *board_ = nullptr;
    Budget *budget_ = nullptr;
    std::atomic<bool> cancelled_{false};
    EngineResult result_;
};

/** k-induction as an Engine: one induction depth per step; imports
 * sibling-published safe bounds into its base case. */
class KInductionEngine final : public Engine
{
  public:
    KInductionEngine(const rtl::Circuit &circuit, EngineConfig config)
        : config_(std::move(config)), engine_(circuit, makeOptions())
    {
    }

    EngineKind kind() const override { return EngineKind::KInduction; }

    void
    start(FactBoard *board, Budget *budget) override
    {
        board_ = board;
        budget_ = budget;
        publishBound();
    }

    bool
    step() override
    {
        importBound();
        if (cancelled_.load(std::memory_order_relaxed)) {
            finish(Verdict::Timeout, engine_.current().k);
            return true;
        }
        bool done = engine_.step(budget_);
        publishBound();
        if (!done)
            return false;
        const KInductionResult &kres = engine_.current();
        result_.conflicts = kres.conflicts;
        switch (kres.kind) {
          case KInductionResult::Kind::Cex:
            result_.verdict = Verdict::Attack;
            result_.depth = kres.k;
            result_.trace = kres.trace;
            break;
          case KInductionResult::Kind::Proof:
            finish(Verdict::Proof, kres.k);
            break;
          case KInductionResult::Kind::Unknown:
            finish(Verdict::BoundedSafe, kres.k);
            break;
          case KInductionResult::Kind::Timeout:
            finish(Verdict::Timeout, kres.k);
            break;
        }
        result_.deepestSafeBound = kres.baseSafe;
        return true;
    }

    void
    cancel() override
    {
        cancelled_.store(true, std::memory_order_relaxed);
        engine_.requestInterrupt();
    }

    EngineResult takeResult() override { return std::move(result_); }

  private:
    KInductionOptions
    makeOptions() const
    {
        KInductionOptions kopts;
        kopts.maxK = config_.maxDepth;
        kopts.assumedInvariants = config_.assumedInvariants;
        kopts.decisionSeed = config_.decisionSeed;
        kopts.startSafeDepth = config_.startSafeDepth;
        return kopts;
    }

    void
    importBound()
    {
        if (!board_)
            return;
        size_t bound = board_->safeBound();
        if (bound > engine_.baseCheckedUpTo()) {
            engine_.importBaseSafe(std::min(bound, config_.maxDepth));
            ++result_.importedFacts;
            board_->countImport();
        }
    }

    void
    publishBound()
    {
        if (board_)
            board_->publishSafeBound(engine_.baseCheckedUpTo());
    }

    void
    finish(Verdict verdict, size_t depth)
    {
        result_.verdict = verdict;
        result_.depth = depth;
        result_.conflicts = engine_.current().conflicts;
        result_.deepestSafeBound = engine_.baseCheckedUpTo();
    }

    EngineConfig config_;
    KInduction engine_;
    FactBoard *board_ = nullptr;
    Budget *budget_ = nullptr;
    std::atomic<bool> cancelled_{false};
    EngineResult result_;
};

/** PDR as an Engine: one major round per step; publishes the bounded
 * safety implied by each completed level. */
class PdrEngine final : public Engine
{
  public:
    PdrEngine(const rtl::Circuit &circuit, EngineConfig config)
        : config_(std::move(config)), engine_(circuit, makeOptions())
    {
    }

    EngineKind kind() const override { return EngineKind::Pdr; }

    void
    start(FactBoard *board, Budget *budget) override
    {
        board_ = board;
        budget_ = budget;
    }

    bool
    step() override
    {
        if (cancelled_.load(std::memory_order_relaxed)) {
            finish(Verdict::Timeout, engine_.current().frames);
            return true;
        }
        bool done = engine_.step(budget_);
        publishBound();
        if (!done)
            return false;
        const PdrResult &pres = engine_.current();
        switch (pres.kind) {
          case PdrResult::Kind::Cex:
            result_.verdict = Verdict::Attack;
            result_.depth = pres.depth;
            result_.trace = pres.trace;
            break;
          case PdrResult::Kind::Proof:
            finish(Verdict::Proof, pres.depth);
            break;
          case PdrResult::Kind::Timeout:
            finish(Verdict::Timeout, pres.frames);
            break;
        }
        result_.deepestSafeBound = engine_.safeFrames();
        return true;
    }

    void
    cancel() override
    {
        cancelled_.store(true, std::memory_order_relaxed);
        engine_.requestInterrupt();
    }

    EngineResult takeResult() override { return std::move(result_); }

  private:
    PdrOptions
    makeOptions() const
    {
        PdrOptions popts;
        popts.assumedInvariants = config_.assumedInvariants;
        return popts;
    }

    void
    publishBound()
    {
        if (board_)
            board_->publishSafeBound(engine_.safeFrames());
    }

    void
    finish(Verdict verdict, size_t depth)
    {
        result_.verdict = verdict;
        result_.depth = depth;
        result_.deepestSafeBound = engine_.safeFrames();
    }

    EngineConfig config_;
    Pdr engine_;
    FactBoard *board_ = nullptr;
    Budget *budget_ = nullptr;
    std::atomic<bool> cancelled_{false};
    EngineResult result_;
};

/** Explicit-state BFS as an Engine: a single (possibly long) step,
 * cancellable through its stop flag. */
class ExhaustiveEngine final : public Engine
{
  public:
    ExhaustiveEngine(const rtl::Circuit &circuit, EngineConfig config)
        : circuit_(circuit), config_(std::move(config))
    {
    }

    EngineKind kind() const override { return EngineKind::Exhaustive; }

    void
    start(FactBoard *board, Budget *budget) override
    {
        board_ = board;
        budget_ = budget;
    }

    bool
    step() override
    {
        ExhaustiveResult eres = exhaustiveCheck(
            circuit_, config_.maxStates, budget_, &cancelled_);
        if (eres.completed && eres.badReachable) {
            result_.verdict = Verdict::Attack;
            result_.depth = eres.badDepth;
            result_.trace = std::move(eres.trace);
        } else if (eres.completed) {
            result_.verdict = Verdict::Proof;
            result_.depth = eres.statesVisited;
        } else {
            result_.verdict = Verdict::Timeout;
        }
        return true;
    }

    void
    cancel() override
    {
        cancelled_.store(true, std::memory_order_relaxed);
    }

    EngineResult takeResult() override { return std::move(result_); }

  private:
    const rtl::Circuit &circuit_;
    EngineConfig config_;
    FactBoard *board_ = nullptr;
    Budget *budget_ = nullptr;
    std::atomic<bool> cancelled_{false};
    EngineResult result_;
};

} // namespace

std::unique_ptr<Engine>
makeEngine(EngineKind kind, const rtl::Circuit &circuit,
           EngineConfig config)
{
    switch (kind) {
      case EngineKind::Bmc:
        return std::make_unique<BmcEngine>(circuit, std::move(config));
      case EngineKind::KInduction:
        return std::make_unique<KInductionEngine>(circuit,
                                                  std::move(config));
      case EngineKind::Pdr:
        return std::make_unique<PdrEngine>(circuit, std::move(config));
      case EngineKind::Exhaustive:
        return std::make_unique<ExhaustiveEngine>(circuit,
                                                  std::move(config));
    }
    csl_panic("unknown engine kind");
    return nullptr;
}

} // namespace csl::mc
