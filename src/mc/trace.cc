#include "mc/trace.h"

#include <sstream>

#include "base/logging.h"
#include "sim/simulator.h"

namespace csl::mc {

using rtl::NetId;

Trace
extractTrace(const rtl::Circuit &circuit, const bitblast::Unroller &unroller,
             size_t length)
{
    csl_assert(length >= 1 && length <= unroller.numFrames(),
               "trace length out of range");
    Trace trace;
    trace.length = length;
    const auto &cone = unroller.cone();
    for (NetId reg : circuit.registers()) {
        if (cone[reg])
            trace.initialRegs[reg] = unroller.valueOf(reg, 0);
    }
    trace.inputs.resize(length);
    for (size_t f = 0; f < length; ++f) {
        for (NetId in : circuit.inputs()) {
            if (cone[in])
                trace.inputs[f][in] = unroller.valueOf(in, f);
        }
    }
    return trace;
}

ReplayResult
replayTrace(const rtl::Circuit &circuit, const Trace &trace)
{
    sim::Simulator simulator(circuit);
    simulator.reset(trace.initialRegs);
    ReplayResult result;
    for (size_t f = 0; f < trace.length; ++f) {
        simulator.evaluate(trace.inputs[f]);
        if (f == 0)
            result.initConstraintsHeld = simulator.initConstraintsHold();
        if (!simulator.constraintsHold())
            result.constraintsHeld = false;
        if (f + 1 == trace.length)
            result.badReached = simulator.anyBad();
        simulator.tick();
    }
    return result;
}

std::string
formatTrace(const rtl::Circuit &circuit, const Trace &trace,
            const std::vector<NetId> &nets)
{
    sim::Simulator simulator(circuit);
    simulator.reset(trace.initialRegs);
    std::ostringstream oss;
    for (size_t f = 0; f < trace.length; ++f) {
        simulator.evaluate(trace.inputs[f]);
        oss << "cycle " << f << ":";
        for (NetId id : nets)
            oss << " " << circuit.name(id) << "=" << simulator.value(id);
        oss << "\n";
        simulator.tick();
    }
    return oss.str();
}

} // namespace csl::mc
