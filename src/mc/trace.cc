#include "mc/trace.h"

#include <sstream>

#include "base/logging.h"
#include "sim/simulator.h"

namespace csl::mc {

using rtl::NetId;

Trace
extractTrace(const rtl::Circuit &circuit, const bitblast::Unroller &unroller,
             size_t length)
{
    csl_assert(length >= 1 && length <= unroller.numFrames(),
               "trace length out of range");
    Trace trace;
    trace.length = length;
    const auto &cone = unroller.cone();
    for (NetId reg : circuit.registers()) {
        if (cone[reg])
            trace.initialRegs[reg] = unroller.valueOf(reg, 0);
    }
    trace.inputs.resize(length);
    for (size_t f = 0; f < length; ++f) {
        for (NetId in : circuit.inputs()) {
            if (cone[in])
                trace.inputs[f][in] = unroller.valueOf(in, f);
        }
    }
    return trace;
}

ReplayResult
replayTrace(const rtl::Circuit &circuit, const Trace &trace)
{
    sim::Simulator simulator(circuit);
    simulator.reset(trace.initialRegs);
    ReplayResult result;
    for (size_t f = 0; f < trace.length; ++f) {
        simulator.evaluate(trace.inputs[f]);
        if (f == 0)
            result.initConstraintsHeld = simulator.initConstraintsHold();
        if (!simulator.constraintsHold())
            result.constraintsHeld = false;
        if (f + 1 == trace.length)
            result.badReached = simulator.anyBad();
        simulator.tick();
    }
    return result;
}

Trace
translateTrace(const rtl::Circuit &original,
               const rtl::transform::NetMap &map, const Trace &reduced)
{
    Trace trace;
    trace.length = reduced.length;
    for (NetId reg : original.registers()) {
        if (auto value = map.constantOf(reg)) {
            trace.initialRegs[reg] = *value;
            continue;
        }
        const NetId mapped = map.mapped(reg);
        if (mapped == rtl::kNoNet)
            continue;
        auto it = reduced.initialRegs.find(mapped);
        if (it != reduced.initialRegs.end())
            trace.initialRegs[reg] = it->second;
    }
    trace.inputs.resize(reduced.length);
    for (size_t f = 0; f < reduced.length; ++f) {
        for (NetId in : original.inputs()) {
            if (auto value = map.constantOf(in)) {
                trace.inputs[f][in] = *value;
                continue;
            }
            const NetId mapped = map.mapped(in);
            if (mapped == rtl::kNoNet)
                continue;
            auto it = reduced.inputs[f].find(mapped);
            if (it != reduced.inputs[f].end())
                trace.inputs[f][in] = it->second;
        }
    }
    return trace;
}

std::string
formatTrace(const rtl::Circuit &circuit, const Trace &trace,
            const std::vector<NetId> &nets)
{
    sim::Simulator simulator(circuit);
    simulator.reset(trace.initialRegs);
    std::ostringstream oss;
    for (size_t f = 0; f < trace.length; ++f) {
        simulator.evaluate(trace.inputs[f]);
        oss << "cycle " << f << ":";
        for (NetId id : nets)
            oss << " " << circuit.name(id) << "=" << simulator.value(id);
        oss << "\n";
        simulator.tick();
    }
    return oss.str();
}

} // namespace csl::mc
