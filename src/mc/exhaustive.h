/**
 * @file
 * Explicit-state exhaustive reachability for tiny circuits.
 *
 * Enumerates every initial state (symbolic-init register assignment
 * satisfying the init constraints) and every input assignment at every
 * step, pruning paths whose per-cycle constraints fail - the exact
 * semantics the SAT-based engines implement symbolically. Exponential,
 * so only usable for circuits with a handful of state/input bits, where
 * it serves as an independent oracle for cross-validating BMC and
 * k-induction in the property-test suites.
 */

#ifndef CSL_MC_EXHAUSTIVE_H_
#define CSL_MC_EXHAUSTIVE_H_

#include <atomic>
#include <cstdint>
#include <optional>

#include "base/budget.h"
#include "mc/trace.h"
#include "rtl/circuit.h"

namespace csl::mc {

/** Result of an exhaustive exploration. */
struct ExhaustiveResult
{
    bool completed = false;    ///< state budget sufficed
    bool badReachable = false; ///< some bad net fires on a legal path
    /** Earliest cycle at which a bad fires (when badReachable). */
    size_t badDepth = 0;
    size_t statesVisited = 0;
    /** A minimal-depth witness path (when badReachable). */
    std::optional<Trace> trace;
};

/**
 * Explore @p circuit exhaustively. Gives up (completed=false) once more
 * than @p max_states distinct states have been expanded or the total
 * symbolic bit-width exceeds practical limits (~20 bits).
 *
 * @p budget is charged one unit per expanded state; its exhaustion - or
 * @p stop turning true (the portfolio's thread-safe cancellation) -
 * abandons the exploration with completed=false.
 */
ExhaustiveResult exhaustiveCheck(const rtl::Circuit &circuit,
                                 size_t max_states = 1 << 20,
                                 Budget *budget = nullptr,
                                 const std::atomic<bool> *stop = nullptr);

} // namespace csl::mc

#endif // CSL_MC_EXHAUSTIVE_H_
