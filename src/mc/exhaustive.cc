#include "mc/exhaustive.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/bits.h"
#include "base/logging.h"
#include "sim/simulator.h"

namespace csl::mc {

using rtl::Net;
using rtl::NetId;

namespace {

/** Pack register values into one key (total state width must be <= 64). */
struct StatePacker
{
    std::vector<NetId> regs;
    std::vector<int> widths;
    int totalBits = 0;

    explicit StatePacker(const rtl::Circuit &circuit)
    {
        for (NetId reg : circuit.registers()) {
            regs.push_back(reg);
            int width = circuit.net(reg).width;
            widths.push_back(width);
            totalBits += width;
        }
    }

    uint64_t
    pack(const std::unordered_map<NetId, uint64_t> &values) const
    {
        uint64_t key = 0;
        for (size_t i = 0; i < regs.size(); ++i) {
            auto it = values.find(regs[i]);
            uint64_t v = it == values.end() ? 0 : it->second;
            key = (key << widths[i]) | truncBits(v, widths[i]);
        }
        return key;
    }

    std::unordered_map<NetId, uint64_t>
    unpack(uint64_t key) const
    {
        std::unordered_map<NetId, uint64_t> values;
        for (size_t i = regs.size(); i-- > 0;) {
            values[regs[i]] = key & maskBits(widths[i]);
            key >>= widths[i];
        }
        return values;
    }
};

} // namespace

ExhaustiveResult
exhaustiveCheck(const rtl::Circuit &circuit, size_t max_states)
{
    ExhaustiveResult result;
    StatePacker packer(circuit);

    int symbolic_bits = 0;
    std::vector<NetId> symbolic;
    for (NetId reg : circuit.registers()) {
        if (circuit.net(reg).symbolicInit) {
            symbolic.push_back(reg);
            symbolic_bits += circuit.net(reg).width;
        }
    }
    int input_bits = 0;
    for (NetId in : circuit.inputs())
        input_bits += circuit.net(in).width;

    if (packer.totalBits > 40 || symbolic_bits > 20 || input_bits > 16) {
        result.completed = false;
        return result; // too large for explicit enumeration
    }

    sim::Simulator simulator(circuit);

    // Enumerate initial states.
    std::unordered_map<uint64_t, size_t> depth_of; // state -> min depth
    std::deque<uint64_t> queue;
    for (uint64_t assign = 0; assign < (1ull << symbolic_bits); ++assign) {
        std::unordered_map<NetId, uint64_t> init;
        uint64_t rest = assign;
        for (NetId reg : symbolic) {
            int width = circuit.net(reg).width;
            init[reg] = rest & maskBits(width);
            rest >>= width;
        }
        simulator.reset(init);
        // Check init constraints under some input (init constraints must
        // not depend on inputs for this oracle; evaluate with zeros).
        simulator.evaluate();
        if (!simulator.initConstraintsHold())
            continue;
        std::unordered_map<NetId, uint64_t> full;
        for (NetId reg : circuit.registers())
            full[reg] = simulator.value(reg);
        uint64_t key = packer.pack(full);
        if (depth_of.emplace(key, 0).second)
            queue.push_back(key);
    }

    // BFS over (state, input) successors.
    while (!queue.empty()) {
        uint64_t key = queue.front();
        queue.pop_front();
        size_t depth = depth_of[key];
        ++result.statesVisited;
        if (result.statesVisited > max_states)
            return result; // completed stays false

        for (uint64_t in_assign = 0; in_assign < (1ull << input_bits);
             ++in_assign) {
            simulator.reset(packer.unpack(key));
            std::unordered_map<NetId, uint64_t> inputs;
            uint64_t rest = in_assign;
            for (NetId in : circuit.inputs()) {
                int width = circuit.net(in).width;
                inputs[in] = rest & maskBits(width);
                rest >>= width;
            }
            simulator.evaluate(inputs);
            if (!simulator.constraintsHold())
                continue; // assumption prunes this edge
            if (simulator.anyBad()) {
                if (!result.badReachable || depth < result.badDepth) {
                    result.badReachable = true;
                    result.badDepth = depth;
                }
                continue; // count the failure; path ends at the bad
            }
            simulator.tick();
            simulator.evaluate(inputs); // settle register outputs
            std::unordered_map<NetId, uint64_t> full;
            for (NetId reg : circuit.registers())
                full[reg] = simulator.value(reg);
            uint64_t next_key = packer.pack(full);
            if (depth_of.emplace(next_key, depth + 1).second)
                queue.push_back(next_key);
        }
    }
    result.completed = true;
    return result;
}

} // namespace csl::mc
