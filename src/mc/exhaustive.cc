#include "mc/exhaustive.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/bits.h"
#include "base/logging.h"
#include "sim/simulator.h"

namespace csl::mc {

using rtl::Net;
using rtl::NetId;

namespace {

/** Pack register values into one key (total state width must be <= 64). */
struct StatePacker
{
    std::vector<NetId> regs;
    std::vector<int> widths;
    int totalBits = 0;

    explicit StatePacker(const rtl::Circuit &circuit)
    {
        for (NetId reg : circuit.registers()) {
            regs.push_back(reg);
            int width = circuit.net(reg).width;
            widths.push_back(width);
            totalBits += width;
        }
    }

    uint64_t
    pack(const std::unordered_map<NetId, uint64_t> &values) const
    {
        uint64_t key = 0;
        for (size_t i = 0; i < regs.size(); ++i) {
            auto it = values.find(regs[i]);
            uint64_t v = it == values.end() ? 0 : it->second;
            key = (key << widths[i]) | truncBits(v, widths[i]);
        }
        return key;
    }

    std::unordered_map<NetId, uint64_t>
    unpack(uint64_t key) const
    {
        std::unordered_map<NetId, uint64_t> values;
        for (size_t i = regs.size(); i-- > 0;) {
            values[regs[i]] = key & maskBits(widths[i]);
            key >>= widths[i];
        }
        return values;
    }
};

} // namespace

ExhaustiveResult
exhaustiveCheck(const rtl::Circuit &circuit, size_t max_states,
                Budget *budget, const std::atomic<bool> *stop)
{
    ExhaustiveResult result;
    StatePacker packer(circuit);
    auto cancelled = [&] {
        if (stop && stop->load(std::memory_order_relaxed))
            return true;
        return budget && budget->exhausted();
    };

    int symbolic_bits = 0;
    std::vector<NetId> symbolic;
    for (NetId reg : circuit.registers()) {
        if (circuit.net(reg).symbolicInit) {
            symbolic.push_back(reg);
            symbolic_bits += circuit.net(reg).width;
        }
    }
    int input_bits = 0;
    for (NetId in : circuit.inputs())
        input_bits += circuit.net(in).width;

    if (packer.totalBits > 40 || symbolic_bits > 20 || input_bits > 16) {
        result.completed = false;
        return result; // too large for explicit enumeration
    }

    sim::Simulator simulator(circuit);

    // Enumerate initial states.
    std::unordered_map<uint64_t, size_t> depth_of; // state -> min depth
    std::deque<uint64_t> queue;
    for (uint64_t assign = 0; assign < (1ull << symbolic_bits); ++assign) {
        if (budget)
            budget->charge(1);
        if (cancelled())
            return result; // completed stays false
        std::unordered_map<NetId, uint64_t> init;
        uint64_t rest = assign;
        for (NetId reg : symbolic) {
            int width = circuit.net(reg).width;
            init[reg] = rest & maskBits(width);
            rest >>= width;
        }
        simulator.reset(init);
        // Check init constraints under some input (init constraints must
        // not depend on inputs for this oracle; evaluate with zeros).
        simulator.evaluate();
        if (!simulator.initConstraintsHold())
            continue;
        std::unordered_map<NetId, uint64_t> full;
        for (NetId reg : circuit.registers())
            full[reg] = simulator.value(reg);
        uint64_t key = packer.pack(full);
        if (depth_of.emplace(key, 0).second)
            queue.push_back(key);
    }

    auto decode_inputs = [&](uint64_t in_assign) {
        std::unordered_map<NetId, uint64_t> inputs;
        for (NetId in : circuit.inputs()) {
            int width = circuit.net(in).width;
            inputs[in] = in_assign & maskBits(width);
            in_assign >>= width;
        }
        return inputs;
    };

    // BFS over (state, input) successors. pred records, for each state,
    // the state+input edge that first discovered it (BFS order makes
    // that a minimal-depth path) so a witness trace can be rebuilt.
    std::unordered_map<uint64_t, std::pair<uint64_t, uint64_t>> pred;
    uint64_t bad_key = 0, bad_assign = 0;
    while (!queue.empty()) {
        uint64_t key = queue.front();
        queue.pop_front();
        size_t depth = depth_of[key];
        ++result.statesVisited;
        if (result.statesVisited > max_states)
            return result; // completed stays false
        if (budget)
            budget->charge(1);
        if (cancelled())
            return result;

        for (uint64_t in_assign = 0; in_assign < (1ull << input_bits);
             ++in_assign) {
            simulator.reset(packer.unpack(key));
            std::unordered_map<NetId, uint64_t> inputs =
                decode_inputs(in_assign);
            simulator.evaluate(inputs);
            if (!simulator.constraintsHold())
                continue; // assumption prunes this edge
            if (simulator.anyBad()) {
                if (!result.badReachable || depth < result.badDepth) {
                    result.badReachable = true;
                    result.badDepth = depth;
                    bad_key = key;
                    bad_assign = in_assign;
                }
                continue; // count the failure; path ends at the bad
            }
            simulator.tick();
            simulator.evaluate(inputs); // settle register outputs
            std::unordered_map<NetId, uint64_t> full;
            for (NetId reg : circuit.registers())
                full[reg] = simulator.value(reg);
            uint64_t next_key = packer.pack(full);
            if (depth_of.emplace(next_key, depth + 1).second) {
                pred.emplace(next_key, std::make_pair(key, in_assign));
                queue.push_back(next_key);
            }
        }
    }
    result.completed = true;

    if (result.badReachable) {
        // Walk the discovery edges back to an initial state, then emit
        // the inputs forward, ending with the bad-firing assignment.
        std::vector<uint64_t> chain;
        uint64_t cur = bad_key;
        for (auto it = pred.find(cur); it != pred.end();
             it = pred.find(cur)) {
            chain.push_back(it->second.second);
            cur = it->second.first;
        }
        Trace trace;
        trace.initialRegs = packer.unpack(cur);
        for (size_t i = chain.size(); i-- > 0;)
            trace.inputs.push_back(decode_inputs(chain[i]));
        trace.inputs.push_back(decode_inputs(bad_assign));
        trace.length = trace.inputs.size();
        result.trace = std::move(trace);
    }
    return result;
}

} // namespace csl::mc
