/**
 * @file
 * Concrete counterexample traces: extraction from a satisfied unrolling
 * and replay through the simulator (witness checking).
 */

#ifndef CSL_MC_TRACE_H_
#define CSL_MC_TRACE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "bitblast/unroller.h"
#include "rtl/circuit.h"
#include "rtl/transform/netmap.h"

namespace csl::mc {

/**
 * A finite input trace: initial register values plus per-cycle input
 * values. Everything else is determined by the circuit, so a Trace can be
 * replayed deterministically in the simulator.
 */
struct Trace
{
    size_t length = 0; ///< number of cycles (frames)
    std::unordered_map<rtl::NetId, uint64_t> initialRegs;
    std::vector<std::unordered_map<rtl::NetId, uint64_t>> inputs;
};

/** Extract the model of a satisfied unrolling as a Trace of @p length. */
Trace extractTrace(const rtl::Circuit &circuit,
                   const bitblast::Unroller &unroller, size_t length);

/** Outcome of replaying a trace in the interpreter. */
struct ReplayResult
{
    bool initConstraintsHeld = true;
    bool constraintsHeld = true; ///< at every replayed cycle
    bool badReached = false;     ///< some bad net fired at the final cycle
};

/** Replay @p trace; used to cross-check SAT models against simulation. */
ReplayResult replayTrace(const rtl::Circuit &circuit, const Trace &trace);

/**
 * Translate a trace found on a *reduced* circuit back to the original
 * one through the reduction @p map: each original register picks up the
 * value of its reduced counterpart (merged twins share one source),
 * propagated-away nets are restored from the constants the pipeline
 * proved, and nets the map dropped stay unset - they lie outside every
 * property cone, so the replay verdict cannot depend on them. The
 * result replays on the original circuit, which is what keeps the
 * witness self-audit and VCD dumps honest under reduction.
 */
Trace translateTrace(const rtl::Circuit &original,
                     const rtl::transform::NetMap &map,
                     const Trace &reduced);

/**
 * Render the values of the named nets cycle-by-cycle (nets with
 * generated names are skipped), for debugging counterexamples.
 */
std::string formatTrace(const rtl::Circuit &circuit, const Trace &trace,
                        const std::vector<rtl::NetId> &nets);

} // namespace csl::mc

#endif // CSL_MC_TRACE_H_
