/**
 * @file
 * Property-directed reachability (PDR / IC3) over the bit-blasted
 * encoding - the class of engine inside commercial proof tools (the
 * paper's JasperGold "Mp"/"AM" engines). Unlike k-induction, PDR
 * discovers its own inductive strengthening clause by clause, so it can
 * close goals whose invariants are not expressible by our relational
 * templates (DESIGN.md Section 6b).
 *
 * Implementation notes:
 *  - frames are monotone clause sets over the frame-0 register bits,
 *    realized with per-frame activation literals in a single incremental
 *    solver holding a two-frame unrolling (current state -> next state);
 *  - environment constraints are asserted in both frames; initial-state
 *    membership is decided by a dedicated one-frame solver (our initial
 *    states are a CNF predicate, not a cube);
 *  - blocked cubes are generalized with unsat-core shrinking
 *    (Solver::failedAssumptions) followed by bounded literal dropping,
 *    keeping cubes disjoint from the initial states.
 */

#ifndef CSL_MC_PDR_H_
#define CSL_MC_PDR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "base/budget.h"
#include "bitblast/cnf_builder.h"
#include "bitblast/unroller.h"
#include "rtl/circuit.h"
#include "sat/solver.h"

namespace csl::mc {

/** Outcome of a PDR run. */
struct PdrResult
{
    enum class Kind {
        Proof,   ///< an inductive frame closed: bad is unreachable
        Cex,     ///< bad reachable (depth = number of steps from init)
        Timeout, ///< budget exhausted
    };
    Kind kind = Kind::Timeout;
    size_t depth = 0;  ///< Cex: trace length - 1; Proof: closing frame
    uint64_t blockedCubes = 0;
    uint64_t frames = 0;
};

/** PDR options. */
struct PdrOptions
{
    /** Upper bound on frames (safety net; Proof/Cex usually earlier). */
    size_t maxFrames = 200;
    /** Literal-dropping attempts per generalization. */
    size_t generalizeAttempts = 32;
    /**
     * Trusted invariants (1-bit nets holding in every reachable state,
     * e.g. Houdini survivors) asserted in every frame - the standard
     * "PDR with lemmas" strengthening. Sound: restricting the search to
     * invariant states cannot hide reachable bad states.
     */
    std::vector<rtl::NetId> assumedInvariants;
};

/** Run PDR on the circuit's bad-state property. */
PdrResult runPdr(const rtl::Circuit &circuit, const PdrOptions &options = {},
                 Budget *budget = nullptr);

} // namespace csl::mc

#endif // CSL_MC_PDR_H_
