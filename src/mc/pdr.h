/**
 * @file
 * Property-directed reachability (PDR / IC3) over the bit-blasted
 * encoding - the class of engine inside commercial proof tools (the
 * paper's JasperGold "Mp"/"AM" engines). Unlike k-induction, PDR
 * discovers its own inductive strengthening clause by clause, so it can
 * close goals whose invariants are not expressible by our relational
 * templates (DESIGN.md Section 6b).
 *
 * Implementation notes:
 *  - frames are monotone clause sets over the frame-0 register bits,
 *    realized with per-frame activation literals in a single incremental
 *    solver holding a two-frame unrolling (current state -> next state);
 *  - environment constraints are asserted in both frames; initial-state
 *    membership is decided by a dedicated one-frame solver (our initial
 *    states are a CNF predicate, not a cube);
 *  - blocked cubes are generalized with unsat-core shrinking
 *    (Solver::failedAssumptions) followed by bounded literal dropping,
 *    keeping cubes disjoint from the initial states.
 */

#ifndef CSL_MC_PDR_H_
#define CSL_MC_PDR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "base/budget.h"
#include "bitblast/cnf_builder.h"
#include "bitblast/unroller.h"
#include "mc/trace.h"
#include "rtl/circuit.h"
#include "sat/solver.h"

namespace csl::mc {

/** Outcome of a PDR run. */
struct PdrResult
{
    enum class Kind {
        Proof,   ///< an inductive frame closed: bad is unreachable
        Cex,     ///< bad reachable (depth = number of steps from init)
        Timeout, ///< budget exhausted
    };
    Kind kind = Kind::Timeout;
    size_t depth = 0;  ///< Cex: trace length - 1; Proof: closing frame
    uint64_t blockedCubes = 0;
    uint64_t frames = 0;
    /**
     * Cex only: a concrete witness reconstructed from the obligation
     * chain (predecessor states + the input assignments of the SAT
     * models that produced them). Absent in the rare case the chain
     * could not be stitched back together; the Cex verdict itself is
     * still sound.
     */
    std::optional<Trace> trace;
};

/** PDR options. */
struct PdrOptions
{
    /** Upper bound on frames (safety net; Proof/Cex usually earlier). */
    size_t maxFrames = 200;
    /** Literal-dropping attempts per generalization. */
    size_t generalizeAttempts = 32;
    /**
     * Trusted invariants (1-bit nets holding in every reachable state,
     * e.g. Houdini survivors) asserted in every frame - the standard
     * "PDR with lemmas" strengthening. Sound: restricting the search to
     * invariant states cannot hide reachable bad states.
     */
    std::vector<rtl::NetId> assumedInvariants;
};

/**
 * The PDR engine as a stepwise object (the form the portfolio scheduler
 * drives); runPdr() below wraps it for one-shot use.
 */
class Pdr
{
  public:
    explicit Pdr(const rtl::Circuit &circuit, PdrOptions options = {});
    ~Pdr();

    /**
     * One major round: the depth-0 check on the first call, afterwards
     * one level k (block every bad state reachable within F_k, then
     * propagate clauses forward). Returns true once the run concluded;
     * the outcome is in current().
     */
    bool step(Budget *budget = nullptr);

    /** Outcome so far; final once step() returned true. */
    const PdrResult &current() const;

    /** Run to conclusion. */
    PdrResult run(Budget *budget = nullptr);

    /**
     * Cycles proven bad-free so far: after the block loop at level k
     * succeeds, no bad state is reachable within k steps, i.e. frames
     * 0..k are bad-free (a BMC-style bound of k+1).
     */
    size_t safeFrames() const;

    /** Thread-safe: interrupt both solvers mid-run (see Bmc). */
    void requestInterrupt();
    void clearInterrupt();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Run PDR on the circuit's bad-state property. */
PdrResult runPdr(const rtl::Circuit &circuit, const PdrOptions &options = {},
                 Budget *budget = nullptr);

} // namespace csl::mc

#endif // CSL_MC_PDR_H_
