/**
 * @file
 * The one-call property-checking facade used by the verification schemes
 * and benches - now a concurrent first-winner portfolio over the uniform
 * Engine interface (see mc/engine.h and DESIGN.md "Engine layer").
 *
 * Each selected engine runs on its own thread over a private clone of
 * the circuit; the first conclusive verdict (Attack or Proof) wins and
 * cancels the others through the thread-safe solver interrupt. While
 * running, engines exchange monotone facts (bad-free bounds, proven
 * invariants) through a shared FactBoard, so e.g. a BMC-published safe
 * bound shortens a sibling k-induction's base case mid-run.
 */

#ifndef CSL_MC_PORTFOLIO_H_
#define CSL_MC_PORTFOLIO_H_

#include <optional>
#include <string>
#include <vector>

#include "base/deadline.h"
#include "mc/engine.h"
#include "mc/kinduction.h"
#include "rtl/circuit.h"

namespace csl::mc {

/** Portfolio configuration. */
struct CheckOptions
{
    /** Maximum BMC depth / induction k. */
    size_t maxDepth = 40;
    /** Wall-clock limit (the paper's 7-day timeout, scaled down). */
    double timeoutSeconds = 600.0;
    /** Attempt unbounded proofs; when false only BMC runs (unless an
     * explicit engine set overrides the default below). */
    bool tryProof = true;
    /** Trusted strengthening invariants for the induction step. */
    std::vector<rtl::NetId> assumedInvariants;
    /**
     * Cooperative deadline bounding the run in addition to
     * timeoutSeconds; cancelling it stops the engines at the next
     * conflict. Staged-fallback runs hand each stage a slice this way.
     */
    std::optional<Deadline> deadline;
    /** Non-zero: perturb the SAT decision heuristic (witness retries). */
    uint64_t decisionSeed = 0;
    /** Frames a previous run of this circuit proved bad-free (resume). */
    size_t startSafeDepth = 0;
    /**
     * Engines to race. Empty selects the default set: {bmc, kind} when
     * tryProof, {bmc} otherwise (both report minimal-depth attacks, so
     * the default facade stays depth-exact for the cross-check oracle).
     * A single-element set runs inline with no thread or clone.
     */
    std::vector<EngineKind> engines;
};

/** Telemetry for one engine of a portfolio run. */
struct EngineOutcome
{
    EngineKind kind = EngineKind::Bmc;
    Verdict verdict = Verdict::Timeout;
    size_t depth = 0;
    double seconds = 0;
    uint64_t conflicts = 0;
    size_t deepestSafeBound = 0;
    uint64_t importedFacts = 0;
    bool winner = false;
};

/** Outcome summary. */
struct CheckResult
{
    Verdict verdict = Verdict::Timeout;
    size_t depth = 0; ///< cex frame or proof k or deepest safe bound
    std::optional<Trace> trace;
    double seconds = 0;
    uint64_t conflicts = 0; ///< summed over all engines
    /** Deepest bound proven bad-free - the salvageable partial answer,
     * filled in even when the verdict is Timeout. */
    size_t deepestSafeBound = 0;
    /** Engine that produced the verdict ("bmc", "kind", ...); empty when
     * no engine concluded (the verdict was synthesized). */
    std::string winner;
    /** Facts imported across engines through the FactBoard. */
    uint64_t importedFacts = 0;
    /** Per-engine telemetry, in engine-set order. */
    std::vector<EngineOutcome> engines;
};

/** Check that no bad net of @p circuit is reachable. */
CheckResult checkProperty(const rtl::Circuit &circuit,
                          const CheckOptions &options = {});

} // namespace csl::mc

#endif // CSL_MC_PORTFOLIO_H_
