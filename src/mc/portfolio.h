/**
 * @file
 * The one-call property-checking facade used by the verification schemes
 * and benches: run k-induction (which interleaves base-case BMC), or BMC
 * alone, under a budget, and summarize the outcome.
 */

#ifndef CSL_MC_PORTFOLIO_H_
#define CSL_MC_PORTFOLIO_H_

#include <optional>
#include <string>
#include <vector>

#include "base/deadline.h"
#include "mc/kinduction.h"
#include "rtl/circuit.h"

namespace csl::mc {

/** Engine configuration. */
struct CheckOptions
{
    /** Maximum BMC depth / induction k. */
    size_t maxDepth = 40;
    /** Wall-clock limit (the paper's 7-day timeout, scaled down). */
    double timeoutSeconds = 600.0;
    /** Attempt unbounded proofs; when false only BMC runs. */
    bool tryProof = true;
    /** Trusted strengthening invariants for the induction step. */
    std::vector<rtl::NetId> assumedInvariants;
    /**
     * Cooperative deadline bounding the run in addition to
     * timeoutSeconds; cancelling it stops the engines at the next
     * conflict. Staged-fallback runs hand each stage a slice this way.
     */
    std::optional<Deadline> deadline;
    /** Non-zero: perturb the SAT decision heuristic (witness retries). */
    uint64_t decisionSeed = 0;
    /** Frames a previous run of this circuit proved bad-free (resume). */
    size_t startSafeDepth = 0;
};

/** Final verdict of a verification task. */
enum class Verdict {
    Attack,      ///< counterexample found (a real attack program)
    Proof,       ///< unbounded proof completed
    BoundedSafe, ///< no attack up to maxDepth, no proof attempted/found
    Timeout,     ///< budget exhausted without an answer
    Diagnosed,   ///< static pre-flight found the circuit ill-formed;
                 ///< no engine was run (details in the lint report)
};

/** Render a verdict for tables. */
const char *verdictName(Verdict verdict);

/** Outcome summary. */
struct CheckResult
{
    Verdict verdict = Verdict::Timeout;
    size_t depth = 0; ///< cex frame or proof k or deepest safe bound
    std::optional<Trace> trace;
    double seconds = 0;
    uint64_t conflicts = 0;
    /** Deepest bound proven bad-free - the salvageable partial answer,
     * filled in even when the verdict is Timeout. */
    size_t deepestSafeBound = 0;
};

/** Check that no bad net of @p circuit is reachable. */
CheckResult checkProperty(const rtl::Circuit &circuit,
                          const CheckOptions &options = {});

} // namespace csl::mc

#endif // CSL_MC_PORTFOLIO_H_
