#include "mc/kinduction.h"

#include <algorithm>
#include <unordered_map>

#include "base/faultpoint.h"
#include "base/logging.h"

namespace csl::mc {

using rtl::NetId;

KInduction::KInduction(const rtl::Circuit &circuit, KInductionOptions options)
    : circuit_(circuit), options_(std::move(options)),
      base_(circuit, options_.decisionSeed)
{
    stepCnf_ = std::make_unique<bitblast::CnfBuilder>(stepSolver_);
    stepUnroller_ = std::make_unique<bitblast::Unroller>(
        circuit, *stepCnf_, /*free_initial_state=*/true,
        options_.assumedInvariants);
    if (options_.decisionSeed != 0)
        stepSolver_.setDecisionSeed(options_.decisionSeed);
    if (options_.startSafeDepth > 0)
        base_.markSafeUpTo(options_.startSafeDepth);
}

KInduction::~KInduction() = default;

KInductionResult
KInduction::run(Budget *budget)
{
    KInductionResult result;
    for (size_t k = 1; k <= options_.maxK; ++k) {
        // Base case: frames 0..k-1 must be bad-free from the real initial
        // state.
        BmcResult base = base_.run(k, budget);
        result.conflicts = base.conflicts + stepSolver_.stats().conflicts;
        if (base.kind == BmcResult::Kind::Cex) {
            result.kind = KInductionResult::Kind::Cex;
            result.k = base.depth;
            result.trace = std::move(base.trace);
            result.baseSafe = base_.checkedUpTo();
            return result;
        }
        if (base.kind == BmcResult::Kind::Timeout) {
            result.kind = KInductionResult::Kind::Timeout;
            result.k = k;
            result.baseSafe = base_.checkedUpTo();
            return result;
        }

        // Step case: a constraint-satisfying path with k bad-free frames
        // followed by a bad frame, from an arbitrary (not necessarily
        // reachable) starting state.
        const size_t had_frames = stepUnroller_->numFrames();
        stepUnroller_->ensureFrames(k + 1);
        for (size_t f = had_frames; f < k + 1; ++f) {
            for (NetId inv : options_.assumedInvariants)
                stepCnf_->assertLit(stepUnroller_->wordOf(inv, f)[0]);
        }
        // Frames 0..k-1 are bad-free in the step case. Units for frames
        // 0..k-2 were already added by earlier iterations.
        stepCnf_->assertLit(~stepUnroller_->badLit(k - 1));

        sat::Status status =
            stepSolver_.solve({stepUnroller_->badLit(k)}, budget);
        result.conflicts = base.conflicts + stepSolver_.stats().conflicts;
        if (status == sat::Status::Unsat) {
            result.kind = KInductionResult::Kind::Proof;
            result.k = k;
            result.baseSafe = base_.checkedUpTo();
            return result;
        }
        if (status == sat::Status::Unknown) {
            result.kind = KInductionResult::Kind::Timeout;
            result.k = k;
            result.baseSafe = base_.checkedUpTo();
            return result;
        }
        // Sat: the property is not k-inductive; deepen.
    }
    result.kind = KInductionResult::Kind::Unknown;
    result.k = options_.maxK;
    result.baseSafe = base_.checkedUpTo();
    return result;
}

std::optional<std::vector<NetId>>
proveInductiveInvariants(const rtl::Circuit &circuit,
                         std::vector<NetId> candidates, Budget *budget,
                         size_t window, std::vector<NetId> *partial_out)
{
    if (candidates.empty())
        return candidates;
    csl_assert(window >= 1, "window must be at least 1");
    // On interruption, hand back the pruning progress made so far (see
    // header comment): a resumed search restarts from the smaller set.
    auto interrupted = [&]() -> std::optional<std::vector<NetId>> {
        if (partial_out)
            *partial_out = candidates;
        return std::nullopt;
    };

    // Phase 1: drop candidates violated in the first `window` frames from
    // a legal initial state (the base case of the invariants' own
    // k-induction). Batched: one "is any candidate false at frame f?"
    // query per frame; on SAT, drop the violated candidates and retry.
    {
        sat::Solver solver;
        bitblast::CnfBuilder cnf(solver);
        bitblast::Unroller unroller(circuit, cnf,
                                    /*free_initial_state=*/false,
                                    candidates);
        for (size_t f = 0; f < window; ++f) {
            unroller.ensureFrames(f + 1);
            for (;;) {
                if (fault::shouldFire("houdini.interrupt"))
                    return interrupted();
                std::vector<sat::Lit> holds;
                holds.reserve(candidates.size());
                for (NetId c : candidates)
                    holds.push_back(unroller.wordOf(c, f)[0]);
                sat::Status status =
                    solver.solve({~cnf.andAll(holds)}, budget);
                if (status == sat::Status::Unknown)
                    return interrupted();
                if (status == sat::Status::Unsat)
                    break; // all remaining candidates hold at frame f
                std::vector<NetId> kept;
                for (NetId c : candidates)
                    if (solver.modelValue(unroller.wordOf(c, f)[0]))
                        kept.push_back(c);
                csl_assert(kept.size() < candidates.size(),
                           "init pruning made no progress");
                candidates = std::move(kept);
                if (candidates.empty())
                    return candidates;
            }
        }
    }

    // Phase 2: Houdini fixpoint on joint window-inductiveness: assume
    // every candidate in frames 0..window-1, require them at `window`.
    // Each candidate gets one activation literal implying it in every
    // assumed frame, so the solver sees real clauses (strong propagation)
    // and the assumption count stays at |candidates|.
    sat::Solver solver;
    bitblast::CnfBuilder cnf(solver);
    bitblast::Unroller unroller(circuit, cnf, /*free_initial_state=*/true,
                                candidates);
    unroller.ensureFrames(window + 1);
    std::unordered_map<NetId, sat::Lit> activation;
    for (NetId c : candidates) {
        sat::Lit act = cnf.fresh();
        for (size_t f = 0; f < window; ++f)
            solver.addClause(~act, unroller.wordOf(c, f)[0]);
        activation.emplace(c, act);
    }
    while (!candidates.empty()) {
        if (fault::shouldFire("houdini.interrupt"))
            return interrupted();
        std::vector<sat::Lit> assumptions;
        assumptions.reserve(candidates.size() + 1);
        for (NetId c : candidates)
            assumptions.push_back(activation.at(c));
        std::vector<sat::Lit> final_holds;
        final_holds.reserve(candidates.size());
        for (NetId c : candidates)
            final_holds.push_back(unroller.wordOf(c, window)[0]);
        assumptions.push_back(~cnf.andAll(final_holds));

        sat::Status status = solver.solve(assumptions, budget);
        if (status == sat::Status::Unknown)
            return interrupted();
        if (status == sat::Status::Unsat)
            break; // fixpoint: all remaining candidates are inductive
        // Drop every candidate the counterexample-to-induction violates.
        std::vector<NetId> kept;
        for (NetId c : candidates) {
            if (solver.modelValue(unroller.wordOf(c, window)[0]))
                kept.push_back(c);
        }
        csl_assert(kept.size() < candidates.size(),
                   "Houdini made no progress");
        candidates = std::move(kept);
    }
    return candidates;
}

} // namespace csl::mc
