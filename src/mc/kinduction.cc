#include "mc/kinduction.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <thread>
#include <unordered_map>

#include "base/faultpoint.h"
#include "base/logging.h"
#include "mc/engine.h"

namespace csl::mc {

using rtl::NetId;

KInduction::KInduction(const rtl::Circuit &circuit, KInductionOptions options)
    : circuit_(circuit), options_(std::move(options)),
      base_(circuit, options_.decisionSeed)
{
    stepCnf_ = std::make_unique<bitblast::CnfBuilder>(stepSolver_);
    stepUnroller_ = std::make_unique<bitblast::Unroller>(
        circuit, *stepCnf_, /*free_initial_state=*/true,
        options_.assumedInvariants);
    if (options_.decisionSeed != 0)
        stepSolver_.setDecisionSeed(options_.decisionSeed);
    if (options_.startSafeDepth > 0)
        base_.markSafeUpTo(options_.startSafeDepth);
}

KInduction::~KInduction() = default;

void
KInduction::requestInterrupt()
{
    base_.requestInterrupt();
    stepSolver_.requestInterrupt();
}

void
KInduction::clearInterrupt()
{
    base_.clearInterrupt();
    stepSolver_.clearInterrupt();
}

bool
KInduction::step(Budget *budget)
{
    if (k_ > options_.maxK) {
        result_.kind = KInductionResult::Kind::Unknown;
        result_.k = options_.maxK;
        result_.baseSafe = base_.checkedUpTo();
        return true;
    }
    const size_t k = k_;

    // Base case: frames 0..k-1 must be bad-free from the real initial
    // state. Bounds imported via importBaseSafe() are skipped here.
    BmcResult base = base_.run(k, budget);
    result_.conflicts = base.conflicts + stepSolver_.stats().conflicts;
    result_.baseSafe = base_.checkedUpTo();
    if (base.kind == BmcResult::Kind::Cex) {
        result_.kind = KInductionResult::Kind::Cex;
        result_.k = base.depth;
        result_.trace = std::move(base.trace);
        return true;
    }
    if (base.kind == BmcResult::Kind::Timeout) {
        result_.kind = KInductionResult::Kind::Timeout;
        result_.k = k;
        return true;
    }

    // Step case: a constraint-satisfying path with k bad-free frames
    // followed by a bad frame, from an arbitrary (not necessarily
    // reachable) starting state.
    const size_t had_frames = stepUnroller_->numFrames();
    stepUnroller_->ensureFrames(k + 1);
    for (size_t f = had_frames; f < k + 1; ++f) {
        for (NetId inv : options_.assumedInvariants)
            stepCnf_->assertLit(stepUnroller_->wordOf(inv, f)[0]);
    }
    // Frames 0..k-1 are bad-free in the step case. Units for frames
    // 0..k-2 were already added by earlier iterations.
    stepCnf_->assertLit(~stepUnroller_->badLit(k - 1));

    sat::Status status =
        stepSolver_.solve({stepUnroller_->badLit(k)}, budget);
    result_.conflicts = base.conflicts + stepSolver_.stats().conflicts;
    result_.baseSafe = base_.checkedUpTo();
    if (status == sat::Status::Unsat) {
        result_.kind = KInductionResult::Kind::Proof;
        result_.k = k;
        return true;
    }
    if (status == sat::Status::Unknown) {
        result_.kind = KInductionResult::Kind::Timeout;
        result_.k = k;
        return true;
    }
    // Sat: the property is not k-inductive; deepen.
    ++k_;
    result_.kind = KInductionResult::Kind::Unknown;
    result_.k = k;
    return false;
}

KInductionResult
KInduction::run(Budget *budget)
{
    while (!step(budget)) {}
    return result_;
}

namespace {

/**
 * Houdini phase 1: drop candidates violated in the first `window` frames
 * from a legal initial state (the base case of the invariants' own
 * k-induction). Batched: one "is any candidate false at frame f?" query
 * per frame; on SAT, drop the violated candidates and retry. Returns
 * false on interruption, with @p candidates holding the pruned-so-far
 * set. Pruning is per-candidate, so any partition of the candidate set
 * prunes to the same survivors - the property the sharded parallel path
 * below relies on.
 */
bool
pruneInitWindow(const rtl::Circuit &circuit,
                std::vector<NetId> &candidates, size_t window,
                Budget *budget)
{
    if (candidates.empty())
        return true;
    sat::Solver solver;
    bitblast::CnfBuilder cnf(solver);
    bitblast::Unroller unroller(circuit, cnf,
                                /*free_initial_state=*/false,
                                candidates);
    for (size_t f = 0; f < window; ++f) {
        unroller.ensureFrames(f + 1);
        for (;;) {
            if (fault::shouldFire("houdini.interrupt"))
                return false;
            std::vector<sat::Lit> holds;
            holds.reserve(candidates.size());
            for (NetId c : candidates)
                holds.push_back(unroller.wordOf(c, f)[0]);
            sat::Status status =
                solver.solve({~cnf.andAll(holds)}, budget);
            if (status == sat::Status::Unknown)
                return false;
            if (status == sat::Status::Unsat)
                break; // all remaining candidates hold at frame f
            std::vector<NetId> kept;
            for (NetId c : candidates)
                if (solver.modelValue(unroller.wordOf(c, f)[0]))
                    kept.push_back(c);
            csl_assert(kept.size() < candidates.size(),
                       "init pruning made no progress");
            candidates = std::move(kept);
            if (candidates.empty())
                return true;
        }
    }
    return true;
}

} // namespace

std::optional<std::vector<NetId>>
proveInductiveInvariants(const rtl::Circuit &circuit,
                         std::vector<NetId> candidates, Budget *budget,
                         size_t window, std::vector<NetId> *partial_out,
                         size_t threads)
{
    if (candidates.empty())
        return candidates;
    csl_assert(window >= 1, "window must be at least 1");
    // On interruption, hand back the pruning progress made so far (see
    // header comment): a resumed search restarts from the smaller set.
    auto interrupted = [&]() -> std::optional<std::vector<NetId>> {
        if (partial_out)
            *partial_out = candidates;
        return std::nullopt;
    };

    if (threads > 1 && candidates.size() >= 2 * threads) {
        // Shard phase 1 across worker threads: each prunes its share of
        // the candidates on a private clone of the circuit (private
        // solver state) and publishes the survivors through a FactBoard.
        // The shards partition the set, so the union is exactly the
        // sequential survivor set.
        const size_t shard_count = std::min(threads, candidates.size());
        std::vector<std::vector<NetId>> shards(shard_count);
        for (size_t i = 0; i < candidates.size(); ++i)
            shards[i % shard_count].push_back(candidates[i]);
        std::vector<rtl::Circuit> clones(shard_count, circuit);
        FactBoard board;
        std::atomic<bool> any_interrupted{false};
        std::vector<std::thread> workers;
        workers.reserve(shard_count);
        for (size_t t = 0; t < shard_count; ++t) {
            workers.emplace_back([&, t] {
                // Budgets are single-thread objects: derive a per-shard
                // one from the caller's remaining wall clock (and its
                // deadline, whose cancellation flag is shared+atomic).
                Budget shard_budget(budget ? budget->secondsLeft()
                                           : std::numeric_limits<
                                                 double>::infinity());
                if (budget && budget->deadline())
                    shard_budget.attachDeadline(*budget->deadline());
                if (!pruneInitWindow(clones[t], shards[t], window,
                                     budget ? &shard_budget : nullptr))
                    any_interrupted.store(true,
                                          std::memory_order_relaxed);
                // Survivors (or, when interrupted, the shard's
                // pruned-so-far set - exactly what a restart needs).
                board.publishInvariants(shards[t]);
            });
        }
        for (std::thread &w : workers)
            w.join();
        candidates = board.invariants();
        if (any_interrupted.load(std::memory_order_relaxed))
            return interrupted();
        if (candidates.empty())
            return candidates;
    } else {
        if (!pruneInitWindow(circuit, candidates, window, budget))
            return interrupted();
        if (candidates.empty())
            return candidates;
    }

    // Phase 2: Houdini fixpoint on joint window-inductiveness: assume
    // every candidate in frames 0..window-1, require them at `window`.
    // Each candidate gets one activation literal implying it in every
    // assumed frame, so the solver sees real clauses (strong propagation)
    // and the assumption count stays at |candidates|.
    sat::Solver solver;
    bitblast::CnfBuilder cnf(solver);
    bitblast::Unroller unroller(circuit, cnf, /*free_initial_state=*/true,
                                candidates);
    unroller.ensureFrames(window + 1);
    std::unordered_map<NetId, sat::Lit> activation;
    for (NetId c : candidates) {
        sat::Lit act = cnf.fresh();
        for (size_t f = 0; f < window; ++f)
            solver.addClause(~act, unroller.wordOf(c, f)[0]);
        activation.emplace(c, act);
    }
    while (!candidates.empty()) {
        if (fault::shouldFire("houdini.interrupt"))
            return interrupted();
        std::vector<sat::Lit> assumptions;
        assumptions.reserve(candidates.size() + 1);
        for (NetId c : candidates)
            assumptions.push_back(activation.at(c));
        std::vector<sat::Lit> final_holds;
        final_holds.reserve(candidates.size());
        for (NetId c : candidates)
            final_holds.push_back(unroller.wordOf(c, window)[0]);
        assumptions.push_back(~cnf.andAll(final_holds));

        sat::Status status = solver.solve(assumptions, budget);
        if (status == sat::Status::Unknown)
            return interrupted();
        if (status == sat::Status::Unsat)
            break; // fixpoint: all remaining candidates are inductive
        // Drop every candidate the counterexample-to-induction violates.
        std::vector<NetId> kept;
        for (NetId c : candidates) {
            if (solver.modelValue(unroller.wordOf(c, window)[0]))
                kept.push_back(c);
        }
        csl_assert(kept.size() < candidates.size(),
                   "Houdini made no progress");
        candidates = std::move(kept);
    }
    return candidates;
}

} // namespace csl::mc
