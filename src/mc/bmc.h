/**
 * @file
 * Incremental bounded model checking - the attack-finding engine
 * (JasperGold's "Ht" hunting engine in the paper's setup).
 */

#ifndef CSL_MC_BMC_H_
#define CSL_MC_BMC_H_

#include <memory>
#include <optional>

#include "base/budget.h"
#include "bitblast/cnf_builder.h"
#include "bitblast/unroller.h"
#include "mc/trace.h"
#include "rtl/circuit.h"
#include "sat/solver.h"

namespace csl::mc {

/** Outcome of a (resumable) BMC run. */
struct BmcResult
{
    enum class Kind {
        Cex,       ///< counterexample found (trace is set)
        BoundedSafe, ///< no counterexample up to the requested depth
        Timeout,   ///< budget exhausted
    };
    Kind kind = Kind::BoundedSafe;
    /** Cex: failing frame. BoundedSafe: deepest frame proven safe. */
    size_t depth = 0;
    std::optional<Trace> trace;
    uint64_t conflicts = 0;
};

/**
 * Resumable incremental BMC: one solver instance accumulates all frames;
 * each depth k is queried via the assumption literal bad(k).
 */
class Bmc
{
  public:
    /** @p decision_seed != 0 perturbs the SAT search (witness retries). */
    explicit Bmc(const rtl::Circuit &circuit, uint64_t decision_seed = 0);
    ~Bmc();

    /**
     * Search for a counterexample at depths (checkedUpTo, max_depth].
     * Can be called repeatedly with growing bounds.
     */
    BmcResult run(size_t max_depth, Budget *budget = nullptr);

    /** Deepest depth k such that all frames 0..k are known safe. */
    size_t checkedUpTo() const { return checked_; }

    /**
     * Declare frames 0..@p depth-1 bad-free without solving - the
     * checkpoint/resume path, replaying a bound a previous run of the
     * same circuit already verified (the caller vouches for the match;
     * verif::Journal guards it with a task fingerprint). The frames are
     * still unrolled so later queries can build on them.
     */
    void markSafeUpTo(size_t depth);

    /**
     * Thread-safe: interrupt an in-flight run() from another thread (the
     * portfolio's first-winner cancellation). run() returns Timeout; the
     * request is latched until clearInterrupt().
     */
    void requestInterrupt() { solver_.requestInterrupt(); }
    void clearInterrupt() { solver_.clearInterrupt(); }

  private:
    const rtl::Circuit &circuit_;
    sat::Solver solver_;
    std::unique_ptr<bitblast::CnfBuilder> cnf_;
    std::unique_ptr<bitblast::Unroller> unroller_;
    size_t checked_ = 0; ///< number of frames proven bad-free
};

} // namespace csl::mc

#endif // CSL_MC_BMC_H_
