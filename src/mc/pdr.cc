#include "mc/pdr.h"

#include <algorithm>
#include <map>

#include "base/bits.h"
#include "base/logging.h"

namespace csl::mc {

using rtl::NetId;
using sat::Lit;
using sat::Status;

namespace {

/** A (partial) assignment to the frame-0 state bits. */
struct Cube
{
    /** (state-bit index, value) pairs, sorted by index. */
    std::vector<std::pair<int, bool>> bits;

    bool operator==(const Cube &o) const = default;
};

/** The PDR engine state. */
class Pdr
{
  public:
    Pdr(const rtl::Circuit &circuit, const PdrOptions &options,
        Budget *budget)
        : circuit_(circuit), options_(options), budget_(budget),
          transCnf_(transSolver_),
          trans_(circuit, transCnf_, /*free_initial_state=*/true,
                 options.assumedInvariants),
          initCnf_(initSolver_),
          init_(circuit, initCnf_, /*free_initial_state=*/false,
                options.assumedInvariants)
    {
        trans_.ensureFrames(2);
        init_.ensureFrames(1);
        for (NetId inv : options_.assumedInvariants) {
            transCnf_.assertLit(trans_.wordOf(inv, 0)[0]);
            transCnf_.assertLit(trans_.wordOf(inv, 1)[0]);
            initCnf_.assertLit(init_.wordOf(inv, 0)[0]);
        }

        // Flatten the cone registers into indexed state bits.
        for (NetId reg : circuit.registers()) {
            if (!trans_.cone()[reg])
                continue;
            const auto &w0 = trans_.wordOf(reg, 0);
            const auto &w1 = trans_.wordOf(reg, 1);
            const auto &wi = init_.cone()[reg] ? init_.wordOf(reg, 0)
                                               : bitblast::Word{};
            for (size_t b = 0; b < w0.size(); ++b) {
                state0_.push_back(w0[b]);
                state1_.push_back(w1[b]);
                stateInit_.push_back(b < wi.size() ? wi[b]
                                                   : initCnf_.trueLit());
                initKnown_.push_back(b < wi.size());
            }
        }

        // Frame 0 is the initial-state predicate, encoded in the
        // transition solver under its activation literal: concrete
        // register bits plus the init-constraint nets at frame 0.
        Lit act0 = transCnf_.fresh();
        acts_.push_back(act0);
        ownedCubes_.emplace_back(); // frame 0 owns no blocked cubes
        size_t bit = 0;
        for (NetId reg : circuit.registers()) {
            if (!trans_.cone()[reg])
                continue;
            const rtl::Net &n = circuit.net(reg);
            for (int b = 0; b < n.width; ++b, ++bit) {
                if (!n.symbolicInit) {
                    Lit l = state0_[bit];
                    transSolver_.addClause(
                        ~act0, bitAt(n.imm, b) ? l : ~l);
                }
            }
        }
        for (NetId c : circuit.initConstraints())
            transSolver_.addClause(~act0, trans_.wordOf(c, 0)[0]);
    }

    PdrResult
    run()
    {
        PdrResult result;
        // Depth-0: a bad initial state.
        if (solveTrans({acts_[0], trans_.badLit(0)}) == Status::Sat) {
            result.kind = PdrResult::Kind::Cex;
            result.depth = 0;
            return result;
        }
        if (exhausted())
            return result;

        size_t k = 1;
        newFrame(); // acts_[1]
        while (k < options_.maxFrames) {
            // Block all bad states reachable within F_k.
            for (;;) {
                std::vector<Lit> assumptions = frameAssumptions(k);
                assumptions.push_back(trans_.badLit(0));
                Status status = solveTrans(assumptions);
                if (status == Status::Unknown)
                    return result;
                if (status == Status::Unsat)
                    break;
                Cube bad_state = extractState();
                if (!blockObligation(bad_state, k, result))
                    return result; // cex or timeout (result filled)
            }

            // Propagation: push blocked cubes forward; a fully pushed
            // frame is an inductive invariant.
            newFrame(); // acts_[k+1]
            for (size_t i = 1; i <= k; ++i) {
                auto cubes = ownedCubes_[i]; // copy: we mutate below
                for (const Cube &c : cubes) {
                    std::vector<Lit> assumptions = frameAssumptions(i);
                    for (auto [bit, value] : c.bits)
                        assumptions.push_back(value ? state1_[bit]
                                                    : ~state1_[bit]);
                    Status status = solveTrans(assumptions);
                    if (status == Status::Unknown)
                        return result;
                    if (status == Status::Unsat)
                        moveCube(c, i, i + 1);
                }
                if (ownedCubes_[i].empty()) {
                    result.kind = PdrResult::Kind::Proof;
                    result.depth = i;
                    result.frames = k;
                    result.blockedCubes = blocked_;
                    return result;
                }
            }
            ++k;
        }
        return result; // frame budget exhausted: Timeout
    }

  private:
    // --- Queries ---------------------------------------------------------

    Status
    solveTrans(const std::vector<Lit> &assumptions)
    {
        return transSolver_.solve(assumptions, budget_);
    }

    bool
    exhausted() const
    {
        return budget_ && budget_->exhausted();
    }

    /** Assumptions activating F_j in the transition solver. */
    std::vector<Lit>
    frameAssumptions(size_t j) const
    {
        std::vector<Lit> assumptions;
        for (size_t i = std::max<size_t>(j, 1); i < acts_.size(); ++i)
            assumptions.push_back(acts_[i]);
        if (j == 0)
            assumptions.push_back(acts_[0]);
        return assumptions;
    }

    /** Read the frame-0 state bits of the last Sat model. */
    Cube
    extractState()
    {
        Cube cube;
        cube.bits.reserve(state0_.size());
        for (size_t j = 0; j < state0_.size(); ++j)
            cube.bits.emplace_back(int(j),
                                   transSolver_.modelValue(state0_[j]));
        return cube;
    }

    /** Does the cube intersect the initial states? */
    bool
    intersectsInit(const Cube &cube)
    {
        std::vector<Lit> assumptions;
        for (auto [bit, value] : cube.bits) {
            if (!initKnown_[bit])
                continue; // outside the init cone: unconstrained
            assumptions.push_back(value ? stateInit_[bit]
                                        : ~stateInit_[bit]);
        }
        return initSolver_.solve(assumptions, budget_) != Status::Unsat;
    }

    /**
     * Is `cube` unreachable from F_{i-1} \ cube in one step?
     * On UNSAT, *core receives the subset of cube literals (as state-bit
     * indices into cube.bits) present in the final conflict.
     */
    Status
    relativeInduction(const Cube &cube, size_t i,
                      std::vector<std::pair<int, bool>> *core)
    {
        // not-cube clause, activated just for the queries on this cube.
        Lit tmp = transCnf_.fresh();
        std::vector<Lit> clause{~tmp};
        for (auto [bit, value] : cube.bits)
            clause.push_back(value ? ~state0_[bit] : state0_[bit]);
        transSolver_.addClause(clause);

        std::vector<Lit> assumptions = frameAssumptions(i - 1);
        assumptions.push_back(tmp);
        std::vector<Lit> primed;
        for (auto [bit, value] : cube.bits) {
            Lit l = value ? state1_[bit] : ~state1_[bit];
            assumptions.push_back(l);
            primed.push_back(l);
        }
        Status status = solveTrans(assumptions);
        // Permanently deactivate the temporary clause.
        transSolver_.addClause(~tmp);
        if (status == Status::Unsat && core) {
            core->clear();
            const auto &failed = transSolver_.failedAssumptions();
            for (size_t idx = 0; idx < cube.bits.size(); ++idx) {
                if (std::find(failed.begin(), failed.end(),
                              primed[idx]) != failed.end())
                    core->push_back(cube.bits[idx]);
            }
        }
        return status;
    }

    /** Shrink a blocked cube while keeping it blocked and init-disjoint. */
    Cube
    generalize(Cube cube, size_t i)
    {
        // 1. Unsat-core shrink.
        std::vector<std::pair<int, bool>> core;
        if (relativeInduction(cube, i, &core) == Status::Unsat &&
            !core.empty()) {
            Cube shrunk;
            shrunk.bits = core;
            // Re-add literals until the cube excludes the initial states.
            if (intersectsInit(shrunk)) {
                for (auto bit : cube.bits) {
                    if (std::find(shrunk.bits.begin(), shrunk.bits.end(),
                                  bit) != shrunk.bits.end())
                        continue;
                    shrunk.bits.push_back(bit);
                    if (!intersectsInit(shrunk))
                        break;
                }
                std::sort(shrunk.bits.begin(), shrunk.bits.end());
            }
            if (!intersectsInit(shrunk))
                cube = shrunk;
        }

        // 2. Bounded literal dropping.
        size_t attempts = options_.generalizeAttempts;
        for (size_t idx = 0; idx < cube.bits.size() && attempts > 0;) {
            if (cube.bits.size() <= 1)
                break;
            Cube trial = cube;
            trial.bits.erase(trial.bits.begin() + idx);
            --attempts;
            if (!intersectsInit(trial) &&
                relativeInduction(trial, i, nullptr) == Status::Unsat) {
                cube = trial; // idx now points at the next literal
            } else {
                ++idx;
            }
        }
        return cube;
    }

    /** Block the states in `cube` (and generalizations) at frame `i`. */
    void
    addBlocked(const Cube &cube, size_t i)
    {
        std::vector<Lit> clause{~acts_[i]};
        for (auto [bit, value] : cube.bits)
            clause.push_back(value ? ~state0_[bit] : state0_[bit]);
        transSolver_.addClause(clause);
        ownedCubes_[i].push_back(cube);
        ++blocked_;
    }

    void
    moveCube(const Cube &cube, size_t from, size_t to)
    {
        auto &owned = ownedCubes_[from];
        owned.erase(std::remove(owned.begin(), owned.end(), cube),
                    owned.end());
        addBlocked(cube, to);
    }

    void
    newFrame()
    {
        acts_.push_back(transCnf_.fresh());
        ownedCubes_.emplace_back();
    }

    /**
     * Recursively block the obligation (state, frame). Returns false when
     * the run is over (result filled with Cex or left as Timeout).
     */
    bool
    blockObligation(const Cube &state, size_t k, PdrResult &result)
    {
        // Obligations ordered by frame (lowest first).
        std::multimap<size_t, Cube> queue;
        queue.emplace(k, state);
        while (!queue.empty()) {
            if (exhausted())
                return false;
            auto it = queue.begin();
            size_t i = it->first;
            Cube s = it->second;
            if (i == 0) {
                // A predecessor chain reached the initial states.
                result.kind = PdrResult::Kind::Cex;
                result.depth = k;
                result.frames = k;
                result.blockedCubes = blocked_;
                return false;
            }
            Status status = relativeInduction(s, i, nullptr);
            if (status == Status::Unknown)
                return false;
            if (status == Status::Sat) {
                // Predecessor in F_{i-1}: block it first.
                queue.emplace(i - 1, extractState());
                continue;
            }
            // Blocked: generalize, record, and push the obligation
            // forward so deeper frames re-examine it.
            Cube c = generalize(s, i);
            addBlocked(c, i);
            queue.erase(it);
            if (i < k)
                queue.emplace(i + 1, s);
        }
        return true;
    }

    const rtl::Circuit &circuit_;
    PdrOptions options_;
    Budget *budget_;

    sat::Solver transSolver_;
    bitblast::CnfBuilder transCnf_;
    bitblast::Unroller trans_;
    sat::Solver initSolver_;
    bitblast::CnfBuilder initCnf_;
    bitblast::Unroller init_;

    std::vector<Lit> state0_, state1_, stateInit_;
    std::vector<bool> initKnown_;
    std::vector<Lit> acts_;
    std::vector<std::vector<Cube>> ownedCubes_;
    uint64_t blocked_ = 0;
};

} // namespace

PdrResult
runPdr(const rtl::Circuit &circuit, const PdrOptions &options,
       Budget *budget)
{
    csl_assert(circuit.finalized(), "PDR requires a finalized circuit");
    Pdr engine(circuit, options, budget);
    return engine.run();
}

} // namespace csl::mc
