#include "mc/pdr.h"

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>

#include "base/bits.h"
#include "base/logging.h"

namespace csl::mc {

using rtl::NetId;
using sat::Lit;
using sat::Status;

namespace {

/** A (partial) assignment to the frame-0 state bits. */
struct Cube
{
    /** (state-bit index, value) pairs, sorted by index. */
    std::vector<std::pair<int, bool>> bits;

    bool operator==(const Cube &o) const = default;
};

} // namespace

/** The PDR engine state. */
struct Pdr::Impl
{
    Impl(const rtl::Circuit &circuit, PdrOptions options)
        : circuit_(circuit), options_(std::move(options)),
          transCnf_(transSolver_),
          trans_(circuit, transCnf_, /*free_initial_state=*/true,
                 options_.assumedInvariants),
          initCnf_(initSolver_),
          init_(circuit, initCnf_, /*free_initial_state=*/false,
                options_.assumedInvariants)
    {
        trans_.ensureFrames(2);
        init_.ensureFrames(1);
        for (NetId inv : options_.assumedInvariants) {
            transCnf_.assertLit(trans_.wordOf(inv, 0)[0]);
            transCnf_.assertLit(trans_.wordOf(inv, 1)[0]);
            initCnf_.assertLit(init_.wordOf(inv, 0)[0]);
        }

        // Flatten the cone registers into indexed state bits.
        for (NetId reg : circuit.registers()) {
            if (!trans_.cone()[reg])
                continue;
            const auto &w0 = trans_.wordOf(reg, 0);
            const auto &w1 = trans_.wordOf(reg, 1);
            const auto &wi = init_.cone()[reg] ? init_.wordOf(reg, 0)
                                               : bitblast::Word{};
            for (size_t b = 0; b < w0.size(); ++b) {
                state0_.push_back(w0[b]);
                state1_.push_back(w1[b]);
                stateInit_.push_back(b < wi.size() ? wi[b]
                                                   : initCnf_.trueLit());
                initKnown_.push_back(b < wi.size());
                bitOwner_.emplace_back(reg, static_cast<int>(b));
            }
        }

        // Frame 0 is the initial-state predicate, encoded in the
        // transition solver under its activation literal: concrete
        // register bits plus the init-constraint nets at frame 0.
        Lit act0 = transCnf_.fresh();
        acts_.push_back(act0);
        ownedCubes_.emplace_back(); // frame 0 owns no blocked cubes
        size_t bit = 0;
        for (NetId reg : circuit.registers()) {
            if (!trans_.cone()[reg])
                continue;
            const rtl::Net &n = circuit.net(reg);
            for (int b = 0; b < n.width; ++b, ++bit) {
                if (!n.symbolicInit) {
                    Lit l = state0_[bit];
                    transSolver_.addClause(
                        ~act0, bitAt(n.imm, b) ? l : ~l);
                }
            }
        }
        for (NetId c : circuit.initConstraints())
            transSolver_.addClause(~act0, trans_.wordOf(c, 0)[0]);
    }

    /** One major round; see Pdr::step(). */
    bool
    stepOnce(Budget *budget)
    {
        budget_ = budget;
        if (done_)
            return true;

        if (!started_) {
            started_ = true;
            // Depth-0: a bad initial state.
            Status status = solveTrans({acts_[0], trans_.badLit(0)});
            if (status == Status::Sat) {
                result_.kind = PdrResult::Kind::Cex;
                result_.depth = 0;
                Cube state = extractState();
                Trace trace;
                trace.length = 1;
                trace.initialRegs = regsOf(state);
                trace.inputs.push_back(inputsAt0());
                result_.trace = std::move(trace);
                return conclude();
            }
            if (status == Status::Unknown)
                return conclude(); // Timeout
            safeBound_ = 1; // no bad initial state: cycle 0 is safe
            k_ = 1;
            newFrame(); // acts_[1]
            return false;
        }

        if (k_ >= options_.maxFrames)
            return conclude(); // frame budget exhausted: Timeout

        // Block all bad states reachable within F_k.
        for (;;) {
            std::vector<Lit> assumptions = frameAssumptions(k_);
            assumptions.push_back(trans_.badLit(0));
            Status status = solveTrans(assumptions);
            if (status == Status::Unknown)
                return conclude();
            if (status == Status::Unsat)
                break;
            Cube bad_state = extractState();
            // Remember the inputs making this state bad: the final
            // cycle of a counterexample trace through it.
            badInputs_.emplace(keyOf(bad_state), inputsAt0());
            if (!blockObligation(bad_state, k_, result_))
                return conclude(); // cex or timeout (result_ filled)
        }
        // F_k overapproximates the states reachable within k steps and
        // now contains no bad state, so cycles 0..k are bad-free - a
        // BMC-style safe bound of k+1, publishable to the fact board.
        safeBound_ = k_ + 1;

        // Propagation: push blocked cubes forward; a fully pushed
        // frame is an inductive invariant.
        newFrame(); // acts_[k+1]
        for (size_t i = 1; i <= k_; ++i) {
            auto cubes = ownedCubes_[i]; // copy: we mutate below
            for (const Cube &c : cubes) {
                std::vector<Lit> assumptions = frameAssumptions(i);
                for (auto [bit, value] : c.bits)
                    assumptions.push_back(value ? state1_[bit]
                                                : ~state1_[bit]);
                Status status = solveTrans(assumptions);
                if (status == Status::Unknown)
                    return conclude();
                if (status == Status::Unsat)
                    moveCube(c, i, i + 1);
            }
            if (ownedCubes_[i].empty()) {
                result_.kind = PdrResult::Kind::Proof;
                result_.depth = i;
                result_.frames = k_;
                return conclude();
            }
        }
        ++k_;
        return false;
    }

    // --- Queries ---------------------------------------------------------

    Status
    solveTrans(const std::vector<Lit> &assumptions)
    {
        return transSolver_.solve(assumptions, budget_);
    }

    bool
    exhausted() const
    {
        return budget_ && budget_->exhausted();
    }

    /** Latch the final result fields; step() returns true from now on. */
    bool
    conclude()
    {
        done_ = true;
        if (result_.frames == 0 && !acts_.empty())
            result_.frames = acts_.size() - 1;
        result_.blockedCubes = blocked_;
        return true;
    }

    /** Assumptions activating F_j in the transition solver. */
    std::vector<Lit>
    frameAssumptions(size_t j) const
    {
        std::vector<Lit> assumptions;
        for (size_t i = std::max<size_t>(j, 1); i < acts_.size(); ++i)
            assumptions.push_back(acts_[i]);
        if (j == 0)
            assumptions.push_back(acts_[0]);
        return assumptions;
    }

    /** Read the frame-0 state bits of the last Sat model. */
    Cube
    extractState()
    {
        Cube cube;
        cube.bits.reserve(state0_.size());
        for (size_t j = 0; j < state0_.size(); ++j)
            cube.bits.emplace_back(int(j),
                                   transSolver_.modelValue(state0_[j]));
        return cube;
    }

    // --- Counterexample reconstruction -----------------------------------
    //
    // Every obligation cube is a *full* assignment to the state bits
    // (extractState reads them all), so its bit string is a unique key.
    // blockObligation records, for each predecessor model, the successor
    // key plus the frame-0 input values of that model; the top-level bad
    // queries record the inputs under which a state is bad. When an
    // obligation reaches frame 0 the chain is stitched back into a
    // concrete Trace.

    std::string
    keyOf(const Cube &cube) const
    {
        std::string key(cube.bits.size(), '0');
        for (size_t j = 0; j < cube.bits.size(); ++j)
            key[j] = cube.bits[j].second ? '1' : '0';
        return key;
    }

    /** Register values of a full frame-0 cube. */
    std::unordered_map<NetId, uint64_t>
    regsOf(const Cube &cube) const
    {
        std::unordered_map<NetId, uint64_t> regs;
        for (auto [bit, value] : cube.bits) {
            auto [reg, pos] = bitOwner_[bit];
            if (value)
                regs[reg] |= uint64_t(1) << pos;
            else
                regs.try_emplace(reg, 0);
        }
        return regs;
    }

    /** Frame-0 input values of the last Sat model. */
    std::unordered_map<NetId, uint64_t>
    inputsAt0() const
    {
        std::unordered_map<NetId, uint64_t> inputs;
        for (NetId in : circuit_.inputs()) {
            if (trans_.cone()[in])
                inputs[in] = trans_.valueOf(in, 0);
        }
        return inputs;
    }

    /** Stitch the obligation chain from initial state @p s0 into a
     * Trace; leaves result.trace absent when the chain is broken. */
    void
    buildCexTrace(const Cube &s0, PdrResult &result)
    {
        Trace trace;
        trace.initialRegs = regsOf(s0);
        std::string cur = keyOf(s0);
        size_t guard = parent_.size() + 2;
        while (guard-- > 0) {
            auto bad = badInputs_.find(cur);
            if (bad != badInputs_.end()) {
                trace.inputs.push_back(bad->second);
                trace.length = trace.inputs.size();
                result.depth = trace.length - 1;
                result.trace = std::move(trace);
                return;
            }
            auto link = parent_.find(cur);
            if (link == parent_.end())
                return; // chain broken: report the Cex without a trace
            trace.inputs.push_back(link->second.inputs);
            cur = link->second.succ;
        }
    }

    /** Does the cube intersect the initial states? */
    bool
    intersectsInit(const Cube &cube)
    {
        std::vector<Lit> assumptions;
        for (auto [bit, value] : cube.bits) {
            if (!initKnown_[bit])
                continue; // outside the init cone: unconstrained
            assumptions.push_back(value ? stateInit_[bit]
                                        : ~stateInit_[bit]);
        }
        return initSolver_.solve(assumptions, budget_) != Status::Unsat;
    }

    /**
     * Is `cube` unreachable from F_{i-1} \ cube in one step?
     * On UNSAT, *core receives the subset of cube literals (as state-bit
     * indices into cube.bits) present in the final conflict.
     */
    Status
    relativeInduction(const Cube &cube, size_t i,
                      std::vector<std::pair<int, bool>> *core)
    {
        // not-cube clause, activated just for the queries on this cube.
        Lit tmp = transCnf_.fresh();
        std::vector<Lit> clause{~tmp};
        for (auto [bit, value] : cube.bits)
            clause.push_back(value ? ~state0_[bit] : state0_[bit]);
        transSolver_.addClause(clause);

        std::vector<Lit> assumptions = frameAssumptions(i - 1);
        assumptions.push_back(tmp);
        std::vector<Lit> primed;
        for (auto [bit, value] : cube.bits) {
            Lit l = value ? state1_[bit] : ~state1_[bit];
            assumptions.push_back(l);
            primed.push_back(l);
        }
        Status status = solveTrans(assumptions);
        // Permanently deactivate the temporary clause.
        transSolver_.addClause(~tmp);
        if (status == Status::Unsat && core) {
            core->clear();
            const auto &failed = transSolver_.failedAssumptions();
            for (size_t idx = 0; idx < cube.bits.size(); ++idx) {
                if (std::find(failed.begin(), failed.end(),
                              primed[idx]) != failed.end())
                    core->push_back(cube.bits[idx]);
            }
        }
        return status;
    }

    /** Shrink a blocked cube while keeping it blocked and init-disjoint. */
    Cube
    generalize(Cube cube, size_t i)
    {
        // 1. Unsat-core shrink.
        std::vector<std::pair<int, bool>> core;
        if (relativeInduction(cube, i, &core) == Status::Unsat &&
            !core.empty()) {
            Cube shrunk;
            shrunk.bits = core;
            // Re-add literals until the cube excludes the initial states.
            if (intersectsInit(shrunk)) {
                for (auto bit : cube.bits) {
                    if (std::find(shrunk.bits.begin(), shrunk.bits.end(),
                                  bit) != shrunk.bits.end())
                        continue;
                    shrunk.bits.push_back(bit);
                    if (!intersectsInit(shrunk))
                        break;
                }
                std::sort(shrunk.bits.begin(), shrunk.bits.end());
            }
            if (!intersectsInit(shrunk))
                cube = shrunk;
        }

        // 2. Bounded literal dropping.
        size_t attempts = options_.generalizeAttempts;
        for (size_t idx = 0; idx < cube.bits.size() && attempts > 0;) {
            if (cube.bits.size() <= 1)
                break;
            Cube trial = cube;
            trial.bits.erase(trial.bits.begin() + idx);
            --attempts;
            if (!intersectsInit(trial) &&
                relativeInduction(trial, i, nullptr) == Status::Unsat) {
                cube = trial; // idx now points at the next literal
            } else {
                ++idx;
            }
        }
        return cube;
    }

    /** Block the states in `cube` (and generalizations) at frame `i`. */
    void
    addBlocked(const Cube &cube, size_t i)
    {
        std::vector<Lit> clause{~acts_[i]};
        for (auto [bit, value] : cube.bits)
            clause.push_back(value ? ~state0_[bit] : state0_[bit]);
        transSolver_.addClause(clause);
        ownedCubes_[i].push_back(cube);
        ++blocked_;
    }

    void
    moveCube(const Cube &cube, size_t from, size_t to)
    {
        auto &owned = ownedCubes_[from];
        owned.erase(std::remove(owned.begin(), owned.end(), cube),
                    owned.end());
        addBlocked(cube, to);
    }

    void
    newFrame()
    {
        acts_.push_back(transCnf_.fresh());
        ownedCubes_.emplace_back();
    }

    /**
     * Recursively block the obligation (state, frame). Returns false when
     * the run is over (result filled with Cex or left as Timeout).
     */
    bool
    blockObligation(const Cube &state, size_t k, PdrResult &result)
    {
        // Obligations ordered by frame (lowest first).
        std::multimap<size_t, Cube> queue;
        queue.emplace(k, state);
        while (!queue.empty()) {
            if (exhausted())
                return false;
            auto it = queue.begin();
            size_t i = it->first;
            Cube s = it->second;
            if (i == 0) {
                // A predecessor chain reached the initial states.
                result.kind = PdrResult::Kind::Cex;
                result.depth = k;
                result.frames = k;
                result.blockedCubes = blocked_;
                buildCexTrace(s, result);
                return false;
            }
            Status status = relativeInduction(s, i, nullptr);
            if (status == Status::Unknown)
                return false;
            if (status == Status::Sat) {
                // Predecessor in F_{i-1}: block it first. Record the
                // link (predecessor -> s under these inputs) for
                // counterexample reconstruction.
                Cube pred = extractState();
                parent_.emplace(keyOf(pred),
                                Link{keyOf(s), inputsAt0()});
                queue.emplace(i - 1, std::move(pred));
                continue;
            }
            // Blocked: generalize, record, and push the obligation
            // forward so deeper frames re-examine it.
            Cube c = generalize(s, i);
            addBlocked(c, i);
            queue.erase(it);
            if (i < k)
                queue.emplace(i + 1, s);
        }
        return true;
    }

    const rtl::Circuit &circuit_;
    PdrOptions options_;
    Budget *budget_ = nullptr;

    sat::Solver transSolver_;
    bitblast::CnfBuilder transCnf_;
    bitblast::Unroller trans_;
    sat::Solver initSolver_;
    bitblast::CnfBuilder initCnf_;
    bitblast::Unroller init_;

    std::vector<Lit> state0_, state1_, stateInit_;
    std::vector<bool> initKnown_;
    std::vector<std::pair<NetId, int>> bitOwner_; ///< state bit -> (reg, bit)
    std::vector<Lit> acts_;
    std::vector<std::vector<Cube>> ownedCubes_;
    uint64_t blocked_ = 0;

    struct Link
    {
        std::string succ;
        std::unordered_map<NetId, uint64_t> inputs;
    };
    std::unordered_map<std::string, Link> parent_;
    std::unordered_map<std::string, std::unordered_map<NetId, uint64_t>>
        badInputs_;

    bool started_ = false;
    bool done_ = false;
    size_t k_ = 0;
    size_t safeBound_ = 0;
    PdrResult result_;
};

Pdr::Pdr(const rtl::Circuit &circuit, PdrOptions options)
{
    csl_assert(circuit.finalized(), "PDR requires a finalized circuit");
    impl_ = std::make_unique<Impl>(circuit, std::move(options));
}

Pdr::~Pdr() = default;

bool
Pdr::step(Budget *budget)
{
    return impl_->stepOnce(budget);
}

const PdrResult &
Pdr::current() const
{
    return impl_->result_;
}

PdrResult
Pdr::run(Budget *budget)
{
    while (!impl_->stepOnce(budget)) {}
    return impl_->result_;
}

size_t
Pdr::safeFrames() const
{
    return impl_->safeBound_;
}

void
Pdr::requestInterrupt()
{
    impl_->transSolver_.requestInterrupt();
    impl_->initSolver_.requestInterrupt();
}

void
Pdr::clearInterrupt()
{
    impl_->transSolver_.clearInterrupt();
    impl_->initSolver_.clearInterrupt();
}

PdrResult
runPdr(const rtl::Circuit &circuit, const PdrOptions &options,
       Budget *budget)
{
    Pdr engine(circuit, options);
    return engine.run(budget);
}

} // namespace csl::mc
