#include "mc/bmc.h"

#include "base/logging.h"

namespace csl::mc {

Bmc::Bmc(const rtl::Circuit &circuit, uint64_t decision_seed)
    : circuit_(circuit)
{
    cnf_ = std::make_unique<bitblast::CnfBuilder>(solver_);
    unroller_ = std::make_unique<bitblast::Unroller>(
        circuit, *cnf_, /*free_initial_state=*/false);
    if (decision_seed != 0)
        solver_.setDecisionSeed(decision_seed);
}

Bmc::~Bmc() = default;

void
Bmc::markSafeUpTo(size_t depth)
{
    if (depth <= checked_)
        return;
    unroller_->ensureFrames(depth);
    for (size_t k = checked_; k < depth; ++k)
        solver_.addClause(~unroller_->badLit(k));
    checked_ = depth;
}

BmcResult
Bmc::run(size_t max_depth, Budget *budget)
{
    BmcResult result;
    for (size_t k = checked_; k < max_depth; ++k) {
        unroller_->ensureFrames(k + 1);
        sat::Status status =
            solver_.solve({unroller_->badLit(k)}, budget);
        result.conflicts = solver_.stats().conflicts;
        if (status == sat::Status::Sat) {
            result.kind = BmcResult::Kind::Cex;
            result.depth = k;
            result.trace = extractTrace(circuit_, *unroller_, k + 1);
            return result;
        }
        if (status == sat::Status::Unknown) {
            result.kind = BmcResult::Kind::Timeout;
            result.depth = checked_;
            return result;
        }
        // Unsat: depth k is safe; record it so the fact is reused both by
        // later queries here and by callers interleaving with induction.
        solver_.addClause(~unroller_->badLit(k));
        checked_ = k + 1;
        if (budget && budget->exhausted()) {
            result.kind = BmcResult::Kind::Timeout;
            result.depth = checked_;
            return result;
        }
    }
    result.kind = BmcResult::Kind::BoundedSafe;
    result.depth = checked_;
    return result;
}

} // namespace csl::mc
