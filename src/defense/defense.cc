#include "defense/defense.h"

namespace csl::defense {

const char *
defenseName(Defense defense)
{
    switch (defense) {
      case Defense::None: return "None";
      case Defense::NoFwdFuturistic: return "NoFwd_futuristic";
      case Defense::NoFwdSpectre: return "NoFwd_spectre";
      case Defense::DelayFuturistic: return "Delay_futuristic";
      case Defense::DelaySpectre: return "Delay_spectre";
      case Defense::DoMSpectre: return "DoM_spectre";
    }
    return "?";
}

bool
isSpectreVariant(Defense defense)
{
    return defense == Defense::NoFwdSpectre ||
           defense == Defense::DelaySpectre ||
           defense == Defense::DoMSpectre;
}

bool
isDelayStyle(Defense defense)
{
    return defense == Defense::DelayFuturistic ||
           defense == Defense::DelaySpectre ||
           defense == Defense::DoMSpectre;
}

} // namespace csl::defense
