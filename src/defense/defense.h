/**
 * @file
 * The five microarchitectural defense mechanisms evaluated in the paper
 * (Section 7.2), wired into OoOCore's issue/forwarding logic.
 */

#ifndef CSL_DEFENSE_DEFENSE_H_
#define CSL_DEFENSE_DEFENSE_H_

namespace csl::defense {

/**
 * Defense policy applied to load instructions.
 *
 * "futuristic" variants treat every instruction as potentially
 * speculative (all speculation sources); "spectre" variants only protect
 * loads that were dispatched while a branch was pending in the ROB
 * (branch misprediction as the sole speculation source).
 */
enum class Defense {
    /** No protection: loads issue and forward speculatively. */
    None,
    /** Load results are not forwarded to younger instructions until the
     * load commits. */
    NoFwdFuturistic,
    /** NoFwd restricted to loads dispatched under a pending branch. */
    NoFwdSpectre,
    /** Loads do not issue until they reach the commit point. */
    DelayFuturistic,
    /** Delay restricted to loads dispatched under a pending branch
     * (the paper's secure core "SimpleOoO-S"). */
    DelaySpectre,
    /** Delay-on-Miss: loads always probe the L1; on a miss under a
     * pending branch, the refill is delayed until the commit point.
     * Requires the core's cache to be enabled. Known insecure. */
    DoMSpectre,
};

/** Short name for tables. */
const char *defenseName(Defense defense);

/** True for the *Spectre variants (protection conditioned on branches). */
bool isSpectreVariant(Defense defense);

/** True when the defense delays load issue (vs. blocking forwarding). */
bool isDelayStyle(Defense defense);

} // namespace csl::defense

#endif // CSL_DEFENSE_DEFENSE_H_
