/**
 * @file
 * Run journal for checkpoint/resume of verification tasks. The paper's
 * JasperGold runs take up to 7 days; a killed process must not throw
 * that work away. The resilient runner serializes its durable facts -
 * the deepest BMC bound proven bad-free, the proven (or partially
 * pruned) Houdini invariant set, per-stage outcomes - to a small text
 * file at every stage boundary, and `cslv --resume <journal>` picks the
 * run back up from there.
 *
 * Soundness: a journal is only trusted when its circuit fingerprint
 * matches the rebuilt verification circuit, so resumed bounds and
 * invariants are facts about the exact same netlist. Proven invariants
 * are reused directly; a partially pruned candidate set merely reseeds
 * the Houdini loop, which re-verifies everything it keeps.
 *
 * Format: line-oriented text, one `key value...` record per line (see
 * save()); written atomically via a temp file + rename so a crash
 * mid-write never corrupts the previous checkpoint.
 */

#ifndef CSL_VERIF_JOURNAL_H_
#define CSL_VERIF_JOURNAL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "rtl/circuit.h"

namespace csl::verif {

/** Serializable checkpoint state of a (possibly unfinished) run. */
struct Journal
{
    static constexpr int kVersion = 1;

    /** Circuit fingerprint guarding resume against task mismatches. */
    std::string fingerprint;

    /**
     * Normalized reduction pipeline the run was solved under ("none"
     * when reduction was off). Safe bounds and invariants are facts
     * about the reduced netlist, so a resume that would re-reduce with
     * different passes must not warm-start from them; the runner
     * rejects the adoption with a diagnostic instead. Empty only in
     * journals from before reduction existed, which resume treats as
     * "none".
     */
    std::string reduction;

    /** Task-reconstruction parameters (written by cslv / the runner so
     * `cslv --resume <journal>` needs no other flags). */
    std::map<std::string, std::string> params;

    /** One record per completed runner stage. */
    struct Stage
    {
        std::string name;
        std::string verdict;
        size_t depth = 0;
        double seconds = 0;
        /** Portfolio winner for the stage ("bmc", "kind", ...); empty
         * when the stage verdict was synthesized or pre-portfolio. */
        std::string winner;
    };
    std::vector<Stage> stages;

    /** Deepest BMC bound proven bad-free so far. */
    size_t bmcSafeDepth = 0;

    /** Engine that produced the final verdict; empty when none did. */
    std::string winningEngine;

    /** Facts exchanged between portfolio engines over the whole run. */
    uint64_t importedFacts = 0;

    /** Houdini survivors proven jointly inductive (net names). Only
     * meaningful when provenValid; an empty proven set is a result too. */
    std::vector<std::string> provenInvariants;
    bool provenValid = false;

    /** Mid-Houdini pruning front (unproven; reseeds a resumed search). */
    std::vector<std::string> prunedCandidates;

    /** Final verdict name once the run completed; empty while in flight. */
    std::string finalVerdict;

    /**
     * Write atomically to @p path. Returns false when the write fails
     * (including via the `journal.write` fault point); callers treat
     * that as "checkpointing unavailable" and keep running.
     */
    bool save(const std::string &path) const;

    /** Parse @p path; nullopt on missing file / version mismatch. */
    static std::optional<Journal> load(const std::string &path);

    /** Look up a param with a default. */
    std::string param(const std::string &key,
                      const std::string &fallback = "") const;
};

/**
 * FNV-1a fingerprint of a finalized circuit: net count, role counts and
 * every net's name and width. Two circuits built by the same scheme
 * from the same task collide; anything else - different preset, defense,
 * contract, scheme, ablation flag or code version that changes the
 * netlist - does not (up to hash collisions).
 */
std::string fingerprintCircuit(const rtl::Circuit &circuit);

} // namespace csl::verif

#endif // CSL_VERIF_JOURNAL_H_
