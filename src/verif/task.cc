#include "verif/task.h"

#include <algorithm>
#include <sstream>

#include "base/logging.h"
#include "base/stopwatch.h"
#include "fuzz/fuzzer.h"
#include "isa/isa.h"
#include "leave/invariant_search.h"
#include "mc/trace.h"
#include "rtl/analysis/analysis.h"
#include "shadow/baseline_builder.h"
#include "shadow/shadow_builder.h"
#include "sim/simulator.h"

namespace csl::verif {

using contract::Contract;
using mc::Verdict;

const char *
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::ContractShadow: return "ContractShadow";
      case Scheme::Baseline: return "Baseline";
      case Scheme::UpecLike: return "UPEC-like";
      case Scheme::Leave: return "LEAVE-like";
      case Scheme::Fuzz: return "Fuzz";
    }
    return "?";
}

namespace {

/** Read a memory's initial contents out of a counterexample trace. */
std::vector<uint64_t>
memFromTrace(const mc::Trace &trace, const std::vector<rtl::Sig> &words_sig)
{
    std::vector<uint64_t> words(words_sig.size(), 0);
    for (size_t i = 0; i < words_sig.size(); ++i) {
        auto it = trace.initialRegs.find(words_sig[i].id);
        if (it != trace.initialRegs.end())
            words[i] = it->second;
    }
    return words;
}

/** Human-readable attack report: program, secrets, witness replay. */
std::string
decodeAttack(const rtl::Circuit &circuit, const mc::Trace &trace,
             const proc::CoreIfc &cpu1, const proc::CoreIfc &cpu2,
             const isa::IsaConfig &ic)
{
    std::ostringstream oss;
    auto imem = memFromTrace(trace, cpu1.imemWords);
    auto dmem1 = memFromTrace(trace, cpu1.dmemWords);
    auto dmem2 = memFromTrace(trace, cpu2.dmemWords);
    oss << "attack program (" << trace.length << " cycles to leak):\n"
        << isa::disassembleProgram(imem, ic);
    oss << "  dmem1:";
    for (uint64_t w : dmem1)
        oss << " " << w;
    oss << "   dmem2:";
    for (uint64_t w : dmem2)
        oss << " " << w;
    oss << "\n";
    mc::ReplayResult replay = mc::replayTrace(circuit, trace);
    oss << "  witness replay: "
        << (replay.badReached && replay.constraintsHeld &&
                    replay.initConstraintsHeld
                ? "confirmed in simulation"
                : "REPLAY MISMATCH (engine bug?)")
        << "\n";
    // The shadow circuits have no free inputs, so the counterexample can
    // be replayed deterministically beyond its reported end; a contract
    // violation there means the checker accepted a program a longer
    // contract check would have filtered (the instruction-inclusion
    // requirement exists to prevent exactly this).
    mc::Trace extended = trace;
    extended.length += 24;
    extended.inputs.resize(extended.length);
    mc::ReplayResult cont = mc::replayTrace(circuit, extended);
    oss << "  contract check over " << extended.length << " cycles: "
        << (cont.constraintsHeld
                ? "still satisfied"
                : "violated after the reported leak (with the drain "
                  "check on, only instructions issued after the "
                  "divergence are involved; with it off this can mask a "
                  "filtered program)")
        << "\n";
    return oss.str();
}

VerificationResult
runModelChecking(const VerificationTask &task)
{
    Stopwatch watch;
    rtl::Circuit circuit;
    proc::CoreIfc cpu1, cpu2;
    std::vector<rtl::NetId> candidates;
    rtl::NetId quiescent = rtl::kNoNet;
    rtl::analysis::Report preflight;
    size_t static_seeds = 0;
    const isa::IsaConfig &ic = task.core.isaConfig();
    const bool strengthen = task.autoStrengthen && task.tryProof &&
                            task.scheme != Scheme::Baseline;

    if (task.scheme == Scheme::Baseline) {
        shadow::BaselineHarness h = shadow::buildBaselineCircuit(
            circuit, task.core, task.contract, task.assumeSecretsDiffer);
        cpu1 = h.cpu1;
        cpu2 = h.cpu2;
        preflight = h.preflight;
    } else {
        shadow::ShadowOptions sopts;
        sopts.contract = task.contract;
        sopts.restrictToBranchSpeculation =
            task.scheme == Scheme::UpecLike;
        sopts.enablePause = task.enablePause;
        sopts.enableDrainCheck = task.enableDrainCheck;
        sopts.assumeSecretsDiffer = task.assumeSecretsDiffer;
        sopts.excludeMisaligned = task.excludeMisaligned;
        sopts.excludeOutOfRange = task.excludeOutOfRange;
        sopts.emitRelationalCandidates = strengthen;
        shadow::ShadowHarness h =
            shadow::buildShadowCircuit(circuit, task.core, sopts);
        cpu1 = h.cpu1;
        cpu2 = h.cpu2;
        candidates = h.relationalCandidates;
        quiescent = h.quiescentCandidate;
        preflight = h.preflight;
        static_seeds = h.staticSeedCount;
    }

    VerificationResult result;

    // --- Static pre-flight gate -----------------------------------------
    // Cheap linear passes that catch structural mistakes (vacuous
    // assumes, input-free assert cones, mis-wired shadow machinery)
    // before minutes of SAT budget are burned on them.
    std::string preflight_note;
    if (task.preflight) {
        rtl::analysis::AnalysisOptions aopts;
        aopts.extraRoots = candidates;
        rtl::analysis::Report report =
            rtl::analysis::runAll(circuit, aopts);
        report.merge(preflight);
        if (report.hasErrors()) {
            result.verdict = Verdict::Diagnosed;
            result.seconds = watch.seconds();
            result.detail = "pre-flight failed (" + report.summary() +
                            "):\n" +
                            report.format(rtl::analysis::Severity::Warning);
            return result;
        }
        preflight_note = "preflight " + report.summary();
        if (strengthen && !candidates.empty())
            preflight_note += ", " + std::to_string(static_seeds) + "/" +
                              std::to_string(candidates.size()) +
                              " static secret-free seeds";
    }

    mc::CheckOptions copts;
    copts.maxDepth = task.maxDepth;
    copts.tryProof = task.tryProof;

    if (strengthen && !candidates.empty()) {
        // Houdini pruning gets at most half the budget; the rest goes to
        // the model-checking run proper. The window escalates: most
        // defenses prove with 1-step-inductive invariants; defenses that
        // condition protection on in-flight state (the *_spectre
        // variants) need a window wide enough to contain the commit of a
        // bound-to-commit instruction (roughly a double ROB drain), so
        // that the contract assumption excuses its transient state.
        Budget houdini_budget(task.timeoutSeconds / 2);
        std::vector<size_t> windows;
        if (task.strengthenWindow != 0) {
            windows.push_back(task.strengthenWindow);
        } else {
            windows.push_back(1);
            bool is_ooo = task.core.kind != proc::CoreKind::InOrder &&
                          task.core.kind != proc::CoreKind::IsaSingleCycle;
            if (is_ooo)
                windows.push_back(std::min<size_t>(
                    18, 3 * size_t(task.core.ooo.robSize) + 4));
        }
        std::ostringstream detail;
        for (size_t wi = 0; wi < windows.size(); ++wi) {
            auto survivors = mc::proveInductiveInvariants(
                circuit, candidates, &houdini_budget, windows[wi]);
            if (!survivors) {
                detail << "invariant search timed out (w=" << windows[wi]
                       << ")";
                break;
            }
            bool quiet = quiescent != rtl::kNoNet &&
                         std::find(survivors->begin(), survivors->end(),
                                   quiescent) != survivors->end();
            if (quiet || survivors->size() > copts.assumedInvariants.size())
                copts.assumedInvariants = *survivors;
            detail.str("");
            detail << copts.assumedInvariants.size() << "/"
                   << candidates.size() << " invariants (w="
                   << windows[wi] << ")";
            // Escalating is only useful while divergence-freedom has not
            // been established.
            if (quiet)
                break;
        }
        result.detail = detail.str();
    }

    copts.timeoutSeconds = task.timeoutSeconds - watch.seconds();
    mc::CheckResult cres = mc::checkProperty(circuit, copts);

    result.verdict = cres.verdict;
    result.seconds = watch.seconds();
    result.depth = cres.depth;
    result.conflicts = cres.conflicts;
    if (!preflight_note.empty()) {
        if (!result.detail.empty())
            result.detail += "; ";
        result.detail += preflight_note;
    }
    if (cres.verdict == Verdict::Attack && cres.trace)
        result.attackReport =
            decodeAttack(circuit, *cres.trace, cpu1, cpu2, ic);
    return result;
}

VerificationResult
runLeaveScheme(const VerificationTask &task)
{
    leave::LeaveOptions lopts;
    lopts.contract = task.contract;
    lopts.timeoutSeconds = task.timeoutSeconds;
    leave::LeaveResult lres = leave::runLeave(task.core, lopts);

    VerificationResult result;
    result.seconds = lres.seconds;
    std::ostringstream detail;
    detail << lres.survivors << "/" << lres.candidates
           << " candidate invariants survived";
    switch (lres.kind) {
      case leave::LeaveResult::Kind::Proof:
        result.verdict = Verdict::Proof;
        break;
      case leave::LeaveResult::Kind::Unknown:
        result.verdict = Verdict::BoundedSafe;
        detail << "; UNKNOWN (invariants too weak: cannot tell secure "
                  "from insecure)";
        break;
      case leave::LeaveResult::Kind::Timeout:
        result.verdict = Verdict::Timeout;
        break;
    }
    result.detail = detail.str();
    return result;
}

VerificationResult
runFuzzScheme(const VerificationTask &task)
{
    fuzz::FuzzOptions fopts;
    fopts.contract = task.contract;
    fopts.timeoutSeconds = task.timeoutSeconds;
    fuzz::FuzzResult fres = fuzz::runFuzzer(task.core, fopts);

    VerificationResult result;
    result.seconds = fres.seconds;
    std::ostringstream detail;
    detail << fres.programsTried << " programs tried, "
           << fres.programsValid << " contract-valid";
    result.detail = detail.str();
    if (fres.attack) {
        result.verdict = Verdict::Attack;
        std::ostringstream oss;
        oss << "attack program (bus/commit divergence at cycle "
            << fres.attack->divergenceCycle << "):\n"
            << isa::disassembleProgram(fres.attack->program,
                                       task.core.isaConfig());
        result.attackReport = oss.str();
    } else {
        // Fuzzing cannot prove security.
        result.verdict = Verdict::BoundedSafe;
    }
    return result;
}

} // namespace

VerificationResult
runVerification(const VerificationTask &task)
{
    switch (task.scheme) {
      case Scheme::ContractShadow:
      case Scheme::Baseline:
      case Scheme::UpecLike:
        return runModelChecking(task);
      case Scheme::Leave:
        return runLeaveScheme(task);
      case Scheme::Fuzz:
        return runFuzzScheme(task);
    }
    csl_panic("unknown scheme");
}

std::string
formatResult(const VerificationResult &result)
{
    std::ostringstream oss;
    oss << mc::verdictName(result.verdict) << " in "
        << formatSeconds(result.seconds);
    if (!result.detail.empty())
        oss << " (" << result.detail << ")";
    return oss.str();
}

} // namespace csl::verif
