#include "verif/task.h"

#include <sstream>

#include "base/logging.h"
#include "base/stopwatch.h"
#include "fuzz/fuzzer.h"
#include "isa/isa.h"
#include "leave/invariant_search.h"
#include "verif/runner.h"

namespace csl::verif {

using mc::Verdict;

const char *
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::ContractShadow: return "ContractShadow";
      case Scheme::Baseline: return "Baseline";
      case Scheme::UpecLike: return "UPEC-like";
      case Scheme::Leave: return "LEAVE-like";
      case Scheme::Fuzz: return "Fuzz";
    }
    return "?";
}

namespace {

VerificationResult
runLeaveScheme(const VerificationTask &task)
{
    leave::LeaveOptions lopts;
    lopts.contract = task.contract;
    lopts.timeoutSeconds = task.timeoutSeconds;
    leave::LeaveResult lres = leave::runLeave(task.core, lopts);

    VerificationResult result;
    result.seconds = lres.seconds;
    std::ostringstream detail;
    detail << lres.survivors << "/" << lres.candidates
           << " candidate invariants survived";
    switch (lres.kind) {
      case leave::LeaveResult::Kind::Proof:
        result.verdict = Verdict::Proof;
        break;
      case leave::LeaveResult::Kind::Unknown:
        result.verdict = Verdict::BoundedSafe;
        detail << "; UNKNOWN (invariants too weak: cannot tell secure "
                  "from insecure)";
        break;
      case leave::LeaveResult::Kind::Timeout:
        result.verdict = Verdict::Timeout;
        break;
    }
    result.detail = detail.str();
    return result;
}

VerificationResult
runFuzzScheme(const VerificationTask &task)
{
    fuzz::FuzzOptions fopts;
    fopts.contract = task.contract;
    fopts.timeoutSeconds = task.timeoutSeconds;
    fuzz::FuzzResult fres = fuzz::runFuzzer(task.core, fopts);

    VerificationResult result;
    result.seconds = fres.seconds;
    std::ostringstream detail;
    detail << fres.programsTried << " programs tried, "
           << fres.programsValid << " contract-valid";
    result.detail = detail.str();
    if (fres.attack) {
        result.verdict = Verdict::Attack;
        std::ostringstream oss;
        oss << "attack program (bus/commit divergence at cycle "
            << fres.attack->divergenceCycle << "):\n"
            << isa::disassembleProgram(fres.attack->program,
                                       task.core.isaConfig());
        result.attackReport = oss.str();
    } else {
        // Fuzzing cannot prove security.
        result.verdict = Verdict::BoundedSafe;
    }
    return result;
}

} // namespace

VerificationResult
runVerification(const VerificationTask &task)
{
    switch (task.scheme) {
      case Scheme::ContractShadow:
      case Scheme::Baseline:
      case Scheme::UpecLike:
        // Model-checking schemes go through the resilient staged runner
        // (witness self-audit, engine fallback, partial-answer salvage).
        return runResilientVerification(task).result;
      case Scheme::Leave:
        return runLeaveScheme(task);
      case Scheme::Fuzz:
        return runFuzzScheme(task);
    }
    csl_panic("unknown scheme");
}

std::string
formatResult(const VerificationResult &result)
{
    std::ostringstream oss;
    oss << mc::verdictName(result.verdict) << " in "
        << formatSeconds(result.seconds);
    if (!result.detail.empty())
        oss << " (" << result.detail << ")";
    return oss.str();
}

} // namespace csl::verif
