/**
 * @file
 * The library's top-level public API: describe a verification task
 * (processor x contract x scheme x budget), run it, and get a verdict
 * with a decoded attack program when one is found.
 *
 * This is the workflow of paper Section 6: instantiate two copies with
 * symbolic instruction memories, constrain equal initial state modulo
 * the secret region, assume the contract constraint check, and model
 * check the leakage assertion.
 */

#ifndef CSL_VERIF_TASK_H_
#define CSL_VERIF_TASK_H_

#include <optional>
#include <string>
#include <vector>

#include "contract/contract.h"
#include "mc/portfolio.h"
#include "proc/presets.h"

namespace csl::verif {

/** Which verification scheme to apply. */
enum class Scheme {
    ContractShadow, ///< the paper's contribution (two machines + shadow)
    Baseline,       ///< four-machine scheme (Fig. 1a)
    UpecLike,       ///< shadow scheme restricted to branch speculation
    Leave,          ///< LEAVE-style invariant search
    Fuzz,           ///< differential fuzzing comparator
};

const char *schemeName(Scheme scheme);

/** A full verification task description. */
struct VerificationTask
{
    proc::CoreSpec core;
    contract::Contract contract = contract::Contract::Sandboxing;
    Scheme scheme = Scheme::ContractShadow;

    /** Engine limits (maxDepth doubles as BMC bound and induction k). */
    size_t maxDepth = 24;
    double timeoutSeconds = 600.0;
    /** Skip the proof engine (attack hunting only). */
    bool tryProof = true;
    /**
     * Static pre-flight gate: lint the verification circuit (structure,
     * cone reachability, assumption vacuity, scheme-aware shadow checks)
     * before any bit-blasting. Errors short-circuit the run to
     * Verdict::Diagnosed with the report in VerificationResult::detail;
     * warnings and the report summary ride along in detail either way.
     * Costs one linear sweep over the netlist (well under 1% of any
     * model-checking run).
     */
    bool preflight = true;
    /**
     * Automatic relational strengthening before induction: Houdini-prune
     * the shadow builder's candidate invariants and assume the survivors
     * in the induction step. This is the ingredient that lets unbounded
     * proofs close (stands in for the invariant discovery inside a
     * commercial proof engine); disabled for the Baseline scheme, whose
     * four-machine product needs refinement-map invariants that the
     * relational template family cannot express - the redundancy the
     * paper's scheme eliminates.
     */
    bool autoStrengthen = true;
    /**
     * Induction window for the invariant search (see
     * mc::proveInductiveInvariants). 0 = automatic: wide enough that a
     * bound-to-commit instruction's commit - whose contract check
     * excuses transiently differing state - falls inside the window
     * (roughly two ROB drain times).
     */
    size_t strengthenWindow = 0;
    /** Constrain the two secret regions to differ (attack hunting). */
    bool assumeSecretsDiffer = false;
    /** Ablation switches forwarded to the shadow builder. */
    bool enablePause = true;
    bool enableDrainCheck = true;
    /**
     * Attack-exclusion assumptions for the iterative search of paper
     * Section 7.1.4 (forbid misaligned / out-of-range memory programs).
     */
    bool excludeMisaligned = false;
    bool excludeOutOfRange = false;
};

/** Uniform result across schemes. */
struct VerificationResult
{
    /** ATTACK / PROOF / BOUNDED-SAFE / TIMEOUT; LEAVE's UNKNOWN maps to
     * BOUNDED-SAFE with detail "UNKNOWN". */
    mc::Verdict verdict = mc::Verdict::Timeout;
    double seconds = 0;
    size_t depth = 0;
    uint64_t conflicts = 0;
    /** Attack verdicts: the disassembled program + secret witness. */
    std::string attackReport;
    /** Scheme-specific notes (e.g. LEAVE survivor counts). */
    std::string detail;
};

/** Run a task to completion (respecting its budget). */
VerificationResult runVerification(const VerificationTask &task);

/** One-line rendering for tables. */
std::string formatResult(const VerificationResult &result);

} // namespace csl::verif

#endif // CSL_VERIF_TASK_H_
