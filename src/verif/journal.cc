#include "verif/journal.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "base/faultpoint.h"
#include "base/logging.h"

namespace csl::verif {

bool
Journal::save(const std::string &path) const
{
    if (fault::shouldFire("journal.write"))
        return false;
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            return false;
        out << "csl-journal " << kVersion << "\n";
        out << "fingerprint " << fingerprint << "\n";
        if (!reduction.empty())
            out << "reduction " << reduction << "\n";
        for (const auto &[key, value] : params)
            out << "param " << key << " " << value << "\n";
        out << "bmc-safe " << bmcSafeDepth << "\n";
        if (provenValid) {
            out << "proven";
            for (const std::string &name : provenInvariants)
                out << " " << name;
            out << "\n";
        }
        if (!prunedCandidates.empty()) {
            out << "pruned";
            for (const std::string &name : prunedCandidates)
                out << " " << name;
            out << "\n";
        }
        for (const Stage &stage : stages)
            out << "stage " << stage.name << " " << stage.verdict << " "
                << stage.depth << " " << stage.seconds << " "
                << (stage.winner.empty() ? "-" : stage.winner) << "\n";
        if (!winningEngine.empty())
            out << "winner " << winningEngine << "\n";
        out << "imported " << importedFacts << "\n";
        if (!finalVerdict.empty())
            out << "final " << finalVerdict << "\n";
        out.flush();
        if (!out)
            return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

std::optional<Journal>
Journal::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    Journal journal;
    std::string line;
    bool header_seen = false;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string tag;
        if (!(ls >> tag))
            continue;
        if (tag == "csl-journal") {
            int version = 0;
            ls >> version;
            if (version != kVersion)
                return std::nullopt;
            header_seen = true;
        } else if (tag == "fingerprint") {
            ls >> journal.fingerprint;
        } else if (tag == "reduction") {
            ls >> journal.reduction;
        } else if (tag == "param") {
            std::string key, value;
            ls >> key >> value;
            journal.params[key] = value;
        } else if (tag == "bmc-safe") {
            ls >> journal.bmcSafeDepth;
        } else if (tag == "proven") {
            journal.provenValid = true;
            std::string name;
            while (ls >> name)
                journal.provenInvariants.push_back(name);
        } else if (tag == "pruned") {
            std::string name;
            while (ls >> name)
                journal.prunedCandidates.push_back(name);
        } else if (tag == "stage") {
            Stage stage;
            ls >> stage.name >> stage.verdict >> stage.depth >>
                stage.seconds;
            // Optional trailing winner token (absent in old journals).
            if (ls >> stage.winner && stage.winner == "-")
                stage.winner.clear();
            journal.stages.push_back(std::move(stage));
        } else if (tag == "winner") {
            ls >> journal.winningEngine;
        } else if (tag == "imported") {
            ls >> journal.importedFacts;
        } else if (tag == "final") {
            ls >> journal.finalVerdict;
        }
        // Unknown tags are ignored: forward-compatible within a version.
    }
    if (!header_seen)
        return std::nullopt;
    return journal;
}

std::string
Journal::param(const std::string &key, const std::string &fallback) const
{
    auto it = params.find(key);
    return it == params.end() ? fallback : it->second;
}

std::string
fingerprintCircuit(const rtl::Circuit &circuit)
{
    uint64_t h = 0xcbf29ce484222325ull; // FNV-1a offset basis
    auto mix = [&h](const void *data, size_t n) {
        const unsigned char *p = static_cast<const unsigned char *>(data);
        for (size_t i = 0; i < n; ++i) {
            h ^= p[i];
            h *= 0x100000001b3ull;
        }
    };
    auto mixValue = [&](uint64_t v) { mix(&v, sizeof(v)); };
    mixValue(circuit.numNets());
    mixValue(circuit.registers().size());
    mixValue(circuit.inputs().size());
    mixValue(circuit.bads().size());
    mixValue(circuit.constraints().size());
    mixValue(circuit.initConstraints().size());
    for (rtl::NetId id = 0; id < rtl::NetId(circuit.numNets()); ++id) {
        std::string name = circuit.name(id);
        mix(name.data(), name.size());
        mixValue(uint64_t(circuit.net(id).width));
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

} // namespace csl::verif
