/**
 * @file
 * The resilient verification runtime: staged engine fallback with
 * deadline propagation, a mandatory witness self-audit on every attack
 * verdict, and journal-based checkpoint/resume.
 *
 * Motivation (ISSUE 2): multi-day solver runs are trusted to prove,
 * find an attack, or time out cleanly - a solver hiccup, an
 * unreplayable counterexample or a killed process must not throw the
 * run away or, worse, report a wrong attack. Revizor-style tooling only
 * trusts speculative-leak reports after independent replay; this runner
 * applies the same discipline to model-checker witnesses.
 *
 * Stage plan (each stage inherits the *remaining* wall clock through a
 * Deadline slice, never the full timeout):
 *
 *   1. kinduction             Houdini strengthening (window 1) +
 *                             k-induction proof attempt
 *   2. kinduction-strengthened  wider invariant window (OoO cores), a
 *                             second proof attempt on what survived
 *   3. bmc                    bounded falsification only; pushes the
 *                             safe bound as deep as the clock allows
 *
 * Every Verdict::Attack is replayed through the sim interpreter before
 * being reported: all assumptions must hold and the assertion must fire
 * at the reported frame. On mismatch the witness is quarantined and the
 * solve retried with a perturbed decision seed (bounded retries, each
 * on a shrinking slice of the remaining budget); if no audited witness
 * emerges the run degrades to BoundedSafe-with-detail rather than
 * emitting a wrong attack. A partial answer (deepest safe bound,
 * surviving invariants) is always salvaged from a cancelled stage.
 */

#ifndef CSL_VERIF_RUNNER_H_
#define CSL_VERIF_RUNNER_H_

#include <optional>
#include <string>
#include <vector>

#include "base/deadline.h"
#include "verif/journal.h"
#include "verif/task.h"

namespace csl::verif {

/** Knobs of the resilient runner (defaults match runVerification()). */
struct RunnerOptions
{
    /** Seed-perturbed re-solves allowed after a failed witness audit. */
    size_t maxAuditRetries = 2;

    /** Journal file for checkpoint/resume; empty = no checkpointing. */
    std::string journalPath;

    /** Load journalPath and warm-start from it (fingerprint-guarded). */
    bool resume = false;

    /** Share of the remaining wall clock granted to the first proof
     * stage (the rest is kept for the strengthened retry and BMC). */
    double stage1Fraction = 0.5;

    /** Share of what then remains granted to the strengthened retry. */
    double stage2Fraction = 0.5;

    /** External deadline/cancellation token; the task budget is sliced
     * from it so a cancel() stops every stage cooperatively. */
    std::optional<Deadline> deadline;

    /** Base SAT decision seed (0 = deterministic default search). */
    uint64_t decisionSeed = 0;

    /**
     * Engines raced inside every solver stage (see mc/engine.h). Empty
     * selects per-stage defaults: proof stages race {bmc, kind, pdr},
     * the hunt/fallback stage runs {bmc} alone so reported attack
     * depths stay minimal. A non-empty set applies to every stage, is
     * recorded in the journal ("engines" param) and re-adopted by
     * --resume when the resuming caller leaves it empty - so a resumed
     * run races the same engines and lands on the same verdict.
     */
    std::vector<mc::EngineKind> engines;

    /** Worker threads for the Houdini pruning phase (1 = sequential). */
    size_t houdiniThreads = 1;

    /**
     * Reduction pipeline applied before any engine stage (see
     * rtl/transform/passes.h for the pass inventory). Empty selects the
     * default pipeline - or, on --resume, whatever pipeline the journal
     * records, so a resumed run solves the same reduced netlist. "none"
     * disables reduction. The normalized pipeline is written to the
     * journal; a resume whose requested pipeline disagrees with the
     * recorded one is rejected with a diagnostic (safe bounds and
     * invariants are facts about the reduced netlist and do not
     * transfer) and the run starts fresh. An unparsable pipeline yields
     * Verdict::Diagnosed.
     */
    std::string passes;
};

/** What happened in one runner stage. */
struct StageOutcome
{
    std::string name;
    mc::Verdict verdict = mc::Verdict::Timeout;
    size_t depth = 0;
    double seconds = 0;
    std::string note;
    /** Engine whose verdict the stage adopted (empty: synthesized). */
    std::string winner;
};

/** runVerification()'s result plus the runner's resilience telemetry. */
struct RunnerResult
{
    VerificationResult result;
    std::vector<StageOutcome> stages;
    /** Witnesses that failed the simulation audit and were suppressed. */
    size_t quarantinedWitnesses = 0;
    /** Seed-perturbed re-solves performed after failed audits. */
    size_t auditRetries = 0;
    /** Deepest bound proven bad-free across all stages (and resume). */
    size_t deepestSafeBound = 0;
    /** True when a journal was loaded and its facts were reused. */
    bool resumed = false;
    /** Engine that produced the final verdict (empty: synthesized). */
    std::string winningEngine;
    /** Facts exchanged between portfolio engines across all stages. */
    uint64_t importedFacts = 0;
    /** Normalized reduction pipeline the engines solved under ("none"
     * when reduction was disabled). */
    std::string reductionPipeline;
    /** Netlist sizes on either side of the reduction pipeline. */
    size_t originalNets = 0;
    size_t reducedNets = 0;
    size_t originalRegs = 0;
    size_t reducedRegs = 0;
    /** Wall-clock seconds spent inside the reduction pipeline. */
    double reductionSeconds = 0;
};

/**
 * Run a model-checking task (ContractShadow / Baseline / UpecLike)
 * through the resilient staged pipeline. Leave/Fuzz tasks are not
 * staged; runVerification() dispatches them directly.
 */
RunnerResult runResilientVerification(const VerificationTask &task,
                                      const RunnerOptions &options = {});

/** The journal params the runner records for task reconstruction. */
std::map<std::string, std::string> journalParams(
    const VerificationTask &task);

/**
 * Rebuild a VerificationTask from journal params (the inverse of
 * journalParams(), used by `cslv --resume`). Returns nullopt when
 * required params are missing or unparsable.
 */
std::optional<VerificationTask> taskFromJournalParams(
    const std::map<std::string, std::string> &params);

} // namespace csl::verif

#endif // CSL_VERIF_RUNNER_H_
