#include "verif/campaign/triage.h"

#include <signal.h>

#include <algorithm>

namespace csl::verif::campaign {

const char *
failureClassName(FailureClass cls)
{
    switch (cls) {
      case FailureClass::CleanVerdict: return "clean";
      case FailureClass::WallTimeout: return "wall-timeout";
      case FailureClass::CpuTimeout: return "cpu-timeout";
      case FailureClass::Oom: return "oom";
      case FailureClass::CrashSignal: return "crash-signal";
      case FailureClass::CorruptOutput: return "corrupt-output";
    }
    return "?";
}

FailureClass
classifyAttempt(const SubprocessStatus &status, bool wallExpired,
                bool channelParsed)
{
    if (wallExpired)
        return FailureClass::WallTimeout;
    if (status.signaled) {
        // SIGXCPU is RLIMIT_CPU's soft limit; the hard limit's SIGKILL
        // backstop lands one second later, after the same amount of CPU
        // burn, so both spell "CPU cap". A SIGKILL without that much
        // CPU time is somebody killing the worker (OOM killer, injected
        // crash, operator) - the OOM killer case is indistinguishable
        // from here, and both triage the same way at first: retry.
        if (status.termSignal == SIGXCPU)
            return FailureClass::CpuTimeout;
        return FailureClass::CrashSignal;
    }
    if (status.exited && status.exitCode == kOomExitCode)
        return FailureClass::Oom;
    if (!channelParsed)
        return FailureClass::CorruptOutput;
    return FailureClass::CleanVerdict;
}

bool
isTransient(FailureClass cls)
{
    return cls == FailureClass::CrashSignal ||
           cls == FailureClass::CorruptOutput;
}

uint64_t
backoffMillis(uint64_t baseMs, uint64_t seed, size_t cellIndex,
              size_t attempt)
{
    if (baseMs == 0)
        return 0;
    const uint64_t exponent = std::min<uint64_t>(
        attempt == 0 ? 0 : uint64_t(attempt) - 1, 6);
    const uint64_t delay = baseMs << exponent;
    // splitmix64 over (seed, cell, attempt): stable across runs, spread
    // across cells.
    uint64_t z = seed + 0x9E3779B97F4A7C15ull * (cellIndex * 131 +
                                                 attempt + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    const uint64_t jitterSpan = std::max<uint64_t>(baseMs / 2, 1);
    return delay + z % jitterSpan;
}

const char *
degradeLevelName(size_t level)
{
    switch (level) {
      case 0: return "portfolio";
      case 1: return "bmc-only";
      case 2: return "light-passes";
      case 3: return "bounded";
    }
    return "?";
}

void
applyDegradation(size_t level, VerificationTask &task,
                 RunnerOptions &ropts)
{
    if (level >= 1) {
        // One engine, no portfolio threads: both the smallest memory
        // footprint and the fewest moving parts when workers crash.
        ropts.engines = {mc::EngineKind::Bmc};
        ropts.houdiniThreads = 1;
    }
    if (level >= 2) {
        // Keep the cheap structural shrink (cone-of-influence + dead
        // code), drop the rewriting passes.
        ropts.passes = "coi,dce";
    }
    if (level >= 3) {
        // Last rung: a bounded sweep at half depth. An honest
        // BoundedSafe with a real bound beats a permanently failed
        // cell.
        task.tryProof = false;
        task.autoStrengthen = false;
        task.maxDepth = std::max<size_t>(task.maxDepth / 2, 4);
    }
}

} // namespace csl::verif::campaign
