/**
 * @file
 * Campaign descriptions and durable campaign state. A campaign is the
 * paper's evaluation unit: a matrix of verification cells (Table 2's
 * scheme x processor grid, Table 3's defense sweep), each a long
 * model-checking run of untrusted duration. The supervisor
 * (scheduler.h) runs the cells in worker processes; this file owns the
 * pieces that must survive the supervisor itself dying:
 *
 *  - CampaignSpec: parsed from a small text file, one `cell` line per
 *    task (same names as the cslv flags).
 *  - the worker result channel: the structured record a worker writes
 *    to its pipe (encode/parse; an unparsable channel is a triaged
 *    failure class, not a crash).
 *  - CampaignManifest: per-cell status written with the same atomic
 *    tmp+rename discipline as verif/journal.cc after every state
 *    change, so `cslv --campaign-resume` after a SIGKILL of the
 *    supervisor re-runs only the unfinished cells.
 *
 * Spec format (line-oriented; '#' starts a comment):
 *
 *   csl-campaign 1
 *   cell sodor        core=inorder
 *   cell delay-proof  core=simpleooo defense=delay_spectre
 *   cell simple-hunt  core=simpleooo hunt=1 depth=12 budget=60
 *
 * Recognized keys: core, defense, contract, scheme, depth, budget,
 * hunt, rob, regs, dmem, imem, engines, passes, seed.
 */

#ifndef CSL_VERIF_CAMPAIGN_CAMPAIGN_H_
#define CSL_VERIF_CAMPAIGN_CAMPAIGN_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "verif/campaign/triage.h"
#include "verif/runner.h"
#include "verif/task.h"

namespace csl::verif::campaign {

/** Flag-name parsers shared with cslv (nullopt on unknown names). */
std::optional<proc::CoreSpec> parseCoreName(const std::string &name,
                                            defense::Defense def);
std::optional<defense::Defense> parseDefenseName(const std::string &name);
std::optional<contract::Contract> parseContractName(
    const std::string &name);
std::optional<Scheme> parseSchemeName(const std::string &name);

/** One cell of the campaign matrix. */
struct CampaignCell
{
    std::string name; ///< manifest key; [A-Za-z0-9._-]+, unique
    VerificationTask task;
    RunnerOptions ropts; ///< engines/passes/seed from the spec
};

/** A parsed campaign description. */
struct CampaignSpec
{
    static constexpr int kVersion = 1;

    std::vector<CampaignCell> cells;

    /** FNV-1a of the spec text; guards manifest resume the same way
     * the circuit fingerprint guards journal resume. */
    std::string fingerprint;

    /**
     * Parse a spec file. On failure returns nullopt and, when @p error
     * is non-null, a one-line diagnostic naming the offending line.
     */
    static std::optional<CampaignSpec> loadFile(const std::string &path,
                                                std::string *error);

    /** Parse spec text directly (loadFile's core; tests use this). */
    static std::optional<CampaignSpec> parse(const std::string &text,
                                             std::string *error);
};

// --- Worker result channel ------------------------------------------------

/**
 * The structured record a worker writes to its pipe: the verdict plus
 * the telemetry the campaign report aggregates. Deliberately tiny -
 * the full attack report and journal live in the cell's journal file,
 * which the worker also writes; the pipe carries only what the
 * supervisor needs to triage and report.
 */
struct CellResult
{
    mc::Verdict verdict = mc::Verdict::Timeout;
    size_t depth = 0;
    double seconds = 0;
    uint64_t conflicts = 0;
    size_t deepestSafeBound = 0;
    size_t quarantinedWitnesses = 0;
    bool resumedFromJournal = false;
    std::string winningEngine;
    std::string detail; ///< newline-escaped single line
};

/** Serialize for the pipe (header + key lines + `end` terminator). */
std::string encodeCellResult(const CellResult &result);

/**
 * Parse a worker channel. nullopt when the header or the `end`
 * terminator is missing or a field is malformed - the caller triages
 * that as FailureClass::CorruptOutput.
 */
std::optional<CellResult> parseCellResult(const std::string &channel);

/** Name <-> enum for verdicts crossing the pipe ("PROOF", ...). */
std::optional<mc::Verdict> parseVerdictName(const std::string &name);

// --- Campaign manifest ----------------------------------------------------

/** Durable per-cell progress, one record per cell. */
struct ManifestCell
{
    std::string name;
    /** "pending" | "done" | "failed" (permanently). */
    std::string status = "pending";
    size_t attempts = 0;
    size_t degradeLevel = 0;
    /** Verdict name once done ("-" in the file while pending). */
    std::string verdict;
    size_t depth = 0;
    double wallSeconds = 0;
    double cpuSeconds = 0;
    /** Last triaged failure class ("-" when none). */
    std::string lastFailure;

    bool finished() const { return status != "pending"; }
};

struct CampaignManifest
{
    static constexpr int kVersion = 1;

    std::string specFingerprint;
    std::vector<ManifestCell> cells;

    ManifestCell *find(const std::string &name);

    /** Atomic tmp+rename write, like Journal::save. Also a
     * `campaign.manifest-write` fault site for the triage tests. */
    bool save(const std::string &path) const;

    static std::optional<CampaignManifest> load(const std::string &path);
};

// --- Campaign report ------------------------------------------------------

/** Final per-cell accounting (superset of the manifest record). */
struct CellReport
{
    std::string name;
    std::string status; ///< "done" | "failed" | "pending" (interrupted)
    CellResult result;  ///< valid when status == "done"
    size_t attempts = 0;
    size_t degradeLevel = 0;
    std::string degradeLevelLabel;
    double wallSeconds = 0; ///< summed over attempts
    double cpuSeconds = 0;  ///< summed over attempts (rusage)
    /** One entry per failed attempt: "crash-signal(sig=9)" etc. */
    std::vector<std::string> failures;
};

struct CampaignReport
{
    std::vector<CellReport> cells;
    size_t failedCells = 0;   ///< permanently failed
    size_t pendingCells = 0;  ///< left unfinished (interrupt/SIGKILL)
    bool interrupted = false; ///< SIGINT/SIGTERM cut the campaign short
    double wallSeconds = 0;

    /** Every cell that ran to a verdict, even degraded ones. */
    bool complete() const { return failedCells == 0 && pendingCells == 0; }
};

/** Machine-readable aggregation (the --json campaign output). */
std::string reportJson(const CampaignReport &report);

} // namespace csl::verif::campaign

#endif // CSL_VERIF_CAMPAIGN_CAMPAIGN_H_
