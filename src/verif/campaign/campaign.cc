#include "verif/campaign/campaign.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "base/faultpoint.h"
#include "base/parse.h"
#include "rtl/transform/passes.h"

namespace csl::verif::campaign {

namespace {

std::string
fnvHex(const std::string &text)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : text) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

bool
validCellName(const std::string &name)
{
    if (name.empty())
        return false;
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                  c == '-';
        if (!ok)
            return false;
    }
    return true;
}

/** Escape a free-form string into a single whitespace-free token the
 * line-oriented channel/manifest formats can carry ("" -> "-"). */
std::string
escapeToken(const std::string &text)
{
    if (text.empty())
        return "-";
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case ' ': out += "\\s"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

std::string
unescapeToken(const std::string &token)
{
    if (token == "-")
        return "";
    std::string out;
    out.reserve(token.size());
    for (size_t i = 0; i < token.size(); ++i) {
        if (token[i] != '\\' || i + 1 >= token.size()) {
            out += token[i];
            continue;
        }
        switch (token[++i]) {
          case 'n': out += '\n'; break;
          case 's': out += ' '; break;
          case 't': out += '\t'; break;
          default: out += token[i];
        }
    }
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::optional<proc::CoreSpec>
parseCoreName(const std::string &name, defense::Defense def)
{
    if (name == "inorder")
        return proc::inOrderSpec();
    if (name == "simpleooo")
        return proc::simpleOoOSpec(def);
    if (name == "ridelite")
        return proc::rideLiteSpec(def);
    if (name == "boomlike")
        return proc::boomLikeSpec(def);
    return std::nullopt;
}

std::optional<defense::Defense>
parseDefenseName(const std::string &name)
{
    if (name == "none")
        return defense::Defense::None;
    if (name == "nofwd_fut")
        return defense::Defense::NoFwdFuturistic;
    if (name == "nofwd_spectre")
        return defense::Defense::NoFwdSpectre;
    if (name == "delay_fut")
        return defense::Defense::DelayFuturistic;
    if (name == "delay_spectre")
        return defense::Defense::DelaySpectre;
    if (name == "dom")
        return defense::Defense::DoMSpectre;
    return std::nullopt;
}

std::optional<contract::Contract>
parseContractName(const std::string &name)
{
    if (name == "sandboxing")
        return contract::Contract::Sandboxing;
    if (name == "ct" || name == "constant-time")
        return contract::Contract::ConstantTime;
    return std::nullopt;
}

std::optional<Scheme>
parseSchemeName(const std::string &name)
{
    if (name == "shadow")
        return Scheme::ContractShadow;
    if (name == "baseline")
        return Scheme::Baseline;
    if (name == "upec")
        return Scheme::UpecLike;
    if (name == "leave")
        return Scheme::Leave;
    if (name == "fuzz")
        return Scheme::Fuzz;
    return std::nullopt;
}

// --- Spec parsing ---------------------------------------------------------

std::optional<CampaignSpec>
CampaignSpec::parse(const std::string &text, std::string *error)
{
    auto fail = [&](size_t lineno,
                    const std::string &why) -> std::optional<CampaignSpec> {
        if (error)
            *error = "campaign spec line " + std::to_string(lineno) +
                     ": " + why;
        return std::nullopt;
    };

    CampaignSpec spec;
    spec.fingerprint = fnvHex(text);
    std::istringstream in(text);
    std::string line;
    size_t lineno = 0;
    bool headerSeen = false;
    while (std::getline(in, line)) {
        ++lineno;
        size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream ls(line);
        std::string tag;
        if (!(ls >> tag))
            continue;
        if (tag == "csl-campaign") {
            int version = -1;
            ls >> version;
            if (version != kVersion)
                return fail(lineno, "unsupported spec version");
            headerSeen = true;
            continue;
        }
        if (!headerSeen)
            return fail(lineno, "missing 'csl-campaign 1' header");
        if (tag != "cell")
            return fail(lineno, "unknown directive '" + tag + "'");

        CampaignCell cell;
        if (!(ls >> cell.name) || !validCellName(cell.name))
            return fail(lineno, "cell needs a name ([A-Za-z0-9._-]+)");
        for (const CampaignCell &existing : spec.cells)
            if (existing.name == cell.name)
                return fail(lineno, "duplicate cell '" + cell.name + "'");

        // Collect key=value pairs first: the core preset depends on the
        // defense, and hunt-mode defaults depend on an explicit depth,
        // so application order must not depend on the line's order.
        std::map<std::string, std::string> kv;
        std::string pair;
        while (ls >> pair) {
            size_t eq = pair.find('=');
            if (eq == std::string::npos || eq == 0)
                return fail(lineno, "expected key=value, got '" + pair +
                                        "'");
            if (!kv.emplace(pair.substr(0, eq), pair.substr(eq + 1))
                     .second)
                return fail(lineno, "duplicate key '" +
                                        pair.substr(0, eq) + "'");
        }

        defense::Defense def = defense::Defense::None;
        if (auto it = kv.find("defense"); it != kv.end()) {
            auto parsed = parseDefenseName(it->second);
            if (!parsed)
                return fail(lineno, "unknown defense '" + it->second +
                                        "'");
            def = *parsed;
            kv.erase(it);
        }
        std::string coreName = "simpleooo";
        if (auto it = kv.find("core"); it != kv.end()) {
            coreName = it->second;
            kv.erase(it);
        }
        auto core = parseCoreName(coreName, def);
        if (!core)
            return fail(lineno, "unknown core '" + coreName + "'");
        cell.task.core = *core;

        if (auto it = kv.find("hunt"); it != kv.end()) {
            auto v = parseInt(it->second);
            if (!v || (*v != 0 && *v != 1))
                return fail(lineno, "hunt expects 0 or 1");
            if (*v == 1) {
                cell.task.tryProof = false;
                cell.task.assumeSecretsDiffer = true;
                cell.task.maxDepth = 14; // the cslv --hunt default
            }
            kv.erase(it);
        }

        for (const auto &[key, value] : kv) {
            if (key == "contract") {
                auto parsed = parseContractName(value);
                if (!parsed)
                    return fail(lineno,
                                "unknown contract '" + value + "'");
                cell.task.contract = *parsed;
            } else if (key == "scheme") {
                auto parsed = parseSchemeName(value);
                if (!parsed)
                    return fail(lineno, "unknown scheme '" + value + "'");
                cell.task.scheme = *parsed;
            } else if (key == "depth") {
                auto v = parseUnsigned(value);
                if (!v || *v == 0)
                    return fail(lineno, "bad depth '" + value + "'");
                cell.task.maxDepth = size_t(*v);
            } else if (key == "budget") {
                auto v = parseDouble(value);
                if (!v || *v <= 0)
                    return fail(lineno, "bad budget '" + value + "'");
                cell.task.timeoutSeconds = *v;
            } else if (key == "rob" || key == "regs" || key == "dmem" ||
                       key == "imem") {
                auto v = parseInt(value);
                if (!v || *v <= 0)
                    return fail(lineno,
                                "bad " + key + " '" + value + "'");
                if (key == "rob")
                    cell.task.core.ooo.robSize = int(*v);
                else if (key == "regs")
                    cell.task.core.ooo.isa.regCount = int(*v);
                else if (key == "dmem")
                    cell.task.core.ooo.isa.dmemSize = size_t(*v);
                else
                    cell.task.core.ooo.isa.imemSize = size_t(*v);
            } else if (key == "engines") {
                auto kinds = mc::parseEngineList(value);
                if (!kinds || kinds->empty())
                    return fail(lineno, "bad engine set '" + value + "'");
                cell.ropts.engines = *kinds;
            } else if (key == "passes") {
                if (!rtl::transform::PassManager::parsePipeline(value))
                    return fail(lineno,
                                "bad pass pipeline '" + value + "'");
                cell.ropts.passes = value;
            } else if (key == "seed") {
                auto v = parseUnsigned(value);
                if (!v)
                    return fail(lineno, "bad seed '" + value + "'");
                cell.ropts.decisionSeed = *v;
            } else {
                return fail(lineno, "unknown key '" + key + "'");
            }
        }
        spec.cells.push_back(std::move(cell));
    }
    if (!headerSeen)
        return fail(1, "missing 'csl-campaign 1' header");
    if (spec.cells.empty())
        return fail(lineno ? lineno : 1, "campaign has no cells");
    return spec;
}

std::optional<CampaignSpec>
CampaignSpec::loadFile(const std::string &path, std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot open campaign spec " + path;
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return parse(text.str(), error);
}

// --- Worker result channel ------------------------------------------------

std::optional<mc::Verdict>
parseVerdictName(const std::string &name)
{
    for (mc::Verdict v :
         {mc::Verdict::Attack, mc::Verdict::Proof,
          mc::Verdict::BoundedSafe, mc::Verdict::Timeout,
          mc::Verdict::Diagnosed})
        if (name == mc::verdictName(v))
            return v;
    return std::nullopt;
}

std::string
encodeCellResult(const CellResult &result)
{
    std::ostringstream out;
    out << "csl-cell-result 1\n";
    out << "verdict " << mc::verdictName(result.verdict) << "\n";
    out << "depth " << result.depth << "\n";
    out << "seconds " << result.seconds << "\n";
    out << "conflicts " << result.conflicts << "\n";
    out << "safe-bound " << result.deepestSafeBound << "\n";
    out << "quarantined " << result.quarantinedWitnesses << "\n";
    out << "resumed " << (result.resumedFromJournal ? 1 : 0) << "\n";
    out << "winner " << escapeToken(result.winningEngine) << "\n";
    out << "detail " << escapeToken(result.detail) << "\n";
    out << "end\n";
    return out.str();
}

std::optional<CellResult>
parseCellResult(const std::string &channel)
{
    std::istringstream in(channel);
    std::string line;
    CellResult result;
    bool headerSeen = false, verdictSeen = false, endSeen = false;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string tag;
        if (!(ls >> tag))
            continue;
        if (tag == "csl-cell-result") {
            int version = -1;
            ls >> version;
            if (version != 1)
                return std::nullopt;
            headerSeen = true;
        } else if (!headerSeen) {
            return std::nullopt;
        } else if (tag == "verdict") {
            std::string name;
            ls >> name;
            auto verdict = parseVerdictName(name);
            if (!verdict)
                return std::nullopt;
            result.verdict = *verdict;
            verdictSeen = true;
        } else if (tag == "depth") {
            if (!(ls >> result.depth))
                return std::nullopt;
        } else if (tag == "seconds") {
            if (!(ls >> result.seconds))
                return std::nullopt;
        } else if (tag == "conflicts") {
            if (!(ls >> result.conflicts))
                return std::nullopt;
        } else if (tag == "safe-bound") {
            if (!(ls >> result.deepestSafeBound))
                return std::nullopt;
        } else if (tag == "quarantined") {
            if (!(ls >> result.quarantinedWitnesses))
                return std::nullopt;
        } else if (tag == "resumed") {
            int v = 0;
            if (!(ls >> v))
                return std::nullopt;
            result.resumedFromJournal = v != 0;
        } else if (tag == "winner") {
            std::string token;
            ls >> token;
            result.winningEngine = unescapeToken(token);
        } else if (tag == "detail") {
            std::string token;
            ls >> token;
            result.detail = unescapeToken(token);
        } else if (tag == "end") {
            endSeen = true;
            break;
        }
        // Unknown tags are ignored: forward-compatible within a version.
    }
    if (!headerSeen || !verdictSeen || !endSeen)
        return std::nullopt;
    return result;
}

// --- Campaign manifest ----------------------------------------------------

ManifestCell *
CampaignManifest::find(const std::string &name)
{
    for (ManifestCell &cell : cells)
        if (cell.name == name)
            return &cell;
    return nullptr;
}

bool
CampaignManifest::save(const std::string &path) const
{
    if (fault::shouldFire("campaign.manifest-write"))
        return false;
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            return false;
        out << "csl-campaign-manifest " << kVersion << "\n";
        out << "spec-fingerprint " << specFingerprint << "\n";
        for (const ManifestCell &cell : cells)
            out << "cell " << cell.name << " " << cell.status << " "
                << cell.attempts << " " << cell.degradeLevel << " "
                << (cell.verdict.empty() ? "-" : cell.verdict) << " "
                << cell.depth << " " << cell.wallSeconds << " "
                << cell.cpuSeconds << " "
                << (cell.lastFailure.empty() ? "-" : cell.lastFailure)
                << "\n";
        out.flush();
        if (!out)
            return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

std::optional<CampaignManifest>
CampaignManifest::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    CampaignManifest manifest;
    std::string line;
    bool headerSeen = false;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string tag;
        if (!(ls >> tag))
            continue;
        if (tag == "csl-campaign-manifest") {
            int version = -1;
            ls >> version;
            if (version != kVersion)
                return std::nullopt;
            headerSeen = true;
        } else if (tag == "spec-fingerprint") {
            ls >> manifest.specFingerprint;
        } else if (tag == "cell") {
            ManifestCell cell;
            if (!(ls >> cell.name >> cell.status >> cell.attempts >>
                  cell.degradeLevel >> cell.verdict >> cell.depth >>
                  cell.wallSeconds >> cell.cpuSeconds >>
                  cell.lastFailure))
                return std::nullopt;
            if (cell.verdict == "-")
                cell.verdict.clear();
            if (cell.lastFailure == "-")
                cell.lastFailure.clear();
            manifest.cells.push_back(std::move(cell));
        }
    }
    if (!headerSeen)
        return std::nullopt;
    return manifest;
}

// --- Campaign report ------------------------------------------------------

std::string
reportJson(const CampaignReport &report)
{
    std::ostringstream oss;
    oss << "{\"cells\":[";
    for (size_t i = 0; i < report.cells.size(); ++i) {
        const CellReport &cell = report.cells[i];
        oss << (i ? "," : "") << "{\"name\":\"" << jsonEscape(cell.name)
            << "\",\"status\":\"" << cell.status << "\""
            << ",\"verdict\":\""
            << (cell.status == "done"
                    ? mc::verdictName(cell.result.verdict)
                    : "")
            << "\",\"depth\":" << cell.result.depth
            << ",\"deepestSafeBound\":" << cell.result.deepestSafeBound
            << ",\"attempts\":" << cell.attempts
            << ",\"degradeLevel\":" << cell.degradeLevel
            << ",\"degradeLevelName\":\""
            << jsonEscape(cell.degradeLevelLabel) << "\""
            << ",\"winner\":\""
            << jsonEscape(cell.result.winningEngine) << "\""
            << ",\"wallSeconds\":" << cell.wallSeconds
            << ",\"cpuSeconds\":" << cell.cpuSeconds
            << ",\"detail\":\"" << jsonEscape(cell.result.detail) << "\""
            << ",\"failures\":[";
        for (size_t j = 0; j < cell.failures.size(); ++j)
            oss << (j ? "," : "") << "\"" << jsonEscape(cell.failures[j])
                << "\"";
        oss << "]}";
    }
    oss << "],\"failedCells\":" << report.failedCells
        << ",\"pendingCells\":" << report.pendingCells
        << ",\"interrupted\":" << (report.interrupted ? "true" : "false")
        << ",\"wallSeconds\":" << report.wallSeconds << "}";
    return oss.str();
}

} // namespace csl::verif::campaign
