#include "verif/campaign/scheduler.h"

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <new>
#include <sstream>

#include "base/faultpoint.h"
#include "base/logging.h"
#include "base/stopwatch.h"

namespace csl::verif::campaign {

namespace {

using Clock = std::chrono::steady_clock;

// --- Supervisor signal handling -------------------------------------------

/** The signal the supervisor received (0 = none). Plain sig_atomic_t:
 * the handler only stores; the poll loop, woken by EINTR, reads. */
volatile sig_atomic_t g_signal = 0;

void
onSignal(int sig)
{
    g_signal = sig;
}

/** RAII install/restore of the supervisor's SIGINT/SIGTERM handlers. */
class ScopedSignalHandlers
{
  public:
    ScopedSignalHandlers()
    {
        g_signal = 0;
        struct sigaction sa = {};
        sa.sa_handler = onSignal;
        sigemptyset(&sa.sa_mask);
        sa.sa_flags = 0; // no SA_RESTART: poll must wake with EINTR
        sigaction(SIGINT, &sa, &old_int_);
        sigaction(SIGTERM, &sa, &old_term_);
    }
    ~ScopedSignalHandlers()
    {
        sigaction(SIGINT, &old_int_, nullptr);
        sigaction(SIGTERM, &old_term_, nullptr);
        g_signal = 0;
    }

  private:
    struct sigaction old_int_ = {}, old_term_ = {};
};

// --- Worker body ----------------------------------------------------------

/** Supervisor-chosen fault injection for one launch (the shouldFire
 * accounting happens in the supervisor so a site armed once injures
 * exactly ONE worker attempt across the whole campaign, mirroring the
 * fire-once contract of base/faultpoint). */
enum class InjectedFault { None, Crash, Hang, Oom, CorruptResult };

void
writeAll(int fd, const std::string &text)
{
    size_t off = 0;
    while (off < text.size()) {
        ssize_t n = write(fd, text.data() + off, text.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return; // supervisor gone; nothing useful left to do
        }
        off += size_t(n);
    }
}

int g_oomFd = -1; // result fd for the new-handler (worker is
                  // single-purpose; a global is the only way in)

[[noreturn]] void
oomHandler()
{
    // Allocation failed under RLIMIT_AS. Nothing that allocates is safe
    // here; report through the raw fd and the dedicated exit code.
    if (g_oomFd >= 0) {
        static const char msg[] = "csl-cell-oom\n";
        ssize_t ignored = write(g_oomFd, msg, sizeof(msg) - 1);
        (void)ignored;
    }
    _exit(kOomExitCode);
}

/** The real worker body: resume-or-start the cell's verification at
 * the given degradation level and report through the pipe. */
int
workerMain(const CampaignCell &cell, size_t level,
           const std::string &journalPath, InjectedFault injected, int fd)
{
    switch (injected) {
      case InjectedFault::Crash:
        raise(SIGKILL);
        break;
      case InjectedFault::Hang:
        for (;;)
            pause(); // burns no CPU: only the wall cap can end this
      case InjectedFault::Oom:
        // Simulate the new-handler path deterministically (actually
        // allocating to death would also work under RLIMIT_AS but
        // would eat real RAM on uncapped runs).
        oomHandler();
      case InjectedFault::CorruptResult: {
        writeAll(fd, "csl-cell-result 1\nverdict PR"); // truncated
        return 0;
      }
      case InjectedFault::None:
        break;
    }

    g_oomFd = fd;
    std::set_new_handler(oomHandler);

    VerificationTask task = cell.task;
    RunnerOptions ropts = cell.ropts;
    applyDegradation(level, task, ropts);

    CellResult result;
    const bool staged = task.scheme == Scheme::ContractShadow ||
                        task.scheme == Scheme::Baseline ||
                        task.scheme == Scheme::UpecLike;
    if (staged) {
        if (!journalPath.empty()) {
            ropts.journalPath = journalPath;
            // Warm-start whenever a previous attempt checkpointed; the
            // runner's fingerprint/pipeline guards reject anything that
            // does not transfer.
            ropts.resume = Journal::load(journalPath).has_value();
        }
        RunnerResult rr = runResilientVerification(task, ropts);
        result.verdict = rr.result.verdict;
        result.depth = rr.result.depth;
        result.seconds = rr.result.seconds;
        result.conflicts = rr.result.conflicts;
        result.deepestSafeBound = rr.deepestSafeBound;
        result.quarantinedWitnesses = rr.quarantinedWitnesses;
        result.resumedFromJournal = rr.resumed;
        result.winningEngine = rr.winningEngine;
        result.detail = rr.result.detail;
    } else {
        // LEAVE / fuzz cells are not staged; run them directly.
        VerificationResult vres = runVerification(task);
        result.verdict = vres.verdict;
        result.depth = vres.depth;
        result.seconds = vres.seconds;
        result.conflicts = vres.conflicts;
        result.detail = vres.detail;
    }
    writeAll(fd, encodeCellResult(result));
    return 0;
}

// --- Per-cell supervisor state --------------------------------------------

enum class CellState { Pending, Backoff, Running, Done, Failed };

struct Cell
{
    CampaignCell spec;
    size_t index = 0;
    CellState state = CellState::Pending;
    size_t attempts = 0;
    size_t level = 0;
    size_t failsAtLevel = 0;
    Clock::time_point readyAt = Clock::time_point::min();
    double wallSeconds = 0;
    double cpuSeconds = 0;
    std::vector<std::string> failures;
    CellResult outcome;

    // Running-attempt bookkeeping.
    pid_t pid = -1;
    int fd = -1;
    std::string buf;
    Clock::time_point startedAt;
    Clock::time_point wallDeadline;
    bool wallKilled = false;
};

double
secondsBetween(Clock::time_point from, Clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

} // namespace

CampaignReport
runCampaign(const CampaignSpec &spec, const CampaignOptions &options)
{
    Stopwatch watch;
    CampaignReport report;
    const size_t slots = std::max<size_t>(options.workers, 1);
    const bool durable = !options.statePrefix.empty();
    const std::string manifestPath = options.statePrefix + ".manifest";

    auto say = [&](const std::string &line) {
        if (options.onEvent)
            options.onEvent(line);
    };

    std::vector<Cell> cells(spec.cells.size());
    for (size_t i = 0; i < spec.cells.size(); ++i) {
        cells[i].spec = spec.cells[i];
        cells[i].index = i;
    }

    CampaignManifest manifest;
    manifest.specFingerprint = spec.fingerprint;
    for (const Cell &cell : cells) {
        ManifestCell rec;
        rec.name = cell.spec.name;
        manifest.cells.push_back(std::move(rec));
    }

    // --- Resume: adopt finished cells from a matching manifest ----------
    if (durable && options.resume) {
        auto loaded = CampaignManifest::load(manifestPath);
        if (!loaded) {
            csl_warn("no campaign manifest at ", manifestPath,
                     "; starting fresh");
        } else if (loaded->specFingerprint != spec.fingerprint) {
            csl_warn("campaign manifest ", manifestPath,
                     " belongs to a different spec (fingerprint ",
                     loaded->specFingerprint, " vs ", spec.fingerprint,
                     "); starting fresh");
        } else {
            for (Cell &cell : cells) {
                const ManifestCell *rec = loaded->find(cell.spec.name);
                if (!rec)
                    continue;
                cell.attempts = rec->attempts;
                cell.level = rec->degradeLevel;
                cell.wallSeconds = rec->wallSeconds;
                cell.cpuSeconds = rec->cpuSeconds;
                if (!rec->lastFailure.empty())
                    cell.failures.push_back("(before resume) " +
                                            rec->lastFailure);
                if (rec->status == "done") {
                    cell.state = CellState::Done;
                    cell.outcome.depth = rec->depth;
                    if (auto v = parseVerdictName(rec->verdict))
                        cell.outcome.verdict = *v;
                    *manifest.find(cell.spec.name) = *rec;
                } else if (rec->status == "failed") {
                    cell.state = CellState::Failed;
                    *manifest.find(cell.spec.name) = *rec;
                } else {
                    // Unfinished: re-queue, keeping the attempt/level
                    // history (a crashed supervisor must not reset a
                    // cell's ladder position).
                    ManifestCell *mine = manifest.find(cell.spec.name);
                    *mine = *rec;
                    mine->status = "pending";
                }
            }
            say("campaign: resumed manifest, " +
                std::to_string(std::count_if(
                    cells.begin(), cells.end(),
                    [](const Cell &c) {
                        return c.state == CellState::Done ||
                               c.state == CellState::Failed;
                    })) +
                "/" + std::to_string(cells.size()) +
                " cells already settled");
        }
    }

    auto checkpointManifest = [&](const char *boundary) {
        if (!durable)
            return;
        if (!manifest.save(manifestPath)) {
            csl_warn("campaign manifest write failed at ", boundary,
                     "; continuing without durability");
            return;
        }
        // Crash injection for the supervisor kill/resume test: die only
        // after the manifest is durably on disk, like a real SIGKILL.
        if (fault::shouldFire("campaign.supervisor-kill"))
            raise(SIGKILL);
    };
    checkpointManifest("start");

    // --- Launch one attempt of a cell -----------------------------------
    auto launch = [&](Cell &cell) {
        // Supervisor-side fault selection: fire-once across the whole
        // campaign, so "one cell fault-injected to crash" means one.
        InjectedFault injected = InjectedFault::None;
        if (fault::shouldFire("campaign.worker-crash"))
            injected = InjectedFault::Crash;
        else if (fault::shouldFire("campaign.worker-hang"))
            injected = InjectedFault::Hang;
        else if (fault::shouldFire("campaign.worker-oom"))
            injected = InjectedFault::Oom;
        else if (fault::shouldFire("campaign.corrupt-result"))
            injected = InjectedFault::CorruptResult;

        SubprocessLimits limits;
        limits.cpuSeconds = options.cpuLimitSeconds;
        limits.memoryBytes = options.memLimitBytes;
        const std::string journalPath =
            durable ? options.statePrefix + "." + cell.spec.name +
                          ".journal"
                    : "";
        const size_t level = cell.level;
        const CampaignCell cellSpec = cell.spec; // copy for the child
        auto body = [&, cellSpec, level, journalPath,
                     injected](int fd) -> int {
            if (options.workerBody && injected == InjectedFault::None)
                return options.workerBody(cellSpec, level, fd);
            return workerMain(cellSpec, level, journalPath, injected, fd);
        };
        auto child = spawnSubprocess(limits, body);
        if (!child) {
            // fork/pipe failure is a supervisor-host problem, not a
            // cell problem; retry the cell after a backoff.
            ++cell.attempts;
            cell.failures.push_back("spawn-failed");
            cell.state = CellState::Backoff;
            cell.readyAt =
                Clock::now() +
                std::chrono::milliseconds(backoffMillis(
                    std::max<uint64_t>(options.backoffBaseMs, 100),
                    options.backoffSeed, cell.index, cell.attempts));
            return;
        }
        ++cell.attempts;
        cell.state = CellState::Running;
        cell.pid = child->pid;
        cell.fd = child->fd;
        cell.buf.clear();
        cell.wallKilled = false;
        cell.startedAt = Clock::now();
        const double wallCap =
            cell.spec.task.timeoutSeconds + options.wallSlackSeconds;
        cell.wallDeadline =
            cell.startedAt +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(wallCap));
        ManifestCell *rec = manifest.find(cell.spec.name);
        rec->attempts = cell.attempts;
        rec->degradeLevel = cell.level;
        say("cell " + cell.spec.name + ": attempt " +
            std::to_string(cell.attempts) + " [" +
            degradeLevelName(cell.level) + "] pid " +
            std::to_string(cell.pid) +
            (injected != InjectedFault::None ? " (fault injected)" : ""));
    };

    // --- Finish one attempt and triage it -------------------------------
    auto finalize = [&](Cell &cell) {
        close(cell.fd);
        cell.fd = -1;
        SubprocessStatus status = waitSubprocess(cell.pid);
        cell.pid = -1;
        cell.wallSeconds += secondsBetween(cell.startedAt, Clock::now());
        cell.cpuSeconds += status.cpuSeconds;

        auto parsed = parseCellResult(cell.buf);
        FailureClass cls =
            classifyAttempt(status, cell.wallKilled, parsed.has_value());
        ManifestCell *rec = manifest.find(cell.spec.name);
        rec->wallSeconds = cell.wallSeconds;
        rec->cpuSeconds = cell.cpuSeconds;

        if (cls == FailureClass::CleanVerdict) {
            cell.state = CellState::Done;
            cell.outcome = *parsed;
            rec->status = "done";
            rec->verdict = mc::verdictName(parsed->verdict);
            rec->depth = parsed->depth;
            rec->degradeLevel = cell.level;
            say("cell " + cell.spec.name + ": " + rec->verdict +
                " depth=" + std::to_string(parsed->depth) + " [" +
                degradeLevelName(cell.level) + "] after " +
                std::to_string(cell.attempts) + " attempt(s)");
            checkpointManifest("cell-done");
            return;
        }

        std::ostringstream why;
        why << failureClassName(cls);
        if (status.signaled)
            why << "(sig=" << status.termSignal << ")";
        else if (status.exited)
            why << "(exit=" << status.exitCode << ")";
        cell.failures.push_back(why.str());
        rec->lastFailure = failureClassName(cls);
        say("cell " + cell.spec.name + ": attempt " +
            std::to_string(cell.attempts) + " died: " + why.str());

        // Degradation policy: transient classes get retriesPerLevel
        // same-configuration retries; resource exhaustion skips
        // straight down the ladder (the same configuration would just
        // exhaust again).
        bool degrade;
        if (isTransient(cls)) {
            ++cell.failsAtLevel;
            degrade = cell.failsAtLevel > options.retriesPerLevel;
        } else {
            degrade = true;
        }
        if (degrade) {
            cell.failsAtLevel = 0;
            if (cell.level >= kMaxDegradeLevel) {
                cell.state = CellState::Failed;
                rec->status = "failed";
                say("cell " + cell.spec.name +
                    ": permanently failed (ladder exhausted)");
                checkpointManifest("cell-failed");
                return;
            }
            ++cell.level;
            rec->degradeLevel = cell.level;
            say("cell " + cell.spec.name + ": degrading to [" +
                degradeLevelName(cell.level) + "]");
        }
        cell.state = CellState::Backoff;
        cell.readyAt = Clock::now() +
                       std::chrono::milliseconds(backoffMillis(
                           options.backoffBaseMs, options.backoffSeed,
                           cell.index, cell.attempts));
        checkpointManifest("cell-retry");
    };

    // --- Interrupt: forward to workers, flush, bail ---------------------
    auto interrupt = [&](int sig) {
        report.interrupted = true;
        say("campaign: interrupted (signal " + std::to_string(sig) +
            "), forwarding to workers");
        for (Cell &cell : cells)
            if (cell.state == CellState::Running)
                kill(cell.pid, sig == SIGINT ? SIGINT : SIGTERM);
        // Grace period for orderly worker deaths, then the hammer.
        Clock::time_point grace =
            Clock::now() + std::chrono::milliseconds(2000);
        for (Cell &cell : cells) {
            if (cell.state != CellState::Running)
                continue;
            for (;;) {
                if (tryWaitSubprocess(cell.pid)) {
                    cell.pid = -1;
                    break;
                }
                if (Clock::now() >= grace) {
                    kill(cell.pid, SIGKILL);
                    waitSubprocess(cell.pid);
                    cell.pid = -1;
                    break;
                }
                poll(nullptr, 0, 20);
            }
            close(cell.fd);
            cell.fd = -1;
            cell.wallSeconds +=
                secondsBetween(cell.startedAt, Clock::now());
            cell.state = CellState::Pending; // resumable, not failed
        }
        checkpointManifest("interrupt");
    };

    // --- The poll loop ----------------------------------------------------
    ScopedSignalHandlers handlers;
    for (;;) {
        if (g_signal != 0) {
            interrupt(int(g_signal));
            break;
        }

        // Promote backoff cells whose timer elapsed.
        const Clock::time_point now = Clock::now();
        for (Cell &cell : cells)
            if (cell.state == CellState::Backoff && now >= cell.readyAt)
                cell.state = CellState::Pending;

        // Fill free worker slots.
        size_t running = size_t(std::count_if(
            cells.begin(), cells.end(), [](const Cell &c) {
                return c.state == CellState::Running;
            }));
        for (Cell &cell : cells) {
            if (running >= slots)
                break;
            if (cell.state != CellState::Pending)
                continue;
            launch(cell);
            if (cell.state == CellState::Running)
                ++running;
        }

        // Done?
        bool anyLeft = std::any_of(
            cells.begin(), cells.end(), [](const Cell &c) {
                return c.state != CellState::Done &&
                       c.state != CellState::Failed;
            });
        if (!anyLeft)
            break;

        // Poll timeout: the nearest of any wall deadline or backoff
        // timer, clamped so supervisor housekeeping stays responsive.
        Clock::time_point wake = Clock::now() +
                                 std::chrono::milliseconds(500);
        for (const Cell &cell : cells) {
            if (cell.state == CellState::Running)
                wake = std::min(wake, cell.wallDeadline);
            else if (cell.state == CellState::Backoff)
                wake = std::min(wake, cell.readyAt);
        }
        long timeout_ms = std::chrono::duration_cast<
                              std::chrono::milliseconds>(wake -
                                                         Clock::now())
                              .count();
        timeout_ms = std::max<long>(timeout_ms, 0);

        std::vector<struct pollfd> pfds;
        std::vector<Cell *> pfdCells;
        for (Cell &cell : cells)
            if (cell.state == CellState::Running) {
                pfds.push_back({cell.fd, POLLIN, 0});
                pfdCells.push_back(&cell);
            }
        int ready = poll(pfds.empty() ? nullptr : pfds.data(),
                         nfds_t(pfds.size()), int(timeout_ms));
        if (ready < 0 && errno == EINTR)
            continue; // signal: handled at the top of the loop

        // Drain readable pipes; EOF finalizes the attempt.
        for (size_t i = 0; i < pfds.size(); ++i) {
            if (!(pfds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            Cell &cell = *pfdCells[i];
            char buf[4096];
            for (;;) {
                ssize_t n = read(cell.fd, buf, sizeof(buf));
                if (n > 0) {
                    cell.buf.append(buf, size_t(n));
                    if (n == ssize_t(sizeof(buf)))
                        continue; // more may be queued
                    break;
                }
                if (n < 0 && errno == EINTR)
                    continue;
                if (n == 0)
                    finalize(cell); // EOF: the worker is gone
                break;
            }
        }

        // Enforce wall caps on whoever is still running.
        const Clock::time_point after = Clock::now();
        for (Cell &cell : cells) {
            if (cell.state != CellState::Running ||
                after < cell.wallDeadline || cell.wallKilled)
                continue;
            cell.wallKilled = true;
            kill(cell.pid, SIGKILL);
            say("cell " + cell.spec.name + ": wall cap hit, killed");
            // EOF on the pipe follows and finalizes the attempt.
        }
    }

    // --- Assemble the report ----------------------------------------------
    report.wallSeconds = watch.seconds();
    for (Cell &cell : cells) {
        CellReport cr;
        cr.name = cell.spec.name;
        cr.attempts = cell.attempts;
        cr.degradeLevel = cell.level;
        cr.degradeLevelLabel = degradeLevelName(cell.level);
        cr.wallSeconds = cell.wallSeconds;
        cr.cpuSeconds = cell.cpuSeconds;
        cr.failures = cell.failures;
        switch (cell.state) {
          case CellState::Done:
            cr.status = "done";
            cr.result = cell.outcome;
            break;
          case CellState::Failed:
            cr.status = "failed";
            ++report.failedCells;
            break;
          default:
            cr.status = "pending";
            ++report.pendingCells;
            break;
        }
        report.cells.push_back(std::move(cr));
    }
    return report;
}

} // namespace csl::verif::campaign
