/**
 * @file
 * The campaign supervisor: runs every cell of a CampaignSpec in its
 * own worker process under resource caps, triages worker deaths
 * (triage.h), retries transient failures with backoff, degrades
 * persistently failing cells down the ladder, and keeps the campaign
 * manifest durable across a SIGKILL of the supervisor itself.
 *
 * Architecture: a SINGLE-THREADED poll loop. Workers are forked, never
 * threaded - forking from a multithreaded process and then running
 * arbitrary code in the child is undefined behaviour waiting to
 * happen, and one crashing worker taking down its siblings is exactly
 * what this layer exists to prevent. The loop multiplexes all worker
 * result pipes plus the wall-clock caps and backoff timers through one
 * poll(); there is no blocking wait on any single worker.
 *
 * Failure containment contract: whatever a worker does - SIGSEGV, OOM,
 * runaway loop, garbage on its pipe - the other cells keep running and
 * the campaign report still carries one entry per cell. Only
 * SIGINT/SIGTERM (forwarded to workers, manifest flushed) and SIGKILL
 * (manifest already durable; --campaign-resume continues) end a
 * campaign early.
 *
 * Each worker checkpoints the PR-2 journal of its cell, so a retried
 * or degraded attempt RESUMES the cell's verification instead of
 * restarting it (safe bounds and proven invariants carry over whenever
 * the journal's reduction pipeline still matches).
 */

#ifndef CSL_VERIF_CAMPAIGN_SCHEDULER_H_
#define CSL_VERIF_CAMPAIGN_SCHEDULER_H_

#include <functional>
#include <string>

#include "verif/campaign/campaign.h"

namespace csl::verif::campaign {

/** Supervisor knobs (cslv: --workers, --cpu-limit, --mem-limit). */
struct CampaignOptions
{
    /** Parallel worker slots. */
    size_t workers = 1;

    /** Per-attempt RLIMIT_CPU in seconds (0 = uncapped). */
    double cpuLimitSeconds = 0;

    /** Per-attempt RLIMIT_AS in bytes (0 = uncapped). */
    size_t memLimitBytes = 0;

    /** Wall cap per attempt = the cell's budget + this slack (circuit
     * build + reduction happen before the budget clock bites). */
    double wallSlackSeconds = 30;

    /** Transient-failure retries at a ladder level before degrading. */
    size_t retriesPerLevel = 1;

    /** Base backoff before a retry; see triage backoffMillis. Tests
     * set 0/1 so schedules stay instant. */
    uint64_t backoffBaseMs = 500;

    /** Seed of the deterministic jitter. */
    uint64_t backoffSeed = 1;

    /**
     * Prefix for the campaign's durable state: the manifest at
     * `<prefix>.manifest` and per-cell journals at
     * `<prefix>.<cell>.journal`. Empty disables durability (no
     * manifest, no journals, no resume).
     */
    std::string statePrefix;

    /** Adopt finished cells from an existing manifest whose spec
     * fingerprint matches (cslv --campaign-resume). */
    bool resume = false;

    /**
     * Test seam: when set, workers run this in the child instead of
     * the real verification body (must write a result channel to the
     * fd and return an exit code). The subprocess machinery, triage,
     * backoff and manifest paths stay identical.
     */
    std::function<int(const CampaignCell &, size_t level, int fd)>
        workerBody;

    /** Progress sink (one human-readable line per event); cslv wires
     * this to stdout. Null = silent. */
    std::function<void(const std::string &)> onEvent;
};

/**
 * Run the campaign to completion (or interruption). Never throws on
 * worker misbehaviour; the report has one entry per cell regardless.
 */
CampaignReport runCampaign(const CampaignSpec &spec,
                           const CampaignOptions &options);

} // namespace csl::verif::campaign

#endif // CSL_VERIF_CAMPAIGN_SCHEDULER_H_
