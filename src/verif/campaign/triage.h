/**
 * @file
 * Crash triage for campaign workers: classify how a worker process
 * ended, decide whether that class is worth retrying, schedule the
 * retry (exponential backoff with deterministic jitter), and - when
 * retries at a configuration keep failing - walk the graceful-
 * degradation ladder toward a cheaper configuration that still yields
 * an honest verdict.
 *
 * The taxonomy mirrors what a long JasperGold-style batch actually
 * dies of: the solver ran out of wall clock (the parent killed it),
 * out of CPU (RLIMIT_CPU), out of memory (RLIMIT_AS / the OOM
 * killer), crashed on a bug (SIGSEGV and friends), or came back with
 * a result channel the supervisor cannot parse (truncated write,
 * corrupted pipe). Everything else is a clean verdict.
 */

#ifndef CSL_VERIF_CAMPAIGN_TRIAGE_H_
#define CSL_VERIF_CAMPAIGN_TRIAGE_H_

#include <cstdint>
#include <string>

#include "base/subprocess.h"
#include "verif/runner.h"
#include "verif/task.h"

namespace csl::verif::campaign {

/** How one worker attempt ended. */
enum class FailureClass {
    CleanVerdict, ///< parsed result channel + normal exit
    WallTimeout,  ///< supervisor killed it at the wall-clock cap
    CpuTimeout,   ///< RLIMIT_CPU tripped (SIGXCPU / SIGKILL backstop)
    Oom,          ///< allocation failed under RLIMIT_AS (kOomExitCode)
                  ///< or the kernel OOM killer struck
    CrashSignal,  ///< any other terminating signal (SIGSEGV, SIGABRT,
                  ///< an injected SIGKILL, ...)
    CorruptOutput,///< exited normally but the result channel does not
                  ///< parse (truncated or garbled)
};

const char *failureClassName(FailureClass cls);

/**
 * Classify one finished attempt. @p wallExpired is the supervisor's
 * own knowledge that IT killed the worker at the wall cap (a SIGKILL
 * death alone cannot distinguish the supervisor's kill from an
 * external one). @p channelParsed says whether the result channel
 * yielded a complete record.
 */
FailureClass classifyAttempt(const SubprocessStatus &status,
                             bool wallExpired, bool channelParsed);

/**
 * True for classes where retrying the SAME configuration can plausibly
 * succeed (a transient crash, a garbled pipe). Resource exhaustion -
 * wall, CPU, memory - is deterministic for a fixed configuration, so
 * those classes skip straight to the degradation ladder.
 */
bool isTransient(FailureClass cls);

/**
 * Backoff before retry attempt @p attempt (1-based: the delay before
 * the first retry is attempt=1) of cell @p cellIndex: baseMs * 2^min(
 * attempt-1, 6) plus a deterministic jitter in [0, half the base
 * delay), derived splitmix-style from (seed, cellIndex, attempt) so a
 * rerun of the campaign produces the identical schedule and sibling
 * cells do not retry in lockstep.
 */
uint64_t backoffMillis(uint64_t baseMs, uint64_t seed, size_t cellIndex,
                       size_t attempt);

/**
 * The graceful-degradation ladder. Level 0 is the configuration the
 * campaign asked for; each later level trades completeness for
 * survivability and is only entered after the previous level failed
 * repeatedly:
 *
 *   0 portfolio    the requested engines (default: full proof
 *                  portfolio racing bmc,kind,pdr)
 *   1 bmc-only     a single BMC engine: no engine threads, the
 *                  smallest memory footprint that can still find
 *                  attacks and push a safe bound
 *   2 light-passes bmc-only plus a reduced --passes pipeline (coi,dce
 *                  only): skips the rewriting passes if those are what
 *                  keeps crashing
 *   3 bounded      no proof attempt, half the depth: reports an honest
 *                  BoundedSafe at a lower bound instead of nothing
 */
constexpr size_t kMaxDegradeLevel = 3;

/** Stable short name of a ladder level ("portfolio", "bmc-only", ...). */
const char *degradeLevelName(size_t level);

/**
 * Rewrite @p task / @p ropts in place for ladder @p level (level 0 is
 * the identity). Levels compose: level 3 includes the restrictions of
 * 1 and 2.
 */
void applyDegradation(size_t level, VerificationTask &task,
                      RunnerOptions &ropts);

} // namespace csl::verif::campaign

#endif // CSL_VERIF_CAMPAIGN_TRIAGE_H_
