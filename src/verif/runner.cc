#include "verif/runner.h"

#include <algorithm>
#include <csignal>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "base/faultpoint.h"
#include "base/logging.h"
#include "base/stopwatch.h"
#include "isa/isa.h"
#include "mc/trace.h"
#include "rtl/analysis/analysis.h"
#include "rtl/transform/passes.h"
#include "shadow/baseline_builder.h"
#include "shadow/shadow_builder.h"

namespace csl::verif {

using contract::Contract;
using mc::Verdict;
using rtl::NetId;
namespace transform = rtl::transform;

namespace {

/** The verification circuit plus everything the runner needs around it. */
struct BuiltTask
{
    rtl::Circuit circuit;
    proc::CoreIfc cpu1, cpu2;
    std::vector<NetId> candidates;
    NetId quiescent = rtl::kNoNet;
    rtl::analysis::Report preflight;
    size_t staticSeeds = 0;
};

void
buildTaskCircuit(const VerificationTask &task, bool strengthen,
                 BuiltTask &out)
{
    if (task.scheme == Scheme::Baseline) {
        shadow::BaselineHarness h = shadow::buildBaselineCircuit(
            out.circuit, task.core, task.contract,
            task.assumeSecretsDiffer);
        out.cpu1 = h.cpu1;
        out.cpu2 = h.cpu2;
        out.preflight = h.preflight;
    } else {
        shadow::ShadowOptions sopts;
        sopts.contract = task.contract;
        sopts.restrictToBranchSpeculation =
            task.scheme == Scheme::UpecLike;
        sopts.enablePause = task.enablePause;
        sopts.enableDrainCheck = task.enableDrainCheck;
        sopts.assumeSecretsDiffer = task.assumeSecretsDiffer;
        sopts.excludeMisaligned = task.excludeMisaligned;
        sopts.excludeOutOfRange = task.excludeOutOfRange;
        sopts.emitRelationalCandidates = strengthen;
        shadow::ShadowHarness h =
            shadow::buildShadowCircuit(out.circuit, task.core, sopts);
        out.cpu1 = h.cpu1;
        out.cpu2 = h.cpu2;
        out.candidates = h.relationalCandidates;
        out.quiescent = h.quiescentCandidate;
        out.preflight = h.preflight;
        out.staticSeeds = h.staticSeedCount;
    }
}

/** Read a memory's initial contents out of a counterexample trace. */
std::vector<uint64_t>
memFromTrace(const mc::Trace &trace, const std::vector<rtl::Sig> &words_sig)
{
    std::vector<uint64_t> words(words_sig.size(), 0);
    for (size_t i = 0; i < words_sig.size(); ++i) {
        auto it = trace.initialRegs.find(words_sig[i].id);
        if (it != trace.initialRegs.end())
            words[i] = it->second;
    }
    return words;
}

/** Human-readable attack report: program, secrets, witness replay. */
std::string
decodeAttack(const rtl::Circuit &circuit, const mc::Trace &trace,
             const proc::CoreIfc &cpu1, const proc::CoreIfc &cpu2,
             const isa::IsaConfig &ic)
{
    std::ostringstream oss;
    auto imem = memFromTrace(trace, cpu1.imemWords);
    auto dmem1 = memFromTrace(trace, cpu1.dmemWords);
    auto dmem2 = memFromTrace(trace, cpu2.dmemWords);
    oss << "attack program (" << trace.length << " cycles to leak):\n"
        << isa::disassembleProgram(imem, ic);
    oss << "  dmem1:";
    for (uint64_t w : dmem1)
        oss << " " << w;
    oss << "   dmem2:";
    for (uint64_t w : dmem2)
        oss << " " << w;
    oss << "\n";
    mc::ReplayResult replay = mc::replayTrace(circuit, trace);
    oss << "  witness replay: "
        << (replay.badReached && replay.constraintsHeld &&
                    replay.initConstraintsHeld
                ? "confirmed in simulation"
                : "REPLAY MISMATCH (engine bug?)")
        << "\n";
    // The shadow circuits have no free inputs, so the counterexample can
    // be replayed deterministically beyond its reported end; a contract
    // violation there means the checker accepted a program a longer
    // contract check would have filtered (the instruction-inclusion
    // requirement exists to prevent exactly this).
    mc::Trace extended = trace;
    extended.length += 24;
    extended.inputs.resize(extended.length);
    mc::ReplayResult cont = mc::replayTrace(circuit, extended);
    oss << "  contract check over " << extended.length << " cycles: "
        << (cont.constraintsHeld
                ? "still satisfied"
                : "violated after the reported leak (with the drain "
                  "check on, only instructions issued after the "
                  "divergence are involved; with it off this can mask a "
                  "filtered program)")
        << "\n";
    return oss.str();
}

/** Witness self-audit verdict. */
struct Audit
{
    bool ok = false;
    std::string why;
};

/**
 * Replay an Attack trace through the interpreter: every assumption must
 * hold on every replayed cycle and the assertion must fire at exactly
 * the reported frame. Anything else means the SAT model and the RTL
 * semantics disagree - a solver/encoder bug or injected corruption -
 * and the witness must not be reported as an attack.
 */
Audit
auditWitness(const rtl::Circuit &circuit, const mc::Trace &trace,
             size_t reported_depth)
{
    Audit audit;
    if (trace.length != reported_depth + 1) {
        audit.why = "trace length disagrees with the reported frame";
        return audit;
    }
    mc::ReplayResult replay = mc::replayTrace(circuit, trace);
    if (!replay.initConstraintsHeld)
        audit.why = "initial-state assumptions violated in replay";
    else if (!replay.constraintsHeld)
        audit.why = "environment assumptions violated in replay";
    else if (!replay.badReached)
        audit.why = "assertion did not fire at the reported frame";
    else
        audit.ok = true;
    return audit;
}

std::vector<std::string>
netNames(const rtl::Circuit &circuit, const std::vector<NetId> &nets)
{
    std::vector<std::string> names;
    names.reserve(nets.size());
    for (NetId id : nets)
        names.push_back(circuit.name(id));
    return names;
}

/** Map journal net names back to ids; nullopt when any name is gone. */
std::optional<std::vector<NetId>>
netsByName(const rtl::Circuit &circuit,
           const std::vector<std::string> &names)
{
    std::vector<NetId> nets;
    nets.reserve(names.size());
    for (const std::string &name : names) {
        NetId id = circuit.findByName(name);
        if (id == rtl::kNoNet)
            return std::nullopt;
        nets.push_back(id);
    }
    return nets;
}

/** Journal/display form of a normalized pipeline ("" means "none"). */
std::string
reductionLabel(const std::string &normalized)
{
    return normalized.empty() ? "none" : normalized;
}

/** Mix for per-retry decision seeds (splitmix64 step). */
uint64_t
mixSeed(uint64_t seed, uint64_t attempt)
{
    uint64_t z = seed + 0x9E3779B97F4A7C15ull * (attempt + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return (z ^ (z >> 31)) | 1; // never 0: keep perturbation active
}

} // namespace

std::map<std::string, std::string>
journalParams(const VerificationTask &task)
{
    std::map<std::string, std::string> params;
    auto put = [&](const char *key, auto value) {
        params[key] = std::to_string(value);
    };
    put("kind", int(task.core.kind));
    put("defense", int(task.core.ooo.defense));
    put("rob", task.core.ooo.robSize);
    put("regs", task.core.ooo.isa.regCount);
    put("imem", task.core.ooo.isa.imemSize);
    put("dmem", task.core.ooo.isa.dmemSize);
    put("contract", int(task.contract));
    put("scheme", int(task.scheme));
    put("maxDepth", task.maxDepth);
    put("timeout", task.timeoutSeconds);
    put("tryProof", int(task.tryProof));
    put("preflight", int(task.preflight));
    put("autoStrengthen", int(task.autoStrengthen));
    put("strengthenWindow", task.strengthenWindow);
    put("assumeSecretsDiffer", int(task.assumeSecretsDiffer));
    put("enablePause", int(task.enablePause));
    put("enableDrainCheck", int(task.enableDrainCheck));
    put("excludeMisaligned", int(task.excludeMisaligned));
    put("excludeOutOfRange", int(task.excludeOutOfRange));
    return params;
}

std::optional<VerificationTask>
taskFromJournalParams(const std::map<std::string, std::string> &params)
{
    auto get = [&](const char *key) -> std::optional<long long> {
        auto it = params.find(key);
        if (it == params.end())
            return std::nullopt;
        try {
            return std::stoll(it->second);
        } catch (...) {
            return std::nullopt;
        }
    };
    auto kind = get("kind");
    auto defense = get("defense");
    if (!kind || !defense)
        return std::nullopt;

    VerificationTask task;
    auto def = defense::Defense(*defense);
    switch (proc::CoreKind(*kind)) {
      case proc::CoreKind::IsaSingleCycle:
        task.core = proc::isaMachineSpec();
        break;
      case proc::CoreKind::InOrder:
        task.core = proc::inOrderSpec();
        break;
      case proc::CoreKind::SimpleOoO:
        task.core = proc::simpleOoOSpec(def);
        break;
      case proc::CoreKind::RideLite:
        task.core = proc::rideLiteSpec(def);
        break;
      case proc::CoreKind::BoomLike:
        task.core = proc::boomLikeSpec(def);
        break;
      default:
        return std::nullopt;
    }
    if (auto v = get("rob"))
        task.core.ooo.robSize = int(*v);
    if (auto v = get("regs"))
        task.core.ooo.isa.regCount = int(*v);
    if (auto v = get("imem"))
        task.core.ooo.isa.imemSize = size_t(*v);
    if (auto v = get("dmem"))
        task.core.ooo.isa.dmemSize = size_t(*v);
    if (auto v = get("contract"))
        task.contract = Contract(*v);
    if (auto v = get("scheme"))
        task.scheme = Scheme(*v);
    if (auto v = get("maxDepth"))
        task.maxDepth = size_t(*v);
    {
        auto it = params.find("timeout");
        if (it != params.end())
            task.timeoutSeconds = std::atof(it->second.c_str());
    }
    if (auto v = get("tryProof"))
        task.tryProof = *v != 0;
    if (auto v = get("preflight"))
        task.preflight = *v != 0;
    if (auto v = get("autoStrengthen"))
        task.autoStrengthen = *v != 0;
    if (auto v = get("strengthenWindow"))
        task.strengthenWindow = size_t(*v);
    if (auto v = get("assumeSecretsDiffer"))
        task.assumeSecretsDiffer = *v != 0;
    if (auto v = get("enablePause"))
        task.enablePause = *v != 0;
    if (auto v = get("enableDrainCheck"))
        task.enableDrainCheck = *v != 0;
    if (auto v = get("excludeMisaligned"))
        task.excludeMisaligned = *v != 0;
    if (auto v = get("excludeOutOfRange"))
        task.excludeOutOfRange = *v != 0;
    return task;
}

RunnerResult
runResilientVerification(const VerificationTask &task,
                         const RunnerOptions &options)
{
    Stopwatch watch;
    RunnerResult rr;
    VerificationResult &res = rr.result;
    const isa::IsaConfig &ic = task.core.isaConfig();
    const bool strengthen = task.autoStrengthen && task.tryProof &&
                            task.scheme != Scheme::Baseline;

    if (!transform::PassManager::parsePipeline(options.passes)) {
        std::string known;
        for (const std::string &name :
             transform::PassManager::knownPasses())
            known += (known.empty() ? "" : ",") + name;
        res.verdict = Verdict::Diagnosed;
        res.seconds = watch.seconds();
        res.detail = "unknown reduction pass in pipeline '" +
                     options.passes + "' (known passes: " + known +
                     "; aliases: default, none)";
        return rr;
    }

    BuiltTask built;
    buildTaskCircuit(task, strengthen, built);
    const rtl::Circuit &circuit = built.circuit;

    std::vector<std::string> notes;

    // --- Static pre-flight gate -----------------------------------------
    std::string preflight_note;
    if (task.preflight) {
        rtl::analysis::AnalysisOptions aopts;
        aopts.extraRoots = built.candidates;
        rtl::analysis::Report report =
            rtl::analysis::runAll(circuit, aopts);
        report.merge(built.preflight);
        if (report.hasErrors()) {
            res.verdict = Verdict::Diagnosed;
            res.seconds = watch.seconds();
            res.detail = "pre-flight failed (" + report.summary() +
                         "):\n" +
                         report.format(rtl::analysis::Severity::Warning);
            return rr;
        }
        preflight_note = "preflight " + report.summary();
        if (strengthen && !built.candidates.empty())
            preflight_note += ", " + std::to_string(built.staticSeeds) +
                              "/" +
                              std::to_string(built.candidates.size()) +
                              " static secret-free seeds";
    }

    // --- Deadline + journal setup ---------------------------------------
    Deadline root = options.deadline
                        ? options.deadline->slice(task.timeoutSeconds)
                        : Deadline::in(task.timeoutSeconds);

    Journal journal;
    journal.fingerprint = fingerprintCircuit(circuit);
    journal.params = journalParams(task);
    const bool checkpointing = !options.journalPath.empty();

    std::vector<NetId> invariants;     // proven, usable as assumptions
    std::vector<NetId> candidateSeed = built.candidates;
    bool resumedInvariants = false;
    std::vector<mc::EngineKind> userEngines = options.engines;
    std::string passSpec = options.passes; // "" = default or journal's

    if (options.resume && checkpointing) {
        auto loaded = Journal::load(options.journalPath);
        bool adopt = loaded && loaded->fingerprint == journal.fingerprint;
        if (loaded && !adopt)
            csl_warn("journal ", options.journalPath,
                     " does not match this task (fingerprint ",
                     loaded->fingerprint, " vs ", journal.fingerprint,
                     "); starting fresh");
        if (adopt) {
            // The journal's facts (safe bound, invariants) were
            // established on the netlist its reduction pipeline
            // produced; adopting them under a different pipeline would
            // warm-start from facts about another circuit. Journals
            // predating reduction ran unreduced ("none").
            const std::string recorded =
                loaded->reduction.empty() ? "none" : loaded->reduction;
            const std::string requested =
                passSpec.empty()
                    ? recorded
                    : reductionLabel(
                          transform::PassManager(passSpec).normalized());
            if (requested != recorded) {
                csl_warn("journal ", options.journalPath,
                         " was solved under reduction pipeline '",
                         recorded, "' but this run requests '", requested,
                         "'; safe bounds and invariants do not transfer "
                         "across pipelines - starting fresh");
                adopt = false;
            } else {
                passSpec = recorded;
            }
        }
        if (adopt) {
            rr.resumed = true;
            rr.deepestSafeBound = loaded->bmcSafeDepth;
            if (userEngines.empty()) {
                // Re-adopt the recorded engine set so the resumed run
                // races the same engines (verdict-stable resume).
                std::string recorded = loaded->param("engines");
                if (!recorded.empty())
                    if (auto kinds = mc::parseEngineList(recorded))
                        userEngines = *kinds;
            }
            if (loaded->provenValid) {
                if (auto nets = netsByName(circuit,
                                           loaded->provenInvariants)) {
                    invariants = *nets;
                    resumedInvariants = true;
                    journal.provenInvariants = loaded->provenInvariants;
                    journal.provenValid = true;
                }
            } else if (!loaded->prunedCandidates.empty()) {
                // Unproven pruning front: a smaller seed for Houdini.
                if (auto nets = netsByName(circuit,
                                           loaded->prunedCandidates))
                    candidateSeed = *nets;
            }
            notes.push_back(
                "resumed: safe bound " +
                std::to_string(loaded->bmcSafeDepth) +
                (resumedInvariants
                     ? ", " +
                           std::to_string(invariants.size()) +
                           " proven invariants"
                     : ""));
        }
    }
    journal.bmcSafeDepth = rr.deepestSafeBound;
    if (!userEngines.empty())
        journal.params["engines"] = mc::engineListName(userEngines);

    // --- Circuit reduction ------------------------------------------------
    // The engines solve the reduced netlist; everything user-facing -
    // witness audits, attack decoding, VCDs, journaled invariant names,
    // the circuit fingerprint - stays in original-net terms via the
    // NetMap. Candidate invariants and the quiescent net ride along as
    // extra roots so they remain mappable afterwards.
    std::vector<NetId> reductionRoots = built.candidates;
    if (built.quiescent != rtl::kNoNet)
        reductionRoots.push_back(built.quiescent);
    transform::PassManager passManager(passSpec);
    transform::ReductionResult reduction =
        passManager.run(circuit, reductionRoots);
    const rtl::Circuit &solver = reduction.circuit;
    const transform::NetMap &netmap = reduction.map;
    rr.reductionPipeline = reductionLabel(reduction.pipeline);
    rr.originalNets = circuit.numNets();
    rr.reducedNets = solver.numNets();
    rr.originalRegs = circuit.registers().size();
    rr.reducedRegs = solver.registers().size();
    rr.reductionSeconds = reduction.seconds;
    journal.reduction = rr.reductionPipeline;
    if (!passManager.passes().empty())
        notes.push_back("reduced " + std::to_string(rr.originalNets) +
                        "->" + std::to_string(rr.reducedNets) +
                        " nets, " + std::to_string(rr.originalRegs) +
                        "->" + std::to_string(rr.reducedRegs) +
                        " regs [" + rr.reductionPipeline + "]");

    // Candidates move into the reduced id space (merged candidates
    // dedup; ones the pipeline proved constant have nothing left to
    // prove); origOfReduced carries survivors back to original names
    // for the journal.
    std::unordered_map<NetId, NetId> origOfReduced;
    auto toReduced = [&](const std::vector<NetId> &orig) {
        std::vector<NetId> out;
        std::unordered_set<NetId> seen;
        for (NetId id : orig) {
            const NetId mapped = netmap.mapped(id);
            if (mapped == rtl::kNoNet || netmap.constantOf(id))
                continue;
            origOfReduced.emplace(mapped, id);
            if (seen.insert(mapped).second)
                out.push_back(mapped);
        }
        return out;
    };
    auto toOriginal = [&](const std::vector<NetId> &reduced) {
        std::vector<NetId> out;
        for (NetId id : reduced) {
            auto it = origOfReduced.find(id);
            if (it != origOfReduced.end())
                out.push_back(it->second);
        }
        return out;
    };
    const std::vector<NetId> allCandidates = toReduced(built.candidates);
    candidateSeed = toReduced(candidateSeed);
    invariants = toReduced(invariants);
    const NetId quiescentReduced = built.quiescent == rtl::kNoNet
                                       ? rtl::kNoNet
                                       : netmap.mapped(built.quiescent);

    // Per-stage engine sets (see RunnerOptions::engines). The hunt and
    // fallback stages default to BMC alone so attack depths stay
    // minimal; proof stages race the full portfolio.
    const std::vector<mc::EngineKind> proofEngines =
        userEngines.empty()
            ? std::vector<mc::EngineKind>{mc::EngineKind::Bmc,
                                          mc::EngineKind::KInduction,
                                          mc::EngineKind::Pdr}
            : userEngines;
    const std::vector<mc::EngineKind> huntEngines =
        userEngines.empty()
            ? std::vector<mc::EngineKind>{mc::EngineKind::Bmc}
            : userEngines;

    auto checkpoint = [&](const char *boundary) {
        if (!checkpointing)
            return;
        if (!journal.save(options.journalPath)) {
            csl_warn("journal write failed at ", boundary,
                     "; continuing without checkpointing");
            return;
        }
        // Crash injection for the kill+resume test: die only after the
        // checkpoint is durably on disk, like a real mid-run SIGKILL.
        if (fault::shouldFire("runner.kill"))
            std::raise(SIGKILL);
    };

    auto recordStage = [&](StageOutcome outcome) {
        journal.stages.push_back({outcome.name,
                                  mc::verdictName(outcome.verdict),
                                  outcome.depth, outcome.seconds,
                                  outcome.winner});
        rr.stages.push_back(std::move(outcome));
    };

    // --- Houdini strengthening (window 1) --------------------------------
    // The window escalates across stages: most defenses prove with
    // 1-step-inductive invariants; defenses that condition protection on
    // in-flight state (the *_spectre variants) need a window wide enough
    // to contain the commit of a bound-to-commit instruction (roughly a
    // double ROB drain), so that the contract assumption excuses its
    // transient state. The wide window runs in the strengthened-retry
    // stage only when the first proof attempt fails.
    const bool is_ooo = task.core.kind != proc::CoreKind::InOrder &&
                        task.core.kind != proc::CoreKind::IsaSingleCycle;
    const size_t wide_window =
        task.strengthenWindow != 0
            ? task.strengthenWindow
            : std::min<size_t>(18, 3 * size_t(task.core.ooo.robSize) + 4);
    const size_t first_window =
        task.strengthenWindow != 0 ? task.strengthenWindow : 1;
    std::string houdini_note;
    bool quiescent_proven = false;

    auto runHoudini = [&](size_t window, double budget_seconds) {
        Stopwatch hw;
        Budget houdini_budget(budget_seconds);
        houdini_budget.attachDeadline(root);
        std::vector<NetId> pruning_front;
        auto survivors = mc::proveInductiveInvariants(
            solver, candidateSeed, &houdini_budget, window,
            &pruning_front, options.houdiniThreads);
        StageOutcome outcome;
        outcome.name = "houdini-w" + std::to_string(window);
        outcome.seconds = hw.seconds();
        if (!survivors) {
            // Interrupted: salvage the pruning front for resume.
            outcome.verdict = Verdict::Timeout;
            outcome.note = "interrupted with " +
                           std::to_string(pruning_front.size()) +
                           " candidates still alive";
            journal.prunedCandidates =
                netNames(circuit, toOriginal(pruning_front));
            houdini_note = "invariant search timed out (w=" +
                           std::to_string(window) + ")";
            recordStage(std::move(outcome));
            return false;
        }
        bool quiet = quiescentReduced != rtl::kNoNet &&
                     std::find(survivors->begin(), survivors->end(),
                               quiescentReduced) != survivors->end();
        if (quiet || survivors->size() > invariants.size())
            invariants = *survivors;
        quiescent_proven = quiet;
        journal.provenInvariants =
            netNames(circuit, toOriginal(invariants));
        journal.provenValid = true;
        journal.prunedCandidates.clear();
        houdini_note = std::to_string(invariants.size()) + "/" +
                       std::to_string(allCandidates.size()) +
                       " invariants (w=" + std::to_string(window) + ")";
        outcome.verdict = Verdict::BoundedSafe;
        outcome.depth = invariants.size();
        outcome.note = houdini_note;
        recordStage(std::move(outcome));
        return true;
    };

    // --- One engine stage with the mandatory witness self-audit ----------
    uint64_t conflicts = 0;
    std::optional<mc::CheckResult> audited_attack;

    auto runStage = [&](const char *name, bool try_proof,
                        double slice_seconds,
                        const std::vector<mc::EngineKind> &engines)
        -> mc::CheckResult {
        mc::CheckOptions copts;
        copts.maxDepth = task.maxDepth;
        copts.tryProof = try_proof;
        copts.engines = engines;
        copts.assumedInvariants = invariants;
        copts.deadline = root;
        Stopwatch sw;
        mc::CheckResult cres;
        double slice = slice_seconds;
        for (size_t attempt = 0;; ++attempt) {
            copts.timeoutSeconds = slice;
            copts.decisionSeed =
                attempt == 0 ? options.decisionSeed
                             : mixSeed(options.decisionSeed, attempt);
            copts.startSafeDepth = rr.deepestSafeBound;
            cres = mc::checkProperty(solver, copts);
            conflicts += cres.conflicts;
            rr.importedFacts += cres.importedFacts;
            journal.importedFacts = rr.importedFacts;
            rr.deepestSafeBound =
                std::max(rr.deepestSafeBound, cres.deepestSafeBound);
            journal.bmcSafeDepth = rr.deepestSafeBound;
            if (cres.verdict != Verdict::Attack)
                break;

            // The witness lives on the reduced netlist; translate it
            // back through the NetMap first, so the audit replay, the
            // attack report and any VCD all run on the original circuit.
            mc::Trace origTrace;
            if (cres.trace)
                origTrace =
                    mc::translateTrace(circuit, netmap, *cres.trace);
            Audit audit = auditWitness(circuit, origTrace, cres.depth);
            if (audit.ok) {
                cres.trace = std::move(origTrace);
                audited_attack = cres;
                break;
            }
            // Quarantine: the model and the RTL semantics disagree.
            ++rr.quarantinedWitnesses;
            csl_warn("witness audit failed at depth ", cres.depth, " (",
                     audit.why, "); quarantining and retrying with a ",
                     "perturbed decision seed");
            double remaining =
                std::min(slice_seconds - sw.seconds(), root.remaining());
            if (attempt >= options.maxAuditRetries || remaining < 0.05) {
                // Out of retries or budget: degrade, never emit the
                // unaudited attack.
                cres.verdict = Verdict::BoundedSafe;
                cres.trace.reset();
                cres.depth = rr.deepestSafeBound;
                notes.push_back("quarantined unaudited witness (" +
                                audit.why + "; " +
                                std::to_string(attempt + 1) +
                                " attempt(s))");
                break;
            }
            ++rr.auditRetries;
            // Backoff on the remaining budget: each retry gets half of
            // what is left, so a corrupted solve cannot starve the
            // later stages.
            slice = remaining / 2;
        }
        StageOutcome outcome;
        outcome.name = name;
        outcome.verdict = cres.verdict;
        outcome.depth = cres.depth;
        outcome.seconds = sw.seconds();
        outcome.winner = cres.winner;
        recordStage(std::move(outcome));
        return cres;
    };

    auto concluded = [&](const mc::CheckResult &cres) {
        return cres.verdict == Verdict::Proof ||
               (cres.verdict == Verdict::Attack && audited_attack);
    };

    // --- Staged fallback --------------------------------------------------
    mc::CheckResult last;
    bool have_result = false;

    if (task.tryProof) {
        // Stage 1: Houdini (first window) + k-induction on a slice.
        if (strengthen && !candidateSeed.empty() && !resumedInvariants)
            runHoudini(first_window, root.remaining() / 4);
        checkpoint("houdini");
        double slice1 = root.remaining() * options.stage1Fraction;
        last = runStage("kinduction", true, slice1, proofEngines);
        have_result = true;
        checkpoint("kinduction");

        // Stage 2: strengthened retry - wider invariant window, second
        // proof attempt - when the first was inconclusive.
        if (!concluded(last) && strengthen && is_ooo &&
            !quiescent_proven && first_window < wide_window &&
            root.remaining() > 0.05) {
            candidateSeed = allCandidates;
            runHoudini(wide_window, root.remaining() / 2);
            checkpoint("houdini-wide");
            if (root.remaining() > 0.05) {
                double slice2 =
                    root.remaining() * options.stage2Fraction;
                last = runStage("kinduction-strengthened", true, slice2,
                                proofEngines);
                checkpoint("kinduction-strengthened");
            }
        }

        // Stage 3: BMC-only fallback - push the safe bound as deep as
        // the remaining clock allows.
        if (!concluded(last) && rr.deepestSafeBound < task.maxDepth &&
            root.remaining() > 0.05) {
            last = runStage("bmc", false, root.remaining(), huntEngines);
            checkpoint("bmc");
        }
    } else {
        last = runStage("bmc", false, root.remaining(), huntEngines);
        have_result = true;
        checkpoint("bmc");
    }

    // --- Verdict synthesis ------------------------------------------------
    csl_assert(have_result, "no stage ran");
    if (audited_attack) {
        res.verdict = Verdict::Attack;
        res.depth = audited_attack->depth;
        rr.winningEngine = audited_attack->winner;
        res.attackReport = decodeAttack(circuit, *audited_attack->trace,
                                        built.cpu1, built.cpu2, ic);
    } else if (last.verdict == Verdict::Proof) {
        res.verdict = Verdict::Proof;
        res.depth = last.depth;
        rr.winningEngine = last.winner;
    } else if (rr.deepestSafeBound >= task.maxDepth ||
               rr.quarantinedWitnesses > 0) {
        // Bounded-safe up to the requested depth, or degraded after
        // quarantining every witness; either way the honest bound is
        // the deepest audited-safe one.
        res.verdict = Verdict::BoundedSafe;
        res.depth = rr.deepestSafeBound;
    } else {
        res.verdict = Verdict::Timeout;
        res.depth = rr.deepestSafeBound;
        notes.push_back("salvaged safe bound " +
                        std::to_string(rr.deepestSafeBound));
    }
    res.conflicts = conflicts;
    res.seconds = watch.seconds();

    std::ostringstream detail;
    if (!houdini_note.empty())
        detail << houdini_note;
    if (!preflight_note.empty())
        detail << (detail.tellp() > 0 ? "; " : "") << preflight_note;
    for (const std::string &note : notes)
        detail << (detail.tellp() > 0 ? "; " : "") << note;
    res.detail = detail.str();

    journal.finalVerdict = mc::verdictName(res.verdict);
    journal.winningEngine = rr.winningEngine;
    journal.importedFacts = rr.importedFacts;
    if (checkpointing && !journal.save(options.journalPath))
        csl_warn("final journal write failed");
    return rr;
}

} // namespace csl::verif
