/**
 * @file
 * Checked string-to-number parsing for command-line flags and config
 * files. std::atoi silently turns "abc" into 0 and "12x" into 12; every
 * user-facing numeric input goes through these instead, so a typo'd
 * flag is a diagnosed usage error, not a zero-sized ROB.
 *
 * All parsers require the ENTIRE string to be consumed (leading and
 * trailing whitespace included in the rejection), and return nullopt on
 * empty input, trailing garbage, or range overflow.
 */

#ifndef CSL_BASE_PARSE_H_
#define CSL_BASE_PARSE_H_

#include <cstdint>
#include <optional>
#include <string>

namespace csl {

/** Parse a signed integer (base 10, or 0x-prefixed hex). */
std::optional<long long> parseInt(const std::string &text);

/** Parse an unsigned integer (base 10, or 0x-prefixed hex). Rejects
 * negative input rather than wrapping it around. */
std::optional<uint64_t> parseUnsigned(const std::string &text);

/** Parse a finite floating-point number. */
std::optional<double> parseDouble(const std::string &text);

} // namespace csl

#endif // CSL_BASE_PARSE_H_
