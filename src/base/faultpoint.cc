#include "base/faultpoint.h"

#include <cstdlib>
#include <map>
#include <mutex>

namespace csl::fault {

const std::vector<std::string> &
knownSites()
{
    static const std::vector<std::string> sites = {
        "budget.exhaust",
        "sat.alloc",
        "sat.corrupt-model",
        "houdini.interrupt",
        "journal.write",
        "runner.kill",
        "campaign.worker-crash",
        "campaign.worker-hang",
        "campaign.worker-oom",
        "campaign.corrupt-result",
        "campaign.manifest-write",
        "campaign.supervisor-kill",
    };
    return sites;
}

namespace detail {

std::atomic<uint64_t> armedCount{0};

namespace {

struct Site
{
    uint64_t fireAt = 1; ///< fire on this hit (1-based)
    uint64_t hits = 0;
    bool armed = false;
    bool fired = false;
};

struct Registry
{
    std::mutex mutex;
    std::map<std::string, Site> sites;
    bool envParsed = false;

    /** Parse CSL_FAULT ("site[:hit],site[:hit],...") once. */
    void
    parseEnvLocked()
    {
        if (envParsed)
            return;
        envParsed = true;
        const char *env = std::getenv("CSL_FAULT");
        if (!env || !*env)
            return;
        std::string spec(env);
        size_t pos = 0;
        while (pos < spec.size()) {
            size_t comma = spec.find(',', pos);
            std::string entry = spec.substr(
                pos, comma == std::string::npos ? std::string::npos
                                                : comma - pos);
            pos = comma == std::string::npos ? spec.size() : comma + 1;
            if (entry.empty())
                continue;
            uint64_t at = 1;
            size_t colon = entry.find(':');
            if (colon != std::string::npos) {
                at = std::strtoull(entry.c_str() + colon + 1, nullptr, 10);
                if (at == 0)
                    at = 1;
                entry.resize(colon);
            }
            Site &site = sites[entry];
            if (!site.armed) {
                site = Site{};
                site.fireAt = at;
                site.armed = true;
                armedCount.fetch_add(1, std::memory_order_relaxed);
            }
        }
    }
};

Registry &
registry()
{
    static Registry r;
    return r;
}

/**
 * Parse CSL_FAULT at program start: the unarmed fast path never reaches
 * the registry, so env-armed sites must raise armedCount before the
 * first shouldFire() call. (armedCount is zero-initialized at constant
 * initialization, so it is ready whenever this dynamic initializer runs.)
 */
const bool envInitDone = [] {
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.parseEnvLocked();
    return true;
}();

} // namespace

bool
shouldFireSlow(const char *site)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.parseEnvLocked();
    auto it = r.sites.find(site);
    if (it == r.sites.end() || !it->second.armed || it->second.fired)
        return false;
    Site &s = it->second;
    ++s.hits;
    if (s.hits < s.fireAt)
        return false;
    s.fired = true;
    return true;
}

} // namespace detail

void
arm(const std::string &site, uint64_t at_hit)
{
    auto &r = detail::registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.parseEnvLocked();
    detail::Site &s = r.sites[site];
    if (!s.armed)
        detail::armedCount.fetch_add(1, std::memory_order_relaxed);
    s = detail::Site{};
    s.fireAt = at_hit == 0 ? 1 : at_hit;
    s.armed = true;
}

void
disarm(const std::string &site)
{
    auto &r = detail::registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto it = r.sites.find(site);
    if (it == r.sites.end() || !it->second.armed)
        return;
    it->second.armed = false;
    detail::armedCount.fetch_sub(1, std::memory_order_relaxed);
}

void
disarmAll()
{
    auto &r = detail::registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (auto &[name, site] : r.sites) {
        if (site.armed)
            detail::armedCount.fetch_sub(1, std::memory_order_relaxed);
        site = detail::Site{};
    }
}

uint64_t
hitCount(const std::string &site)
{
    auto &r = detail::registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto it = r.sites.find(site);
    return it == r.sites.end() ? 0 : it->second.hits;
}

bool
fired(const std::string &site)
{
    auto &r = detail::registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto it = r.sites.find(site);
    return it != r.sites.end() && it->second.fired;
}

} // namespace csl::fault
