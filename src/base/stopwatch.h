/**
 * @file
 * Wall-clock stopwatch used to report verification times in the benches.
 */

#ifndef CSL_BASE_STOPWATCH_H_
#define CSL_BASE_STOPWATCH_H_

#include <chrono>
#include <string>

namespace csl {

/** A simple wall-clock stopwatch, started on construction. */
class Stopwatch
{
  public:
    Stopwatch() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed seconds since construction or the last reset(). */
    double seconds() const;

    /** Elapsed milliseconds. */
    double millis() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/** Render a duration as a human-friendly string, e.g. "1.5s", "2.3min". */
std::string formatSeconds(double seconds);

} // namespace csl

#endif // CSL_BASE_STOPWATCH_H_
