/**
 * @file
 * Small bit-manipulation helpers shared across the library. All word-level
 * values in the RTL IR are carried in uint64_t lanes of at most 64 bits.
 */

#ifndef CSL_BASE_BITS_H_
#define CSL_BASE_BITS_H_

#include <cstdint>

#include "base/logging.h"

namespace csl {

/** Maximum width, in bits, of a single IR net. */
inline constexpr int kMaxNetWidth = 64;

/** Mask with the low @p width bits set (width in [0, 64]). */
inline uint64_t
maskBits(int width)
{
    csl_assert(width >= 0 && width <= kMaxNetWidth, "bad width ", width);
    return width == kMaxNetWidth ? ~0ull : ((1ull << width) - 1);
}

/** Truncate @p value to the low @p width bits. */
inline uint64_t
truncBits(uint64_t value, int width)
{
    return value & maskBits(width);
}

/** Extract bit @p index of @p value. */
inline bool
bitAt(uint64_t value, int index)
{
    return (value >> index) & 1;
}

/** Number of bits needed to represent values 0..n-1 (at least 1). */
inline int
bitsFor(uint64_t n)
{
    int w = 1;
    while (n > (1ull << w))
        ++w;
    return w;
}

/** True when @p n is a power of two (n > 0). */
inline bool
isPowerOfTwo(uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

} // namespace csl

#endif // CSL_BASE_BITS_H_
