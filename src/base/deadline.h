/**
 * @file
 * Cooperative deadlines and cancellation for the staged verification
 * runtime. A Deadline is an absolute point on the monotonic clock plus a
 * shared cancellation flag; Budget consults one so that expiry or a
 * cancel() propagates through the SAT solver and both model-checking
 * engines without any of them knowing about stages.
 *
 * Deadlines are values: copying shares the cancellation flag, and
 * slice() carves a sub-deadline (for one portfolio stage) that can never
 * outlive its parent and inherits the parent's cancellation.
 */

#ifndef CSL_BASE_DEADLINE_H_
#define CSL_BASE_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>

namespace csl {

/** Shared-state cancellation token with an optional expiry time. */
class Deadline
{
  public:
    /** A deadline that never expires (but can still be cancelled). */
    Deadline() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

    /** A deadline @p seconds from now (infinity = never expires). */
    static Deadline
    in(double seconds)
    {
        Deadline d;
        if (seconds < std::numeric_limits<double>::infinity())
            d.expiry_ = Clock::now() + toDuration(seconds);
        return d;
    }

    /** Seconds until expiry (+inf when unlimited, 0 when past/cancelled). */
    double
    remaining() const
    {
        if (cancelled())
            return 0;
        if (expiry_ == Clock::time_point::max())
            return std::numeric_limits<double>::infinity();
        double left =
            std::chrono::duration<double>(expiry_ - Clock::now()).count();
        return left > 0 ? left : 0;
    }

    /** True once past the expiry time or cancelled. */
    bool
    expired() const
    {
        return cancelled() ||
               (expiry_ != Clock::time_point::max() &&
                Clock::now() >= expiry_);
    }

    /** Cooperatively cancel: every copy and slice observes it. */
    void cancel() { flag_->store(true, std::memory_order_relaxed); }

    bool
    cancelled() const
    {
        return flag_->load(std::memory_order_relaxed);
    }

    /**
     * A sub-deadline at most @p seconds from now, clipped to this
     * deadline's own expiry and sharing its cancellation flag. A stage
     * given a slice can exhaust its share without eating into the
     * remaining wall clock of later stages.
     */
    Deadline
    slice(double seconds) const
    {
        Deadline d = *this; // shares flag_ and inherits expiry_
        if (seconds < std::numeric_limits<double>::infinity()) {
            Clock::time_point sub = Clock::now() + toDuration(seconds);
            if (sub < d.expiry_)
                d.expiry_ = sub;
        }
        return d;
    }

  private:
    using Clock = std::chrono::steady_clock;

    static Clock::duration
    toDuration(double seconds)
    {
        return std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(seconds));
    }

    Clock::time_point expiry_ = Clock::time_point::max();
    std::shared_ptr<std::atomic<bool>> flag_;
};

} // namespace csl

#endif // CSL_BASE_DEADLINE_H_
