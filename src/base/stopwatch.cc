#include "base/stopwatch.h"

#include <cstdio>

namespace csl {

double
Stopwatch::seconds() const
{
    auto delta = Clock::now() - start_;
    return std::chrono::duration<double>(delta).count();
}

std::string
formatSeconds(double seconds)
{
    char buf[64];
    if (seconds < 1.0)
        std::snprintf(buf, sizeof(buf), "%.0fms", seconds * 1e3);
    else if (seconds < 120.0)
        std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
    else if (seconds < 7200.0)
        std::snprintf(buf, sizeof(buf), "%.1fmin", seconds / 60.0);
    else
        std::snprintf(buf, sizeof(buf), "%.1fh", seconds / 3600.0);
    return buf;
}

} // namespace csl
