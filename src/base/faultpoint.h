/**
 * @file
 * Named fault-injection sites for testing the verification runtime's
 * recovery paths. Production code asks shouldFire("site") at the places
 * where real faults could strike (budget exhaustion mid-phase, solver
 * model corruption, clause-arena allocation failure, an interrupted
 * Houdini iteration, a failed journal write); tests and the resilience
 * smoke bench arm sites either programmatically or via the CSL_FAULT
 * environment variable and check that the run degrades cleanly instead
 * of crashing or reporting a wrong verdict.
 *
 * CSL_FAULT syntax: a comma-separated list of `site` or `site:hit`
 * entries; `site:3` fires on the third time the site is reached. The
 * variable is read once, on the first shouldFire() call.
 *
 * The unarmed fast path is a single relaxed atomic load, so sites may
 * sit on hot paths (the SAT conflict loop consults one).
 */

#ifndef CSL_BASE_FAULTPOINT_H_
#define CSL_BASE_FAULTPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace csl::fault {

/**
 * The registry of known sites (used by the resilience smoke matrix to
 * enumerate what it must cover; arming an unknown name is still allowed
 * so callers can add sites without touching this list first).
 *
 *   budget.exhaust    Budget::exhausted() trips as if the clock ran out
 *   sat.alloc         clause-arena growth fails; solve() returns Unknown
 *   sat.corrupt-model a Sat model comes back with one flipped value
 *   houdini.interrupt proveInductiveInvariants() stops mid-iteration
 *   journal.write     Journal::save() fails as if the disk were full
 *   runner.kill       SIGKILL at the next stage boundary (after the
 *                     journal checkpoint) - the crash/resume test
 *
 * Campaign-supervisor sites (consulted in the SUPERVISOR when it
 * launches a worker, so an armed site injures exactly one worker
 * attempt campaign-wide; resilience_smoke skips the campaign.* prefix
 * because these sites are unreachable from a single in-process run):
 *
 *   campaign.worker-crash    the next launched worker dies by SIGKILL
 *   campaign.worker-hang     the next worker sleeps until the wall cap
 *   campaign.worker-oom      the next worker reports allocation failure
 *   campaign.corrupt-result  the next worker truncates its result pipe
 *   campaign.manifest-write  CampaignManifest::save() fails once
 *   campaign.supervisor-kill SIGKILL of the supervisor right after a
 *                            manifest checkpoint - the campaign
 *                            resume test
 */
const std::vector<std::string> &knownSites();

namespace detail {
extern std::atomic<uint64_t> armedCount;
bool shouldFireSlow(const char *site);
} // namespace detail

/**
 * True when @p site is armed and its hit count has been reached. Each
 * call while armed counts as one hit; an armed site fires exactly once
 * (re-arm to fire again).
 */
inline bool
shouldFire(const char *site)
{
    if (detail::armedCount.load(std::memory_order_relaxed) == 0)
        return false;
    return detail::shouldFireSlow(site);
}

/** Arm @p site to fire on its @p at_hit -th hit (1 = next hit). */
void arm(const std::string &site, uint64_t at_hit = 1);

/** Disarm @p site (no-op when not armed). */
void disarm(const std::string &site);

/** Disarm every site and reset all hit counters. */
void disarmAll();

/** Number of times an armed @p site has been hit so far. */
uint64_t hitCount(const std::string &site);

/** True when @p site already fired. */
bool fired(const std::string &site);

/** RAII arming for tests: arms on construction, disarms on destruction. */
class ScopedFault
{
  public:
    explicit ScopedFault(std::string site, uint64_t at_hit = 1)
        : site_(std::move(site))
    {
        arm(site_, at_hit);
    }
    ~ScopedFault() { disarm(site_); }
    ScopedFault(const ScopedFault &) = delete;
    ScopedFault &operator=(const ScopedFault &) = delete;

  private:
    std::string site_;
};

} // namespace csl::fault

#endif // CSL_BASE_FAULTPOINT_H_
