#include "base/logging.h"

#include <cstdio>
#include <cstdlib>

namespace csl {

namespace {
LogLevel g_level = LogLevel::Warn;
} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
logImpl(LogLevel level, const std::string &msg)
{
    if (level > g_level)
        return;
    const char *tag = level == LogLevel::Warn ? "warn"
                    : level == LogLevel::Info ? "info"
                                              : "debug";
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // namespace detail

} // namespace csl
