#include "base/subprocess.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>

namespace csl {

namespace {

void
applyLimitsInChild(const SubprocessLimits &limits)
{
    if (limits.cpuSeconds > 0) {
        rlim_t soft = rlim_t(std::ceil(limits.cpuSeconds));
        if (soft == 0)
            soft = 1;
        struct rlimit rl;
        rl.rlim_cur = soft;
        rl.rlim_max = soft + 1; // SIGKILL backstop if SIGXCPU is ignored
        setrlimit(RLIMIT_CPU, &rl);
    }
    if (limits.memoryBytes > 0) {
        struct rlimit rl;
        rl.rlim_cur = limits.memoryBytes;
        rl.rlim_max = limits.memoryBytes;
        setrlimit(RLIMIT_AS, &rl);
    }
}

SubprocessStatus
statusFromWait(int wstatus, const struct rusage &usage)
{
    SubprocessStatus status;
    if (WIFEXITED(wstatus)) {
        status.exited = true;
        status.exitCode = WEXITSTATUS(wstatus);
    } else if (WIFSIGNALED(wstatus)) {
        status.signaled = true;
        status.termSignal = WTERMSIG(wstatus);
    }
    auto seconds = [](const struct timeval &tv) {
        return double(tv.tv_sec) + double(tv.tv_usec) * 1e-6;
    };
    status.cpuSeconds = seconds(usage.ru_utime) + seconds(usage.ru_stime);
    status.maxRssKb = usage.ru_maxrss;
    return status;
}

} // namespace

std::optional<Subprocess>
spawnSubprocess(const SubprocessLimits &limits,
                const std::function<int(int)> &body)
{
    int fds[2];
    if (pipe(fds) != 0)
        return std::nullopt;
    pid_t pid = fork();
    if (pid < 0) {
        close(fds[0]);
        close(fds[1]);
        return std::nullopt;
    }
    if (pid == 0) {
        // Child. A worker that outlives its supervisor must not keep
        // reading the supervisor's stdin; leave stdio alone otherwise
        // so worker diagnostics stay visible.
        close(fds[0]);
        // A SIGPIPE from a supervisor that died mid-read must not kill
        // the worker silently; writes fail with EPIPE instead.
        signal(SIGPIPE, SIG_IGN);
        // The supervisor's own SIGINT/SIGTERM handlers (which only set
        // a flag) are inherited across fork; reset them so a forwarded
        // signal actually terminates the worker.
        signal(SIGINT, SIG_DFL);
        signal(SIGTERM, SIG_DFL);
        applyLimitsInChild(limits);
        int code = 1;
        if (body)
            code = body(fds[1]);
        // _exit, not exit: never run the supervisor's atexit/destructor
        // state a second time from the forked image.
        _exit(code & 0xff);
    }
    close(fds[1]);
    fcntl(fds[0], F_SETFD, FD_CLOEXEC);
    Subprocess child;
    child.pid = pid;
    child.fd = fds[0];
    return child;
}

SubprocessStatus
waitSubprocess(pid_t pid)
{
    int wstatus = 0;
    struct rusage usage = {};
    while (wait4(pid, &wstatus, 0, &usage) < 0 && errno == EINTR) {
    }
    return statusFromWait(wstatus, usage);
}

std::optional<SubprocessStatus>
tryWaitSubprocess(pid_t pid)
{
    int wstatus = 0;
    struct rusage usage = {};
    pid_t reaped = wait4(pid, &wstatus, WNOHANG, &usage);
    if (reaped == 0 || (reaped < 0 && errno == EINTR))
        return std::nullopt;
    return statusFromWait(wstatus, usage);
}

std::optional<SubprocessRun>
runSubprocess(const SubprocessLimits &limits, double wallSeconds,
              const std::function<int(int)> &body)
{
    auto child = spawnSubprocess(limits, body);
    if (!child)
        return std::nullopt;

    SubprocessRun run;
    using Clock = std::chrono::steady_clock;
    const Clock::time_point deadline =
        wallSeconds > 0
            ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(wallSeconds))
            : Clock::time_point::max();

    char buf[4096];
    for (;;) {
        int timeout_ms = -1;
        if (deadline != Clock::time_point::max()) {
            auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - Clock::now())
                            .count();
            timeout_ms = left > 0 ? int(std::min<long long>(left, 60000))
                                  : 0;
        }
        struct pollfd pfd = {child->fd, POLLIN, 0};
        int ready = poll(&pfd, 1, timeout_ms);
        if (ready < 0 && errno == EINTR)
            continue;
        if (ready > 0) {
            ssize_t n = read(child->fd, buf, sizeof(buf));
            if (n > 0) {
                run.channel.append(buf, size_t(n));
                continue;
            }
            break; // EOF (or read error): the worker is done writing
        }
        if (Clock::now() >= deadline) {
            run.wallExpired = true;
            kill(child->pid, SIGKILL);
            break;
        }
    }
    // Drain whatever arrived between the kill and the child dying.
    for (;;) {
        ssize_t n = read(child->fd, buf, sizeof(buf));
        if (n <= 0)
            break;
        run.channel.append(buf, size_t(n));
    }
    close(child->fd);
    run.status = waitSubprocess(child->pid);
    return run;
}

} // namespace csl
