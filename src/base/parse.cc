#include "base/parse.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace csl {

namespace {

/** Shared tail checks: non-empty input, full consumption. The strto*
 * family skips leading whitespace silently; flag values with stray
 * spaces are rejected instead. */
bool
consumedAll(const std::string &text, const char *end)
{
    return !text.empty() &&
           !std::isspace(static_cast<unsigned char>(text.front())) &&
           end == text.c_str() + text.size();
}

} // namespace

std::optional<long long>
parseInt(const std::string &text)
{
    errno = 0;
    char *end = nullptr;
    long long value = std::strtoll(text.c_str(), &end, 0);
    if (errno != 0 || !consumedAll(text, end))
        return std::nullopt;
    return value;
}

std::optional<uint64_t>
parseUnsigned(const std::string &text)
{
    // strtoull accepts "-1" and wraps it; reject any minus sign up front
    // (after optional leading whitespace there is none: we reject
    // whitespace via full-consumption anyway, so scanning the raw text
    // is enough).
    if (text.find('-') != std::string::npos)
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    uint64_t value = std::strtoull(text.c_str(), &end, 0);
    if (errno != 0 || !consumedAll(text, end))
        return std::nullopt;
    return value;
}

std::optional<double>
parseDouble(const std::string &text)
{
    errno = 0;
    char *end = nullptr;
    double value = std::strtod(text.c_str(), &end);
    if (errno != 0 || !consumedAll(text, end) || !std::isfinite(value))
        return std::nullopt;
    return value;
}

} // namespace csl
