/**
 * @file
 * Process-isolation primitive for the campaign supervisor: fork a
 * worker with setrlimit CPU/RSS caps, hand it the write end of a result
 * pipe, and capture how it died (exit code, terminating signal, CPU
 * time, peak RSS from wait4's rusage).
 *
 * Why processes and not threads: the PR-2/PR-3 resilience layers catch
 * failures the code can observe (budget exhaustion, a corrupt model, a
 * failed allocation it tests for). A SIGKILL from the OOM killer, a
 * SIGSEGV from a solver bug, or a runaway allocation is invisible from
 * inside the process - only a supervisor on the other side of a fork
 * can contain it to one campaign cell. This is the same containment
 * discipline Revizor-style fuzzing campaigns apply to their untrusted
 * test-case executions.
 *
 * The child never returns from spawnSubprocess: it runs the supplied
 * body and _exit()s, so no destructors or atexit handlers of the
 * supervisor run twice. The parent owns the pipe's read end and the
 * pid; waitSubprocess() must be called exactly once per spawn (it is
 * the wait4 that reaps the zombie).
 *
 * Wall-clock limits are the PARENT's job (poll the pipe with a timeout,
 * then kill): RLIMIT_CPU only counts CPU time, so a worker blocked in
 * poll/pause can sleep forever without tripping it.
 */

#ifndef CSL_BASE_SUBPROCESS_H_
#define CSL_BASE_SUBPROCESS_H_

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

namespace csl {

/** Resource caps applied in the child before the body runs (0 = off). */
struct SubprocessLimits
{
    /**
     * RLIMIT_CPU in seconds. The soft limit delivers SIGXCPU at
     * ceil(cpuSeconds); the hard limit SIGKILLs one second later in
     * case the worker ignores the first signal.
     */
    double cpuSeconds = 0;

    /** RLIMIT_AS in bytes: allocations beyond it fail, which the worker
     * turns into a structured OOM exit (see kOomExitCode). */
    size_t memoryBytes = 0;
};

/** A spawned worker: its pid and the read end of its result pipe. */
struct Subprocess
{
    pid_t pid = -1;
    int fd = -1;

    bool valid() const { return pid > 0; }
};

/**
 * Exit code workers use to report "allocation failed under the memory
 * cap" (set a new-handler that writes a marker and _exit()s with this).
 * Chosen clear of the usage/verdict exit codes cslv documents.
 */
constexpr int kOomExitCode = 77;

/**
 * Fork a worker. In the child: apply @p limits, close the pipe's read
 * end, run body(writeFd), then _exit(body's return value). In the
 * parent: return the pid and the pipe's read end (O_CLOEXEC,
 * blocking). Returns nullopt when fork or pipe creation fails.
 *
 * Must be called from a single-threaded process (the campaign
 * supervisor is one by design): the body runs arbitrary code after
 * fork, which is only safe when no other thread could have been
 * holding a lock at fork time.
 */
std::optional<Subprocess>
spawnSubprocess(const SubprocessLimits &limits,
                const std::function<int(int)> &body);

/** How a worker terminated, per wait4. */
struct SubprocessStatus
{
    bool exited = false;   ///< normal _exit
    int exitCode = 0;      ///< valid when exited
    bool signaled = false; ///< killed by a signal
    int termSignal = 0;    ///< valid when signaled
    double cpuSeconds = 0; ///< user+system time, from rusage
    long maxRssKb = 0;     ///< peak resident set, from rusage
};

/** Blocking wait4 on @p pid; reaps the zombie and captures rusage. */
SubprocessStatus waitSubprocess(pid_t pid);

/**
 * Non-blocking reap: returns the status when @p pid has terminated,
 * nullopt while it is still running.
 */
std::optional<SubprocessStatus> tryWaitSubprocess(pid_t pid);

/**
 * Run a worker to completion with a wall-clock cap enforced here in
 * the parent: drain the pipe until EOF or until @p wallSeconds expire,
 * SIGKILL on expiry, then reap. Convenience for tests and one-shot
 * callers; the campaign scheduler multiplexes many workers through
 * spawnSubprocess + its own poll loop instead.
 */
struct SubprocessRun
{
    SubprocessStatus status;
    std::string channel;     ///< everything the body wrote to its fd
    bool wallExpired = false;///< parent killed it at the wall cap
};

std::optional<SubprocessRun>
runSubprocess(const SubprocessLimits &limits, double wallSeconds,
              const std::function<int(int)> &body);

} // namespace csl

#endif // CSL_BASE_SUBPROCESS_H_
