/**
 * @file
 * Status and error reporting for the csl library, in the spirit of gem5's
 * logging facilities: panic() for internal bugs, fatal() for user errors,
 * warn()/inform() for status messages.
 */

#ifndef CSL_BASE_LOGGING_H_
#define CSL_BASE_LOGGING_H_

#include <sstream>
#include <string>

namespace csl {

/** Verbosity levels for non-fatal messages. */
enum class LogLevel { Quiet = 0, Warn = 1, Info = 2, Debug = 3 };

/** Global verbosity threshold; messages above it are suppressed. */
LogLevel logLevel();

/** Set the global verbosity threshold. */
void setLogLevel(LogLevel level);

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void logImpl(LogLevel level, const std::string &msg);

/** Build a message from stream-able parts. */
template <typename... Args>
std::string
formatMsg(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

} // namespace csl

/** Report an internal library bug and abort. */
#define csl_panic(...) \
    ::csl::detail::panicImpl(__FILE__, __LINE__, \
                             ::csl::detail::formatMsg(__VA_ARGS__))

/** Report an unrecoverable user error and exit(1). */
#define csl_fatal(...) \
    ::csl::detail::fatalImpl(__FILE__, __LINE__, \
                             ::csl::detail::formatMsg(__VA_ARGS__))

/** Warn about suspicious but survivable conditions. */
#define csl_warn(...) \
    ::csl::detail::logImpl(::csl::LogLevel::Warn, \
                           ::csl::detail::formatMsg(__VA_ARGS__))

/** Informative status message. */
#define csl_inform(...) \
    ::csl::detail::logImpl(::csl::LogLevel::Info, \
                           ::csl::detail::formatMsg(__VA_ARGS__))

/** Assert an internal invariant; panics with a message on failure. */
#define csl_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::csl::detail::panicImpl(__FILE__, __LINE__, \
                ::csl::detail::formatMsg("assertion failed: " #cond " ", \
                                         ##__VA_ARGS__)); \
        } \
    } while (0)

#endif // CSL_BASE_LOGGING_H_
