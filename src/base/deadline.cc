#include "base/deadline.h"

// Deadline is header-only; this translation unit anchors the header so
// the build catches missing includes early.
