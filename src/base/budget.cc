#include "base/budget.h"

#include <algorithm>

#include "base/faultpoint.h"

namespace csl {

double
Budget::secondsLeft() const
{
    double left = secondsLimit_ - watch_.seconds();
    if (hasDeadline_)
        left = std::min(left, deadline_.remaining());
    return left > 0 ? left : 0;
}

bool
Budget::exhaustedSlow() const
{
    if (fault::shouldFire("budget.exhaust")) {
        exhaustedCause_ = Cause::Injected;
        return true;
    }
    double left = secondsLimit_ - watch_.seconds();
    if (left <= 0) {
        exhaustedCause_ = Cause::Time;
        return true;
    }
    if (hasDeadline_) {
        if (deadline_.expired()) {
            exhaustedCause_ = Cause::Deadline;
            return true;
        }
        left = std::min(left, deadline_.remaining());
    }
    // Adapt the consult interval to the distance from the limit: the
    // SAT conflict loop calls exhausted() on the order of 1e5..1e6
    // times per second, so far from the limit a few thousand calls
    // between clock reads keeps the overhead invisible, while within a
    // few milliseconds of it every call gets a real read - bounding the
    // overshoot of cheap-work phases to roughly the interval itself.
    if (left > 2.0)
        untilCheck_ = 4096;
    else if (left > 0.25)
        untilCheck_ = 256;
    else if (left > 0.02)
        untilCheck_ = 16;
    else
        untilCheck_ = 0;
    return false;
}

} // namespace csl
