#include "base/budget.h"

// Budget is header-only today; this translation unit anchors the header so
// the build catches missing includes early.
