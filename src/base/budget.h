/**
 * @file
 * Resource budgets. Verification tasks in the paper run against a wall-clock
 * timeout (7 days on their Xeon server); our tasks carry an explicit Budget
 * so each engine can report Timeout instead of running forever.
 */

#ifndef CSL_BASE_BUDGET_H_
#define CSL_BASE_BUDGET_H_

#include <cstdint>
#include <limits>

#include "base/stopwatch.h"

namespace csl {

/**
 * A wall-clock + work-unit budget shared by an engine invocation.
 *
 * The SAT solver charges one work unit per conflict; simulation-based
 * engines charge per simulated cycle. Either limit expiring marks the
 * budget as exhausted.
 */
class Budget
{
  public:
    /** Unlimited budget. */
    Budget() = default;

    explicit Budget(double seconds,
                    uint64_t work_limit =
                        std::numeric_limits<uint64_t>::max())
        : secondsLimit_(seconds), workLimit_(work_limit)
    {}

    /** Charge @p units of work against the budget. */
    void charge(uint64_t units = 1) { workUsed_ += units; }

    /** True once either the time or the work limit has been exceeded. */
    bool
    exhausted() const
    {
        if (workUsed_ > workLimit_)
            return true;
        // Only consult the clock occasionally; it is comparatively slow.
        if (checkCounter_++ % 256 == 0)
            timeExpired_ = watch_.seconds() > secondsLimit_;
        return timeExpired_;
    }

    /** Elapsed wall-clock seconds since the budget was created. */
    double elapsed() const { return watch_.seconds(); }

    /** Work units consumed so far. */
    uint64_t workUsed() const { return workUsed_; }

    /** Remaining seconds (clamped at zero). */
    double
    secondsLeft() const
    {
        double left = secondsLimit_ - watch_.seconds();
        return left > 0 ? left : 0;
    }

  private:
    Stopwatch watch_;
    double secondsLimit_ = std::numeric_limits<double>::infinity();
    uint64_t workLimit_ = std::numeric_limits<uint64_t>::max();
    uint64_t workUsed_ = 0;
    mutable uint64_t checkCounter_ = 0;
    mutable bool timeExpired_ = false;
};

} // namespace csl

#endif // CSL_BASE_BUDGET_H_
