/**
 * @file
 * Resource budgets. Verification tasks in the paper run against a wall-clock
 * timeout (7 days on their Xeon server); our tasks carry an explicit Budget
 * so each engine can report Timeout instead of running forever.
 */

#ifndef CSL_BASE_BUDGET_H_
#define CSL_BASE_BUDGET_H_

#include <cstdint>
#include <limits>

#include "base/deadline.h"
#include "base/stopwatch.h"

namespace csl {

/**
 * A wall-clock + work-unit budget shared by an engine invocation,
 * optionally bounded by a cooperative Deadline (staged-fallback runs
 * hand each stage a slice of the remaining wall clock this way).
 *
 * The SAT solver charges one work unit per conflict; simulation-based
 * engines charge per simulated cycle. Any limit expiring - or the
 * deadline being cancelled - marks the budget as exhausted, and
 * exhaustion latches: once tripped it never clears, so every layer of a
 * cancelled run agrees on the answer.
 */
class Budget
{
  public:
    /** Why exhausted() turned true (None while still in budget). */
    enum class Cause : uint8_t { None, Work, Time, Deadline, Injected };

    /** Unlimited budget. */
    Budget() = default;

    explicit Budget(double seconds,
                    uint64_t work_limit =
                        std::numeric_limits<uint64_t>::max())
        : secondsLimit_(seconds), workLimit_(work_limit)
    {}

    /** Budget bounded by @p deadline (and optionally a work limit). */
    explicit Budget(const Deadline &deadline,
                    uint64_t work_limit =
                        std::numeric_limits<uint64_t>::max())
        : workLimit_(work_limit), deadline_(deadline), hasDeadline_(true)
    {}

    /** Additionally bound this budget by @p deadline. */
    void
    attachDeadline(const Deadline &deadline)
    {
        deadline_ = deadline;
        hasDeadline_ = true;
        untilCheck_ = 0; // re-consult the clock promptly
    }

    /** Charge @p units of work against the budget. */
    void charge(uint64_t units = 1) { workUsed_ += units; }

    /**
     * True once the work limit, the time limit, or the deadline has been
     * exceeded (latched). The clock is consulted at an adaptive
     * interval: rarely while far from every limit, every call once
     * within a few milliseconds of one, so cheap-work phases cannot
     * overshoot the wall-clock limit by more than that interval.
     */
    bool
    exhausted() const
    {
        if (exhaustedCause_ != Cause::None)
            return true;
        if (workUsed_ > workLimit_) {
            exhaustedCause_ = Cause::Work;
            return true;
        }
        if (untilCheck_-- > 0)
            return false;
        return exhaustedSlow();
    }

    /** What tripped the budget (None while exhausted() is false). */
    Cause cause() const { return exhaustedCause_; }

    /** Elapsed wall-clock seconds since the budget was created. */
    double elapsed() const { return watch_.seconds(); }

    /** Work units consumed so far. */
    uint64_t workUsed() const { return workUsed_; }

    /**
     * Remaining seconds before the earlier of the time limit and the
     * deadline (clamped at zero; +inf when neither is set).
     */
    double secondsLeft() const;

    /** The deadline bounding this budget, when one is attached. */
    const Deadline *deadline() const
    {
        return hasDeadline_ ? &deadline_ : nullptr;
    }

  private:
    /** Clock consult + interval adaptation; latches on expiry. */
    bool exhaustedSlow() const;

    Stopwatch watch_;
    double secondsLimit_ = std::numeric_limits<double>::infinity();
    uint64_t workLimit_ = std::numeric_limits<uint64_t>::max();
    uint64_t workUsed_ = 0;
    Deadline deadline_;
    bool hasDeadline_ = false;
    /** Calls remaining until the next (comparatively slow) clock read. */
    mutable int64_t untilCheck_ = 0;
    mutable Cause exhaustedCause_ = Cause::None;
};

} // namespace csl

#endif // CSL_BASE_BUDGET_H_
