/**
 * @file
 * Shared combinational instruction-decode logic used by every core,
 * guaranteeing all machines agree with the golden model's semantics.
 */

#ifndef CSL_PROC_DECODE_H_
#define CSL_PROC_DECODE_H_

#include <vector>

#include "isa/isa.h"
#include "rtl/builder.h"

namespace csl::proc {

/** Decoded fields and one-hot opcode classification of an instruction. */
struct DecodedInstr
{
    rtl::Sig f1; ///< regBits
    rtl::Sig f2; ///< regBits
    rtl::Sig f3; ///< immLowBits

    rtl::Sig isLi, isAdd, isMul, isLd, isSt, isBeqz;
    rtl::Sig writesReg; ///< li|add|mul|ld
    rtl::Sig isMem;     ///< ld|st

    rtl::Sig srcB;  ///< regBits: f3 truncated to a register index
    rtl::Sig imm;   ///< dataWidth: {f2,f3} truncated/extended
    rtl::Sig pcOff; ///< pcBits: branch offset modulo imem size
};

/** Decode @p instr (instrBits wide) under @p config. Unsupported opcodes
 * decode with all classification bits low (NOP). */
inline DecodedInstr
decodeInstr(rtl::Builder &b, rtl::Sig instr, const isa::IsaConfig &config)
{
    const int rb = config.regBits();
    const int ib = config.immLowBits();
    DecodedInstr d;
    d.f3 = b.slice(instr, 0, ib);
    d.f2 = b.slice(instr, ib, rb);
    d.f1 = b.slice(instr, ib + rb, rb);
    rtl::Sig op = b.slice(instr, ib + 2 * rb, 3);

    using isa::Opcode;
    auto is = [&](Opcode o) {
        return b.eqConst(op, static_cast<uint64_t>(o));
    };
    d.isLi = is(Opcode::Li);
    d.isAdd = is(Opcode::Add);
    d.isMul = config.hasMul ? is(Opcode::Mul) : b.zero();
    d.isLd = is(Opcode::Ld);
    d.isSt = config.hasStore ? is(Opcode::St) : b.zero();
    d.isBeqz = is(Opcode::Beqz);
    d.writesReg = b.orAll({d.isLi, d.isAdd, d.isMul, d.isLd});
    d.isMem = b.orOf(d.isLd, d.isSt);

    d.srcB = b.slice(d.f3, 0, rb <= ib ? rb : ib);
    if (d.srcB.width < rb)
        d.srcB = b.resize(d.srcB, rb);
    rtl::Sig imm_full = b.concat(d.f2, d.f3);
    d.imm = b.resize(imm_full, config.dataWidth);
    d.pcOff = b.resize(imm_full, config.pcBits());
    return d;
}

/** Combinational register-file read at a dynamic index. */
inline rtl::Sig
readRegFile(rtl::Builder &b, const std::vector<rtl::Sig> &regs,
            rtl::Sig idx)
{
    rtl::Sig value = regs[0];
    for (size_t i = 1; i < regs.size(); ++i)
        value = b.mux(b.eqConst(idx, i), regs[i], value);
    return value;
}

/** Memory exception check per the IsaConfig trap features. */
inline rtl::Sig
memException(rtl::Builder &b, rtl::Sig addr, const isa::IsaConfig &config)
{
    rtl::Sig exc = b.zero();
    if (config.trapOnMisaligned)
        exc = b.orOf(exc, b.bit(addr, 0));
    if (config.trapOnOutOfRange) {
        int mem_bits = bitsFor(config.dmemSize);
        if (addr.width > mem_bits) {
            rtl::Sig high = b.slice(addr, mem_bits, addr.width - mem_bits);
            exc = b.orOf(exc, b.redOr(high));
        }
    }
    return exc;
}

} // namespace csl::proc

#endif // CSL_PROC_DECODE_H_
