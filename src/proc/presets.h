/**
 * @file
 * Named processor presets mirroring the paper's Table 1 targets, plus a
 * uniform handle for instantiating any core by kind.
 */

#ifndef CSL_PROC_PRESETS_H_
#define CSL_PROC_PRESETS_H_

#include <string>

#include "defense/defense.h"
#include "proc/core_ifc.h"
#include "proc/ooo_core.h"
#include "rtl/builder.h"

namespace csl::proc {

/** Which processor to instantiate. */
enum class CoreKind {
    IsaSingleCycle, ///< the baseline scheme's ISA machine
    InOrder,        ///< 2-stage in-order pipeline (Sodor analog)
    SimpleOoO,      ///< minimal OoO, 4-entry ROB, 1 commit/cycle
    RideLite,       ///< 2-wide-commit superscalar + MUL (Ridecore analog)
    BoomLike,       ///< 8-entry ROB + MUL/ST + exception sources (BOOM)
};

const char *coreKindName(CoreKind kind);

/** The paper's SimpleOoO (Table 1) with a selectable defense. */
OoOConfig simpleOoOConfig(
    defense::Defense defense = defense::Defense::None);

/** 2-wide superscalar with MUL (Ridecore analog). */
OoOConfig rideLiteConfig(
    defense::Defense defense = defense::Defense::None);

/** BOOM analog: larger ROB, MUL + STORE, misalignment and illegal-access
 * exceptions as additional speculation sources. */
OoOConfig boomLikeConfig(
    defense::Defense defense = defense::Defense::None);

/** A core specification: kind + (for OoO kinds) its full configuration. */
struct CoreSpec
{
    CoreKind kind = CoreKind::SimpleOoO;
    OoOConfig ooo = simpleOoOConfig();

    /** The ISA parameters in effect for this spec. */
    const isa::IsaConfig &isaConfig() const { return ooo.isa; }
};

/** Pre-populated specs for the five evaluation targets. */
CoreSpec isaMachineSpec();
CoreSpec inOrderSpec();
CoreSpec simpleOoOSpec(defense::Defense defense = defense::Defense::None);
CoreSpec rideLiteSpec(defense::Defense defense = defense::Defense::None);
CoreSpec boomLikeSpec(defense::Defense defense = defense::Defense::None);

/** Instantiate @p spec under @p b. */
CoreIfc buildCore(rtl::Builder &b, const CoreSpec &spec,
                  const std::string &prefix);

} // namespace csl::proc

#endif // CSL_PROC_PRESETS_H_
