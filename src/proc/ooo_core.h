/**
 * @file
 * The parameterized out-of-order core generator.
 *
 * One generator covers the paper's three OoO targets:
 *  - simpleOoO: the paper's in-house minimal OoO core (4 instructions,
 *    4-entry ROB, 1 commit/cycle) with any of the five defenses;
 *  - rideLite: a 2-wide-commit superscalar with MUL (the Ridecore
 *    analog, exercising the superscalar shadow alignment);
 *  - boomLike: a larger-ROB core with MUL, STORE and *exception*
 *    speculation sources (misaligned / out-of-range loads), the BOOM
 *    analog for the Section 7.1.4 experiments.
 *
 * Microarchitecture (documented in DESIGN.md):
 *  - fetch+dispatch 1 instr/cycle into a circular ROB that doubles as the
 *    reservation stations (Tomasulo-lite with a rename table over the
 *    architectural registers);
 *  - branches predicted not-taken; mispredictions and exceptions resolve
 *    at commit, squashing the whole ROB and redirecting fetch - the
 *    transient window between dispatch and commit is where speculative
 *    loads leak;
 *  - loads arbitrate for a single memory bus, oldest first; an optional
 *    single-entry L1 (1-cycle hit / 3-cycle miss) provides the
 *    Delay-on-Miss timing channel;
 *  - defenses gate load issue and/or load-result forwarding per
 *    src/defense/defense.h.
 */

#ifndef CSL_PROC_OOO_CORE_H_
#define CSL_PROC_OOO_CORE_H_

#include <string>

#include "defense/defense.h"
#include "isa/isa.h"
#include "proc/core_ifc.h"
#include "rtl/builder.h"

namespace csl::proc {

/** Out-of-order core parameters. */
struct OoOConfig
{
    isa::IsaConfig isa;
    int robSize = 4;
    int commitWidth = 1; ///< 1 or 2
    defense::Defense defense = defense::Defense::None;
    /** Single-entry L1 cache with differential hit/miss latency. */
    bool hasCache = false;
    /** Total load latency on a cache miss (hit is 1 cycle). */
    int cacheMissCycles = 3;
    /**
     * Architectural registers start symbolic (constrained equal across
     * copies by the schemes). Matches the paper's "same initial state".
     */
    bool symbolicRegInit = true;

    /**
     * Optional taint-propagation shadow instrumentation (the paper's
     * Section 8 future-work direction, GLIFT-style). Adds monitor-only
     * taint bits tracking which values *may* depend on the secret
     * memory region, and emits `untainted -> equal across copies` hints
     * for the relational invariant search. Never alters architectural
     * behaviour (tandem-checked).
     */
    enum class Taint { Off, Sandboxing, ConstantTime };
    Taint taint = Taint::Off;

    void check() const;
};

/** Instantiate an OoO core. Respects any clock gate active on @p b. */
CoreIfc buildOoOCore(rtl::Builder &b, const OoOConfig &config,
                     const std::string &prefix);

} // namespace csl::proc

#endif // CSL_PROC_OOO_CORE_H_
