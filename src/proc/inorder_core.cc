#include "proc/inorder_core.h"

#include "base/logging.h"
#include "proc/decode.h"

namespace csl::proc {

using rtl::Builder;
using rtl::Sig;

CoreIfc
buildInOrderCore(Builder &b, const isa::IsaConfig &config,
                 const std::string &prefix)
{
    config.check();
    const int width = config.dataWidth;
    const int pc_bits = config.pcBits();

    CoreIfc ifc;
    ifc.imem = &b.memory(prefix + ".imem", config.imemSize,
                         config.instrBits(), true);
    ifc.dmem = &b.memory(prefix + ".dmem", config.dmemSize, width, true);
    for (size_t i = 0; i < ifc.imem->depth(); ++i)
        ifc.imemWords.push_back(ifc.imem->word(i));
    for (size_t i = 0; i < ifc.dmem->depth(); ++i)
        ifc.dmemWords.push_back(ifc.dmem->word(i));
    Sig pc = b.reg(prefix + ".pc", pc_bits, 0);
    ifc.pc = pc;
    std::vector<Sig> regs;
    for (int i = 0; i < config.regCount; ++i)
        regs.push_back(
            b.symbolicReg(prefix + ".r" + std::to_string(i), width));
    ifc.archRegs = regs;

    // Execute-stage latch (stage 2).
    Sig s2_valid = b.reg(prefix + ".s2.valid", 1, 0);
    Sig s2_instr = b.reg(prefix + ".s2.instr", config.instrBits(), 0);
    Sig s2_pc = b.reg(prefix + ".s2.pc", pc_bits, 0);

    // --- Execute stage (non-speculative: older than anything in fetch) ---
    DecodedInstr d = decodeInstr(b, s2_instr, config);
    Sig val_f1 = readRegFile(b, regs, d.f1);
    Sig val_f2 = readRegFile(b, regs, d.f2);
    Sig val_srcB = readRegFile(b, regs, d.srcB);

    Sig addr = val_f2;
    Sig exception =
        b.andOf(s2_valid, b.andOf(d.isMem, memException(b, addr, config)));
    Sig load_data = ifc.dmem->read(addr);
    Sig alu = b.mux(d.isMul, b.mul(val_f2, val_srcB),
                    b.add(val_f2, val_srcB));
    Sig wdata = b.mux(d.isLi, d.imm, b.mux(d.isLd, load_data, alu));
    Sig do_write =
        b.andOf(s2_valid, b.andOf(d.writesReg, b.notOf(exception)));

    Sig cond = b.eqConst(val_f1, 0);
    Sig taken = b.andOf(s2_valid, b.andOf(d.isBeqz, cond));

    ifc.dmem->write(b.andOf(s2_valid,
                            b.andOf(d.isSt, b.notOf(exception))),
                    addr, val_f1);
    for (int i = 0; i < config.regCount; ++i) {
        Sig hit = b.andOf(do_write, b.eqConst(d.f1, i));
        b.connect(regs[i], b.mux(hit, wdata, regs[i]));
    }

    // --- Fetch stage and redirect ---
    Sig redirect = b.orOf(taken, exception);
    Sig target = b.add(b.addConst(s2_pc, 1), d.pcOff);
    Sig redirect_pc = b.mux(exception, b.lit(0, pc_bits), target);

    b.connect(s2_valid, b.notOf(redirect)); // kill fetched instr on redirect
    b.connect(s2_instr, ifc.imem->read(pc));
    b.connect(s2_pc, pc);
    b.connect(pc, b.mux(redirect, redirect_pc, b.addConst(pc, 1)));

    // --- Commit interface: execute == commit ---
    CommitSlot slot;
    slot.valid = s2_valid;
    slot.exception = exception;
    slot.isLoad = b.andOf(s2_valid, d.isLd);
    slot.isStore = b.andOf(s2_valid, d.isSt);
    slot.isBranch = b.andOf(s2_valid, d.isBeqz);
    slot.isMul = b.andOf(s2_valid, d.isMul);
    slot.writesReg = do_write;
    slot.wdata = wdata;
    slot.addr = addr;
    slot.taken = taken;
    slot.opA = b.mux(d.isBeqz, val_f1, val_f2);
    slot.opB = val_srcB;
    ifc.commits.push_back(slot);

    ifc.memBusValid =
        b.andOf(s2_valid, b.andOf(d.isMem, b.notOf(exception)));
    ifc.memBusAddr = addr;
    ifc.robValid.push_back(s2_valid);
    ifc.robException.push_back(exception);

    return ifc;
}

} // namespace csl::proc
