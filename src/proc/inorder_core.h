/**
 * @file
 * A 2-stage in-order pipelined core - the analog of the paper's Sodor
 * target. Fetch and execute stages; branches resolve in execute and kill
 * the fetched instruction (one bubble); data memory is only accessed by
 * the non-speculative execute stage, so the core is secure by
 * construction for both contracts.
 */

#ifndef CSL_PROC_INORDER_CORE_H_
#define CSL_PROC_INORDER_CORE_H_

#include <string>

#include "isa/isa.h"
#include "proc/core_ifc.h"
#include "rtl/builder.h"

namespace csl::proc {

/** Instantiate the in-order core (see file comment). */
CoreIfc buildInOrderCore(rtl::Builder &b, const isa::IsaConfig &config,
                         const std::string &prefix);

} // namespace csl::proc

#endif // CSL_PROC_INORDER_CORE_H_
