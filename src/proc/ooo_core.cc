#include "proc/ooo_core.h"

#include "base/logging.h"
#include "isa/isa.h"
#include "proc/decode.h"

namespace csl::proc {

using defense::Defense;
using isa::Opcode;
using rtl::Builder;
using rtl::Sig;

void
OoOConfig::check() const
{
    isa.check();
    csl_assert(robSize >= 2 && robSize <= 16, "robSize out of range");
    csl_assert(commitWidth == 1 || commitWidth == 2,
               "commitWidth must be 1 or 2");
    csl_assert(defense != Defense::DoMSpectre || hasCache,
               "DoM defense requires the cache");
    csl_assert(cacheMissCycles >= 2, "cacheMissCycles must be >= 2");
}

namespace {

/** Per-entry register file: one Sig per ROB slot. */
using EntryRegs = std::vector<Sig>;

/** Dynamic-index read over per-entry signals (mux chain). */
Sig
readEntries(Builder &b, const EntryRegs &field, Sig idx)
{
    Sig value = field[0];
    for (size_t i = 1; i < field.size(); ++i)
        value = b.mux(b.eqConst(idx, i), field[i], value);
    return value;
}

} // namespace

CoreIfc
buildOoOCore(Builder &b, const OoOConfig &config, const std::string &prefix)
{
    config.check();
    const isa::IsaConfig &ic = config.isa;
    const int N = config.robSize;
    const int W = ic.dataWidth;
    const int pc_bits = ic.pcBits();
    const int rb = ic.regBits();
    const int idx_bits = bitsFor(N);
    const int cnt_bits = bitsFor(N + 1);
    const Defense defense = config.defense;

    auto rn = [&](const std::string &suffix) { return prefix + suffix; };

    // --- Architectural state ------------------------------------------------
    CoreIfc ifc;
    ifc.imem = &b.memory(rn(".imem"), ic.imemSize, ic.instrBits(), true);
    ifc.dmem = &b.memory(rn(".dmem"), ic.dmemSize, W, true);
    for (size_t i = 0; i < ifc.imem->depth(); ++i)
        ifc.imemWords.push_back(ifc.imem->word(i));
    for (size_t i = 0; i < ifc.dmem->depth(); ++i)
        ifc.dmemWords.push_back(ifc.dmem->word(i));
    Sig pc = b.reg(rn(".pc"), pc_bits, 0);
    ifc.pc = pc;
    std::vector<Sig> regs;
    for (int r = 0; r < ic.regCount; ++r) {
        std::string name = rn(".r" + std::to_string(r));
        regs.push_back(config.symbolicRegInit ? b.symbolicReg(name, W)
                                              : b.reg(name, W, 0));
    }
    ifc.archRegs = regs;

    // Rename table.
    std::vector<Sig> busy, rtag;
    for (int r = 0; r < ic.regCount; ++r) {
        busy.push_back(b.reg(rn(".busy" + std::to_string(r)), 1, 0));
        rtag.push_back(b.reg(rn(".rtag" + std::to_string(r)), idx_bits, 0));
    }

    // ROB pointers.
    Sig head = b.reg(rn(".head"), idx_bits, 0);
    Sig count = b.reg(rn(".count"), cnt_bits, 0);

    // ROB entry fields.
    auto entry_regs = [&](const std::string &field, int width,
                          bool symbolic = false) {
        EntryRegs v;
        for (int i = 0; i < N; ++i) {
            std::string name =
                rn(".rob" + std::to_string(i) + "." + field);
            v.push_back(symbolic ? b.symbolicReg(name, width)
                                 : b.reg(name, width, 0));
        }
        return v;
    };
    EntryRegs valid = entry_regs("valid", 1);
    EntryRegs op3 = entry_regs("op", 3);
    EntryRegs rd = entry_regs("rd", rb);
    EntryRegs immW = entry_regs("imm", W);
    EntryRegs pcOff = entry_regs("pcOff", pc_bits);
    EntryRegs entryPc = entry_regs("pc", pc_bits);
    EntryRegs aValid = entry_regs("aValid", 1);
    EntryRegs aVal = entry_regs("aVal", W);
    EntryRegs aTag = entry_regs("aTag", idx_bits);
    EntryRegs bValid = entry_regs("bValid", 1);
    EntryRegs bVal = entry_regs("bVal", W);
    EntryRegs bTag = entry_regs("bTag", idx_bits);
    EntryRegs done = entry_regs("done", 1);
    EntryRegs result = entry_regs("result", W);
    EntryRegs takenR = entry_regs("taken", 1);
    EntryRegs excR = entry_regs("exc", 1);
    EntryRegs brAtDisp = entry_regs("brAtDisp", 1);
    EntryRegs memIssued = entry_regs("memIssued", 1);

    // Cache / MSHR state (DoM).
    Sig cacheValid, cacheTag, cacheData;
    Sig mshrActive, mshrIdx, mshrAddr, mshrCd;
    const int cd_bits = bitsFor(config.cacheMissCycles + 1);
    if (config.hasCache) {
        cacheValid = b.reg(rn(".cache.valid"), 1, 0);
        cacheTag = b.reg(rn(".cache.tag"), W, 0);
        cacheData = b.reg(rn(".cache.data"), W, 0);
        mshrActive = b.reg(rn(".mshr.active"), 1, 0);
        mshrIdx = b.reg(rn(".mshr.idx"), idx_bits, 0);
        mshrAddr = b.reg(rn(".mshr.addr"), W, 0);
        mshrCd = b.reg(rn(".mshr.cd"), cd_bits, 0);
    }

    // --- Per-entry classification ---------------------------------------
    auto op_is = [&](int i, Opcode o) {
        return b.eqConst(op3[i], static_cast<uint64_t>(o));
    };
    EntryRegs eIsLi(N), eIsAdd(N), eIsMul(N), eIsLd(N), eIsSt(N),
        eIsBeqz(N), eWrites(N), fwdOk(N);
    for (int i = 0; i < N; ++i) {
        eIsLi[i] = op_is(i, Opcode::Li);
        eIsAdd[i] = op_is(i, Opcode::Add);
        eIsMul[i] = ic.hasMul ? op_is(i, Opcode::Mul) : b.zero();
        eIsLd[i] = op_is(i, Opcode::Ld);
        eIsSt[i] = ic.hasStore ? op_is(i, Opcode::St) : b.zero();
        eIsBeqz[i] = op_is(i, Opcode::Beqz);
        eWrites[i] = b.orAll({eIsLi[i], eIsAdd[i], eIsMul[i], eIsLd[i]});
        // NoFwd defenses: load results are not forwardable pre-commit.
        Sig nofwd = b.zero();
        if (defense == Defense::NoFwdFuturistic)
            nofwd = eIsLd[i];
        else if (defense == Defense::NoFwdSpectre)
            nofwd = b.andOf(eIsLd[i], brAtDisp[i]);
        fwdOk[i] = b.notOf(nofwd);
    }

    // Entry ages (distance from head, modulo N).
    auto wrap_sub = [&](Sig x, Sig y) {
        // (x - y) mod N on idx_bits+1 bits.
        Sig xe = b.resize(x, idx_bits + 1);
        Sig ye = b.resize(y, idx_bits + 1);
        Sig diff = b.sub(xe, ye);
        Sig wrapped = b.add(diff, b.lit(N, idx_bits + 1));
        Sig use_wrap = b.bit(diff, idx_bits); // negative (borrow)
        return b.slice(b.mux(use_wrap, wrapped, diff), 0, idx_bits + 1);
    };
    std::vector<Sig> age(N);
    for (int i = 0; i < N; ++i)
        age[i] = wrap_sub(b.lit(i, idx_bits), head);

    auto add_mod_n = [&](Sig x, int delta) {
        Sig sum = b.addConst(b.resize(x, idx_bits + 1), delta);
        Sig wrapped = b.sub(sum, b.lit(N, idx_bits + 1));
        Sig overflow = b.ule(b.lit(N, idx_bits + 1), sum);
        return b.slice(b.mux(overflow, wrapped, sum), 0, idx_bits);
    };
    Sig tail = [&] {
        Sig sum = b.add(b.resize(head, idx_bits + 1),
                        b.resize(count, idx_bits + 1));
        Sig wrapped = b.sub(sum, b.lit(N, idx_bits + 1));
        Sig overflow = b.ule(b.lit(N, idx_bits + 1), sum);
        return b.slice(b.mux(overflow, wrapped, sum), 0, idx_bits);
    }();

    // --- Commit slots -----------------------------------------------------
    struct SlotWires
    {
        Sig idx, commit, isLd, isSt, isBr, isMul, writes, exc, mispredict,
            flush, rd, result, addr, bval, taken, target, pcv;
    };
    auto make_slot = [&](Sig idx, Sig can) {
        SlotWires s;
        s.idx = idx;
        s.commit = b.andOf(can, b.andOf(readEntries(b, valid, idx),
                                        readEntries(b, done, idx)));
        s.isLd = readEntries(b, eIsLd, idx);
        s.isSt = readEntries(b, eIsSt, idx);
        s.isBr = readEntries(b, eIsBeqz, idx);
        s.isMul = readEntries(b, eIsMul, idx);
        s.exc = b.andOf(s.commit, readEntries(b, excR, idx));
        s.writes = b.andOf(s.commit,
                           b.andOf(readEntries(b, eWrites, idx),
                                   b.notOf(readEntries(b, excR, idx))));
        s.mispredict =
            b.andOf(s.commit, b.andOf(s.isBr, readEntries(b, takenR, idx)));
        s.flush = b.orOf(s.mispredict, s.exc);
        s.rd = readEntries(b, rd, idx);
        s.result = readEntries(b, result, idx);
        s.addr = readEntries(b, aVal, idx);
        s.bval = readEntries(b, bVal, idx);
        s.taken = readEntries(b, takenR, idx);
        s.pcv = readEntries(b, entryPc, idx);
        s.target = b.add(b.addConst(s.pcv, 1),
                         readEntries(b, pcOff, idx));
        return s;
    };

    Sig have1 = b.ule(b.lit(1, cnt_bits), count);
    SlotWires slot0 = make_slot(head, have1);
    SlotWires slot1;
    Sig commit1 = b.zero();
    if (config.commitWidth == 2) {
        Sig have2 = b.ule(b.lit(2, cnt_bits), count);
        Sig c1 = add_mod_n(head, 1);
        slot1 = make_slot(c1, b.andOf(slot0.commit,
                                      b.andOf(have2,
                                              b.notOf(slot0.flush))));
        // Structural: one store (one dmem/bus port) per cycle.
        slot1.commit = b.andOf(slot1.commit,
                               b.notOf(b.andOf(slot0.isSt, slot1.isSt)));
        // Recompute dependent wires after the extra gating.
        slot1.exc = b.andOf(slot1.commit, readEntries(b, excR, slot1.idx));
        slot1.writes =
            b.andOf(slot1.commit,
                    b.andOf(readEntries(b, eWrites, slot1.idx),
                            b.notOf(readEntries(b, excR, slot1.idx))));
        slot1.mispredict = b.andOf(slot1.commit,
                                   b.andOf(slot1.isBr, slot1.taken));
        slot1.flush = b.orOf(slot1.mispredict, slot1.exc);
        commit1 = slot1.commit;
    }
    Sig flush = config.commitWidth == 2 ? b.orOf(slot0.flush, slot1.flush)
                                        : slot0.flush;

    // commitsNow / commit-time forwarding (NoFwd loads broadcast here).
    EntryRegs commitsNow(N);
    for (int i = 0; i < N; ++i) {
        Sig here = b.andOf(slot0.commit, b.eqConst(head, i));
        if (config.commitWidth == 2)
            here = b.orOf(here,
                          b.andOf(commit1, b.eqConst(slot1.idx, i)));
        // Forward at commit only when the instruction really writes.
        commitsNow[i] =
            b.andOf(here, b.andOf(eWrites[i], b.notOf(excR[i])));
    }

    // --- Store handling ----------------------------------------------------
    Sig store_commit0 =
        b.andOf(slot0.commit, b.andOf(slot0.isSt, b.notOf(slot0.exc)));
    Sig store_commit1 = b.zero();
    if (config.commitWidth == 2)
        store_commit1 =
            b.andOf(commit1, b.andOf(slot1.isSt, b.notOf(slot1.exc)));
    Sig store_on_bus = b.orOf(store_commit0, store_commit1);

    if (ic.hasStore) {
        ifc.dmem->write(store_commit0, slot0.addr, slot0.bval);
        if (config.commitWidth == 2)
            ifc.dmem->write(store_commit1, slot1.addr, slot1.bval);
    }

    // Older-store-exists check (conservative memory ordering for loads).
    std::vector<Sig> older_store(N, b.zero());
    if (ic.hasStore) {
        for (int i = 0; i < N; ++i) {
            std::vector<Sig> terms;
            for (int j = 0; j < N; ++j) {
                if (j == i)
                    continue;
                Sig older = b.ult(b.resize(age[j], idx_bits + 1),
                                  b.resize(age[i], idx_bits + 1));
                terms.push_back(
                    b.andOf(b.andOf(valid[j], eIsSt[j]), older));
            }
            older_store[i] = b.orAll(terms);
        }
    }

    // --- Load issue --------------------------------------------------------
    std::vector<Sig> is_head(N), probe_hit(N, Sig{}), dom_mem_ok(N, Sig{});
    for (int i = 0; i < N; ++i)
        is_head[i] = b.eqConst(head, i);

    std::vector<Sig> issue_req(N);
    for (int i = 0; i < N; ++i) {
        Sig allow = b.one();
        switch (defense) {
          case Defense::None:
          case Defense::NoFwdFuturistic:
          case Defense::NoFwdSpectre:
            break;
          case Defense::DelayFuturistic:
            allow = is_head[i];
            break;
          case Defense::DelaySpectre:
            allow = b.orOf(b.notOf(brAtDisp[i]), is_head[i]);
            break;
          case Defense::DoMSpectre:
            // Probe always allowed; the memory (miss) path is gated below.
            break;
        }
        Sig req = b.andAll({valid[i], eIsLd[i], b.notOf(done[i]),
                            b.notOf(memIssued[i]), aValid[i], allow,
                            b.notOf(older_store[i]),
                            b.notOf(store_on_bus)});
        if (config.hasCache) {
            probe_hit[i] =
                b.andOf(cacheValid, b.eq(cacheTag, aVal[i]));
            dom_mem_ok[i] = defense == Defense::DoMSpectre
                                ? b.orOf(b.notOf(brAtDisp[i]), is_head[i])
                                : b.one();
            // A blocked miss does not arbitrate; an outstanding miss
            // blocks everything (single MSHR).
            req = b.andAll({req, b.notOf(mshrActive),
                            b.orOf(probe_hit[i], dom_mem_ok[i])});
        }
        issue_req[i] = req;
    }
    // One grant per cycle, fixed physical-index priority (as in simple
    // RTL arbiters). Because ROB slots are allocated round-robin, a
    // younger speculative load can win the slot over an older one - the
    // contention channel speculative-interference attacks exploit.
    std::vector<Sig> grant(N);
    {
        Sig taken_slot = b.zero();
        for (int i = 0; i < N; ++i) {
            grant[i] = b.andOf(issue_req[i], b.notOf(taken_slot));
            taken_slot = b.orOf(taken_slot, issue_req[i]);
        }
    }
    Sig grant_any = b.orAll(grant);
    Sig grant_addr = b.lit(0, W);
    for (int i = 0; i < N; ++i)
        grant_addr = b.mux(grant[i], aVal[i], grant_addr);
    Sig grant_to_mem = grant_any;
    if (config.hasCache) {
        std::vector<Sig> mem_grants;
        for (int i = 0; i < N; ++i)
            mem_grants.push_back(b.andOf(grant[i], b.notOf(probe_hit[i])));
        grant_to_mem = b.orAll(mem_grants);
    }

    // --- Execution wires per entry ---------------------------------------
    Sig dmem_grant_data = ifc.dmem->read(grant_addr);
    Sig mshr_fill_now, mshr_data;
    if (config.hasCache) {
        mshr_fill_now = b.andOf(mshrActive, b.eqConst(mshrCd, 0));
        mshr_data = ifc.dmem->read(mshrAddr);
    }

    std::vector<Sig> done_set(N), result_next(N), taken_next(N),
        exc_set(N), mem_issued_set(N);
    for (int i = 0; i < N; ++i) {
        Sig ready =
            b.andAll({valid[i], b.notOf(done[i]), aValid[i], bValid[i]});
        Sig exec_alu =
            b.andOf(ready, b.orAll({eIsLi[i], eIsAdd[i], eIsMul[i]}));
        Sig exec_br = b.andOf(ready, eIsBeqz[i]);
        Sig exec_st = b.andOf(ready, eIsSt[i]);
        // Unsupported opcodes decode to 6/7: complete as NOPs.
        Sig known = b.orAll({eIsLi[i], eIsAdd[i], eIsMul[i], eIsLd[i],
                             eIsSt[i], eIsBeqz[i]});
        Sig exec_nop = b.andOf(ready, b.notOf(known));

        Sig alu_val = b.mux(eIsLi[i], immW[i],
                            b.mux(eIsMul[i], b.mul(aVal[i], bVal[i]),
                                  b.add(aVal[i], bVal[i])));
        Sig mem_exc = memException(b, aVal[i], ic);

        Sig load_done = grant[i];
        Sig load_data = dmem_grant_data;
        if (config.hasCache) {
            // Hit: data from the cache line; miss: MSHR fill later.
            load_done = b.andOf(grant[i], probe_hit[i]);
            load_data = cacheData;
            Sig fill = b.andOf(mshr_fill_now, b.eqConst(mshrIdx, i));
            load_done = b.orOf(load_done, fill);
            load_data = b.mux(fill, mshr_data, load_data);
        }

        done_set[i] =
            b.orAll({exec_alu, exec_br, exec_st, exec_nop, load_done});
        result_next[i] = b.mux(load_done, load_data, alu_val);
        taken_next[i] = b.andOf(exec_br, b.eqConst(aVal[i], 0));
        exc_set[i] = b.orOf(b.andOf(exec_st, mem_exc),
                            b.andOf(grant[i], mem_exc));
        mem_issued_set[i] = grant[i];
    }

    // --- Operand capture ---------------------------------------------------
    std::vector<Sig> capA(N), capA_val(N), capB(N), capB_val(N);
    for (int i = 0; i < N; ++i) {
        Sig t = aTag[i];
        Sig vis = b.orOf(b.andOf(readEntries(b, done, t),
                                 readEntries(b, fwdOk, t)),
                         readEntries(b, commitsNow, t));
        capA[i] = b.andAll({valid[i], b.notOf(aValid[i]), vis});
        capA_val[i] = readEntries(b, result, t);

        Sig u = bTag[i];
        Sig visB = b.orOf(b.andOf(readEntries(b, done, u),
                                  readEntries(b, fwdOk, u)),
                          readEntries(b, commitsNow, u));
        capB[i] = b.andAll({valid[i], b.notOf(bValid[i]), visB});
        capB_val[i] = readEntries(b, result, u);
    }

    // --- Dispatch ----------------------------------------------------------
    Sig rob_full = b.eqConst(count, N);
    Sig dispatching = b.andOf(b.notOf(rob_full), b.notOf(flush));
    Sig instr = ifc.imem->read(pc);
    DecodedInstr d = decodeInstr(b, instr, ic);

    Sig branch_pending = b.zero();
    for (int i = 0; i < N; ++i)
        branch_pending = b.orOf(branch_pending,
                                b.andOf(valid[i], eIsBeqz[i]));

    Sig src_a = b.mux(d.isBeqz, d.f1, d.f2);
    Sig src_b = b.mux(d.isSt, d.f1, d.srcB);
    auto rename_lookup = [&](Sig r) {
        struct Lookup
        {
            Sig usesTag, val, tag;
        } lk;
        Sig r_busy = readRegFile(b, busy, r);
        Sig t = readRegFile(b, rtag, r);
        Sig t_done = readEntries(b, done, t);
        Sig t_fwd = readEntries(b, fwdOk, t);
        Sig t_commit = readEntries(b, commitsNow, t);
        Sig t_res = readEntries(b, result, t);
        Sig value_ready = b.orOf(b.andOf(t_done, t_fwd), t_commit);
        lk.usesTag = b.andOf(r_busy, b.notOf(value_ready));
        // Canonicalize the don't-care: while waiting on a tag the value
        // field is architecturally unused, so latch 0 rather than the
        // producer's (possibly speculative) current result. Keeps
        // unused state deterministic, which the relational invariant
        // search depends on.
        lk.val = b.mux(lk.usesTag, b.lit(0, W),
                       b.mux(r_busy, t_res, readRegFile(b, regs, r)));
        lk.tag = t;
        return lk;
    };
    auto lkA = rename_lookup(src_a);
    auto lkB = rename_lookup(src_b);

    // LI and NOP have no sources; LD/BEQZ use only A.
    Sig uses_a = b.orAll({d.isAdd, d.isMul, d.isLd, d.isSt, d.isBeqz});
    Sig uses_b = b.orAll({d.isAdd, d.isMul, d.isSt});
    Sig disp_a_valid = b.orOf(b.notOf(uses_a), b.notOf(lkA.usesTag));
    Sig disp_b_valid = b.orOf(b.notOf(uses_b), b.notOf(lkB.usesTag));

    // Dispatch opcode: re-encode classification into the 3-bit field so
    // unsupported opcodes land on NOP (6).
    Sig disp_op = b.lit(static_cast<uint64_t>(Opcode::Nop), 3);
    auto sel_op = [&](Sig cond, Opcode o) {
        disp_op = b.mux(cond, b.lit(static_cast<uint64_t>(o), 3), disp_op);
    };
    sel_op(d.isLi, Opcode::Li);
    sel_op(d.isAdd, Opcode::Add);
    sel_op(d.isMul, Opcode::Mul);
    sel_op(d.isLd, Opcode::Ld);
    sel_op(d.isSt, Opcode::St);
    sel_op(d.isBeqz, Opcode::Beqz);

    // --- Register/rename/memory write-back --------------------------------
    for (int r = 0; r < ic.regCount; ++r) {
        Sig w0 = b.andOf(slot0.writes, b.eqConst(slot0.rd, r));
        Sig next = b.mux(w0, slot0.result, regs[r]);
        if (config.commitWidth == 2) {
            Sig w1 = b.andOf(slot1.writes, b.eqConst(slot1.rd, r));
            next = b.mux(w1, slot1.result, next);
        }
        b.connect(regs[r], next);

        Sig disp_sets = b.andAll({dispatching, d.writesReg,
                                  b.eqConst(d.f1, r)});
        Sig clear = b.andAll({busy[r], b.eq(rtag[r], head),
                              slot0.commit});
        if (config.commitWidth == 2)
            clear = b.orOf(clear,
                           b.andAll({busy[r], b.eq(rtag[r], slot1.idx),
                                     commit1}));
        Sig busy_next = b.mux(flush, b.zero(),
                              b.mux(disp_sets, b.one(),
                                    b.mux(clear, b.zero(), busy[r])));
        b.connect(busy[r], busy_next);
        b.connect(rtag[r], b.mux(disp_sets, tail, rtag[r]));
    }

    // --- ROB entry next-state ----------------------------------------------
    for (int i = 0; i < N; ++i) {
        Sig is_tail = b.andOf(dispatching, b.eqConst(tail, i));
        Sig commit_clear = b.andOf(slot0.commit, b.eqConst(head, i));
        if (config.commitWidth == 2)
            commit_clear = b.orOf(commit_clear,
                                  b.andOf(commit1,
                                          b.eqConst(slot1.idx, i)));
        Sig clear = b.orOf(flush, commit_clear);

        b.connect(valid[i],
                  b.mux(is_tail, b.one(),
                        b.mux(clear, b.zero(), valid[i])));
        b.connect(op3[i], b.mux(is_tail, disp_op, op3[i]));
        b.connect(rd[i], b.mux(is_tail, d.f1, rd[i]));
        b.connect(immW[i], b.mux(is_tail, d.imm, immW[i]));
        b.connect(pcOff[i], b.mux(is_tail, d.pcOff, pcOff[i]));
        b.connect(entryPc[i], b.mux(is_tail, pc, entryPc[i]));
        b.connect(aValid[i],
                  b.mux(is_tail, disp_a_valid,
                        b.orOf(aValid[i], capA[i])));
        b.connect(aVal[i], b.mux(is_tail, lkA.val,
                                 b.mux(capA[i], capA_val[i], aVal[i])));
        b.connect(aTag[i], b.mux(is_tail, lkA.tag, aTag[i]));
        b.connect(bValid[i],
                  b.mux(is_tail, disp_b_valid,
                        b.orOf(bValid[i], capB[i])));
        b.connect(bVal[i], b.mux(is_tail, lkB.val,
                                 b.mux(capB[i], capB_val[i], bVal[i])));
        b.connect(bTag[i], b.mux(is_tail, lkB.tag, bTag[i]));
        b.connect(done[i], b.mux(is_tail, b.zero(),
                                 b.orOf(done[i], done_set[i])));
        b.connect(result[i],
                  b.mux(is_tail, b.lit(0, W),
                        b.mux(done_set[i], result_next[i], result[i])));
        b.connect(takenR[i],
                  b.mux(is_tail, b.zero(),
                        b.orOf(takenR[i], taken_next[i])));
        b.connect(excR[i], b.mux(is_tail, b.zero(),
                                 b.orOf(excR[i], exc_set[i])));
        b.connect(brAtDisp[i],
                  b.mux(is_tail, branch_pending, brAtDisp[i]));
        b.connect(memIssued[i],
                  b.mux(is_tail, b.zero(),
                        b.orOf(memIssued[i], mem_issued_set[i])));
    }

    // --- Cache / MSHR next-state --------------------------------------------
    if (config.hasCache) {
        Sig start_miss = b.andOf(grant_to_mem, b.notOf(flush));
        Sig fill = mshr_fill_now;
        b.connect(mshrActive,
                  b.mux(flush, b.zero(),
                        b.mux(start_miss, b.one(),
                              b.mux(fill, b.zero(), mshrActive))));
        Sig grant_idx = b.lit(0, idx_bits);
        for (int i = 0; i < N; ++i)
            grant_idx = b.mux(grant[i], b.lit(i, idx_bits), grant_idx);
        b.connect(mshrIdx, b.mux(start_miss, grant_idx, mshrIdx));
        b.connect(mshrAddr, b.mux(start_miss, grant_addr, mshrAddr));
        const int miss_extra = config.cacheMissCycles - 2;
        Sig cd_dec = b.mux(b.eqConst(mshrCd, 0), mshrCd,
                           b.sub(mshrCd, b.lit(1, cd_bits)));
        b.connect(mshrCd, b.mux(start_miss, b.lit(miss_extra, cd_bits),
                                cd_dec));

        // Fill the line on refill; keep it coherent with committed stores.
        Sig cv_next = b.orOf(cacheValid, fill);
        Sig ct_next = b.mux(fill, mshrAddr, cacheTag);
        Sig cdta_next = b.mux(fill, mshr_data, cacheData);
        if (ic.hasStore) {
            Sig upd0 = b.andOf(store_commit0,
                               b.andOf(cacheValid,
                                       b.eq(cacheTag, slot0.addr)));
            cdta_next = b.mux(upd0, slot0.bval, cdta_next);
            if (config.commitWidth == 2) {
                Sig upd1 = b.andOf(store_commit1,
                                   b.andOf(cacheValid,
                                           b.eq(cacheTag, slot1.addr)));
                cdta_next = b.mux(upd1, slot1.bval, cdta_next);
            }
        }
        b.connect(cacheValid, cv_next);
        b.connect(cacheTag, ct_next);
        b.connect(cacheData, cdta_next);
    }

    // --- PC / pointers -----------------------------------------------------
    Sig flush_pc = b.mux(slot0.exc, b.lit(0, pc_bits), slot0.target);
    Sig flush_pc_sel = flush_pc;
    if (config.commitWidth == 2) {
        Sig flush1_pc = b.mux(slot1.exc, b.lit(0, pc_bits), slot1.target);
        flush_pc_sel = b.mux(slot0.flush, flush_pc, flush1_pc);
    }
    Sig pc_next = b.mux(flush, flush_pc_sel,
                        b.mux(dispatching, b.addConst(pc, 1), pc));
    b.connect(pc, pc_next);

    Sig commits_cnt = b.resize(slot0.commit, cnt_bits);
    if (config.commitWidth == 2)
        commits_cnt = b.add(commits_cnt, b.resize(commit1, cnt_bits));
    Sig head_next = head;
    head_next = b.mux(slot0.commit, add_mod_n(head, 1), head_next);
    if (config.commitWidth == 2)
        head_next = b.mux(commit1, add_mod_n(head, 2), head_next);
    b.connect(head, head_next);

    Sig count_next =
        b.sub(b.add(count, b.resize(dispatching, cnt_bits)), commits_cnt);
    b.connect(count, b.mux(flush, b.lit(0, cnt_bits), count_next));

    // --- Taint-propagation shadow (optional, paper Section 8) ---------------
    if (config.taint != OoOConfig::Taint::Off) {
        const bool sandbox = config.taint == OoOConfig::Taint::Sandboxing;
        const int mem_bits = bitsFor(ic.dmemSize);
        // A value loaded from the upper (secret) half of data memory is
        // the taint source; everything derived from it pre-commit stays
        // tainted. Committed observations are constraint-equalized, so
        // the corresponding taints clear per contract.
        auto secret_region = [&](Sig addr) {
            return b.bit(addr, mem_bits - 1);
        };

        std::vector<Sig> taintReg;
        for (int r = 0; r < ic.regCount; ++r)
            taintReg.push_back(
                b.reg(rn(".taintReg" + std::to_string(r)), 1, 0));
        EntryRegs tA = entry_regs("taintA", 1);
        EntryRegs tB = entry_regs("taintB", 1);
        EntryRegs tR = entry_regs("taintRes", 1);
        Sig pcTaint = b.reg(rn(".taintPc"), 1, 0);
        Sig cacheTaint, mshrTaint;
        if (config.hasCache) {
            cacheTaint = b.reg(rn(".taintCache"), 1, 0);
            mshrTaint = b.reg(rn(".taintMshr"), 1, 0);
        }

        // Taint seen by a consumer capturing entry i's result now.
        EntryRegs captureTaint(N);
        for (int i = 0; i < N; ++i) {
            Sig cleared = sandbox ? b.andOf(commitsNow[i], eIsLd[i])
                                  : b.zero();
            captureTaint[i] = b.andOf(tR[i], b.notOf(cleared));
        }

        // Dispatch-time operand taint (mirrors rename_lookup).
        auto lookup_taint = [&](Sig src, Sig uses, Sig uses_tag) {
            Sig r_busy = readRegFile(b, busy, src);
            Sig t = readRegFile(b, rtag, src);
            Sig prod = readEntries(b, captureTaint, t);
            Sig from_reg = readRegFile(b, taintReg, src);
            Sig value_taint = b.mux(r_busy, prod, from_reg);
            return b.andAll({uses, b.notOf(uses_tag), value_taint});
        };
        Sig dispTA = lookup_taint(src_a, uses_a, lkA.usesTag);
        Sig dispTB = lookup_taint(src_b, uses_b, lkB.usesTag);
        // A tainted pc means the very instruction stream may differ.
        dispTA = b.orOf(dispTA, pcTaint);
        dispTB = b.orOf(dispTB, pcTaint);

        for (int i = 0; i < N; ++i) {
            Sig is_tail = b.andOf(dispatching, b.eqConst(tail, i));
            Sig capTA = readEntries(b, captureTaint, aTag[i]);
            Sig capTB = readEntries(b, captureTaint, bTag[i]);
            b.connect(tA[i], b.mux(is_tail, dispTA,
                                   b.mux(capA[i], capTA, tA[i])));
            b.connect(tB[i], b.mux(is_tail, dispTB,
                                   b.mux(capB[i], capTB, tB[i])));

            // Result taint at completion.
            Sig alu_taint = b.mux(eIsLi[i], b.zero(),
                                  b.orOf(tA[i], tB[i]));
            Sig load_taint = b.orOf(tA[i], secret_region(aVal[i]));
            if (config.hasCache) {
                Sig fill = b.andOf(mshr_fill_now, b.eqConst(mshrIdx, i));
                Sig hit_taint = b.orOf(load_taint, cacheTaint);
                load_taint = b.mux(fill, b.orOf(tA[i], mshrTaint),
                                   hit_taint);
            }
            Sig res_taint = b.mux(eIsLd[i], load_taint,
                                  b.mux(eIsBeqz[i], tA[i], alu_taint));
            b.connect(tR[i], b.mux(is_tail, b.zero(),
                                   b.mux(done_set[i], res_taint, tR[i])));
        }

        // Architectural taint at commit: sandboxing observes load data
        // (clearing its taint); constant-time does not.
        Sig t0 = readEntries(b, tR, head);
        Sig clear0 = sandbox ? slot0.isLd : b.zero();
        for (int r = 0; r < ic.regCount; ++r) {
            Sig w0 = b.andOf(slot0.writes, b.eqConst(slot0.rd, r));
            Sig next = b.mux(w0, b.andOf(t0, b.notOf(clear0)),
                             taintReg[r]);
            if (config.commitWidth == 2) {
                Sig t1 = readEntries(b, tR, slot1.idx);
                Sig clear1 = sandbox ? slot1.isLd : b.zero();
                Sig w1 = b.andOf(slot1.writes, b.eqConst(slot1.rd, r));
                next = b.mux(w1, b.andOf(t1, b.notOf(clear1)), next);
            }
            b.connect(taintReg[r], next);
        }

        // Control-flow taint: a committed branch whose condition is
        // tainted may steer the two copies apart. Constant-time observes
        // branch conditions (equalizing them), sandboxing does not.
        Sig cond_taint = readEntries(b, tA, head);
        Sig br_taints_pc =
            sandbox ? b.andAll({slot0.commit, slot0.isBr, cond_taint})
                    : b.zero();
        b.connect(pcTaint, b.orOf(pcTaint, br_taints_pc));

        if (config.hasCache) {
            Sig fill = mshr_fill_now;
            Sig line_taint = secret_region(mshrAddr);
            b.connect(cacheTaint,
                      b.mux(fill, b.orOf(mshrTaint, line_taint),
                            cacheTaint));
            Sig start_taint = b.lit(0, 1);
            for (int i = 0; i < N; ++i)
                start_taint = b.mux(grant[i], tA[i], start_taint);
            b.connect(mshrTaint,
                      b.mux(b.andOf(grant_to_mem, b.notOf(flush)),
                            start_taint, mshrTaint));
        }

        // Hints for the relational invariant search: untainted values
        // must match across copies (taint-state equality itself comes
        // from the automatic twin-register candidates).
        for (int i = 0; i < N; ++i) {
            Sig live = valid[i];
            ifc.fwdHints.push_back(
                {b.andAll({live, done[i], b.notOf(tR[i])}), result[i]});
            ifc.fwdHints.push_back(
                {b.andAll({live, aValid[i], b.notOf(tA[i])}), aVal[i]});
            ifc.fwdHints.push_back(
                {b.andAll({live, bValid[i], b.notOf(tB[i])}), bVal[i]});
        }
        for (int r = 0; r < ic.regCount; ++r)
            ifc.fwdHints.push_back({b.notOf(taintReg[r]), regs[r]});
        ifc.fwdHints.push_back({b.notOf(pcTaint), pc});
    }

    // --- Observation interfaces ---------------------------------------------
    auto fill_slot = [&](const SlotWires &s) {
        CommitSlot cs;
        cs.valid = s.commit;
        cs.exception = s.exc;
        cs.isLoad = b.andOf(s.commit, s.isLd);
        cs.isStore = b.andOf(s.commit, s.isSt);
        cs.isBranch = b.andOf(s.commit, s.isBr);
        cs.isMul = b.andOf(s.commit, s.isMul);
        cs.writesReg = s.writes;
        cs.wdata = s.result;
        cs.addr = s.addr;
        cs.taken = b.andOf(s.commit, s.taken);
        cs.opA = s.addr; // operand A value (ALU a / branch cond / address)
        cs.opB = s.bval;
        return cs;
    };
    ifc.commits.push_back(fill_slot(slot0));
    if (config.commitWidth == 2)
        ifc.commits.push_back(fill_slot(slot1));

    Sig bus_valid = b.orOf(grant_to_mem, store_on_bus);
    Sig bus_addr = grant_addr;
    bus_addr = b.mux(store_commit0, slot0.addr, bus_addr);
    if (config.commitWidth == 2)
        bus_addr = b.mux(store_commit1, slot1.addr, bus_addr);
    ifc.memBusValid = b.named(bus_valid, rn(".busValid"));
    ifc.memBusAddr = b.named(bus_addr, rn(".busAddr"));

    for (int i = 0; i < N; ++i) {
        ifc.robValid.push_back(valid[i]);
        ifc.robException.push_back(b.andOf(valid[i], excR[i]));
        // Structural relational hints (see CoreIfc::FwdHint): forwardable
        // completed results, captured operands, resolved branch outcomes.
        Sig live_done = b.andOf(valid[i], done[i]);
        ifc.fwdHints.push_back({b.andOf(live_done, fwdOk[i]), result[i]});
        ifc.fwdHints.push_back({b.andOf(valid[i], aValid[i]), aVal[i]});
        ifc.fwdHints.push_back({b.andOf(valid[i], bValid[i]), bVal[i]});
        ifc.fwdHints.push_back({b.andOf(live_done, eIsBeqz[i]),
                                takenR[i]});
        ifc.fwdHints.push_back({live_done, excR[i]});

        // Structural invariants (see CoreIfc): an entry is valid exactly
        // when it lies inside the head/count window, and pending operand
        // tags point at valid producers.
        const int cmp_w = (idx_bits + 1 > cnt_bits ? idx_bits + 1
                                                   : cnt_bits);
        Sig in_window = b.ult(b.resize(age[i], cmp_w),
                              b.resize(count, cmp_w));
        ifc.structuralInvariants.push_back(b.eq(valid[i], in_window));
        // Pending operands point at valid, strictly older producers (a
        // waiting consumer can otherwise deadlock in garbage states and
        // defeat the bounded-drain argument induction relies on).
        Sig a_tag_age = readEntries(b, age, aTag[i]);
        Sig b_tag_age = readEntries(b, age, bTag[i]);
        ifc.structuralInvariants.push_back(
            b.implies(b.andOf(valid[i], b.notOf(aValid[i])),
                      b.andOf(readEntries(b, valid, aTag[i]),
                              b.ult(a_tag_age, age[i]))));
        ifc.structuralInvariants.push_back(
            b.implies(b.andOf(valid[i], b.notOf(bValid[i])),
                      b.andOf(readEntries(b, valid, bTag[i]),
                              b.ult(b_tag_age, age[i]))));
        if (!ic.trapOnMisaligned && !ic.trapOnOutOfRange) {
            // Without trap features the exception flag can never be set;
            // ruling out ghost exceptions keeps trap-masked commits (whose
            // data the contract does not observe) out of the induction.
            ifc.structuralInvariants.push_back(b.notOf(excR[i]));
        }
        // brAtDisp consistency: an entry dispatched with no branch ahead
        // really has no older in-flight branch, so it is bound to commit
        // (spectre-variant defenses and the induction argument rely on
        // this to know the contract check will eventually examine it).
        {
            std::vector<Sig> older_branch;
            for (int j = 0; j < N; ++j) {
                if (j == i)
                    continue;
                Sig older = b.ult(b.resize(age[j], idx_bits + 1),
                                  b.resize(age[i], idx_bits + 1));
                older_branch.push_back(
                    b.andAll({valid[j], eIsBeqz[j], older}));
            }
            ifc.structuralInvariants.push_back(
                b.implies(b.andOf(valid[i], b.notOf(brAtDisp[i])),
                          b.notOf(b.orAll(older_branch))));
        }
        Sig is_mem = b.orOf(eIsLd[i], eIsSt[i]);
        Sig mem_live = b.andAll({valid[i], is_mem, aValid[i]});
        if (ic.trapOnMisaligned)
            ifc.robMisaligned.push_back(
                b.andOf(mem_live, b.bit(aVal[i], 0)));
        if (ic.trapOnOutOfRange) {
            int mem_bits = bitsFor(ic.dmemSize);
            if (W > mem_bits) {
                Sig high = b.slice(aVal[i], mem_bits, W - mem_bits);
                ifc.robOutOfRange.push_back(
                    b.andOf(mem_live, b.redOr(high)));
            }
        }
    }

    // Whole-core structural invariants: pointer bounds, rename-table
    // validity, MSHR consistency.
    ifc.structuralInvariants.push_back(
        b.ule(count, b.lit(N, cnt_bits)));
    if (N < (1 << idx_bits))
        ifc.structuralInvariants.push_back(
            b.ult(head, b.lit(N, idx_bits)));
    for (int r = 0; r < ic.regCount; ++r)
        ifc.structuralInvariants.push_back(
            b.implies(busy[r], readEntries(b, valid, rtag[r])));
    if (config.hasCache)
        ifc.structuralInvariants.push_back(
            b.implies(mshrActive, readEntries(b, valid, mshrIdx)));
    return ifc;
}

} // namespace csl::proc
