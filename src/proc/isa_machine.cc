#include "proc/isa_machine.h"

#include "base/logging.h"
#include "proc/decode.h"

namespace csl::proc {

using rtl::Builder;
using rtl::MemArray;
using rtl::Sig;

CoreIfc
buildIsaMachine(Builder &b, const isa::IsaConfig &config,
                const std::string &prefix)
{
    config.check();
    const int width = config.dataWidth;
    const int pc_bits = config.pcBits();

    CoreIfc ifc;
    ifc.imem = &b.memory(prefix + ".imem", config.imemSize,
                         config.instrBits(), /*symbolic_init=*/true);
    ifc.dmem = &b.memory(prefix + ".dmem", config.dmemSize, width,
                         /*symbolic_init=*/true);
    for (size_t i = 0; i < ifc.imem->depth(); ++i)
        ifc.imemWords.push_back(ifc.imem->word(i));
    for (size_t i = 0; i < ifc.dmem->depth(); ++i)
        ifc.dmemWords.push_back(ifc.dmem->word(i));
    Sig pc = b.reg(prefix + ".pc", pc_bits, 0);
    ifc.pc = pc;
    std::vector<Sig> regs;
    for (int i = 0; i < config.regCount; ++i)
        regs.push_back(
            b.symbolicReg(prefix + ".r" + std::to_string(i), width));
    ifc.archRegs = regs;

    // Fetch + decode.
    Sig instr = ifc.imem->read(b.resize(pc, pc_bits));
    DecodedInstr d = decodeInstr(b, instr, config);

    // Operand reads.
    Sig val_f1 = readRegFile(b, regs, d.f1);
    Sig val_f2 = readRegFile(b, regs, d.f2);
    Sig val_srcB = readRegFile(b, regs, d.srcB);

    // Execute.
    Sig addr = val_f2; // LD/ST address register is f2
    Sig exception = b.andOf(d.isMem, memException(b, addr, config));
    Sig load_data = ifc.dmem->read(addr);
    Sig alu = b.mux(d.isMul, b.mul(val_f2, val_srcB),
                    b.add(val_f2, val_srcB));
    Sig wdata = b.mux(d.isLi, d.imm, b.mux(d.isLd, load_data, alu));
    Sig do_write = b.andOf(d.writesReg, b.notOf(exception));

    // Branch.
    Sig cond = b.eqConst(val_f1, 0);
    Sig taken = b.andOf(d.isBeqz, cond);

    // Memory write.
    ifc.dmem->write(b.andOf(d.isSt, b.notOf(exception)), addr, val_f1);

    // Register writeback.
    for (int i = 0; i < config.regCount; ++i) {
        Sig hit = b.andOf(do_write, b.eqConst(d.f1, i));
        b.connect(regs[i], b.mux(hit, wdata, regs[i]));
    }

    // Next pc: exception > taken branch > fall-through.
    Sig pc_inc = b.addConst(pc, 1);
    Sig target = b.add(pc_inc, d.pcOff);
    Sig next_pc = b.mux(exception, b.lit(0, pc_bits),
                        b.mux(taken, target, pc_inc));
    b.connect(pc, next_pc);

    // Commit interface: one instruction per cycle, always.
    CommitSlot slot;
    slot.valid = b.one();
    slot.exception = exception;
    slot.isLoad = d.isLd;
    slot.isStore = d.isSt;
    slot.isBranch = d.isBeqz;
    slot.isMul = d.isMul;
    slot.writesReg = do_write;
    slot.wdata = wdata;
    slot.addr = addr;
    slot.taken = taken;
    slot.opA = b.mux(d.isBeqz, val_f1, val_f2);
    slot.opB = val_srcB;
    ifc.commits.push_back(slot);

    ifc.memBusValid = b.andOf(d.isMem, b.notOf(exception));
    ifc.memBusAddr = addr;

    return ifc;
}

} // namespace csl::proc
