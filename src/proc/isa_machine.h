/**
 * @file
 * The single-cycle ISA machine: executes exactly one instruction per
 * cycle. Two instances of it enforce the contract constraint check in the
 * paper's *baseline* verification scheme (Fig. 1a); Contract Shadow Logic
 * exists to eliminate them.
 */

#ifndef CSL_PROC_ISA_MACHINE_H_
#define CSL_PROC_ISA_MACHINE_H_

#include <string>

#include "isa/isa.h"
#include "proc/core_ifc.h"
#include "rtl/builder.h"

namespace csl::proc {

/**
 * Instantiate a single-cycle machine. Instruction and data memories are
 * created with symbolic initial state (the model checker explores all
 * programs and memory contents); callers add equality constraints between
 * instances. Respects any clock gate active on @p b.
 */
CoreIfc buildIsaMachine(rtl::Builder &b, const isa::IsaConfig &config,
                        const std::string &prefix);

} // namespace csl::proc

#endif // CSL_PROC_ISA_MACHINE_H_
