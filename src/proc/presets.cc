#include "proc/presets.h"

#include "base/logging.h"
#include "proc/inorder_core.h"
#include "proc/isa_machine.h"

namespace csl::proc {

const char *
coreKindName(CoreKind kind)
{
    switch (kind) {
      case CoreKind::IsaSingleCycle: return "IsaSingleCycle";
      case CoreKind::InOrder: return "InOrder";
      case CoreKind::SimpleOoO: return "SimpleOoO";
      case CoreKind::RideLite: return "RideLite";
      case CoreKind::BoomLike: return "BoomLike";
    }
    return "?";
}

OoOConfig
simpleOoOConfig(defense::Defense defense)
{
    OoOConfig config;
    config.isa = isa::IsaConfig{};
    config.robSize = 4;
    config.commitWidth = 1;
    config.defense = defense;
    config.hasCache = defense == defense::Defense::DoMSpectre;
    if (config.hasCache) {
        // The paper's DoM experiments need more concurrent instructions
        // ("using an 8-entry ROB instead of the default 4-entry ROB").
        config.robSize = 8;
    }
    return config;
}

OoOConfig
rideLiteConfig(defense::Defense defense)
{
    OoOConfig config;
    config.isa = isa::IsaConfig{};
    config.isa.hasMul = true;
    config.robSize = 4;
    config.commitWidth = 2;
    config.defense = defense;
    return config;
}

OoOConfig
boomLikeConfig(defense::Defense defense)
{
    OoOConfig config;
    config.isa = isa::IsaConfig{};
    config.isa.hasMul = true;
    config.isa.hasStore = true;
    config.isa.trapOnMisaligned = true;
    config.isa.trapOnOutOfRange = true;
    config.isa.dataWidth = 4;
    config.isa.dmemSize = 4; // addresses 4..15 trap as illegal
    config.robSize = 8;
    config.commitWidth = 1;
    config.defense = defense;
    return config;
}

CoreSpec
isaMachineSpec()
{
    CoreSpec spec;
    spec.kind = CoreKind::IsaSingleCycle;
    spec.ooo = simpleOoOConfig();
    return spec;
}

CoreSpec
inOrderSpec()
{
    CoreSpec spec;
    spec.kind = CoreKind::InOrder;
    spec.ooo = simpleOoOConfig();
    return spec;
}

CoreSpec
simpleOoOSpec(defense::Defense defense)
{
    CoreSpec spec;
    spec.kind = CoreKind::SimpleOoO;
    spec.ooo = simpleOoOConfig(defense);
    return spec;
}

CoreSpec
rideLiteSpec(defense::Defense defense)
{
    CoreSpec spec;
    spec.kind = CoreKind::RideLite;
    spec.ooo = rideLiteConfig(defense);
    return spec;
}

CoreSpec
boomLikeSpec(defense::Defense defense)
{
    CoreSpec spec;
    spec.kind = CoreKind::BoomLike;
    spec.ooo = boomLikeConfig(defense);
    return spec;
}

CoreIfc
buildCore(rtl::Builder &b, const CoreSpec &spec, const std::string &prefix)
{
    switch (spec.kind) {
      case CoreKind::IsaSingleCycle:
        return buildIsaMachine(b, spec.ooo.isa, prefix);
      case CoreKind::InOrder:
        return buildInOrderCore(b, spec.ooo.isa, prefix);
      case CoreKind::SimpleOoO:
      case CoreKind::RideLite:
      case CoreKind::BoomLike:
        return buildOoOCore(b, spec.ooo, prefix);
    }
    csl_panic("unknown core kind");
}

} // namespace csl::proc
