/**
 * @file
 * The hook interface every processor exposes for verification.
 *
 * These are the signals the paper's shadow logic taps: per-commit-slot
 * ISA-trace information (Section 5.1, "extend the existing ROB structure
 * with shadow metadata"), the microarchitectural observation signals
 * (memory-bus address sequence and commit timing, Section 2.2), and the
 * ROB occupancy view the two-phase logic needs for the instruction
 * inclusion requirement (Section 5.2.1).
 */

#ifndef CSL_PROC_CORE_IFC_H_
#define CSL_PROC_CORE_IFC_H_

#include <vector>

#include "rtl/builder.h"

namespace csl::proc {

/** ISA-level information about one committing instruction. */
struct CommitSlot
{
    rtl::Sig valid;     ///< an instruction commits in this slot
    rtl::Sig exception; ///< it commits as a trap (no writeback)
    rtl::Sig isLoad;
    rtl::Sig isStore;
    rtl::Sig isBranch;
    rtl::Sig isMul;
    rtl::Sig writesReg; ///< architectural register write happens
    rtl::Sig wdata;     ///< writeback data (loads: the loaded value)
    rtl::Sig addr;      ///< full architectural memory address (LD/ST)
    rtl::Sig taken;     ///< branch condition/outcome (BEQZ)
    rtl::Sig opA;       ///< ALU/MUL operand A
    rtl::Sig opB;       ///< ALU/MUL operand B
};

/** Everything the verification schemes need from one core instance. */
struct CoreIfc
{
    /** Commit slots, oldest first; size == commit width. */
    std::vector<CommitSlot> commits;

    /** Memory-bus observation: a (valid, address) pair per cycle. */
    rtl::Sig memBusValid;
    rtl::Sig memBusAddr;

    /**
     * Per-ROB-entry valid bits, physical index order, for the shadow
     * logic's pre-divergence mask. In-order/single-cycle machines expose
     * their pipeline latches (or nothing) here.
     */
    std::vector<rtl::Sig> robValid;

    /**
     * Per-ROB-entry exception flags (boomLike cores), used by the
     * UPEC-like scheme to restrict the speculation source to branches.
     */
    std::vector<rtl::Sig> robException;

    /**
     * Per-ROB-entry exception *cause* flags (valid entries whose memory
     * address is misaligned / out of range), used by the Section 7.1.4
     * attack-exclusion iteration.
     */
    std::vector<rtl::Sig> robMisaligned;
    std::vector<rtl::Sig> robOutOfRange;

    /** Architectural registers (LEAVE invariant candidates). */
    std::vector<rtl::Sig> archRegs;

    /**
     * Relational-invariant hints: structural (guard, value) pairs meaning
     * "whenever the guard holds in both copies, the value should match
     * across copies". Cores emit these from purely structural knowledge
     * (e.g. "a completed, forwardable ROB result"); the proof pipeline
     * turns them into candidate invariants and lets the Houdini pruning
     * decide which actually hold. This is the architect-supplied shadow
     * knowledge the paper leverages, expressed as reusable templates.
     */
    struct FwdHint
    {
        rtl::Sig guard;
        rtl::Sig value;
    };
    std::vector<FwdHint> fwdHints;

    /**
     * Single-copy structural invariants (1-bit nets expected to hold in
     * every reachable state): ROB-window consistency, rename-table
     * validity, pointer bounds. Purely functional-correctness facts the
     * designer knows; the proof pipeline validates them with the same
     * Houdini pass before assuming them, so wrong hints cost
     * completeness, never soundness.
     */
    std::vector<rtl::Sig> structuralInvariants;

    /** Program counter. */
    rtl::Sig pc;

    /**
     * Instruction memory (for equal-program constraints). Valid only
     * while the Builder that created the core is alive; use the word
     * vectors below after construction.
     */
    rtl::MemArray *imem = nullptr;

    /** Data memory (for public-equal/secret-free constraints). */
    rtl::MemArray *dmem = nullptr;

    /** Stable per-word handles (outlive the Builder). */
    std::vector<rtl::Sig> imemWords;
    std::vector<rtl::Sig> dmemWords;
};

} // namespace csl::proc

#endif // CSL_PROC_CORE_IFC_H_
