#include "sat/solver.h"

#include <algorithm>
#include <cmath>
#include <new>

#include "base/faultpoint.h"
#include "base/logging.h"

namespace csl::sat {

Solver::Solver() = default;

// ---------------------------------------------------------------------------
// Variables

Var
Solver::newVar()
{
    Var v = static_cast<Var>(assigns_.size());
    assigns_.push_back(LBool::Undef);
    polarity_.push_back(true);
    level_.push_back(0);
    reason_.push_back(kCRefUndef);
    activity_.push_back(0.0);
    seen_.push_back(false);
    heapPos_.push_back(-1);
    watches_.emplace_back();
    watches_.emplace_back();
    insertVarOrder(v);
    return v;
}

LBool
Solver::value(Lit l) const
{
    LBool v = assigns_[var(l)];
    if (v == LBool::Undef)
        return LBool::Undef;
    bool b = (v == LBool::True) != sign(l);
    return boolToLBool(b);
}

// ---------------------------------------------------------------------------
// Clause arena

Solver::CRef
Solver::allocClause(const std::vector<Lit> &lits, bool learnt)
{
    // A failed arena growth (injected or a real bad_alloc) degrades the
    // solver: with a potentially incomplete clause set neither Sat nor
    // Unsat can be trusted, so solve() will answer Unknown from now on
    // and the caller salvages what it proved before the failure.
    if (fault::shouldFire("sat.alloc")) {
        allocFailed_ = true;
        return kCRefUndef;
    }
    const size_t needed = arena_.size() + lits.size() + 2;
    if (arena_.capacity() < needed) {
        // Grow geometrically ourselves so the reserve below never
        // degrades push_back into per-clause reallocation.
        try {
            arena_.reserve(std::max(needed, arena_.capacity() * 2));
        } catch (const std::bad_alloc &) {
            allocFailed_ = true;
            return kCRefUndef;
        }
    }
    CRef ref = static_cast<CRef>(arena_.size());
    arena_.push_back((static_cast<uint32_t>(lits.size()) << 2) |
                     (learnt ? 2u : 0u));
    if (learnt)
        arena_.push_back(0);
    for (Lit l : lits)
        arena_.push_back(static_cast<uint32_t>(l.x));
    if (learnt) {
        ClauseRef c = clause(ref);
        c.setActivity(static_cast<float>(claInc_));
    }
    return ref;
}

void
Solver::attachClause(CRef ref)
{
    ClauseRef c = clause(ref);
    csl_assert(c.size() >= 2, "cannot attach unit clause");
    watches_[(~c[0]).x].push_back({ref, c[1]});
    watches_[(~c[1]).x].push_back({ref, c[0]});
}

bool
Solver::addClause(std::vector<Lit> lits)
{
    csl_assert(decisionLevel() == 0, "addClause above the root level");
    if (!ok_)
        return false;

    std::sort(lits.begin(), lits.end());
    // Dedupe; drop root-false literals; detect tautologies and
    // root-satisfied clauses.
    std::vector<Lit> out;
    Lit prev = kLitUndef;
    for (Lit l : lits) {
        csl_assert(var(l) >= 0 && var(l) < numVars(), "literal out of range");
        if (value(l) == LBool::True || l == ~prev)
            return true; // already satisfied / tautology
        if (value(l) == LBool::False || l == prev)
            continue;
        out.push_back(l);
        prev = l;
    }

    if (out.empty()) {
        ok_ = false;
        return false;
    }
    if (out.size() == 1) {
        uncheckedEnqueue(out[0], kCRefUndef);
        ok_ = propagate() == kCRefUndef;
        return ok_;
    }
    CRef ref = allocClause(out, false);
    if (ref == kCRefUndef)
        return true; // degraded; solve() will answer Unknown
    attachClause(ref);
    ++numProblemClauses_;
    return true;
}

// ---------------------------------------------------------------------------
// Trail

void
Solver::uncheckedEnqueue(Lit l, CRef reason)
{
    csl_assert(value(l) == LBool::Undef, "enqueue of assigned literal");
    assigns_[var(l)] = boolToLBool(!sign(l));
    level_[var(l)] = decisionLevel();
    reason_[var(l)] = reason;
    trail_.push_back(l);
}

void
Solver::cancelUntil(int level)
{
    if (decisionLevel() <= level)
        return;
    for (size_t i = trail_.size(); i-- > static_cast<size_t>(trailLim_[level]);) {
        Var v = var(trail_[i]);
        assigns_[v] = LBool::Undef;
        polarity_[v] = sign(trail_[i]);
        reason_[v] = kCRefUndef;
        insertVarOrder(v);
    }
    trail_.resize(trailLim_[level]);
    trailLim_.resize(level);
    qhead_ = trail_.size();
}

Solver::CRef
Solver::propagate()
{
    CRef confl = kCRefUndef;
    while (qhead_ < trail_.size()) {
        Lit p = trail_[qhead_++];
        ++stats_.propagations;
        std::vector<Watcher> &ws = watches_[p.x];
        size_t i = 0, j = 0;
        while (i < ws.size()) {
            Watcher w = ws[i];
            if (value(w.blocker) == LBool::True) {
                ws[j++] = ws[i++];
                continue;
            }
            ClauseRef c = clause(w.cref);
            if (c.dead()) {
                ++i; // lazily drop watcher of a deleted clause
                continue;
            }
            Lit false_lit = ~p;
            if (c[0] == false_lit)
                std::swap(c.lits()[0], c.lits()[1]);
            ++i;
            Lit first = c[0];
            Watcher updated{w.cref, first};
            if (first != w.blocker && value(first) == LBool::True) {
                ws[j++] = updated;
                continue;
            }
            bool found = false;
            for (uint32_t k = 2; k < c.size(); ++k) {
                if (value(c[k]) != LBool::False) {
                    std::swap(c.lits()[1], c.lits()[k]);
                    watches_[(~c[1]).x].push_back(updated);
                    found = true;
                    break;
                }
            }
            if (found)
                continue;
            // Clause is unit or conflicting under the current assignment.
            ws[j++] = updated;
            if (value(first) == LBool::False) {
                confl = w.cref;
                qhead_ = trail_.size();
                while (i < ws.size())
                    ws[j++] = ws[i++];
            } else {
                uncheckedEnqueue(first, w.cref);
            }
        }
        ws.resize(j);
        if (confl != kCRefUndef)
            break;
    }
    return confl;
}

// ---------------------------------------------------------------------------
// Conflict analysis

namespace {
inline uint32_t
abstractLevel(int level)
{
    return 1u << (level & 31);
}
} // namespace

void
Solver::analyze(CRef conflict, std::vector<Lit> &out_learnt, int &out_btlevel)
{
    int path_count = 0;
    Lit p = kLitUndef;
    out_learnt.clear();
    out_learnt.push_back(kLitUndef); // slot for the asserting literal
    size_t index = trail_.size();

    CRef confl = conflict;
    do {
        csl_assert(confl != kCRefUndef, "no reason in analyze");
        ClauseRef c = clause(confl);
        if (c.learnt())
            claBumpActivity(c);
        for (uint32_t j = (p == kLitUndef) ? 0 : 1; j < c.size(); ++j) {
            Lit q = c[j];
            if (!seen_[var(q)] && level_[var(q)] > 0) {
                varBumpActivity(var(q));
                seen_[var(q)] = true;
                if (level_[var(q)] >= decisionLevel())
                    ++path_count;
                else
                    out_learnt.push_back(q);
            }
        }
        while (!seen_[var(trail_[--index])]) {}
        p = trail_[index];
        confl = reason_[var(p)];
        seen_[var(p)] = false;
        --path_count;
    } while (path_count > 0);
    out_learnt[0] = ~p;

    // Clause minimization: drop literals implied by the rest of the clause.
    analyzeToClear_ = out_learnt;
    uint32_t abstract = 0;
    for (size_t i = 1; i < out_learnt.size(); ++i)
        abstract |= abstractLevel(level_[var(out_learnt[i])]);
    size_t keep = 1;
    for (size_t i = 1; i < out_learnt.size(); ++i) {
        Lit l = out_learnt[i];
        if (reason_[var(l)] == kCRefUndef || !litRedundant(l, abstract))
            out_learnt[keep++] = l;
    }
    out_learnt.resize(keep);
    stats_.learntLiterals += keep;

    // Find the backtrack level and place its literal at index 1.
    if (out_learnt.size() == 1) {
        out_btlevel = 0;
    } else {
        size_t max_i = 1;
        for (size_t i = 2; i < out_learnt.size(); ++i)
            if (level_[var(out_learnt[i])] > level_[var(out_learnt[max_i])])
                max_i = i;
        std::swap(out_learnt[1], out_learnt[max_i]);
        out_btlevel = level_[var(out_learnt[1])];
    }

    for (Lit l : analyzeToClear_)
        seen_[var(l)] = false;
}

void
Solver::analyzeFinal(Lit p)
{
    // Collect the assumptions responsible for forcing ~p (MiniSat's
    // analyzeFinal): walk the trail from the top, expanding reasons.
    conflict_.clear();
    conflict_.push_back(p);
    if (decisionLevel() == 0)
        return;
    seen_[var(p)] = true;
    for (size_t i = trail_.size(); i-- > size_t(trailLim_[0]);) {
        Var x = var(trail_[i]);
        if (!seen_[x])
            continue;
        if (reason_[x] == kCRefUndef) {
            // A decision inside the assumption levels is an assumption.
            csl_assert(level_[x] > 0, "decision at root in analyzeFinal");
            conflict_.push_back(trail_[i]);
        } else {
            ClauseRef c = clause(reason_[x]);
            for (uint32_t j = 1; j < c.size(); ++j)
                if (level_[var(c[j])] > 0)
                    seen_[var(c[j])] = true;
        }
        seen_[x] = false;
    }
    seen_[var(p)] = false;
}

bool
Solver::litRedundant(Lit l, uint32_t abstract_levels)
{
    analyzeStack_.clear();
    analyzeStack_.push_back(l);
    size_t top = analyzeToClear_.size();
    while (!analyzeStack_.empty()) {
        Lit cur = analyzeStack_.back();
        analyzeStack_.pop_back();
        csl_assert(reason_[var(cur)] != kCRefUndef, "redundant check on decision");
        ClauseRef c = clause(reason_[var(cur)]);
        for (uint32_t i = 1; i < c.size(); ++i) {
            Lit q = c[i];
            if (seen_[var(q)] || level_[var(q)] == 0)
                continue;
            if (reason_[var(q)] == kCRefUndef ||
                (abstractLevel(level_[var(q)]) & abstract_levels) == 0) {
                // Not removable: undo marks made during this check.
                for (size_t j = top; j < analyzeToClear_.size(); ++j)
                    seen_[var(analyzeToClear_[j])] = false;
                analyzeToClear_.resize(top);
                return false;
            }
            seen_[var(q)] = true;
            analyzeToClear_.push_back(q);
            analyzeStack_.push_back(q);
        }
    }
    return true;
}

// ---------------------------------------------------------------------------
// Activity heap

void
Solver::varBumpActivity(Var v)
{
    activity_[v] += varInc_;
    if (activity_[v] > 1e100) {
        for (double &a : activity_)
            a *= 1e-100;
        varInc_ *= 1e-100;
    }
    if (heapPos_[v] >= 0)
        heapDecrease(heapPos_[v]);
}

void
Solver::claBumpActivity(ClauseRef c)
{
    float act = c.activity() + static_cast<float>(claInc_);
    c.setActivity(act);
    if (act > 1e20f) {
        for (CRef ref : learnts_) {
            ClauseRef lc = clause(ref);
            lc.setActivity(lc.activity() * 1e-20f);
        }
        claInc_ *= 1e-20;
    }
}

void
Solver::insertVarOrder(Var v)
{
    if (heapPos_[v] >= 0)
        return;
    heapPos_[v] = static_cast<int>(heap_.size());
    heap_.push_back(v);
    heapDecrease(heapPos_[v]);
}

void
Solver::heapDecrease(int pos)
{
    // Percolate toward the root (higher activity wins).
    Var v = heap_[pos];
    while (pos > 0) {
        int parent = (pos - 1) >> 1;
        if (!heapLess(v, heap_[parent]))
            break;
        heap_[pos] = heap_[parent];
        heapPos_[heap_[pos]] = pos;
        pos = parent;
    }
    heap_[pos] = v;
    heapPos_[v] = pos;
}

void
Solver::heapIncrease(int pos)
{
    Var v = heap_[pos];
    const int size = static_cast<int>(heap_.size());
    for (;;) {
        int child = 2 * pos + 1;
        if (child >= size)
            break;
        if (child + 1 < size && heapLess(heap_[child + 1], heap_[child]))
            ++child;
        if (!heapLess(heap_[child], v))
            break;
        heap_[pos] = heap_[child];
        heapPos_[heap_[pos]] = pos;
        pos = child;
    }
    heap_[pos] = v;
    heapPos_[v] = pos;
}

Var
Solver::pickBranchVar()
{
    while (!heap_.empty()) {
        Var v = heap_[0];
        Var last = heap_.back();
        heap_.pop_back();
        heapPos_[v] = -1;
        if (!heap_.empty() && v != last) {
            heap_[0] = last;
            heapPos_[last] = 0;
            heapIncrease(0);
        }
        if (assigns_[v] == LBool::Undef)
            return v;
    }
    return -1;
}

// ---------------------------------------------------------------------------
// Learnt database reduction

void
Solver::reduceDB()
{
    std::sort(learnts_.begin(), learnts_.end(), [this](CRef a, CRef b) {
        ClauseRef ca = clause(a), cb = clause(b);
        if ((ca.size() == 2) != (cb.size() == 2))
            return cb.size() == 2; // binary clauses sort last (kept)
        return ca.activity() < cb.activity();
    });
    auto locked = [this](CRef ref) {
        ClauseRef c = clause(ref);
        Lit first = c[0];
        return reason_[var(first)] == ref && value(first) == LBool::True;
    };
    size_t keep_from = learnts_.size() / 2;
    std::vector<CRef> kept;
    kept.reserve(learnts_.size() - keep_from + 16);
    for (size_t i = 0; i < learnts_.size(); ++i) {
        CRef ref = learnts_[i];
        ClauseRef c = clause(ref);
        if (i < keep_from && c.size() > 2 && !locked(ref)) {
            c.markDead(); // watchers are dropped lazily in propagate()
            ++stats_.removedClauses;
        } else {
            kept.push_back(ref);
        }
    }
    learnts_.swap(kept);
}

// ---------------------------------------------------------------------------
// Main search

uint64_t
Solver::lubySequence(uint64_t i)
{
    // Value at 0-based position i of the Luby sequence 1 1 2 1 1 2 4 ...
    uint64_t size = 1, seq = 0;
    while (size < i + 1) {
        ++seq;
        size = 2 * size + 1;
    }
    while (size - 1 != i) {
        size = (size - 1) >> 1;
        --seq;
        i %= size;
    }
    return 1ull << seq;
}

uint64_t
Solver::nextRandom()
{
    // xorshift64*; seed_ is never 0 while randomization is active.
    seed_ ^= seed_ >> 12;
    seed_ ^= seed_ << 25;
    seed_ ^= seed_ >> 27;
    return seed_ * 0x2545F4914F6CDD1Dull;
}

void
Solver::setDecisionSeed(uint64_t seed)
{
    seed_ = seed;
    seedPending_ = seed != 0;
}

void
Solver::applySeedPerturbation()
{
    seedPending_ = false;
    // Jitter every activity by up to varInc_ and flip a fraction of the
    // saved phases: enough to reorder ties and early decisions without
    // discarding what VSIDS has learned.
    for (Var v = 0; v < numVars(); ++v) {
        activity_[v] +=
            varInc_ * (static_cast<double>(nextRandom() % 1024) / 1024.0);
        if (nextRandom() % 8 == 0)
            polarity_[v] = !polarity_[v];
    }
    // Rebuild the heap order under the new activities.
    for (size_t pos = heap_.size(); pos-- > 0;)
        heapIncrease(static_cast<int>(pos));
}

Status
Solver::solve(const std::vector<Lit> &assumptions, Budget *budget)
{
    csl_assert(decisionLevel() == 0, "solve re-entered above root");
    model_.clear();
    conflict_.clear();
    if (allocFailed_ || interruptRequested())
        return Status::Unknown;
    if (!ok_)
        return Status::Unsat;
    if (propagate() != kCRefUndef) {
        ok_ = false;
        return Status::Unsat;
    }
    if (seedPending_)
        applySeedPerturbation();

    if (maxLearnts_ <= 0)
        maxLearnts_ = std::max<double>(4000.0, numProblemClauses_ * 0.35);

    uint64_t restart_index = 0;
    uint64_t conflicts_until_restart = 256 * lubySequence(restart_index);
    std::vector<Lit> learnt;

    for (;;) {
        CRef confl = propagate();
        if (interruptRequested()) {
            cancelUntil(0);
            return Status::Unknown;
        }
        if (confl != kCRefUndef) {
            ++stats_.conflicts;
            if (budget) {
                budget->charge(1);
                if (budget->exhausted()) {
                    cancelUntil(0);
                    return Status::Unknown;
                }
            }
            if (decisionLevel() == 0) {
                ok_ = false;
                return Status::Unsat;
            }
            int btlevel = 0;
            analyze(confl, learnt, btlevel);
            cancelUntil(btlevel);
            if (learnt.size() == 1) {
                uncheckedEnqueue(learnt[0], kCRefUndef);
            } else {
                CRef ref = allocClause(learnt, true);
                if (ref == kCRefUndef) {
                    // Clause database allocation failed: degrade rather
                    // than continue on an incomplete learnt set.
                    cancelUntil(0);
                    return Status::Unknown;
                }
                learnts_.push_back(ref);
                attachClause(ref);
                uncheckedEnqueue(learnt[0], ref);
            }
            varDecayActivity();
            claDecayActivity();
            if (--conflicts_until_restart == 0) {
                ++stats_.restarts;
                cancelUntil(0);
                ++restart_index;
                conflicts_until_restart = 256 * lubySequence(restart_index);
                if (static_cast<double>(learnts_.size()) > maxLearnts_) {
                    reduceDB();
                    maxLearnts_ *= 1.1;
                }
            }
        } else {
            // No conflict: extend the assignment.
            Lit next = kLitUndef;
            while (decisionLevel() < static_cast<int>(assumptions.size())) {
                Lit p = assumptions[decisionLevel()];
                if (value(p) == LBool::True) {
                    // Dummy level keeps assumption indexing aligned.
                    trailLim_.push_back(static_cast<int>(trail_.size()));
                } else if (value(p) == LBool::False) {
                    analyzeFinal(p);
                    cancelUntil(0);
                    return Status::Unsat;
                } else {
                    next = p;
                    break;
                }
            }
            if (next == kLitUndef) {
                Var v = pickBranchVar();
                if (v < 0) {
                    // Full model found.
                    model_.assign(assigns_.begin(), assigns_.end());
                    if (fault::shouldFire("sat.corrupt-model")) {
                        // Injected model corruption: invert the whole
                        // model so the witness self-audit has something
                        // real to catch.
                        for (LBool &m : model_)
                            m = m == LBool::True    ? LBool::False
                                : m == LBool::False ? LBool::True
                                                    : m;
                    }
                    cancelUntil(0);
                    return Status::Sat;
                }
                ++stats_.decisions;
                next = mkLit(v, polarity_[v]);
                if (seed_ != 0 && nextRandom() % 64 == 0) {
                    // Occasional random decision under a non-zero seed.
                    Var rv = static_cast<Var>(nextRandom() %
                                              uint64_t(numVars()));
                    if (assigns_[rv] == LBool::Undef && rv != v) {
                        insertVarOrder(v); // v stays pending
                        next = mkLit(rv, nextRandom() & 1);
                    }
                }
            }
            trailLim_.push_back(static_cast<int>(trail_.size()));
            uncheckedEnqueue(next, kCRefUndef);
        }
    }
}

bool
Solver::modelValue(Lit l) const
{
    csl_assert(!model_.empty(), "no model available");
    LBool v = model_[var(l)];
    if (v == LBool::Undef)
        return false;
    return (v == LBool::True) != sign(l);
}

} // namespace csl::sat
