/**
 * @file
 * A from-scratch CDCL SAT solver in the MiniSat lineage.
 *
 * This is the decision-procedure substrate standing in for the paper's
 * commercial model checker back-end. Features: two-watched-literal
 * propagation with blockers, first-UIP conflict analysis with clause
 * minimization, VSIDS decision heuristic, phase saving, Luby restarts,
 * learnt-clause database reduction, incremental solving under
 * assumptions, and budget-aware cancellation (used to realize the
 * paper's verification timeouts).
 */

#ifndef CSL_SAT_SOLVER_H_
#define CSL_SAT_SOLVER_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "base/budget.h"

namespace csl::sat {

/** 0-based propositional variable. */
using Var = int32_t;

/**
 * A literal: variable plus sign, packed as 2*var+sign (sign 1 = negated).
 */
struct Lit
{
    int32_t x = -2;

    bool operator==(const Lit &o) const = default;
    bool operator<(const Lit &o) const { return x < o.x; }
};

inline Lit
mkLit(Var v, bool neg = false)
{
    return Lit{2 * v + (neg ? 1 : 0)};
}

inline Lit operator~(Lit l) { return Lit{l.x ^ 1}; }
inline bool sign(Lit l) { return l.x & 1; }
inline Var var(Lit l) { return l.x >> 1; }

/** The undefined literal. */
inline constexpr Lit kLitUndef{-2};

/** Three-valued assignment. */
enum class LBool : uint8_t { False = 0, True = 1, Undef = 2 };

inline LBool
boolToLBool(bool b)
{
    return b ? LBool::True : LBool::False;
}

/** Result of a solve() call. */
enum class Status { Sat, Unsat, Unknown };

/** Aggregate search statistics. */
struct SolverStats
{
    uint64_t conflicts = 0;
    uint64_t decisions = 0;
    uint64_t propagations = 0;
    uint64_t restarts = 0;
    uint64_t learntLiterals = 0;
    uint64_t removedClauses = 0;
};

/** CDCL solver. See file comment for the feature set. */
class Solver
{
  public:
    Solver();

    /** Create a fresh variable; returns its index. */
    Var newVar();

    int numVars() const { return static_cast<int>(assigns_.size()); }

    /**
     * Add a clause. Returns false when the formula is already
     * unsatisfiable at the root level (the solver stays usable but every
     * solve() will return Unsat).
     */
    bool addClause(std::vector<Lit> lits);

    /** Convenience overloads. */
    bool addClause(Lit a) { return addClause(std::vector<Lit>{a}); }
    bool addClause(Lit a, Lit b) { return addClause(std::vector<Lit>{a, b}); }
    bool
    addClause(Lit a, Lit b, Lit c)
    {
        return addClause(std::vector<Lit>{a, b, c});
    }

    /**
     * Solve under the given assumption literals. @p budget limits the
     * search (checked at every conflict); Unknown is returned when it
     * expires. The solver backtracks to the root level afterwards, so
     * clauses may be added and solve() called again (incremental use).
     */
    Status solve(const std::vector<Lit> &assumptions = {},
                 Budget *budget = nullptr);

    /** Model value of @p l after a Sat result. */
    bool modelValue(Lit l) const;

    /**
     * Perturb the decision heuristic with @p seed (0 restores the
     * deterministic default). A non-zero seed jitters the variable
     * activities and saved phases before the next solve() and makes a
     * small fraction of decisions random, steering the search down a
     * different path - used by the verification runner to retry a solve
     * whose witness failed its simulation audit.
     */
    void setDecisionSeed(uint64_t seed);

    /**
     * Request cooperative interruption of an in-flight solve(). Safe to
     * call from any thread: the flag is atomic and the search loop polls
     * it at every conflict and decision boundary, backtracks to the root
     * and returns Unknown. The request is latched - subsequent solve()
     * calls answer Unknown immediately until clearInterrupt(). This is
     * the cancellation hook the portfolio scheduler uses to stop losing
     * engines once a sibling produced a conclusive verdict.
     */
    void requestInterrupt()
    {
        interruptRequested_.store(true, std::memory_order_relaxed);
    }

    /** Re-arm the solver after a cross-thread interrupt. */
    void clearInterrupt()
    {
        interruptRequested_.store(false, std::memory_order_relaxed);
    }

    /** True while an interrupt request is latched. Thread-safe. */
    bool interruptRequested() const
    {
        return interruptRequested_.load(std::memory_order_relaxed);
    }

    /**
     * True once the solver has degraded (clause-database allocation
     * failed, really or through the `sat.alloc` fault point). A degraded
     * solver answers Unknown from every subsequent solve() instead of
     * risking an unsound verdict on an incomplete clause set.
     */
    bool degraded() const { return allocFailed_; }

    /**
     * After an Unsat result caused by the assumptions, the subset of
     * assumption literals involved in the final conflict (MiniSat's
     * `analyzeFinal`). Empty when the clause set is unsatisfiable on its
     * own. Useful for minimizing queries (unsat-core-style reasoning).
     */
    const std::vector<Lit> &failedAssumptions() const { return conflict_; }

    /** True when the clause set is contradictory at the root level. */
    bool inconsistent() const { return !ok_; }

    const SolverStats &stats() const { return stats_; }

    /** Number of problem (non-learnt) clauses. */
    size_t numClauses() const { return numProblemClauses_; }

  private:
    using CRef = uint32_t;
    static constexpr CRef kCRefUndef = UINT32_MAX;

    // --- Clause arena ---------------------------------------------------
    // Layout per clause: header word (size << 2 | learnt << 1 | dead),
    // then for learnt clauses one activity word (float bits), then the
    // literals.
    struct ClauseRef
    {
        uint32_t *base;

        uint32_t size() const { return base[0] >> 2; }
        bool learnt() const { return base[0] & 2; }
        bool dead() const { return base[0] & 1; }
        void markDead() { base[0] |= 1; }
        float
        activity() const
        {
            float f;
            __builtin_memcpy(&f, &base[1], sizeof(f));
            return f;
        }
        void
        setActivity(float f)
        {
            __builtin_memcpy(&base[1], &f, sizeof(f));
        }
        Lit *
        lits()
        {
            return reinterpret_cast<Lit *>(base + (learnt() ? 2 : 1));
        }
        const Lit *
        lits() const
        {
            return reinterpret_cast<const Lit *>(base + (learnt() ? 2 : 1));
        }
        Lit &operator[](uint32_t i) { return lits()[i]; }
        Lit operator[](uint32_t i) const { return lits()[i]; }
    };

    CRef allocClause(const std::vector<Lit> &lits, bool learnt);
    ClauseRef clause(CRef ref) { return ClauseRef{arena_.data() + ref}; }

    // --- Watches ----------------------------------------------------------
    struct Watcher
    {
        CRef cref;
        Lit blocker;
    };

    void attachClause(CRef ref);

    // --- Assignment / trail -------------------------------------------------
    LBool value(Lit l) const;
    LBool value(Var v) const { return assigns_[v]; }
    int decisionLevel() const { return static_cast<int>(trailLim_.size()); }
    void uncheckedEnqueue(Lit l, CRef reason);
    CRef propagate();
    void cancelUntil(int level);

    // --- Conflict analysis ----------------------------------------------------
    void analyze(CRef conflict, std::vector<Lit> &out_learnt,
                 int &out_btlevel);
    void analyzeFinal(Lit p);
    bool litRedundant(Lit l, uint32_t abstract_levels);

    // --- Heuristics -----------------------------------------------------------
    void varBumpActivity(Var v);
    void varDecayActivity() { varInc_ *= (1.0 / 0.95); }
    void claBumpActivity(ClauseRef c);
    void claDecayActivity() { claInc_ *= (1.0 / 0.999); }
    Var pickBranchVar();
    void insertVarOrder(Var v);
    void reduceDB();
    uint64_t nextRandom();
    void applySeedPerturbation();

    // Indexed max-heap on var activity.
    void heapDecrease(int pos);
    void heapIncrease(int pos);
    bool heapLess(Var a, Var b) const
    {
        return activity_[a] > activity_[b];
    }

    static uint64_t lubySequence(uint64_t i);

    // --- Data -------------------------------------------------------------
    std::vector<uint32_t> arena_;
    std::vector<CRef> learnts_;
    size_t numProblemClauses_ = 0;

    std::vector<std::vector<Watcher>> watches_; // indexed by Lit::x
    std::vector<LBool> assigns_;                // indexed by Var
    std::vector<bool> polarity_;                // saved phases
    std::vector<int> level_;
    std::vector<CRef> reason_;
    std::vector<Lit> trail_;
    std::vector<int> trailLim_;
    size_t qhead_ = 0;

    std::vector<double> activity_;
    double varInc_ = 1.0;
    double claInc_ = 1.0;
    std::vector<int> heap_;     // heap of vars
    std::vector<int> heapPos_;  // var -> heap index or -1

    std::vector<bool> seen_;
    std::vector<Lit> analyzeToClear_;
    std::vector<Lit> analyzeStack_;

    std::vector<LBool> model_;
    std::vector<Lit> conflict_;
    bool ok_ = true;
    bool allocFailed_ = false;

    uint64_t seed_ = 0;       ///< xorshift state for randomized decisions
    bool seedPending_ = false; ///< activity jitter owed before next solve

    /// Cross-thread cancellation; see requestInterrupt().
    std::atomic<bool> interruptRequested_{false};

    double maxLearnts_ = 0;
    SolverStats stats_;
};

} // namespace csl::sat

#endif // CSL_SAT_SOLVER_H_
