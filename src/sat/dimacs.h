/**
 * @file
 * DIMACS CNF reading/writing, used by the test-suite to cross-check the
 * solver on standard instances and to dump generated problems.
 */

#ifndef CSL_SAT_DIMACS_H_
#define CSL_SAT_DIMACS_H_

#include <iosfwd>
#include <vector>

#include "sat/solver.h"

namespace csl::sat {

/** A raw CNF: clause list over variables 0..numVars-1. */
struct Cnf
{
    int numVars = 0;
    std::vector<std::vector<Lit>> clauses;
};

/** Parse DIMACS from a stream; panics on malformed input. */
Cnf parseDimacs(std::istream &is);

/** Write DIMACS. */
void writeDimacs(const Cnf &cnf, std::ostream &os);

/** Load a Cnf into a solver (creating variables as needed). */
void loadCnf(const Cnf &cnf, Solver &solver);

} // namespace csl::sat

#endif // CSL_SAT_DIMACS_H_
