#include "sat/dimacs.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "base/logging.h"

namespace csl::sat {

Cnf
parseDimacs(std::istream &is)
{
    Cnf cnf;
    std::string line;
    std::vector<Lit> current;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == 'c')
            continue;
        if (line[0] == 'p') {
            std::istringstream hs(line);
            std::string p, fmt;
            int clauses = 0;
            hs >> p >> fmt >> cnf.numVars >> clauses;
            csl_assert(fmt == "cnf", "unsupported DIMACS format: ", fmt);
            continue;
        }
        std::istringstream ls(line);
        long v;
        while (ls >> v) {
            if (v == 0) {
                cnf.clauses.push_back(current);
                current.clear();
            } else {
                int av = static_cast<int>(v < 0 ? -v : v);
                if (av > cnf.numVars)
                    cnf.numVars = av;
                current.push_back(mkLit(av - 1, v < 0));
            }
        }
    }
    csl_assert(current.empty(), "trailing literals without terminating 0");
    return cnf;
}

void
writeDimacs(const Cnf &cnf, std::ostream &os)
{
    os << "p cnf " << cnf.numVars << " " << cnf.clauses.size() << "\n";
    for (const auto &clause : cnf.clauses) {
        for (Lit l : clause)
            os << (sign(l) ? -(var(l) + 1) : (var(l) + 1)) << " ";
        os << "0\n";
    }
}

void
loadCnf(const Cnf &cnf, Solver &solver)
{
    while (solver.numVars() < cnf.numVars)
        solver.newVar();
    for (const auto &clause : cnf.clauses)
        solver.addClause(clause);
}

} // namespace csl::sat
