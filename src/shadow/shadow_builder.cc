#include "shadow/shadow_builder.h"

#include <algorithm>

#include "base/logging.h"
#include "rtl/analysis/analysis.h"
#include "rtl/analysis/taint_dataflow.h"
#include "rtl/builder.h"

namespace csl::shadow {

using contract::Contract;
using proc::CoreIfc;
using rtl::Builder;
using rtl::Sig;

namespace {

/**
 * The commit skid buffer of one processor copy (paper Section 5.3): it
 * holds ISA observations that have not yet been matched against the
 * other copy. With pausing active its occupancy stays tiny, but the
 * structure generically supports superscalar commit (several pushes per
 * cycle) and the unsynchronized ablation (clamped occupancy).
 */
struct SkidFifo
{
    Sig count;              ///< register: stored, unmatched observations
    std::vector<Sig> vals;  ///< registers: stored observation values
    std::vector<Sig> ext;   ///< combinational: stored ++ pushed values
    Sig len;                ///< combinational: count + pushes
    int maxPush = 1;
    int depth = 4;
    int cntBits = 3;
};

SkidFifo
makeFifo(Builder &b, const std::string &prefix, int obs_width, int max_push)
{
    SkidFifo fifo;
    fifo.maxPush = max_push;
    fifo.depth = 4 * max_push;
    fifo.cntBits = bitsFor(fifo.depth + max_push + 1);
    fifo.count = b.reg(prefix + ".count", fifo.cntBits, 0);
    for (int j = 0; j < fifo.depth; ++j)
        fifo.vals.push_back(
            b.reg(prefix + ".v" + std::to_string(j), obs_width, 0));
    return fifo;
}

/** Materialize the extended sequence (stored entries then pushes). */
void
extendFifo(Builder &b, SkidFifo &fifo, const std::vector<Sig> &push_valid,
           const std::vector<Sig> &push_val)
{
    const int L = fifo.depth + fifo.maxPush;
    fifo.ext.resize(L);
    for (int k = 0; k < L; ++k) {
        // Stored entry when k < count; otherwise push number (k - count).
        Sig value = b.lit(0, push_val[0].width);
        for (int j = fifo.maxPush - 1; j >= 0; --j) {
            if (k - j < 0)
                continue;
            // count == k - j  =>  this slot is push j.
            Sig sel = b.eqConst(fifo.count, uint64_t(k - j));
            value = b.mux(sel, push_val[j], value);
        }
        if (k < fifo.depth) {
            Sig stored = b.ult(b.lit(k, fifo.cntBits), fifo.count);
            value = b.mux(stored, fifo.vals[k], value);
        }
        fifo.ext[k] = value;
    }
    Sig pushes = b.lit(0, fifo.cntBits);
    for (int j = 0; j < fifo.maxPush; ++j)
        pushes = b.add(pushes, b.resize(push_valid[j], fifo.cntBits));
    fifo.len = b.add(fifo.count, pushes);
}

} // namespace

ShadowHarness
buildShadowCircuit(rtl::Circuit &circuit, const proc::CoreSpec &spec,
                   const ShadowOptions &options)
{
    Builder b(circuit);
    ShadowHarness h;
    const isa::IsaConfig &ic = spec.isaConfig();

    // --- Pause registers and the two gated processor copies -------------
    Sig pause1 = b.reg("shadow.pause1", 1, 0);
    Sig pause2 = b.reg("shadow.pause2", 1, 0);
    Sig ce1 = b.notOf(pause1);
    Sig ce2 = b.notOf(pause2);

    b.pushClockGate(ce1);
    h.cpu1 = proc::buildCore(b, spec, "cpu1");
    b.popClockGate();
    b.pushClockGate(ce2);
    h.cpu2 = proc::buildCore(b, spec, "cpu2");
    b.popClockGate();

    // --- Initial-state constraints ----------------------------------------
    // Identical programs.
    for (size_t i = 0; i < ic.imemSize; ++i)
        b.assumeInit(b.eq(h.cpu1.imem->word(i), h.cpu2.imem->word(i)));
    // Identical public data; the secret region (upper half) is free.
    for (size_t i = 0; i < ic.secretStart(); ++i)
        b.assumeInit(b.eq(h.cpu1.dmem->word(i), h.cpu2.dmem->word(i)));
    if (options.assumeSecretsDiffer) {
        std::vector<Sig> diffs;
        for (size_t i = ic.secretStart(); i < ic.dmemSize; ++i)
            diffs.push_back(
                b.ne(h.cpu1.dmem->word(i), h.cpu2.dmem->word(i)));
        b.assumeInit(b.orAll(diffs), "shadow.secretsDiffer");
    }
    // Identical (symbolic) architectural registers.
    for (size_t r = 0; r < h.cpu1.archRegs.size(); ++r)
        b.assumeInit(b.eq(h.cpu1.archRegs[r], h.cpu2.archRegs[r]));

    // --- UPEC-like speculation-source restriction -------------------------
    if (options.restrictToBranchSpeculation) {
        for (Sig e : h.cpu1.robException)
            b.assume(b.notOf(e));
        for (Sig e : h.cpu2.robException)
            b.assume(b.notOf(e));
    }
    // --- Attack-exclusion iteration (paper Section 7.1.4) -------------------
    if (options.excludeMisaligned) {
        for (Sig e : h.cpu1.robMisaligned)
            b.assume(b.notOf(e));
        for (Sig e : h.cpu2.robMisaligned)
            b.assume(b.notOf(e));
    }
    if (options.excludeOutOfRange) {
        for (Sig e : h.cpu1.robOutOfRange)
            b.assume(b.notOf(e));
        for (Sig e : h.cpu2.robOutOfRange)
            b.assume(b.notOf(e));
    }

    // --- Phase 1: microarchitectural trace comparison ----------------------
    Sig uarch1 = contract::uarchObservation(b, h.cpu1, ce1);
    Sig uarch2 = contract::uarchObservation(b, h.cpu2, ce2);
    Sig uarch_diff = b.named(b.ne(uarch1, uarch2), "shadow.uarchDiff");

    Sig phase2_reg = b.reg("shadow.phase2", 1, 0);
    Sig diverge_now = b.andOf(b.notOf(phase2_reg), uarch_diff);
    Sig phase2_next = b.orOf(phase2_reg, uarch_diff);
    b.connect(phase2_reg, phase2_next);

    // --- Instruction inclusion: pre-divergence ROB masks --------------------
    auto make_prediv = [&](const CoreIfc &cpu, const std::string &prefix) {
        std::vector<Sig> mask;
        for (size_t i = 0; i < cpu.robValid.size(); ++i) {
            Sig bit = b.reg(prefix + std::to_string(i), 1, 0);
            b.connect(bit, b.mux(diverge_now, cpu.robValid[i],
                                 b.andOf(bit, cpu.robValid[i])));
            mask.push_back(bit);
        }
        return mask;
    };
    auto mask1 = make_prediv(h.cpu1, "shadow.preDiv1.");
    auto mask2 = make_prediv(h.cpu2, "shadow.preDiv2.");
    std::vector<Sig> all_mask = mask1;
    all_mask.insert(all_mask.end(), mask2.begin(), mask2.end());
    Sig drained = b.named(b.notOf(b.orAll(all_mask)), "shadow.drained");

    // --- ISA trace extraction and alignment --------------------------------
    const int max_push = static_cast<int>(h.cpu1.commits.size());
    std::vector<Sig> pv1, px1, pv2, px2;
    for (int k = 0; k < max_push; ++k) {
        pv1.push_back(b.andOf(h.cpu1.commits[k].valid, ce1));
        px1.push_back(
            contract::isaObservation(b, h.cpu1.commits[k],
                                     options.contract));
        pv2.push_back(b.andOf(h.cpu2.commits[k].valid, ce2));
        px2.push_back(
            contract::isaObservation(b, h.cpu2.commits[k],
                                     options.contract));
    }
    const int obs_width = px1[0].width;
    SkidFifo f1 = makeFifo(b, "shadow.fifo1", obs_width, max_push);
    SkidFifo f2 = makeFifo(b, "shadow.fifo2", obs_width, max_push);
    extendFifo(b, f1, pv1, px1);
    extendFifo(b, f2, pv2, px2);

    // Matched pairs this cycle; at most one side holds stored items, so
    // m never exceeds the push width.
    Sig m = b.mux(b.ult(f1.len, f2.len), f1.len, f2.len);
    std::vector<Sig> diffs;
    for (int k = 0; k < max_push; ++k) {
        Sig compared = b.ult(b.lit(k, f1.cntBits), m);
        diffs.push_back(b.andOf(compared, b.ne(f1.ext[k], f2.ext[k])));
    }
    Sig isa_diff = b.named(b.orAll(diffs), "shadow.isaDiff");

    auto advance_fifo = [&](SkidFifo &fifo) {
        Sig new_count = b.sub(fifo.len, m);
        // Clamp for the no-pause ablation (overflow drops observations;
        // with pausing enabled occupancy provably stays below depth).
        Sig overflow =
            b.ult(b.lit(fifo.depth, fifo.cntBits), new_count);
        new_count = b.mux(overflow, b.lit(fifo.depth, fifo.cntBits),
                          new_count);
        b.connect(fifo.count, new_count);
        for (int j = 0; j < fifo.depth; ++j) {
            // vals[j] <- ext[j + m]
            Sig shifted = fifo.ext[j]; // m == 0
            for (int mm = 1; mm <= fifo.maxPush; ++mm) {
                if (j + mm >= static_cast<int>(fifo.ext.size()))
                    break;
                shifted = b.mux(b.eqConst(m, mm), fifo.ext[j + mm],
                                shifted);
            }
            b.connect(fifo.vals[j], shifted);
        }
        return new_count;
    };
    Sig new_count1 = advance_fifo(f1);
    Sig new_count2 = advance_fifo(f2);

    // --- Synchronization: pause whichever copy runs ahead -------------------
    if (options.enablePause) {
        Sig in_phase2 = phase2_next;
        b.connect(pause1,
                  b.andOf(in_phase2,
                          b.ne(new_count1, b.lit(0, f1.cntBits))));
        b.connect(pause2,
                  b.andOf(in_phase2,
                          b.ne(new_count2, b.lit(0, f2.cntBits))));
    } else {
        b.connect(pause1, b.zero());
        b.connect(pause2, b.zero());
    }
    h.pause1 = pause1.id;
    h.pause2 = pause2.id;

    // --- Contract constraint check (assume) --------------------------------
    b.assume(b.notOf(isa_diff), "shadow.contractHolds");

    // --- Leakage assertion ---------------------------------------------------
    Sig fifos_empty = b.andOf(b.eqConst(f1.count, 0),
                              b.eqConst(f2.count, 0));
    Sig leak_cond = phase2_reg;
    if (options.enableDrainCheck)
        leak_cond = b.andAll({phase2_reg, drained, fifos_empty});
    Sig bad = b.assertAlways(b.notOf(leak_cond), "shadow.leak");

    h.phase2 = phase2_reg.id;
    h.drained = drained.id;
    h.isaDiff = isa_diff.id;
    h.uarchDiff = uarch_diff.id;
    h.leak = bad.id;

    // --- Relational candidate invariants for the proof pipeline -------------
    if (options.emitRelationalCandidates) {
        auto add = [&](Sig cand, const std::string &name = "") {
            if (!name.empty() && circuit.findByName(name) == rtl::kNoNet)
                circuit.setName(cand.id, name);
            h.relationalCandidates.push_back(cand.id);
        };
        // Twin-register equalities across the two copies (covers the
        // instruction memories, public data memory, pc, rename tables,
        // ROB bookkeeping, ...; candidates on secret words and on
        // transiently-differing fields die in the Houdini pruning).
        const rtl::Circuit &c = circuit;
        for (rtl::NetId reg : c.registers()) {
            std::string name = c.name(reg);
            if (name.rfind("cpu1.", 0) != 0)
                continue;
            rtl::NetId twin = c.findByName("cpu2." + name.substr(5));
            if (twin == rtl::kNoNet)
                continue;
            int width = c.net(reg).width;
            add(b.eq(Sig{reg, width}, Sig{twin, width}),
                "cand.eq." + name.substr(5));
        }
        // Core-provided guarded hints.
        size_t hints = std::min(h.cpu1.fwdHints.size(),
                                h.cpu2.fwdHints.size());
        for (size_t k = 0; k < hints; ++k) {
            const auto &h1 = h.cpu1.fwdHints[k];
            const auto &h2 = h.cpu2.fwdHints[k];
            add(b.eq(h1.guard, h2.guard),
                "cand.hintGuard." + std::to_string(k));
            add(b.implies(b.andOf(h1.guard, h2.guard),
                          b.eq(h1.value, h2.value)),
                "cand.hintVal." + std::to_string(k));
        }
        // Single-copy structural invariants from both cores.
        for (size_t k = 0; k < h.cpu1.structuralInvariants.size(); ++k)
            add(h.cpu1.structuralInvariants[k],
                "cand.struct1." + std::to_string(k));
        for (size_t k = 0; k < h.cpu2.structuralInvariants.size(); ++k)
            add(h.cpu2.structuralInvariants[k],
                "cand.struct2." + std::to_string(k));
        // Shadow machinery quiescent (secure designs never diverge).
        Sig quiescent = b.notOf(phase2_reg);
        add(quiescent, "cand.noPhase2");
        h.quiescentCandidate = quiescent.id;
        add(b.notOf(pause1), "cand.noPause1");
        add(b.notOf(pause2), "cand.noPause2");
        add(b.eqConst(f1.count, 0), "cand.fifo1Empty");
        add(b.eqConst(f2.count, 0), "cand.fifo2Empty");
        for (size_t i = 0; i < all_mask.size(); ++i)
            add(b.notOf(all_mask[i]), "cand.noPreDiv" + std::to_string(i));
    }

    b.finish();

    // --- Scheme-aware static pre-flight --------------------------------------
    // Run after finish() so memory write muxes are sealed and every
    // next-state edge exists; all of this is read-only analysis.

    // Ablation misconfigurations, caught without touching a SAT engine:
    // a pause net folding to a constant means the synchronization
    // requirement is unenforced; a leakage assertion whose cone misses
    // the drained flag means the instruction-inclusion requirement is
    // unenforced. Both admit spurious counterexamples (paper Section
    // 5.2), which is exactly what the ablation benches demonstrate.
    const auto folded = rtl::analysis::foldConstants(circuit);
    auto check_pause = [&](rtl::NetId pause_net, const char *which) {
        if (folded[pause_net].has_value())
            h.preflight.warn(
                "shadow-config", pause_net,
                std::string("pause net ") + circuit.name(pause_net) +
                    " folds to constant " +
                    std::to_string(*folded[pause_net]) + ": the " +
                    which +
                    " copy is never realigned (synchronization "
                    "requirement disabled - expect spurious "
                    "counterexamples)");
    };
    check_pause(h.pause1, "first");
    check_pause(h.pause2, "second");
    if (!rtl::analysis::inCone(circuit, h.leak, h.drained))
        h.preflight.warn(
            "shadow-config", h.leak,
            "leakage assertion cone does not contain the drained flag: "
            "the instruction-inclusion requirement is unenforced "
            "(divergences are reported before their in-flight "
            "instructions pass the contract check)");

    // Static secret-taint dataflow, contract-aware: secrets originate
    // at the secret-region memory words of both copies; the committed
    // ISA observations are constraint-equalized across copies, so they
    // act as declassification points for *relational* facts.
    rtl::analysis::TaintOptions topts;
    for (size_t i = ic.secretStart(); i < ic.dmemSize; ++i) {
        topts.sources.push_back(h.cpu1.dmemWords[i].id);
        topts.sources.push_back(h.cpu2.dmemWords[i].id);
    }
    for (int k = 0; k < max_push; ++k) {
        topts.sanitizers.push_back(px1[k].id);
        topts.sanitizers.push_back(px2[k].id);
    }
    rtl::analysis::TaintFacts facts =
        rtl::analysis::taintDataflow(circuit, topts);
    rtl::analysis::taintLint(circuit, facts, topts, h.preflight);

    // Seed the proof pipeline: candidates outside the secret's reach
    // can only be falsified by microarchitectural skew, never by the
    // secret itself, so they are the cheapest invariants to close.
    // Order them first; Houdini's fixpoint is order-independent, so
    // this cannot regress any currently-closing proof.
    if (!h.relationalCandidates.empty()) {
        auto mid = std::stable_partition(
            h.relationalCandidates.begin(), h.relationalCandidates.end(),
            [&](rtl::NetId cand) { return !facts.isTainted(cand); });
        h.staticSeedCount =
            size_t(mid - h.relationalCandidates.begin());
        h.preflight.note(
            "taint", rtl::kNoNet,
            std::to_string(h.staticSeedCount) + " of " +
                std::to_string(h.relationalCandidates.size()) +
                " candidate invariants are statically secret-free "
                "(untainted -> equal seeds)");
    }
    return h;
}

} // namespace csl::shadow
