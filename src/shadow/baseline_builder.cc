#include "shadow/baseline_builder.h"

#include "base/logging.h"
#include "proc/isa_machine.h"
#include "rtl/analysis/analysis.h"
#include "rtl/analysis/taint_dataflow.h"
#include "rtl/builder.h"

namespace csl::shadow {

using rtl::Builder;
using rtl::Sig;

BaselineHarness
buildBaselineCircuit(rtl::Circuit &circuit, const proc::CoreSpec &spec,
                     contract::Contract contract,
                     bool assume_secrets_differ)
{
    Builder b(circuit);
    BaselineHarness h;
    const isa::IsaConfig &ic = spec.isaConfig();

    // Four machines, free-running (no pausing in the baseline scheme).
    h.isa1 = proc::buildIsaMachine(b, ic, "isa1");
    h.isa2 = proc::buildIsaMachine(b, ic, "isa2");
    h.cpu1 = proc::buildCore(b, spec, "cpu1");
    h.cpu2 = proc::buildCore(b, spec, "cpu2");

    // Program: identical across all four machines.
    for (size_t i = 0; i < ic.imemSize; ++i) {
        Sig w = h.isa1.imem->word(i);
        b.assumeInit(b.eq(w, h.isa2.imem->word(i)));
        b.assumeInit(b.eq(w, h.cpu1.imem->word(i)));
        b.assumeInit(b.eq(w, h.cpu2.imem->word(i)));
    }
    // Data memory: each ISA machine mirrors its processor exactly;
    // across the secret boundary only the public half must match.
    for (size_t i = 0; i < ic.dmemSize; ++i) {
        b.assumeInit(b.eq(h.isa1.dmem->word(i), h.cpu1.dmem->word(i)));
        b.assumeInit(b.eq(h.isa2.dmem->word(i), h.cpu2.dmem->word(i)));
        if (i < ic.secretStart())
            b.assumeInit(
                b.eq(h.cpu1.dmem->word(i), h.cpu2.dmem->word(i)));
    }
    if (assume_secrets_differ) {
        std::vector<Sig> diffs;
        for (size_t i = ic.secretStart(); i < ic.dmemSize; ++i)
            diffs.push_back(
                b.ne(h.cpu1.dmem->word(i), h.cpu2.dmem->word(i)));
        b.assumeInit(b.orAll(diffs), "baseline.secretsDiffer");
    }
    // Registers: ISA machines mirror their processors; copies match.
    for (size_t r = 0; r < h.cpu1.archRegs.size(); ++r) {
        b.assumeInit(b.eq(h.isa1.archRegs[r], h.cpu1.archRegs[r]));
        b.assumeInit(b.eq(h.isa2.archRegs[r], h.cpu2.archRegs[r]));
        b.assumeInit(b.eq(h.cpu1.archRegs[r], h.cpu2.archRegs[r]));
    }

    // Contract constraint check: the single-cycle machines execute one
    // instruction per cycle in lock-step, so their per-cycle ISA
    // observations compare directly.
    Sig obs1 = contract::isaObservation(b, h.isa1.commits[0], contract);
    Sig obs2 = contract::isaObservation(b, h.isa2.commits[0], contract);
    Sig isa_diff = b.named(b.ne(obs1, obs2), "baseline.isaDiff");
    b.assume(b.notOf(isa_diff), "baseline.contractHolds");

    // Leakage assertion check: per-cycle equality of the two processors'
    // microarchitectural observations.
    Sig one = b.one();
    Sig uarch1 = contract::uarchObservation(b, h.cpu1, one);
    Sig uarch2 = contract::uarchObservation(b, h.cpu2, one);
    Sig uarch_diff = b.named(b.ne(uarch1, uarch2), "baseline.uarchDiff");
    Sig bad = b.assertAlways(b.notOf(uarch_diff), "baseline.leak");

    h.isaDiff = isa_diff.id;
    h.uarchDiff = uarch_diff.id;
    h.leak = bad.id;
    b.finish();

    // --- Scheme-aware static pre-flight --------------------------------------
    // The four-machine scheme has no pause/drain machinery; what can go
    // wrong structurally is a leakage assertion that never observes the
    // secret (e.g. a mis-wired observation tap) or one that folds to a
    // constant. Both are caught by the taint/constant sweeps.
    rtl::analysis::TaintOptions topts;
    for (size_t i = ic.secretStart(); i < ic.dmemSize; ++i) {
        topts.sources.push_back(h.cpu1.dmemWords[i].id);
        topts.sources.push_back(h.cpu2.dmemWords[i].id);
        topts.sources.push_back(h.isa1.dmemWords[i].id);
        topts.sources.push_back(h.isa2.dmemWords[i].id);
    }
    rtl::analysis::TaintFacts facts =
        rtl::analysis::taintDataflow(circuit, topts);
    rtl::analysis::taintLint(circuit, facts, topts, h.preflight);
    const auto folded = rtl::analysis::foldConstants(circuit);
    if (folded[h.uarchDiff].has_value())
        h.preflight.warn(
            "baseline-config", h.uarchDiff,
            "microarchitectural observation difference folds to "
            "constant " +
                std::to_string(*folded[h.uarchDiff]) +
                ": the leakage check compares nothing");
    return h;
}

} // namespace csl::shadow
