/**
 * @file
 * Contract Shadow Logic (paper Section 5) - the repository's namesake.
 *
 * Composes two copies of a processor with shadow logic that
 *  1. extracts ISA observation traces from the commit stage (Section 5.1),
 *  2. latches the first microarchitectural trace divergence (phase 1),
 *  3. enforces the *instruction inclusion requirement* by snapshotting
 *     the ROB occupancy at divergence and tracking it until drained
 *     (Section 5.2.1),
 *  4. enforces the *synchronization requirement* by pausing the clock of
 *     whichever copy runs ahead in committed instructions, realigning the
 *     extracted ISA traces (Section 5.2.2), with skid buffers that also
 *     handle superscalar commit (Section 5.3, "Supporting Superscalar
 *     Processors"),
 *  5. emits `assume(isa_diff == 0)` and
 *     `assert(!(uarch_diff_phase1 && drained))` (Listing 1).
 *
 * The two requirements can be disabled individually for the ablation
 * experiments (disabling either admits spurious counterexamples).
 */

#ifndef CSL_SHADOW_SHADOW_BUILDER_H_
#define CSL_SHADOW_SHADOW_BUILDER_H_

#include <string>

#include "contract/contract.h"
#include "proc/core_ifc.h"
#include "proc/presets.h"
#include "rtl/analysis/diagnostics.h"
#include "rtl/circuit.h"

namespace csl::shadow {

/** Shadow-logic construction options. */
struct ShadowOptions
{
    contract::Contract contract = contract::Contract::Sandboxing;
    /**
     * UPEC-like mode: assume no instruction ever raises an exception,
     * restricting the speculation source to branch misprediction (models
     * UPEC's user-specified-source limitation, paper Section 7.1.4).
     */
    bool restrictToBranchSpeculation = false;
    /** Ablation: disable the synchronization (pause) machinery. */
    bool enablePause = true;
    /** Ablation: disable the instruction-inclusion (drain) check. */
    bool enableDrainCheck = true;
    /**
     * Extra assumption requiring the two secret regions to differ in at
     * least one word. Sound for attack search (a leak needs differing
     * secrets); the schemes enable it only in attack-focused runs.
     */
    bool assumeSecretsDiffer = false;
    /**
     * Attack-exclusion assumptions for the iterative search of paper
     * Section 7.1.4: forbid programs whose memory instructions use
     * misaligned / out-of-range addresses.
     */
    bool excludeMisaligned = false;
    bool excludeOutOfRange = false;
    /**
     * Emit relational candidate invariants (twin-register equalities,
     * core-provided guarded hints, shadow-state-quiescent predicates)
     * into ShadowHarness::relationalCandidates for the proof pipeline.
     */
    bool emitRelationalCandidates = false;
};

/** Handles to the composed verification circuit. */
struct ShadowHarness
{
    proc::CoreIfc cpu1;
    proc::CoreIfc cpu2;
    rtl::NetId phase2 = rtl::kNoNet;    ///< uarch_diff_phase1 register
    rtl::NetId drained = rtl::kNoNet;   ///< pre-divergence ROBs drained
    rtl::NetId isaDiff = rtl::kNoNet;   ///< contract constraint violation
    rtl::NetId uarchDiff = rtl::kNoNet; ///< per-cycle uarch trace diff
    rtl::NetId pause1 = rtl::kNoNet;
    rtl::NetId pause2 = rtl::kNoNet;
    rtl::NetId leak = rtl::kNoNet;      ///< the bad (assertion) net
    /** Candidate invariants (when requested via ShadowOptions). */
    std::vector<rtl::NetId> relationalCandidates;
    /**
     * The `!phase2` quiescence candidate: when it survives the Houdini
     * pruning, divergence is unreachable and the property follows
     * 1-inductively. The proof pipeline uses it to decide whether a
     * wider invariant window is worth escalating to.
     */
    rtl::NetId quiescentCandidate = rtl::kNoNet;
    /**
     * Scheme-aware static pre-flight findings: disabled pause machinery
     * (pause nets folding to constant), a leakage assertion whose cone
     * misses the drain check, secret-taint reachability facts. Merged
     * with the generic lint report by runVerification and `cslv --lint`.
     */
    rtl::analysis::Report preflight;
    /**
     * Leading candidates in relationalCandidates that the static
     * secret-taint dataflow proves independent of (or contract-
     * declassified from) the secret region - the `untainted -> equal`
     * seeds. They replace the dynamic taint-monitor bits at zero
     * circuit cost; Houdini still validates them like any candidate.
     */
    size_t staticSeedCount = 0;
};

/**
 * Build the two-copy Contract Shadow Logic verification circuit for
 * @p spec into @p circuit (finalizes it).
 */
ShadowHarness buildShadowCircuit(rtl::Circuit &circuit,
                                 const proc::CoreSpec &spec,
                                 const ShadowOptions &options);

} // namespace csl::shadow

#endif // CSL_SHADOW_SHADOW_BUILDER_H_
