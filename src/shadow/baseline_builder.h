/**
 * @file
 * The baseline verification scheme (paper Section 4.1, Fig. 1a): four
 * machines - two single-cycle ISA machines enforcing the contract
 * constraint check and two copies of the target processor checked for
 * microarchitectural trace equality, all in lock-step.
 */

#ifndef CSL_SHADOW_BASELINE_BUILDER_H_
#define CSL_SHADOW_BASELINE_BUILDER_H_

#include "contract/contract.h"
#include "proc/core_ifc.h"
#include "proc/presets.h"
#include "rtl/analysis/diagnostics.h"
#include "rtl/circuit.h"

namespace csl::shadow {

/** Handles to the four-machine baseline circuit. */
struct BaselineHarness
{
    proc::CoreIfc isa1, isa2; ///< single-cycle contract checkers
    proc::CoreIfc cpu1, cpu2; ///< the processors under verification
    rtl::NetId isaDiff = rtl::kNoNet;
    rtl::NetId uarchDiff = rtl::kNoNet;
    rtl::NetId leak = rtl::kNoNet;
    /** Scheme-aware static pre-flight findings (see ShadowHarness). */
    rtl::analysis::Report preflight;
};

/**
 * Build the baseline scheme for @p spec into @p circuit (finalizes it).
 * @p assume_secrets_differ mirrors ShadowOptions::assumeSecretsDiffer.
 */
BaselineHarness buildBaselineCircuit(rtl::Circuit &circuit,
                                     const proc::CoreSpec &spec,
                                     contract::Contract contract,
                                     bool assume_secrets_differ = false);

} // namespace csl::shadow

#endif // CSL_SHADOW_BASELINE_BUILDER_H_
