/**
 * @file
 * The Circuit container: a flat net list plus role annotations.
 */

#ifndef CSL_RTL_CIRCUIT_H_
#define CSL_RTL_CIRCUIT_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "rtl/net.h"

namespace csl::rtl {

/** Aggregate size statistics for reporting (Table 1 analog). */
struct CircuitStats
{
    size_t nets = 0;
    size_t registers = 0;
    size_t stateBits = 0;
    size_t inputs = 0;
    size_t inputBits = 0;
    size_t constraints = 0;
    size_t bads = 0;
};

/**
 * A synchronous word-level circuit.
 *
 * Nets are created through addNet() (normally via the Builder) and are
 * immutable once added, except that a register's next-state operand is
 * connected later via connectReg(). finalize() validates the whole
 * structure; engines require a finalized circuit.
 */
class Circuit
{
  public:
    /** Append a net; returns its id. Operands must already exist. */
    NetId addNet(const Net &net);

    /**
     * Append a net with *no* validation (role bookkeeping still
     * happens). For importers, fuzzers and lint tests that need to
     * materialize malformed netlists; analysis::structuralLint reports
     * what addNet() would have rejected. Engines must never see such a
     * circuit without a clean lint run.
     */
    NetId addNetUnchecked(const Net &net);

    /** Connect register @p reg's next-state input to @p next. */
    void connectReg(NetId reg, NetId next);

    /** Mark a 1-bit net as an every-cycle assumption. */
    void addConstraint(NetId net);

    /** Mark a 1-bit net as an assumption on the initial state only. */
    void addInitConstraint(NetId net);

    /** Mark a 1-bit net as a bad-state signal (assertion failure). */
    void addBad(NetId net);

    /** Attach a debug name to a net (also used by the VCD writer). */
    void setName(NetId net, std::string name);

    /** Name of @p net, or a generated placeholder. */
    std::string name(NetId net) const;

    /** True when @p net carries an explicit (non-generated) name. */
    bool hasName(NetId net) const { return names_.count(net) != 0; }

    /** Look up a net id by exact name; kNoNet when absent. */
    NetId findByName(const std::string &name) const;

    /**
     * Validate structure; must be called before simulation/bit-blasting.
     * A fail-fast wrapper over analysis::structuralLint(): every
     * violation is collected (with net names) and reported in one
     * panic message instead of stopping at the first.
     */
    void finalize();

    bool finalized() const { return finalized_; }

    const Net &net(NetId id) const { return nets_[id]; }
    size_t numNets() const { return nets_.size(); }

    const std::vector<NetId> &registers() const { return registers_; }
    const std::vector<NetId> &inputs() const { return inputs_; }
    const std::vector<NetId> &constraints() const { return constraints_; }
    const std::vector<NetId> &initConstraints() const
    {
        return initConstraints_;
    }
    const std::vector<NetId> &bads() const { return bads_; }

    /** Size statistics for reporting. */
    CircuitStats stats() const;

    /**
     * Mark the nets in the cone of influence of the given roots (all
     * constraints, init constraints and bads plus @p extra_roots).
     * Returns a bitmap indexed by NetId. Convenience wrapper over
     * transform::propertyCone() - the one COI computation everything
     * shares.
     */
    std::vector<bool> coneOfInfluence(
        const std::vector<NetId> &extra_roots = {}) const;

  private:
    void checkId(NetId id) const;

    std::vector<Net> nets_;
    std::vector<NetId> registers_;
    std::vector<NetId> inputs_;
    std::vector<NetId> constraints_;
    std::vector<NetId> initConstraints_;
    std::vector<NetId> bads_;
    std::unordered_map<NetId, std::string> names_;
    std::unordered_map<std::string, NetId> byName_;
    bool finalized_ = false;
};

} // namespace csl::rtl

#endif // CSL_RTL_CIRCUIT_H_
