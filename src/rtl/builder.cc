#include "rtl/builder.h"

#include <algorithm>

#include "base/bits.h"
#include "base/logging.h"

namespace csl::rtl {

// ---------------------------------------------------------------------------
// MemArray

Sig
MemArray::read(Sig addr) const
{
    csl_assert(builder_ && !words_.empty(), "read from unbuilt memory");
    Builder &b = *builder_;
    if (addrBits_ == 0)
        return words_[0];
    csl_assert(addr.width >= addrBits_,
               "memory address too narrow: ", addr.width, " < ", addrBits_);
    Sig index = b.slice(addr, 0, addrBits_);
    // Balanced mux tree over the words, selected by address bits.
    std::vector<Sig> level(words_.begin(), words_.end());
    for (int bit_idx = 0; bit_idx < addrBits_; ++bit_idx) {
        Sig sel = b.bit(index, bit_idx);
        std::vector<Sig> next;
        next.reserve((level.size() + 1) / 2);
        for (size_t i = 0; i < level.size(); i += 2)
            next.push_back(b.mux(sel, level[i + 1], level[i]));
        level.swap(next);
    }
    csl_assert(level.size() == 1, "mux tree reduction failed");
    return level[0];
}

void
MemArray::write(Sig enable, Sig addr, Sig data)
{
    csl_assert(!sealed_, "write port added after seal");
    Builder &b = *builder_;
    csl_assert(data.width == width_, "memory write data width mismatch");
    // Fold the active clock gate into the enable here, so sealing can use
    // raw register connections.
    Sig gated = enable;
    for (Sig g : b.gateStack_)
        gated = b.andOf(gated, g);
    Sig index = addrBits_ == 0 ? Sig{} : b.slice(addr, 0, addrBits_);
    writes_.push_back({gated, index, data});
}

Sig
MemArray::word(size_t index) const
{
    csl_assert(index < words_.size(), "memory word index out of range");
    return words_[index];
}

void
MemArray::seal()
{
    if (sealed_)
        return;
    sealed_ = true;
    Builder &b = *builder_;
    for (size_t i = 0; i < words_.size(); ++i) {
        Sig next = words_[i];
        for (const WritePort &port : writes_) {
            Sig hit = port.addr.valid()
                ? b.andOf(port.enable, b.eqConst(port.addr, uint64_t(i)))
                : port.enable;
            next = b.mux(hit, port.data, next);
        }
        // Bypass the gate stack: gates were folded into write enables.
        b.circuit_.connectReg(words_[i].id, next.id);
    }
}

// ---------------------------------------------------------------------------
// Builder: leaves

uint64_t
Builder::maskValue(int width)
{
    return maskBits(width);
}

size_t
Builder::OpKeyHash::operator()(const OpKey &k) const
{
    size_t h = static_cast<size_t>(k.op);
    auto mix = [&h](uint64_t v) {
        h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    mix(k.width);
    mix(static_cast<uint64_t>(k.a));
    mix(static_cast<uint64_t>(k.b));
    mix(static_cast<uint64_t>(k.c));
    mix(k.imm);
    return h;
}

Sig
Builder::lit(uint64_t value, int width)
{
    value = truncBits(value, width);
    OpKey key{Op::Const, width, kNoNet, kNoNet, kNoNet, value};
    auto it = cse_.find(key);
    if (it != cse_.end())
        return {it->second, width};
    Net n;
    n.op = Op::Const;
    n.width = static_cast<uint8_t>(width);
    n.imm = value;
    NetId id = circuit_.addNet(n);
    cse_.emplace(key, id);
    return {id, width};
}

Sig
Builder::input(const std::string &name, int width)
{
    Net n;
    n.op = Op::Input;
    n.width = static_cast<uint8_t>(width);
    NetId id = circuit_.addNet(n);
    if (!name.empty())
        circuit_.setName(id, name);
    return {id, width};
}

Sig
Builder::reg(const std::string &name, int width, uint64_t init)
{
    Net n;
    n.op = Op::Reg;
    n.width = static_cast<uint8_t>(width);
    n.imm = truncBits(init, width);
    NetId id = circuit_.addNet(n);
    if (!name.empty())
        circuit_.setName(id, name);
    return {id, width};
}

Sig
Builder::symbolicReg(const std::string &name, int width)
{
    Net n;
    n.op = Op::Reg;
    n.width = static_cast<uint8_t>(width);
    n.symbolicInit = true;
    NetId id = circuit_.addNet(n);
    if (!name.empty())
        circuit_.setName(id, name);
    return {id, width};
}

void
Builder::connect(Sig reg_sig, Sig next)
{
    Sig effective = next;
    for (Sig g : gateStack_)
        effective = mux(g, effective, reg_sig);
    circuit_.connectReg(reg_sig.id, effective.id);
}

void
Builder::pushClockGate(Sig enable)
{
    csl_assert(enable.width == 1, "clock gate must be 1 bit");
    gateStack_.push_back(enable);
}

void
Builder::popClockGate()
{
    csl_assert(!gateStack_.empty(), "clock gate stack underflow");
    gateStack_.pop_back();
}

// ---------------------------------------------------------------------------
// Builder: operators with folding and hash-consing

bool
Builder::constValue(Sig s, uint64_t &out) const
{
    const Net &n = circuit_.net(s.id);
    if (n.op != Op::Const)
        return false;
    out = n.imm;
    return true;
}

Sig
Builder::makeOp(Op op, int width, Sig a, Sig b, Sig c, uint64_t imm)
{
    OpKey key{op, width, a.id, b.valid() ? b.id : kNoNet,
              c.valid() ? c.id : kNoNet, imm};
    auto it = cse_.find(key);
    if (it != cse_.end())
        return {it->second, width};
    Net n;
    n.op = op;
    n.width = static_cast<uint8_t>(width);
    n.a = a.id;
    n.b = b.valid() ? b.id : kNoNet;
    n.c = c.valid() ? c.id : kNoNet;
    n.imm = imm;
    NetId id = circuit_.addNet(n);
    cse_.emplace(key, id);
    return {id, width};
}

Sig
Builder::notOf(Sig a)
{
    uint64_t va;
    if (constValue(a, va))
        return lit(~va, a.width);
    // not(not(x)) -> x
    const Net &n = circuit_.net(a.id);
    if (n.op == Op::Not)
        return {n.a, a.width};
    return makeOp(Op::Not, a.width, a);
}

Sig
Builder::andOf(Sig a, Sig b)
{
    csl_assert(a.width == b.width, "and width mismatch");
    uint64_t va, vb;
    bool ca = constValue(a, va), cb = constValue(b, vb);
    if (ca && cb)
        return lit(va & vb, a.width);
    if (ca)
        std::swap(a, b), std::swap(va, vb), std::swap(ca, cb);
    if (cb) {
        if (vb == 0)
            return lit(0, a.width);
        if (vb == maskValue(a.width))
            return a;
    }
    if (a.id == b.id)
        return a;
    if (a.id > b.id)
        std::swap(a, b);
    return makeOp(Op::And, a.width, a, b);
}

Sig
Builder::orOf(Sig a, Sig b)
{
    csl_assert(a.width == b.width, "or width mismatch");
    uint64_t va, vb;
    bool ca = constValue(a, va), cb = constValue(b, vb);
    if (ca && cb)
        return lit(va | vb, a.width);
    if (ca)
        std::swap(a, b), std::swap(va, vb), std::swap(ca, cb);
    if (cb) {
        if (vb == 0)
            return a;
        if (vb == maskValue(a.width))
            return lit(maskValue(a.width), a.width);
    }
    if (a.id == b.id)
        return a;
    if (a.id > b.id)
        std::swap(a, b);
    return makeOp(Op::Or, a.width, a, b);
}

Sig
Builder::xorOf(Sig a, Sig b)
{
    csl_assert(a.width == b.width, "xor width mismatch");
    uint64_t va, vb;
    bool ca = constValue(a, va), cb = constValue(b, vb);
    if (ca && cb)
        return lit(va ^ vb, a.width);
    if (ca)
        std::swap(a, b), std::swap(va, vb), std::swap(ca, cb);
    if (cb) {
        if (vb == 0)
            return a;
        if (vb == maskValue(a.width))
            return notOf(a);
    }
    if (a.id == b.id)
        return lit(0, a.width);
    if (a.id > b.id)
        std::swap(a, b);
    return makeOp(Op::Xor, a.width, a, b);
}

Sig
Builder::mux(Sig sel, Sig then_v, Sig else_v)
{
    csl_assert(sel.width == 1, "mux select must be 1 bit");
    csl_assert(then_v.width == else_v.width, "mux arm width mismatch");
    uint64_t vs;
    if (constValue(sel, vs))
        return vs ? then_v : else_v;
    if (then_v.id == else_v.id)
        return then_v;
    // Boolean special cases keep CNF small for 1-bit muxes.
    if (then_v.width == 1) {
        uint64_t vt, ve;
        bool ct = constValue(then_v, vt), ce = constValue(else_v, ve);
        if (ct && ce)
            return vt ? (ve ? one() : sel) : (ve ? notOf(sel) : zero());
        if (ct)
            return vt ? orOf(sel, else_v) : andOf(notOf(sel), else_v);
        if (ce)
            return ve ? orOf(notOf(sel), then_v) : andOf(sel, then_v);
    }
    return makeOp(Op::Mux, then_v.width, sel, then_v, else_v);
}

Sig
Builder::add(Sig a, Sig b)
{
    csl_assert(a.width == b.width, "add width mismatch");
    uint64_t va, vb;
    bool ca = constValue(a, va), cb = constValue(b, vb);
    if (ca && cb)
        return lit(va + vb, a.width);
    if (ca)
        std::swap(a, b), std::swap(va, vb), std::swap(ca, cb);
    if (cb && vb == 0)
        return a;
    if (a.id > b.id)
        std::swap(a, b);
    return makeOp(Op::Add, a.width, a, b);
}

Sig
Builder::sub(Sig a, Sig b)
{
    csl_assert(a.width == b.width, "sub width mismatch");
    uint64_t va, vb;
    if (constValue(a, va) && constValue(b, vb))
        return lit(va - vb, a.width);
    if (constValue(b, vb) && vb == 0)
        return a;
    if (a.id == b.id)
        return lit(0, a.width);
    return makeOp(Op::Sub, a.width, a, b);
}

Sig
Builder::mul(Sig a, Sig b)
{
    csl_assert(a.width == b.width, "mul width mismatch");
    uint64_t va, vb;
    bool ca = constValue(a, va), cb = constValue(b, vb);
    if (ca && cb)
        return lit(va * vb, a.width);
    if (ca)
        std::swap(a, b), std::swap(va, vb), std::swap(ca, cb);
    if (cb) {
        if (vb == 0)
            return lit(0, a.width);
        if (vb == 1)
            return a;
    }
    if (a.id > b.id)
        std::swap(a, b);
    return makeOp(Op::Mul, a.width, a, b);
}

Sig
Builder::eq(Sig a, Sig b)
{
    csl_assert(a.width == b.width, "eq width mismatch");
    uint64_t va, vb;
    if (constValue(a, va) && constValue(b, vb))
        return lit(va == vb, 1);
    if (a.id == b.id)
        return one();
    if (a.width == 1) {
        // eq over booleans is xnor.
        return notOf(xorOf(a, b));
    }
    if (a.id > b.id)
        std::swap(a, b);
    return makeOp(Op::Eq, 1, a, b);
}

Sig
Builder::ne(Sig a, Sig b)
{
    return notOf(eq(a, b));
}

Sig
Builder::ult(Sig a, Sig b)
{
    csl_assert(a.width == b.width, "ult width mismatch");
    uint64_t va, vb;
    if (constValue(a, va) && constValue(b, vb))
        return lit(va < vb, 1);
    if (a.id == b.id)
        return zero();
    if (constValue(b, vb) && vb == 0)
        return zero();
    return makeOp(Op::Ult, 1, a, b);
}

Sig
Builder::ule(Sig a, Sig b)
{
    return notOf(ult(b, a));
}

Sig
Builder::concat(Sig hi, Sig lo)
{
    csl_assert(hi.width + lo.width <= kMaxNetWidth, "concat too wide");
    uint64_t vh, vl;
    if (constValue(hi, vh) && constValue(lo, vl))
        return lit((vh << lo.width) | vl, hi.width + lo.width);
    return makeOp(Op::Concat, hi.width + lo.width, hi, lo);
}

Sig
Builder::slice(Sig a, int lo, int width)
{
    csl_assert(lo >= 0 && width >= 1 && lo + width <= a.width,
               "slice out of range");
    if (lo == 0 && width == a.width)
        return a;
    uint64_t va;
    if (constValue(a, va))
        return lit(va >> lo, width);
    // slice(concat(hi, lo_part)) that falls entirely in one part.
    const Net &n = circuit_.net(a.id);
    if (n.op == Op::Concat) {
        int lo_width = circuit_.net(n.b).width;
        if (lo + width <= lo_width)
            return slice({n.b, lo_width}, lo, width);
        if (lo >= lo_width)
            return slice({n.a, circuit_.net(n.a).width}, lo - lo_width,
                         width);
    }
    if (n.op == Op::Slice)
        return slice({n.a, circuit_.net(n.a).width},
                     lo + static_cast<int>(n.imm), width);
    return makeOp(Op::Slice, width, a, {}, {}, static_cast<uint64_t>(lo));
}

Sig
Builder::resize(Sig a, int width)
{
    if (width == a.width)
        return a;
    if (width < a.width)
        return slice(a, 0, width);
    return concat(lit(0, width - a.width), a);
}

Sig
Builder::incMod(Sig a, uint64_t modulus)
{
    csl_assert(modulus >= 1 && modulus <= (1ull << a.width),
               "incMod modulus out of range");
    Sig inc = addConst(a, 1);
    if (modulus == (1ull << a.width))
        return inc;
    return mux(eqConst(a, modulus - 1), lit(0, a.width), inc);
}

Sig
Builder::andAll(const std::vector<Sig> &sigs)
{
    if (sigs.empty())
        return one();
    Sig acc = sigs[0];
    for (size_t i = 1; i < sigs.size(); ++i)
        acc = andOf(acc, sigs[i]);
    return acc;
}

Sig
Builder::orAll(const std::vector<Sig> &sigs)
{
    if (sigs.empty())
        return zero();
    Sig acc = sigs[0];
    for (size_t i = 1; i < sigs.size(); ++i)
        acc = orOf(acc, sigs[i]);
    return acc;
}

// ---------------------------------------------------------------------------
// Memories and properties

MemArray &
Builder::memory(const std::string &name, size_t depth, int width,
                bool symbolic_init)
{
    csl_assert(isPowerOfTwo(depth), "memory depth must be a power of two");
    auto mem = std::make_unique<MemArray>();
    mem->builder_ = this;
    mem->width_ = width;
    mem->addrBits_ = 0;
    while ((size_t(1) << mem->addrBits_) < depth)
        ++mem->addrBits_;
    mem->words_.reserve(depth);
    for (size_t i = 0; i < depth; ++i) {
        std::string wname = name + "[" + std::to_string(i) + "]";
        mem->words_.push_back(symbolic_init ? symbolicReg(wname, width)
                                            : reg(wname, width, 0));
    }
    memories_.push_back(std::move(mem));
    return *memories_.back();
}

void
Builder::assume(Sig cond, const std::string &name)
{
    csl_assert(cond.width == 1, "assumption must be 1 bit");
    if (!name.empty())
        circuit_.setName(cond.id, name);
    circuit_.addConstraint(cond.id);
}

void
Builder::assumeInit(Sig cond, const std::string &name)
{
    csl_assert(cond.width == 1, "init assumption must be 1 bit");
    if (!name.empty())
        circuit_.setName(cond.id, name);
    circuit_.addInitConstraint(cond.id);
}

Sig
Builder::assertAlways(Sig cond, const std::string &name)
{
    csl_assert(cond.width == 1, "assertion must be 1 bit");
    Sig bad = notOf(cond);
    if (!name.empty())
        circuit_.setName(bad.id, name);
    circuit_.addBad(bad.id);
    return bad;
}

Sig
Builder::named(Sig sig, const std::string &name)
{
    circuit_.setName(sig.id, name);
    return sig;
}

void
Builder::finish()
{
    for (auto &mem : memories_)
        mem->seal();
    circuit_.finalize();
}

} // namespace csl::rtl
