#include "rtl/passes.h"

#include <ostream>
#include <sstream>

namespace csl::rtl {

void
dumpCircuit(const Circuit &circuit, std::ostream &os)
{
    for (NetId id = 0; id < static_cast<NetId>(circuit.numNets()); ++id) {
        const Net &n = circuit.net(id);
        os << id << ": " << opName(n.op) << "[" << int(n.width) << "]";
        const int arity = opArity(n.op);
        if (n.op == Op::Reg) {
            os << " next=" << n.a;
            os << (n.symbolicInit ? " init=symbolic"
                                  : " init=" + std::to_string(n.imm));
        }
        if (arity >= 1)
            os << " a=" << n.a;
        if (arity >= 2)
            os << " b=" << n.b;
        if (arity >= 3)
            os << " c=" << n.c;
        if (n.op == Op::Const)
            os << " value=" << n.imm;
        if (n.op == Op::Slice)
            os << " lo=" << n.imm;
        os << "  // " << circuit.name(id) << "\n";
    }
    os << "constraints:";
    for (NetId id : circuit.constraints())
        os << " " << id;
    os << "\ninitConstraints:";
    for (NetId id : circuit.initConstraints())
        os << " " << id;
    os << "\nbads:";
    for (NetId id : circuit.bads())
        os << " " << id;
    os << "\n";
}

void
dumpCircuit(const Circuit &circuit, const transform::NetMap &map,
            std::ostream &os)
{
    dumpCircuit(circuit, os);
    os << "reduction fates:\n";
    for (NetId id = 0; id < static_cast<NetId>(circuit.numNets()); ++id) {
        if (static_cast<size_t>(id) >= map.originalNets())
            break;
        os << id << ": ";
        if (auto value = map.constantOf(id))
            os << "const " << *value;
        else if (map.mapped(id) == kNoNet)
            os << "dropped";
        else
            os << "-> " << map.mapped(id);
        os << "  // " << circuit.name(id) << "\n";
    }
}

std::string
summarize(const Circuit &circuit)
{
    CircuitStats s = circuit.stats();
    std::ostringstream oss;
    oss << "nets=" << s.nets << " regs=" << s.registers
        << " stateBits=" << s.stateBits << " inputs=" << s.inputs
        << " inputBits=" << s.inputBits << " constraints=" << s.constraints
        << " bads=" << s.bads << " cone=" << coneSize(circuit);
    return oss.str();
}

std::string
summarize(const Circuit &original, const Circuit &reduced,
          const transform::NetMap &map)
{
    std::ostringstream oss;
    oss << summarize(original) << " | reduced: " << summarize(reduced)
        << " | map: merged=" << map.mergedCount()
        << " const=" << map.constantCount()
        << " dropped=" << map.droppedCount();
    return oss.str();
}

size_t
coneSize(const Circuit &circuit)
{
    auto marked = circuit.coneOfInfluence();
    size_t count = 0;
    for (bool m : marked)
        count += m;
    return count;
}

} // namespace csl::rtl
