/**
 * @file
 * Internal machinery of the reduction passes (not part of the public
 * transform API; include rtl/transform/passes.h instead).
 *
 * Every rewriting pass expresses its result as a Substitution over the
 * input circuit: each net either keeps itself, aliases an earlier
 * representative net, or collapses to a known constant. rebuildCircuit()
 * then materializes the substitution as a fresh compacted Circuit plus
 * the NetMap stage for witness back-mapping. Keeping rebuild in one
 * place keeps every pass's liveness/role/name handling identical.
 */

#ifndef CSL_RTL_TRANSFORM_REWRITE_H_
#define CSL_RTL_TRANSFORM_REWRITE_H_

#include <optional>
#include <vector>

#include "rtl/circuit.h"
#include "rtl/transform/netmap.h"

namespace csl::rtl::transform {

/** A pass result: per-net representative or known constant. */
struct Substitution
{
    explicit Substitution(size_t nets)
        : rep(nets), constant(nets)
    {
        for (size_t i = 0; i < nets; ++i)
            rep[i] = NetId(i);
    }

    /**
     * rep[x] is x's class representative; invariants: rep[x] <= x,
     * rep[rep[x]] == rep[x], and the representative has the same width
     * (and for registers the same init behaviour) as x.
     */
    std::vector<NetId> rep;

    /** Overrides rep when set: the net's proven per-cycle value. A
     * constant on a representative applies to its whole class. */
    std::vector<std::optional<uint64_t>> constant;

    NetId canon(NetId id) const { return rep[id]; }

    /** Constant value of @p id's class, if any. */
    std::optional<uint64_t>
    constantOf(NetId id) const
    {
        const NetId c = rep[id];
        if (constant[id])
            return constant[id];
        return constant[c];
    }

    /** True when the substitution renames nothing and folds nothing. */
    bool trivial() const;
};

/** rebuildCircuit() liveness policy. */
struct RebuildOptions
{
    /** Extra liveness roots (input-circuit ids) besides every
     * constraint, init constraint and bad net. */
    std::vector<NetId> roots;

    /**
     * Keep every surviving register and input live even when nothing in
     * a property cone references it (the rewriting passes' policy; the
     * cone-of-influence pass sets this to false to actually prune).
     */
    bool keepAllState = true;
};

/**
 * Materialize @p sub over @p in as the compacted circuit @p out (roles
 * and names carried over; trivially-true assumptions and never-firing
 * bad nets dropped; out is left unfinalized for further passes).
 * Returns the original->out NetMap stage.
 */
NetMap rebuildCircuit(const Circuit &in, const Substitution &sub,
                      const RebuildOptions &options, Circuit &out);

// --- The pass substitution builders ------------------------------------

/**
 * One round of global constant propagation: analysis::foldConstants()
 * plus constraint-aware assume-propagation (forced free inputs and
 * forced frozen symbolic registers become constants). The driver
 * iterates rounds to a fixed point.
 */
Substitution constPropSubstitution(const Circuit &in);

/**
 * Global structural hashing with commutative-operand normalization and
 * local identity/constant rewrites (x^x, x==x, mux folding, neutral and
 * absorbing constants, double negation, full-width slices).
 */
Substitution structHashSubstitution(const Circuit &in);

/**
 * Equivalent-register merging by optimistic partition refinement over
 * the whole transition structure: start from the coarsest plausible
 * partition (same op/width/concrete init; free inputs and symbolic-init
 * registers are singletons) and split classes by operand classes until
 * stable. Nets left in a shared class provably carry equal values in
 * every cycle of every execution, so merging them is sound without any
 * solver call.
 */
Substitution regMergeSubstitution(const Circuit &in);

} // namespace csl::rtl::transform

#endif // CSL_RTL_TRANSFORM_REWRITE_H_
