/**
 * @file
 * Equivalent-register merging by optimistic partition refinement.
 *
 * The two-copy shadow/baseline products are full of register pairs that
 * evolve identically until the divergence logic taps them. Pessimistic
 * (bottom-up) hashing cannot merge such pairs: each twin's next-state
 * refers to its own copy, so proving them equal needs the conclusion as
 * a hypothesis. Partition refinement runs the induction the right way:
 * start from the coarsest partition that could possibly be value-equal -
 *
 *   - constants grouped by (width, value),
 *   - concrete-init registers by (width, init),
 *   - symbolic-init registers and free inputs as singletons (their
 *     values are unconstrained, so nothing else can be proven equal to
 *     them), except symbolic register pairs explicitly equated by an
 *     assumption (the product builders' "both copies start from the
 *     same state" constraint), which seed a shared class,
 *   - combinational nets by (op, width, imm) -
 *
 * and split classes whose members' operand classes disagree until
 * stable. In a stable partition, same-class nets carry equal values in
 * every cycle of every constraint-satisfying execution (induction over
 * cycles, with an inner induction over net ids inside each cycle), so
 * collapsing each class to its minimum-id representative is sound and
 * needs no solver call. The refinement is the Hopcroft/Moore DFA
 * minimization scheme run on the transition structure; each round either
 * splits a class or terminates, so it runs at most #nets rounds.
 */

#include <array>
#include <map>
#include <numeric>
#include <vector>

#include "base/bits.h"
#include "rtl/transform/rewrite.h"

namespace csl::rtl::transform {

namespace {

bool
commutative(Op op)
{
    switch (op) {
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Add:
      case Op::Mul:
      case Op::Eq:
        return true;
      default:
        return false;
    }
}

/** Min-id union-find used only to seed symbolic-register classes. */
struct UnionFind
{
    explicit UnionFind(size_t n) : parent(n)
    {
        std::iota(parent.begin(), parent.end(), 0);
    }
    NetId find(NetId x)
    {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    }
    void unite(NetId a, NetId b)
    {
        a = find(a);
        b = find(b);
        if (a == b)
            return;
        if (a > b)
            std::swap(a, b);
        parent[b] = a;
    }
    std::vector<NetId> parent;
};

/**
 * Seed equalities between symbolic-init registers from the conjuncts of
 * an assumption root: Eq(r1, r2) under a (possibly nested) And. The
 * refinement still has to prove the next-states compatible; an unsound
 * seed merely fails to survive, so this is purely an enabling hint.
 */
void
seedEqualities(const Circuit &in, NetId root, UnionFind &uf)
{
    std::vector<NetId> stack{root};
    int steps = 0;
    while (!stack.empty() && steps++ < 4096) {
        const NetId id = stack.back();
        stack.pop_back();
        const Net &net = in.net(id);
        if (net.op == Op::And && net.width == 1) {
            stack.push_back(net.a);
            stack.push_back(net.b);
        } else if (net.op == Op::Eq) {
            const Net &a = in.net(net.a);
            const Net &b = in.net(net.b);
            if (a.op == Op::Reg && a.symbolicInit && b.op == Op::Reg &&
                b.symbolicInit && a.width == b.width)
                uf.unite(net.a, net.b);
        }
    }
}

} // namespace

Substitution
regMergeSubstitution(const Circuit &in)
{
    const size_t count = in.numNets();
    Substitution sub(count);
    if (count == 0)
        return sub;

    UnionFind seeds(count);
    for (NetId id : in.constraints())
        seedEqualities(in, id, seeds);
    for (NetId id : in.initConstraints())
        seedEqualities(in, id, seeds);

    // Initial (coarsest plausible) partition.
    std::vector<uint64_t> label(count);
    {
        std::map<std::array<uint64_t, 4>, uint64_t> classes;
        for (NetId id = 0; id < NetId(count); ++id) {
            const Net &net = in.net(id);
            std::array<uint64_t, 4> key{};
            switch (net.op) {
              case Op::Const:
                key = {0, net.width, truncBits(net.imm, net.width), 0};
                break;
              case Op::Input:
                key = {1, uint64_t(id), 0, 0}; // singleton
                break;
              case Op::Reg:
                if (net.symbolicInit)
                    key = {2, uint64_t(seeds.find(id)), 0, 0};
                else
                    key = {3, net.width, truncBits(net.imm, net.width), 0};
                break;
              default:
                key = {4 + uint64_t(net.op), net.width,
                       net.op == Op::Slice ? net.imm : 0, 0};
                break;
            }
            label[id] =
                classes.emplace(key, uint64_t(classes.size())).first->second;
        }
    }

    // Refine by operand classes until stable. Refinement only splits, so
    // an unchanged class count means an unchanged partition.
    size_t numClasses = 0;
    for (;;) {
        std::map<std::array<uint64_t, 4>, uint64_t> classes;
        std::vector<uint64_t> next(count);
        for (NetId id = 0; id < NetId(count); ++id) {
            const Net &net = in.net(id);
            std::array<uint64_t, 4> key = {label[id], 0, 0, 0};
            auto operandLabel = [&](NetId x) -> uint64_t {
                if (x < 0 || static_cast<size_t>(x) >= count)
                    return ~uint64_t(0); // dangling: keep it distinct
                return label[x] + 1;
            };
            if (net.op == Op::Reg) {
                key[1] = operandLabel(net.a);
            } else {
                const int arity = opArity(net.op);
                uint64_t la = arity >= 1 ? operandLabel(net.a) : 0;
                uint64_t lb = arity >= 2 ? operandLabel(net.b) : 0;
                const uint64_t lc = arity >= 3 ? operandLabel(net.c) : 0;
                if (commutative(net.op) && la > lb)
                    std::swap(la, lb);
                key[1] = la;
                key[2] = lb;
                key[3] = lc;
            }
            next[id] =
                classes.emplace(key, uint64_t(classes.size())).first->second;
        }
        const size_t refined = classes.size();
        label = std::move(next);
        if (refined == numClasses)
            break;
        numClasses = refined;
    }

    // Collapse each class to its minimum-id member.
    std::map<uint64_t, NetId> repOf;
    for (NetId id = 0; id < NetId(count); ++id)
        sub.rep[id] = repOf.emplace(label[id], id).first->second;
    return sub;
}

} // namespace csl::rtl::transform
