#include "rtl/transform/netmap.h"

#include "base/logging.h"

namespace csl::rtl::transform {

NetMap
NetMap::identity(size_t nets)
{
    NetMap map;
    map.resize(nets, nets);
    for (size_t i = 0; i < nets; ++i)
        map.fwd_[i] = NetId(i);
    return map;
}

NetId
NetMap::mapped(NetId orig) const
{
    csl_assert(orig >= 0 && size_t(orig) < fwd_.size(),
               "NetMap: original net ", orig, " out of range");
    return fwd_[orig];
}

std::optional<uint64_t>
NetMap::constantOf(NetId orig) const
{
    csl_assert(orig >= 0 && size_t(orig) < constant_.size(),
               "NetMap: original net ", orig, " out of range");
    return constant_[orig];
}

bool
NetMap::isIdentity() const
{
    if (fwd_.size() != reducedNets_)
        return false;
    for (size_t i = 0; i < fwd_.size(); ++i)
        if (fwd_[i] != NetId(i) || constant_[i])
            return false;
    return true;
}

size_t
NetMap::mergedCount() const
{
    std::vector<uint8_t> hits(reducedNets_, 0);
    for (NetId to : fwd_)
        if (to != kNoNet && hits[to] < 2)
            ++hits[to];
    size_t merged = 0;
    for (NetId to : fwd_)
        if (to != kNoNet && hits[to] > 1)
            ++merged;
    return merged;
}

size_t
NetMap::constantCount() const
{
    size_t count = 0;
    for (const auto &c : constant_)
        count += c.has_value();
    return count;
}

size_t
NetMap::droppedCount() const
{
    size_t count = 0;
    for (size_t i = 0; i < fwd_.size(); ++i)
        count += fwd_[i] == kNoNet && !constant_[i];
    return count;
}

NetMap
NetMap::compose(const NetMap &first, const NetMap &second)
{
    csl_assert(first.reducedNets() == second.originalNets(),
               "NetMap composition mismatch: ", first.reducedNets(),
               " mid nets vs ", second.originalNets());
    NetMap out;
    out.resize(first.originalNets(), second.reducedNets());
    for (size_t i = 0; i < first.originalNets(); ++i) {
        const NetId orig = NetId(i);
        const NetId mid = first.fwd_[i];
        if (first.constant_[i])
            out.constant_[i] = first.constant_[i];
        if (mid == kNoNet)
            continue;
        out.fwd_[i] = second.fwd_[mid];
        if (!out.constant_[i] && second.constant_[mid])
            out.constant_[i] = second.constant_[mid];
    }
    return out;
}

void
NetMap::resize(size_t original_nets, size_t reduced_nets)
{
    fwd_.assign(original_nets, kNoNet);
    constant_.assign(original_nets, std::nullopt);
    reducedNets_ = reduced_nets;
}

void
NetMap::setConstant(NetId orig, uint64_t value)
{
    constant_[orig] = value;
}

} // namespace csl::rtl::transform
