/**
 * @file
 * Global structural hashing.
 *
 * The Builder hash-conses on the fly, but its table cannot see across
 * `connectReg` back-edges, across separately-built sub-circuits glued
 * into one product, or sharing that only appears after other passes
 * substitute operands. This pass re-runs value numbering over the whole
 * netlist in one ascending-id sweep: registers and inputs are leaves,
 * commutative operands are order-normalized, and local identity and
 * constant rewrites (x^x=0, x==x, mux folding, neutral and absorbing
 * constants, double negation, full-width slices) fold nets outright.
 * One sweep reaches the fixed point over combinational logic because
 * operands always precede users; the PassManager's default pipeline runs
 * the pass again after register merging to catch identities the merge
 * exposes (e.g. Eq(r1, r2) collapsing to Eq(R, R) = 1).
 */

#include <array>
#include <map>

#include "base/bits.h"
#include "rtl/transform/rewrite.h"

namespace csl::rtl::transform {

namespace {

bool
commutative(Op op)
{
    switch (op) {
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Add:
      case Op::Mul:
      case Op::Eq:
        return true;
      default:
        return false;
    }
}

/** Fold a net whose (substituted) operands are all known constants,
 * mirroring sim::Simulator semantics exactly. */
uint64_t
evalConst(const Circuit &in, const Net &net, uint64_t a, uint64_t b,
          uint64_t c)
{
    uint64_t v = 0;
    switch (net.op) {
      case Op::Not: v = ~a; break;
      case Op::And: v = a & b; break;
      case Op::Or: v = a | b; break;
      case Op::Xor: v = a ^ b; break;
      case Op::Mux: v = a ? b : c; break;
      case Op::Add: v = a + b; break;
      case Op::Sub: v = a - b; break;
      case Op::Mul: v = a * b; break;
      case Op::Eq: v = a == b; break;
      case Op::Ult: v = a < b; break;
      case Op::Concat: v = (a << in.net(net.b).width) | b; break;
      case Op::Slice: v = a >> net.imm; break;
      default: break;
    }
    return truncBits(v, net.width);
}

} // namespace

Substitution
structHashSubstitution(const Circuit &in)
{
    const size_t count = in.numNets();
    Substitution sub(count);

    // (op, width, imm, canonical operands) -> first net with that shape.
    std::map<std::array<uint64_t, 6>, NetId> table;

    auto constOf = [&](NetId x) -> std::optional<uint64_t> {
        if (auto k = sub.constantOf(x))
            return k;
        const NetId canon = sub.canon(x);
        if (in.net(canon).op == Op::Const)
            return truncBits(in.net(canon).imm, in.net(canon).width);
        return std::nullopt;
    };

    for (NetId id = 0; id < NetId(count); ++id) {
        const Net &net = in.net(id);
        if (net.op == Op::Input || net.op == Op::Reg)
            continue; // leaves of the value numbering
        if (net.op == Op::Const) {
            const std::array<uint64_t, 6> key = {
                uint64_t(net.op), net.width,
                truncBits(net.imm, net.width), 0, 0, 0};
            sub.rep[id] = table.emplace(key, id).first->second;
            continue;
        }

        const int arity = opArity(net.op);
        NetId ca = arity >= 1 ? sub.canon(net.a) : kNoNet;
        NetId cb = arity >= 2 ? sub.canon(net.b) : kNoNet;
        const NetId cc = arity >= 3 ? sub.canon(net.c) : kNoNet;
        const auto ka = arity >= 1 ? constOf(net.a) : std::nullopt;
        const auto kb = arity >= 2 ? constOf(net.b) : std::nullopt;
        const auto kc = arity >= 3 ? constOf(net.c) : std::nullopt;
        const uint64_t full = maskBits(net.width);

        std::optional<NetId> alias;
        std::optional<uint64_t> value;

        const bool allConst =
            arity >= 1 && ka && (arity < 2 || kb) && (arity < 3 || kc);
        if (allConst) {
            value = evalConst(in, net, *ka, kb.value_or(0), kc.value_or(0));
        } else {
            switch (net.op) {
              case Op::Not:
                if (in.net(ca).op == Op::Not)
                    alias = sub.canon(in.net(ca).a);
                break;
              case Op::And:
                if (ca == cb)
                    alias = ca;
                else if (ka && *ka == 0)
                    value = 0;
                else if (ka && *ka == full)
                    alias = cb;
                else if (kb && *kb == 0)
                    value = 0;
                else if (kb && *kb == full)
                    alias = ca;
                break;
              case Op::Or:
                if (ca == cb)
                    alias = ca;
                else if (ka && *ka == full)
                    value = full;
                else if (ka && *ka == 0)
                    alias = cb;
                else if (kb && *kb == full)
                    value = full;
                else if (kb && *kb == 0)
                    alias = ca;
                break;
              case Op::Xor:
                if (ca == cb)
                    value = 0;
                else if (ka && *ka == 0)
                    alias = cb;
                else if (kb && *kb == 0)
                    alias = ca;
                break;
              case Op::Add:
                if (ka && *ka == 0)
                    alias = cb;
                else if (kb && *kb == 0)
                    alias = ca;
                break;
              case Op::Sub:
                if (ca == cb)
                    value = 0;
                else if (kb && *kb == 0)
                    alias = ca;
                break;
              case Op::Mul:
                if ((ka && *ka == 0) || (kb && *kb == 0))
                    value = 0;
                else if (ka && *ka == 1)
                    alias = cb;
                else if (kb && *kb == 1)
                    alias = ca;
                break;
              case Op::Eq:
                if (ca == cb)
                    value = 1;
                break;
              case Op::Ult:
                if (ca == cb)
                    value = 0;
                else if (kb && *kb == 0)
                    value = 0; // nothing is unsigned-less than 0
                break;
              case Op::Mux:
                if (ka)
                    alias = *ka ? cb : cc;
                else if (cb == cc)
                    alias = cb;
                break;
              case Op::Slice:
                if (net.imm == 0 && net.width == in.net(ca).width)
                    alias = ca;
                break;
              default:
                break;
            }
        }

        if (value) {
            sub.constant[id] = truncBits(*value, net.width);
            continue;
        }
        if (alias) {
            sub.rep[id] = *alias;
            continue;
        }
        if (commutative(net.op) && ca > cb)
            std::swap(ca, cb);
        const std::array<uint64_t, 6> key = {
            uint64_t(net.op),
            net.width,
            net.op == Op::Slice ? net.imm : 0,
            uint64_t(uint32_t(ca)) + 1,
            uint64_t(uint32_t(cb)) + 1,
            uint64_t(uint32_t(cc)) + 1,
        };
        sub.rep[id] = table.emplace(key, id).first->second;
    }
    return sub;
}

} // namespace csl::rtl::transform
