#include <deque>

#include "rtl/transform/passes.h"

namespace csl::rtl::transform {

std::vector<bool>
coneOfInfluence(const Circuit &circuit, const std::vector<NetId> &roots)
{
    const size_t count = circuit.numNets();
    std::vector<bool> marked(count, false);
    std::deque<NetId> queue;
    auto push = [&](NetId id) {
        // Tolerate out-of-range operands: this helper also backs the
        // lint passes, which run on unfinalized/malformed circuits.
        if (id < 0 || static_cast<size_t>(id) >= count)
            return;
        if (!marked[id]) {
            marked[id] = true;
            queue.push_back(id);
        }
    };
    for (NetId id : roots)
        push(id);
    while (!queue.empty()) {
        const NetId id = queue.front();
        queue.pop_front();
        const Net &net = circuit.net(id);
        if (net.op == Op::Reg) {
            push(net.a); // next-state back-edge
            continue;
        }
        const int arity = opArity(net.op);
        if (arity >= 1)
            push(net.a);
        if (arity >= 2)
            push(net.b);
        if (arity >= 3)
            push(net.c);
    }
    return marked;
}

std::vector<bool>
propertyCone(const Circuit &circuit, const std::vector<NetId> &extra_roots)
{
    std::vector<NetId> roots;
    roots.reserve(circuit.constraints().size() +
                  circuit.initConstraints().size() + circuit.bads().size() +
                  extra_roots.size());
    roots.insert(roots.end(), circuit.constraints().begin(),
                 circuit.constraints().end());
    roots.insert(roots.end(), circuit.initConstraints().begin(),
                 circuit.initConstraints().end());
    roots.insert(roots.end(), circuit.bads().begin(), circuit.bads().end());
    roots.insert(roots.end(), extra_roots.begin(), extra_roots.end());
    return coneOfInfluence(circuit, roots);
}

} // namespace csl::rtl::transform
