/**
 * @file
 * The remap artifact a reduction pipeline produces alongside the reduced
 * Circuit (DESIGN.md "Reduction pipeline").
 *
 * Every rewriting pass shrinks the netlist by substituting nets with
 * representatives (structural hashing, register merging), with constants
 * (constant and assume propagation) or by dropping them outright
 * (cone-of-influence pruning, dead-net sweep). The NetMap records, for
 * every net of the *original* circuit, where it went:
 *
 *  - a net id in the reduced circuit (possibly shared with other
 *    original nets - the merged-net witness),
 *  - a known constant value the pipeline proved the net holds in every
 *    cycle of every constraint-satisfying execution, or
 *  - nothing (the dropped-cone record: the net cannot influence any
 *    assumption or assertion and carries no witness information).
 *
 * The map is what makes reduction transparent to the rest of the stack:
 * counterexample traces found on the reduced circuit are translated back
 * through it (mc::translateTrace) so the witness self-audit replays on
 * the original netlist, VCD dumps keep original names, and diagnostics
 * keep reporting in original-net terms.
 */

#ifndef CSL_RTL_TRANSFORM_NETMAP_H_
#define CSL_RTL_TRANSFORM_NETMAP_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "rtl/net.h"

namespace csl::rtl::transform {

/** Original-to-reduced net correspondence (see file comment). */
class NetMap
{
  public:
    NetMap() = default;

    /** The identity map over @p nets nets (an empty pipeline). */
    static NetMap identity(size_t nets);

    /** Number of nets in the original (domain) circuit. */
    size_t originalNets() const { return fwd_.size(); }

    /** Number of nets in the reduced (codomain) circuit. */
    size_t reducedNets() const { return reducedNets_; }

    /**
     * Reduced net standing for original net @p orig; kNoNet when the
     * net was dropped or exists only as a known constant.
     */
    NetId mapped(NetId orig) const;

    /**
     * Constant value the pipeline proved @p orig holds in every cycle
     * of every constraint-satisfying execution; nullopt otherwise.
     * Used by witness back-mapping to reconstruct the values of
     * propagated-away inputs and registers.
     */
    std::optional<uint64_t> constantOf(NetId orig) const;

    /** True when the original net carries no reduced counterpart and no
     * constant - it lies outside every property cone. */
    bool dropped(NetId orig) const
    {
        return mapped(orig) == kNoNet && !constantOf(orig);
    }

    /** True when every net maps to itself with no constants. */
    bool isIdentity() const;

    /** Original nets sharing a reduced counterpart with another net. */
    size_t mergedCount() const;

    /** Original nets replaced by a proven constant. */
    size_t constantCount() const;

    /** Original nets with no reduced counterpart at all. */
    size_t droppedCount() const;

    /**
     * Compose two stages: @p first maps original->mid, @p second maps
     * mid->reduced; the result maps original->reduced. Constants
     * established by either stage survive (a mid-level constant is a
     * fact about the original net it stands for).
     */
    static NetMap compose(const NetMap &first, const NetMap &second);

    // --- Construction (used by the pass machinery) -----------------------

    void resize(size_t original_nets, size_t reduced_nets);
    void setMapped(NetId orig, NetId reduced) { fwd_[orig] = reduced; }
    void setConstant(NetId orig, uint64_t value);

  private:
    std::vector<NetId> fwd_; ///< original -> reduced, kNoNet = none
    std::vector<std::optional<uint64_t>> constant_;
    size_t reducedNets_ = 0;
};

} // namespace csl::rtl::transform

#endif // CSL_RTL_TRANSFORM_NETMAP_H_
