/**
 * @file
 * Global constant propagation with constraint-aware assume-propagation.
 *
 * Two constant sources combine into one substitution per round:
 *
 *  1. analysis::foldConstants() - the optimistic sequential fixpoint,
 *     sound without looking at constraints at all.
 *  2. Assume-propagation: decomposing every-cycle assumptions (and
 *     init-only assumptions) into forced literals. A forced value may
 *     only substitute a net whose value the environment fully owns and
 *     cannot change later:
 *       - a free Input forced by an every-cycle assumption (the input is
 *         re-forced each cycle), or
 *       - a "frozen" symbolic-init register - one whose next-state is
 *         structurally itself - forced by any assumption (its initial
 *         value persists forever, so a single forced cycle pins it).
 *     Substituting any other register would be unsound: the assumption
 *     constrains the *reachable* executions, not the transition
 *     function, and the witness self-audit replays the transition
 *     function.
 *
 * Forced values are recorded in the NetMap as proven constants, which is
 * how witness back-mapping reconstructs the stimulus for
 * propagated-away inputs. Conflicting forced values mean the assumption
 * set is unsatisfiable; propagation then backs off entirely and leaves
 * the vacuity for the solver (and vacuityLint) to surface.
 */

#include <unordered_map>

#include "base/bits.h"
#include "rtl/analysis/analysis.h"
#include "rtl/transform/rewrite.h"

namespace csl::rtl::transform {

namespace {

struct ForcedLiterals
{
    /** Forced values for free inputs and frozen symbolic registers. */
    std::unordered_map<NetId, uint64_t> values;
    bool conflict = false;
};

void
force(const Circuit &in, NetId id, uint64_t value, bool every_cycle,
      ForcedLiterals &out, int depth)
{
    if (depth > 64 || id < 0 || static_cast<size_t>(id) >= in.numNets())
        return;
    const Net &net = in.net(id);
    value = truncBits(value, net.width);
    const uint64_t full = maskBits(net.width);
    auto literal = [&](NetId x) -> std::optional<uint64_t> {
        if (x >= 0 && static_cast<size_t>(x) < in.numNets() &&
            in.net(x).op == Op::Const)
            return truncBits(in.net(x).imm, in.net(x).width);
        return std::nullopt;
    };
    auto record = [&](uint64_t v) {
        auto [it, inserted] = out.values.emplace(id, v);
        if (!inserted && it->second != v)
            out.conflict = true;
    };
    switch (net.op) {
      case Op::And:
        if (value == full) {
            force(in, net.a, full, every_cycle, out, depth + 1);
            force(in, net.b, full, every_cycle, out, depth + 1);
        }
        break;
      case Op::Or:
        if (value == 0) {
            force(in, net.a, 0, every_cycle, out, depth + 1);
            force(in, net.b, 0, every_cycle, out, depth + 1);
        }
        break;
      case Op::Not:
        force(in, net.a, ~value, every_cycle, out, depth + 1);
        break;
      case Op::Xor:
        if (auto k = literal(net.a))
            force(in, net.b, value ^ *k, every_cycle, out, depth + 1);
        else if (auto k = literal(net.b))
            force(in, net.a, value ^ *k, every_cycle, out, depth + 1);
        break;
      case Op::Eq:
        if (value == 1) {
            if (auto k = literal(net.a))
                force(in, net.b, *k, every_cycle, out, depth + 1);
            else if (auto k = literal(net.b))
                force(in, net.a, *k, every_cycle, out, depth + 1);
        } else if (in.net(net.a).width == 1) {
            // 1-bit disequality pins the free side to the complement.
            if (auto k = literal(net.a))
                force(in, net.b, !*k, every_cycle, out, depth + 1);
            else if (auto k = literal(net.b))
                force(in, net.a, !*k, every_cycle, out, depth + 1);
        }
        break;
      case Op::Input:
        if (every_cycle)
            record(value);
        break;
      case Op::Reg:
        // Frozen symbolic register: next-state is structurally itself,
        // so its (free) initial value persists and one forced cycle -
        // even the initial one - pins it for good.
        if (net.symbolicInit && net.a == id)
            record(value);
        break;
      default:
        break;
    }
}

} // namespace

Substitution
constPropSubstitution(const Circuit &in)
{
    const size_t count = in.numNets();
    Substitution sub(count);

    const auto folded = analysis::foldConstants(in);

    ForcedLiterals forced;
    for (NetId id : in.constraints())
        force(in, id, 1, /*every_cycle=*/true, forced, 0);
    for (NetId id : in.initConstraints())
        force(in, id, 1, /*every_cycle=*/false, forced, 0);

    for (NetId id = 0; id < NetId(count); ++id) {
        if (in.net(id).op == Op::Const)
            continue; // already a literal; nothing to gain
        if (folded[id]) {
            sub.constant[id] = *folded[id];
            continue;
        }
        if (forced.conflict)
            continue;
        auto it = forced.values.find(id);
        if (it != forced.values.end())
            sub.constant[id] = it->second;
    }
    return sub;
}

} // namespace csl::rtl::transform
