#include "rtl/transform/passes.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "base/logging.h"
#include "rtl/transform/rewrite.h"

namespace csl::rtl::transform {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string
trimmed(const std::string &s)
{
    size_t begin = s.find_first_not_of(" \t");
    size_t end = s.find_last_not_of(" \t");
    if (begin == std::string::npos)
        return "";
    return s.substr(begin, end - begin + 1);
}

} // namespace

const std::vector<std::string> &
PassManager::defaultPasses()
{
    // constprop first (cheap, feeds literals to everything), hashing
    // before merging (smaller refinement input), hashing again after
    // merging (Eq(R, R) and friends only appear once twins collapse),
    // then prune. dce is subsumed by coi here but kept so the default
    // list names every cleanup that ran.
    static const std::vector<std::string> kDefault = {
        "constprop", "structhash", "regmerge",
        "structhash", "coi",        "dce",
    };
    return kDefault;
}

const std::vector<std::string> &
PassManager::knownPasses()
{
    static const std::vector<std::string> kKnown = {
        "constprop", "structhash", "regmerge", "coi", "dce",
    };
    return kKnown;
}

std::optional<std::vector<std::string>>
PassManager::parsePipeline(const std::string &pipeline)
{
    const std::string spec = trimmed(pipeline);
    if (spec.empty() || spec == "default")
        return defaultPasses();
    if (spec == "none")
        return std::vector<std::string>{};

    std::vector<std::string> passes;
    std::stringstream stream(spec);
    std::string item;
    while (std::getline(stream, item, ',')) {
        item = trimmed(item);
        if (item.empty())
            continue;
        if (item == "default") {
            const auto &def = defaultPasses();
            passes.insert(passes.end(), def.begin(), def.end());
            continue;
        }
        const auto &known = knownPasses();
        if (std::find(known.begin(), known.end(), item) == known.end())
            return std::nullopt; // unknown pass ("none" mixed in, typos)
        passes.push_back(item);
    }
    return passes;
}

PassManager::PassManager(const std::string &pipeline)
{
    auto parsed = parsePipeline(pipeline);
    csl_assert(parsed.has_value(), "unknown reduction pass in pipeline '",
               pipeline, "'");
    passes_ = std::move(*parsed);
}

std::string
PassManager::normalized() const
{
    std::string out;
    for (const std::string &name : passes_) {
        if (!out.empty())
            out += ',';
        out += name;
    }
    return out;
}

ReductionResult
PassManager::run(const Circuit &original,
                 const std::vector<NetId> &extra_roots) const
{
    csl_assert(original.finalized(),
               "reduction requires a finalized circuit");
    const auto start = Clock::now();

    ReductionResult result;
    result.pipeline = normalized();
    result.map = NetMap::identity(original.numNets());

    Circuit work;
    const Circuit *cur = &original;
    std::vector<NetId> roots = extra_roots;

    auto applyRebuild = [&](const Substitution &sub, bool keep_all_state) {
        RebuildOptions options;
        options.roots = roots;
        options.keepAllState = keep_all_state;
        Circuit next;
        NetMap stage = rebuildCircuit(*cur, sub, options, next);
        std::vector<NetId> mappedRoots;
        for (NetId root : roots)
            if (NetId m = stage.mapped(root); m != kNoNet)
                mappedRoots.push_back(m);
        roots = std::move(mappedRoots);
        result.map = NetMap::compose(result.map, stage);
        work = std::move(next);
        cur = &work;
    };

    for (const std::string &name : passes_) {
        const auto passStart = Clock::now();
        PassStats stats;
        stats.name = name;
        stats.netsBefore = cur->numNets();
        stats.regsBefore = cur->registers().size();

        if (name == "constprop") {
            // Each round's rebuild turns proven values into Const nets,
            // which can force further literals (Eq against a fresh
            // constant); iterate to the fixed point.
            for (int round = 0; round < 8; ++round) {
                Substitution sub = constPropSubstitution(*cur);
                if (sub.trivial())
                    break;
                applyRebuild(sub, /*keep_all_state=*/true);
            }
        } else if (name == "structhash") {
            Substitution sub = structHashSubstitution(*cur);
            if (!sub.trivial())
                applyRebuild(sub, /*keep_all_state=*/true);
        } else if (name == "regmerge") {
            Substitution sub = regMergeSubstitution(*cur);
            if (!sub.trivial())
                applyRebuild(sub, /*keep_all_state=*/true);
        } else if (name == "coi") {
            applyRebuild(Substitution(cur->numNets()),
                         /*keep_all_state=*/false);
        } else if (name == "dce") {
            applyRebuild(Substitution(cur->numNets()),
                         /*keep_all_state=*/true);
        } else {
            csl_panic("unknown reduction pass '", name, "'");
        }

        stats.netsAfter = cur->numNets();
        stats.regsAfter = cur->registers().size();
        stats.seconds = secondsSince(passStart);
        result.passes.push_back(std::move(stats));
    }

    if (cur == &original) {
        result.circuit = original; // empty/no-op pipeline: verbatim copy
    } else {
        work.finalize(); // safety net: a pass bug fails fast, not in a solver
        result.circuit = std::move(work);
    }
    result.seconds = secondsSince(start);
    return result;
}

} // namespace csl::rtl::transform
