/**
 * @file
 * The circuit reduction pipeline: named rewriting passes driven by a
 * PassManager that produces a reduced Circuit plus the NetMap remap
 * artifact (DESIGN.md "Reduction pipeline").
 *
 * The paper's whole pitch is shrinking the model-checking problem so the
 * solver scales; this layer applies the same idea *post construction*:
 * every BMC / k-induction / PDR call in the staged portfolio runs on the
 * reduced netlist, and every witness is translated back through the
 * NetMap so audits, waveforms and diagnostics stay in original-net
 * terms.
 *
 * Pass inventory (names as accepted by parsePipeline / `cslv --passes`):
 *
 *  - constprop   global sequential constant propagation (the sound
 *                optimistic fixpoint of analysis::foldConstants) plus
 *                constraint-aware assume-propagation: literals forced by
 *                every-cycle `addConstraint` nets substitute free inputs
 *                and frozen symbolic registers with their forced
 *                constants (the NetMap records the value for witness
 *                back-mapping); trivially-true assumptions are dropped
 *  - structhash  global structural hashing: the Builder's hash-consing
 *                re-run over the whole netlist with commutative-operand
 *                normalization and local identity rewrites (x^x=0,
 *                x==x, mux folding, neutral/absorbing constants) -
 *                catches sharing the on-the-fly consing missed across
 *                `connectReg` back-edges
 *  - regmerge    equivalent-register merging by optimistic partition
 *                refinement over the whole transition structure: the
 *                two-copy shadow/baseline products are full of
 *                structurally identical register pairs before the
 *                divergence logic, and merging them halves their cones
 *  - coi         cone-of-influence pruning: rebuild only the nets
 *                reachable from assumptions, initial assumptions, bad
 *                nets and the caller's extra roots - a genuinely
 *                smaller netlist, not a bitmap
 *  - dce         dead-net sweep: drop combinational nets with no path
 *                to any root while keeping all state and inputs
 *                (observability-preserving; `coi` subsumes it in the
 *                default pipeline but it stands alone in custom lists)
 *
 * Soundness contract (what the equivalence tests check): for every
 * execution of the original circuit satisfying its constraints, the
 * reduced circuit under the NetMap-translated stimulus produces the
 * same bad-net trace, and vice versa - so verdicts and attack depths
 * are preserved exactly.
 */

#ifndef CSL_RTL_TRANSFORM_PASSES_H_
#define CSL_RTL_TRANSFORM_PASSES_H_

#include <optional>
#include <string>
#include <vector>

#include "rtl/circuit.h"
#include "rtl/transform/netmap.h"

namespace csl::rtl::transform {

/**
 * The one cone-of-influence computation (satellite of ISSUE 4): BFS
 * from @p roots through combinational operands and register next-state
 * back-edges, tolerant of malformed circuits (out-of-range operands are
 * skipped; structural lint reports those). Returns a bitmap indexed by
 * NetId. Circuit::coneOfInfluence, rtl::coneSize, the Unroller's frame
 * bitmap and analysis::coneLint all route through here so they cannot
 * disagree.
 */
std::vector<bool> coneOfInfluence(const Circuit &circuit,
                                  const std::vector<NetId> &roots);

/** coneOfInfluence() seeded with every constraint, init constraint and
 * bad net plus @p extra_roots - the property cone. */
std::vector<bool> propertyCone(const Circuit &circuit,
                               const std::vector<NetId> &extra_roots = {});

/** Sizes before/after one pass, for reports and BENCH_reduction.json. */
struct PassStats
{
    std::string name;
    size_t netsBefore = 0;
    size_t netsAfter = 0;
    size_t regsBefore = 0;
    size_t regsAfter = 0;
    double seconds = 0;
};

/** What a pipeline run produced. */
struct ReductionResult
{
    /** The reduced circuit, finalized and engine-ready. */
    Circuit circuit;
    /** Original -> reduced correspondence (witness back-mapping). */
    NetMap map;
    /** Per-pass statistics in execution order. */
    std::vector<PassStats> passes;
    /** Normalized pipeline ("constprop,structhash,..."); doubles as the
     * reduction fingerprint the journal records and checks on resume. */
    std::string pipeline;
    double seconds = 0;
};

/**
 * Runs a named pass pipeline over finalized circuits. The pipeline
 * string is either an alias ("default", "none") or a comma-separated
 * list of pass names from the inventory above.
 */
class PassManager
{
  public:
    /** Panics on an unparsable pipeline; validate user input with
     * parsePipeline() first. */
    explicit PassManager(const std::string &pipeline = "default");

    /** Parse a pipeline spec; nullopt on an unknown pass name.
     * "default" and "none" expand to their pass lists ("none" to an
     * empty one). */
    static std::optional<std::vector<std::string>> parsePipeline(
        const std::string &pipeline);

    /** The pass names "default" expands to. */
    static const std::vector<std::string> &defaultPasses();

    /** Every known pass name, in canonical order. */
    static const std::vector<std::string> &knownPasses();

    /**
     * Run the pipeline over @p original (must be finalized). Nets in
     * @p extra_roots (original ids) are kept alive through every pass -
     * candidate invariants, observation points - so they stay mappable
     * afterwards. An empty pipeline returns a verbatim copy under the
     * identity NetMap.
     */
    ReductionResult run(const Circuit &original,
                        const std::vector<NetId> &extra_roots = {}) const;

    const std::vector<std::string> &passes() const { return passes_; }

    /** Canonical comma-separated form ("" for the empty pipeline). */
    std::string normalized() const;

  private:
    std::vector<std::string> passes_;
};

} // namespace csl::rtl::transform

#endif // CSL_RTL_TRANSFORM_PASSES_H_
