#include "rtl/transform/rewrite.h"

#include <deque>
#include <map>
#include <set>

#include "base/bits.h"
#include "base/logging.h"

namespace csl::rtl::transform {

bool
Substitution::trivial() const
{
    for (size_t i = 0; i < rep.size(); ++i)
        if (rep[i] != NetId(i) || constant[i])
            return false;
    return true;
}

NetMap
rebuildCircuit(const Circuit &in, const Substitution &sub,
               const RebuildOptions &options, Circuit &out)
{
    const size_t count = in.numNets();
    csl_assert(sub.rep.size() == count, "substitution size mismatch");
    csl_assert(out.numNets() == 0, "rebuild target must be empty");

    // Liveness over canonical nets, traversing *substituted* operands:
    // nets collapsing to constants have no cone, and merged classes are
    // traversed once through their representative (refinement guarantees
    // members' operands share the representative's operand classes).
    std::vector<bool> live(count, false);
    std::deque<NetId> queue;
    auto push = [&](NetId id) {
        if (id < 0 || static_cast<size_t>(id) >= count)
            return;
        if (sub.constantOf(id))
            return;
        const NetId canon = sub.canon(id);
        if (!live[canon]) {
            live[canon] = true;
            queue.push_back(canon);
        }
    };
    for (NetId id : in.constraints())
        push(id);
    for (NetId id : in.initConstraints())
        push(id);
    for (NetId id : in.bads())
        push(id);
    for (NetId id : options.roots)
        push(id);
    if (options.keepAllState) {
        for (NetId id : in.registers())
            push(id);
        for (NetId id : in.inputs())
            push(id);
    }
    while (!queue.empty()) {
        const NetId id = queue.front();
        queue.pop_front();
        const Net &net = in.net(id);
        if (net.op == Op::Reg) {
            push(net.a);
            continue;
        }
        const int arity = opArity(net.op);
        if (arity >= 1)
            push(net.a);
        if (arity >= 2)
            push(net.b);
        if (arity >= 3)
            push(net.c);
    }

    // Emit surviving representatives in ascending original id. Class
    // representatives are class minima, so substituted operands always
    // precede their users; constants are materialized on demand from a
    // per-(width, value) pool.
    std::vector<NetId> newId(count, kNoNet);
    std::map<std::pair<uint8_t, uint64_t>, NetId> constPool;
    auto emitConst = [&](uint8_t width, uint64_t value) -> NetId {
        value = truncBits(value, width);
        const auto key = std::make_pair(width, value);
        auto it = constPool.find(key);
        if (it != constPool.end())
            return it->second;
        Net net;
        net.op = Op::Const;
        net.width = width;
        net.imm = value;
        const NetId id = out.addNet(net);
        constPool.emplace(key, id);
        return id;
    };
    auto resolve = [&](NetId operand) -> NetId {
        const NetId canon = sub.canon(operand);
        if (auto value = sub.constantOf(operand))
            return emitConst(in.net(canon).width, *value);
        csl_assert(newId[canon] != kNoNet,
                   "rebuild: operand ", operand, " has no reduced net");
        return newId[canon];
    };

    for (NetId id = 0; id < NetId(count); ++id) {
        if (sub.canon(id) != id || sub.constantOf(id) || !live[id])
            continue;
        Net net = in.net(id);
        if (net.op == Op::Reg) {
            net.a = kNoNet; // connected below; back-edges may point forward
            newId[id] = out.addNet(net);
            continue;
        }
        const int arity = opArity(net.op);
        if (arity >= 1)
            net.a = resolve(net.a);
        if (arity >= 2)
            net.b = resolve(net.b);
        if (arity >= 3)
            net.c = resolve(net.c);
        newId[id] = out.addNet(net);
    }
    for (NetId reg : in.registers()) {
        if (sub.canon(reg) != reg || sub.constantOf(reg) || !live[reg])
            continue;
        const Net &net = in.net(reg);
        if (net.a != kNoNet)
            out.connectReg(newId[reg], resolve(net.a));
    }

    // Roles. A constraint proven true checks nothing and is dropped; one
    // proven false is KEPT as an explicit constant-0 assumption so the
    // reduced problem stays exactly as vacuous as the original. Dually,
    // a bad net proven 0 can never fire and is dropped, while one proven
    // 1 survives as a constant-1 bad.
    auto emitRoles = [&](const std::vector<NetId> &ids, bool is_bad,
                         auto add) {
        std::set<NetId> seen;
        for (NetId id : ids) {
            NetId reduced;
            if (auto value = sub.constantOf(id)) {
                const bool fires = truncBits(*value, 1) != 0;
                if (is_bad ? !fires : fires)
                    continue;
                reduced = emitConst(1, is_bad ? 1 : 0);
            } else {
                reduced = newId[sub.canon(id)];
            }
            if (seen.insert(reduced).second)
                add(reduced);
        }
    };
    emitRoles(in.constraints(), false,
              [&](NetId id) { out.addConstraint(id); });
    emitRoles(in.initConstraints(), false,
              [&](NetId id) { out.addInitConstraint(id); });
    emitRoles(in.bads(), true, [&](NetId id) { out.addBad(id); });

    // Names: first named class member wins (ties to the VCD writer and
    // diagnostics; merged twins keep the earlier copy's name).
    for (NetId id = 0; id < NetId(count); ++id) {
        if (!in.hasName(id) || sub.constantOf(id))
            continue;
        const NetId reduced = newId[sub.canon(id)];
        if (reduced == kNoNet || out.hasName(reduced))
            continue;
        out.setName(reduced, in.name(id));
    }

    NetMap map;
    map.resize(count, out.numNets());
    for (NetId id = 0; id < NetId(count); ++id) {
        if (auto value = sub.constantOf(id)) {
            map.setConstant(
                id, truncBits(*value, in.net(sub.canon(id)).width));
            continue;
        }
        const NetId reduced = newId[sub.canon(id)];
        if (reduced != kNoNet)
            map.setMapped(id, reduced);
    }
    return map;
}

} // namespace csl::rtl::transform
