/**
 * @file
 * Word-level intermediate representation for synchronous RTL.
 *
 * A Circuit is a finite transition system in the btor2 spirit: a flat list
 * of word-level nets (constants, free inputs, registers and combinational
 * operators) plus designated 1-bit roles:
 *
 *  - constraints:      environment assumptions that must hold every cycle
 *                      (SVA `assume property (@(posedge clk) ...)`);
 *  - initConstraints:  assumptions on the symbolic initial state only;
 *  - bads:             bad-state signals; the safety property is that no
 *                      bad signal is ever 1 (SVA `assert property (!bad)`).
 *
 * Memories are lowered by the Builder into per-word registers plus mux
 *  trees, so the IR itself stays minimal and easy to bit-blast.
 */

#ifndef CSL_RTL_NET_H_
#define CSL_RTL_NET_H_

#include <cstdint>
#include <string>

namespace csl::rtl {

/** Index of a net inside its Circuit. */
using NetId = int32_t;

/** Sentinel for "no net". */
inline constexpr NetId kNoNet = -1;

/** Word-level operators. */
enum class Op : uint8_t {
    Const,  ///< immediate constant (value in Net::imm)
    Input,  ///< free primary input, fresh every cycle
    Reg,    ///< state element; Net::a is its next-state net
    Not,    ///< bitwise complement of a
    And,    ///< a & b
    Or,     ///< a | b
    Xor,    ///< a ^ b
    Mux,    ///< a ? b : c (a is 1 bit)
    Add,    ///< a + b (mod 2^width)
    Sub,    ///< a - b (mod 2^width)
    Mul,    ///< a * b (mod 2^width)
    Eq,     ///< a == b (1-bit result)
    Ult,    ///< a < b unsigned (1-bit result)
    Concat, ///< {a, b}: a forms the high bits, b the low bits
    Slice,  ///< a[imm + width - 1 : imm]
};

/** Human-readable operator mnemonic. */
const char *opName(Op op);

/** Number of net operands an operator takes. */
int opArity(Op op);

/**
 * One IR node. Operand ids always refer to earlier nets except for
 * Reg::a (the next-state net), which may be connected after creation;
 * this is the only place cycles may appear, which keeps net-id order a
 * valid combinational evaluation order.
 */
struct Net
{
    Op op = Op::Const;
    uint8_t width = 1;       ///< result width in bits (1..64)
    bool symbolicInit = false; ///< Reg only: free initial value
    NetId a = kNoNet;
    NetId b = kNoNet;
    NetId c = kNoNet;
    /** Const: value; Slice: low bit offset; Reg: concrete initial value. */
    uint64_t imm = 0;
};

} // namespace csl::rtl

#endif // CSL_RTL_NET_H_
