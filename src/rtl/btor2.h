/**
 * @file
 * BTOR2 export of Circuits.
 *
 * BTOR2 is the word-level model-checking interchange format consumed by
 * open-source checkers (btormc, AVR, Pono). Exporting our verification
 * circuits lets results be cross-checked against independent engines -
 * the open-tool analog of the paper running JasperGold.
 *
 * Mapping: registers become `state` with `init`/`next`; inputs become
 * `input`; constraints become `constraint`; bads become `bad`. Init
 * constraints have no direct BTOR2 equivalent and are encoded via an
 * `initialized` flag state: `constraint (initialized | initConstraint)`
 * would be unsound, so instead each init constraint C becomes
 * `constraint (C | not first)` with `first` a state that starts 1 and
 * stays 0 - i.e. C is enforced exactly in the first frame.
 */

#ifndef CSL_RTL_BTOR2_H_
#define CSL_RTL_BTOR2_H_

#include <iosfwd>

#include "rtl/circuit.h"

namespace csl::rtl {

/** Serialize @p circuit as BTOR2 to @p os. */
void exportBtor2(const Circuit &circuit, std::ostream &os);

} // namespace csl::rtl

#endif // CSL_RTL_BTOR2_H_
