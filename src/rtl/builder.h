/**
 * @file
 * An embedded DSL for constructing Circuits.
 *
 * The Builder provides the role Verilog plays in the paper: processors,
 * defenses and the contract shadow logic are all written against it. It
 * performs light constant folding and structural hash-consing on the fly,
 * lowers memories to per-word registers, and supports register clock
 * gating - the primitive the shadow logic's `pause` signal relies on
 * (Listing 1 of the paper gates `clk` of each cpu instance; we gate every
 * register's next-state mux, which is the synthesizable equivalent).
 */

#ifndef CSL_RTL_BUILDER_H_
#define CSL_RTL_BUILDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtl/circuit.h"

namespace csl::rtl {

class Builder;

/** A lightweight handle to a net: id + width. */
struct Sig
{
    NetId id = kNoNet;
    int width = 0;

    bool valid() const { return id != kNoNet; }
};

/**
 * A memory lowered to registers. Reads are combinational mux trees;
 * writes from all ports are merged into each word's next-state logic when
 * the Builder seals the memory (automatically at finish()).
 */
class MemArray
{
  public:
    /** Combinational read at @p addr (addresses wrap modulo depth). */
    Sig read(Sig addr) const;

    /** Register a synchronous write port. */
    void write(Sig enable, Sig addr, Sig data);

    /** Direct handle to word @p index (for initial-state constraints). */
    Sig word(size_t index) const;

    size_t depth() const { return words_.size(); }
    int width() const { return width_; }

  private:
    friend class Builder;
    Builder *builder_ = nullptr;
    std::vector<Sig> words_;
    int width_ = 0;
    int addrBits_ = 0;
    bool sealed_ = false;

    struct WritePort
    {
        Sig enable;
        Sig addr;
        Sig data;
    };
    std::vector<WritePort> writes_;

    void seal();
};

/** Builder for one Circuit. */
class Builder
{
  public:
    explicit Builder(Circuit &circuit) : circuit_(circuit) {}

    Circuit &circuit() { return circuit_; }

    // --- Leaf nets -----------------------------------------------------

    /** Constant @p value of @p width bits. */
    Sig lit(uint64_t value, int width);

    /** 1-bit constants. */
    Sig one() { return lit(1, 1); }
    Sig zero() { return lit(0, 1); }

    /** Free primary input (fresh nondeterministic value every cycle). */
    Sig input(const std::string &name, int width);

    /** Register with a concrete reset value. */
    Sig reg(const std::string &name, int width, uint64_t init = 0);

    /** Register whose initial value is symbolic (constrained via assume). */
    Sig symbolicReg(const std::string &name, int width);

    /**
     * Connect a register's next-state logic. If a clock gate is active
     * (see pushClockGate), the connection becomes
     * `next = gate ? logic : current`.
     */
    void connect(Sig reg, Sig next);

    // --- Clock gating ---------------------------------------------------

    /**
     * All registers *connected* while a gate is pushed hold their value
     * whenever @p enable is 0. Gates nest (enables AND together).
     */
    void pushClockGate(Sig enable);
    void popClockGate();

    // --- Combinational operators ----------------------------------------

    Sig notOf(Sig a);
    Sig andOf(Sig a, Sig b);
    Sig orOf(Sig a, Sig b);
    Sig xorOf(Sig a, Sig b);
    Sig mux(Sig sel, Sig then_v, Sig else_v);
    Sig add(Sig a, Sig b);
    Sig sub(Sig a, Sig b);
    Sig mul(Sig a, Sig b);
    Sig eq(Sig a, Sig b);
    Sig ne(Sig a, Sig b);
    Sig ult(Sig a, Sig b);
    Sig ule(Sig a, Sig b);
    Sig concat(Sig hi, Sig lo);
    Sig slice(Sig a, int lo, int width);

    // --- Derived helpers --------------------------------------------------

    /** Single bit @p index of @p a. */
    Sig bit(Sig a, int index) { return slice(a, index, 1); }

    /** Zero-extend (or truncate) to @p width. */
    Sig resize(Sig a, int width);

    /** a == value (as unsigned constant). */
    Sig eqConst(Sig a, uint64_t value) { return eq(a, lit(value, a.width)); }

    /** Reduction OR / AND over all bits. */
    Sig redOr(Sig a) { return ne(a, lit(0, a.width)); }
    Sig redAnd(Sig a) { return eq(a, lit(maskValue(a.width), a.width)); }

    /** a + constant. */
    Sig addConst(Sig a, uint64_t value)
    {
        return add(a, lit(value & maskValue(a.width), a.width));
    }

    /** Increment modulo @p modulus (modulus <= 2^width). */
    Sig incMod(Sig a, uint64_t modulus);

    /** AND/OR over a list (returns constant for empty lists). */
    Sig andAll(const std::vector<Sig> &sigs);
    Sig orAll(const std::vector<Sig> &sigs);

    /** Implication a -> b. */
    Sig implies(Sig a, Sig b) { return orOf(notOf(a), b); }

    // --- Memories ---------------------------------------------------------

    /**
     * Create a @p depth x @p width memory. Depth must be a power of two
     * (addresses use exactly log2(depth) bits and wrap). The Builder owns
     * the MemArray; it stays valid until the Builder is destroyed.
     */
    MemArray &memory(const std::string &name, size_t depth, int width,
                     bool symbolic_init);

    // --- Properties --------------------------------------------------------

    /** SVA `assume property`: must hold at every cycle. */
    void assume(Sig cond, const std::string &name = "");

    /** Assumption on the initial state only. */
    void assumeInit(Sig cond, const std::string &name = "");

    /**
     * SVA `assert property`: registers the *negation* of @p cond as a
     * bad-state net. Returns the bad net.
     */
    Sig assertAlways(Sig cond, const std::string &name = "");

    /** Name a signal for debugging / VCD. */
    Sig named(Sig sig, const std::string &name);

    /** Seal all memories and finalize the circuit. */
    void finish();

  private:
    static uint64_t maskValue(int width);

    Sig makeOp(Op op, int width, Sig a, Sig b = {}, Sig c = {},
               uint64_t imm = 0);
    bool constValue(Sig s, uint64_t &out) const;

    Circuit &circuit_;
    std::vector<Sig> gateStack_;
    std::vector<std::unique_ptr<MemArray>> memories_;

    struct OpKey
    {
        Op op;
        int width;
        NetId a, b, c;
        uint64_t imm;
        bool operator==(const OpKey &o) const = default;
    };
    struct OpKeyHash
    {
        size_t operator()(const OpKey &k) const;
    };
    std::unordered_map<OpKey, NetId, OpKeyHash> cse_;

    friend class MemArray;
};

} // namespace csl::rtl

#endif // CSL_RTL_BUILDER_H_
