#include <algorithm>
#include <sstream>

#include "base/bits.h"
#include "rtl/analysis/analysis.h"

namespace csl::rtl::analysis {

namespace {

/** True when @p id names an existing net of @p circuit. */
bool
inRange(const Circuit &circuit, NetId id)
{
    return id >= 0 && static_cast<size_t>(id) < circuit.numNets();
}

std::string
describe(const Circuit &circuit, NetId id)
{
    return "net " + circuit.name(id) + " (id " + std::to_string(id) + ")";
}

/**
 * Depth-first search over combinational edges (every operand edge except
 * a register's next-state backedge), reporting each cycle once.
 */
void
findCombinationalCycles(const Circuit &circuit, Report &report)
{
    const size_t n = circuit.numNets();
    // 0 = unvisited, 1 = on stack, 2 = done.
    std::vector<uint8_t> color(n, 0);
    std::vector<NetId> stack, path;

    auto operands = [&](NetId id, NetId out[3]) -> int {
        const Net &net = circuit.net(id);
        if (net.op == Op::Reg)
            return 0; // sequential edge: registers legally close loops
        int count = 0;
        const int arity = opArity(net.op);
        if (arity >= 1)
            out[count++] = net.a;
        if (arity >= 2)
            out[count++] = net.b;
        if (arity >= 3)
            out[count++] = net.c;
        return count;
    };

    for (size_t root = 0; root < n; ++root) {
        if (color[root] != 0)
            continue;
        // Iterative DFS keeping the explicit path for cycle reporting.
        struct Frame
        {
            NetId id;
            int next = 0;
        };
        std::vector<Frame> frames;
        frames.push_back({static_cast<NetId>(root)});
        color[root] = 1;
        path.push_back(static_cast<NetId>(root));
        while (!frames.empty()) {
            Frame &f = frames.back();
            NetId ops[3];
            const int arity = operands(f.id, ops);
            if (f.next >= arity) {
                color[f.id] = 2;
                frames.pop_back();
                path.pop_back();
                continue;
            }
            NetId next = ops[f.next++];
            if (!inRange(circuit, next))
                continue; // reported separately
            if (color[next] == 1) {
                // Found a cycle: the path suffix from `next` to f.id.
                std::ostringstream oss;
                oss << "combinational cycle through unregistered nets: ";
                auto it = std::find(path.begin(), path.end(), next);
                size_t shown = 0;
                for (; it != path.end() && shown < 8; ++it, ++shown)
                    oss << circuit.name(*it) << " -> ";
                oss << circuit.name(next);
                report.error("structural", next, oss.str());
                continue;
            }
            if (color[next] == 0) {
                color[next] = 1;
                path.push_back(next);
                frames.push_back({next});
            }
        }
    }
}

} // namespace

void
structuralLint(const Circuit &circuit, Report &report)
{
    const size_t n = circuit.numNets();
    for (size_t i = 0; i < n; ++i) {
        const NetId id = static_cast<NetId>(i);
        const Net &net = circuit.net(id);
        const int arity = opArity(net.op);

        if (net.width < 1 || net.width > kMaxNetWidth) {
            report.error("structural", id,
                         describe(circuit, id) + ": width " +
                             std::to_string(int(net.width)) +
                             " out of range [1, 64]");
            continue;
        }

        // Operand sanity; width checks only run on in-range operands.
        bool operands_ok = true;
        auto check_operand = [&](NetId operand, const char *slot) {
            if (net.op == Op::Reg)
                return; // the backedge is checked below
            if (!inRange(circuit, operand)) {
                report.error("structural", id,
                             describe(circuit, id) + ": operand " +
                                 std::string(slot) + " = " +
                                 std::to_string(operand) +
                                 " is out of range");
                operands_ok = false;
            } else if (operand >= id) {
                report.error("structural", id,
                             describe(circuit, id) + ": operand " +
                                 std::string(slot) + " references " +
                                 circuit.name(operand) +
                                 ", a later net (evaluation order "
                                 "violated)");
            }
        };
        if (arity >= 1)
            check_operand(net.a, "a");
        if (arity >= 2)
            check_operand(net.b, "b");
        if (arity >= 3)
            check_operand(net.c, "c");
        if (!operands_ok)
            continue;

        auto width_of = [&](NetId operand) {
            return int(circuit.net(operand).width);
        };
        auto mismatch = [&](const std::string &what) {
            report.error("structural", id,
                         describe(circuit, id) + ": " + what);
        };
        switch (net.op) {
          case Op::Const:
            if (net.imm != truncBits(net.imm, net.width))
                mismatch("constant value wider than declared width");
            break;
          case Op::Input:
            break;
          case Op::Reg:
            if (net.a == kNoNet) {
                report.error("structural", id,
                             "register " + circuit.name(id) +
                                 " has no next-state net (connectReg "
                                 "never called)");
            } else if (!inRange(circuit, net.a)) {
                mismatch("next-state operand out of range");
            } else if (width_of(net.a) != net.width) {
                mismatch("next-state width " +
                         std::to_string(width_of(net.a)) +
                         " != register width " +
                         std::to_string(int(net.width)));
            }
            if (!net.symbolicInit &&
                net.imm != truncBits(net.imm, net.width))
                mismatch("initial value wider than declared width");
            break;
          case Op::Not:
            if (width_of(net.a) != net.width)
                mismatch("operand width mismatch");
            break;
          case Op::And:
          case Op::Or:
          case Op::Xor:
          case Op::Add:
          case Op::Sub:
          case Op::Mul:
            if (width_of(net.a) != net.width ||
                width_of(net.b) != net.width)
                mismatch(std::string(opName(net.op)) +
                         " operand width mismatch");
            break;
          case Op::Eq:
          case Op::Ult:
            if (net.width != 1)
                mismatch(std::string(opName(net.op)) +
                         " result must be 1 bit");
            if (width_of(net.a) != width_of(net.b))
                mismatch(std::string(opName(net.op)) +
                         " operand width mismatch");
            break;
          case Op::Mux:
            if (width_of(net.a) != 1)
                mismatch("mux select must be 1 bit");
            if (width_of(net.b) != net.width ||
                width_of(net.c) != net.width)
                mismatch("mux arm width mismatch");
            break;
          case Op::Concat:
            if (width_of(net.a) + width_of(net.b) != net.width)
                mismatch("concat width mismatch");
            break;
          case Op::Slice:
            if (net.imm + net.width > uint64_t(width_of(net.a)))
                mismatch("slice out of range");
            break;
        }
    }

    // Role nets must exist and be single-bit.
    auto check_role = [&](const std::vector<NetId> &nets,
                          const char *role) {
        for (NetId id : nets) {
            if (!inRange(circuit, id)) {
                report.error("structural", id,
                             std::string(role) + " net id " +
                                 std::to_string(id) + " is out of range");
            } else if (circuit.net(id).width != 1) {
                report.error("structural", id,
                             std::string(role) + " " +
                                 describe(circuit, id) +
                                 " must be 1 bit");
            }
        }
    };
    check_role(circuit.constraints(), "constraint");
    check_role(circuit.initConstraints(), "init constraint");
    check_role(circuit.bads(), "bad");

    findCombinationalCycles(circuit, report);
}

} // namespace csl::rtl::analysis
