#include <sstream>

#include "rtl/analysis/analysis.h"

namespace csl::rtl::analysis {

void
vacuityLint(const Circuit &circuit, Report &report)
{
    const std::vector<std::optional<uint64_t>> vals =
        foldConstants(circuit);
    auto value = [&](NetId id) -> std::optional<uint64_t> {
        if (id < 0 || static_cast<size_t>(id) >= vals.size())
            return std::nullopt;
        return vals[id];
    };

    for (NetId id : circuit.constraints()) {
        std::optional<uint64_t> v = value(id);
        if (!v)
            continue;
        if (*v == 0)
            report.error("vacuity", id,
                         "assume " + circuit.name(id) +
                             " folds to constant false: the environment "
                             "is empty and every property holds "
                             "vacuously");
        else
            report.note("vacuity", id,
                        "assume " + circuit.name(id) +
                            " folds to constant true (redundant)");
    }
    for (NetId id : circuit.initConstraints()) {
        std::optional<uint64_t> v = value(id);
        if (v && *v == 0)
            report.error("vacuity", id,
                         "init assume " + circuit.name(id) +
                             " folds to constant false: no initial "
                             "state satisfies the environment");
    }
    for (NetId id : circuit.bads()) {
        std::optional<uint64_t> v = value(id);
        if (!v)
            continue;
        if (*v == 0)
            report.warn("vacuity", id,
                        "assert " + circuit.name(id) +
                            " folds to constant true: the property "
                            "checks nothing");
        else
            report.error("vacuity", id,
                         "assert " + circuit.name(id) +
                             " folds to constant false: the bad state "
                             "is reached in every cycle");
    }
}

Report
runAll(const Circuit &circuit, const AnalysisOptions &options)
{
    Report report;
    if (options.structural) {
        structuralLint(circuit, report);
        if (report.hasErrors()) {
            // Downstream passes assume a structurally sane netlist
            // (in-range operands, registered cycles only); stop here so
            // the user sees the root cause, not knock-on effects.
            report.note("driver", kNoNet,
                        "structural errors present; cone/vacuity passes "
                        "skipped");
            return report;
        }
    }
    if (options.cone)
        coneLint(circuit, options.extraRoots, report);
    if (options.vacuity)
        vacuityLint(circuit, report);
    return report;
}

} // namespace csl::rtl::analysis
