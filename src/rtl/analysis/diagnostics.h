/**
 * @file
 * Diagnostic report types shared by every static-analysis pass.
 *
 * A pass appends Diagnostics to a Report instead of asserting, so one
 * run surfaces *every* violation with its net name - the fail-fast
 * behaviour the engines need is layered on top (Circuit::finalize()
 * panics with the full formatted report when any Error is present).
 */

#ifndef CSL_RTL_ANALYSIS_DIAGNOSTICS_H_
#define CSL_RTL_ANALYSIS_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "rtl/net.h"

namespace csl::rtl::analysis {

/** How bad a finding is. */
enum class Severity {
    Note,    ///< informational (statistics, clean-pass summaries)
    Warning, ///< suspicious but not fatal (vacuous assert, dead logic)
    Error,   ///< structurally broken; verification results untrustworthy
};

const char *severityName(Severity severity);

/** One finding of one pass, anchored at one net. */
struct Diagnostic
{
    Severity severity = Severity::Note;
    std::string pass;    ///< pass short-name ("structural", "vacuity", ...)
    NetId net = kNoNet;  ///< offending net (kNoNet for circuit-wide facts)
    std::string message; ///< human-readable, net names already resolved
};

/** An ordered collection of diagnostics with formatting helpers. */
struct Report
{
    std::vector<Diagnostic> diagnostics;

    void add(Severity severity, std::string pass, NetId net,
             std::string message);
    void note(std::string pass, NetId net, std::string message);
    void warn(std::string pass, NetId net, std::string message);
    void error(std::string pass, NetId net, std::string message);

    /** Append all of @p other's diagnostics. */
    void merge(const Report &other);

    size_t count(Severity severity) const;
    bool hasErrors() const { return count(Severity::Error) > 0; }
    bool hasWarnings() const { return count(Severity::Warning) > 0; }
    bool empty() const { return diagnostics.empty(); }

    /** "clean" or e.g. "2 errors, 1 warning, 3 notes". */
    std::string summary() const;

    /** Multi-line rendering, one "severity [pass] message" per line. */
    std::string format() const;

    /** format() restricted to diagnostics at least as severe as @p min. */
    std::string format(Severity min) const;
};

} // namespace csl::rtl::analysis

#endif // CSL_RTL_ANALYSIS_DIAGNOSTICS_H_
