#include "base/bits.h"
#include "rtl/analysis/analysis.h"

namespace csl::rtl::analysis {

namespace {

using Value = std::optional<uint64_t>;

bool
inRange(const Circuit &circuit, NetId id)
{
    return id >= 0 && static_cast<size_t>(id) < circuit.numNets();
}

/**
 * Evaluate one combinational net over the three-valued domain
 * {known constant, unknown}. Short-circuit rules (x & 0 = 0, x | ~0 = ~0,
 * x * 0 = 0, mux with equal known arms) recover constants even when one
 * operand is unknown - this is what lets the pass see through the
 * `pause ? held : next` clock-gating muxes of a disabled shadow feature.
 */
Value
evalNet(const Circuit &circuit, const Net &net,
        const std::vector<Value> &vals)
{
    auto operand = [&](NetId id) -> Value {
        if (!inRange(circuit, id))
            return std::nullopt;
        return vals[id];
    };
    const uint64_t mask = maskBits(net.width);
    const Value a = opArity(net.op) >= 1 ? operand(net.a) : std::nullopt;
    const Value b = opArity(net.op) >= 2 ? operand(net.b) : std::nullopt;
    const Value c = opArity(net.op) >= 3 ? operand(net.c) : std::nullopt;

    switch (net.op) {
      case Op::Const:
        return net.imm & mask;
      case Op::Input:
        return std::nullopt;
      case Op::Reg:
        return std::nullopt; // handled by the sequential fixpoint
      case Op::Not:
        return a ? Value(~*a & mask) : std::nullopt;
      case Op::And:
        if ((a && *a == 0) || (b && *b == 0))
            return 0;
        return a && b ? Value(*a & *b) : std::nullopt;
      case Op::Or:
        if ((a && *a == mask) || (b && *b == mask))
            return mask;
        return a && b ? Value(*a | *b) : std::nullopt;
      case Op::Xor:
        return a && b ? Value((*a ^ *b) & mask) : std::nullopt;
      case Op::Mux:
        if (a)
            return *a ? b : c;
        if (b && c && *b == *c)
            return b;
        return std::nullopt;
      case Op::Add:
        return a && b ? Value((*a + *b) & mask) : std::nullopt;
      case Op::Sub:
        return a && b ? Value((*a - *b) & mask) : std::nullopt;
      case Op::Mul:
        if ((a && *a == 0) || (b && *b == 0))
            return 0;
        return a && b ? Value((*a * *b) & mask) : std::nullopt;
      case Op::Eq:
        return a && b ? Value(uint64_t(*a == *b)) : std::nullopt;
      case Op::Ult:
        return a && b ? Value(uint64_t(*a < *b)) : std::nullopt;
      case Op::Concat: {
        if (!a.has_value() || !b.has_value())
            return std::nullopt;
        const uint64_t hi = *a, lo = *b;
        const int lo_width =
            inRange(circuit, net.b) ? circuit.net(net.b).width : 0;
        return (hi << lo_width | lo) & mask;
      }
      case Op::Slice:
        return a ? Value((*a >> net.imm) & mask) : std::nullopt;
    }
    return std::nullopt;
}

} // namespace

std::vector<std::optional<uint64_t>>
foldConstants(const Circuit &circuit)
{
    const size_t n = circuit.numNets();
    std::vector<Value> vals(n);

    // Optimistic start: every concrete-init register holds its initial
    // value forever; symbolic-init registers are unknown from the start.
    for (NetId reg : circuit.registers()) {
        const Net &net = circuit.net(reg);
        if (!net.symbolicInit)
            vals[reg] = net.imm & maskBits(net.width);
    }

    // Demote registers whose next-state disagrees until closure. Each
    // round either demotes at least one register or terminates, so the
    // sweep runs at most #registers + 1 times.
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 0; i < n; ++i) {
            const Net &net = circuit.net(NetId(i));
            if (net.op == Op::Reg || net.op == Op::Input)
                continue;
            vals[i] = evalNet(circuit, net, vals);
        }
        for (NetId reg : circuit.registers()) {
            if (!vals[reg])
                continue;
            const Net &net = circuit.net(reg);
            Value next = inRange(circuit, net.a) ? vals[net.a]
                                                 : std::nullopt;
            if (!next || *next != *vals[reg]) {
                vals[reg] = std::nullopt;
                changed = true;
            }
        }
    }
    return vals;
}

} // namespace csl::rtl::analysis
