#include "rtl/analysis/diagnostics.h"

#include <sstream>

namespace csl::rtl::analysis {

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

void
Report::add(Severity severity, std::string pass, NetId net,
            std::string message)
{
    diagnostics.push_back(
        {severity, std::move(pass), net, std::move(message)});
}

void
Report::note(std::string pass, NetId net, std::string message)
{
    add(Severity::Note, std::move(pass), net, std::move(message));
}

void
Report::warn(std::string pass, NetId net, std::string message)
{
    add(Severity::Warning, std::move(pass), net, std::move(message));
}

void
Report::error(std::string pass, NetId net, std::string message)
{
    add(Severity::Error, std::move(pass), net, std::move(message));
}

void
Report::merge(const Report &other)
{
    diagnostics.insert(diagnostics.end(), other.diagnostics.begin(),
                       other.diagnostics.end());
}

size_t
Report::count(Severity severity) const
{
    size_t n = 0;
    for (const Diagnostic &d : diagnostics)
        if (d.severity == severity)
            ++n;
    return n;
}

std::string
Report::summary() const
{
    const size_t errors = count(Severity::Error);
    const size_t warnings = count(Severity::Warning);
    const size_t notes = count(Severity::Note);
    if (errors == 0 && warnings == 0)
        return notes == 0 ? "clean" : "clean (" + std::to_string(notes) +
                                          " notes)";
    std::ostringstream oss;
    const char *sep = "";
    if (errors) {
        oss << errors << (errors == 1 ? " error" : " errors");
        sep = ", ";
    }
    if (warnings) {
        oss << sep << warnings
            << (warnings == 1 ? " warning" : " warnings");
        sep = ", ";
    }
    if (notes)
        oss << sep << notes << (notes == 1 ? " note" : " notes");
    return oss.str();
}

std::string
Report::format() const
{
    return format(Severity::Note);
}

std::string
Report::format(Severity min) const
{
    std::ostringstream oss;
    for (const Diagnostic &d : diagnostics) {
        if (d.severity < min)
            continue;
        oss << severityName(d.severity) << " [" << d.pass << "] "
            << d.message << "\n";
    }
    return oss.str();
}

} // namespace csl::rtl::analysis
