#include "rtl/analysis/taint_dataflow.h"

#include <sstream>

namespace csl::rtl::analysis {

namespace {

bool
inRange(const Circuit &circuit, NetId id)
{
    return id >= 0 && static_cast<size_t>(id) < circuit.numNets();
}

} // namespace

TaintFacts
taintDataflow(const Circuit &circuit, const TaintOptions &options)
{
    const size_t n = circuit.numNets();
    TaintFacts facts;
    facts.tainted.assign(n, false);

    std::vector<bool> source(n, false), sanitized(n, false);
    for (NetId id : options.sources)
        if (inRange(circuit, id))
            source[id] = true;
    for (NetId id : options.sanitizers)
        if (inRange(circuit, id))
            sanitized[id] = true;

    // One forward sweep in net-id order propagates through all purely
    // combinational paths (operands precede their users); register
    // backedges need further sweeps until no net changes. The taint set
    // only grows, so the loop terminates after at most #registers + 1
    // sweeps.
    bool changed = true;
    while (changed) {
        changed = false;
        ++facts.iterations;
        for (size_t i = 0; i < n; ++i) {
            const NetId id = static_cast<NetId>(i);
            if (facts.tainted[i] || sanitized[i])
                continue;
            const Net &net = circuit.net(id);
            bool taint = source[i];
            auto from = [&](NetId operand) {
                return inRange(circuit, operand) &&
                       facts.tainted[operand] && !sanitized[operand];
            };
            if (net.op == Op::Reg) {
                taint = taint || from(net.a);
            } else {
                const int arity = opArity(net.op);
                if (arity >= 1)
                    taint = taint || from(net.a);
                if (arity >= 2)
                    taint = taint || from(net.b);
                if (arity >= 3)
                    taint = taint || from(net.c);
            }
            if (taint) {
                facts.tainted[i] = true;
                changed = true;
            }
        }
    }
    for (bool bit : facts.tainted)
        if (bit)
            ++facts.taintedCount;
    return facts;
}

void
taintLint(const Circuit &circuit, const TaintFacts &facts,
          const TaintOptions &options, Report &report)
{
    if (options.sources.empty())
        return;
    std::ostringstream oss;
    oss << facts.taintedCount << " of " << circuit.numNets()
        << " nets carry secret taint (" << options.sources.size()
        << " sources, " << options.sanitizers.size()
        << " contract observation points, " << facts.iterations
        << " fixpoint sweeps)";
    report.note("taint", kNoNet, oss.str());

    bool any_bad_tainted = false;
    for (NetId id : circuit.bads())
        any_bad_tainted = any_bad_tainted || facts.isTainted(id);
    if (!any_bad_tainted)
        report.warn("taint", kNoNet,
                    "no secret source reaches any assert cone: the "
                    "property cannot observe the secret (mis-wired "
                    "harness?)");
}

} // namespace csl::rtl::analysis
