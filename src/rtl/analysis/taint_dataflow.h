/**
 * @file
 * Static secret-taint dataflow over the word-level IR.
 *
 * A forward least-fixpoint GLIFT-style analysis: taint enters at the
 * designated source nets (the secret-region memory words in the
 * verification circuits), flows through every combinational operator
 * whose operand carries taint, and around register backedges until the
 * fixpoint. The result over-approximates the dynamic taint monitor of
 * `OoOConfig::taint` (paper Section 8): any bit the monitor can ever
 * raise corresponds to a net this analysis marks tainted, at zero
 * circuit cost (no monitor registers in the model-checked netlist).
 *
 * Contract awareness: the verification schemes *assume* cross-copy
 * equality of the committed ISA observations (the contract constraint
 * check), so for relational reasoning those observation nets act as
 * declassification points. Callers list them as `sanitizers`; their
 * taint is forced clear before propagation continues downstream. The
 * facts derived this way are *relational* ("equal across copies", not
 * "secret-independent") and are therefore only used to seed candidate
 * invariants that the Houdini pruning still validates - a wrong
 * sanitizer costs completeness, never soundness.
 */

#ifndef CSL_RTL_ANALYSIS_TAINT_DATAFLOW_H_
#define CSL_RTL_ANALYSIS_TAINT_DATAFLOW_H_

#include <vector>

#include "rtl/analysis/diagnostics.h"
#include "rtl/circuit.h"

namespace csl::rtl::analysis {

/** Taint-analysis configuration. */
struct TaintOptions
{
    /** Nets where secret taint originates (secret memory words). */
    std::vector<NetId> sources;
    /**
     * Observation points whose taint is cleared (contract-equalized
     * commit observations). Empty for plain secret-flow analysis.
     */
    std::vector<NetId> sanitizers;
};

/** Per-net taint facts (indexed by NetId). */
struct TaintFacts
{
    std::vector<bool> tainted;
    size_t taintedCount = 0;
    size_t iterations = 0; ///< fixpoint sweeps until closure

    bool isTainted(NetId id) const
    {
        return id >= 0 && static_cast<size_t>(id) < tainted.size() &&
               tainted[id];
    }
};

/** Compute the least fixpoint of forward taint propagation. */
TaintFacts taintDataflow(const Circuit &circuit,
                         const TaintOptions &options);

/**
 * Report-level summary of @p facts: per-circuit taint counts, plus a
 * warning when secret sources exist but no assert cone ever observes
 * them (the property cannot depend on the secret - a mis-wired
 * verification harness).
 */
void taintLint(const Circuit &circuit, const TaintFacts &facts,
               const TaintOptions &options, Report &report);

} // namespace csl::rtl::analysis

#endif // CSL_RTL_ANALYSIS_TAINT_DATAFLOW_H_
