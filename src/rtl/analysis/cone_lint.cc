#include <deque>
#include <sstream>

#include "rtl/analysis/analysis.h"

namespace csl::rtl::analysis {

namespace {

bool
inRange(const Circuit &circuit, NetId id)
{
    return id >= 0 && static_cast<size_t>(id) < circuit.numNets();
}

/**
 * BFS cone of @p root (through register next-state backedges), counting
 * the nondeterminism sources inside it: free inputs and symbolic-init
 * registers. Tolerant of malformed circuits (out-of-range operands are
 * skipped; structural lint reports those).
 */
struct ConeFacts
{
    size_t nets = 0;
    size_t inputs = 0;
    size_t symbolicRegs = 0;
};

ConeFacts
coneFacts(const Circuit &circuit, NetId root)
{
    ConeFacts facts;
    if (!inRange(circuit, root))
        return facts;
    std::vector<bool> marked(circuit.numNets(), false);
    std::deque<NetId> queue;
    marked[root] = true;
    queue.push_back(root);
    while (!queue.empty()) {
        NetId id = queue.front();
        queue.pop_front();
        ++facts.nets;
        const Net &net = circuit.net(id);
        if (net.op == Op::Input)
            ++facts.inputs;
        if (net.op == Op::Reg && net.symbolicInit)
            ++facts.symbolicRegs;
        auto push = [&](NetId operand) {
            if (inRange(circuit, operand) && !marked[operand]) {
                marked[operand] = true;
                queue.push_back(operand);
            }
        };
        if (net.op == Op::Reg) {
            push(net.a);
            continue;
        }
        const int arity = opArity(net.op);
        if (arity >= 1)
            push(net.a);
        if (arity >= 2)
            push(net.b);
        if (arity >= 3)
            push(net.c);
    }
    return facts;
}

} // namespace

bool
inCone(const Circuit &circuit, NetId root, NetId target)
{
    if (!inRange(circuit, root) || !inRange(circuit, target))
        return false;
    std::vector<bool> marked(circuit.numNets(), false);
    std::deque<NetId> queue;
    marked[root] = true;
    queue.push_back(root);
    while (!queue.empty()) {
        NetId id = queue.front();
        queue.pop_front();
        if (id == target)
            return true;
        const Net &net = circuit.net(id);
        auto push = [&](NetId operand) {
            if (inRange(circuit, operand) && !marked[operand]) {
                marked[operand] = true;
                queue.push_back(operand);
            }
        };
        if (net.op == Op::Reg) {
            push(net.a);
            continue;
        }
        const int arity = opArity(net.op);
        if (arity >= 1)
            push(net.a);
        if (arity >= 2)
            push(net.b);
        if (arity >= 3)
            push(net.c);
    }
    return false;
}

void
coneLint(const Circuit &circuit, const std::vector<NetId> &extra_roots,
         Report &report)
{
    // Properties whose cone carries no nondeterminism evaluate to the
    // same value stream in every run: the assert (or assume) is
    // structurally constant and almost certainly mis-wired.
    auto check_constant_cone = [&](NetId id, const char *role,
                                   Severity severity) {
        ConeFacts facts = coneFacts(circuit, id);
        if (facts.nets == 0 || facts.inputs > 0 || facts.symbolicRegs > 0)
            return;
        std::ostringstream oss;
        oss << role << " " << circuit.name(id) << ": cone of influence ("
            << facts.nets << " nets) contains no free input and no "
            << "symbolic-init register - the property is structurally "
            << "constant";
        report.add(severity, "cone", id, oss.str());
    };
    for (NetId id : circuit.bads())
        check_constant_cone(id, "assert", Severity::Warning);
    for (NetId id : circuit.constraints())
        check_constant_cone(id, "assume", Severity::Note);

    // Dead logic: nets outside the cone of every assume/assert/extra
    // root contribute nothing to any verification outcome.
    std::vector<NetId> roots;
    for (NetId id : extra_roots)
        if (inRange(circuit, id))
            roots.push_back(id);
    std::vector<bool> live = circuit.coneOfInfluence(roots);
    size_t dead = 0;
    for (bool bit : live)
        if (!bit)
            ++dead;
    if (dead > 0) {
        std::ostringstream oss;
        oss << dead << " of " << circuit.numNets()
            << " nets lie outside every assume/assert/output cone "
            << "(dead logic)";
        report.note("cone", kNoNet, oss.str());
    }
}

} // namespace csl::rtl::analysis
