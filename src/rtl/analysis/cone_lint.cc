#include <sstream>

#include "rtl/analysis/analysis.h"
#include "rtl/transform/passes.h"

namespace csl::rtl::analysis {

namespace {

bool
inRange(const Circuit &circuit, NetId id)
{
    return id >= 0 && static_cast<size_t>(id) < circuit.numNets();
}

/**
 * Cone of @p root (via the shared transform::coneOfInfluence BFS, which
 * is tolerant of malformed circuits), counting the nondeterminism
 * sources inside it: free inputs and symbolic-init registers.
 */
struct ConeFacts
{
    size_t nets = 0;
    size_t inputs = 0;
    size_t symbolicRegs = 0;
};

ConeFacts
coneFacts(const Circuit &circuit, NetId root)
{
    ConeFacts facts;
    if (!inRange(circuit, root))
        return facts;
    const std::vector<bool> marked =
        transform::coneOfInfluence(circuit, {root});
    for (NetId id = 0; id < NetId(circuit.numNets()); ++id) {
        if (!marked[id])
            continue;
        ++facts.nets;
        const Net &net = circuit.net(id);
        if (net.op == Op::Input)
            ++facts.inputs;
        if (net.op == Op::Reg && net.symbolicInit)
            ++facts.symbolicRegs;
    }
    return facts;
}

} // namespace

bool
inCone(const Circuit &circuit, NetId root, NetId target)
{
    if (!inRange(circuit, root) || !inRange(circuit, target))
        return false;
    return transform::coneOfInfluence(circuit, {root})[target];
}

void
coneLint(const Circuit &circuit, const std::vector<NetId> &extra_roots,
         Report &report)
{
    // Properties whose cone carries no nondeterminism evaluate to the
    // same value stream in every run: the assert (or assume) is
    // structurally constant and almost certainly mis-wired.
    auto check_constant_cone = [&](NetId id, const char *role,
                                   Severity severity) {
        ConeFacts facts = coneFacts(circuit, id);
        if (facts.nets == 0 || facts.inputs > 0 || facts.symbolicRegs > 0)
            return;
        std::ostringstream oss;
        oss << role << " " << circuit.name(id) << ": cone of influence ("
            << facts.nets << " nets) contains no free input and no "
            << "symbolic-init register - the property is structurally "
            << "constant";
        report.add(severity, "cone", id, oss.str());
    };
    for (NetId id : circuit.bads())
        check_constant_cone(id, "assert", Severity::Warning);
    for (NetId id : circuit.constraints())
        check_constant_cone(id, "assume", Severity::Note);

    // Dead logic: nets outside the cone of every assume/assert/extra
    // root contribute nothing to any verification outcome.
    std::vector<NetId> roots;
    for (NetId id : extra_roots)
        if (inRange(circuit, id))
            roots.push_back(id);
    std::vector<bool> live = circuit.coneOfInfluence(roots);
    size_t dead = 0;
    for (bool bit : live)
        if (!bit)
            ++dead;
    if (dead > 0) {
        std::ostringstream oss;
        oss << dead << " of " << circuit.numNets()
            << " nets lie outside every assume/assert/output cone "
            << "(dead logic)";
        report.note("cone", kNoNet, oss.str());
    }
}

} // namespace csl::rtl::analysis
