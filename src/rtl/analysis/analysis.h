/**
 * @file
 * Static-analysis pass framework over Circuits.
 *
 * Each pass inspects a (possibly unfinalized) Circuit and appends
 * Diagnostics to a Report; runAll() is the driver the verification
 * pre-flight gate and `cslv --lint` share. The passes never mutate the
 * circuit, so they are safe to run at any construction stage and their
 * cost is linear(-ish) in the net count - cheap enough to run before
 * every model-checking task.
 *
 * Pass inventory:
 *  - structural  combinational cycles, dangling registers, width
 *                discipline, out-of-range operands/constants
 *  - cone        asserts/assumes with no nondeterminism in their cone
 *                (structurally constant properties), dead-logic counts
 *  - vacuity     sequential constant propagation; assumes folding to
 *                constant false (vacuous "proofs") and asserts folding
 *                to constants
 *  - taint       forward least-fixpoint secret-taint dataflow (see
 *                taint_dataflow.h; driven by callers that know the
 *                secret sources, e.g. the shadow builder)
 */

#ifndef CSL_RTL_ANALYSIS_ANALYSIS_H_
#define CSL_RTL_ANALYSIS_ANALYSIS_H_

#include <optional>
#include <vector>

#include "rtl/analysis/diagnostics.h"
#include "rtl/circuit.h"

namespace csl::rtl::analysis {

/** Driver configuration for runAll(). */
struct AnalysisOptions
{
    /**
     * Nets treated as live roots in addition to every assume/assert:
     * candidate invariants, exported observation points, ... Nets
     * outside all root cones are reported as dead logic.
     */
    std::vector<NetId> extraRoots;
    bool structural = true;
    bool cone = true;
    bool vacuity = true;
};

/**
 * Structural lint: width discipline per operator, operand ordering,
 * combinational cycles through unregistered op nets, unconnected
 * register backedges, out-of-range constants. Reports *all* violations
 * (Circuit::addNet's checks re-run in reporting mode, plus the checks
 * only possible on the whole netlist).
 */
void structuralLint(const Circuit &circuit, Report &report);

/**
 * Cone/reachability lint: asserts (and assumes) whose cone of influence
 * contains no free input and no symbolic-init register are structurally
 * constant properties; nets outside every root cone are dead logic.
 */
void coneLint(const Circuit &circuit, const std::vector<NetId> &extra_roots,
              Report &report);

/**
 * True when @p target lies inside the cone of influence of @p root
 * alone (registers traversed through their next-state backedges).
 */
bool inCone(const Circuit &circuit, NetId root, NetId target);

/**
 * Sequential constant sweep: the optimistic least fixpoint assigning
 * each net a known value where one exists in *every* reachable cycle
 * (inputs and symbolic-init registers are unknown; registers are
 * demoted when their next-state disagrees with their init). Ignores
 * environment constraints, so a returned constant is sound.
 */
std::vector<std::optional<uint64_t>> foldConstants(const Circuit &circuit);

/**
 * Static assumption/assertion vacuity via foldConstants(): an assume
 * net folding to constant false makes every property pass vacuously
 * (Error); an assert net folding to a constant checks nothing
 * (Warning/Error depending on polarity).
 */
void vacuityLint(const Circuit &circuit, Report &report);

/** Run the enabled passes in order; returns the merged report. */
Report runAll(const Circuit &circuit, const AnalysisOptions &options = {});

} // namespace csl::rtl::analysis

#endif // CSL_RTL_ANALYSIS_ANALYSIS_H_
