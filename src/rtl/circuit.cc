#include "rtl/circuit.h"

#include "base/bits.h"
#include "base/logging.h"
#include "rtl/analysis/analysis.h"
#include "rtl/transform/passes.h"

namespace csl::rtl {

NetId
Circuit::addNet(const Net &net)
{
    csl_assert(!finalized_, "cannot add nets to a finalized circuit");
    csl_assert(net.width >= 1 && net.width <= kMaxNetWidth,
               "net width out of range: ", int(net.width));

    const NetId id = static_cast<NetId>(nets_.size());
    const int arity = opArity(net.op);

    auto check_operand = [&](NetId operand) {
        csl_assert(operand >= 0 && operand < id,
                   "operand ", operand, " of net ", id,
                   " (", opName(net.op), ") must reference an earlier net");
    };
    if (arity >= 1)
        check_operand(net.a);
    if (arity >= 2)
        check_operand(net.b);
    if (arity >= 3)
        check_operand(net.c);

    // Width discipline per operator.
    switch (net.op) {
      case Op::Const:
        csl_assert(net.imm == truncBits(net.imm, net.width),
                   "constant wider than declared width");
        break;
      case Op::Input:
        break;
      case Op::Reg:
        csl_assert(net.symbolicInit ||
                       net.imm == truncBits(net.imm, net.width),
                   "register init wider than declared width");
        break;
      case Op::Not:
        csl_assert(nets_[net.a].width == net.width, "not width mismatch");
        break;
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Add:
      case Op::Sub:
      case Op::Mul:
        csl_assert(nets_[net.a].width == net.width &&
                       nets_[net.b].width == net.width,
                   opName(net.op), " width mismatch");
        break;
      case Op::Eq:
      case Op::Ult:
        csl_assert(net.width == 1, opName(net.op), " result must be 1 bit");
        csl_assert(nets_[net.a].width == nets_[net.b].width,
                   opName(net.op), " operand width mismatch");
        break;
      case Op::Mux:
        csl_assert(nets_[net.a].width == 1, "mux select must be 1 bit");
        csl_assert(nets_[net.b].width == net.width &&
                       nets_[net.c].width == net.width,
                   "mux arm width mismatch");
        break;
      case Op::Concat:
        csl_assert(nets_[net.a].width + nets_[net.b].width == net.width,
                   "concat width mismatch");
        break;
      case Op::Slice:
        csl_assert(net.imm + net.width <= nets_[net.a].width,
                   "slice out of range");
        break;
    }

    nets_.push_back(net);
    if (net.op == Op::Reg)
        registers_.push_back(id);
    else if (net.op == Op::Input)
        inputs_.push_back(id);
    return id;
}

NetId
Circuit::addNetUnchecked(const Net &net)
{
    csl_assert(!finalized_, "cannot add nets to a finalized circuit");
    const NetId id = static_cast<NetId>(nets_.size());
    nets_.push_back(net);
    if (net.op == Op::Reg)
        registers_.push_back(id);
    else if (net.op == Op::Input)
        inputs_.push_back(id);
    return id;
}

void
Circuit::connectReg(NetId reg, NetId next)
{
    csl_assert(!finalized_, "cannot rewire a finalized circuit");
    checkId(reg);
    checkId(next);
    Net &r = nets_[reg];
    csl_assert(r.op == Op::Reg, "connectReg target is not a register");
    csl_assert(r.a == kNoNet, "register already connected");
    csl_assert(nets_[next].width == r.width,
               "register next-state width mismatch");
    r.a = next;
}

void
Circuit::addConstraint(NetId net)
{
    checkId(net);
    csl_assert(nets_[net].width == 1, "constraint must be 1 bit");
    constraints_.push_back(net);
}

void
Circuit::addInitConstraint(NetId net)
{
    checkId(net);
    csl_assert(nets_[net].width == 1, "init constraint must be 1 bit");
    initConstraints_.push_back(net);
}

void
Circuit::addBad(NetId net)
{
    checkId(net);
    csl_assert(nets_[net].width == 1, "bad signal must be 1 bit");
    bads_.push_back(net);
}

void
Circuit::setName(NetId net, std::string name)
{
    checkId(net);
    byName_[name] = net;
    names_[net] = std::move(name);
}

std::string
Circuit::name(NetId net) const
{
    auto it = names_.find(net);
    if (it != names_.end())
        return it->second;
    return std::string(opName(nets_[net].op)) + "#" + std::to_string(net);
}

NetId
Circuit::findByName(const std::string &name) const
{
    auto it = byName_.find(name);
    return it == byName_.end() ? kNoNet : it->second;
}

void
Circuit::finalize()
{
    csl_assert(!finalized_, "circuit already finalized");
    analysis::Report report;
    analysis::structuralLint(*this, report);
    if (report.hasErrors())
        csl_panic("circuit validation failed (", report.summary(),
                  "):\n",
                  report.format(analysis::Severity::Error));
    finalized_ = true;
}

CircuitStats
Circuit::stats() const
{
    CircuitStats s;
    s.nets = nets_.size();
    s.registers = registers_.size();
    s.inputs = inputs_.size();
    s.constraints = constraints_.size() + initConstraints_.size();
    s.bads = bads_.size();
    for (NetId reg : registers_)
        s.stateBits += nets_[reg].width;
    for (NetId in : inputs_)
        s.inputBits += nets_[in].width;
    return s;
}

std::vector<bool>
Circuit::coneOfInfluence(const std::vector<NetId> &extra_roots) const
{
    return transform::propertyCone(*this, extra_roots);
}

void
Circuit::checkId(NetId id) const
{
    csl_assert(id >= 0 && static_cast<size_t>(id) < nets_.size(),
               "net id ", id, " out of range");
}

} // namespace csl::rtl
