/**
 * @file
 * Reporting passes over Circuits: textual dump and cone-of-influence
 * statistics. This layer stays read-only; structural *rewriting* lives
 * in rtl/transform (the reduction pipeline), and the NetMap-aware
 * overloads here report what the solver actually saw next to what the
 * builders produced, so inventory numbers stay honest under reduction.
 */

#ifndef CSL_RTL_PASSES_H_
#define CSL_RTL_PASSES_H_

#include <iosfwd>
#include <string>

#include "rtl/circuit.h"
#include "rtl/transform/netmap.h"

namespace csl::rtl {

/** Print a human-readable net list (for debugging small circuits). */
void dumpCircuit(const Circuit &circuit, std::ostream &os);

/** dumpCircuit() plus a per-net reduction fate trailer (merged into,
 * proven constant, or dropped) from @p map. */
void dumpCircuit(const Circuit &circuit, const transform::NetMap &map,
                 std::ostream &os);

/** One-line summary such as "nets=1234 regs=56 stateBits=789 ...". */
std::string summarize(const Circuit &circuit);

/**
 * Two-sided summary of @p original and the @p reduced circuit it was
 * rewritten into: original stats, reduced stats, and the NetMap's
 * merged/constant/dropped counts.
 */
std::string summarize(const Circuit &original, const Circuit &reduced,
                      const transform::NetMap &map);

/** Number of nets inside the property cone of influence. */
size_t coneSize(const Circuit &circuit);

} // namespace csl::rtl

#endif // CSL_RTL_PASSES_H_
