/**
 * @file
 * Analysis/reporting passes over Circuits: textual dump and cone-of-
 * influence statistics. Structural rewriting happens on the fly inside
 * the Builder (constant folding, hash-consing), so the pass layer stays
 * read-only.
 */

#ifndef CSL_RTL_PASSES_H_
#define CSL_RTL_PASSES_H_

#include <iosfwd>
#include <string>

#include "rtl/circuit.h"

namespace csl::rtl {

/** Print a human-readable net list (for debugging small circuits). */
void dumpCircuit(const Circuit &circuit, std::ostream &os);

/** One-line summary such as "nets=1234 regs=56 stateBits=789 ...". */
std::string summarize(const Circuit &circuit);

/** Number of nets inside the property cone of influence. */
size_t coneSize(const Circuit &circuit);

} // namespace csl::rtl

#endif // CSL_RTL_PASSES_H_
