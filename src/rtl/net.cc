#include "rtl/net.h"

#include "base/logging.h"

namespace csl::rtl {

const char *
opName(Op op)
{
    switch (op) {
      case Op::Const: return "const";
      case Op::Input: return "input";
      case Op::Reg: return "reg";
      case Op::Not: return "not";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Mux: return "mux";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::Eq: return "eq";
      case Op::Ult: return "ult";
      case Op::Concat: return "concat";
      case Op::Slice: return "slice";
    }
    csl_panic("unknown op");
}

int
opArity(Op op)
{
    switch (op) {
      case Op::Const:
      case Op::Input:
        return 0;
      case Op::Reg: // next-state operand handled separately
        return 0;
      case Op::Not:
      case Op::Slice:
        return 1;
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Add:
      case Op::Sub:
      case Op::Mul:
      case Op::Eq:
      case Op::Ult:
      case Op::Concat:
        return 2;
      case Op::Mux:
        return 3;
    }
    csl_panic("unknown op");
}

} // namespace csl::rtl
