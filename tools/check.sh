#!/bin/sh
# Configure sanitizer builds and run the tier-1 test suite under them.
# Uses separate build trees so the regular build directory keeps its
# cache. Any sanitizer finding aborts the offending test
# (-fno-sanitize-recover=all), so a green run means a clean suite.
#
# Two passes (TSan cannot be combined with ASan):
#   1. ASan/UBSan over the full tier-1 ctest suite
#   2. ThreadSanitizer over the concurrency-bearing binaries (the
#      portfolio scheduler, the mc facade it replaced, the sharded
#      Houdini prune) - zero races is a hard requirement for the
#      first-winner cancellation protocol.
#
# Usage: tools/check.sh [build-dir]   (default: build-san; the TSan
#        tree is <build-dir>-tsan)
set -eu

repo=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-"$repo/build-san"}
tsan_build="${build}-tsan"
jobs=$(nproc 2>/dev/null || echo 4)

cmake -B "$build" -S "$repo" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCSL_SANITIZE=address,undefined
cmake --build "$build" -j "$jobs"
# The wall-clock bench smokes are excluded here: their runtime under a
# sanitizer is dominated by verification runs burning their full (real-
# time) budgets, which tells us nothing the plain-build ctest entries
# don't. resilience_smoke still runs under ASan below, without a ctest
# timeout; the portfolio's concurrency is the TSan pass's job.
ctest --test-dir "$build" --output-on-failure -j "$jobs" \
    -E '^(resilience_smoke|portfolio_smoke|reduction_smoke|campaign_smoke)$'

# The fault-injection matrix exercises the runtime's recovery paths
# (degraded solver, interrupted Houdini, SIGKILL + resume); run it under
# the sanitizers explicitly so those paths stay memory-clean too. It is
# also a ctest entry, but a direct run keeps its output visible and
# fails loudly on its own exit code.
"$build/bench/resilience_smoke"

# Reduction-pipeline gates, explicitly under ASan/UBSan: the randomized
# original-vs-reduced lockstep equivalence suite (the property-based
# soundness argument for every pass), then the --no-reduce vs default
# verdict-identity smoke over the Table-2 cells. The trimmed budget
# absorbs the sanitizer slowdown; a TIMEOUT side downgrades the verdict
# comparison to a warning, but CNF-shrink and depth identity still gate.
"$build/tests/test_transform"
"$build/bench/reduction_bench" --budget 45

# The campaign supervisor's fork/poll/rlimit containment paths, under
# the sanitizers: a crash-injected worker and a SIGKILLed supervisor
# must both leave a campaign that still reports every cell. (The
# RLIMIT_AS unit tests skip themselves in sanitized builds - shadow
# memory and a shrunken address space do not coexist.)
"$build/bench/campaign_smoke"

# --- ThreadSanitizer pass -------------------------------------------------
# Build only the threaded targets (plus their deps) and run the test
# binaries directly: gtest discovery needs no ctest here, and a partial
# build keeps the pass fast.
cmake -B "$tsan_build" -S "$repo" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCSL_SANITIZE=thread
cmake --build "$tsan_build" -j "$jobs" \
    --target test_portfolio test_mc
TSAN_OPTIONS="halt_on_error=1" "$tsan_build/tests/test_portfolio"
TSAN_OPTIONS="halt_on_error=1" "$tsan_build/tests/test_mc"
