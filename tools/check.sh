#!/bin/sh
# Configure a sanitizer build and run the tier-1 test suite under
# ASan/UBSan. Uses a separate build tree so the regular build directory
# keeps its cache. Any sanitizer finding aborts the offending test
# (-fno-sanitize-recover=all), so a green run means a clean suite.
#
# Usage: tools/check.sh [build-dir]   (default: build-san)
set -eu

repo=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-"$repo/build-san"}
jobs=$(nproc 2>/dev/null || echo 4)

cmake -B "$build" -S "$repo" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCSL_SANITIZE=address,undefined
cmake --build "$build" -j "$jobs"
ctest --test-dir "$build" --output-on-failure -j "$jobs"

# The fault-injection matrix exercises the runtime's recovery paths
# (degraded solver, interrupted Houdini, SIGKILL + resume); run it under
# the sanitizers explicitly so those paths stay memory-clean too. It is
# also a ctest entry, but a direct run keeps its output visible and
# fails loudly on its own exit code.
"$build/bench/resilience_smoke"
