/**
 * @file
 * cslv - the command-line front end to the verification library.
 *
 * Examples:
 *   cslv --core simpleooo --defense none --contract sandboxing --hunt
 *   cslv --core simpleooo --defense delay_spectre --contract ct
 *   cslv --core boomlike --hunt --exclude-misaligned
 *   cslv --core inorder --scheme leave
 *   cslv --core simpleooo --export-btor2 out.btor2
 *   cslv --campaign table2.campaign --workers 4 --mem-limit 4096
 *   cslv --campaign-resume table2.campaign
 *
 * Run `cslv --help` for the full flag list.
 */

#include <signal.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "base/deadline.h"
#include "base/parse.h"
#include "rtl/analysis/analysis.h"
#include "rtl/btor2.h"
#include "rtl/transform/passes.h"
#include "shadow/baseline_builder.h"
#include "shadow/shadow_builder.h"
#include "verif/campaign/scheduler.h"
#include "verif/runner.h"
#include "verif/task.h"

namespace {

using namespace csl;

void
usage()
{
    std::printf(R"(cslv - RTL verification for secure speculation (contract shadow logic)

usage: cslv [options]

target selection:
  --core <name>        inorder | simpleooo | ridelite | boomlike
                       (default simpleooo)
  --defense <name>     none | nofwd_fut | nofwd_spectre | delay_fut |
                       delay_spectre | dom (default none)
  --rob <n>            override ROB size
  --regs <n>           override architectural register count
  --dmem <n>           override data-memory words
  --imem <n>           override instruction-memory words

property and scheme:
  --contract <name>    sandboxing | ct (default sandboxing)
  --scheme <name>      shadow | baseline | upec | leave | fuzz
                       (default shadow)

engine:
  --hunt               attack search only (BMC, differing secrets)
  --depth <k>          max BMC depth / induction k (default 24)
  --budget <seconds>   wall-clock budget (default 600)
  --engines <set>      comma-separated engines raced concurrently in
                       every solver stage: bmc, kind, pdr, exh
                       (e.g. --engines=bmc,kind,pdr); first conclusive
                       verdict wins and cancels the rest. Default:
                       proof stages race bmc,kind,pdr; hunt runs bmc
  --houdini-threads <n>  worker threads for the invariant search
                       (default 1)
  --exclude-misaligned forbid misaligned-address programs
  --exclude-oor        forbid out-of-range-address programs

reduction:
  --passes <list>      circuit-reduction passes run before the engines:
                       comma-separated constprop, structhash, regmerge,
                       coi, dce, or the aliases default / none. Default:
                       the default pipeline (on --resume, whatever the
                       journal records). Witnesses are mapped back to
                       the original netlist for audit and reporting
  --no-reduce          shorthand for --passes=none

static analysis:
  --lint               build the verification circuit, run the static-
                       analysis passes (structure, cone reachability,
                       assumption vacuity, secret taint, scheme checks)
                       and print the full diagnostic report; no SAT
  --no-preflight       skip the pre-flight lint gate before engine runs

resilience:
  --journal <file>     checkpoint run state (safe bound, invariants,
                       stage outcomes) to <file> at stage boundaries
  --resume <file>      resume a killed run from its journal; the task is
                       reconstructed from the journal, other target
                       flags are ignored
  --seed <n>           base SAT decision seed (0 = deterministic)
  --retries <n>        seed-perturbed re-solves after a failed witness
                       audit (default 2)
  SIGINT/SIGTERM cancel the run cooperatively: the journal is flushed
  and the partial verdict (deepest safe bound) is printed before exit.

campaign supervisor:
  --campaign <spec>    run a campaign: every `cell` of <spec> in its own
                       worker process; failures are triaged per cell
                       (timeout / OOM / crash / corrupt output), retried
                       with backoff, and degraded down the ladder
                       portfolio -> bmc-only -> light-passes -> bounded
                       instead of losing the cell. Durable state lives
                       next to the spec: <spec>.manifest and per-cell
                       <spec>.<cell>.journal files
  --campaign-resume <spec>  continue a killed campaign from its
                       manifest; finished cells are not re-run
  --workers <n>        parallel worker slots (default 1)
  --cpu-limit <sec>    per-attempt RLIMIT_CPU for workers (default off)
  --mem-limit <mb>     per-attempt RLIMIT_AS for workers (default off)
  exit code: 0 when every cell reached a verdict (degraded counts),
  1 otherwise

other:
  --json                 machine-readable result on stdout
  --export-btor2 <file>  write the verification circuit as BTOR2 and exit
  --help                 this message

exit codes: 0 proof, 2 usage error, 3 diagnosed (lint gate), 4 bounded-
safe, 5 timeout, 10 attack
)");
}

bool
match(const char *arg, const char *flag)
{
    return std::strcmp(arg, flag) == 0;
}

/** Match `--flag=value`, returning the value part on success. */
const char *
matchEq(const char *arg, const char *flag)
{
    size_t n = std::strlen(flag);
    if (std::strncmp(arg, flag, n) == 0 && arg[n] == '=')
        return arg + n + 1;
    return nullptr;
}

/** Checked numeric flag values: a typo'd number is a usage error
 * naming the flag, never a silent zero (std::atoi's failure mode). */
long long
needInt(const char *flag, const char *value)
{
    auto parsed = parseInt(value);
    if (!parsed) {
        std::fprintf(stderr,
                     "bad value '%s' for %s (expected an integer)\n",
                     value, flag);
        std::exit(2);
    }
    return *parsed;
}

long long
needIntAtLeast(const char *flag, const char *value, long long min)
{
    long long parsed = needInt(flag, value);
    if (parsed < min) {
        std::fprintf(stderr, "bad value '%s' for %s (expected >= %lld)\n",
                     value, flag, min);
        std::exit(2);
    }
    return parsed;
}

uint64_t
needUnsigned(const char *flag, const char *value)
{
    auto parsed = parseUnsigned(value);
    if (!parsed) {
        std::fprintf(stderr,
                     "bad value '%s' for %s (expected an unsigned "
                     "integer)\n",
                     value, flag);
        std::exit(2);
    }
    return *parsed;
}

double
needPositiveDouble(const char *flag, const char *value)
{
    auto parsed = parseDouble(value);
    if (!parsed || *parsed <= 0) {
        std::fprintf(stderr,
                     "bad value '%s' for %s (expected a positive "
                     "number)\n",
                     value, flag);
        std::exit(2);
    }
    return *parsed;
}

/** Per-verdict exit code (documented in usage()). */
int
exitCode(mc::Verdict verdict)
{
    switch (verdict) {
      case mc::Verdict::Proof: return 0;
      case mc::Verdict::Diagnosed: return 3;
      case mc::Verdict::BoundedSafe: return 4;
      case mc::Verdict::Timeout: return 5;
      case mc::Verdict::Attack: return 10;
    }
    return 1;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
resultJson(const verif::VerificationResult &result,
           const verif::RunnerResult *runner)
{
    std::ostringstream oss;
    oss << "{\"verdict\":\"" << mc::verdictName(result.verdict) << "\""
        << ",\"seconds\":" << result.seconds
        << ",\"depth\":" << result.depth
        << ",\"conflicts\":" << result.conflicts
        << ",\"detail\":\"" << jsonEscape(result.detail) << "\""
        << ",\"attackReport\":\"" << jsonEscape(result.attackReport)
        << "\"";
    if (runner) {
        oss << ",\"deepestSafeBound\":" << runner->deepestSafeBound
            << ",\"quarantinedWitnesses\":" << runner->quarantinedWitnesses
            << ",\"auditRetries\":" << runner->auditRetries
            << ",\"resumed\":" << (runner->resumed ? "true" : "false")
            << ",\"winner\":\"" << jsonEscape(runner->winningEngine)
            << "\",\"importedFacts\":" << runner->importedFacts
            << ",\"reduction\":{\"pipeline\":\""
            << jsonEscape(runner->reductionPipeline)
            << "\",\"originalNets\":" << runner->originalNets
            << ",\"reducedNets\":" << runner->reducedNets
            << ",\"originalRegs\":" << runner->originalRegs
            << ",\"reducedRegs\":" << runner->reducedRegs
            << ",\"seconds\":" << runner->reductionSeconds << "}"
            << ",\"stages\":[";
        for (size_t i = 0; i < runner->stages.size(); ++i) {
            const verif::StageOutcome &stage = runner->stages[i];
            oss << (i ? "," : "") << "{\"name\":\""
                << jsonEscape(stage.name) << "\",\"verdict\":\""
                << mc::verdictName(stage.verdict)
                << "\",\"depth\":" << stage.depth
                << ",\"seconds\":" << stage.seconds << ",\"winner\":\""
                << jsonEscape(stage.winner) << "\"}";
        }
        oss << "]";
    }
    oss << "}";
    return oss.str();
}

// --- Single-run signal handling -------------------------------------------

/** The run's root cancellation token. The handler only flips its
 * atomic flag; the staged runner observes it cooperatively, flushes
 * the journal at the stage boundary, and returns the partial verdict
 * (deepest safe bound) instead of dying mid-write. */
Deadline g_runDeadline;
volatile sig_atomic_t g_interruptSignal = 0;

void
onRunInterrupt(int sig)
{
    g_interruptSignal = sig;
    g_runDeadline.cancel();
}

void
installRunSignalHandlers()
{
    struct sigaction sa = {};
    sa.sa_handler = onRunInterrupt;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

// --- Campaign mode --------------------------------------------------------

int
runCampaignMode(const std::string &specPath, bool resume, size_t workers,
                double cpuLimit, size_t memLimitBytes, bool json)
{
    std::string error;
    auto spec = verif::campaign::CampaignSpec::loadFile(specPath, &error);
    if (!spec) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
    }
    verif::campaign::CampaignOptions copts;
    copts.workers = workers;
    copts.cpuLimitSeconds = cpuLimit;
    copts.memLimitBytes = memLimitBytes;
    copts.statePrefix = specPath;
    copts.resume = resume;
    if (!json)
        copts.onEvent = [](const std::string &line) {
            std::printf("%s\n", line.c_str());
            std::fflush(stdout);
        };

    if (!json)
        std::printf("campaign %s: %zu cell(s), %zu worker slot(s)%s\n",
                    specPath.c_str(), spec->cells.size(), workers,
                    resume ? " (resumed)" : "");
    verif::campaign::CampaignReport report =
        verif::campaign::runCampaign(*spec, copts);

    if (json) {
        std::printf("%s\n",
                    verif::campaign::reportJson(report).c_str());
    } else {
        std::printf("\ncampaign report (%zu cells, %.1fs wall):\n",
                    report.cells.size(), report.wallSeconds);
        for (const verif::campaign::CellReport &cell : report.cells) {
            std::printf("  %-24s %-8s %-12s depth=%-4zu attempts=%zu "
                        "level=%s wall=%.1fs cpu=%.1fs%s%s\n",
                        cell.name.c_str(), cell.status.c_str(),
                        cell.status == "done"
                            ? mc::verdictName(cell.result.verdict)
                            : "-",
                        cell.result.depth, cell.attempts,
                        cell.degradeLevelLabel.c_str(), cell.wallSeconds,
                        cell.cpuSeconds,
                        cell.failures.empty() ? "" : " failures=",
                        cell.failures.empty()
                            ? ""
                            : std::to_string(cell.failures.size())
                                  .c_str());
        }
        std::printf("summary: %zu done, %zu failed, %zu pending%s\n",
                    report.cells.size() - report.failedCells -
                        report.pendingCells,
                    report.failedCells, report.pendingCells,
                    report.interrupted ? " (interrupted; rerun with "
                                         "--campaign-resume)"
                                       : "");
    }
    return report.complete() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    verif::VerificationTask task;
    verif::RunnerOptions ropts;
    std::string core = "simpleooo";
    std::string defense_name = "none";
    std::string btor2_path;
    std::string resume_path;
    std::string campaign_path;
    bool campaign_resume = false;
    size_t workers = 1;
    double cpu_limit = 0;
    size_t mem_limit_bytes = 0;
    bool lint_only = false;
    bool json = false;
    long long rob = -1, regs = -1, dmem = -1, imem = -1;

    for (int i = 1; i < argc; ++i) {
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", argv[i]);
                std::exit(2);
            }
            return argv[++i];
        };
        // `--flag value` or `--flag=value`, uniformly.
        auto flagValue = [&](const char *flag) -> const char * {
            if (const char *eq = matchEq(argv[i], flag))
                return eq;
            if (match(argv[i], flag))
                return value();
            return nullptr;
        };
        if (match(argv[i], "--help")) {
            usage();
            return 0;
        } else if (const char *v = flagValue("--core")) {
            core = v;
        } else if (const char *v = flagValue("--defense")) {
            defense_name = v;
        } else if (const char *v = flagValue("--rob")) {
            rob = needIntAtLeast("--rob", v, 1);
        } else if (const char *v = flagValue("--regs")) {
            regs = needIntAtLeast("--regs", v, 1);
        } else if (const char *v = flagValue("--dmem")) {
            dmem = needIntAtLeast("--dmem", v, 1);
        } else if (const char *v = flagValue("--imem")) {
            imem = needIntAtLeast("--imem", v, 1);
        } else if (const char *v = flagValue("--contract")) {
            auto parsed = verif::campaign::parseContractName(v);
            if (!parsed) {
                std::fprintf(stderr, "unknown contract '%s'\n", v);
                return 2;
            }
            task.contract = *parsed;
        } else if (const char *v = flagValue("--scheme")) {
            auto parsed = verif::campaign::parseSchemeName(v);
            if (!parsed) {
                std::fprintf(stderr, "unknown scheme '%s'\n", v);
                return 2;
            }
            task.scheme = *parsed;
        } else if (match(argv[i], "--hunt")) {
            task.tryProof = false;
            task.assumeSecretsDiffer = true;
            task.maxDepth = 14;
        } else if (const char *v = flagValue("--depth")) {
            task.maxDepth = size_t(needIntAtLeast("--depth", v, 1));
        } else if (const char *v = flagValue("--budget")) {
            task.timeoutSeconds = needPositiveDouble("--budget", v);
        } else if (const char *v = flagValue("--engines")) {
            auto kinds = mc::parseEngineList(v);
            if (!kinds || kinds->empty()) {
                std::fprintf(stderr,
                             "bad engine set '%s' (expected a comma-"
                             "separated subset of bmc,kind,pdr,exh)\n",
                             v);
                return 2;
            }
            ropts.engines = *kinds;
        } else if (const char *v = flagValue("--passes")) {
            if (!rtl::transform::PassManager::parsePipeline(v)) {
                std::fprintf(stderr,
                             "bad pass pipeline '%s' (expected a comma-"
                             "separated list of constprop,structhash,"
                             "regmerge,coi,dce or default/none)\n",
                             v);
                return 2;
            }
            ropts.passes = v;
        } else if (match(argv[i], "--no-reduce")) {
            ropts.passes = "none";
        } else if (const char *v = flagValue("--houdini-threads")) {
            ropts.houdiniThreads =
                size_t(needIntAtLeast("--houdini-threads", v, 1));
        } else if (match(argv[i], "--exclude-misaligned")) {
            task.excludeMisaligned = true;
        } else if (match(argv[i], "--exclude-oor")) {
            task.excludeOutOfRange = true;
        } else if (match(argv[i], "--lint")) {
            lint_only = true;
        } else if (match(argv[i], "--no-preflight")) {
            task.preflight = false;
        } else if (const char *v = flagValue("--journal")) {
            ropts.journalPath = v;
        } else if (const char *v = flagValue("--resume")) {
            resume_path = v;
        } else if (const char *v = flagValue("--seed")) {
            ropts.decisionSeed = needUnsigned("--seed", v);
        } else if (const char *v = flagValue("--retries")) {
            ropts.maxAuditRetries =
                size_t(needIntAtLeast("--retries", v, 0));
        } else if (const char *v = flagValue("--campaign")) {
            campaign_path = v;
        } else if (const char *v = flagValue("--campaign-resume")) {
            campaign_path = v;
            campaign_resume = true;
        } else if (const char *v = flagValue("--workers")) {
            workers = size_t(needIntAtLeast("--workers", v, 1));
        } else if (const char *v = flagValue("--cpu-limit")) {
            cpu_limit = needPositiveDouble("--cpu-limit", v);
        } else if (const char *v = flagValue("--mem-limit")) {
            mem_limit_bytes =
                size_t(needIntAtLeast("--mem-limit", v, 1)) * 1024 *
                1024;
        } else if (match(argv[i], "--json")) {
            json = true;
        } else if (const char *v = flagValue("--export-btor2")) {
            btor2_path = v;
        } else {
            std::fprintf(stderr, "unknown flag '%s' (try --help)\n",
                         argv[i]);
            return 2;
        }
    }

    if (!campaign_path.empty())
        return runCampaignMode(campaign_path, campaign_resume, workers,
                               cpu_limit, mem_limit_bytes, json);

    auto defense_parsed = verif::campaign::parseDefenseName(defense_name);
    if (!defense_parsed) {
        std::fprintf(stderr, "unknown defense '%s'\n",
                     defense_name.c_str());
        return 2;
    }
    defense::Defense def = *defense_parsed;

    auto core_parsed = verif::campaign::parseCoreName(core, def);
    if (!core_parsed) {
        std::fprintf(stderr, "unknown core '%s'\n", core.c_str());
        return 2;
    }
    task.core = *core_parsed;
    if (rob > 0)
        task.core.ooo.robSize = int(rob);
    if (regs > 0)
        task.core.ooo.isa.regCount = int(regs);
    if (dmem > 0)
        task.core.ooo.isa.dmemSize = size_t(dmem);
    if (imem > 0)
        task.core.ooo.isa.imemSize = size_t(imem);

    if (lint_only) {
        rtl::Circuit circuit;
        rtl::analysis::Report report;
        rtl::analysis::AnalysisOptions aopts;
        if (task.scheme == verif::Scheme::Baseline) {
            shadow::BaselineHarness h = shadow::buildBaselineCircuit(
                circuit, task.core, task.contract,
                task.assumeSecretsDiffer);
            report.merge(h.preflight);
        } else if (task.scheme == verif::Scheme::ContractShadow ||
                   task.scheme == verif::Scheme::UpecLike) {
            shadow::ShadowOptions opts;
            opts.contract = task.contract;
            opts.restrictToBranchSpeculation =
                task.scheme == verif::Scheme::UpecLike;
            opts.enablePause = task.enablePause;
            opts.enableDrainCheck = task.enableDrainCheck;
            opts.assumeSecretsDiffer = task.assumeSecretsDiffer;
            opts.emitRelationalCandidates = true;
            shadow::ShadowHarness h =
                shadow::buildShadowCircuit(circuit, task.core, opts);
            report.merge(h.preflight);
            aopts.extraRoots = h.relationalCandidates;
        } else {
            // LEAVE/fuzz run on a single core instance; lint that.
            rtl::Builder b(circuit);
            proc::buildCore(b, task.core, "cpu");
            b.finish();
        }
        report.merge(rtl::analysis::runAll(circuit, aopts));
        std::printf("lint: core=%s defense=%s contract=%s scheme=%s\n",
                    core.c_str(), defense::defenseName(def),
                    contract::contractName(task.contract),
                    verif::schemeName(task.scheme));
        std::string body = report.format();
        if (!body.empty())
            std::printf("%s", body.c_str());
        std::printf("lint result: %s\n", report.summary().c_str());
        return report.hasErrors() ? 3 : 0;
    }

    if (!btor2_path.empty()) {
        rtl::Circuit circuit;
        shadow::ShadowOptions opts;
        opts.contract = task.contract;
        opts.assumeSecretsDiffer = task.assumeSecretsDiffer;
        shadow::buildShadowCircuit(circuit, task.core, opts);
        std::ofstream out(btor2_path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", btor2_path.c_str());
            return 1;
        }
        rtl::exportBtor2(circuit, out);
        std::printf("wrote %s\n", btor2_path.c_str());
        return 0;
    }

    // --resume reconstructs the task from the journal's own params, so
    // a resumed run needs no memory of the original command line.
    if (!resume_path.empty()) {
        auto journal = verif::Journal::load(resume_path);
        if (!journal) {
            std::fprintf(stderr, "cannot load journal %s\n",
                         resume_path.c_str());
            return 2;
        }
        auto restored = verif::taskFromJournalParams(journal->params);
        if (!restored) {
            std::fprintf(stderr,
                         "journal %s has no usable task params\n",
                         resume_path.c_str());
            return 2;
        }
        task = *restored;
        if (ropts.journalPath.empty())
            ropts.journalPath = resume_path;
        ropts.resume = true;
    }

    const bool staged = task.scheme == verif::Scheme::ContractShadow ||
                        task.scheme == verif::Scheme::Baseline ||
                        task.scheme == verif::Scheme::UpecLike;
    if (!json)
        std::printf("core=%s defense=%s contract=%s scheme=%s depth=%zu "
                    "budget=%.0fs%s\n",
                    proc::coreKindName(task.core.kind),
                    defense::defenseName(task.core.ooo.defense),
                    contract::contractName(task.contract),
                    verif::schemeName(task.scheme), task.maxDepth,
                    task.timeoutSeconds,
                    ropts.resume ? " (resumed)" : "");

    verif::VerificationResult result;
    std::optional<verif::RunnerResult> runner;
    if (staged) {
        // SIGINT/SIGTERM cancel the root deadline; the runner winds
        // down cooperatively, flushes the journal and reports the
        // partial verdict instead of dying mid-write.
        ropts.deadline = g_runDeadline;
        installRunSignalHandlers();
        runner = verif::runResilientVerification(task, ropts);
        result = runner->result;
    } else {
        result = verif::runVerification(task);
    }

    if (g_interruptSignal != 0)
        std::fprintf(stderr,
                     "interrupted by signal %d: partial verdict below "
                     "(journal %s)\n",
                     int(g_interruptSignal),
                     ropts.journalPath.empty()
                         ? "not configured"
                         : ropts.journalPath.c_str());

    if (json) {
        std::printf("%s\n",
                    resultJson(result, runner ? &*runner : nullptr)
                        .c_str());
    } else {
        std::printf("%s\n", verif::formatResult(result).c_str());
        if (runner) {
            if (!runner->reductionPipeline.empty() &&
                runner->reductionPipeline != "none")
                std::printf("  reduction [%s]: %zu -> %zu nets, "
                            "%zu -> %zu regs (%.2fs)\n",
                            runner->reductionPipeline.c_str(),
                            runner->originalNets, runner->reducedNets,
                            runner->originalRegs, runner->reducedRegs,
                            runner->reductionSeconds);
            for (const verif::StageOutcome &stage : runner->stages)
                std::printf("  stage %-24s %-12s depth=%zu %.2fs%s%s\n",
                            stage.name.c_str(),
                            mc::verdictName(stage.verdict), stage.depth,
                            stage.seconds,
                            stage.winner.empty() ? "" : " winner=",
                            stage.winner.c_str());
            if (!runner->winningEngine.empty())
                std::printf("  winning engine: %s (%llu fact(s) imported"
                            " across engines)\n",
                            runner->winningEngine.c_str(),
                            static_cast<unsigned long long>(
                                runner->importedFacts));
        }
        if (!result.attackReport.empty())
            std::printf("%s", result.attackReport.c_str());
    }
    return exitCode(result.verdict);
}
