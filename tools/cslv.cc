/**
 * @file
 * cslv - the command-line front end to the verification library.
 *
 * Examples:
 *   cslv --core simpleooo --defense none --contract sandboxing --hunt
 *   cslv --core simpleooo --defense delay_spectre --contract ct
 *   cslv --core boomlike --hunt --exclude-misaligned
 *   cslv --core inorder --scheme leave
 *   cslv --core simpleooo --export-btor2 out.btor2
 *
 * Run `cslv --help` for the full flag list.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "rtl/analysis/analysis.h"
#include "rtl/btor2.h"
#include "rtl/transform/passes.h"
#include "shadow/baseline_builder.h"
#include "shadow/shadow_builder.h"
#include "verif/runner.h"
#include "verif/task.h"

namespace {

using namespace csl;

void
usage()
{
    std::printf(R"(cslv - RTL verification for secure speculation (contract shadow logic)

usage: cslv [options]

target selection:
  --core <name>        inorder | simpleooo | ridelite | boomlike
                       (default simpleooo)
  --defense <name>     none | nofwd_fut | nofwd_spectre | delay_fut |
                       delay_spectre | dom (default none)
  --rob <n>            override ROB size
  --regs <n>           override architectural register count
  --dmem <n>           override data-memory words
  --imem <n>           override instruction-memory words

property and scheme:
  --contract <name>    sandboxing | ct (default sandboxing)
  --scheme <name>      shadow | baseline | upec | leave | fuzz
                       (default shadow)

engine:
  --hunt               attack search only (BMC, differing secrets)
  --depth <k>          max BMC depth / induction k (default 24)
  --budget <seconds>   wall-clock budget (default 600)
  --engines <set>      comma-separated engines raced concurrently in
                       every solver stage: bmc, kind, pdr, exh
                       (e.g. --engines=bmc,kind,pdr); first conclusive
                       verdict wins and cancels the rest. Default:
                       proof stages race bmc,kind,pdr; hunt runs bmc
  --houdini-threads <n>  worker threads for the invariant search
                       (default 1)
  --exclude-misaligned forbid misaligned-address programs
  --exclude-oor        forbid out-of-range-address programs

reduction:
  --passes <list>      circuit-reduction passes run before the engines:
                       comma-separated constprop, structhash, regmerge,
                       coi, dce, or the aliases default / none. Default:
                       the default pipeline (on --resume, whatever the
                       journal records). Witnesses are mapped back to
                       the original netlist for audit and reporting
  --no-reduce          shorthand for --passes=none

static analysis:
  --lint               build the verification circuit, run the static-
                       analysis passes (structure, cone reachability,
                       assumption vacuity, secret taint, scheme checks)
                       and print the full diagnostic report; no SAT
  --no-preflight       skip the pre-flight lint gate before engine runs

resilience:
  --journal <file>     checkpoint run state (safe bound, invariants,
                       stage outcomes) to <file> at stage boundaries
  --resume <file>      resume a killed run from its journal; the task is
                       reconstructed from the journal, other target
                       flags are ignored
  --seed <n>           base SAT decision seed (0 = deterministic)
  --retries <n>        seed-perturbed re-solves after a failed witness
                       audit (default 2)

other:
  --json                 machine-readable result on stdout
  --export-btor2 <file>  write the verification circuit as BTOR2 and exit
  --help                 this message

exit codes: 0 proof, 2 usage error, 3 diagnosed (lint gate), 4 bounded-
safe, 5 timeout, 10 attack
)");
}

bool
match(const char *arg, const char *flag)
{
    return std::strcmp(arg, flag) == 0;
}

/** Match `--flag=value`, returning the value part on success. */
const char *
matchEq(const char *arg, const char *flag)
{
    size_t n = std::strlen(flag);
    if (std::strncmp(arg, flag, n) == 0 && arg[n] == '=')
        return arg + n + 1;
    return nullptr;
}

/** Per-verdict exit code (documented in usage()). */
int
exitCode(mc::Verdict verdict)
{
    switch (verdict) {
      case mc::Verdict::Proof: return 0;
      case mc::Verdict::Diagnosed: return 3;
      case mc::Verdict::BoundedSafe: return 4;
      case mc::Verdict::Timeout: return 5;
      case mc::Verdict::Attack: return 10;
    }
    return 1;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
resultJson(const verif::VerificationResult &result,
           const verif::RunnerResult *runner)
{
    std::ostringstream oss;
    oss << "{\"verdict\":\"" << mc::verdictName(result.verdict) << "\""
        << ",\"seconds\":" << result.seconds
        << ",\"depth\":" << result.depth
        << ",\"conflicts\":" << result.conflicts
        << ",\"detail\":\"" << jsonEscape(result.detail) << "\""
        << ",\"attackReport\":\"" << jsonEscape(result.attackReport)
        << "\"";
    if (runner) {
        oss << ",\"deepestSafeBound\":" << runner->deepestSafeBound
            << ",\"quarantinedWitnesses\":" << runner->quarantinedWitnesses
            << ",\"auditRetries\":" << runner->auditRetries
            << ",\"resumed\":" << (runner->resumed ? "true" : "false")
            << ",\"winner\":\"" << jsonEscape(runner->winningEngine)
            << "\",\"importedFacts\":" << runner->importedFacts
            << ",\"reduction\":{\"pipeline\":\""
            << jsonEscape(runner->reductionPipeline)
            << "\",\"originalNets\":" << runner->originalNets
            << ",\"reducedNets\":" << runner->reducedNets
            << ",\"originalRegs\":" << runner->originalRegs
            << ",\"reducedRegs\":" << runner->reducedRegs
            << ",\"seconds\":" << runner->reductionSeconds << "}"
            << ",\"stages\":[";
        for (size_t i = 0; i < runner->stages.size(); ++i) {
            const verif::StageOutcome &stage = runner->stages[i];
            oss << (i ? "," : "") << "{\"name\":\""
                << jsonEscape(stage.name) << "\",\"verdict\":\""
                << mc::verdictName(stage.verdict)
                << "\",\"depth\":" << stage.depth
                << ",\"seconds\":" << stage.seconds << ",\"winner\":\""
                << jsonEscape(stage.winner) << "\"}";
        }
        oss << "]";
    }
    oss << "}";
    return oss.str();
}

} // namespace

int
main(int argc, char **argv)
{
    verif::VerificationTask task;
    verif::RunnerOptions ropts;
    std::string core = "simpleooo";
    std::string defense_name = "none";
    std::string btor2_path;
    std::string resume_path;
    bool lint_only = false;
    bool json = false;
    int rob = -1, regs = -1, dmem = -1, imem = -1;

    for (int i = 1; i < argc; ++i) {
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", argv[i]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (match(argv[i], "--help")) {
            usage();
            return 0;
        } else if (match(argv[i], "--core")) {
            core = value();
        } else if (match(argv[i], "--defense")) {
            defense_name = value();
        } else if (match(argv[i], "--rob")) {
            rob = std::atoi(value());
        } else if (match(argv[i], "--regs")) {
            regs = std::atoi(value());
        } else if (match(argv[i], "--dmem")) {
            dmem = std::atoi(value());
        } else if (match(argv[i], "--imem")) {
            imem = std::atoi(value());
        } else if (match(argv[i], "--contract")) {
            std::string v = value();
            task.contract = v == "ct" || v == "constant-time"
                                ? contract::Contract::ConstantTime
                                : contract::Contract::Sandboxing;
        } else if (match(argv[i], "--scheme")) {
            std::string v = value();
            if (v == "shadow")
                task.scheme = verif::Scheme::ContractShadow;
            else if (v == "baseline")
                task.scheme = verif::Scheme::Baseline;
            else if (v == "upec")
                task.scheme = verif::Scheme::UpecLike;
            else if (v == "leave")
                task.scheme = verif::Scheme::Leave;
            else if (v == "fuzz")
                task.scheme = verif::Scheme::Fuzz;
            else {
                std::fprintf(stderr, "unknown scheme '%s'\n", v.c_str());
                return 2;
            }
        } else if (match(argv[i], "--hunt")) {
            task.tryProof = false;
            task.assumeSecretsDiffer = true;
            task.maxDepth = 14;
        } else if (match(argv[i], "--depth")) {
            task.maxDepth = size_t(std::atoi(value()));
        } else if (match(argv[i], "--budget")) {
            task.timeoutSeconds = std::atof(value());
        } else if (match(argv[i], "--engines") ||
                   matchEq(argv[i], "--engines")) {
            const char *eq = matchEq(argv[i], "--engines");
            std::string v = eq ? eq : value();
            auto kinds = mc::parseEngineList(v);
            if (!kinds || kinds->empty()) {
                std::fprintf(stderr,
                             "bad engine set '%s' (expected a comma-"
                             "separated subset of bmc,kind,pdr,exh)\n",
                             v.c_str());
                return 2;
            }
            ropts.engines = *kinds;
        } else if (match(argv[i], "--passes") ||
                   matchEq(argv[i], "--passes")) {
            const char *eq = matchEq(argv[i], "--passes");
            std::string v = eq ? eq : value();
            if (!rtl::transform::PassManager::parsePipeline(v)) {
                std::fprintf(stderr,
                             "bad pass pipeline '%s' (expected a comma-"
                             "separated list of constprop,structhash,"
                             "regmerge,coi,dce or default/none)\n",
                             v.c_str());
                return 2;
            }
            ropts.passes = v;
        } else if (match(argv[i], "--no-reduce")) {
            ropts.passes = "none";
        } else if (match(argv[i], "--houdini-threads")) {
            int n = std::atoi(value());
            if (n < 1) {
                std::fprintf(stderr, "--houdini-threads needs n >= 1\n");
                return 2;
            }
            ropts.houdiniThreads = size_t(n);
        } else if (match(argv[i], "--exclude-misaligned")) {
            task.excludeMisaligned = true;
        } else if (match(argv[i], "--exclude-oor")) {
            task.excludeOutOfRange = true;
        } else if (match(argv[i], "--lint")) {
            lint_only = true;
        } else if (match(argv[i], "--no-preflight")) {
            task.preflight = false;
        } else if (match(argv[i], "--journal")) {
            ropts.journalPath = value();
        } else if (match(argv[i], "--resume")) {
            resume_path = value();
        } else if (match(argv[i], "--seed")) {
            ropts.decisionSeed = std::strtoull(value(), nullptr, 0);
        } else if (match(argv[i], "--retries")) {
            ropts.maxAuditRetries = size_t(std::atoi(value()));
        } else if (match(argv[i], "--json")) {
            json = true;
        } else if (match(argv[i], "--export-btor2")) {
            btor2_path = value();
        } else {
            std::fprintf(stderr, "unknown flag '%s' (try --help)\n",
                         argv[i]);
            return 2;
        }
    }

    defense::Defense def;
    if (defense_name == "none")
        def = defense::Defense::None;
    else if (defense_name == "nofwd_fut")
        def = defense::Defense::NoFwdFuturistic;
    else if (defense_name == "nofwd_spectre")
        def = defense::Defense::NoFwdSpectre;
    else if (defense_name == "delay_fut")
        def = defense::Defense::DelayFuturistic;
    else if (defense_name == "delay_spectre")
        def = defense::Defense::DelaySpectre;
    else if (defense_name == "dom")
        def = defense::Defense::DoMSpectre;
    else {
        std::fprintf(stderr, "unknown defense '%s'\n",
                     defense_name.c_str());
        return 2;
    }

    if (core == "inorder")
        task.core = proc::inOrderSpec();
    else if (core == "simpleooo")
        task.core = proc::simpleOoOSpec(def);
    else if (core == "ridelite")
        task.core = proc::rideLiteSpec(def);
    else if (core == "boomlike")
        task.core = proc::boomLikeSpec(def);
    else {
        std::fprintf(stderr, "unknown core '%s'\n", core.c_str());
        return 2;
    }
    if (rob > 0)
        task.core.ooo.robSize = rob;
    if (regs > 0)
        task.core.ooo.isa.regCount = regs;
    if (dmem > 0)
        task.core.ooo.isa.dmemSize = size_t(dmem);
    if (imem > 0)
        task.core.ooo.isa.imemSize = size_t(imem);

    if (lint_only) {
        rtl::Circuit circuit;
        rtl::analysis::Report report;
        rtl::analysis::AnalysisOptions aopts;
        if (task.scheme == verif::Scheme::Baseline) {
            shadow::BaselineHarness h = shadow::buildBaselineCircuit(
                circuit, task.core, task.contract,
                task.assumeSecretsDiffer);
            report.merge(h.preflight);
        } else if (task.scheme == verif::Scheme::ContractShadow ||
                   task.scheme == verif::Scheme::UpecLike) {
            shadow::ShadowOptions opts;
            opts.contract = task.contract;
            opts.restrictToBranchSpeculation =
                task.scheme == verif::Scheme::UpecLike;
            opts.enablePause = task.enablePause;
            opts.enableDrainCheck = task.enableDrainCheck;
            opts.assumeSecretsDiffer = task.assumeSecretsDiffer;
            opts.emitRelationalCandidates = true;
            shadow::ShadowHarness h =
                shadow::buildShadowCircuit(circuit, task.core, opts);
            report.merge(h.preflight);
            aopts.extraRoots = h.relationalCandidates;
        } else {
            // LEAVE/fuzz run on a single core instance; lint that.
            rtl::Builder b(circuit);
            proc::buildCore(b, task.core, "cpu");
            b.finish();
        }
        report.merge(rtl::analysis::runAll(circuit, aopts));
        std::printf("lint: core=%s defense=%s contract=%s scheme=%s\n",
                    core.c_str(), defense::defenseName(def),
                    contract::contractName(task.contract),
                    verif::schemeName(task.scheme));
        std::string body = report.format();
        if (!body.empty())
            std::printf("%s", body.c_str());
        std::printf("lint result: %s\n", report.summary().c_str());
        return report.hasErrors() ? 3 : 0;
    }

    if (!btor2_path.empty()) {
        rtl::Circuit circuit;
        shadow::ShadowOptions opts;
        opts.contract = task.contract;
        opts.assumeSecretsDiffer = task.assumeSecretsDiffer;
        shadow::buildShadowCircuit(circuit, task.core, opts);
        std::ofstream out(btor2_path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", btor2_path.c_str());
            return 1;
        }
        rtl::exportBtor2(circuit, out);
        std::printf("wrote %s\n", btor2_path.c_str());
        return 0;
    }

    // --resume reconstructs the task from the journal's own params, so
    // a resumed run needs no memory of the original command line.
    if (!resume_path.empty()) {
        auto journal = verif::Journal::load(resume_path);
        if (!journal) {
            std::fprintf(stderr, "cannot load journal %s\n",
                         resume_path.c_str());
            return 2;
        }
        auto restored = verif::taskFromJournalParams(journal->params);
        if (!restored) {
            std::fprintf(stderr,
                         "journal %s has no usable task params\n",
                         resume_path.c_str());
            return 2;
        }
        task = *restored;
        if (ropts.journalPath.empty())
            ropts.journalPath = resume_path;
        ropts.resume = true;
    }

    const bool staged = task.scheme == verif::Scheme::ContractShadow ||
                        task.scheme == verif::Scheme::Baseline ||
                        task.scheme == verif::Scheme::UpecLike;
    if (!json)
        std::printf("core=%s defense=%s contract=%s scheme=%s depth=%zu "
                    "budget=%.0fs%s\n",
                    proc::coreKindName(task.core.kind),
                    defense::defenseName(task.core.ooo.defense),
                    contract::contractName(task.contract),
                    verif::schemeName(task.scheme), task.maxDepth,
                    task.timeoutSeconds,
                    ropts.resume ? " (resumed)" : "");

    verif::VerificationResult result;
    std::optional<verif::RunnerResult> runner;
    if (staged) {
        runner = verif::runResilientVerification(task, ropts);
        result = runner->result;
    } else {
        result = verif::runVerification(task);
    }

    if (json) {
        std::printf("%s\n",
                    resultJson(result, runner ? &*runner : nullptr)
                        .c_str());
    } else {
        std::printf("%s\n", verif::formatResult(result).c_str());
        if (runner) {
            if (!runner->reductionPipeline.empty() &&
                runner->reductionPipeline != "none")
                std::printf("  reduction [%s]: %zu -> %zu nets, "
                            "%zu -> %zu regs (%.2fs)\n",
                            runner->reductionPipeline.c_str(),
                            runner->originalNets, runner->reducedNets,
                            runner->originalRegs, runner->reducedRegs,
                            runner->reductionSeconds);
            for (const verif::StageOutcome &stage : runner->stages)
                std::printf("  stage %-24s %-12s depth=%zu %.2fs%s%s\n",
                            stage.name.c_str(),
                            mc::verdictName(stage.verdict), stage.depth,
                            stage.seconds,
                            stage.winner.empty() ? "" : " winner=",
                            stage.winner.c_str());
            if (!runner->winningEngine.empty())
                std::printf("  winning engine: %s (%llu fact(s) imported"
                            " across engines)\n",
                            runner->winningEngine.c_str(),
                            static_cast<unsigned long long>(
                                runner->importedFacts));
        }
        if (!result.attackReport.empty())
            std::printf("%s", result.attackReport.c_str());
    }
    return exitCode(result.verdict);
}
