/**
 * @file
 * Verifying defenses: prove the Delay_futuristic defense secure for the
 * sandboxing contract (an unbounded proof via relational strengthening +
 * k-induction), then show the same harness finding the Delay-on-Miss
 * vulnerability. Note that exactly the same shadow logic serves both
 * designs - the reusability argument of paper Section 5.1.
 */

#include <cstdio>

#include "verif/task.h"

namespace {

csl::verif::VerificationResult
run(csl::defense::Defense defense, bool hunt)
{
    using namespace csl;
    verif::VerificationTask task;
    task.core = proc::simpleOoOSpec(defense);
    task.contract = contract::Contract::ConstantTime;
    task.scheme = verif::Scheme::ContractShadow;
    task.timeoutSeconds = 600;
    if (hunt) {
        task.tryProof = false;
        task.assumeSecretsDiffer = true;
        // The DoM leak needs ~15 cycles (cache warm-up, committed secret
        // load, speculative probe).
        task.maxDepth = 22;
    } else {
        task.maxDepth = 24;
    }
    return verif::runVerification(task);
}

} // namespace

int
main()
{
    using namespace csl;

    std::printf("[1] Delay_futuristic, constant-time contract "
                "(expected: PROOF)\n");
    auto proof = run(defense::Defense::DelayFuturistic, false);
    std::printf("    %s\n", verif::formatResult(proof).c_str());

    std::printf("[2] DoM_spectre (Delay-on-Miss), constant-time contract "
                "(expected: ATTACK)\n");
    auto attack = run(defense::Defense::DoMSpectre, true);
    std::printf("    %s\n%s", verif::formatResult(attack).c_str(),
                attack.attackReport.c_str());

    return 0;
}
