/**
 * @file
 * Using the library as a simulator: assemble a hand-written Spectre
 * gadget, run it on two SimpleOoO instances differing only in the secret
 * memory, print the memory-bus traces side by side, and dump a VCD
 * waveform (spectre.vcd) for inspection in any waveform viewer.
 */

#include <cstdio>
#include <fstream>

#include "isa/assembler.h"
#include "proc/presets.h"
#include "rtl/builder.h"
#include "sim/simulator.h"
#include "sim/vcd.h"

int
main()
{
    using namespace csl;

    proc::CoreSpec spec = proc::simpleOoOSpec(defense::Defense::None);
    const isa::IsaConfig &ic = spec.isaConfig();

    const char *gadget = R"(
        ld r1, [r0]      # slow branch-condition producer
        add r1, r1, r1   # lengthen the chain: branch resolves late
        beqz r1, +3      # mispredicted (predict-not-taken, taken)
        ld r2, [r3]      # transient: load the secret (r3 = 2)
        ld r2, [r2]      # transient: secret value becomes a bus address
        nop
    )";
    auto program = isa::assemble(gadget, ic);
    std::printf("gadget:\n%s\n",
                isa::disassembleProgram(program, ic).c_str());

    auto run = [&](uint64_t secret, bool dump_vcd) {
        rtl::Circuit circuit;
        rtl::Builder b(circuit);
        proc::CoreIfc cpu = proc::buildCore(b, spec, "cpu");
        b.finish();

        sim::Simulator simulator(circuit);
        std::unordered_map<rtl::NetId, uint64_t> init;
        for (size_t i = 0; i < program.size(); ++i)
            init[cpu.imemWords[i].id] = program[i];
        uint64_t dmem[4] = {0, 1, secret, 3};
        for (size_t i = 0; i < 4; ++i)
            init[cpu.dmemWords[i].id] = dmem[i];
        uint64_t regs[4] = {0, 0, 0, 2};
        for (size_t i = 0; i < 4; ++i)
            init[cpu.archRegs[i].id] = regs[i];
        simulator.reset(init);

        std::ofstream vcd_file;
        std::unique_ptr<sim::VcdWriter> vcd;
        if (dump_vcd) {
            vcd_file.open("spectre.vcd");
            vcd = std::make_unique<sim::VcdWriter>(vcd_file, circuit);
        }

        std::printf("secret=%llu bus trace:",
                    static_cast<unsigned long long>(secret));
        std::vector<uint64_t> bus;
        for (int t = 0; t < 24; ++t) {
            simulator.evaluate();
            if (simulator.value(cpu.memBusValid.id))
                std::printf(" %llu",
                            static_cast<unsigned long long>(
                                simulator.value(cpu.memBusAddr.id)));
            if (vcd)
                vcd->sample(simulator);
            simulator.tick();
        }
        std::printf("\n");
    };

    run(9, true);
    run(5, false);
    std::printf("\nThe secret value appears directly as a transient bus "
                "address - the\nSpectre leak this repository's "
                "verification schemes detect and prove absent.\n"
                "Waveform written to spectre.vcd\n");
    return 0;
}
