/**
 * @file
 * Quickstart: verify the sandboxing contract on the (insecure) SimpleOoO
 * core with Contract Shadow Logic and print the synthesized attack.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "verif/task.h"

int
main()
{
    using namespace csl;

    // 1. Pick a processor. Presets mirror the paper's targets; every
    //    structure size is configurable (task.core.ooo.robSize etc.).
    verif::VerificationTask task;
    task.core = proc::simpleOoOSpec(defense::Defense::None);

    // 2. Pick the software-hardware contract and the scheme.
    task.contract = contract::Contract::Sandboxing;
    task.scheme = verif::Scheme::ContractShadow;

    // 3. Configure the engine: hunt for attacks up to 12 cycles deep,
    //    with the two secret regions forced to differ.
    task.tryProof = false;
    task.assumeSecretsDiffer = true;
    task.maxDepth = 12;
    task.timeoutSeconds = 300;

    // 4. Run. The model checker explores *all* programs (the instruction
    //    memories are symbolic) and returns a concrete leaking program.
    verif::VerificationResult result = verif::runVerification(task);

    std::printf("verdict: %s\n", verif::formatResult(result).c_str());
    if (result.verdict == mc::Verdict::Attack)
        std::printf("%s", result.attackReport.c_str());
    return result.verdict == mc::Verdict::Attack ? 0 : 1;
}
