/**
 * @file
 * The Section 7.1.4 workflow as an API walkthrough: iteratively hunt
 * attacks on the BOOM-like core without specifying a speculation source,
 * then exclude each discovered class and continue - the loop a security
 * architect would run with this library.
 */

#include <cstdio>

#include "verif/task.h"

int
main()
{
    using namespace csl;

    verif::VerificationTask task;
    task.core = proc::boomLikeSpec(defense::Defense::None);
    task.contract = contract::Contract::Sandboxing;
    task.scheme = verif::Scheme::ContractShadow;
    task.tryProof = false;
    task.assumeSecretsDiffer = true;
    task.maxDepth = 12;
    task.timeoutSeconds = 600;

    std::printf("[round 1] no speculation source specified\n");
    auto r1 = verif::runVerification(task);
    std::printf("  %s\n%s\n", verif::formatResult(r1).c_str(),
                r1.attackReport.c_str());

    std::printf("[round 2] excluding misaligned-address programs\n");
    task.excludeMisaligned = true;
    auto r2 = verif::runVerification(task);
    std::printf("  %s\n%s\n", verif::formatResult(r2).c_str(),
                r2.attackReport.c_str());

    std::printf("[round 3] also excluding out-of-range programs\n");
    task.excludeOutOfRange = true;
    auto r3 = verif::runVerification(task);
    std::printf("  %s\n%s\n", verif::formatResult(r3).c_str(),
                r3.attackReport.c_str());
    return 0;
}
