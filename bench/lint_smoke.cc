/**
 * @file
 * Lint-only smoke run: build every core preset under both verification
 * schemes and run the full static-analysis pass stack - no bit-blasting,
 * no SAT. Catches circuit-construction regressions (width mismatches,
 * dangling backedges, vacuous assumes, mis-wired shadow taps) in
 * seconds; wired into ctest so it runs with the tier-1 suite.
 */

#include <cstdio>

#include "rtl/analysis/analysis.h"
#include "shadow/baseline_builder.h"
#include "shadow/shadow_builder.h"
#include "verif/task.h"

using namespace csl;

namespace {

struct Target
{
    const char *name;
    proc::CoreSpec spec;
};

int
lintOne(const Target &target, verif::Scheme scheme)
{
    rtl::Circuit circuit;
    rtl::analysis::Report report;
    rtl::analysis::AnalysisOptions aopts;
    if (scheme == verif::Scheme::Baseline) {
        shadow::BaselineHarness h = shadow::buildBaselineCircuit(
            circuit, target.spec, contract::Contract::Sandboxing);
        report.merge(h.preflight);
    } else {
        shadow::ShadowOptions opts;
        opts.emitRelationalCandidates = true;
        shadow::ShadowHarness h =
            shadow::buildShadowCircuit(circuit, target.spec, opts);
        report.merge(h.preflight);
        aopts.extraRoots = h.relationalCandidates;
    }
    report.merge(rtl::analysis::runAll(circuit, aopts));
    const bool bad = report.hasErrors() || report.hasWarnings();
    std::printf("%-10s x %-14s %s\n", target.name,
                verif::schemeName(scheme), report.summary().c_str());
    if (bad)
        std::printf("%s", report.format(rtl::analysis::Severity::Warning)
                              .c_str());
    return bad ? 1 : 0;
}

} // namespace

int
main()
{
    const Target targets[] = {
        {"inorder", proc::inOrderSpec()},
        {"simpleooo", proc::simpleOoOSpec()},
        {"ridelite", proc::rideLiteSpec()},
        {"boomlike", proc::boomLikeSpec()},
    };
    int failures = 0;
    for (const Target &target : targets) {
        failures += lintOne(target, verif::Scheme::ContractShadow);
        failures += lintOne(target, verif::Scheme::Baseline);
    }
    if (failures)
        std::printf("lint smoke: %d target(s) not clean\n", failures);
    else
        std::printf("lint smoke: all 8 targets clean\n");
    return failures ? 1 : 0;
}
