/**
 * @file
 * Ablation of the two shadow-logic requirements (paper Section 5.2), on
 * the insecure SimpleOoO under sandboxing.
 *
 * Without the instruction-inclusion (drain) check, the assertion fires at
 * the divergence itself - before the contract constraint has examined the
 * in-flight bound-to-commit instructions - so counterexamples surface at
 * a shallower depth and may describe programs a longer contract check
 * filters (the report's extended-replay line flags those). The full
 * scheme's counterexamples are only reported once every involved
 * instruction has been contract-checked.
 *
 * The synchronization (pause) requirement is exercised by the directed
 * simulation tests (tests/shadow_test.cc, PauseRealignsCommitStreams):
 * without pausing, copies whose commit timing diverges are compared
 * misaligned once the skid buffers clamp.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "shadow/shadow_builder.h"
#include "verif/task.h"

using namespace csl;

namespace {

verif::VerificationResult
runOne(bool drain, bool pause, double budget)
{
    verif::VerificationTask task;
    task.core = proc::simpleOoOSpec(defense::Defense::None);
    task.contract = contract::Contract::Sandboxing;
    task.scheme = verif::Scheme::ContractShadow;
    task.tryProof = false;
    task.assumeSecretsDiffer = true;
    task.enableDrainCheck = drain;
    task.enablePause = pause;
    task.timeoutSeconds = budget;
    task.maxDepth = 12;
    return verif::runVerification(task);
}

/**
 * The static pre-flight view of the same misconfiguration: build the
 * ablated shadow circuit and print what the analysis passes flag before
 * any SAT engine runs. Disabling either requirement is caught as a
 * shadow-config warning (constant pause net / drain flag outside the
 * assertion cone).
 */
void
showStatic(bool drain, bool pause)
{
    rtl::Circuit circuit;
    shadow::ShadowOptions opts;
    opts.contract = contract::Contract::Sandboxing;
    opts.enableDrainCheck = drain;
    opts.enablePause = pause;
    opts.assumeSecretsDiffer = true;
    shadow::ShadowHarness h = shadow::buildShadowCircuit(
        circuit, proc::simpleOoOSpec(defense::Defense::None), opts);
    std::string warnings =
        h.preflight.format(rtl::analysis::Severity::Warning);
    std::printf("  static pre-flight: %s\n%s",
                h.preflight.hasWarnings() ? "flagged" : "clean",
                warnings.c_str());
}

void
show(const char *label, const verif::VerificationResult &res)
{
    std::printf("%-24s %s (counterexample depth %zu)\n", label,
                verif::formatResult(res).c_str(), res.depth);
    std::printf("%s\n", res.attackReport.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    double budget = bench::budgetSeconds(argc, argv, 120.0);
    std::printf("Requirement ablation on the insecure SimpleOoO, "
                "sandboxing (budget %.0fs)\n",
                budget);
    bench::banner("full scheme");
    show("  full scheme", runOne(true, true, budget));
    bench::banner("no drain check (instruction inclusion off)");
    showStatic(false, true);
    show("  no drain check", runOne(false, true, budget));
    bench::banner("no pause (synchronization off)");
    showStatic(true, false);
    show("  no pause", runOne(true, false, budget));
    return 0;
}
