/**
 * @file
 * Reduction-pipeline ablation over the Table-2 ContractShadow cells:
 * every cell is solved twice through the resilient runner - once under
 * the default reduction pipeline (`--passes default`) and once with
 * reduction off (`--no-reduce`) - and bit-blasted twice at a fixed
 * unroll depth to compare CNF sizes. Emits BENCH_reduction.json.
 *
 * Claims under test (the acceptance bar of the reduction work):
 *
 *  - the reduced CNF variable count is strictly below the baseline on
 *    every cell (the pipeline genuinely shrinks what engines solve, it
 *    does not just relabel nets);
 *  - verdicts are identical with and without reduction, and attack
 *    depths are identical on the hunt cells (reduction is sound modulo
 *    constraints; witnesses translate back losslessly).
 *
 * Any violated claim makes the binary exit non-zero, so the ctest smoke
 * entry doubles as the verdict-identity regression gate.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bitblast/cnf_builder.h"
#include "bitblast/unroller.h"
#include "mc/engine.h"
#include "rtl/transform/passes.h"
#include "sat/solver.h"
#include "shadow/shadow_builder.h"
#include "verif/runner.h"
#include "verif/task.h"

using namespace csl;

namespace {

/** Frames bit-blasted for the CNF-size comparison. Fixed and shared by
 * both sides so the variable counts are directly comparable; deep
 * enough that per-frame logic dominates the frame-0 init encoding. */
constexpr size_t kUnrollFrames = 8;

struct Cell
{
    const char *name;
    proc::CoreSpec spec;
    bool secure;
};

struct SideReport
{
    std::string pipeline;
    std::string verdict;
    size_t depth = 0;
    double solveSeconds = 0;
    size_t nets = 0;
    size_t regs = 0;
    size_t cnfVars = 0;
};

struct CellReport
{
    std::string name;
    SideReport reduced, baseline;
    double reductionSeconds = 0;
};

verif::VerificationTask
cellTask(const Cell &cell, double budget)
{
    verif::VerificationTask task;
    task.core = cell.spec;
    task.contract = contract::Contract::Sandboxing;
    task.scheme = verif::Scheme::ContractShadow;
    task.timeoutSeconds = budget;
    if (cell.secure) {
        task.maxDepth = 24;
        task.tryProof = true;
    } else {
        task.maxDepth = 12;
        task.tryProof = false;
        task.assumeSecretsDiffer = true;
    }
    return task;
}

/**
 * CNF variables after kUnrollFrames time frames. Mirrors what the BMC /
 * induction engines feed the SAT solver: the property cone (plus the
 * kept roots) bit-blasted frame by frame.
 */
size_t
cnfVarsOf(const rtl::Circuit &circuit, const std::vector<rtl::NetId> &roots)
{
    sat::Solver solver;
    bitblast::CnfBuilder cnf(solver);
    bitblast::Unroller unroller(circuit, cnf, false, roots);
    unroller.ensureFrames(kUnrollFrames);
    return static_cast<size_t>(solver.numVars());
}

/** One runner pass over the cell with the given reduction pipeline. */
SideReport
solveWith(const verif::VerificationTask &task, const std::string &passes)
{
    verif::RunnerOptions ropts;
    ropts.passes = passes;
    verif::RunnerResult rr = verif::runResilientVerification(task, ropts);
    SideReport side;
    side.pipeline = rr.reductionPipeline;
    side.verdict = mc::verdictName(rr.result.verdict);
    side.depth = rr.result.depth;
    side.solveSeconds = rr.result.seconds;
    side.nets = rr.reducedNets;
    side.regs = rr.reducedRegs;
    return side;
}

/**
 * Bit-blast the cell's verification circuit with and without the
 * default reduction pipeline and fill in the CNF variable counts. The
 * circuit construction mirrors the runner's ContractShadow path,
 * including the candidate-invariant roots the proof stages keep alive.
 */
void
measureCnf(const Cell &cell, CellReport &report)
{
    rtl::Circuit circuit;
    shadow::ShadowOptions sopts;
    sopts.contract = contract::Contract::Sandboxing;
    sopts.assumeSecretsDiffer = !cell.secure;
    sopts.emitRelationalCandidates = cell.secure;
    shadow::ShadowHarness h =
        shadow::buildShadowCircuit(circuit, cell.spec, sopts);

    std::vector<rtl::NetId> roots = h.relationalCandidates;
    if (h.quiescentCandidate != rtl::kNoNet)
        roots.push_back(h.quiescentCandidate);

    report.baseline.cnfVars = cnfVarsOf(circuit, roots);

    rtl::transform::ReductionResult reduction =
        rtl::transform::PassManager().run(circuit, roots);
    std::vector<rtl::NetId> reduced_roots;
    for (rtl::NetId root : roots) {
        rtl::NetId mapped = reduction.map.mapped(root);
        if (mapped != rtl::kNoNet)
            reduced_roots.push_back(mapped);
    }
    report.reduced.cnfVars = cnfVarsOf(reduction.circuit, reduced_roots);
    report.reductionSeconds = reduction.seconds;
}

std::string
sideJson(const SideReport &s)
{
    std::ostringstream oss;
    oss << "{\"pipeline\":\"" << s.pipeline << "\",\"verdict\":\""
        << s.verdict << "\",\"depth\":" << s.depth
        << ",\"solveSeconds\":" << s.solveSeconds << ",\"nets\":" << s.nets
        << ",\"regs\":" << s.regs << ",\"cnfVars\":" << s.cnfVars << "}";
    return oss.str();
}

std::string
toJson(const std::vector<CellReport> &cells, double budget)
{
    std::ostringstream oss;
    oss << "{\"budgetSeconds\":" << budget
        << ",\"unrollFrames\":" << kUnrollFrames << ",\"cells\":[";
    for (size_t i = 0; i < cells.size(); ++i) {
        const CellReport &c = cells[i];
        oss << (i ? "," : "") << "{\"name\":\"" << c.name
            << "\",\"reduced\":" << sideJson(c.reduced)
            << ",\"baseline\":" << sideJson(c.baseline)
            << ",\"reductionSeconds\":" << c.reductionSeconds << "}";
    }
    oss << "]}";
    return oss.str();
}

} // namespace

int
main(int argc, char **argv)
{
    double budget = bench::budgetSeconds(argc, argv, 120.0);
    std::printf("Reduction bench: default pipeline vs --no-reduce on the "
                "Table-2 ContractShadow cells (budget %.0fs per run, CNF "
                "at %zu frames)\n",
                budget, kUnrollFrames);

    std::vector<Cell> cells = {
        {"Sodor (InOrder, secure)", proc::inOrderSpec(), true},
        {"SimpleOoO-S (DelaySpectre, secure)",
         proc::simpleOoOSpec(defense::Defense::DelaySpectre), true},
        {"SimpleOoO (insecure)",
         proc::simpleOoOSpec(defense::Defense::None), false},
        {"RideLite (insecure)",
         proc::rideLiteSpec(defense::Defense::None), false},
        {"BoomLike (insecure)",
         proc::boomLikeSpec(defense::Defense::None), false},
    };

    std::vector<CellReport> reports;
    std::vector<std::string> failures;
    for (const Cell &cell : cells) {
        bench::banner(cell.name);
        verif::VerificationTask task = cellTask(cell, budget);

        CellReport report;
        report.name = cell.name;
        measureCnf(cell, report);

        SideReport reduced = solveWith(task, "default");
        SideReport baseline = solveWith(task, "none");
        // cnfVars came from measureCnf; everything else from the runs.
        reduced.cnfVars = report.reduced.cnfVars;
        baseline.cnfVars = report.baseline.cnfVars;
        report.reduced = reduced;
        report.baseline = baseline;

        char line[192];
        std::snprintf(line, sizeof(line),
                      "%s at depth %zu in %.2fs (%zu nets, %zu CNF vars)",
                      reduced.verdict.c_str(), reduced.depth,
                      reduced.solveSeconds, reduced.nets, reduced.cnfVars);
        bench::row("  reduced", line);
        std::snprintf(line, sizeof(line),
                      "%s at depth %zu in %.2fs (%zu nets, %zu CNF vars)",
                      baseline.verdict.c_str(), baseline.depth,
                      baseline.solveSeconds, baseline.nets,
                      baseline.cnfVars);
        bench::row("  baseline", line);

        if (reduced.cnfVars >= baseline.cnfVars)
            failures.push_back(report.name +
                               ": reduced CNF not strictly smaller (" +
                               std::to_string(reduced.cnfVars) + " vs " +
                               std::to_string(baseline.cnfVars) + ")");
        const bool timed_out =
            reduced.verdict == "TIMEOUT" || baseline.verdict == "TIMEOUT";
        if (reduced.verdict != baseline.verdict) {
            if (timed_out)
                std::printf("  (verdicts differ with a TIMEOUT side - "
                            "budget too small to compare, not counted "
                            "as a failure)\n");
            else
                failures.push_back(report.name + ": verdict mismatch (" +
                                   reduced.verdict + " vs " +
                                   baseline.verdict + ")");
        } else if (!cell.secure && reduced.verdict == "ATTACK" &&
                   reduced.depth != baseline.depth) {
            failures.push_back(
                report.name + ": attack depth mismatch (" +
                std::to_string(reduced.depth) + " vs " +
                std::to_string(baseline.depth) + ")");
        }
        reports.push_back(std::move(report));
    }

    const char *out_path = "BENCH_reduction.json";
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    out << toJson(reports, budget) << "\n";
    std::printf("\nwrote %s\n", out_path);

    if (!failures.empty()) {
        for (const std::string &f : failures)
            std::fprintf(stderr, "FAIL: %s\n", f.c_str());
        return 1;
    }
    std::printf("all cells: reduced CNF strictly smaller, verdicts "
                "identical\n");
    return 0;
}
