/**
 * @file
 * Reproduces Figure 2: verification time as a function of structure
 * sizes (register file, data memory, re-order buffer), for
 * NoFwd_futuristic under sandboxing and Delay_spectre under
 * constant-time.
 *
 * Expected shape (paper): register-file size has negligible impact; data
 * memory has limited impact on sandboxing and a larger one on
 * constant-time; ROB size dominates, with verification time growing
 * exponentially (log-scale y axis in the paper).
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "verif/task.h"

using namespace csl;

namespace {

double
timeFor(defense::Defense defense, contract::Contract contract,
        int reg_count, size_t dmem, int rob, double budget,
        std::string &verdict)
{
    verif::VerificationTask task;
    task.core = proc::simpleOoOSpec(defense);
    task.core.ooo.isa.regCount = reg_count;
    task.core.ooo.isa.dmemSize = dmem;
    task.core.ooo.robSize = rob;
    task.core.ooo.hasCache = false; // plain memory for the sweep
    task.contract = contract;
    task.scheme = verif::Scheme::ContractShadow;
    task.timeoutSeconds = budget;
    task.maxDepth = 28;
    verif::VerificationResult res = verif::runVerification(task);
    verdict = mc::verdictName(res.verdict);
    return res.seconds;
}

void
sweep(const char *title, defense::Defense defense,
      contract::Contract contract, double budget)
{
    bench::banner(title);
    // Default configuration: 4 registers, 4-word dmem, 4-entry ROB.
    std::printf("%-22s %10s  %s\n", "sweep point", "time", "verdict");
    auto line = [&](const char *what, int rc, size_t dm, int rob) {
        std::string verdict;
        double t = timeFor(defense, contract, rc, dm, rob, budget,
                           verdict);
        char head[64];
        std::snprintf(head, sizeof(head), "%s", what);
        std::printf("%-22s %9.2fs  %s\n", head, t, verdict.c_str());
    };
    for (int rc : {2, 4, 8, 16}) {
        char label[64];
        std::snprintf(label, sizeof(label), "regfile=%d", rc);
        line(label, rc, 4, 4);
    }
    for (size_t dm : {size_t(2), size_t(4), size_t(8), size_t(16)}) {
        char label[64];
        std::snprintf(label, sizeof(label), "dmem=%zu", dm);
        line(label, 4, dm, 4);
    }
    for (int rob : {2, 3, 4, 5, 6}) {
        char label[64];
        std::snprintf(label, sizeof(label), "rob=%d", rob);
        line(label, 4, 4, rob);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    double budget = bench::budgetSeconds(argc, argv, 150.0);
    std::printf("Figure 2 reproduction: verification time vs structure "
                "sizes (budget %.0fs per point)\n",
                budget);
    sweep("NoFwd_futuristic / sandboxing",
          defense::Defense::NoFwdFuturistic,
          contract::Contract::Sandboxing, budget);
    sweep("Delay_spectre / constant-time",
          defense::Defense::DelaySpectre,
          contract::Contract::ConstantTime, budget);
    return 0;
}
