/**
 * @file
 * Reproduces Table 1 (processor configurations): for each target, the
 * core's size, the size of the full two-copy verification circuit, and
 * the shadow-logic overhead (the paper reports hand-written shadow-logic
 * line counts; our generator's analog is the net/state overhead of the
 * shadow instrumentation over two bare cores).
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "proc/presets.h"
#include "rtl/builder.h"
#include "rtl/passes.h"
#include "rtl/transform/passes.h"
#include "shadow/shadow_builder.h"

using namespace csl;

namespace {

rtl::CircuitStats
coreStats(const proc::CoreSpec &spec)
{
    rtl::Circuit circuit;
    rtl::Builder b(circuit);
    proc::CoreIfc ifc = proc::buildCore(b, spec, "cpu");
    // Anchor outputs so finalize passes even without properties.
    b.assertAlways(b.orOf(ifc.memBusValid, b.notOf(ifc.memBusValid)));
    b.finish();
    return circuit.stats();
}

void
report(const char *name, const char *config, const proc::CoreSpec &spec)
{
    rtl::CircuitStats core = coreStats(spec);
    rtl::Circuit shadow_circuit;
    shadow::ShadowOptions opts;
    shadow::buildShadowCircuit(shadow_circuit, spec, opts);
    rtl::CircuitStats both = shadow_circuit.stats();

    long shadow_nets = long(both.nets) - 2 * long(core.nets);
    long shadow_bits = long(both.stateBits) - 2 * long(core.stateBits);
    if (shadow_nets < 0)
        shadow_nets = 0; // hash-consing across copies can deduplicate

    bench::banner(name);
    std::printf("  configuration:        %s\n", config);
    std::printf("  core:                 %zu nets, %zu registers, %zu "
                "state bits\n",
                core.nets, core.registers, core.stateBits);
    std::printf("  verification circuit: %zu nets, %zu registers, %zu "
                "state bits\n",
                both.nets, both.registers, both.stateBits);
    std::printf("  shadow-logic overhead: ~%ld nets, ~%ld state bits "
                "(paper: hand-written Verilog, ~90-400 lines)\n",
                shadow_nets, shadow_bits);

    // What the engines actually solve after the reduction pipeline.
    rtl::transform::ReductionResult reduction =
        rtl::transform::PassManager().run(shadow_circuit);
    rtl::CircuitStats reduced = reduction.circuit.stats();
    std::printf("  reduced (default passes): %zu nets, %zu registers, "
                "%zu state bits\n",
                reduced.nets, reduced.registers, reduced.stateBits);
    std::printf("  %s\n",
                rtl::summarize(shadow_circuit, reduction.circuit,
                               reduction.map)
                    .c_str());
}

} // namespace

int
main()
{
    std::printf("Table 1 reproduction: processor and shadow-logic "
                "inventory\n");
    report("Sodor analog (InOrder)",
           "2-stage in-order pipeline, 1-cycle memory",
           proc::inOrderSpec());
    report("SimpleOoO",
           "4 instructions, 4-entry ROB, 1 commit/cycle",
           proc::simpleOoOSpec());
    report("RideLite (Ridecore analog)",
           "RV-M analog (MUL), 4-entry ROB, 2 commits/cycle",
           proc::rideLiteSpec());
    report("BoomLike (BOOM analog)",
           "MUL+ST, 8-entry ROB, misaligned & illegal-access exceptions",
           proc::boomLikeSpec());
    return 0;
}
