/**
 * @file
 * Resilience smoke matrix: arm every known fault-injection site in turn
 * and drive a hunt and a proof run on SimpleOoO through the resilient
 * runner. Every fault must end in a clean, degraded verdict - never a
 * crash, a hang, or an unaudited ATTACK. Then the crash/resume check:
 * fork a child that arms `runner.kill` (SIGKILL right after the first
 * journal checkpoint), observe it die, and verify that resuming from
 * its journal reaches the same verdict as an uninterrupted run.
 *
 * Wired into ctest (and tools/check.sh runs it under ASan/UBSan), so
 * the recovery paths themselves stay memory-clean.
 */

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "base/faultpoint.h"
#include "verif/runner.h"

using namespace csl;
using contract::Contract;
using defense::Defense;
using mc::Verdict;

namespace {

verif::VerificationTask
huntTask()
{
    verif::VerificationTask task;
    task.core = proc::simpleOoOSpec(Defense::None);
    task.contract = Contract::Sandboxing;
    task.tryProof = false;
    task.assumeSecretsDiffer = true;
    task.maxDepth = 12;
    task.timeoutSeconds = 120;
    return task;
}

verif::VerificationTask
proveTask()
{
    verif::VerificationTask task;
    task.core = proc::simpleOoOSpec(Defense::DelayFuturistic);
    task.contract = Contract::Sandboxing;
    task.maxDepth = 20;
    // Small on purpose: injected faults may disable the invariant
    // search, after which the proof cannot close and the run should
    // degrade within this budget instead of the full 600s default.
    task.timeoutSeconds = 8;
    return task;
}

/** The smoke's subject is fault recovery, not engine breadth: pin the
 * pre-portfolio engine pair so every stage races two engines at most.
 * The default three-engine proof set time-slices on single-core CI
 * hosts (PDR never wins these cells) and under ASan that pushed the
 * matrix past any reasonable ctest timeout. Portfolio coverage lives in
 * portfolio_smoke and tests/portfolio_test. */
verif::RunnerOptions
smokeOptions()
{
    verif::RunnerOptions ropts;
    ropts.engines = {mc::EngineKind::Bmc, mc::EngineKind::KInduction};
    return ropts;
}

int failures = 0;

void
check(bool ok, const std::string &what)
{
    std::printf("  %-58s %s\n", what.c_str(), ok ? "ok" : "FAIL");
    if (!ok)
        ++failures;
}

/** A verdict is clean when it is not an unaudited attack. */
void
checkCleanVerdict(const char *site, const char *mode,
                  const verif::RunnerResult &rr)
{
    std::string label = std::string(site) + " / " + mode + " -> " +
                        mc::verdictName(rr.result.verdict);
    if (rr.result.verdict == Verdict::Attack)
        check(rr.result.attackReport.find("confirmed in simulation") !=
                  std::string::npos,
              label + " (audited)");
    else
        check(true, label);
}

void
runFaultMatrix()
{
    std::printf("fault-injection matrix (SimpleOoO):\n");
    for (const std::string &site : fault::knownSites()) {
        if (site == "runner.kill")
            continue; // exercised by the fork/resume check below
        if (site.rfind("campaign.", 0) == 0)
            continue; // supervisor-side sites: bench/campaign_smoke and
                      // tests/campaign_test drive those
        {
            fault::ScopedFault guard(site);
            checkCleanVerdict(site.c_str(), "hunt",
                              verif::runResilientVerification(
                                  huntTask(), smokeOptions()));
        }
        {
            fault::ScopedFault guard(site);
            verif::RunnerResult rr = verif::runResilientVerification(
                proveTask(), smokeOptions());
            checkCleanVerdict(site.c_str(), "prove", rr);
            // A degraded proof run must never claim an attack on the
            // secure core.
            check(rr.result.verdict != Verdict::Attack,
                  std::string(site) + " / prove (no false attack)");
        }
    }
    fault::disarmAll();
}

void
runKillResume()
{
    std::printf("kill + resume (SimpleOoO, delay_fut):\n");
    std::string journal =
        "resilience_smoke_" + std::to_string(getpid()) + ".journal";
    std::remove(journal.c_str());

    auto task = proveTask();
    task.timeoutSeconds = 120; // enough for the uninterrupted proof

    verif::RunnerOptions ropts = smokeOptions();
    verif::RunnerResult reference =
        verif::runResilientVerification(task, ropts);
    check(reference.result.verdict == Verdict::Proof,
          "uninterrupted run proves");

    pid_t pid = fork();
    if (pid == 0) {
        // Child: die by SIGKILL right after the first checkpoint.
        fault::arm("runner.kill");
        verif::RunnerOptions copts = smokeOptions();
        copts.journalPath = journal;
        verif::runResilientVerification(task, copts);
        _exit(42); // fault did not fire: flagged by the parent
    }
    int status = 0;
    waitpid(pid, &status, 0);
    check(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL,
          "child killed mid-run by injected SIGKILL");
    check(verif::Journal::load(journal).has_value(),
          "checkpoint journal survives the kill");

    verif::RunnerOptions resume_opts = smokeOptions();
    resume_opts.journalPath = journal;
    resume_opts.resume = true;
    verif::RunnerResult resumed =
        verif::runResilientVerification(task, resume_opts);
    check(resumed.resumed, "resume loads the journal");
    check(resumed.result.verdict == reference.result.verdict,
          "resumed run reaches the uninterrupted verdict");
    std::remove(journal.c_str());
}

} // namespace

int
main()
{
    runFaultMatrix();
    runKillResume();
    std::printf("resilience smoke: %s\n",
                failures == 0 ? "all clean" : "FAILURES");
    return failures == 0 ? 0 : 1;
}
