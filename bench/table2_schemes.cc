/**
 * @file
 * Reproduces Table 2: comparing the Baseline scheme, LEAVE, the
 * UPEC-like restricted scheme, and Contract Shadow Logic on five
 * processors under the sandboxing contract.
 *
 * Expected shape (paper): the baseline finds attacks on insecure designs
 * but TIMES OUT on every proof; LEAVE proves the in-order core but
 * reports UNKNOWN on out-of-order cores; the UPEC-like scheme finds only
 * branch-speculation attacks on the BOOM-like core; Contract Shadow
 * Logic finds attacks on all insecure designs and proofs on all secure
 * ones.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "verif/task.h"

using namespace csl;

namespace {

struct Row
{
    const char *name;
    proc::CoreSpec spec;
    bool secure;
};

std::string
runCell(const Row &r, verif::Scheme scheme, double budget)
{
    verif::VerificationTask task;
    task.core = r.spec;
    task.contract = contract::Contract::Sandboxing;
    task.scheme = scheme;
    task.timeoutSeconds = budget;
    task.maxDepth = 24;
    // Attack hunting is most effective with differing secrets; proofs
    // must quantify over all secrets. Secure targets get the proof
    // configuration, insecure ones the hunting configuration - the same
    // split a verification engineer would run both of.
    if (r.secure) {
        task.tryProof = true;
    } else {
        task.tryProof = false;
        task.assumeSecretsDiffer = true;
        task.maxDepth = 12;
    }
    if (scheme == verif::Scheme::Baseline && r.secure) {
        // The baseline proof attempt runs the full pipeline (and is
        // expected to time out - that is the paper's point).
        task.autoStrengthen = true;
    }
    verif::VerificationResult res = verif::runVerification(task);
    return verif::formatResult(res);
}

} // namespace

int
main(int argc, char **argv)
{
    double budget = bench::budgetSeconds(argc, argv, 120.0);
    std::printf("Table 2 reproduction: scheme comparison, sandboxing "
                "contract (budget %.0fs per cell; paper timeout: 7 days)\n",
                budget);

    std::vector<Row> rows = {
        {"Sodor (InOrder)", proc::inOrderSpec(), true},
        {"SimpleOoO-S (DelaySpectre)",
         proc::simpleOoOSpec(defense::Defense::DelaySpectre), true},
        {"SimpleOoO (insecure)",
         proc::simpleOoOSpec(defense::Defense::None), false},
        {"RideLite (insecure)",
         proc::rideLiteSpec(defense::Defense::None), false},
        {"BoomLike (insecure)",
         proc::boomLikeSpec(defense::Defense::None), false},
    };

    for (const Row &r : rows) {
        bench::banner(r.name);
        bench::row("  Baseline",
                   runCell(r, verif::Scheme::Baseline, budget));
        // LEAVE was only evaluated on Sodor and the SimpleOoO variants
        // in the paper (shaded cells); UPEC only on BOOM.
        bool leave_cell = r.spec.kind == proc::CoreKind::InOrder ||
                          r.spec.kind == proc::CoreKind::SimpleOoO;
        bench::row("  LEAVE-like",
                   leave_cell ? runCell(r, verif::Scheme::Leave, budget)
                              : "(not run, as in the paper)");
        bench::row("  UPEC-like",
                   r.spec.kind == proc::CoreKind::BoomLike
                       ? runCell(r, verif::Scheme::UpecLike, budget)
                       : "(not run, as in the paper)");
        bench::row("  ContractShadow",
                   runCell(r, verif::Scheme::ContractShadow, budget));
    }
    std::printf("\nLegend: ATTACK = counterexample (insecure), PROOF = "
                "unbounded proof,\nBOUNDED-SAFE = no answer at bound "
                "(LEAVE: UNKNOWN), TIMEOUT = budget exhausted.\n");
    return 0;
}
