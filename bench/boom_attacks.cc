/**
 * @file
 * Reproduces the Section 7.1.4 experiment: iterative attack discovery on
 * the BOOM-like core. Contract Shadow Logic (with no speculation source
 * specified) first finds exception-source attacks (misaligned /
 * out-of-range loads - the classes UPEC misses because its manual
 * invariants assume branch misprediction is the only source); excluding
 * those one by one yields further attacks until the budget is exhausted.
 * The UPEC-like restricted run is shown for contrast.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "verif/task.h"

using namespace csl;

namespace {

verif::VerificationResult
hunt(contract::Contract contract, bool exclude_misaligned,
     bool exclude_oor, bool upec_like, double budget)
{
    verif::VerificationTask task;
    task.core = proc::boomLikeSpec(defense::Defense::None);
    task.contract = contract;
    task.scheme = upec_like ? verif::Scheme::UpecLike
                            : verif::Scheme::ContractShadow;
    task.tryProof = false;
    task.assumeSecretsDiffer = true;
    task.maxDepth = 14;
    task.timeoutSeconds = budget;
    task.excludeMisaligned = exclude_misaligned;
    task.excludeOutOfRange = exclude_oor;
    return verif::runVerification(task);
}

void
campaign(contract::Contract contract, double budget)
{
    bench::banner(std::string("BoomLike, ") +
                  contract::contractName(contract) + " contract");

    std::printf("[1] unrestricted search (no speculation source "
                "specified):\n");
    auto r1 = hunt(contract, false, false, false, budget);
    std::printf("    %s\n%s", verif::formatResult(r1).c_str(),
                r1.attackReport.c_str());

    std::printf("[2] excluding misaligned-address programs:\n");
    auto r2 = hunt(contract, true, false, false, budget);
    std::printf("    %s\n%s", verif::formatResult(r2).c_str(),
                r2.attackReport.c_str());

    std::printf("[3] excluding misaligned and out-of-range programs:\n");
    auto r3 = hunt(contract, true, true, false, budget);
    std::printf("    %s\n%s", verif::formatResult(r3).c_str(),
                r3.attackReport.c_str());

    std::printf("[UPEC-like] branch misprediction as the only modeled "
                "speculation source:\n");
    auto r4 = hunt(contract, false, false, true, budget);
    std::printf("    %s\n%s", verif::formatResult(r4).c_str(),
                r4.attackReport.c_str());
    std::printf("    (exception-source attacks from [1]/[2] are outside "
                "this restricted search space)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    double budget = bench::budgetSeconds(argc, argv, 180.0);
    std::printf("Section 7.1.4 reproduction: iterative attack discovery "
                "on the BOOM-like core (budget %.0fs per search)\n",
                budget);
    campaign(contract::Contract::Sandboxing, budget);
    campaign(contract::Contract::ConstantTime, budget);
    return 0;
}
