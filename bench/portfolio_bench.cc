/**
 * @file
 * Sequential-vs-portfolio wall clock on the Table-2 ContractShadow
 * matrix: each cell is solved by every single engine alone ({bmc},
 * {kind}, {pdr}) and then by the concurrent first-winner portfolio
 * {bmc,kind,pdr}. Emits BENCH_portfolio.json with the per-cell numbers;
 * the claim under test is that the portfolio's wall clock tracks the
 * best single engine (plus scheduling overhead) without knowing in
 * advance which engine wins - the whole point of racing them.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "mc/engine.h"
#include "verif/runner.h"
#include "verif/task.h"

using namespace csl;

namespace {

struct Cell
{
    const char *name;
    proc::CoreSpec spec;
    bool secure;
};

struct EngineCell
{
    std::string set;
    std::string verdict;
    double seconds = 0;
};

struct CellReport
{
    std::string name;
    std::vector<EngineCell> singles;
    EngineCell portfolio;
    std::string winner;
    uint64_t importedFacts = 0;
    double bestSingleSeconds = -1; ///< fastest agreeing single engine
};

verif::VerificationTask
cellTask(const Cell &cell, double budget)
{
    verif::VerificationTask task;
    task.core = cell.spec;
    task.contract = contract::Contract::Sandboxing;
    task.scheme = verif::Scheme::ContractShadow;
    task.timeoutSeconds = budget;
    if (cell.secure) {
        task.maxDepth = 24;
        task.tryProof = true;
    } else {
        task.maxDepth = 12;
        task.tryProof = false;
        task.assumeSecretsDiffer = true;
    }
    return task;
}

EngineCell
runWith(const verif::VerificationTask &task,
        const std::vector<mc::EngineKind> &engines, verif::RunnerResult *out)
{
    verif::RunnerOptions ropts;
    ropts.engines = engines;
    verif::RunnerResult rr = verif::runResilientVerification(task, ropts);
    EngineCell ec;
    ec.set = mc::engineListName(engines);
    ec.verdict = mc::verdictName(rr.result.verdict);
    ec.seconds = rr.result.seconds;
    if (out)
        *out = std::move(rr);
    return ec;
}

std::string
toJson(const std::vector<CellReport> &cells, double budget)
{
    std::ostringstream oss;
    // The CPU count contextualizes the overhead column: with fewer cores
    // than engines the race time-slices, so a losing engine steals up to
    // its whole share of the clock from the winner; with >= one core per
    // engine the portfolio tracks the best single engine.
    oss << "{\"budgetSeconds\":" << budget
        << ",\"cpus\":" << std::thread::hardware_concurrency()
        << ",\"cells\":[";
    for (size_t i = 0; i < cells.size(); ++i) {
        const CellReport &c = cells[i];
        oss << (i ? "," : "") << "{\"name\":\"" << c.name << "\""
            << ",\"engines\":[";
        for (size_t j = 0; j < c.singles.size(); ++j)
            oss << (j ? "," : "") << "{\"set\":\"" << c.singles[j].set
                << "\",\"verdict\":\"" << c.singles[j].verdict
                << "\",\"seconds\":" << c.singles[j].seconds << "}";
        oss << "],\"portfolio\":{\"set\":\"" << c.portfolio.set
            << "\",\"verdict\":\"" << c.portfolio.verdict
            << "\",\"seconds\":" << c.portfolio.seconds << ",\"winner\":\""
            << c.winner << "\",\"importedFacts\":" << c.importedFacts
            << "},\"bestSingleSeconds\":" << c.bestSingleSeconds
            << ",\"portfolioSeconds\":" << c.portfolio.seconds << "}";
    }
    oss << "]}";
    return oss.str();
}

} // namespace

int
main(int argc, char **argv)
{
    double budget = bench::budgetSeconds(argc, argv, 120.0);
    std::printf("Portfolio bench: sequential engines vs concurrent "
                "first-winner portfolio (budget %.0fs per run)\n",
                budget);

    std::vector<Cell> cells = {
        {"Sodor (InOrder, secure)", proc::inOrderSpec(), true},
        {"SimpleOoO-S (DelaySpectre, secure)",
         proc::simpleOoOSpec(defense::Defense::DelaySpectre), true},
        {"SimpleOoO (insecure)",
         proc::simpleOoOSpec(defense::Defense::None), false},
        {"RideLite (insecure)",
         proc::rideLiteSpec(defense::Defense::None), false},
    };

    const std::vector<std::vector<mc::EngineKind>> singles = {
        {mc::EngineKind::Bmc},
        {mc::EngineKind::KInduction},
        {mc::EngineKind::Pdr},
    };
    const std::vector<mc::EngineKind> full = {mc::EngineKind::Bmc,
                                              mc::EngineKind::KInduction,
                                              mc::EngineKind::Pdr};

    std::vector<CellReport> reports;
    for (const Cell &cell : cells) {
        bench::banner(cell.name);
        verif::VerificationTask task = cellTask(cell, budget);
        CellReport report;
        report.name = cell.name;
        for (const auto &engines : singles) {
            EngineCell ec = runWith(task, engines, nullptr);
            char line[128];
            std::snprintf(line, sizeof(line), "%s in %.2fs",
                          ec.verdict.c_str(), ec.seconds);
            bench::row("  " + ec.set, line);
            report.singles.push_back(std::move(ec));
        }
        verif::RunnerResult rr;
        report.portfolio = runWith(task, full, &rr);
        report.winner = rr.winningEngine;
        report.importedFacts = rr.importedFacts;
        for (const EngineCell &ec : report.singles)
            if (ec.verdict == report.portfolio.verdict &&
                (report.bestSingleSeconds < 0 ||
                 ec.seconds < report.bestSingleSeconds))
                report.bestSingleSeconds = ec.seconds;
        char line[160];
        std::snprintf(line, sizeof(line),
                      "%s in %.2fs (winner %s, best single %.2fs, %llu "
                      "fact(s) shared)",
                      report.portfolio.verdict.c_str(),
                      report.portfolio.seconds,
                      report.winner.empty() ? "-" : report.winner.c_str(),
                      report.bestSingleSeconds,
                      static_cast<unsigned long long>(report.importedFacts));
        bench::row("  portfolio", line);
        reports.push_back(std::move(report));
    }

    const char *out_path = "BENCH_portfolio.json";
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    out << toJson(reports, budget) << "\n";
    std::printf("\nwrote %s\n", out_path);
    return 0;
}
