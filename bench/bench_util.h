/**
 * @file
 * Shared helpers for the reproduction bench binaries: budget flags and
 * aligned table printing. Each bench regenerates one table/figure from
 * the paper's evaluation (see EXPERIMENTS.md for the mapping).
 */

#ifndef CSL_BENCH_BENCH_UTIL_H_
#define CSL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace csl::bench {

/**
 * Per-cell wall-clock budget in seconds. Defaults to @p def; override
 * with `--budget <seconds>` (first flag) or the CSL_BENCH_BUDGET
 * environment variable. The paper's timeout is 7 days on a Xeon server;
 * scale expectations accordingly.
 */
inline double
budgetSeconds(int argc, char **argv, double def)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--budget") == 0)
            return std::atof(argv[i + 1]);
    if (const char *env = std::getenv("CSL_BENCH_BUDGET"))
        return std::atof(env);
    return def;
}

/** printf a row with a fixed-width first column. */
inline void
row(const std::string &head, const std::string &body)
{
    std::printf("%-28s %s\n", head.c_str(), body.c_str());
}

inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

} // namespace csl::bench

#endif // CSL_BENCH_BENCH_UTIL_H_
