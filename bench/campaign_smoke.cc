/**
 * @file
 * Campaign-supervisor smoke over the five Table-2 cells (trimmed
 * budgets), exercising the two failure modes the supervisor exists
 * for, with REAL verification workers (no test seam):
 *
 *  1. Worker loss mid-campaign: one worker is crash-injected via the
 *     `campaign.worker-crash` fault site (SIGKILL, supervisor-side
 *     fire-once accounting - the CSL_FAULT=campaign.worker-crash env
 *     path arms the same registry). Every one of the five cells must
 *     still report an honest verdict: the secure cells never ATTACK,
 *     the insecure hunts still find their attacks, and exactly one
 *     cell shows the extra triaged attempt.
 *
 *  2. Supervisor loss: a forked supervisor arms
 *     `campaign.supervisor-kill` and dies by SIGKILL right after its
 *     first durable manifest checkpoint past a finished cell; the
 *     resumed campaign (`cslv --campaign-resume` equivalent) must
 *     complete WITHOUT re-running the finished cell.
 *
 * Wired into ctest (and tools/check.sh runs it under ASan/UBSan), so
 * the fork/poll/rlimit paths stay memory-clean too.
 */

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "base/faultpoint.h"
#include "verif/campaign/scheduler.h"

using namespace csl;
using namespace csl::verif::campaign;
using mc::Verdict;

namespace {

int failures = 0;

void
check(bool ok, const std::string &what)
{
    std::printf("  %-64s %s\n", what.c_str(), ok ? "ok" : "FAIL");
    if (!ok)
        ++failures;
}

/** Table 2, trimmed: the secure cells get enough budget to prove (or
 * time out honestly), the insecure hunts find their attacks well within
 * theirs. Depth 12 suffices for every known attack on these presets. */
const char kTable2Spec[] =
    "csl-campaign 1\n"
    "cell sodor       core=inorder   budget=90\n"
    "cell simpleooo-s core=simpleooo defense=delay_spectre budget=120\n"
    "cell simpleooo   core=simpleooo hunt=1 depth=12 budget=90\n"
    "cell ridelite    core=ridelite  hunt=1 depth=12 budget=90\n"
    "cell boomlike    core=boomlike  hunt=1 depth=12 budget=120\n";

void
runWorkerCrashCampaign()
{
    std::printf("worker-crash campaign (Table 2, one cell injected):\n");
    std::string error;
    auto spec = CampaignSpec::parse(kTable2Spec, &error);
    check(spec.has_value(), "spec parses: " + error);
    if (!spec)
        return;

    CampaignOptions opts;
    opts.workers = 2;
    opts.backoffBaseMs = 10; // retry fast; jitter still exercised
    // The workers' own budget enforcement is the intended terminator
    // here; a tight supervisor wall cap would race it on a loaded or
    // sanitized host and wall-kill a worker that was about to return a
    // clean TIMEOUT verdict.
    opts.wallSlackSeconds = 300;
    fault::arm("campaign.worker-crash");
    CampaignReport report = runCampaign(*spec, opts);
    fault::disarmAll();

    check(report.cells.size() == 5, "report carries all 5 cells");
    check(report.complete(),
          "campaign completes despite the crashed worker");

    size_t injured = 0;
    for (const CellReport &cell : report.cells) {
        check(cell.status == "done",
              "cell " + cell.name + " reports a verdict");
        if (cell.status != "done")
            continue;
        const bool hunt = cell.name == "simpleooo" ||
                          cell.name == "ridelite" ||
                          cell.name == "boomlike";
        if (hunt)
            check(cell.result.verdict == Verdict::Attack,
                  "cell " + cell.name + " finds its attack");
        else
            check(cell.result.verdict != Verdict::Attack,
                  "cell " + cell.name + " never claims a false attack");
        size_t crashes = 0;
        for (const std::string &f : cell.failures) {
            if (f.find("crash-signal") != std::string::npos)
                ++crashes;
            else
                // Resource kills (wall/cpu) can happen on a heavily
                // loaded host; they are triaged and recovered like any
                // other failure, so note them without failing the run.
                std::printf("  note: cell %s extra failure '%s'\n",
                            cell.name.c_str(), f.c_str());
        }
        if (crashes > 0) {
            ++injured;
            check(cell.attempts == cell.failures.size() + 1,
                  "cell " + cell.name + " recovered after triage");
        }
    }
    check(injured == 1, "exactly one cell took the injected crash");
}

void
runSupervisorKillResume()
{
    std::printf("supervisor SIGKILL + --campaign-resume:\n");
    std::string prefix = "campaign_smoke_" + std::to_string(getpid());
    std::string manifestPath = prefix + ".manifest";
    std::remove(manifestPath.c_str());

    // workers=1 keeps the kill point orphan-free: the worker of the
    // just-finished cell is already reaped when the checkpoint fires.
    const char specText[] =
        "csl-campaign 1\n"
        "cell fast-hunt core=simpleooo hunt=1 depth=12 budget=90\n"
        "cell sodor     core=inorder   budget=90\n";
    auto spec = CampaignSpec::parse(specText, nullptr);
    check(spec.has_value(), "resume spec parses");
    if (!spec)
        return;

    pid_t pid = fork();
    if (pid == 0) {
        // Child supervisor: die right after the first durable
        // checkpoint that follows a finished cell (hit 1 is the
        // campaign-start checkpoint).
        fault::arm("campaign.supervisor-kill", 2);
        CampaignOptions opts;
        opts.workers = 1;
        opts.statePrefix = prefix;
        opts.wallSlackSeconds = 300;
        runCampaign(*spec, opts);
        _exit(42); // fault did not fire: flagged by the parent
    }
    int status = 0;
    waitpid(pid, &status, 0);
    check(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL,
          "supervisor killed mid-campaign by injected SIGKILL");

    auto manifest = CampaignManifest::load(manifestPath);
    check(manifest.has_value(), "manifest survives the kill");
    size_t doneBefore = 0, attemptsBefore = 0;
    if (manifest) {
        for (const ManifestCell &cell : manifest->cells)
            if (cell.status == "done") {
                ++doneBefore;
                attemptsBefore += cell.attempts;
            }
        check(doneBefore == 1, "exactly one cell finished before kill");
    }

    CampaignOptions opts;
    opts.workers = 1;
    opts.statePrefix = prefix;
    opts.wallSlackSeconds = 300;
    opts.resume = true;
    CampaignReport resumed = runCampaign(*spec, opts);
    check(resumed.complete(), "resumed campaign completes");
    check(resumed.cells.size() == 2, "resumed report carries both cells");
    for (const CellReport &cell : resumed.cells) {
        check(cell.status == "done",
              "cell " + cell.name + " settled after resume");
        if (cell.name == "fast-hunt") {
            check(cell.attempts == attemptsBefore,
                  "finished cell was not re-run (attempts unchanged)");
            check(cell.result.verdict == Verdict::Attack,
                  "finished cell's verdict adopted from the manifest");
        }
    }

    std::remove(manifestPath.c_str());
    for (const char *name : {"fast-hunt", "sodor"})
        std::remove((prefix + "." + name + ".journal").c_str());
}

} // namespace

int
main()
{
    runWorkerCrashCampaign();
    runSupervisorKillResume();
    std::printf("campaign smoke: %s\n",
                failures == 0 ? "all clean" : "FAILURES");
    return failures == 0 ? 0 : 1;
}
