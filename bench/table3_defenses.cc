/**
 * @file
 * Reproduces Table 3: Contract Shadow Logic verification time for the
 * five defense mechanisms on SimpleOoO, under both contracts.
 *
 * Expected shape (paper): NoFwd_futuristic - sandboxing PROOF,
 * constant-time ATTACK (sub-second); NoFwd_spectre - sandboxing PROOF
 * (their slowest proof), constant-time ATTACK; Delay_futuristic and
 * Delay_spectre - PROOF under both; DoM_spectre - ATTACK under both
 * (found on the 8-entry-ROB configuration, per the paper's footnote).
 * Attacks are found orders of magnitude faster than proofs, and the
 * more conservative (futuristic) defenses verify faster.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "verif/task.h"

using namespace csl;

namespace {

std::string
runCell(defense::Defense defense, contract::Contract contract,
        double budget)
{
    // Attack hunting first (attacks surface orders of magnitude faster
    // than proofs, as in the paper); the remaining budget goes to the
    // proof pipeline. The DoM attack needs deep traces (cache warm-up +
    // a speculation window on the 8-entry ROB), hence the deeper bound.
    verif::VerificationTask hunt;
    hunt.core = proc::simpleOoOSpec(defense);
    hunt.contract = contract;
    hunt.scheme = verif::Scheme::ContractShadow;
    hunt.tryProof = false;
    hunt.assumeSecretsDiffer = true;
    hunt.maxDepth = hunt.core.ooo.hasCache ? 22 : 12;
    // The DoM attack sits ~14 cycles deep (cache warm-up + committed
    // secret load + speculative probe) and costs minutes, matching the
    // paper's 5.9-minute cell; give those hunts a bigger share.
    hunt.timeoutSeconds = budget * (hunt.core.ooo.hasCache ? 2.5 : 0.4);
    verif::VerificationResult hres = verif::runVerification(hunt);
    if (hres.verdict == mc::Verdict::Attack)
        return verif::formatResult(hres);

    verif::VerificationTask task = hunt;
    task.tryProof = true;
    task.assumeSecretsDiffer = false;
    task.maxDepth = 24;
    task.timeoutSeconds = budget * 0.6;
    verif::VerificationResult res = verif::runVerification(task);
    if (res.verdict == mc::Verdict::BoundedSafe ||
        res.verdict == mc::Verdict::Timeout) {
        // Neither an attack nor a proof within budget: report the
        // stronger of the two bounded answers.
        std::string note = verif::formatResult(res) +
                           " [no attack to depth " +
                           std::to_string(hres.depth) + "]";
        return note;
    }
    return verif::formatResult(res);
}

} // namespace

int
main(int argc, char **argv)
{
    double budget = bench::budgetSeconds(argc, argv, 180.0);
    std::printf("Table 3 reproduction: defense x contract verification "
                "time on SimpleOoO\n(ContractShadow scheme, budget %.0fs "
                "per cell)\n",
                budget);
    std::vector<defense::Defense> defenses = {
        defense::Defense::NoFwdFuturistic,
        defense::Defense::NoFwdSpectre,
        defense::Defense::DelayFuturistic,
        defense::Defense::DelaySpectre,
        defense::Defense::DoMSpectre,
    };
    for (defense::Defense d : defenses) {
        bench::banner(defense::defenseName(d));
        bench::row("  sandboxing",
                   runCell(d, contract::Contract::Sandboxing, budget));
        bench::row("  constant-time",
                   runCell(d, contract::Contract::ConstantTime, budget));
    }
    return 0;
}
