/**
 * @file
 * google-benchmark microbenchmarks for the verification substrate: SAT
 * solving, circuit construction, bit-blasting, simulation, and BMC
 * throughput. These quantify the engine the reproduction rests on
 * (JasperGold's role in the paper).
 */

#include <benchmark/benchmark.h>

#include <random>

#include "bitblast/cnf_builder.h"
#include "bitblast/unroller.h"
#include "mc/bmc.h"
#include "proc/presets.h"
#include "rtl/builder.h"
#include "sat/solver.h"
#include "shadow/shadow_builder.h"
#include "sim/simulator.h"

using namespace csl;

namespace {

void
addPigeonhole(sat::Solver &solver, int holes)
{
    int pigeons = holes + 1;
    std::vector<std::vector<sat::Var>> x(pigeons,
                                         std::vector<sat::Var>(holes));
    for (auto &row : x)
        for (auto &v : row)
            v = solver.newVar();
    for (int p = 0; p < pigeons; ++p) {
        std::vector<sat::Lit> clause;
        for (int h = 0; h < holes; ++h)
            clause.push_back(sat::mkLit(x[p][h]));
        solver.addClause(clause);
    }
    for (int h = 0; h < holes; ++h)
        for (int p1 = 0; p1 < pigeons; ++p1)
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                solver.addClause(sat::mkLit(x[p1][h], true),
                                 sat::mkLit(x[p2][h], true));
}

void
BM_SatPigeonhole(benchmark::State &state)
{
    for (auto _ : state) {
        sat::Solver solver;
        addPigeonhole(solver, int(state.range(0)));
        benchmark::DoNotOptimize(solver.solve());
    }
}
BENCHMARK(BM_SatPigeonhole)->Arg(5)->Arg(6)->Arg(7);

void
BM_SatRandom3Sat(benchmark::State &state)
{
    const int num_vars = int(state.range(0));
    const int num_clauses = int(num_vars * 4.1);
    for (auto _ : state) {
        state.PauseTiming();
        std::mt19937 rng(42);
        sat::Solver solver;
        for (int i = 0; i < num_vars; ++i)
            solver.newVar();
        for (int i = 0; i < num_clauses; ++i) {
            std::vector<sat::Lit> clause;
            for (int j = 0; j < 3; ++j)
                clause.push_back(
                    sat::mkLit(int(rng() % num_vars), rng() & 1));
            solver.addClause(clause);
        }
        state.ResumeTiming();
        benchmark::DoNotOptimize(solver.solve());
    }
}
BENCHMARK(BM_SatRandom3Sat)->Arg(60)->Arg(100)->Arg(140);

void
BM_BuildShadowCircuit(benchmark::State &state)
{
    proc::CoreSpec spec = proc::simpleOoOSpec();
    for (auto _ : state) {
        rtl::Circuit circuit;
        shadow::ShadowOptions opts;
        shadow::buildShadowCircuit(circuit, spec, opts);
        benchmark::DoNotOptimize(circuit.numNets());
    }
}
BENCHMARK(BM_BuildShadowCircuit);

void
BM_BitblastShadowFrame(benchmark::State &state)
{
    rtl::Circuit circuit;
    shadow::ShadowOptions opts;
    proc::CoreSpec spec = proc::simpleOoOSpec();
    shadow::buildShadowCircuit(circuit, spec, opts);
    for (auto _ : state) {
        sat::Solver solver;
        bitblast::CnfBuilder cnf(solver);
        bitblast::Unroller unroller(circuit, cnf, false);
        unroller.ensureFrames(size_t(state.range(0)));
        benchmark::DoNotOptimize(solver.numVars());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BitblastShadowFrame)->Arg(1)->Arg(4)->Arg(8);

void
BM_SimulateShadowPair(benchmark::State &state)
{
    rtl::Circuit circuit;
    shadow::ShadowOptions opts;
    proc::CoreSpec spec = proc::simpleOoOSpec();
    shadow::buildShadowCircuit(circuit, spec, opts);
    sim::Simulator simulator(circuit);
    for (auto _ : state)
        simulator.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulateShadowPair);

void
BM_BmcShadowDepth(benchmark::State &state)
{
    rtl::Circuit circuit;
    shadow::ShadowOptions opts;
    opts.assumeSecretsDiffer = true;
    proc::CoreSpec spec =
        proc::simpleOoOSpec(defense::Defense::DelayFuturistic);
    shadow::buildShadowCircuit(circuit, spec, opts);
    for (auto _ : state) {
        mc::Bmc bmc(circuit);
        benchmark::DoNotOptimize(bmc.run(size_t(state.range(0))).kind);
    }
}
BENCHMARK(BM_BmcShadowDepth)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
