// Tandem functional tests: every core's committed instruction stream must
// match the golden architectural model on randomized programs and initial
// states (the paper's decoupled functional-correctness obligation), plus
// directed microarchitectural tests of speculation and defense behaviour.

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "isa/assembler.h"
#include "isa/golden.h"
#include "proc/presets.h"
#include "rtl/builder.h"
#include "sim/simulator.h"

namespace csl {
namespace {

using defense::Defense;
using isa::GoldenModel;
using isa::IsaConfig;
using proc::CoreIfc;
using proc::CoreSpec;
using rtl::Builder;
using rtl::Circuit;
using sim::Simulator;

/** One observed commit, normalized for golden comparison. */
struct ObservedCommit
{
    bool exception, writesReg, isLoad, isStore, isBranch, taken;
    uint64_t wdata, addr;

    bool operator==(const ObservedCommit &o) const = default;
};

std::string
fmt(const ObservedCommit &c)
{
    std::ostringstream oss;
    oss << "exc=" << c.exception << " wr=" << c.writesReg
        << " ld=" << c.isLoad << " st=" << c.isStore << " br=" << c.isBranch
        << " taken=" << c.taken << " wdata=" << c.wdata
        << " addr=" << c.addr;
    return oss.str();
}

ObservedCommit
fromGolden(const isa::CommitRecord &r)
{
    ObservedCommit c{};
    c.exception = r.exception;
    c.writesReg = r.writesReg;
    c.isLoad = r.isLoad;
    c.isStore = r.isStore;
    c.isBranch = r.isBranch;
    c.taken = r.taken;
    c.wdata = r.writesReg ? r.wdata : 0;
    c.addr = (r.isLoad || r.isStore) ? r.addr : 0;
    return c;
}

/** A core instance wired for standalone simulation. */
struct SimHarness
{
    Circuit circuit;
    CoreIfc ifc;
    std::unique_ptr<Builder> builder;
    std::unique_ptr<Simulator> sim;

    SimHarness(const CoreSpec &spec, const std::vector<uint64_t> &imem,
               const std::vector<uint64_t> &dmem,
               const std::vector<uint64_t> &regs)
    {
        builder = std::make_unique<Builder>(circuit);
        ifc = proc::buildCore(*builder, spec, "cpu");
        builder->finish();
        sim = std::make_unique<Simulator>(circuit);
        std::unordered_map<rtl::NetId, uint64_t> init;
        for (size_t i = 0; i < imem.size(); ++i)
            init[ifc.imem->word(i).id] = imem[i];
        for (size_t i = 0; i < dmem.size(); ++i)
            init[ifc.dmem->word(i).id] = dmem[i];
        for (size_t i = 0; i < regs.size(); ++i)
            init[ifc.archRegs[i].id] = regs[i];
        sim->reset(init);
    }

    /** Run one cycle; append any commits (oldest slot first). */
    void
    stepAndCollect(std::vector<ObservedCommit> &out)
    {
        sim->evaluate();
        for (const proc::CommitSlot &slot : ifc.commits) {
            if (!sim->value(slot.valid.id))
                continue;
            ObservedCommit c{};
            c.exception = sim->value(slot.exception.id);
            c.writesReg = sim->value(slot.writesReg.id);
            c.isLoad = sim->value(slot.isLoad.id);
            c.isStore = sim->value(slot.isStore.id);
            c.isBranch = sim->value(slot.isBranch.id);
            c.taken = sim->value(slot.taken.id);
            c.wdata = c.writesReg ? sim->value(slot.wdata.id) : 0;
            c.addr = (c.isLoad || c.isStore) ? sim->value(slot.addr.id) : 0;
            out.push_back(c);
        }
        sim->tick();
    }

    /** Current memory-bus observation (call between evaluate and tick). */
    bool busValid() const { return sim->value(ifc.memBusValid.id); }
    uint64_t busAddr() const { return sim->value(ifc.memBusAddr.id); }
};

void
runTandem(const CoreSpec &spec, uint32_t seed, int cycles)
{
    const IsaConfig &ic = spec.isaConfig();
    std::mt19937_64 rng(seed);
    std::vector<uint64_t> imem(ic.imemSize), dmem(ic.dmemSize),
        regs(ic.regCount);
    for (auto &w : imem)
        w = truncBits(rng(), ic.instrBits());
    for (auto &w : dmem)
        w = truncBits(rng(), ic.dataWidth);
    for (auto &w : regs)
        w = truncBits(rng(), ic.dataWidth);

    SimHarness harness(spec, imem, dmem, regs);
    std::vector<ObservedCommit> observed;
    for (int t = 0; t < cycles; ++t)
        harness.stepAndCollect(observed);

    // Progress: an unstalled core must retire work.
    ASSERT_GT(observed.size(), 0u)
        << coreKindName(spec.kind) << " committed nothing in " << cycles
        << " cycles (seed " << seed << ")";

    GoldenModel golden(ic, imem, dmem, regs);
    for (size_t i = 0; i < observed.size(); ++i) {
        ObservedCommit expect = fromGolden(golden.step());
        ASSERT_EQ(observed[i], expect)
            << coreKindName(spec.kind) << " seed " << seed
            << " commit #" << i << "\n  core:   " << fmt(observed[i])
            << "\n  golden: " << fmt(expect);
    }
}

struct TandemParam
{
    const char *name;
    CoreSpec spec;
};

class Tandem : public ::testing::TestWithParam<TandemParam>
{};

TEST_P(Tandem, CommitsMatchGolden)
{
    for (uint32_t seed = 1; seed <= 25; ++seed)
        runTandem(GetParam().spec, seed, 120);
}

INSTANTIATE_TEST_SUITE_P(
    Cores, Tandem,
    ::testing::Values(
        TandemParam{"IsaMachine", proc::isaMachineSpec()},
        TandemParam{"InOrder", proc::inOrderSpec()},
        TandemParam{"SimpleOoO", proc::simpleOoOSpec()},
        TandemParam{"SimpleOoO_NoFwdFut",
                    proc::simpleOoOSpec(Defense::NoFwdFuturistic)},
        TandemParam{"SimpleOoO_NoFwdSpectre",
                    proc::simpleOoOSpec(Defense::NoFwdSpectre)},
        TandemParam{"SimpleOoO_DelayFut",
                    proc::simpleOoOSpec(Defense::DelayFuturistic)},
        TandemParam{"SimpleOoO_DelaySpectre",
                    proc::simpleOoOSpec(Defense::DelaySpectre)},
        TandemParam{"SimpleOoO_DoM",
                    proc::simpleOoOSpec(Defense::DoMSpectre)},
        TandemParam{"RideLite", proc::rideLiteSpec()},
        TandemParam{"RideLite_DelaySpectre",
                    proc::rideLiteSpec(Defense::DelaySpectre)},
        TandemParam{"BoomLike", proc::boomLikeSpec()},
        TandemParam{"BoomLike_DelayFut",
                    proc::boomLikeSpec(Defense::DelayFuturistic)}),
    [](const auto &info) { return std::string(info.param.name); });

TEST(IsaMachineDirected, OneInstructionPerCycle)
{
    IsaConfig ic;
    auto program = isa::assemble(R"(
        li r1, 3
        add r2, r1, r1
        ld r3, [r2]
        beqz r0, +1
    )",
                                 ic);
    CoreSpec spec = proc::isaMachineSpec();
    SimHarness harness(spec, program, {1, 2, 3, 4}, {0, 0, 0, 0});
    std::vector<ObservedCommit> observed;
    for (int t = 0; t < 8; ++t)
        harness.stepAndCollect(observed);
    EXPECT_EQ(observed.size(), 8u); // one commit per cycle, no gaps
    EXPECT_EQ(observed[0].wdata, 3u);           // li r1, 3
    EXPECT_EQ(observed[1].wdata, 6u);           // add: 3 + 3
    EXPECT_TRUE(observed[2].isLoad);
    EXPECT_EQ(observed[2].addr, 6u);            // ld [r2=6]
    EXPECT_EQ(observed[2].wdata, 3u);           // dmem[6 mod 4] = dmem[2]
    EXPECT_TRUE(observed[3].isBranch);
    EXPECT_TRUE(observed[3].taken);             // r0 == 0
}

// The transient-leak shape: a mispredicted branch waits on a slow chain
// while a younger load chain dereferences a secret. On the insecure core
// the secret-dependent address must reach the memory bus; with
// Delay_futuristic it must not.
struct SpectreBusTrace
{
    std::vector<uint64_t> addrs;
};

SpectreBusTrace
runSpectreShape(Defense defense, uint64_t secret)
{
    IsaConfig ic;
    // r0 = 0 (branch cond), r3 = 2 (address of the secret).
    auto program = isa::assemble(R"(
        ld r1, [r0]      # slow branch-condition producer (dmem[0] = 0)
        add r1, r1, r1   # lengthen the chain: branch resolves late
        beqz r1, +3      # taken (mispredict vs. predict-not-taken)
        ld r2, [r3]      # transient: loads the secret from dmem[2]
        ld r2, [r2]      # transient: secret value becomes a bus address
        nop
    )",
                                 ic);
    CoreSpec spec = proc::simpleOoOSpec(defense);
    SimHarness harness(spec, program, {0, 1, secret, 3}, {0, 0, 0, 2});
    SpectreBusTrace trace;
    std::vector<ObservedCommit> observed;
    for (int t = 0; t < 30; ++t) {
        harness.sim->evaluate();
        if (harness.busValid())
            trace.addrs.push_back(harness.busAddr());
        harness.sim->tick();
    }
    return trace;
}

TEST(SpeculationDirected, InsecureCoreLeaksSecretOnBus)
{
    auto t1 = runSpectreShape(Defense::None, 9);
    auto t2 = runSpectreShape(Defense::None, 5);
    EXPECT_NE(t1.addrs, t2.addrs)
        << "insecure core should expose a secret-dependent bus address";
    // The secret value itself must appear as an address.
    EXPECT_NE(std::find(t1.addrs.begin(), t1.addrs.end(), 9u),
              t1.addrs.end());
}

TEST(SpeculationDirected, DelayFuturisticHidesSecret)
{
    auto t1 = runSpectreShape(Defense::DelayFuturistic, 9);
    auto t2 = runSpectreShape(Defense::DelayFuturistic, 5);
    EXPECT_EQ(t1.addrs, t2.addrs);
}

TEST(SpeculationDirected, DelaySpectreHidesSecret)
{
    auto t1 = runSpectreShape(Defense::DelaySpectre, 9);
    auto t2 = runSpectreShape(Defense::DelaySpectre, 5);
    EXPECT_EQ(t1.addrs, t2.addrs);
}

TEST(SpeculationDirected, NoFwdFuturisticHidesSecretValue)
{
    // NoFwd blocks the transient secret from feeding the second load.
    auto t1 = runSpectreShape(Defense::NoFwdFuturistic, 9);
    auto t2 = runSpectreShape(Defense::NoFwdFuturistic, 5);
    EXPECT_EQ(t1.addrs, t2.addrs);
}

TEST(BoomLikeDirected, MisalignedLoadForwardsButTraps)
{
    // The paper's Section 7.1.4 attack shape: a misaligned load traps at
    // commit (so it never architecturally commits), yet speculatively
    // forwards the loaded secret to a younger load.
    CoreSpec spec = proc::boomLikeSpec();
    const IsaConfig &ic = spec.isaConfig();
    // A three-load delay chain keeps the trapping load away from the ROB
    // head long enough for the dependent transient load to reach the bus
    // before the trap squashes it.
    auto program = isa::assemble(R"(
        ld r0, [r0]      # delay chain (dmem[0] = 0 keeps r0 at 0)
        ld r0, [r0]
        ld r0, [r0]
        ld r2, [r1]      # misaligned (addr 1): traps at commit
        ld r3, [r2]      # transient: dereferences the forwarded secret
        nop
    )",
                                 ic);
    // dmem[1] holds a "secret" 3; r1 starts at the misaligned address 1.
    SimHarness harness(spec, program, {0, 3, 0, 0}, {0, 1, 0, 0});
    std::vector<ObservedCommit> observed;
    std::vector<uint64_t> bus;
    for (int t = 0; t < 24; ++t) {
        harness.sim->evaluate();
        if (harness.busValid())
            bus.push_back(harness.busAddr());
        for (const proc::CommitSlot &slot : harness.ifc.commits) {
            if (!harness.sim->value(slot.valid.id))
                continue;
            ObservedCommit c{};
            c.exception = harness.sim->value(slot.exception.id);
            c.isLoad = harness.sim->value(slot.isLoad.id);
            observed.push_back(c);
        }
        harness.sim->tick();
    }
    // The speculative dereference of the forwarded value hit the bus.
    EXPECT_NE(std::find(bus.begin(), bus.end(), 3u), bus.end());
    // And some committed load carries the exception marker.
    bool trapped = false;
    for (const auto &c : observed)
        trapped = trapped || (c.isLoad && c.exception);
    EXPECT_TRUE(trapped);
}

TEST(DoMDirected, HitMissTimingDiffers)
{
    // Two runs differing only in whether a cache line was warmed by an
    // earlier access: commit timing of the probing load differs.
    auto run = [&](uint64_t warm_addr) {
        CoreSpec spec = proc::simpleOoOSpec(Defense::DoMSpectre);
        const IsaConfig &ic = spec.isaConfig();
        auto program = isa::assemble(R"(
            ld r1, [r2]      # warms the cache line at [r2]
            ld r3, [r0]      # probe: hit iff warm_addr == 0
        )",
                                     ic);
        std::vector<uint64_t> regs(ic.regCount, 0);
        regs[2] = warm_addr;
        SimHarness harness(spec, program, {1, 2, 3, 4}, regs);
        std::vector<int> commit_cycles;
        for (int t = 0; t < 30; ++t) {
            harness.sim->evaluate();
            if (harness.sim->value(harness.ifc.commits[0].valid.id))
                commit_cycles.push_back(t);
            harness.sim->tick();
        }
        return commit_cycles;
    };
    auto hit = run(0);
    auto miss = run(3);
    ASSERT_GE(hit.size(), 2u);
    ASSERT_GE(miss.size(), 2u);
    EXPECT_LT(hit[1], miss[1]) << "cache hit should commit earlier";
}

TEST(RideLiteDirected, CanCommitTwoPerCycle)
{
    CoreSpec spec = proc::rideLiteSpec();
    const IsaConfig &ic = spec.isaConfig();
    // A dependent-load stall lets a younger LI finish behind the slow
    // head, so both retire in the same cycle once the head completes.
    auto program = isa::assemble(R"(
        ld r1, [r0]
        ld r1, [r1]
        li r2, 1
        li r3, 2
    )",
                                 ic);
    SimHarness harness(spec, program, {0, 0, 0, 0},
                       {0, 0, 0, 0});
    bool dual = false;
    for (int t = 0; t < 20 && !dual; ++t) {
        harness.sim->evaluate();
        dual = harness.sim->value(harness.ifc.commits[0].valid.id) &&
               harness.sim->value(harness.ifc.commits[1].valid.id);
        harness.sim->tick();
    }
    EXPECT_TRUE(dual) << "2-wide core never dual-committed";
}

} // namespace
} // namespace csl
