// Tests for the optional taint-propagation shadow instrumentation
// (paper Section 8 exploration): architectural neutrality (tandem),
// taint semantics in simulation, and its effect on the invariant search.

#include <gtest/gtest.h>

#include <random>

#include "isa/assembler.h"
#include "isa/golden.h"
#include "mc/kinduction.h"
#include "proc/presets.h"
#include "rtl/builder.h"
#include "shadow/shadow_builder.h"
#include "sim/simulator.h"

namespace csl {
namespace {

using defense::Defense;
using isa::IsaConfig;
using proc::CoreSpec;

CoreSpec
taintedSpec(Defense defense, proc::OoOConfig::Taint mode)
{
    CoreSpec spec = proc::simpleOoOSpec(defense);
    spec.ooo.taint = mode;
    return spec;
}

TEST(Taint, DoesNotChangeArchitecturalBehaviour)
{
    // Tandem check with instrumentation on: commits must still match the
    // golden model exactly.
    CoreSpec spec =
        taintedSpec(Defense::None, proc::OoOConfig::Taint::Sandboxing);
    const IsaConfig &ic = spec.isaConfig();
    std::mt19937_64 rng(4242);
    for (int round = 0; round < 10; ++round) {
        std::vector<uint64_t> imem(ic.imemSize), dmem(ic.dmemSize),
            regs(ic.regCount);
        for (auto &w : imem)
            w = truncBits(rng(), ic.instrBits());
        for (auto &w : dmem)
            w = truncBits(rng(), ic.dataWidth);
        for (auto &w : regs)
            w = truncBits(rng(), ic.dataWidth);

        rtl::Circuit circuit;
        rtl::Builder b(circuit);
        proc::CoreIfc ifc = proc::buildCore(b, spec, "cpu");
        b.finish();
        sim::Simulator sim(circuit);
        std::unordered_map<rtl::NetId, uint64_t> init;
        for (size_t i = 0; i < imem.size(); ++i)
            init[ifc.imemWords[i].id] = imem[i];
        for (size_t i = 0; i < dmem.size(); ++i)
            init[ifc.dmemWords[i].id] = dmem[i];
        for (size_t i = 0; i < regs.size(); ++i)
            init[ifc.archRegs[i].id] = regs[i];
        sim.reset(init);

        isa::GoldenModel golden(ic, imem, dmem, regs);
        for (int t = 0; t < 80; ++t) {
            sim.evaluate();
            const proc::CommitSlot &slot = ifc.commits[0];
            if (sim.value(slot.valid.id)) {
                auto rec = golden.step();
                ASSERT_EQ(sim.value(slot.exception.id), rec.exception);
                if (rec.writesReg && !rec.exception)
                    ASSERT_EQ(sim.value(slot.wdata.id), rec.wdata)
                        << "round " << round << " cycle " << t;
            }
            sim.tick();
        }
    }
}

TEST(Taint, SecretLoadTaintsRegisterUnderConstantTime)
{
    // Under the constant-time policy a committed load of the secret
    // region leaves the destination register tainted.
    CoreSpec spec =
        taintedSpec(Defense::None, proc::OoOConfig::Taint::ConstantTime);
    const IsaConfig &ic = spec.isaConfig();
    auto program = isa::assemble("ld r1, [r3]\nnop\n", ic);

    rtl::Circuit circuit;
    rtl::Builder b(circuit);
    proc::CoreIfc ifc = proc::buildCore(b, spec, "cpu");
    b.finish();
    sim::Simulator sim(circuit);
    std::unordered_map<rtl::NetId, uint64_t> init;
    for (size_t i = 0; i < program.size(); ++i)
        init[ifc.imemWords[i].id] = program[i];
    init[ifc.archRegs[3].id] = 2; // secret region (dmem[2])
    sim.reset(init);

    rtl::NetId taint1 = circuit.findByName("cpu.taintReg1");
    ASSERT_NE(taint1, rtl::kNoNet);
    bool tainted = false;
    for (int t = 0; t < 10; ++t) {
        sim.evaluate();
        tainted = tainted || sim.value(taint1);
        sim.tick();
    }
    EXPECT_TRUE(tainted);
}

TEST(Taint, SandboxingCommitClearsLoadTaint)
{
    // Under sandboxing the committed load's data is observation-
    // constrained, so the architectural register ends up untainted.
    CoreSpec spec =
        taintedSpec(Defense::None, proc::OoOConfig::Taint::Sandboxing);
    const IsaConfig &ic = spec.isaConfig();
    auto program = isa::assemble("ld r1, [r3]\nnop\n", ic);

    rtl::Circuit circuit;
    rtl::Builder b(circuit);
    proc::CoreIfc ifc = proc::buildCore(b, spec, "cpu");
    b.finish();
    sim::Simulator sim(circuit);
    std::unordered_map<rtl::NetId, uint64_t> init;
    for (size_t i = 0; i < program.size(); ++i)
        init[ifc.imemWords[i].id] = program[i];
    init[ifc.archRegs[3].id] = 2;
    sim.reset(init);

    rtl::NetId taint1 = circuit.findByName("cpu.taintReg1");
    for (int t = 0; t < 10; ++t) {
        sim.evaluate();
        EXPECT_EQ(sim.value(taint1), 0u) << "cycle " << t;
        sim.tick();
    }
}

TEST(Taint, PublicLoadStaysUntainted)
{
    CoreSpec spec =
        taintedSpec(Defense::None, proc::OoOConfig::Taint::ConstantTime);
    const IsaConfig &ic = spec.isaConfig();
    auto program = isa::assemble("ld r1, [r0]\nnop\n", ic);

    rtl::Circuit circuit;
    rtl::Builder b(circuit);
    proc::CoreIfc ifc = proc::buildCore(b, spec, "cpu");
    b.finish();
    sim::Simulator sim(circuit);
    std::unordered_map<rtl::NetId, uint64_t> init;
    for (size_t i = 0; i < program.size(); ++i)
        init[ifc.imemWords[i].id] = program[i];
    sim.reset(init); // r0 = 0: public region
    rtl::NetId taint1 = circuit.findByName("cpu.taintReg1");
    for (int t = 0; t < 10; ++t) {
        sim.evaluate();
        EXPECT_EQ(sim.value(taint1), 0u);
        sim.tick();
    }
}

TEST(Taint, InstrumentationAddsCandidatesAndKeepsProofs)
{
    // The instrumented secure core still proves, with extra taint-guard
    // candidates in the pool.
    CoreSpec plain = proc::simpleOoOSpec(Defense::DelayFuturistic);
    CoreSpec tainted = taintedSpec(Defense::DelayFuturistic,
                                   proc::OoOConfig::Taint::Sandboxing);

    rtl::Circuit c1, c2;
    shadow::ShadowOptions opts;
    opts.emitRelationalCandidates = true;
    auto h1 = shadow::buildShadowCircuit(c1, plain, opts);
    auto h2 = shadow::buildShadowCircuit(c2, tainted, opts);
    EXPECT_GT(h2.relationalCandidates.size(),
              h1.relationalCandidates.size());

    Budget budget(120);
    auto survivors =
        mc::proveInductiveInvariants(c2, h2.relationalCandidates, &budget);
    ASSERT_TRUE(survivors.has_value());
    // The quiescence candidate must still survive on the secure design.
    EXPECT_NE(std::find(survivors->begin(), survivors->end(),
                        h2.quiescentCandidate),
              survivors->end());
}

} // namespace
} // namespace csl
