// Resilience-layer tests: fault-injection sites, cooperative deadlines,
// adaptive budget latching, the run journal, the staged runner's
// degradation under injected faults, checkpoint/resume equivalence, and
// the witness-replay matrix (every engine counterexample must survive
// the simulation audit on every OoO preset and both MC schemes).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "base/budget.h"
#include "base/deadline.h"
#include "base/faultpoint.h"
#include "mc/portfolio.h"
#include "mc/trace.h"
#include "shadow/baseline_builder.h"
#include "shadow/shadow_builder.h"
#include "verif/journal.h"
#include "verif/runner.h"

namespace csl {
namespace {

using contract::Contract;
using defense::Defense;
using mc::Verdict;

// --- FaultPoint -----------------------------------------------------------

TEST(FaultPoint, UnarmedSiteNeverFires)
{
    fault::disarmAll();
    EXPECT_FALSE(fault::shouldFire("budget.exhaust"));
    EXPECT_FALSE(fault::shouldFire("no.such.site"));
}

TEST(FaultPoint, ArmedSiteFiresExactlyOnceAtItsHit)
{
    fault::disarmAll();
    fault::arm("sat.alloc", 3);
    EXPECT_FALSE(fault::shouldFire("sat.alloc")); // hit 1
    EXPECT_FALSE(fault::shouldFire("sat.alloc")); // hit 2
    EXPECT_TRUE(fault::shouldFire("sat.alloc"));  // hit 3: fires
    EXPECT_TRUE(fault::fired("sat.alloc"));
    EXPECT_FALSE(fault::shouldFire("sat.alloc")); // fire-once
    fault::disarmAll();
}

TEST(FaultPoint, ScopedFaultDisarmsOnDestruction)
{
    fault::disarmAll();
    {
        fault::ScopedFault guard("journal.write");
        EXPECT_TRUE(fault::shouldFire("journal.write"));
    }
    EXPECT_FALSE(fault::shouldFire("journal.write"));
}

TEST(FaultPoint, KnownSitesListsTheDocumentedMatrix)
{
    const auto &sites = fault::knownSites();
    EXPECT_GE(sites.size(), 6u);
    for (const char *site :
         {"budget.exhaust", "sat.alloc", "sat.corrupt-model",
          "houdini.interrupt", "journal.write", "runner.kill"})
        EXPECT_NE(std::find(sites.begin(), sites.end(), site),
                  sites.end())
            << site;
}

// --- Deadline -------------------------------------------------------------

TEST(Deadline, DefaultNeverExpiresButIsCancellable)
{
    Deadline d;
    EXPECT_FALSE(d.expired());
    EXPECT_GT(d.remaining(), 1e6);
    d.cancel();
    EXPECT_TRUE(d.expired());
    EXPECT_TRUE(d.cancelled());
    EXPECT_EQ(d.remaining(), 0.0);
}

TEST(Deadline, ExpiresAfterItsDuration)
{
    Deadline d = Deadline::in(0.0);
    EXPECT_TRUE(d.expired());
    Deadline later = Deadline::in(60.0);
    EXPECT_FALSE(later.expired());
    EXPECT_LE(later.remaining(), 60.0);
    EXPECT_GT(later.remaining(), 50.0);
}

TEST(Deadline, SliceClipsToParentAndSharesCancellation)
{
    Deadline parent = Deadline::in(60.0);
    Deadline slice = parent.slice(5.0);
    EXPECT_LE(slice.remaining(), 5.0);
    Deadline wide = parent.slice(600.0); // clipped to the parent
    EXPECT_LE(wide.remaining(), 60.0);
    parent.cancel();
    EXPECT_TRUE(slice.expired());
    EXPECT_TRUE(wide.expired());
}

// --- Budget ---------------------------------------------------------------

TEST(Budget, LatchesOnceExhausted)
{
    Budget b(1e9, /*work_limit=*/10);
    b.charge(11);
    EXPECT_TRUE(b.exhausted());
    EXPECT_EQ(b.cause(), Budget::Cause::Work);
    // Still exhausted on every later query (latched).
    EXPECT_TRUE(b.exhausted());
}

TEST(Budget, DeadlineCancellationExhaustsBudget)
{
    Deadline d = Deadline::in(60.0);
    Budget b(1e9);
    b.attachDeadline(d);
    EXPECT_FALSE(b.exhausted());
    d.cancel();
    // The adaptive check interval may defer the wall-clock read for a
    // bounded number of calls; drain it.
    bool tripped = false;
    for (int i = 0; i < 5000 && !tripped; ++i)
        tripped = b.exhausted();
    EXPECT_TRUE(tripped);
    EXPECT_EQ(b.cause(), Budget::Cause::Deadline);
}

TEST(Budget, InjectedExhaustionReportsItsCause)
{
    fault::disarmAll();
    fault::ScopedFault guard("budget.exhaust");
    Budget b(1e9);
    bool tripped = false;
    for (int i = 0; i < 5000 && !tripped; ++i)
        tripped = b.exhausted();
    EXPECT_TRUE(tripped);
    EXPECT_EQ(b.cause(), Budget::Cause::Injected);
}

// --- Journal --------------------------------------------------------------

std::string
tmpPath(const char *name)
{
    return testing::TempDir() + name;
}

TEST(Journal, RoundTripsAllFields)
{
    verif::Journal j;
    j.fingerprint = "00c0ffee00c0ffee";
    j.reduction = "constprop,coi";
    j.params["kind"] = "2";
    j.params["timeout"] = "60.0";
    j.bmcSafeDepth = 9;
    j.provenInvariants = {"cand.a", "cand.b"};
    j.provenValid = true;
    j.prunedCandidates = {"cand.c"};
    j.stages.push_back({"kinduction", "TIMEOUT", 9, 1.5});
    j.finalVerdict = "TIMEOUT";

    std::string path = tmpPath("journal_roundtrip.journal");
    ASSERT_TRUE(j.save(path));
    auto loaded = verif::Journal::load(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->fingerprint, j.fingerprint);
    EXPECT_EQ(loaded->reduction, j.reduction);
    EXPECT_EQ(loaded->param("kind"), "2");
    EXPECT_EQ(loaded->bmcSafeDepth, 9u);
    EXPECT_TRUE(loaded->provenValid);
    EXPECT_EQ(loaded->provenInvariants, j.provenInvariants);
    EXPECT_EQ(loaded->prunedCandidates, j.prunedCandidates);
    ASSERT_EQ(loaded->stages.size(), 1u);
    EXPECT_EQ(loaded->stages[0].name, "kinduction");
    EXPECT_EQ(loaded->stages[0].verdict, "TIMEOUT");
    EXPECT_EQ(loaded->finalVerdict, "TIMEOUT");
    std::remove(path.c_str());
}

TEST(Journal, SaveFailsUnderInjectedWriteFault)
{
    fault::disarmAll();
    fault::ScopedFault guard("journal.write");
    verif::Journal j;
    EXPECT_FALSE(j.save(tmpPath("journal_fault.journal")));
}

TEST(Journal, LoadRejectsMissingAndMalformedFiles)
{
    EXPECT_FALSE(verif::Journal::load("/nonexistent/x.journal"));
    std::string path = tmpPath("journal_bad.journal");
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("not a journal\n", f);
        std::fclose(f);
    }
    EXPECT_FALSE(verif::Journal::load(path));
    std::remove(path.c_str());
}

TEST(Journal, TaskParamsRoundTripThroughReconstruction)
{
    verif::VerificationTask task;
    task.core = proc::rideLiteSpec(Defense::DelaySpectre);
    task.contract = Contract::ConstantTime;
    task.scheme = verif::Scheme::UpecLike;
    task.maxDepth = 17;
    task.timeoutSeconds = 42.0;
    task.tryProof = false;
    task.assumeSecretsDiffer = true;
    task.excludeMisaligned = true;

    auto restored =
        verif::taskFromJournalParams(verif::journalParams(task));
    ASSERT_TRUE(restored.has_value());
    EXPECT_EQ(restored->core.kind, task.core.kind);
    EXPECT_EQ(restored->core.ooo.defense, task.core.ooo.defense);
    EXPECT_EQ(restored->contract, task.contract);
    EXPECT_EQ(restored->scheme, task.scheme);
    EXPECT_EQ(restored->maxDepth, task.maxDepth);
    EXPECT_DOUBLE_EQ(restored->timeoutSeconds, task.timeoutSeconds);
    EXPECT_EQ(restored->tryProof, task.tryProof);
    EXPECT_EQ(restored->assumeSecretsDiffer, task.assumeSecretsDiffer);
    EXPECT_EQ(restored->excludeMisaligned, task.excludeMisaligned);
}

TEST(Journal, FingerprintSeparatesTasksAndMatchesRebuilds)
{
    auto build = [](Defense def) {
        auto circuit = std::make_unique<rtl::Circuit>();
        shadow::ShadowOptions sopts;
        shadow::buildShadowCircuit(*circuit, proc::simpleOoOSpec(def),
                                   sopts);
        return verif::fingerprintCircuit(*circuit);
    };
    std::string a1 = build(Defense::None);
    std::string a2 = build(Defense::None);
    std::string b = build(Defense::DelayFuturistic);
    EXPECT_EQ(a1, a2);
    EXPECT_NE(a1, b);
}

// --- Runner degradation under injected faults -----------------------------

verif::VerificationTask
huntTask()
{
    verif::VerificationTask task;
    task.core = proc::simpleOoOSpec(Defense::None);
    task.contract = Contract::Sandboxing;
    task.tryProof = false;
    task.assumeSecretsDiffer = true;
    task.maxDepth = 12;
    task.timeoutSeconds = 300;
    return task;
}

verif::VerificationTask
proveTask()
{
    verif::VerificationTask task;
    task.core = proc::inOrderSpec();
    task.contract = Contract::Sandboxing;
    task.maxDepth = 20;
    task.timeoutSeconds = 60;
    return task;
}

TEST(Runner, CorruptedModelIsQuarantinedAndRetriedToARealAttack)
{
    fault::disarmAll();
    // The corruption site only triggers on a satisfiable solve, so the
    // first firing opportunity is exactly the attack witness's model.
    fault::ScopedFault guard("sat.corrupt-model");
    verif::RunnerResult rr = verif::runResilientVerification(huntTask());
    fault::disarmAll();
    // The corrupted witness must never surface as the answer: either the
    // audit caught it and a perturbed retry found a replayable attack,
    // or the run degraded to a bounded verdict. A reported attack must
    // carry the replay confirmation.
    if (rr.result.verdict == Verdict::Attack) {
        EXPECT_NE(rr.result.attackReport.find("confirmed in simulation"),
                  std::string::npos);
    } else {
        EXPECT_EQ(rr.result.verdict, Verdict::BoundedSafe);
        EXPECT_GT(rr.quarantinedWitnesses, 0u);
    }
}

TEST(Runner, HoudiniInterruptionDegradesToHonestVerdict)
{
    fault::disarmAll();
    fault::ScopedFault guard("houdini.interrupt");
    auto task = proveTask();
    task.timeoutSeconds = 6;
    verif::RunnerResult rr = verif::runResilientVerification(task);
    fault::disarmAll();
    // Without invariants the in-order proof cannot close, but the run
    // must end cleanly with a sound verdict, never an attack.
    EXPECT_NE(rr.result.verdict, Verdict::Attack);
    EXPECT_NE(rr.result.verdict, Verdict::Proof);
    EXPECT_FALSE(rr.stages.empty());
}

TEST(Runner, SolverAllocFailureDegradesNotCrashes)
{
    fault::disarmAll();
    fault::ScopedFault guard("sat.alloc");
    auto task = proveTask();
    task.timeoutSeconds = 6;
    verif::RunnerResult rr = verif::runResilientVerification(task);
    fault::disarmAll();
    EXPECT_NE(rr.result.verdict, Verdict::Attack);
}

TEST(Runner, ProofStillClosesWhenJournalWritesFail)
{
    fault::disarmAll();
    // Only the first write fails (fire-once); checkpointing is treated
    // as best-effort either way.
    fault::ScopedFault guard("journal.write");
    auto task = proveTask();
    verif::RunnerOptions ropts;
    ropts.journalPath = tmpPath("runner_wf.journal");
    verif::RunnerResult rr =
        verif::runResilientVerification(task, ropts);
    fault::disarmAll();
    EXPECT_EQ(rr.result.verdict, Verdict::Proof);
    std::remove(ropts.journalPath.c_str());
}

TEST(Runner, ResumeReachesTheSameVerdictAndReusesInvariants)
{
    fault::disarmAll();
    std::string path = tmpPath("runner_resume.journal");
    std::remove(path.c_str());

    auto task = proveTask();
    verif::RunnerOptions ropts;
    ropts.journalPath = path;
    verif::RunnerResult clean =
        verif::runResilientVerification(task, ropts);
    ASSERT_EQ(clean.result.verdict, Verdict::Proof);

    // The journal now holds the completed run's facts; a resume must
    // reach the same verdict, skipping the invariant search entirely.
    ropts.resume = true;
    verif::RunnerResult resumed =
        verif::runResilientVerification(task, ropts);
    EXPECT_EQ(resumed.result.verdict, Verdict::Proof);
    EXPECT_TRUE(resumed.resumed);
    for (const verif::StageOutcome &stage : resumed.stages)
        EXPECT_EQ(stage.name.rfind("houdini", 0), std::string::npos)
            << "resume must not re-run the invariant search";
    std::remove(path.c_str());
}

TEST(Runner, ResumeIgnoresJournalOfADifferentTask)
{
    fault::disarmAll();
    std::string path = tmpPath("runner_mismatch.journal");
    std::remove(path.c_str());

    auto task = proveTask();
    verif::RunnerOptions ropts;
    ropts.journalPath = path;
    verif::RunnerResult first =
        verif::runResilientVerification(task, ropts);
    ASSERT_EQ(first.result.verdict, Verdict::Proof);

    // Same journal, different circuit: the fingerprint guard must
    // reject the stale facts and start fresh (not crash, not resume).
    auto other = proveTask();
    other.core = proc::simpleOoOSpec(Defense::DelayFuturistic);
    other.timeoutSeconds = 120;
    ropts.resume = true;
    verif::RunnerResult fresh =
        verif::runResilientVerification(other, ropts);
    EXPECT_FALSE(fresh.resumed);
    EXPECT_EQ(fresh.result.verdict, Verdict::Proof);
    std::remove(path.c_str());
}

TEST(Runner, ResumeRejectsAMismatchedReductionPipeline)
{
    fault::disarmAll();
    std::string path = tmpPath("runner_reduction.journal");
    std::remove(path.c_str());

    auto task = proveTask();
    verif::RunnerOptions ropts;
    ropts.journalPath = path;
    verif::RunnerResult first =
        verif::runResilientVerification(task, ropts);
    ASSERT_EQ(first.result.verdict, Verdict::Proof);
    EXPECT_NE(first.reductionPipeline, "none");
    EXPECT_LT(first.reducedNets, first.originalNets);

    // Safe bounds and invariants journaled under the default pipeline
    // are facts about the reduced netlist; resuming with reduction off
    // must reject the warm start and re-run the invariant search.
    ropts.resume = true;
    ropts.passes = "none";
    verif::RunnerResult fresh =
        verif::runResilientVerification(task, ropts);
    EXPECT_FALSE(fresh.resumed);
    EXPECT_EQ(fresh.result.verdict, Verdict::Proof);
    EXPECT_EQ(fresh.reductionPipeline, "none");
    EXPECT_EQ(fresh.reducedNets, fresh.originalNets);

    // The journal now records the "none" run; an unspecified pipeline
    // adopts it instead of defaulting, so the resume is accepted.
    ropts.passes.clear();
    verif::RunnerResult adopted =
        verif::runResilientVerification(task, ropts);
    EXPECT_TRUE(adopted.resumed);
    EXPECT_EQ(adopted.reductionPipeline, "none");
    std::remove(path.c_str());
}

TEST(Runner, UnknownReductionPipelineIsDiagnosedNotRun)
{
    fault::disarmAll();
    auto task = proveTask();
    verif::RunnerOptions ropts;
    ropts.passes = "constprop,frobnicate";
    verif::RunnerResult rr =
        verif::runResilientVerification(task, ropts);
    EXPECT_EQ(rr.result.verdict, Verdict::Diagnosed);
    EXPECT_TRUE(rr.stages.empty());
    EXPECT_NE(rr.result.detail.find("frobnicate"), std::string::npos);
}

// --- Witness-replay matrix (satellite: every cex must replay) -------------

struct ReplayCase
{
    const char *name;
    proc::CoreSpec core;
    verif::Scheme scheme;
};

class ReplayMatrix : public testing::TestWithParam<ReplayCase>
{
};

TEST_P(ReplayMatrix, CounterexampleReplaysAtReportedFrame)
{
    const ReplayCase &rc = GetParam();
    rtl::Circuit circuit;
    if (rc.scheme == verif::Scheme::Baseline) {
        shadow::buildBaselineCircuit(circuit, rc.core,
                                     Contract::Sandboxing,
                                     /*assume_secrets_differ=*/true);
    } else {
        shadow::ShadowOptions sopts;
        sopts.assumeSecretsDiffer = true;
        shadow::buildShadowCircuit(circuit, rc.core, sopts);
    }

    mc::CheckOptions copts;
    copts.tryProof = false;
    copts.maxDepth = 12;
    copts.timeoutSeconds = 300;
    mc::CheckResult cres = mc::checkProperty(circuit, copts);
    ASSERT_EQ(cres.verdict, Verdict::Attack) << rc.name;
    ASSERT_TRUE(cres.trace.has_value());
    ASSERT_EQ(cres.trace->length, cres.depth + 1)
        << "trace must end at the reported frame";

    mc::ReplayResult replay = mc::replayTrace(circuit, *cres.trace);
    EXPECT_TRUE(replay.initConstraintsHeld) << rc.name;
    EXPECT_TRUE(replay.constraintsHeld) << rc.name;
    EXPECT_TRUE(replay.badReached) << rc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Presets, ReplayMatrix,
    testing::Values(
        ReplayCase{"SimpleOoO_Shadow", proc::simpleOoOSpec(Defense::None),
                   verif::Scheme::ContractShadow},
        ReplayCase{"SimpleOoO_Baseline",
                   proc::simpleOoOSpec(Defense::None),
                   verif::Scheme::Baseline},
        ReplayCase{"RideLite_Shadow", proc::rideLiteSpec(Defense::None),
                   verif::Scheme::ContractShadow},
        ReplayCase{"RideLite_Baseline", proc::rideLiteSpec(Defense::None),
                   verif::Scheme::Baseline},
        ReplayCase{"BoomLike_Shadow", proc::boomLikeSpec(Defense::None),
                   verif::Scheme::ContractShadow},
        ReplayCase{"BoomLike_Baseline", proc::boomLikeSpec(Defense::None),
                   verif::Scheme::Baseline}),
    [](const testing::TestParamInfo<ReplayCase> &info) {
        return info.param.name;
    });

} // namespace
} // namespace csl
