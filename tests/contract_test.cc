// Tests of the contract observation functions: field masking, width, and
// sensitivity to exactly the contract-relevant signals.

#include <gtest/gtest.h>

#include "contract/contract.h"
#include "rtl/builder.h"
#include "sim/simulator.h"

namespace csl::contract {
namespace {

using rtl::Builder;
using rtl::Circuit;
using rtl::Sig;

/** Build a synthetic commit slot driven by inputs. */
struct SlotRig
{
    Circuit circuit;
    proc::CommitSlot slot;
    rtl::NetId sandbox, ct;

    SlotRig()
    {
        Builder b(circuit);
        slot.valid = b.input("valid", 1);
        slot.exception = b.input("exc", 1);
        slot.isLoad = b.input("isLoad", 1);
        slot.isStore = b.input("isStore", 1);
        slot.isBranch = b.input("isBranch", 1);
        slot.isMul = b.input("isMul", 1);
        slot.writesReg = b.input("writesReg", 1);
        slot.wdata = b.input("wdata", 4);
        slot.addr = b.input("addr", 4);
        slot.taken = b.input("taken", 1);
        slot.opA = b.input("opA", 4);
        slot.opB = b.input("opB", 4);
        Sig sb = isaObservation(b, slot, Contract::Sandboxing);
        Sig c = isaObservation(b, slot, Contract::ConstantTime);
        // Anchor in the cone.
        b.assertAlways(b.orOf(b.redOr(sb), b.notOf(b.redOr(sb))));
        b.assertAlways(b.orOf(b.redOr(c), b.notOf(b.redOr(c))));
        sandbox = sb.id;
        ct = c.id;
        b.finish();
    }
};

uint64_t
observe(SlotRig &rig, rtl::NetId which,
        std::unordered_map<rtl::NetId, uint64_t> inputs)
{
    sim::Simulator s(rig.circuit);
    s.evaluate(inputs);
    return s.value(which);
}

TEST(ContractObs, SandboxingSensitiveToLoadData)
{
    SlotRig rig;
    auto base = [&](uint64_t wdata) {
        return observe(rig, rig.sandbox,
                       {{rig.slot.isLoad.id, 1},
                        {rig.slot.writesReg.id, 1},
                        {rig.slot.wdata.id, wdata}});
    };
    EXPECT_NE(base(3), base(4));
    EXPECT_EQ(base(3), base(3));
}

TEST(ContractObs, SandboxingMasksNonLoadData)
{
    SlotRig rig;
    // A non-load's writeback data must not show up.
    auto alu = [&](uint64_t wdata) {
        return observe(rig, rig.sandbox,
                       {{rig.slot.writesReg.id, 1},
                        {rig.slot.wdata.id, wdata}});
    };
    EXPECT_EQ(alu(3), alu(12));
}

TEST(ContractObs, SandboxingIgnoresAddresses)
{
    SlotRig rig;
    auto ld = [&](uint64_t addr) {
        return observe(rig, rig.sandbox,
                       {{rig.slot.isLoad.id, 1},
                        {rig.slot.writesReg.id, 1},
                        {rig.slot.wdata.id, 7},
                        {rig.slot.addr.id, addr}});
    };
    EXPECT_EQ(ld(0), ld(9));
}

TEST(ContractObs, ConstantTimeSensitiveToAddressNotData)
{
    SlotRig rig;
    auto ld = [&](uint64_t addr, uint64_t wdata) {
        return observe(rig, rig.ct,
                       {{rig.slot.isLoad.id, 1},
                        {rig.slot.writesReg.id, 1},
                        {rig.slot.wdata.id, wdata},
                        {rig.slot.addr.id, addr}});
    };
    EXPECT_NE(ld(1, 7), ld(2, 7)) << "address must be observed";
    EXPECT_EQ(ld(1, 7), ld(1, 9)) << "loaded data must not be observed";
}

TEST(ContractObs, ConstantTimeSensitiveToBranchCondition)
{
    SlotRig rig;
    auto br = [&](uint64_t taken) {
        return observe(rig, rig.ct,
                       {{rig.slot.isBranch.id, 1},
                        {rig.slot.taken.id, taken}});
    };
    EXPECT_NE(br(0), br(1));
}

TEST(ContractObs, ConstantTimeSensitiveToMulOperands)
{
    SlotRig rig;
    auto mul = [&](uint64_t a, uint64_t b2) {
        return observe(rig, rig.ct,
                       {{rig.slot.isMul.id, 1},
                        {rig.slot.opA.id, a},
                        {rig.slot.opB.id, b2}});
    };
    EXPECT_NE(mul(2, 3), mul(3, 2));
    EXPECT_EQ(mul(2, 3), mul(2, 3));
    // Operands of non-MUL instructions are masked.
    auto alu = [&](uint64_t a) {
        return observe(rig, rig.ct, {{rig.slot.opA.id, a}});
    };
    EXPECT_EQ(alu(2), alu(9));
}

TEST(ContractObs, ExceptionVisibleInBoth)
{
    SlotRig rig;
    for (auto which : {rig.sandbox, rig.ct}) {
        auto with_exc = observe(rig, which,
                                {{rig.slot.isLoad.id, 1},
                                 {rig.slot.exception.id, 1}});
        auto without = observe(rig, which, {{rig.slot.isLoad.id, 1}});
        EXPECT_NE(with_exc, without);
    }
}

TEST(ContractObs, UarchIncludesBusAndCommitTiming)
{
    Circuit circuit;
    Builder b(circuit);
    proc::CoreIfc core;
    core.memBusValid = b.input("busValid", 1);
    core.memBusAddr = b.input("busAddr", 4);
    proc::CommitSlot slot;
    slot.valid = b.input("commit", 1);
    core.commits.push_back(slot);
    Sig obs = uarchObservation(b, core, b.one());
    rtl::NetId obs_id = obs.id;
    b.assertAlways(b.orOf(b.redOr(obs), b.notOf(b.redOr(obs))));
    b.finish();

    sim::Simulator s(circuit);
    auto val = [&](uint64_t bv, uint64_t ba, uint64_t cm) {
        s.evaluate({{core.memBusValid.id, bv},
                    {core.memBusAddr.id, ba},
                    {slot.valid.id, cm}});
        return s.value(obs_id);
    };
    EXPECT_NE(val(1, 3, 0), val(1, 5, 0)) << "bus address observed";
    EXPECT_NE(val(0, 0, 0), val(0, 0, 1)) << "commit timing observed";
    EXPECT_EQ(val(0, 3, 0), val(0, 5, 0))
        << "address masked when the bus is idle";
}

TEST(ContractObs, Names)
{
    EXPECT_STREQ(contractName(Contract::Sandboxing), "sandboxing");
    EXPECT_STREQ(contractName(Contract::ConstantTime), "constant-time");
}

} // namespace
} // namespace csl::contract
