// Tests for the static-analysis subsystem (src/rtl/analysis): the
// diagnostics engine, the lint passes on hand-built known-bad circuits,
// the static secret-taint dataflow (cross-checked against the dynamic
// OoOConfig::taint monitor), and the pre-flight gate integration.

#include <gtest/gtest.h>

#include <random>

#include "proc/presets.h"
#include "rtl/analysis/analysis.h"
#include "rtl/analysis/taint_dataflow.h"
#include "rtl/builder.h"
#include "shadow/shadow_builder.h"
#include "sim/simulator.h"
#include "verif/task.h"

namespace csl {
namespace {

using rtl::Circuit;
using rtl::kNoNet;
using rtl::Net;
using rtl::NetId;
using rtl::Op;
using rtl::Sig;
using rtl::analysis::AnalysisOptions;
using rtl::analysis::Report;
using rtl::analysis::Severity;

/** True when some diagnostic of @p report matches pass and substring. */
bool
hasDiagnostic(const Report &report, Severity severity,
              const std::string &pass, const std::string &substring)
{
    for (const auto &d : report.diagnostics) {
        if (d.severity == severity && d.pass == pass &&
            d.message.find(substring) != std::string::npos)
            return true;
    }
    return false;
}

TEST(Diagnostics, SummaryAndFormat)
{
    Report report;
    EXPECT_TRUE(report.empty());
    EXPECT_EQ(report.summary(), "clean");
    report.error("structural", 3, "net x: broken");
    report.warn("vacuity", 4, "assert y: trivial");
    report.note("cone", kNoNet, "5 dead nets");
    EXPECT_TRUE(report.hasErrors());
    EXPECT_TRUE(report.hasWarnings());
    EXPECT_EQ(report.summary(), "1 error, 1 warning, 1 note");
    EXPECT_NE(report.format().find("error [structural] net x: broken"),
              std::string::npos);
    // Severity filter drops the note.
    EXPECT_EQ(report.format(Severity::Warning).find("dead nets"),
              std::string::npos);

    Report other;
    other.error("vacuity", 1, "more");
    report.merge(other);
    EXPECT_EQ(report.count(Severity::Error), 2u);
}

TEST(StructuralLint, CombinationalLoopDetected)
{
    // a = and(b, c); b = not(a): a cycle with no register on it. Only
    // constructible through the unchecked API (addNet enforces order).
    Circuit circuit;
    Net konst;
    konst.op = Op::Const;
    konst.width = 1;
    konst.imm = 1;
    NetId c = circuit.addNet(konst);
    Net a_net;
    a_net.op = Op::And;
    a_net.width = 1;
    a_net.a = 2; // forward reference to b
    a_net.b = c;
    NetId a = circuit.addNetUnchecked(a_net);
    Net b_net;
    b_net.op = Op::Not;
    b_net.width = 1;
    b_net.a = a;
    circuit.addNetUnchecked(b_net);

    Report report;
    rtl::analysis::structuralLint(circuit, report);
    EXPECT_TRUE(hasDiagnostic(report, Severity::Error, "structural",
                              "combinational cycle"));
    EXPECT_TRUE(hasDiagnostic(report, Severity::Error, "structural",
                              "later net"));
}

TEST(StructuralLint, DanglingRegisterReported)
{
    Circuit circuit;
    Net reg;
    reg.op = Op::Reg;
    reg.width = 4;
    NetId r = circuit.addNet(reg);
    circuit.setName(r, "orphan");

    Report report;
    rtl::analysis::structuralLint(circuit, report);
    EXPECT_TRUE(hasDiagnostic(report, Severity::Error, "structural",
                              "orphan"));
    EXPECT_TRUE(hasDiagnostic(report, Severity::Error, "structural",
                              "no next-state net"));
}

TEST(StructuralLint, ReportsEveryViolationNotJustTheFirst)
{
    // Two dangling registers and one width-mismatched operator: three
    // diagnostics, each naming its net - where finalize() used to stop
    // at the first assertion.
    Circuit circuit;
    Net reg;
    reg.op = Op::Reg;
    reg.width = 4;
    NetId r1 = circuit.addNet(reg);
    NetId r2 = circuit.addNet(reg);
    circuit.setName(r1, "dangling1");
    circuit.setName(r2, "dangling2");
    Net bad_not;
    bad_not.op = Op::Not;
    bad_not.width = 2; // operand is 4 bits wide
    bad_not.a = r1;
    circuit.addNetUnchecked(bad_not);

    Report report;
    rtl::analysis::structuralLint(circuit, report);
    EXPECT_EQ(report.count(Severity::Error), 3u);
    EXPECT_TRUE(hasDiagnostic(report, Severity::Error, "structural",
                              "dangling1"));
    EXPECT_TRUE(hasDiagnostic(report, Severity::Error, "structural",
                              "dangling2"));
    EXPECT_TRUE(hasDiagnostic(report, Severity::Error, "structural",
                              "width mismatch"));
}

TEST(StructuralLint, FinalizeStillFailsFastWithNetNames)
{
    Circuit circuit;
    rtl::Builder b(circuit);
    b.reg("unfinished", 3);
    EXPECT_DEATH(b.finish(), "no next-state net");
}

TEST(ConstProp, RegistersFoldThroughTheSequentialFixpoint)
{
    Circuit circuit;
    rtl::Builder b(circuit);
    // held: init 0, next-state = itself -> constant 0 forever.
    Sig held = b.reg("held", 1, 0);
    b.connect(held, held);
    // counter: init 0, increments -> must demote to unknown.
    Sig counter = b.reg("counter", 4, 0);
    b.connect(counter, b.addConst(counter, 1));
    // gate = mux(held, counter-derived, 0) -> constant 0 despite the
    // unknown arm (select is known).
    Sig gate = b.mux(held, b.redOr(counter), b.zero());
    b.assume(b.notOf(gate), "gate.off");
    b.finish();

    auto vals = rtl::analysis::foldConstants(circuit);
    ASSERT_TRUE(vals[held.id].has_value());
    EXPECT_EQ(*vals[held.id], 0u);
    EXPECT_FALSE(vals[counter.id].has_value());
    ASSERT_TRUE(vals[gate.id].has_value());
    EXPECT_EQ(*vals[gate.id], 0u);
}

TEST(VacuityLint, ConstantFalseAssumeIsAnError)
{
    // The assume folds to 0 only through the register fixpoint, so the
    // builder's on-the-fly folding cannot have caught it.
    Circuit circuit;
    rtl::Builder b(circuit);
    Sig stuck = b.reg("stuck", 1, 0);
    b.connect(stuck, stuck);
    Sig in = b.input("in", 1);
    b.assume(b.andOf(stuck, in), "vacuous.assume");
    b.assertAlways(b.notOf(in), "prop");
    b.finish();

    Report report = rtl::analysis::runAll(circuit);
    EXPECT_TRUE(hasDiagnostic(report, Severity::Error, "vacuity",
                              "constant false"));
}

TEST(VacuityLint, ConstantAssertsAreFlagged)
{
    Circuit circuit;
    rtl::Builder b(circuit);
    Sig stuck = b.reg("stuck", 1, 0);
    b.connect(stuck, stuck);
    Sig in = b.input("in", 1);
    // assert !stuck: bad net = stuck = constant 0 -> trivially true.
    b.assertAlways(b.notOf(stuck), "trivial.assert");
    // assert stuck: bad net constant 1 -> fails every cycle.
    b.assertAlways(stuck, "failing.assert");
    b.assume(in); // keep the environment nonvacuous
    b.finish();

    Report report = rtl::analysis::runAll(circuit);
    EXPECT_TRUE(hasDiagnostic(report, Severity::Warning, "vacuity",
                              "checks nothing"));
    EXPECT_TRUE(hasDiagnostic(report, Severity::Error, "vacuity",
                              "every cycle"));
}

TEST(ConeLint, InputFreeAssertConeIsFlagged)
{
    Circuit circuit;
    rtl::Builder b(circuit);
    // A "property" over concrete-init registers only: no input, no
    // symbolic state in its cone -> structurally constant.
    Sig counter = b.reg("counter", 4, 0);
    b.connect(counter, b.addConst(counter, 1));
    b.assertAlways(b.notOf(b.eqConst(counter, 9)), "deaf.assert");
    // A healthy assert over an input for contrast.
    Sig in = b.input("in", 4);
    b.assertAlways(b.notOf(b.eqConst(in, 3)), "live.assert");
    b.finish();

    Report report;
    rtl::analysis::coneLint(circuit, {}, report);
    EXPECT_TRUE(hasDiagnostic(report, Severity::Warning, "cone",
                              "deaf.assert"));
    EXPECT_FALSE(hasDiagnostic(report, Severity::Warning, "cone",
                               "live.assert"));
}

TEST(ConeLint, SymbolicRegistersCountAsNondeterminism)
{
    // The verification circuits have no free inputs at all - their
    // nondeterminism is symbolic initial state. Such asserts are fine.
    Circuit circuit;
    rtl::Builder b(circuit);
    Sig s = b.symbolicReg("s", 4);
    b.connect(s, s);
    b.assertAlways(b.notOf(b.eqConst(s, 5)), "sym.assert");
    b.finish();

    Report report;
    rtl::analysis::coneLint(circuit, {}, report);
    EXPECT_FALSE(report.hasWarnings());
}

TEST(ConeLint, DeadLogicCounted)
{
    Circuit circuit;
    rtl::Builder b(circuit);
    Sig in = b.input("in", 4);
    b.assertAlways(b.eqConst(in, 1), "prop");
    Sig unused = b.mul(in, in); // outside every cone
    b.finish();

    Report report;
    rtl::analysis::coneLint(circuit, {}, report);
    EXPECT_TRUE(hasDiagnostic(report, Severity::Note, "cone",
                              "dead logic"));
    // Marking the net as an extra root (a kept output) silences it.
    Report rooted;
    rtl::analysis::coneLint(circuit, {unused.id}, rooted);
    EXPECT_FALSE(hasDiagnostic(rooted, Severity::Note, "cone",
                               "dead logic"));
}

TEST(TaintDataflow, PropagatesThroughOpsAndRegisters)
{
    Circuit circuit;
    rtl::Builder b(circuit);
    Sig secret = b.symbolicReg("secret", 4);
    b.connect(secret, secret);
    Sig pub = b.input("pub", 4);
    Sig mixed = b.add(secret, pub);
    Sig laundered = b.reg("laundered", 4, 0);
    b.connect(laundered, mixed);
    Sig clean = b.mul(pub, pub);
    b.assertAlways(b.notOf(b.eqConst(laundered, 3)), "prop");
    b.finish();

    rtl::analysis::TaintOptions topts;
    topts.sources.push_back(secret.id);
    auto facts = rtl::analysis::taintDataflow(circuit, topts);
    EXPECT_TRUE(facts.isTainted(secret.id));
    EXPECT_TRUE(facts.isTainted(mixed.id));
    EXPECT_TRUE(facts.isTainted(laundered.id)); // via the backedge
    EXPECT_FALSE(facts.isTainted(pub.id));
    EXPECT_FALSE(facts.isTainted(clean.id));

    // Sanitizing the mixing point keeps the register clean.
    topts.sanitizers.push_back(mixed.id);
    auto cleaned = rtl::analysis::taintDataflow(circuit, topts);
    EXPECT_FALSE(cleaned.isTainted(laundered.id));
    EXPECT_LT(cleaned.taintedCount, facts.taintedCount);
}

TEST(TaintDataflow, WarnsWhenNoAssertObservesTheSecret)
{
    Circuit circuit;
    rtl::Builder b(circuit);
    Sig secret = b.symbolicReg("secret", 4);
    b.connect(secret, secret);
    Sig in = b.input("in", 4);
    b.assertAlways(b.notOf(b.eqConst(in, 2)), "blind.assert");
    b.finish();

    rtl::analysis::TaintOptions topts;
    topts.sources.push_back(secret.id);
    auto facts = rtl::analysis::taintDataflow(circuit, topts);
    Report report;
    rtl::analysis::taintLint(circuit, facts, topts, report);
    EXPECT_TRUE(hasDiagnostic(report, Severity::Warning, "taint",
                              "cannot observe the secret"));
}

TEST(TaintDataflow, StaticOverapproximatesDynamicMonitor)
{
    // Cross-check against the dynamic taint monitor (paper Section 8,
    // OoOConfig::taint) on simpleOoO: any architectural-register taint
    // bit the monitor ever raises in simulation must correspond to a
    // net the static analysis marks tainted.
    proc::CoreSpec spec = proc::simpleOoOSpec();
    spec.ooo.taint = proc::OoOConfig::Taint::ConstantTime;
    const isa::IsaConfig &ic = spec.isaConfig();

    rtl::Circuit circuit;
    rtl::Builder b(circuit);
    proc::CoreIfc ifc = proc::buildCore(b, spec, "cpu");
    b.finish();

    rtl::analysis::TaintOptions topts;
    for (size_t i = ic.secretStart(); i < ic.dmemSize; ++i)
        topts.sources.push_back(ifc.dmemWords[i].id);
    auto facts = rtl::analysis::taintDataflow(circuit, topts);

    std::vector<rtl::NetId> monitor_bits;
    for (int r = 0; r < ic.regCount; ++r) {
        rtl::NetId bit =
            circuit.findByName("cpu.taintReg" + std::to_string(r));
        ASSERT_NE(bit, kNoNet);
        monitor_bits.push_back(bit);
    }

    sim::Simulator sim(circuit);
    std::mt19937_64 rng(20260806);
    for (int round = 0; round < 8; ++round) {
        std::unordered_map<rtl::NetId, uint64_t> init;
        for (size_t i = 0; i < ic.imemSize; ++i)
            init[ifc.imemWords[i].id] =
                truncBits(rng(), ic.instrBits());
        for (size_t i = 0; i < ic.dmemSize; ++i)
            init[ifc.dmemWords[i].id] = truncBits(rng(), ic.dataWidth);
        for (size_t i = 0; i < ifc.archRegs.size(); ++i)
            init[ifc.archRegs[i].id] = truncBits(rng(), ic.dataWidth);
        sim.reset(init);
        for (int t = 0; t < 80; ++t) {
            sim.evaluate();
            for (int r = 0; r < ic.regCount; ++r) {
                if (sim.value(monitor_bits[r]))
                    EXPECT_TRUE(facts.isTainted(ifc.archRegs[r].id))
                        << "dynamic taint on r" << r
                        << " not covered statically (round " << round
                        << ", cycle " << t << ")";
            }
            sim.tick();
        }
    }
}

TEST(ShadowPreflight, CleanOnTheDefaultConfiguration)
{
    rtl::Circuit circuit;
    shadow::ShadowOptions opts;
    opts.emitRelationalCandidates = true;
    shadow::ShadowHarness h = shadow::buildShadowCircuit(
        circuit, proc::simpleOoOSpec(), opts);
    EXPECT_FALSE(h.preflight.hasErrors());
    EXPECT_FALSE(h.preflight.hasWarnings());
    EXPECT_GT(h.staticSeedCount, 0u);
    EXPECT_LE(h.staticSeedCount, h.relationalCandidates.size());

    Report report = rtl::analysis::runAll(circuit);
    EXPECT_FALSE(report.hasErrors());
}

TEST(ShadowPreflight, PauseOffIsCaughtStatically)
{
    rtl::Circuit circuit;
    shadow::ShadowOptions opts;
    opts.enablePause = false;
    shadow::ShadowHarness h = shadow::buildShadowCircuit(
        circuit, proc::simpleOoOSpec(), opts);
    EXPECT_TRUE(hasDiagnostic(h.preflight, Severity::Warning,
                              "shadow-config", "pause net"));
    EXPECT_TRUE(hasDiagnostic(h.preflight, Severity::Warning,
                              "shadow-config", "synchronization"));
}

TEST(ShadowPreflight, DrainOffIsCaughtStatically)
{
    rtl::Circuit circuit;
    shadow::ShadowOptions opts;
    opts.enableDrainCheck = false;
    shadow::ShadowHarness h = shadow::buildShadowCircuit(
        circuit, proc::simpleOoOSpec(), opts);
    EXPECT_TRUE(hasDiagnostic(h.preflight, Severity::Warning,
                              "shadow-config", "instruction-inclusion"));
}

TEST(PreflightGate, ReportsInVerificationDetail)
{
    verif::VerificationTask task;
    task.core = proc::inOrderSpec();
    task.maxDepth = 12;
    task.timeoutSeconds = 60.0;
    verif::VerificationResult res = verif::runVerification(task);
    EXPECT_NE(res.detail.find("preflight"), std::string::npos);
    EXPECT_NE(res.detail.find("static secret-free seeds"),
              std::string::npos);

    task.preflight = false;
    verif::VerificationResult off = verif::runVerification(task);
    EXPECT_EQ(off.detail.find("preflight"), std::string::npos);
    EXPECT_EQ(res.verdict, off.verdict);
}

TEST(PreflightGate, DiagnosedVerdictHasAName)
{
    EXPECT_STREQ(mc::verdictName(mc::Verdict::Diagnosed), "DIAGNOSED");
}

} // namespace
} // namespace csl
