/**
 * @file
 * Tests for the circuit reduction pipeline (rtl/transform): NetMap
 * bookkeeping, pipeline parsing, per-pass rewrites, the property-based
 * lockstep equivalence of original vs reduced circuits over randomized
 * netlists, and the witness round trip (attack found on the reduced
 * circuit, replayed on the original through the NetMap).
 */

#include <gtest/gtest.h>

#include <random>
#include <unordered_map>

#include "base/bits.h"
#include "fuzz/random_circuit.h"
#include "mc/portfolio.h"
#include "mc/trace.h"
#include "rtl/circuit.h"
#include "rtl/transform/netmap.h"
#include "rtl/transform/passes.h"
#include "sim/simulator.h"

namespace csl {
namespace {

using rtl::Circuit;
using rtl::kNoNet;
using rtl::Net;
using rtl::NetId;
using rtl::Op;
using rtl::transform::NetMap;
using rtl::transform::PassManager;
using rtl::transform::ReductionResult;

// --- Small raw-netlist helpers (addNet does not hash-cons) --------------

NetId
constNet(Circuit &c, uint8_t width, uint64_t value)
{
    Net net;
    net.op = Op::Const;
    net.width = width;
    net.imm = truncBits(value, width);
    return c.addNet(net);
}

NetId
inputNet(Circuit &c, uint8_t width, const std::string &name)
{
    Net net;
    net.op = Op::Input;
    net.width = width;
    NetId id = c.addNet(net);
    c.setName(id, name);
    return id;
}

NetId
regNet(Circuit &c, uint8_t width, uint64_t init, const std::string &name,
       bool symbolic = false)
{
    Net net;
    net.op = Op::Reg;
    net.width = width;
    net.symbolicInit = symbolic;
    net.imm = symbolic ? 0 : truncBits(init, width);
    NetId id = c.addNet(net);
    c.setName(id, name);
    return id;
}

NetId
binNet(Circuit &c, Op op, uint8_t width, NetId a, NetId b)
{
    Net net;
    net.op = op;
    net.width = width;
    net.a = a;
    net.b = b;
    return c.addNet(net);
}

// --- NetMap -------------------------------------------------------------

TEST(NetMap, IdentityMapsEveryNetToItself)
{
    NetMap map = NetMap::identity(5);
    EXPECT_TRUE(map.isIdentity());
    EXPECT_EQ(map.originalNets(), 5u);
    EXPECT_EQ(map.reducedNets(), 5u);
    for (NetId id = 0; id < 5; ++id) {
        EXPECT_EQ(map.mapped(id), id);
        EXPECT_FALSE(map.constantOf(id));
        EXPECT_FALSE(map.dropped(id));
    }
    EXPECT_EQ(map.mergedCount(), 0u);
    EXPECT_EQ(map.constantCount(), 0u);
    EXPECT_EQ(map.droppedCount(), 0u);
}

TEST(NetMap, ComposeChasesThroughTheMidStage)
{
    // first: 4 -> 3 (net 1 and 2 merge onto mid 1, net 3 -> constant 7)
    NetMap first;
    first.resize(4, 3);
    first.setMapped(0, 0);
    first.setMapped(1, 1);
    first.setMapped(2, 1);
    first.setConstant(3, 7);
    // second: 3 -> 1 (mid 0 dropped, mid 1 -> 0, mid 2 -> constant 1)
    NetMap second;
    second.resize(3, 1);
    second.setMapped(1, 0);
    second.setConstant(2, 1);

    NetMap both = NetMap::compose(first, second);
    EXPECT_EQ(both.originalNets(), 4u);
    EXPECT_EQ(both.reducedNets(), 1u);
    EXPECT_TRUE(both.dropped(0));       // mid 0 was dropped
    EXPECT_EQ(both.mapped(1), 0);       // chased through mid 1
    EXPECT_EQ(both.mapped(2), 0);       // merged pair stays merged
    ASSERT_TRUE(both.constantOf(3));    // first-stage constant survives
    EXPECT_EQ(*both.constantOf(3), 7u);
    EXPECT_EQ(both.mergedCount(), 2u);
}

TEST(NetMap, ComposePicksUpSecondStageConstants)
{
    NetMap first;
    first.resize(2, 2);
    first.setMapped(0, 0);
    first.setMapped(1, 1);
    NetMap second;
    second.resize(2, 1);
    second.setMapped(0, 0);
    second.setConstant(1, 3);

    NetMap both = NetMap::compose(first, second);
    ASSERT_TRUE(both.constantOf(1));
    EXPECT_EQ(*both.constantOf(1), 3u);
    EXPECT_EQ(both.mapped(1), kNoNet);
}

// --- Pipeline parsing ---------------------------------------------------

TEST(PassManagerParse, AliasesAndLists)
{
    auto def = PassManager::parsePipeline("default");
    ASSERT_TRUE(def);
    EXPECT_EQ(*def, PassManager::defaultPasses());
    EXPECT_EQ(*PassManager::parsePipeline(""), PassManager::defaultPasses());

    auto none = PassManager::parsePipeline("none");
    ASSERT_TRUE(none);
    EXPECT_TRUE(none->empty());

    auto list = PassManager::parsePipeline(" constprop , coi ");
    ASSERT_TRUE(list);
    EXPECT_EQ(*list, (std::vector<std::string>{"constprop", "coi"}));

    // "default" expands inline inside a longer list.
    auto inlined = PassManager::parsePipeline("constprop,default");
    ASSERT_TRUE(inlined);
    EXPECT_EQ(inlined->size(), 1 + PassManager::defaultPasses().size());
}

TEST(PassManagerParse, RejectsUnknownNames)
{
    EXPECT_FALSE(PassManager::parsePipeline("frobnicate"));
    EXPECT_FALSE(PassManager::parsePipeline("constprop,frobnicate"));
    // "none" is an alias for the whole spec, not a pass name.
    EXPECT_FALSE(PassManager::parsePipeline("none,coi"));
}

TEST(PassManagerParse, NormalizedIsTheJoinedPassList)
{
    EXPECT_EQ(PassManager("constprop, coi").normalized(), "constprop,coi");
    EXPECT_EQ(PassManager("none").normalized(), "");
}

// --- Individual passes --------------------------------------------------

TEST(ConstPropPass, AssumePropagationPinsInputsAndKillsDeadBads)
{
    Circuit c;
    NetId in = inputNet(c, 8, "in");
    NetId five = constNet(c, 8, 5);
    NetId pin = binNet(c, Op::Eq, 1, in, five);
    c.addConstraint(pin);
    NetId three = constNet(c, 8, 3);
    NetId bad = binNet(c, Op::Ult, 1, in, three); // 5 < 3: never fires
    c.setName(bad, "bad");
    c.addBad(bad);
    c.finalize();

    ReductionResult r = PassManager("constprop,coi").run(c);
    ASSERT_TRUE(r.map.constantOf(in));
    EXPECT_EQ(*r.map.constantOf(in), 5u);
    // The pinned-input assumption folds to 1 and checks nothing; the
    // unreachable bad folds to 0 and is dropped.
    EXPECT_TRUE(r.circuit.constraints().empty());
    EXPECT_TRUE(r.circuit.bads().empty());
}

TEST(ConstPropPass, ConflictingForcingsBackOff)
{
    Circuit c;
    NetId in = inputNet(c, 8, "in");
    c.addConstraint(binNet(c, Op::Eq, 1, in, constNet(c, 8, 5)));
    c.addConstraint(binNet(c, Op::Eq, 1, in, constNet(c, 8, 6)));
    NetId bad = binNet(c, Op::Ult, 1, in, constNet(c, 8, 3));
    c.addBad(bad);
    c.finalize();

    // The two assumptions contradict: no forced value may substitute
    // (the problem is vacuous; that is the vacuity lint's job to call
    // out, not the reducer's to hide).
    ReductionResult r = PassManager("constprop").run(c);
    EXPECT_FALSE(r.map.constantOf(in));
    EXPECT_EQ(r.circuit.constraints().size(), 2u);
}

TEST(StructHashPass, FalseAssumptionIsKeptAsConstantZero)
{
    Circuit c;
    NetId in = inputNet(c, 8, "in");
    NetId x = binNet(c, Op::Xor, 8, in, in); // = 0
    NetId never = binNet(c, Op::Eq, 1, x, constNet(c, 8, 9)); // = 0
    c.addConstraint(never);
    NetId bad = binNet(c, Op::Ult, 1, in, constNet(c, 8, 3));
    c.addBad(bad);
    c.finalize();

    ReductionResult r = PassManager("structhash").run(c);
    // A constraint proven false must survive as an explicit constant-0
    // assumption: the reduced problem stays exactly as vacuous as the
    // original instead of silently becoming satisfiable.
    ASSERT_EQ(r.circuit.constraints().size(), 1u);
    const Net &kept = r.circuit.net(r.circuit.constraints()[0]);
    EXPECT_EQ(kept.op, Op::Const);
    EXPECT_EQ(kept.imm, 0u);
}

TEST(StructHashPass, MergesVerbatimDuplicates)
{
    Circuit c;
    NetId a = inputNet(c, 8, "a");
    NetId b = inputNet(c, 8, "b");
    NetId and1 = binNet(c, Op::And, 8, a, b);
    NetId and2 = binNet(c, Op::And, 8, a, b);     // duplicate
    NetId and3 = binNet(c, Op::And, 8, b, a);     // commuted duplicate
    NetId t = constNet(c, 8, 7);
    c.addBad(binNet(c, Op::Eq, 1, and1, t));
    c.addBad(binNet(c, Op::Eq, 1, and2, t));
    c.addBad(binNet(c, Op::Eq, 1, and3, t));
    c.finalize();

    ReductionResult r = PassManager("structhash").run(c);
    EXPECT_EQ(r.map.mapped(and1), r.map.mapped(and2));
    EXPECT_EQ(r.map.mapped(and1), r.map.mapped(and3));
    // The three bads collapse to one identical reduced check.
    EXPECT_EQ(r.circuit.bads().size(), 1u);
    EXPECT_GE(r.map.mergedCount(), 4u);
}

TEST(RegMergePass, MergesStructurallyIdenticalRegisterPairs)
{
    Circuit c;
    NetId in = inputNet(c, 8, "in");
    NetId r1 = regNet(c, 8, 5, "r1");
    NetId r2 = regNet(c, 8, 5, "r2");
    // Mirrored next-state: r_i' = r_i + in.
    c.connectReg(r1, binNet(c, Op::Add, 8, r1, in));
    c.connectReg(r2, binNet(c, Op::Add, 8, r2, in));
    NetId diverged = binNet(c, Op::Eq, 1, r1, r2);
    c.addBad(diverged);
    c.finalize();

    ReductionResult r = PassManager("regmerge,structhash").run(c);
    EXPECT_EQ(r.map.mapped(r1), r.map.mapped(r2));
    EXPECT_EQ(r.circuit.registers().size(), 1u);
    // Eq(r, r) folds to constant 1: a bad proven to always fire is
    // kept as an explicit constant-1 assertion failure.
    ASSERT_EQ(r.circuit.bads().size(), 1u);
    const Net &kept = r.circuit.net(r.circuit.bads()[0]);
    EXPECT_EQ(kept.op, Op::Const);
    EXPECT_EQ(kept.imm, 1u);
}

TEST(RegMergePass, DivergentNextStateKeepsRegistersApart)
{
    Circuit c;
    NetId in = inputNet(c, 8, "in");
    NetId r1 = regNet(c, 8, 5, "r1");
    NetId r2 = regNet(c, 8, 5, "r2");
    c.connectReg(r1, binNet(c, Op::Add, 8, r1, in));
    c.connectReg(r2, binNet(c, Op::Sub, 8, r2, in)); // diverges
    c.addBad(binNet(c, Op::Eq, 1, r1, r2));
    c.finalize();

    ReductionResult r = PassManager("regmerge").run(c);
    EXPECT_NE(r.map.mapped(r1), r.map.mapped(r2));
    EXPECT_EQ(r.circuit.registers().size(), 2u);
}

TEST(CoiPass, DropsLogicOutsideEveryPropertyCone)
{
    Circuit c;
    NetId in = inputNet(c, 8, "in");
    NetId junkReg = regNet(c, 8, 0, "junk");
    c.connectReg(junkReg, binNet(c, Op::Add, 8, junkReg, in));
    NetId junk2 = binNet(c, Op::Xor, 8, junkReg, in);
    NetId bad = binNet(c, Op::Eq, 1, in, constNet(c, 8, 9));
    c.addBad(bad);
    c.finalize();

    ReductionResult r = PassManager("coi").run(c);
    EXPECT_TRUE(r.map.dropped(junkReg));
    EXPECT_TRUE(r.map.dropped(junk2));
    EXPECT_NE(r.map.mapped(bad), kNoNet);
    EXPECT_TRUE(r.circuit.registers().empty());
    EXPECT_LT(r.circuit.numNets(), c.numNets());
}

TEST(CoiPass, ExtraRootsAreKeptAlive)
{
    Circuit c;
    NetId in = inputNet(c, 8, "in");
    NetId observed = binNet(c, Op::Eq, 1, in, constNet(c, 8, 2));
    c.setName(observed, "candidate");
    c.addBad(binNet(c, Op::Eq, 1, in, constNet(c, 8, 9)));
    c.finalize();

    EXPECT_TRUE(PassManager("coi").run(c).map.dropped(observed));
    ReductionResult kept = PassManager("coi").run(c, {observed});
    EXPECT_NE(kept.map.mapped(observed), kNoNet);
    EXPECT_EQ(kept.circuit.name(kept.map.mapped(observed)), "candidate");
}

TEST(PassManagerRun, EmptyPipelineIsVerbatimIdentity)
{
    fuzz::RandomCircuitOptions opts;
    Circuit c = fuzz::randomCircuit(11, opts);
    ReductionResult r = PassManager("none").run(c);
    EXPECT_TRUE(r.map.isIdentity());
    EXPECT_EQ(r.circuit.numNets(), c.numNets());
    EXPECT_TRUE(r.circuit.finalized());
    EXPECT_EQ(r.pipeline, "");
    EXPECT_TRUE(r.passes.empty());
}

TEST(PassManagerRun, RecordsPerPassStats)
{
    Circuit c = fuzz::randomCircuit(7);
    ReductionResult r = PassManager().run(c);
    ASSERT_EQ(r.passes.size(), PassManager::defaultPasses().size());
    EXPECT_EQ(r.passes.front().netsBefore, c.numNets());
    EXPECT_EQ(r.passes.back().netsAfter, r.circuit.numNets());
    EXPECT_EQ(r.pipeline, PassManager().normalized());
}

// --- Property-based equivalence -----------------------------------------

/**
 * Simulate the original and the reduced circuit in lockstep under a
 * NetMap-consistent stimulus and check the soundness contract: every
 * role net (constraint, init constraint, bad) evaluates identically
 * through the map, cycle by cycle, until the first cycle the *original*
 * violates its own assumptions (past that point the reduced circuit
 * owes nothing - reductions are sound modulo the constraints).
 */
void
checkLockstepEquivalence(uint64_t seed, bool with_constraints)
{
    SCOPED_TRACE("seed " + std::to_string(seed) +
                 (with_constraints ? " (constrained)" : ""));
    fuzz::RandomCircuitOptions opts;
    opts.withConstraints = with_constraints;
    Circuit orig = fuzz::randomCircuit(seed, opts);
    ReductionResult r = PassManager().run(orig);
    const Circuit &red = r.circuit;
    const NetMap &map = r.map;
    ASSERT_LE(red.numNets(), orig.numNets());

    std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull + 1);

    // Initial state: concrete-init registers keep their reset value
    // (constant propagation has proven facts from them); symbolic ones
    // draw a random value *per reduced register*, so merged twins agree
    // - exactly the executions the merge is sound for.
    std::unordered_map<NetId, uint64_t> initO, initR;
    std::unordered_map<NetId, uint64_t> perReduced;
    for (NetId reg : orig.registers()) {
        if (!orig.net(reg).symbolicInit)
            continue;
        const uint8_t width = orig.net(reg).width;
        uint64_t value;
        if (auto c = map.constantOf(reg)) {
            value = *c;
        } else if (NetId m = map.mapped(reg); m != kNoNet) {
            auto [it, fresh] = perReduced.try_emplace(m, rng());
            value = truncBits(it->second, width);
            initR[m] = value;
        } else {
            value = truncBits(rng(), width); // dropped: unobservable
        }
        initO[reg] = value;
    }

    // Satisfy register-equality init assumptions by construction: the
    // pipeline is entitled to consume them (regmerge), and once the
    // merged register is later pruned away the map alone can no longer
    // reconstruct the relation between the original twins.
    for (NetId id : orig.initConstraints()) {
        const Net &net = orig.net(id);
        if (net.op != Op::Eq || orig.net(net.a).op != Op::Reg ||
            orig.net(net.b).op != Op::Reg)
            continue;
        auto va = initO.find(net.a);
        if (va == initO.end())
            continue; // concrete-init registers keep their reset value
        initO[net.b] = va->second;
        if (NetId m = map.mapped(net.b); m != kNoNet)
            initR[m] = va->second;
    }

    sim::Simulator so(orig);
    sim::Simulator sr(red);
    so.reset(initO);
    sr.reset(initR);

    auto checkRole = [&](NetId id, const char *what) {
        if (auto c = map.constantOf(id)) {
            EXPECT_EQ(so.value(id), *c) << what << " net " << id;
        } else if (NetId m = map.mapped(id); m != kNoNet) {
            EXPECT_EQ(so.value(id), sr.value(m)) << what << " net " << id;
        } else {
            ADD_FAILURE() << what << " net " << id << " was dropped";
        }
    };

    for (size_t cycle = 0; cycle < 24; ++cycle) {
        std::unordered_map<NetId, uint64_t> inO, inR;
        std::unordered_map<NetId, uint64_t> perInput;
        for (NetId in : orig.inputs()) {
            const uint8_t width = orig.net(in).width;
            uint64_t value;
            if (auto c = map.constantOf(in)) {
                value = *c; // honor assume-propagated forcings
            } else if (NetId m = map.mapped(in); m != kNoNet) {
                auto [it, fresh] = perInput.try_emplace(m, rng());
                value = truncBits(it->second, width);
                inR[m] = value;
            } else {
                value = truncBits(rng(), width);
            }
            inO[in] = value;
        }
        so.evaluate(inO);
        sr.evaluate(inR);

        EXPECT_EQ(so.constraintsHold(), sr.constraintsHold())
            << "cycle " << cycle;
        EXPECT_EQ(so.anyBad(), sr.anyBad()) << "cycle " << cycle;
        for (NetId id : orig.constraints())
            checkRole(id, "constraint");
        for (NetId id : orig.bads())
            checkRole(id, "bad");
        if (cycle == 0) {
            EXPECT_EQ(so.initConstraintsHold(), sr.initConstraintsHold());
            for (NetId id : orig.initConstraints())
                checkRole(id, "init constraint");
        }
        if (!so.constraintsHold() ||
            (cycle == 0 && !so.initConstraintsHold()))
            break; // conditional contract: assumptions violated
        so.tick();
        sr.tick();
    }
}

TEST(ReductionEquivalence, RandomCircuitsUnconstrained)
{
    for (uint64_t seed = 1; seed <= 40; ++seed)
        checkLockstepEquivalence(seed, false);
}

TEST(ReductionEquivalence, RandomCircuitsWithConstraints)
{
    for (uint64_t seed = 1; seed <= 40; ++seed)
        checkLockstepEquivalence(seed, true);
}

TEST(ReductionEquivalence, PipelinePrefixesAgree)
{
    // Every prefix of the default pipeline must satisfy the same
    // contract - a mid-pipeline bug shows up at the shortest failing
    // prefix, which makes the bisection trivial.
    const auto &def = PassManager::defaultPasses();
    for (size_t n = 1; n <= def.size(); ++n) {
        std::string spec;
        for (size_t i = 0; i < n; ++i)
            spec += (i ? "," : "") + def[i];
        Circuit orig = fuzz::randomCircuit(99, {});
        ReductionResult r = PassManager(spec).run(orig);
        sim::Simulator so(orig);
        sim::Simulator sr(r.circuit);
        so.reset();
        sr.reset();
        std::mt19937_64 rng(99);
        for (size_t cycle = 0; cycle < 16; ++cycle) {
            std::unordered_map<NetId, uint64_t> inO, inR;
            for (NetId in : orig.inputs()) {
                uint64_t v = rng();
                inO[in] = v;
                if (auto c = r.map.constantOf(in))
                    inO[in] = *c;
                else if (NetId m = r.map.mapped(in); m != kNoNet)
                    inR[m] = v;
            }
            so.evaluate(inO);
            sr.evaluate(inR);
            ASSERT_EQ(so.anyBad(), sr.anyBad())
                << "prefix '" << spec << "' cycle " << cycle;
            so.tick();
            sr.tick();
        }
    }
}

// --- Witness round trip -------------------------------------------------

TEST(WitnessRoundTrip, ReducedAttackReplaysOnTheOriginalCircuit)
{
    // Counter circuit with an input-gated assertion failure at cycle 5,
    // plus redundancy for the pipeline to chew through: a duplicated
    // counter and an unreachable junk cone.
    Circuit c;
    NetId in = inputNet(c, 8, "in");
    NetId r1 = regNet(c, 8, 0, "ctr");
    NetId r2 = regNet(c, 8, 0, "ctr_twin");
    NetId one = constNet(c, 8, 1);
    c.connectReg(r1, binNet(c, Op::Add, 8, r1, one));
    c.connectReg(r2, binNet(c, Op::Add, 8, r2, one));
    NetId junk = regNet(c, 16, 3, "junk");
    c.connectReg(junk, binNet(c, Op::Mul, 16, junk, junk));
    NetId atFive = binNet(c, Op::Eq, 1, r2, constNet(c, 8, 5));
    NetId inHit = binNet(c, Op::Eq, 1, in, constNet(c, 8, 0x2a));
    NetId bad = binNet(c, Op::And, 1, atFive, inHit);
    c.setName(bad, "leak");
    c.addBad(bad);
    c.finalize();

    ReductionResult r = PassManager().run(c);
    EXPECT_LT(r.circuit.numNets(), c.numNets());
    EXPECT_LT(r.circuit.registers().size(), c.registers().size());

    mc::CheckOptions copts;
    copts.maxDepth = 10;
    copts.tryProof = false;
    copts.engines = {mc::EngineKind::Bmc};
    mc::CheckResult reduced = mc::checkProperty(r.circuit, copts);
    ASSERT_EQ(reduced.verdict, mc::Verdict::Attack);
    ASSERT_TRUE(reduced.trace);

    mc::CheckResult unreduced = mc::checkProperty(c, copts);
    ASSERT_EQ(unreduced.verdict, mc::Verdict::Attack);
    EXPECT_EQ(reduced.depth, unreduced.depth); // identical attack depth

    // The reduced-circuit witness, translated through the NetMap, must
    // replay as a genuine attack on the *original* circuit - that is
    // the property the runner's witness self-audit relies on.
    mc::Trace back = mc::translateTrace(c, r.map, *reduced.trace);
    EXPECT_EQ(back.length, reduced.depth + 1);
    mc::ReplayResult replay = mc::replayTrace(c, back);
    EXPECT_TRUE(replay.initConstraintsHeld);
    EXPECT_TRUE(replay.constraintsHeld);
    EXPECT_TRUE(replay.badReached);
}

TEST(WitnessRoundTrip, RandomCircuitWitnessesSurviveTranslation)
{
    // Across random circuits: whenever BMC finds an attack on the
    // reduced circuit, the back-translated trace replays on the
    // original with the same verdict.
    size_t attacks = 0;
    for (uint64_t seed = 1; seed <= 12 || attacks == 0; ++seed) {
        ASSERT_LT(seed, 64u) << "no random seed produced an attack";
        Circuit orig = fuzz::randomCircuit(seed, {});
        ReductionResult r = PassManager().run(orig);
        mc::CheckOptions copts;
        copts.maxDepth = 6;
        copts.tryProof = false;
        copts.engines = {mc::EngineKind::Bmc};
        mc::CheckResult res = mc::checkProperty(r.circuit, copts);
        if (res.verdict != mc::Verdict::Attack)
            continue;
        ++attacks;
        ASSERT_TRUE(res.trace);
        mc::Trace back = mc::translateTrace(orig, r.map, *res.trace);
        mc::ReplayResult replay = mc::replayTrace(orig, back);
        EXPECT_TRUE(replay.badReached) << "seed " << seed;
        EXPECT_TRUE(replay.constraintsHeld) << "seed " << seed;
        EXPECT_TRUE(replay.initConstraintsHeld) << "seed " << seed;
    }
    EXPECT_GE(attacks, 1u);
}

// --- Unified cone-of-influence helper -----------------------------------

TEST(ConeOfInfluence, AgreesAcrossTheThreeFormerCopies)
{
    Circuit c = fuzz::randomCircuit(3, {});
    std::vector<bool> direct = rtl::transform::propertyCone(c);
    std::vector<bool> viaCircuit = c.coneOfInfluence();
    EXPECT_EQ(direct, viaCircuit);

    // Extra roots only ever grow the cone.
    std::vector<bool> wider =
        rtl::transform::propertyCone(c, c.registers());
    for (NetId id = 0; id < NetId(c.numNets()); ++id)
        if (viaCircuit[id])
            EXPECT_TRUE(wider[id]) << "cone shrank at net " << id;
}

} // namespace
} // namespace csl
