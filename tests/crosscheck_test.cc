// Property tests cross-validating the SAT-based engines against the
// explicit-state exhaustive oracle on randomly generated small sequential
// circuits, plus BTOR2 export sanity checks.

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "mc/exhaustive.h"
#include "mc/portfolio.h"
#include "rtl/btor2.h"
#include "rtl/builder.h"

namespace csl {
namespace {

using mc::ExhaustiveResult;
using rtl::Builder;
using rtl::Circuit;
using rtl::Sig;

/** Generate a random small sequential circuit with assume/assert nets. */
void
randomCircuit(Circuit &circuit, std::mt19937_64 &rng)
{
    Builder b(circuit);
    const int width = 2 + int(rng() % 3); // 2..4 bits

    std::vector<Sig> regs;
    const int num_regs = 2 + int(rng() % 2);
    for (int i = 0; i < num_regs; ++i) {
        bool symbolic = rng() % 3 == 0;
        regs.push_back(symbolic
                           ? b.symbolicReg("r" + std::to_string(i), width)
                           : b.reg("r" + std::to_string(i), width,
                                   rng() % (1ull << width)));
    }
    Sig in = b.input("in", width);

    std::vector<Sig> pool = regs;
    pool.push_back(in);
    pool.push_back(b.lit(rng() % (1ull << width), width));
    auto pick = [&]() { return pool[rng() % pool.size()]; };
    for (int i = 0; i < 10; ++i) {
        Sig x = pick(), y = pick();
        switch (rng() % 6) {
          case 0: pool.push_back(b.add(x, y)); break;
          case 1: pool.push_back(b.sub(x, y)); break;
          case 2: pool.push_back(b.xorOf(x, y)); break;
          case 3: pool.push_back(b.andOf(x, y)); break;
          case 4: pool.push_back(b.mux(b.eq(x, y), x, y)); break;
          case 5: pool.push_back(b.mul(x, y)); break;
        }
    }
    for (Sig reg : regs)
        b.connect(reg, pick());

    // A random constraint keeps part of the space unreachable; a random
    // assertion may or may not be violated.
    b.assume(b.ne(in, b.lit(rng() % (1ull << width), width)), "assume");
    Sig target = b.lit(rng() % (1ull << width), width);
    b.assertAlways(b.ne(pick(), target), "assert");
    b.finish();
}

class EngineCrossCheck : public ::testing::TestWithParam<int>
{};

TEST_P(EngineCrossCheck, SatEnginesAgreeWithExhaustiveOracle)
{
    std::mt19937_64 rng(7777 + GetParam());
    for (int round = 0; round < 15; ++round) {
        Circuit circuit;
        randomCircuit(circuit, rng);

        ExhaustiveResult oracle = mc::exhaustiveCheck(circuit);
        ASSERT_TRUE(oracle.completed);

        mc::CheckOptions opts;
        opts.maxDepth = 40;
        opts.timeoutSeconds = 60;
        mc::CheckResult engine = mc::checkProperty(circuit, opts);

        if (oracle.badReachable) {
            ASSERT_EQ(engine.verdict, mc::Verdict::Attack)
                << "oracle reaches bad at depth " << oracle.badDepth
                << " but engine said " << mc::verdictName(engine.verdict)
                << " (round " << round << ")";
            // BMC reports the *minimal* depth; it must match the BFS.
            EXPECT_EQ(engine.depth, oracle.badDepth);
        } else {
            ASSERT_NE(engine.verdict, mc::Verdict::Attack)
                << "engine found a bogus attack at depth " << engine.depth
                << " (round " << round << ")";
            // Proof may or may not close at this k; but if it closed it
            // must agree with the oracle (which it does by branch).
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineCrossCheck,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Exhaustive, FindsCounterAttackAtExactDepth)
{
    Circuit circuit;
    Builder b(circuit);
    Sig c = b.reg("c", 4, 0);
    b.connect(c, b.addConst(c, 1));
    b.assertAlways(b.ne(c, b.lit(6, 4)));
    b.finish();
    auto r = mc::exhaustiveCheck(circuit);
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(r.badReachable);
    EXPECT_EQ(r.badDepth, 6u);
}

TEST(Exhaustive, RespectsConstraints)
{
    Circuit circuit;
    Builder b(circuit);
    Sig in = b.input("in", 4);
    Sig c = b.reg("c", 4, 0);
    b.connect(c, b.add(c, in));
    b.assume(b.eqConst(in, 0), "in_zero");
    b.assertAlways(b.eqConst(c, 0), "c_stays_zero");
    b.finish();
    auto r = mc::exhaustiveCheck(circuit);
    ASSERT_TRUE(r.completed);
    EXPECT_FALSE(r.badReachable);
}

TEST(Exhaustive, SymbolicInitEnumerated)
{
    Circuit circuit;
    Builder b(circuit);
    Sig r = b.symbolicReg("r", 3);
    b.connect(r, r);
    b.assumeInit(b.ult(r, b.lit(4, 3)), "r_small");
    b.assertAlways(b.ne(r, b.lit(3, 3)), "r_not_3");
    b.finish();
    auto res = mc::exhaustiveCheck(circuit);
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.badReachable); // r == 3 is a legal initial state
    EXPECT_EQ(res.badDepth, 0u);
}

TEST(Exhaustive, GivesUpGracefullyOnLargeCircuits)
{
    Circuit circuit;
    Builder b(circuit);
    Sig r = b.symbolicReg("wide", 48);
    b.connect(r, r);
    b.assertAlways(b.one());
    b.finish();
    auto res = mc::exhaustiveCheck(circuit);
    EXPECT_FALSE(res.completed);
}

TEST(Btor2, ExportContainsExpectedConstructs)
{
    Circuit circuit;
    Builder b(circuit);
    Sig in = b.input("nondet", 4);
    Sig r = b.reg("counter", 4, 5);
    Sig s = b.symbolicReg("free", 2);
    b.connect(r, b.add(r, in));
    b.connect(s, s);
    b.assume(b.ult(in, b.lit(3, 4)), "small");
    b.assumeInit(b.eqConst(s, 1), "s_init");
    b.assertAlways(b.ne(r, b.lit(9, 4)), "prop");
    b.finish();

    std::ostringstream oss;
    rtl::exportBtor2(circuit, oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("sort bitvec 4"), std::string::npos);
    EXPECT_NE(out.find("input"), std::string::npos);
    EXPECT_NE(out.find("state"), std::string::npos);
    EXPECT_NE(out.find("init"), std::string::npos);
    EXPECT_NE(out.find("next"), std::string::npos);
    EXPECT_NE(out.find("constraint"), std::string::npos);
    EXPECT_NE(out.find("bad"), std::string::npos);
    EXPECT_NE(out.find("csl_first_frame"), std::string::npos);
    // The symbolic-init register must have no init line of its own: count
    // inits (one for `counter`, one for the first-frame flag).
    size_t inits = 0, pos = 0;
    while ((pos = out.find(" init ", pos)) != std::string::npos) {
        ++inits;
        pos += 6;
    }
    EXPECT_EQ(inits, 2u);
}

TEST(Btor2, ShadowCircuitExports)
{
    // The flagship circuit must serialize without panics and produce a
    // plausible node count.
    rtl::Circuit circuit;
    Builder b(circuit);
    Sig r = b.reg("r", 4, 0);
    b.connect(r, b.addConst(r, 1));
    b.assertAlways(b.ne(r, b.lit(15, 4)));
    b.finish();
    std::ostringstream oss;
    rtl::exportBtor2(circuit, oss);
    EXPECT_GT(oss.str().size(), 100u);
}

} // namespace
} // namespace csl
