// Unit tests for the toy ISA: encode/decode round trips, assembler and
// disassembler, and golden-model semantics.

#include <gtest/gtest.h>

#include <random>

#include "isa/assembler.h"
#include "isa/golden.h"
#include "isa/isa.h"

namespace csl::isa {
namespace {

TEST(IsaConfig, DerivedWidths)
{
    IsaConfig ic;
    EXPECT_EQ(ic.regBits(), 2);
    EXPECT_EQ(ic.pcBits(), 3);
    EXPECT_EQ(ic.immLowBits(), 3);
    EXPECT_EQ(ic.immBits(), 5);
    EXPECT_EQ(ic.instrBits(), 10);
    EXPECT_EQ(ic.secretStart(), 2u);
    ic.check();
}

TEST(IsaConfig, SupportsFollowsFeatures)
{
    IsaConfig ic;
    EXPECT_TRUE(ic.supports(Opcode::Li));
    EXPECT_TRUE(ic.supports(Opcode::Ld));
    EXPECT_FALSE(ic.supports(Opcode::Mul));
    EXPECT_FALSE(ic.supports(Opcode::St));
    ic.hasMul = true;
    ic.hasStore = true;
    EXPECT_TRUE(ic.supports(Opcode::Mul));
    EXPECT_TRUE(ic.supports(Opcode::St));
}

TEST(Encoding, RoundTripAllOpcodes)
{
    IsaConfig ic;
    ic.hasMul = true;
    ic.hasStore = true;
    std::mt19937 rng(7);
    for (int round = 0; round < 500; ++round) {
        Instr instr;
        instr.op = static_cast<Opcode>(rng() % 6);
        instr.f1 = static_cast<uint8_t>(rng() % ic.regCount);
        instr.f2 = static_cast<uint8_t>(rng() % ic.regCount);
        instr.f3 = static_cast<uint8_t>(rng() % (1 << ic.immLowBits()));
        Instr back = decode(encode(instr, ic), ic);
        EXPECT_EQ(back.op, instr.op);
        EXPECT_EQ(back.f1, instr.f1);
        EXPECT_EQ(back.f2, instr.f2);
        EXPECT_EQ(back.f3, instr.f3);
    }
}

TEST(Encoding, UnsupportedDecodesAsNop)
{
    IsaConfig ic; // no MUL, no ST
    Instr mul;
    mul.op = Opcode::Mul;
    IsaConfig full = ic;
    full.hasMul = true;
    EXPECT_EQ(decode(encode(mul, full), ic).op, Opcode::Nop);
}

TEST(Assembler, RoundTripThroughDisassembler)
{
    IsaConfig ic;
    ic.hasMul = true;
    ic.hasStore = true;
    std::string source = R"(
        li   r1, 5
        add  r2, r1, r1
        mul  r3, r2, r1
        ld   r0, [r2]
        st   r1, [r3]
        beqz r2, +3
        nop
    )";
    auto words = assemble(source, ic);
    ASSERT_EQ(words.size(), ic.imemSize);
    const char *expect[] = {
        "li   r1, 5",       "add  r2, r1, r1", "mul  r3, r2, r1",
        "ld   r0, [r2]",    "st   r1, [r3]",   "beqz r2, +3",
        "nop",              "nop",
    };
    for (size_t i = 0; i < ic.imemSize; ++i)
        EXPECT_EQ(disassemble(decode(words[i], ic), ic), expect[i]);
}

TEST(Assembler, CommentsAndBlanksIgnored)
{
    IsaConfig ic;
    auto words = assemble("# header\n  li r1, 2  // trailing\n\n", ic);
    EXPECT_EQ(disassemble(decode(words[0], ic), ic), "li   r1, 2");
    EXPECT_EQ(decode(words[1], ic).op, Opcode::Nop);
}

TEST(Assembler, LabelsResolveForwardAndBackward)
{
    IsaConfig ic;
    auto words = assemble(R"(
        loop:
        li r1, 1
        beqz r0, skip
        add r2, r1, r1
        skip:
        beqz r0, loop
    )",
                          ic);
    // pc1: beqz to pc3: offset = 3 - 2 = 1.
    Instr fwd = decode(words[1], ic);
    EXPECT_EQ(fwd.op, Opcode::Beqz);
    EXPECT_EQ(fwd.imm(ic), 1u);
    // pc3: beqz back to pc0: offset = (0 - 4) mod 8 = 4.
    Instr back = decode(words[3], ic);
    EXPECT_EQ(back.imm(ic), 4u);

    // Semantics: taken back-branch really lands on the label.
    GoldenModel model(ic, words, {0, 0, 0, 0});
    model.step();             // li
    model.step();             // beqz r0 (r0==0: taken) -> skip
    EXPECT_EQ(model.pc(), 3u);
    model.step();             // beqz r0 -> loop
    EXPECT_EQ(model.pc(), 0u);
}

TEST(Assembler, DuplicateLabelDies)
{
    IsaConfig ic;
    EXPECT_DEATH(assemble("x:\nnop\nx:\nnop\n", ic), "duplicate label");
}

TEST(Assembler, RejectsUnsupportedMnemonic)
{
    IsaConfig ic; // no store
    EXPECT_DEATH(assemble("st r1, [r2]\n", ic), "not supported");
}

TEST(Golden, LiAddSequence)
{
    IsaConfig ic;
    auto words = assemble("li r1, 3\nadd r2, r1, r1\nadd r2, r2, r2\n", ic);
    GoldenModel model(ic, words, {0, 0, 0, 0});
    auto r1 = model.step();
    EXPECT_TRUE(r1.writesReg);
    EXPECT_EQ(r1.wdata, 3u);
    auto r2 = model.step();
    EXPECT_EQ(r2.wdata, 6u);
    auto r3 = model.step();
    EXPECT_EQ(r3.wdata, 12u % 16);
    EXPECT_EQ(model.regs()[2], 12u);
}

TEST(Golden, LoadWrapsAddress)
{
    IsaConfig ic;
    auto words = assemble("li r1, 6\nld r2, [r1]\n", ic);
    GoldenModel model(ic, words, {0xa, 0xb, 0xc, 0xd});
    model.step();
    auto rec = model.step();
    EXPECT_TRUE(rec.isLoad);
    EXPECT_EQ(rec.addr, 6u);           // full architectural address
    EXPECT_EQ(rec.wdata, 0xcu);        // dmem[6 mod 4]
}

TEST(Golden, BranchTakenAndWrapping)
{
    IsaConfig ic;
    auto words = assemble("beqz r0, +6\n", ic); // taken: pc = (0+1+6)%8
    GoldenModel model(ic, words, {0, 0, 0, 0});
    auto rec = model.step();
    EXPECT_TRUE(rec.isBranch);
    EXPECT_TRUE(rec.taken);
    EXPECT_EQ(model.pc(), 7u);
    model.step(); // nop at 7
    EXPECT_EQ(model.pc(), 0u); // wraps
}

TEST(Golden, BranchNotTaken)
{
    IsaConfig ic;
    auto words = assemble("li r1, 2\nbeqz r1, +3\n", ic);
    GoldenModel model(ic, words, {0, 0, 0, 0});
    model.step();
    auto rec = model.step();
    EXPECT_TRUE(rec.isBranch);
    EXPECT_FALSE(rec.taken);
    EXPECT_EQ(model.pc(), 2u);
}

TEST(Golden, StoreWritesMemory)
{
    IsaConfig ic;
    ic.hasStore = true;
    auto words = assemble("li r1, 5\nli r2, 2\nst r1, [r2]\n", ic);
    GoldenModel model(ic, words, {0, 0, 0, 0});
    model.step();
    model.step();
    auto rec = model.step();
    EXPECT_TRUE(rec.isStore);
    EXPECT_EQ(rec.addr, 2u);
    EXPECT_EQ(model.dmem()[2], 5u);
}

TEST(Golden, MisalignedLoadTraps)
{
    IsaConfig ic;
    ic.trapOnMisaligned = true;
    auto words = assemble("li r1, 3\nld r2, [r1]\nli r3, 7\n", ic);
    GoldenModel model(ic, words, {0, 0, 0, 9});
    model.step();
    auto rec = model.step();
    EXPECT_TRUE(rec.isLoad);
    EXPECT_TRUE(rec.exception);
    EXPECT_FALSE(rec.writesReg);
    EXPECT_EQ(model.pc(), 0u);        // trap vector
    EXPECT_EQ(model.regs()[2], 0u);   // no writeback
}

TEST(Golden, OutOfRangeLoadTraps)
{
    IsaConfig ic;
    ic.trapOnOutOfRange = true;
    auto words = assemble("li r1, 6\nld r2, [r1]\n", ic);
    GoldenModel model(ic, words, {1, 2, 3, 4});
    model.step();
    auto rec = model.step();
    EXPECT_TRUE(rec.exception);
    EXPECT_EQ(model.pc(), 0u);
}

TEST(Golden, MulOperandsRecorded)
{
    IsaConfig ic;
    ic.hasMul = true;
    auto words = assemble("li r1, 3\nli r2, 5\nmul r3, r1, r2\n", ic);
    GoldenModel model(ic, words, {0, 0, 0, 0});
    model.step();
    model.step();
    auto rec = model.step();
    EXPECT_TRUE(rec.isMul);
    EXPECT_EQ(rec.opA, 3u);
    EXPECT_EQ(rec.opB, 5u);
    EXPECT_EQ(rec.wdata, 15u);
}

TEST(Golden, InitialRegistersRespected)
{
    IsaConfig ic;
    auto words = assemble("add r3, r1, r2\n", ic);
    GoldenModel model(ic, words, {0, 0, 0, 0}, {0, 4, 9, 0});
    auto rec = model.step();
    EXPECT_EQ(rec.wdata, 13u);
}

TEST(Disassemble, ProgramListing)
{
    IsaConfig ic;
    auto words = assemble("li r1, 1\nld r2, [r1]\n", ic);
    std::string listing = disassembleProgram(words, ic);
    EXPECT_NE(listing.find("0: li   r1, 1"), std::string::npos);
    EXPECT_NE(listing.find("1: ld   r2, [r1]"), std::string::npos);
}

} // namespace
} // namespace csl::isa
