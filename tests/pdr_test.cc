// Tests for the PDR/IC3 engine: known-answer circuits, agreement with
// the explicit-state oracle on random circuits, and constraint handling.

#include <gtest/gtest.h>

#include <random>

#include "mc/exhaustive.h"
#include "mc/pdr.h"
#include "rtl/builder.h"

namespace csl::mc {
namespace {

using rtl::Builder;
using rtl::Circuit;
using rtl::Sig;

void
buildCounter(Circuit &circuit, int width, uint64_t target, uint64_t step = 1)
{
    Builder b(circuit);
    Sig c = b.reg("c", width, 0);
    b.connect(c, b.addConst(c, step));
    b.assertAlways(b.ne(c, b.lit(target, width)), "prop");
    b.finish();
}

TEST(Pdr, FindsCexOnReachableBad)
{
    Circuit circuit;
    buildCounter(circuit, 4, 7);
    PdrResult r = runPdr(circuit);
    EXPECT_EQ(r.kind, PdrResult::Kind::Cex);
}

TEST(Pdr, ProvesUnreachableBad)
{
    Circuit circuit;
    buildCounter(circuit, 4, 3, /*step=*/2); // even counter, odd target
    PdrResult r = runPdr(circuit);
    EXPECT_EQ(r.kind, PdrResult::Kind::Proof);
}

TEST(Pdr, BadAtDepthZero)
{
    Circuit circuit;
    Builder b(circuit);
    Sig r = b.symbolicReg("r", 3);
    b.connect(r, r);
    b.assertAlways(b.ne(r, b.lit(5, 3)), "prop");
    b.finish();
    PdrResult res = runPdr(circuit);
    EXPECT_EQ(res.kind, PdrResult::Kind::Cex);
    EXPECT_EQ(res.depth, 0u);
}

TEST(Pdr, InitConstraintsRespected)
{
    // Init constraint pins the symbolic register away from the target;
    // the register never moves, so the property holds.
    Circuit circuit;
    Builder b(circuit);
    Sig r = b.symbolicReg("r", 3);
    b.connect(r, r);
    b.assumeInit(b.ult(r, b.lit(4, 3)), "small");
    b.assertAlways(b.ne(r, b.lit(6, 3)), "prop");
    b.finish();
    PdrResult res = runPdr(circuit);
    EXPECT_EQ(res.kind, PdrResult::Kind::Proof);
}

TEST(Pdr, PerCycleConstraintsPrunePaths)
{
    // Counter increments by a free input, but the environment constrains
    // the input to zero: the target stays unreachable.
    Circuit circuit;
    Builder b(circuit);
    Sig in = b.input("in", 4);
    Sig c = b.reg("c", 4, 0);
    b.connect(c, b.add(c, in));
    b.assume(b.eqConst(in, 0), "in_zero");
    b.assertAlways(b.ne(c, b.lit(5, 4)), "prop");
    b.finish();
    PdrResult res = runPdr(circuit);
    EXPECT_EQ(res.kind, PdrResult::Kind::Proof);
}

TEST(Pdr, ProvesPropertyThatDefeatsLowKInduction)
{
    // The classic k-induction-hostile example: a counter that wraps
    // through a long unreachable tail. PDR discovers the invariant.
    Circuit circuit;
    Builder b(circuit);
    Sig c = b.reg("c", 5, 0);
    b.connect(c, b.incMod(c, 20));        // reachable: 0..19
    b.assertAlways(b.ne(c, b.lit(27, 5)), "prop");
    b.finish();
    PdrResult res = runPdr(circuit);
    EXPECT_EQ(res.kind, PdrResult::Kind::Proof);
}

TEST(Pdr, ProvesParityInvariantThatDefeatsKInduction)
{
    // A 24-bit even counter with an odd target: plain k-induction needs
    // k ~ 2^23, but PDR generalizes straight to the parity clause.
    Circuit circuit;
    Builder b(circuit);
    Sig c = b.reg("c", 24, 0);
    b.connect(c, b.addConst(c, 2));
    b.assertAlways(b.ne(c, b.lit(0xffffff, 24)), "prop");
    b.finish();
    Budget budget(60.0);
    PdrResult res = runPdr(circuit, {}, &budget);
    EXPECT_EQ(res.kind, PdrResult::Kind::Proof);
}

TEST(Pdr, TimeoutOnTinyBudget)
{
    // A multiplier-dense random circuit under a microscopic work budget.
    Circuit circuit;
    Builder b(circuit);
    Sig a = b.reg("a", 12, 3);
    Sig c = b.reg("c", 12, 5);
    b.connect(a, b.mul(a, c));
    b.connect(c, b.add(b.mul(c, c), a));
    b.assertAlways(b.ne(b.mul(a, c), b.lit(0xabc, 12)), "prop");
    b.finish();
    Budget budget(1e9, /*work=*/3);
    PdrResult res = runPdr(circuit, {}, &budget);
    EXPECT_EQ(res.kind, PdrResult::Kind::Timeout);
}

// Random-circuit agreement with the explicit-state oracle (the same
// generator the BMC/k-induction cross-check uses).
void
randomCircuit(Circuit &circuit, std::mt19937_64 &rng)
{
    Builder b(circuit);
    const int width = 2 + int(rng() % 2); // 2..3 bits
    std::vector<Sig> regs;
    for (int i = 0; i < 2; ++i) {
        bool symbolic = rng() % 3 == 0;
        regs.push_back(symbolic
                           ? b.symbolicReg("r" + std::to_string(i), width)
                           : b.reg("r" + std::to_string(i), width,
                                   rng() % (1ull << width)));
    }
    Sig in = b.input("in", width);
    std::vector<Sig> pool = regs;
    pool.push_back(in);
    pool.push_back(b.lit(rng() % (1ull << width), width));
    auto pick = [&]() { return pool[rng() % pool.size()]; };
    for (int i = 0; i < 8; ++i) {
        Sig x = pick(), y = pick();
        switch (rng() % 4) {
          case 0: pool.push_back(b.add(x, y)); break;
          case 1: pool.push_back(b.xorOf(x, y)); break;
          case 2: pool.push_back(b.andOf(x, y)); break;
          case 3: pool.push_back(b.mux(b.eq(x, y), x, y)); break;
        }
    }
    for (Sig reg : regs)
        b.connect(reg, pick());
    b.assume(b.ne(in, b.lit(rng() % (1ull << width), width)), "assume");
    b.assertAlways(b.ne(pick(), b.lit(rng() % (1ull << width), width)),
                   "assert");
    b.finish();
}

class PdrCrossCheck : public ::testing::TestWithParam<int>
{};

TEST_P(PdrCrossCheck, AgreesWithExhaustiveOracle)
{
    std::mt19937_64 rng(31000 + GetParam());
    for (int round = 0; round < 10; ++round) {
        Circuit circuit;
        randomCircuit(circuit, rng);
        ExhaustiveResult oracle = exhaustiveCheck(circuit);
        ASSERT_TRUE(oracle.completed);
        Budget budget(30.0);
        PdrResult res = runPdr(circuit, {}, &budget);
        if (res.kind == PdrResult::Kind::Timeout)
            continue; // budget-bound; no verdict to compare
        EXPECT_EQ(res.kind == PdrResult::Kind::Cex, oracle.badReachable)
            << "round " << round << ": PDR said "
            << (res.kind == PdrResult::Kind::Cex ? "cex" : "proof")
            << ", oracle bad-reachable=" << oracle.badReachable;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PdrCrossCheck,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

} // namespace
} // namespace csl::mc
