// Directed simulation tests of the Contract Shadow Logic machinery:
// phase transition, pre-divergence drain tracking, pause-based trace
// realignment, skid-FIFO matching, and the two requirement ablations.

#include <gtest/gtest.h>

#include "contract/contract.h"
#include "isa/assembler.h"
#include "proc/presets.h"
#include "shadow/baseline_builder.h"
#include "shadow/shadow_builder.h"
#include "sim/simulator.h"

namespace csl {
namespace {

using contract::Contract;
using defense::Defense;
using isa::IsaConfig;
using shadow::ShadowHarness;
using shadow::ShadowOptions;

/** Shadow circuit + simulator with concrete initial state. */
struct ShadowSim
{
    rtl::Circuit circuit;
    ShadowHarness h;
    std::unique_ptr<sim::Simulator> sim;

    ShadowSim(const proc::CoreSpec &spec, const ShadowOptions &opts,
              const std::vector<uint64_t> &program,
              const std::vector<uint64_t> &dmem1,
              const std::vector<uint64_t> &dmem2,
              const std::vector<uint64_t> &regs)
    {
        h = shadow::buildShadowCircuit(circuit, spec, opts);
        sim = std::make_unique<sim::Simulator>(circuit);
        std::unordered_map<rtl::NetId, uint64_t> init;
        for (size_t i = 0; i < program.size(); ++i) {
            init[h.cpu1.imemWords[i].id] = program[i];
            init[h.cpu2.imemWords[i].id] = program[i];
        }
        for (size_t i = 0; i < dmem1.size(); ++i) {
            init[h.cpu1.dmemWords[i].id] = dmem1[i];
            init[h.cpu2.dmemWords[i].id] = dmem2[i];
        }
        for (size_t i = 0; i < regs.size(); ++i) {
            init[h.cpu1.archRegs[i].id] = regs[i];
            init[h.cpu2.archRegs[i].id] = regs[i];
        }
        sim->reset(init);
    }

    uint64_t value(rtl::NetId id) const { return sim->value(id); }
};

/** The Spectre-shaped leaking program from the processor tests. */
std::vector<uint64_t>
leakProgram(const IsaConfig &ic)
{
    return isa::assemble(R"(
        ld r1, [r0]      # slow branch-condition producer
        add r1, r1, r1
        beqz r1, +3      # mispredicted (taken)
        ld r2, [r3]      # transient: loads the secret (r3 = 2)
        ld r2, [r2]      # transient: secret-dependent bus address
        nop
    )",
                         ic);
}

TEST(ShadowSim, LeakTripsAssertionWithConstraintsHeld)
{
    proc::CoreSpec spec = proc::simpleOoOSpec(Defense::None);
    const IsaConfig &ic = spec.isaConfig();
    ShadowOptions opts;
    ShadowSim s(spec, opts, leakProgram(ic), {0, 1, 9, 3}, {0, 1, 5, 3},
                {0, 0, 0, 2});

    bool saw_diff = false, saw_phase2 = false, saw_leak = false;
    bool constraints_ok = true;
    for (int t = 0; t < 60 && !saw_leak; ++t) {
        s.sim->evaluate();
        constraints_ok = constraints_ok && s.sim->constraintsHold();
        saw_diff = saw_diff || s.value(s.h.uarchDiff);
        saw_phase2 = saw_phase2 || s.value(s.h.phase2);
        saw_leak = s.sim->anyBad();
        s.sim->tick();
    }
    EXPECT_TRUE(saw_diff) << "expected a uarch trace divergence";
    EXPECT_TRUE(saw_phase2);
    EXPECT_TRUE(saw_leak) << "leak assertion should fire after draining";
    EXPECT_TRUE(constraints_ok)
        << "contract constraint must hold on this attack";
}

TEST(ShadowSim, SecureDefenseNeverDiverges)
{
    proc::CoreSpec spec = proc::simpleOoOSpec(Defense::DelayFuturistic);
    const IsaConfig &ic = spec.isaConfig();
    ShadowOptions opts;
    ShadowSim s(spec, opts, leakProgram(ic), {0, 1, 9, 3}, {0, 1, 5, 3},
                {0, 0, 0, 2});
    for (int t = 0; t < 80; ++t) {
        s.sim->evaluate();
        EXPECT_EQ(s.value(s.h.uarchDiff), 0u) << "cycle " << t;
        EXPECT_FALSE(s.sim->anyBad());
        s.sim->tick();
    }
}

TEST(ShadowSim, InOrderCoreNeverDiverges)
{
    proc::CoreSpec spec = proc::inOrderSpec();
    const IsaConfig &ic = spec.isaConfig();
    ShadowOptions opts;
    ShadowSim s(spec, opts, leakProgram(ic), {0, 1, 9, 3}, {0, 1, 5, 3},
                {0, 0, 0, 2});
    for (int t = 0; t < 80; ++t) {
        s.sim->evaluate();
        EXPECT_EQ(s.value(s.h.uarchDiff), 0u) << "cycle " << t;
        EXPECT_FALSE(s.sim->anyBad());
        s.sim->tick();
    }
}

// Synchronization requirement: a secret-dependent branch on the in-order
// core makes the two copies' commit *timing* diverge (taken-branch
// bubble in one copy only). The pause machinery must freeze the copy
// that runs ahead and keep the extracted ISA traces position-aligned, so
// the contract comparison lands on the genuinely differing load
// observations instead of comparing misaligned instructions.
TEST(ShadowSim, PauseRealignsCommitStreams)
{
    proc::CoreSpec spec = proc::inOrderSpec();
    const IsaConfig &ic = spec.isaConfig();
    auto program = isa::assemble(R"(
        ld r1, [r3]      # loads the secret (differs across copies)
        beqz r1, +2      # taken only where the secret is 0: bubble
        li r2, 1
        li r2, 2
        li r2, 3
    )",
                                 ic);
    ShadowOptions opts;
    ShadowSim s(spec, opts, program, {0, 1, 0, 3}, {0, 1, 5, 3},
                {0, 0, 0, 2});
    bool diverged = false, paused = false, isa_diff_seen = false;
    for (int t = 0; t < 60; ++t) {
        s.sim->evaluate();
        diverged = diverged || s.value(s.h.uarchDiff);
        paused = paused || s.value(s.h.pause1) || s.value(s.h.pause2);
        isa_diff_seen = isa_diff_seen || s.value(s.h.isaDiff);
        s.sim->tick();
    }
    EXPECT_TRUE(diverged) << "commit timing should diverge";
    EXPECT_TRUE(paused) << "the ahead copy should get paused";
    EXPECT_TRUE(isa_diff_seen)
        << "aligned comparison must expose the differing load data "
           "(this program is contract-invalid and would be filtered)";
}

// A paused copy must be completely frozen: its architectural state
// cannot change while its pause register is set.
TEST(ShadowSim, PausedCopyHoldsArchitecturalState)
{
    proc::CoreSpec spec = proc::inOrderSpec();
    const IsaConfig &ic = spec.isaConfig();
    auto program = isa::assemble(R"(
        ld r1, [r3]
        beqz r1, +2
        li r2, 1
        li r2, 2
        li r2, 3
    )",
                                 ic);
    ShadowOptions opts;
    ShadowSim s(spec, opts, program, {0, 1, 0, 3}, {0, 1, 5, 3},
                {0, 0, 0, 2});
    for (int t = 0; t < 60; ++t) {
        s.sim->evaluate();
        uint64_t pc1_before = s.value(s.h.cpu1.pc.id);
        bool paused1 = s.value(s.h.pause1) != 0;
        s.sim->tick();
        s.sim->evaluate();
        if (paused1)
            EXPECT_EQ(s.value(s.h.cpu1.pc.id), pc1_before)
                << "paused copy advanced its pc at cycle " << t;
    }
}

// Ablation of the instruction-inclusion requirement: without the drain
// check the assertion fires immediately after any divergence - on this
// contract-invalid program that is a *spurious* attack (the full scheme
// keeps comparing and the constraint eventually fails instead).
TEST(ShadowSim, DrainAblationFiresSpuriously)
{
    proc::CoreSpec spec = proc::simpleOoOSpec(Defense::None);
    const IsaConfig &ic = spec.isaConfig();
    // The delay chain keeps the (contract-violating) secret load away
    // from the commit point while its dependent load already puts a
    // secret-dependent address on the bus: the divergence precedes the
    // constraint violation, so only the drain check can filter it.
    auto program = isa::assemble(R"(
        ld r0, [r0]
        ld r0, [r0]
        ld r0, [r0]
        ld r1, [r2]      # bound-to-commit secret load (r2 = 2)
        ld r3, [r1]      # secret-dependent address on the bus
    )",
                                 ic);
    ShadowOptions opts;
    opts.enableDrainCheck = false;
    ShadowSim s(spec, opts, program, {0, 1, 9, 3}, {0, 1, 5, 3},
                {0, 0, 2, 0});
    bool leak_before_constraint_failure = false;
    bool constraint_failed = false;
    for (int t = 0; t < 40; ++t) {
        s.sim->evaluate();
        if (s.sim->anyBad() && !constraint_failed)
            leak_before_constraint_failure = true;
        if (!s.sim->constraintsHold())
            constraint_failed = true;
        s.sim->tick();
    }
    EXPECT_TRUE(leak_before_constraint_failure)
        << "without the drain check the assertion fires on a program "
           "the contract check would have filtered";
}

// Superscalar alignment: on the 2-wide RideLite, a contract-violating
// load can retire in either commit slot (possibly alongside another
// instruction). The skid buffers must catch the differing observation
// regardless of slot packing.
TEST(ShadowSim, SuperscalarSkidBuffersCompareDualCommits)
{
    proc::CoreSpec spec = proc::rideLiteSpec();
    const IsaConfig &ic = spec.isaConfig();
    auto program = isa::assemble(R"(
        ld r1, [r0]      # stalls the head (dmem[0] = 0)
        ld r1, [r1]      # dependent: keeps the ROB backed up
        ld r2, [r3]      # loads the secret (r3 = 2): differing data
        li r0, 1         # retires in the same cycle as an earlier load
        li r0, 2
    )",
                                 ic);
    ShadowOptions opts;
    ShadowSim s(spec, opts, program, {0, 1, 9, 3}, {0, 1, 5, 3},
                {0, 0, 0, 2});
    bool dual_commit = false, isa_diff_seen = false;
    for (int t = 0; t < 60; ++t) {
        s.sim->evaluate();
        dual_commit =
            dual_commit ||
            (s.value(s.h.cpu1.commits[0].valid.id) &&
             s.value(s.h.cpu1.commits[1].valid.id));
        isa_diff_seen = isa_diff_seen || s.value(s.h.isaDiff);
        s.sim->tick();
    }
    EXPECT_TRUE(dual_commit) << "expected a dual-commit cycle";
    EXPECT_TRUE(isa_diff_seen)
        << "the differing load observation must be compared";
}

TEST(ShadowSim, UpecRestrictionAddsExceptionConstraints)
{
    proc::CoreSpec spec = proc::boomLikeSpec();
    rtl::Circuit circuit;
    ShadowOptions opts;
    opts.restrictToBranchSpeculation = true;
    ShadowHarness h = shadow::buildShadowCircuit(circuit, spec, opts);
    // Restricting the speculation source materializes as additional
    // per-entry constraints (2 cores x 8 entries).
    rtl::Circuit plain_circuit;
    ShadowOptions plain;
    shadow::buildShadowCircuit(plain_circuit, spec, plain);
    EXPECT_GT(circuit.constraints().size(),
              plain_circuit.constraints().size());
}

TEST(ShadowSim, BaselineSchemeSeesSameLeak)
{
    proc::CoreSpec spec = proc::simpleOoOSpec(Defense::None);
    const IsaConfig &ic = spec.isaConfig();
    rtl::Circuit circuit;
    shadow::BaselineHarness h = shadow::buildBaselineCircuit(
        circuit, spec, Contract::Sandboxing);
    sim::Simulator simulator(circuit);
    auto program = leakProgram(ic);
    std::unordered_map<rtl::NetId, uint64_t> init;
    std::vector<uint64_t> dmem1 = {0, 1, 9, 3}, dmem2 = {0, 1, 5, 3};
    std::vector<uint64_t> regs = {0, 0, 0, 2};
    for (size_t i = 0; i < program.size(); ++i) {
        init[h.isa1.imemWords[i].id] = program[i];
        init[h.isa2.imemWords[i].id] = program[i];
        init[h.cpu1.imemWords[i].id] = program[i];
        init[h.cpu2.imemWords[i].id] = program[i];
    }
    for (size_t i = 0; i < dmem1.size(); ++i) {
        init[h.isa1.dmemWords[i].id] = dmem1[i];
        init[h.cpu1.dmemWords[i].id] = dmem1[i];
        init[h.isa2.dmemWords[i].id] = dmem2[i];
        init[h.cpu2.dmemWords[i].id] = dmem2[i];
    }
    for (size_t i = 0; i < regs.size(); ++i) {
        init[h.isa1.archRegs[i].id] = regs[i];
        init[h.isa2.archRegs[i].id] = regs[i];
        init[h.cpu1.archRegs[i].id] = regs[i];
        init[h.cpu2.archRegs[i].id] = regs[i];
    }
    simulator.reset(init);
    bool leak = false, constraints_ok = true;
    for (int t = 0; t < 40; ++t) {
        simulator.evaluate();
        constraints_ok = constraints_ok && simulator.constraintsHold();
        leak = leak || simulator.anyBad();
        simulator.tick();
    }
    EXPECT_TRUE(leak);
    EXPECT_TRUE(constraints_ok);
}

} // namespace
} // namespace csl
