// End-to-end verification tests: the library's headline behaviours.
// Attack finding on insecure designs, unbounded proofs on secure ones,
// LEAVE's in-order-only power, fuzzing, and the requirement ablations.

#include <gtest/gtest.h>

#include "fuzz/fuzzer.h"
#include "leave/invariant_search.h"
#include "verif/task.h"

namespace csl {
namespace {

using contract::Contract;
using defense::Defense;

verif::VerificationTask
huntTask(proc::CoreSpec spec, Contract contract)
{
    verif::VerificationTask task;
    task.core = std::move(spec);
    task.contract = contract;
    task.scheme = verif::Scheme::ContractShadow;
    task.tryProof = false;
    task.assumeSecretsDiffer = true;
    task.maxDepth = 12;
    task.timeoutSeconds = 300;
    return task;
}

verif::VerificationTask
proveTask(proc::CoreSpec spec, Contract contract)
{
    verif::VerificationTask task;
    task.core = std::move(spec);
    task.contract = contract;
    task.scheme = verif::Scheme::ContractShadow;
    task.maxDepth = 20;
    task.timeoutSeconds = 600;
    return task;
}

TEST(EndToEnd, ShadowFindsSandboxingAttackOnInsecureSimpleOoO)
{
    auto res = verif::runVerification(
        huntTask(proc::simpleOoOSpec(Defense::None),
                 Contract::Sandboxing));
    ASSERT_EQ(res.verdict, mc::Verdict::Attack);
    EXPECT_NE(res.attackReport.find("confirmed in simulation"),
              std::string::npos)
        << res.attackReport;
}

TEST(EndToEnd, ShadowFindsConstantTimeAttackOnInsecureSimpleOoO)
{
    auto res = verif::runVerification(
        huntTask(proc::simpleOoOSpec(Defense::None),
                 Contract::ConstantTime));
    ASSERT_EQ(res.verdict, mc::Verdict::Attack);
    EXPECT_NE(res.attackReport.find("confirmed in simulation"),
              std::string::npos);
}

TEST(EndToEnd, ShadowProvesDelayFuturistic)
{
    auto res = verif::runVerification(
        proveTask(proc::simpleOoOSpec(Defense::DelayFuturistic),
                  Contract::Sandboxing));
    EXPECT_EQ(res.verdict, mc::Verdict::Proof)
        << verif::formatResult(res);
}

TEST(EndToEnd, ShadowProvesInOrderCore)
{
    auto res = verif::runVerification(
        proveTask(proc::inOrderSpec(), Contract::Sandboxing));
    EXPECT_EQ(res.verdict, mc::Verdict::Proof)
        << verif::formatResult(res);
}

TEST(EndToEnd, LeaveProvesInOrderButNotOoO)
{
    leave::LeaveOptions opts;
    opts.contract = Contract::Sandboxing;
    opts.timeoutSeconds = 300;

    auto in_order = leave::runLeave(proc::inOrderSpec(), opts);
    EXPECT_EQ(in_order.kind, leave::LeaveResult::Kind::Proof)
        << in_order.survivors << "/" << in_order.candidates;

    auto ooo = leave::runLeave(
        proc::simpleOoOSpec(Defense::DelaySpectre), opts);
    EXPECT_EQ(ooo.kind, leave::LeaveResult::Kind::Unknown)
        << "LEAVE's cycle-aligned encoding should not prove an OoO core";
}

TEST(EndToEnd, FuzzerFindsAttackOnInsecureCore)
{
    fuzz::FuzzOptions opts;
    opts.contract = Contract::Sandboxing;
    opts.timeoutSeconds = 60;
    opts.maxPrograms = 300000;
    bool found = false;
    uint64_t tried = 0, valid = 0;
    for (uint64_t seed = 1; seed <= 4 && !found; ++seed) {
        opts.seed = seed;
        auto res =
            fuzz::runFuzzer(proc::simpleOoOSpec(Defense::None), opts);
        found = res.attack.has_value();
        tried += res.programsTried;
        valid += res.programsValid;
    }
    EXPECT_TRUE(found) << tried << " programs tried";
    EXPECT_GT(valid, 0u);
}

TEST(EndToEnd, FuzzerFindsNothingOnDelayFuturistic)
{
    fuzz::FuzzOptions opts;
    opts.contract = Contract::Sandboxing;
    opts.timeoutSeconds = 10;
    opts.maxPrograms = 3000;
    auto res = fuzz::runFuzzer(
        proc::simpleOoOSpec(Defense::DelayFuturistic), opts);
    EXPECT_FALSE(res.attack.has_value());
}

TEST(EndToEnd, DrainCheckDelaysVerdictUntilContractCovered)
{
    // Without the instruction-inclusion (drain) check the assertion can
    // fire at the divergence itself, before the contract constraint has
    // examined the in-flight bound-to-commit instructions; the full
    // scheme must therefore report its (genuine) counterexample at a
    // strictly greater depth.
    auto task = huntTask(proc::simpleOoOSpec(Defense::None),
                         Contract::Sandboxing);
    auto full = verif::runVerification(task);
    task.enableDrainCheck = false;
    auto ablated = verif::runVerification(task);
    ASSERT_EQ(full.verdict, mc::Verdict::Attack);
    ASSERT_EQ(ablated.verdict, mc::Verdict::Attack);
    EXPECT_LT(ablated.depth, full.depth);
}

TEST(EndToEnd, BaselineFindsAttackButCannotProve)
{
    // Attack side: comparable to the shadow scheme (paper Section 7.1.2).
    auto hunt = huntTask(proc::simpleOoOSpec(Defense::None),
                         Contract::Sandboxing);
    hunt.scheme = verif::Scheme::Baseline;
    auto attack = verif::runVerification(hunt);
    EXPECT_EQ(attack.verdict, mc::Verdict::Attack);

    // Proof side: the four-machine product does not close within a
    // budget that is generous for the shadow scheme.
    auto prove = proveTask(proc::simpleOoOSpec(Defense::DelayFuturistic),
                           Contract::Sandboxing);
    prove.scheme = verif::Scheme::Baseline;
    prove.timeoutSeconds = 20;
    prove.maxDepth = 40;
    auto res = verif::runVerification(prove);
    EXPECT_NE(res.verdict, mc::Verdict::Proof);
    EXPECT_NE(res.verdict, mc::Verdict::Attack);
}

TEST(EndToEnd, FormatResultMentionsVerdictAndTime)
{
    verif::VerificationResult res;
    res.verdict = mc::Verdict::Proof;
    res.seconds = 1.5;
    res.detail = "192/194 invariants";
    std::string s = verif::formatResult(res);
    EXPECT_NE(s.find("PROOF"), std::string::npos);
    EXPECT_NE(s.find("1.50s"), std::string::npos);
    EXPECT_NE(s.find("invariants"), std::string::npos);
}

TEST(EndToEnd, SchemeNames)
{
    EXPECT_STREQ(verif::schemeName(verif::Scheme::ContractShadow),
                 "ContractShadow");
    EXPECT_STREQ(verif::schemeName(verif::Scheme::Baseline), "Baseline");
    EXPECT_STREQ(verif::schemeName(verif::Scheme::UpecLike), "UPEC-like");
    EXPECT_STREQ(verif::schemeName(verif::Scheme::Leave), "LEAVE-like");
    EXPECT_STREQ(verif::schemeName(verif::Scheme::Fuzz), "Fuzz");
}

} // namespace
} // namespace csl
