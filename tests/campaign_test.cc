// Campaign-supervisor tests: checked flag parsing, the subprocess
// primitive (rlimits must actually stop runaway workers), crash triage
// and the deterministic backoff schedule, the degradation ladder, the
// worker result channel, the durable manifest, and runCampaign
// end-to-end through the workerBody test seam - including the full
// CSL_FAULT-driven triage matrix (crash, hang, OOM, corrupt channel)
// and resume of a half-finished manifest.

#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "base/faultpoint.h"
#include "base/parse.h"
#include "base/subprocess.h"
#include "verif/campaign/scheduler.h"

// RLIMIT_AS shrinks the whole address space; the sanitizers reserve
// terabytes of shadow up front and abort (rather than returning null)
// when the allocator hits the cap, so the address-space tests only run
// in plain builds.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CSL_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define CSL_SANITIZED 1
#endif
#endif

namespace csl {
namespace {

using namespace verif::campaign;
using mc::Verdict;

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "campaign_test_" +
           std::to_string(getpid()) + "_" + name;
}

// --- Checked flag parsing (base/parse) ------------------------------------

TEST(Parse, IntAcceptsPlainAndHexAndSign)
{
    EXPECT_EQ(parseInt("42"), 42);
    EXPECT_EQ(parseInt("-7"), -7);
    EXPECT_EQ(parseInt("0x10"), 16);
    EXPECT_EQ(parseInt("0"), 0);
}

TEST(Parse, IntRejectsWhatAtoiSilentlyAccepts)
{
    // std::atoi("abc") == 0 and std::atoi("12x") == 12 - exactly the
    // failure modes the checked parser exists to close.
    EXPECT_FALSE(parseInt("abc").has_value());
    EXPECT_FALSE(parseInt("12x").has_value());
    EXPECT_FALSE(parseInt("").has_value());
    EXPECT_FALSE(parseInt(" 12").has_value());
    EXPECT_FALSE(parseInt("12 ").has_value());
    EXPECT_FALSE(parseInt("99999999999999999999999").has_value());
}

TEST(Parse, UnsignedRejectsNegativeInsteadOfWrapping)
{
    EXPECT_EQ(parseUnsigned("18446744073709551615"),
              UINT64_C(18446744073709551615));
    EXPECT_FALSE(parseUnsigned("-1").has_value());
    EXPECT_FALSE(parseUnsigned("1.5").has_value());
}

TEST(Parse, DoubleRequiresFiniteFullConsumption)
{
    EXPECT_DOUBLE_EQ(parseDouble("2.5").value(), 2.5);
    EXPECT_DOUBLE_EQ(parseDouble("-0.25").value(), -0.25);
    EXPECT_FALSE(parseDouble("1.5s").has_value());
    EXPECT_FALSE(parseDouble("inf").has_value());
    EXPECT_FALSE(parseDouble("nan").has_value());
    EXPECT_FALSE(parseDouble("").has_value());
}

// --- Backoff schedule ------------------------------------------------------

TEST(Backoff, DeterministicUnderFixedSeed)
{
    for (size_t cell = 0; cell < 4; ++cell)
        for (size_t attempt = 1; attempt <= 5; ++attempt)
            EXPECT_EQ(backoffMillis(500, 7, cell, attempt),
                      backoffMillis(500, 7, cell, attempt));
}

TEST(Backoff, GrowsExponentiallyWithBoundedJitter)
{
    const uint64_t base = 500;
    for (size_t attempt = 1; attempt <= 6; ++attempt) {
        uint64_t delay = backoffMillis(base, 1, 0, attempt);
        uint64_t floor = base << (attempt - 1);
        EXPECT_GE(delay, floor) << "attempt " << attempt;
        EXPECT_LT(delay, floor + base / 2) << "attempt " << attempt;
    }
    // The exponent saturates: attempt 100 must not shift into orbit.
    EXPECT_LT(backoffMillis(base, 1, 0, 100), (base << 6) + base);
}

TEST(Backoff, ZeroBaseMeansNoDelay)
{
    EXPECT_EQ(backoffMillis(0, 1, 0, 1), 0u);
    EXPECT_EQ(backoffMillis(0, 99, 5, 3), 0u);
}

TEST(Backoff, SiblingCellsDoNotRetryInLockstep)
{
    // Not all cells may share a jitter, or a whole campaign's retries
    // stampede at once.
    bool anyDiffer = false;
    uint64_t first = backoffMillis(1000, 1, 0, 1);
    for (size_t cell = 1; cell < 8; ++cell)
        if (backoffMillis(1000, 1, cell, 1) != first)
            anyDiffer = true;
    EXPECT_TRUE(anyDiffer);
}

// --- Triage classification -------------------------------------------------

SubprocessStatus
exitedWith(int code)
{
    SubprocessStatus s;
    s.exited = true;
    s.exitCode = code;
    return s;
}

SubprocessStatus
killedBy(int sig)
{
    SubprocessStatus s;
    s.signaled = true;
    s.termSignal = sig;
    return s;
}

TEST(Triage, ClassifiesTheWholeTaxonomy)
{
    EXPECT_EQ(classifyAttempt(exitedWith(0), false, true),
              FailureClass::CleanVerdict);
    EXPECT_EQ(classifyAttempt(killedBy(SIGKILL), true, false),
              FailureClass::WallTimeout);
    EXPECT_EQ(classifyAttempt(killedBy(SIGXCPU), false, false),
              FailureClass::CpuTimeout);
    EXPECT_EQ(classifyAttempt(exitedWith(kOomExitCode), false, false),
              FailureClass::Oom);
    EXPECT_EQ(classifyAttempt(killedBy(SIGSEGV), false, false),
              FailureClass::CrashSignal);
    EXPECT_EQ(classifyAttempt(killedBy(SIGKILL), false, false),
              FailureClass::CrashSignal);
    EXPECT_EQ(classifyAttempt(exitedWith(0), false, false),
              FailureClass::CorruptOutput);
}

TEST(Triage, OnlyCrashAndCorruptOutputAreTransient)
{
    EXPECT_TRUE(isTransient(FailureClass::CrashSignal));
    EXPECT_TRUE(isTransient(FailureClass::CorruptOutput));
    EXPECT_FALSE(isTransient(FailureClass::WallTimeout));
    EXPECT_FALSE(isTransient(FailureClass::CpuTimeout));
    EXPECT_FALSE(isTransient(FailureClass::Oom));
    EXPECT_FALSE(isTransient(FailureClass::CleanVerdict));
}

// --- Degradation ladder ----------------------------------------------------

TEST(Ladder, LevelsAreOrderedAndNamed)
{
    EXPECT_STREQ(degradeLevelName(0), "portfolio");
    EXPECT_STREQ(degradeLevelName(1), "bmc-only");
    EXPECT_STREQ(degradeLevelName(2), "light-passes");
    EXPECT_STREQ(degradeLevelName(3), "bounded");
    EXPECT_EQ(kMaxDegradeLevel, 3u);
}

TEST(Ladder, EachLevelComposesThePreviousRestrictions)
{
    verif::VerificationTask base;
    base.maxDepth = 24;
    verif::RunnerOptions bopts;
    bopts.houdiniThreads = 4;

    {
        verif::VerificationTask t = base;
        verif::RunnerOptions r = bopts;
        applyDegradation(0, t, r);
        EXPECT_TRUE(r.engines.empty()); // per-stage defaults untouched
        EXPECT_TRUE(t.tryProof);
        EXPECT_EQ(t.maxDepth, 24u);
    }
    {
        verif::VerificationTask t = base;
        verif::RunnerOptions r = bopts;
        applyDegradation(1, t, r);
        ASSERT_EQ(r.engines.size(), 1u);
        EXPECT_EQ(r.engines[0], mc::EngineKind::Bmc);
        EXPECT_EQ(r.houdiniThreads, 1u);
        EXPECT_TRUE(t.tryProof); // still tries to prove, just cheaper
    }
    {
        verif::VerificationTask t = base;
        verif::RunnerOptions r = bopts;
        applyDegradation(2, t, r);
        EXPECT_EQ(r.passes, "coi,dce");
        ASSERT_EQ(r.engines.size(), 1u); // level 1 carried over
    }
    {
        verif::VerificationTask t = base;
        verif::RunnerOptions r = bopts;
        applyDegradation(3, t, r);
        EXPECT_FALSE(t.tryProof);
        EXPECT_FALSE(t.autoStrengthen);
        EXPECT_EQ(t.maxDepth, 12u); // half of 24
        EXPECT_EQ(r.passes, "coi,dce");
    }
    {
        // The depth floor: tiny tasks do not degrade to depth 0.
        verif::VerificationTask t = base;
        t.maxDepth = 5;
        verif::RunnerOptions r = bopts;
        applyDegradation(3, t, r);
        EXPECT_EQ(t.maxDepth, 4u);
    }
}

// --- Subprocess primitive --------------------------------------------------

TEST(Subprocess, BodyOutputAndExitCodeComeBack)
{
    auto run = runSubprocess({}, 10, [](int fd) {
        const char msg[] = "hello from the worker";
        ssize_t ignored = write(fd, msg, sizeof(msg) - 1);
        (void)ignored;
        return 5;
    });
    ASSERT_TRUE(run.has_value());
    EXPECT_TRUE(run->status.exited);
    EXPECT_EQ(run->status.exitCode, 5);
    EXPECT_FALSE(run->wallExpired);
    EXPECT_EQ(run->channel, "hello from the worker");
}

TEST(Subprocess, WallCapKillsABlockedWorker)
{
    auto run = runSubprocess({}, 0.2, [](int) {
        for (;;)
            pause(); // burns no CPU: only the wall cap can end this
        return 0;
    });
    ASSERT_TRUE(run.has_value());
    EXPECT_TRUE(run->wallExpired);
    EXPECT_TRUE(run->status.signaled);
    EXPECT_EQ(classifyAttempt(run->status, run->wallExpired, false),
              FailureClass::WallTimeout);
}

TEST(Subprocess, CpuLimitKillsARunawaySpinLoop)
{
    // The rlimit must do the killing: the wall allowance is far larger
    // than the CPU cap, so if the worker survives past ~1s of spin the
    // cap did not take.
    SubprocessLimits limits;
    limits.cpuSeconds = 1;
    auto run = runSubprocess(limits, 30, [](int) {
        volatile uint64_t sink = 0;
        for (;;)
            sink = sink + 1;
        return 0;
    });
    ASSERT_TRUE(run.has_value());
    EXPECT_FALSE(run->wallExpired);
    ASSERT_TRUE(run->status.signaled);
    EXPECT_EQ(run->status.termSignal, SIGXCPU);
    EXPECT_GE(run->status.cpuSeconds, 0.5);
    EXPECT_LT(run->status.cpuSeconds, 5.0);
    EXPECT_EQ(classifyAttempt(run->status, run->wallExpired, false),
              FailureClass::CpuTimeout);
}

#if !defined(CSL_SANITIZED)
TEST(Subprocess, MemoryLimitTurnsAllocationIntoStructuredOom)
{
    SubprocessLimits limits;
    limits.memoryBytes = 64ull << 20;
    auto run = runSubprocess(limits, 10, [](int) {
        // malloc + a volatile readback, not new/delete: the optimizer
        // is allowed to elide an unobserved allocation pair entirely,
        // which would dodge the rlimit this test exists to exercise.
        size_t bytes = 256ull << 20;
        char *p = static_cast<char *>(std::malloc(bytes));
        if (!p)
            return kOomExitCode;
        // Touch every page so lazy overcommit cannot fake success.
        for (size_t i = 0; i < bytes; i += 4096)
            p[i] = char(i);
        volatile char keep = p[bytes - 1];
        (void)keep;
        std::free(p);
        return 0;
    });
    ASSERT_TRUE(run.has_value());
    ASSERT_TRUE(run->status.exited);
    EXPECT_EQ(run->status.exitCode, kOomExitCode);
    EXPECT_EQ(classifyAttempt(run->status, run->wallExpired, false),
              FailureClass::Oom);
}
#endif

// --- Worker result channel -------------------------------------------------

TEST(CellResultChannel, RoundTripsEveryField)
{
    CellResult in;
    in.verdict = Verdict::BoundedSafe;
    in.depth = 17;
    in.seconds = 3.25;
    in.conflicts = 12345;
    in.deepestSafeBound = 16;
    in.quarantinedWitnesses = 2;
    in.resumedFromJournal = true;
    in.winningEngine = "bmc";
    in.detail = "bounded safe to depth 16\nno attack";

    auto out = parseCellResult(encodeCellResult(in));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->verdict, Verdict::BoundedSafe);
    EXPECT_EQ(out->depth, 17u);
    EXPECT_DOUBLE_EQ(out->seconds, 3.25);
    EXPECT_EQ(out->conflicts, 12345u);
    EXPECT_EQ(out->deepestSafeBound, 16u);
    EXPECT_EQ(out->quarantinedWitnesses, 2u);
    EXPECT_TRUE(out->resumedFromJournal);
    EXPECT_EQ(out->winningEngine, "bmc");
    EXPECT_EQ(out->detail, "bounded safe to depth 16\nno attack");
}

TEST(CellResultChannel, EmptyStringsSurvive)
{
    CellResult in; // winner and detail empty
    auto out = parseCellResult(encodeCellResult(in));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->winningEngine, "");
    EXPECT_EQ(out->detail, "");
}

TEST(CellResultChannel, TruncatedOrGarbledChannelsAreRejected)
{
    CellResult in;
    in.verdict = Verdict::Proof;
    std::string whole = encodeCellResult(in);

    // Any prefix cut before the `end` terminator must fail to parse -
    // that is what turns a half-written pipe into CorruptOutput.
    EXPECT_FALSE(parseCellResult("").has_value());
    EXPECT_FALSE(parseCellResult("csl-cell-result 1\nverdict PR")
                     .has_value());
    EXPECT_FALSE(
        parseCellResult(whole.substr(0, whole.size() - 5)).has_value());
    EXPECT_FALSE(parseCellResult("verdict PROOF\nend\n").has_value());
    EXPECT_FALSE(parseCellResult("csl-cell-result 2\nverdict PROOF\nend\n")
                     .has_value());
    EXPECT_FALSE(
        parseCellResult("csl-cell-result 1\nverdict BOGUS\nend\n")
            .has_value());
    EXPECT_TRUE(parseCellResult(whole).has_value());
}

// --- Spec parsing ----------------------------------------------------------

const char kSpecText[] =
    "csl-campaign 1\n"
    "# Table 2, trimmed\n"
    "cell sodor       core=inorder scheme=shadow\n"
    "cell delay-proof core=simpleooo defense=delay_spectre depth=20\n"
    "cell simple-hunt core=simpleooo hunt=1 budget=60 engines=bmc\n";

TEST(Spec, ParsesCellsWithDefaultsAndOverrides)
{
    std::string error;
    auto spec = CampaignSpec::parse(kSpecText, &error);
    ASSERT_TRUE(spec.has_value()) << error;
    ASSERT_EQ(spec->cells.size(), 3u);
    EXPECT_FALSE(spec->fingerprint.empty());

    EXPECT_EQ(spec->cells[0].name, "sodor");
    EXPECT_EQ(spec->cells[0].task.core.kind, proc::CoreKind::InOrder);

    EXPECT_EQ(spec->cells[1].task.core.ooo.defense,
              defense::Defense::DelaySpectre);
    EXPECT_EQ(spec->cells[1].task.maxDepth, 20u);
    EXPECT_TRUE(spec->cells[1].task.tryProof);

    EXPECT_FALSE(spec->cells[2].task.tryProof);
    EXPECT_TRUE(spec->cells[2].task.assumeSecretsDiffer);
    EXPECT_DOUBLE_EQ(spec->cells[2].task.timeoutSeconds, 60);
    EXPECT_EQ(spec->cells[2].ropts.engines.size(), 1u);
}

TEST(Spec, FingerprintTracksTheText)
{
    auto a = CampaignSpec::parse(kSpecText, nullptr);
    auto b = CampaignSpec::parse(std::string(kSpecText) +
                                     "cell extra core=inorder\n",
                                 nullptr);
    ASSERT_TRUE(a && b);
    EXPECT_NE(a->fingerprint, b->fingerprint);
    auto again = CampaignSpec::parse(kSpecText, nullptr);
    EXPECT_EQ(a->fingerprint, again->fingerprint);
}

TEST(Spec, DiagnosesBadInputWithLineNumbers)
{
    std::string error;
    EXPECT_FALSE(CampaignSpec::parse("cell a core=inorder\n", &error));
    EXPECT_NE(error.find("header"), std::string::npos);

    EXPECT_FALSE(CampaignSpec::parse(
        "csl-campaign 1\ncell a core=nonsense\n", &error));
    EXPECT_NE(error.find("unknown core"), std::string::npos);
    EXPECT_NE(error.find("line 2"), std::string::npos);

    EXPECT_FALSE(CampaignSpec::parse(
        "csl-campaign 1\ncell a frobnicate=1\n", &error));
    EXPECT_NE(error.find("unknown key"), std::string::npos);

    EXPECT_FALSE(CampaignSpec::parse(
        "csl-campaign 1\ncell a core=inorder\ncell a core=inorder\n",
        &error));
    EXPECT_NE(error.find("duplicate cell"), std::string::npos);

    EXPECT_FALSE(CampaignSpec::parse(
        "csl-campaign 1\ncell a depth=3 depth=4\n", &error));
    EXPECT_NE(error.find("duplicate key"), std::string::npos);

    EXPECT_FALSE(CampaignSpec::parse(
        "csl-campaign 1\ncell a depth=abc\n", &error));
    EXPECT_FALSE(CampaignSpec::parse("csl-campaign 1\n", &error));
    EXPECT_FALSE(CampaignSpec::parse("csl-campaign 9\ncell a\n", &error));
}

// --- Manifest --------------------------------------------------------------

TEST(Manifest, SaveLoadRoundTrip)
{
    std::string path = tmpPath("manifest_roundtrip");
    CampaignManifest m;
    m.specFingerprint = "deadbeef01234567";
    m.cells.push_back({"alpha", "done", 3, 1, "PROOF", 20, 12.5, 40.25,
                       "crash-signal"});
    m.cells.push_back({"beta", "pending", 1, 0, "", 0, 0.5, 0.25, ""});
    ASSERT_TRUE(m.save(path));

    auto loaded = CampaignManifest::load(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->specFingerprint, "deadbeef01234567");
    ASSERT_EQ(loaded->cells.size(), 2u);
    EXPECT_EQ(loaded->cells[0].name, "alpha");
    EXPECT_EQ(loaded->cells[0].status, "done");
    EXPECT_EQ(loaded->cells[0].attempts, 3u);
    EXPECT_EQ(loaded->cells[0].degradeLevel, 1u);
    EXPECT_EQ(loaded->cells[0].verdict, "PROOF");
    EXPECT_EQ(loaded->cells[0].depth, 20u);
    EXPECT_EQ(loaded->cells[0].lastFailure, "crash-signal");
    EXPECT_EQ(loaded->cells[1].verdict, "");
    EXPECT_EQ(loaded->cells[1].lastFailure, "");
    EXPECT_TRUE(loaded->cells[0].finished());
    EXPECT_FALSE(loaded->cells[1].finished());
    std::remove(path.c_str());
}

TEST(Manifest, LoadRejectsMissingOrForeignFiles)
{
    EXPECT_FALSE(
        CampaignManifest::load(tmpPath("no_such_manifest")).has_value());
    std::string path = tmpPath("foreign_manifest");
    {
        std::ofstream out(path);
        out << "not a manifest\n";
    }
    EXPECT_FALSE(CampaignManifest::load(path).has_value());
    std::remove(path.c_str());
}

TEST(Manifest, WriteFaultSiteMakesSaveFail)
{
    std::string path = tmpPath("manifest_fault");
    CampaignManifest m;
    ManifestCell only;
    only.name = "x";
    m.cells.push_back(only);
    {
        fault::ScopedFault guard("campaign.manifest-write");
        EXPECT_FALSE(m.save(path));
    }
    EXPECT_TRUE(m.save(path));
    std::remove(path.c_str());
}

// --- runCampaign through the workerBody seam -------------------------------

/** A spec of @p n fast cells (the workerBody seam never runs the real
 * verification, but budgets still size the wall caps). */
CampaignSpec
fabricatedSpec(size_t n, double budget = 5)
{
    std::string text = "csl-campaign 1\n";
    for (size_t i = 0; i < n; ++i)
        text += "cell c" + std::to_string(i) +
                " core=simpleooo budget=" + std::to_string(budget) + "\n";
    auto spec = CampaignSpec::parse(text, nullptr);
    EXPECT_TRUE(spec.has_value());
    return *spec;
}

/** A workerBody writing a canned PROOF; touches a per-cell marker file
 * so tests can see (from the parent) which cells actually ran. */
CampaignOptions
fastOptions(const std::string &markerPrefix = "")
{
    CampaignOptions opts;
    opts.backoffBaseMs = 0; // no real sleeping in unit tests
    opts.workerBody = [markerPrefix](const CampaignCell &cell,
                                     size_t level, int fd) {
        if (!markerPrefix.empty()) {
            std::ofstream mark(markerPrefix + cell.name,
                               std::ios::app);
            mark << level << "\n";
        }
        CellResult r;
        r.verdict = Verdict::Proof;
        r.depth = 20;
        r.winningEngine = "bmc";
        std::string channel = encodeCellResult(r);
        size_t off = 0;
        while (off < channel.size()) {
            ssize_t n =
                write(fd, channel.data() + off, channel.size() - off);
            if (n <= 0)
                break;
            off += size_t(n);
        }
        return 0;
    };
    return opts;
}

TEST(Campaign, AllCellsSucceedFirstTry)
{
    fault::disarmAll();
    CampaignSpec spec = fabricatedSpec(3);
    CampaignReport report = runCampaign(spec, fastOptions());
    ASSERT_EQ(report.cells.size(), 3u);
    EXPECT_TRUE(report.complete());
    EXPECT_FALSE(report.interrupted);
    for (const CellReport &cell : report.cells) {
        EXPECT_EQ(cell.status, "done");
        EXPECT_EQ(cell.result.verdict, Verdict::Proof);
        EXPECT_EQ(cell.attempts, 1u);
        EXPECT_EQ(cell.degradeLevel, 0u);
        EXPECT_TRUE(cell.failures.empty());
    }
}

TEST(Campaign, ParallelSlotsStillReportEveryCell)
{
    fault::disarmAll();
    CampaignSpec spec = fabricatedSpec(5);
    CampaignOptions opts = fastOptions();
    opts.workers = 3;
    CampaignReport report = runCampaign(spec, opts);
    ASSERT_EQ(report.cells.size(), 5u);
    EXPECT_TRUE(report.complete());
}

/** The CSL_FAULT-driven triage matrix: arm one supervisor-side fault
 * site, run a small campaign, and check the affected cell recovers
 * exactly as its failure class dictates while the others are
 * untouched. */
struct TriageCase
{
    const char *site;
    const char *wantFailure;
    size_t wantLevel; // transient classes retry in place (level 0),
                      // resource classes degrade one rung
};

class CampaignTriageMatrix : public testing::TestWithParam<TriageCase>
{};

TEST_P(CampaignTriageMatrix, InjuredCellRecovers)
{
    const TriageCase &tc = GetParam();
    fault::disarmAll();
    CampaignSpec spec = fabricatedSpec(2, /*budget=*/0.05);
    CampaignOptions opts = fastOptions();
    opts.wallSlackSeconds = 1; // the hang case ends at ~1s, not 30s
    fault::ScopedFault guard(tc.site);
    CampaignReport report = runCampaign(spec, opts);
    fault::disarmAll();

    ASSERT_EQ(report.cells.size(), 2u);
    EXPECT_TRUE(report.complete())
        << "site " << tc.site << " lost a cell";

    // Exactly one cell took the injected hit (fire-once supervisor-side
    // accounting), and it still reached a verdict on the retry.
    size_t injured = 0;
    for (const CellReport &cell : report.cells) {
        EXPECT_EQ(cell.status, "done");
        if (cell.failures.empty()) {
            EXPECT_EQ(cell.attempts, 1u);
            continue;
        }
        ++injured;
        EXPECT_EQ(cell.attempts, 2u) << tc.site;
        EXPECT_EQ(cell.degradeLevel, tc.wantLevel) << tc.site;
        ASSERT_EQ(cell.failures.size(), 1u);
        EXPECT_NE(cell.failures[0].find(tc.wantFailure),
                  std::string::npos)
            << "got " << cell.failures[0];
    }
    EXPECT_EQ(injured, 1u) << tc.site;
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, CampaignTriageMatrix,
    testing::Values(
        TriageCase{"campaign.worker-crash", "crash-signal", 0},
        TriageCase{"campaign.corrupt-result", "corrupt-output", 0},
        TriageCase{"campaign.worker-oom", "oom", 1},
        TriageCase{"campaign.worker-hang", "wall-timeout", 1}),
    [](const testing::TestParamInfo<TriageCase> &info) {
        std::string name = info.param.site;
        for (char &c : name)
            if (c == '.' || c == '-')
                c = '_';
        return name;
    });

TEST(Campaign, LadderExhaustionFailsTheCellButNotTheCampaign)
{
    fault::disarmAll();
    CampaignSpec spec = fabricatedSpec(2);
    CampaignOptions opts;
    opts.backoffBaseMs = 0;
    opts.retriesPerLevel = 0; // every failure degrades immediately
    opts.workerBody = [](const CampaignCell &cell, size_t, int fd) {
        if (cell.name == "c1") {
            CellResult r;
            r.verdict = Verdict::Proof;
            std::string channel = encodeCellResult(r);
            ssize_t ignored =
                write(fd, channel.data(), channel.size());
            (void)ignored;
            return 0;
        }
        return 1; // exits cleanly but never writes: CorruptOutput
    };
    CampaignReport report = runCampaign(spec, opts);
    ASSERT_EQ(report.cells.size(), 2u);
    EXPECT_FALSE(report.complete());
    EXPECT_EQ(report.failedCells, 1u);

    const CellReport &bad = report.cells[0];
    EXPECT_EQ(bad.status, "failed");
    // One attempt per ladder level: 0,1,2,3.
    EXPECT_EQ(bad.attempts, kMaxDegradeLevel + 1);
    EXPECT_EQ(bad.degradeLevel, kMaxDegradeLevel);
    EXPECT_EQ(report.cells[1].status, "done");
}

TEST(Campaign, ResumeSkipsFinishedCellsAndKeepsTheirHistory)
{
    fault::disarmAll();
    std::string prefix = tmpPath("resume");
    std::string marker = prefix + ".ran.";
    CampaignSpec spec = fabricatedSpec(3);

    // A half-finished campaign: c0 done (3 attempts, level 1), c1
    // failed permanently, c2 unfinished mid-flight.
    CampaignManifest half;
    half.specFingerprint = spec.fingerprint;
    half.cells.push_back(
        {"c0", "done", 3, 1, "PROOF", 20, 9.5, 30.0, "crash-signal"});
    half.cells.push_back(
        {"c1", "failed", 5, 3, "", 0, 50.0, 200.0, "oom"});
    half.cells.push_back({"c2", "pending", 2, 2, "", 0, 1.0, 4.0, ""});
    ASSERT_TRUE(half.save(prefix + ".manifest"));

    CampaignOptions opts = fastOptions(marker);
    opts.statePrefix = prefix;
    opts.resume = true;
    CampaignReport report = runCampaign(spec, opts);

    ASSERT_EQ(report.cells.size(), 3u);
    // c0: adopted, not re-run, history intact.
    EXPECT_EQ(report.cells[0].status, "done");
    EXPECT_EQ(report.cells[0].attempts, 3u);
    EXPECT_EQ(report.cells[0].degradeLevel, 1u);
    EXPECT_EQ(report.cells[0].result.verdict, Verdict::Proof);
    EXPECT_FALSE(std::ifstream(marker + "c0").good());
    // c1: failed stays failed without another attempt.
    EXPECT_EQ(report.cells[1].status, "failed");
    EXPECT_EQ(report.cells[1].attempts, 5u);
    EXPECT_FALSE(std::ifstream(marker + "c1").good());
    // c2: re-queued at its recorded ladder position.
    EXPECT_EQ(report.cells[2].status, "done");
    EXPECT_EQ(report.cells[2].attempts, 3u); // 2 prior + 1 now
    {
        std::ifstream mark(marker + "c2");
        ASSERT_TRUE(mark.good());
        int level = -1;
        mark >> level;
        EXPECT_EQ(level, 2); // resumed at level 2, not reset to 0
    }

    // The updated manifest reflects the completed campaign.
    auto final_manifest = CampaignManifest::load(prefix + ".manifest");
    ASSERT_TRUE(final_manifest.has_value());
    EXPECT_EQ(final_manifest->find("c2")->status, "done");

    for (const char *name : {"c0", "c1", "c2"})
        std::remove((marker + name).c_str());
    std::remove((prefix + ".manifest").c_str());
}

TEST(Campaign, ResumeRejectsAManifestFromADifferentSpec)
{
    fault::disarmAll();
    std::string prefix = tmpPath("resume_foreign");
    std::string marker = prefix + ".ran.";
    CampaignSpec spec = fabricatedSpec(2);

    CampaignManifest foreign;
    foreign.specFingerprint = "0000000000000000"; // never matches
    foreign.cells.push_back({"c0", "done", 1, 0, "PROOF", 20, 1, 1, ""});
    foreign.cells.push_back({"c1", "done", 1, 0, "PROOF", 20, 1, 1, ""});
    ASSERT_TRUE(foreign.save(prefix + ".manifest"));

    CampaignOptions opts = fastOptions(marker);
    opts.statePrefix = prefix;
    opts.resume = true;
    CampaignReport report = runCampaign(spec, opts);

    // Foreign manifest ignored: both cells really ran.
    EXPECT_TRUE(report.complete());
    EXPECT_TRUE(std::ifstream(marker + "c0").good());
    EXPECT_TRUE(std::ifstream(marker + "c1").good());
    for (const char *name : {"c0", "c1"})
        std::remove((marker + name).c_str());
    std::remove((prefix + ".manifest").c_str());
}

TEST(Campaign, ReportJsonCarriesTheAccounting)
{
    fault::disarmAll();
    CampaignSpec spec = fabricatedSpec(1);
    CampaignReport report = runCampaign(spec, fastOptions());
    std::string json = reportJson(report);
    EXPECT_NE(json.find("\"name\":\"c0\""), std::string::npos);
    EXPECT_NE(json.find("\"status\":\"done\""), std::string::npos);
    EXPECT_NE(json.find("\"verdict\":\"PROOF\""), std::string::npos);
    EXPECT_NE(json.find("\"attempts\":1"), std::string::npos);
    EXPECT_NE(json.find("\"degradeLevelName\":\"portfolio\""),
              std::string::npos);
    EXPECT_NE(json.find("\"failedCells\":0"), std::string::npos);
}

} // namespace
} // namespace csl
