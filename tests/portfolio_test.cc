// Tests for the uniform Engine interface and the concurrent
// first-winner portfolio: thread-safe solver interruption, FactBoard
// monotone fact sharing, cancellation races, verdict determinism, and
// the runner/journal plumbing for explicit engine sets.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "base/budget.h"
#include "mc/engine.h"
#include "mc/portfolio.h"
#include "mc/trace.h"
#include "proc/presets.h"
#include "rtl/builder.h"
#include "sat/solver.h"
#include "verif/journal.h"
#include "verif/runner.h"

namespace csl {
namespace {

using mc::EngineKind;
using mc::Verdict;
using rtl::Builder;
using rtl::Circuit;
using rtl::Sig;

// A counter that asserts it never reaches `target` (same harness as
// mc_test.cc: attack at cycle `target` when reachable).
void
buildCounter(Circuit &circuit, int width, uint64_t target,
             uint64_t step = 1)
{
    Builder b(circuit);
    Sig c = b.reg("c", width, 0);
    b.connect(c, b.addConst(c, step));
    b.assertAlways(b.ne(c, b.lit(target, width)), "c_ne_target");
    b.finish();
}

// --- Engine-set parsing ---------------------------------------------------

TEST(EngineKind, ParseAndName)
{
    EXPECT_EQ(mc::parseEngineKind("bmc"), EngineKind::Bmc);
    EXPECT_EQ(mc::parseEngineKind("kind"), EngineKind::KInduction);
    EXPECT_EQ(mc::parseEngineKind("kinduction"), EngineKind::KInduction);
    EXPECT_EQ(mc::parseEngineKind("k-induction"), EngineKind::KInduction);
    EXPECT_EQ(mc::parseEngineKind("pdr"), EngineKind::Pdr);
    EXPECT_EQ(mc::parseEngineKind("exh"), EngineKind::Exhaustive);
    EXPECT_EQ(mc::parseEngineKind("exhaustive"), EngineKind::Exhaustive);
    EXPECT_FALSE(mc::parseEngineKind("jaspergold").has_value());

    EXPECT_STREQ(mc::engineKindName(EngineKind::Bmc), "bmc");
    EXPECT_STREQ(mc::engineKindName(EngineKind::KInduction), "kind");
    EXPECT_STREQ(mc::engineKindName(EngineKind::Pdr), "pdr");
    EXPECT_STREQ(mc::engineKindName(EngineKind::Exhaustive), "exh");
}

TEST(EngineKind, ParseListRoundTrip)
{
    auto kinds = mc::parseEngineList("bmc,kind,pdr");
    ASSERT_TRUE(kinds.has_value());
    ASSERT_EQ(kinds->size(), 3u);
    EXPECT_EQ(mc::engineListName(*kinds), "bmc,kind,pdr");

    EXPECT_FALSE(mc::parseEngineList("bmc,,kind").has_value());
    EXPECT_FALSE(mc::parseEngineList("bmc,nope").has_value());
    auto empty = mc::parseEngineList("");
    ASSERT_TRUE(empty.has_value());
    EXPECT_TRUE(empty->empty());
}

// --- Thread-safe solver interruption --------------------------------------

/** Pigeonhole principle PHP(pigeons, holes): unsat and exponentially
 * hard for CDCL when pigeons = holes + 1 - keeps solve() busy long
 * enough for a cross-thread interrupt to land mid-search. */
void
buildPigeonhole(sat::Solver &s, int pigeons, int holes)
{
    std::vector<std::vector<sat::Var>> x(pigeons);
    for (int p = 0; p < pigeons; ++p)
        for (int h = 0; h < holes; ++h)
            x[p].push_back(s.newVar());
    for (int p = 0; p < pigeons; ++p) {
        std::vector<sat::Lit> clause;
        for (int h = 0; h < holes; ++h)
            clause.push_back(sat::mkLit(x[p][h]));
        s.addClause(clause);
    }
    for (int h = 0; h < holes; ++h)
        for (int p1 = 0; p1 < pigeons; ++p1)
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                s.addClause(sat::mkLit(x[p1][h], true),
                            sat::mkLit(x[p2][h], true));
}

TEST(SolverInterrupt, LatchedRequestShortCircuitsSolve)
{
    sat::Solver s;
    sat::Var a = s.newVar();
    s.addClause(sat::mkLit(a));
    s.requestInterrupt();
    EXPECT_EQ(s.solve(), sat::Status::Unknown);
    // The request latches across solves until cleared.
    EXPECT_EQ(s.solve(), sat::Status::Unknown);
    s.clearInterrupt();
    EXPECT_EQ(s.solve(), sat::Status::Sat);
}

TEST(SolverInterrupt, CrossThreadInterruptStopsAHardSolve)
{
    sat::Solver s;
    buildPigeonhole(s, 12, 11);
    std::thread killer([&s] {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        s.requestInterrupt();
    });
    sat::Status status = s.solve();
    killer.join();
    // PHP(12,11) takes far longer than 100ms to refute; the interrupt
    // must surface as Unknown, never a wrong Sat/Unsat.
    EXPECT_EQ(status, sat::Status::Unknown);
}

// --- FactBoard ------------------------------------------------------------

TEST(FactBoard, SafeBoundIsMonotoneMax)
{
    mc::FactBoard board;
    EXPECT_EQ(board.safeBound(), 0u);
    board.publishSafeBound(5);
    board.publishSafeBound(3); // stale publish must not regress
    EXPECT_EQ(board.safeBound(), 5u);
    board.publishSafeBound(9);
    EXPECT_EQ(board.safeBound(), 9u);
}

TEST(FactBoard, InvariantsAreASortedUnion)
{
    mc::FactBoard board;
    board.publishInvariants({7, 3});
    board.publishInvariants({3, 11});
    std::vector<rtl::NetId> inv = board.invariants();
    ASSERT_EQ(inv.size(), 3u);
    EXPECT_EQ(inv[0], 3);
    EXPECT_EQ(inv[1], 7);
    EXPECT_EQ(inv[2], 11);

    EXPECT_EQ(board.imports(), 0u);
    board.countImport();
    board.countImport();
    EXPECT_EQ(board.imports(), 2u);
}

TEST(FactBoard, PublishedBoundIsImportedByEngines)
{
    // A pre-published safe bound must reach a BMC engine through the
    // board (the same path a sibling's mid-run publish takes) and be
    // counted as an import; the verdict must stay exact.
    Circuit circuit;
    buildCounter(circuit, 4, 7);
    mc::EngineConfig config;
    config.maxDepth = 20;
    mc::FactBoard board;
    board.publishSafeBound(6); // frames 0..5 genuinely bad-free
    Budget budget(60.0);
    auto engine = mc::makeEngine(EngineKind::Bmc, circuit, config);
    engine->start(&board, &budget);
    while (!engine->step()) {
    }
    mc::EngineResult r = engine->takeResult();
    EXPECT_EQ(r.verdict, Verdict::Attack);
    EXPECT_EQ(r.depth, 7u);
    EXPECT_GE(r.importedFacts, 1u);
    ASSERT_TRUE(r.trace.has_value());
    EXPECT_TRUE(mc::replayTrace(circuit, *r.trace).badReached);
}

TEST(FactBoard, BmcBoundShortensKInductionBaseCase)
{
    // The portfolio's headline interaction: a safe bound published by a
    // (simulated) BMC sibling lets k-induction skip re-proving base
    // frames. The k-induction engine must import it and still conclude.
    Circuit circuit;
    buildCounter(circuit, 4, 3, /*step=*/2); // unreachable: proof
    mc::EngineConfig config;
    config.maxDepth = 16;
    mc::FactBoard board;
    board.publishSafeBound(8);
    Budget budget(60.0);
    auto engine = mc::makeEngine(EngineKind::KInduction, circuit, config);
    engine->start(&board, &budget);
    while (!engine->step()) {
    }
    mc::EngineResult r = engine->takeResult();
    EXPECT_EQ(r.verdict, Verdict::Proof);
    EXPECT_GE(r.importedFacts, 1u);
}

// --- Engine adapters through the portfolio --------------------------------

TEST(Portfolio, SingleEngineSetsMatchOnAttackCircuit)
{
    Circuit circuit;
    buildCounter(circuit, 4, 6);
    for (EngineKind kind :
         {EngineKind::Bmc, EngineKind::KInduction, EngineKind::Pdr,
          EngineKind::Exhaustive}) {
        mc::CheckOptions opts;
        opts.maxDepth = 20;
        opts.engines = {kind};
        mc::CheckResult r = mc::checkProperty(circuit, opts);
        EXPECT_EQ(r.verdict, Verdict::Attack) << mc::engineKindName(kind);
        EXPECT_EQ(r.winner, mc::engineKindName(kind));
        ASSERT_TRUE(r.trace.has_value()) << mc::engineKindName(kind);
        mc::ReplayResult replay = mc::replayTrace(circuit, *r.trace);
        EXPECT_TRUE(replay.badReached) << mc::engineKindName(kind);
        EXPECT_TRUE(replay.constraintsHeld) << mc::engineKindName(kind);
        EXPECT_EQ(r.trace->length, r.depth + 1)
            << mc::engineKindName(kind);
    }
}

TEST(Portfolio, SingleEngineSetsMatchOnProofCircuit)
{
    Circuit circuit;
    buildCounter(circuit, 4, 3, /*step=*/2); // even counter, odd target
    for (EngineKind kind : {EngineKind::KInduction, EngineKind::Pdr,
                            EngineKind::Exhaustive}) {
        mc::CheckOptions opts;
        opts.maxDepth = 20;
        opts.engines = {kind};
        mc::CheckResult r = mc::checkProperty(circuit, opts);
        EXPECT_EQ(r.verdict, Verdict::Proof) << mc::engineKindName(kind);
        EXPECT_EQ(r.winner, mc::engineKindName(kind));
    }
    // BMC alone cannot prove: bounded-safe at the depth limit.
    mc::CheckOptions opts;
    opts.maxDepth = 20;
    opts.engines = {EngineKind::Bmc};
    mc::CheckResult r = mc::checkProperty(circuit, opts);
    EXPECT_EQ(r.verdict, Verdict::BoundedSafe);
    EXPECT_GE(r.deepestSafeBound, 20u);
}

TEST(Portfolio, FirstWinnerCancelsSiblings)
{
    // Full four-engine race on an attack circuit. Exactly one engine is
    // marked winner, the adopted verdict is its conclusive one, and the
    // first winner's cancel() must have stopped the others (they either
    // concluded on their own or report a non-conclusive timeout - both
    // fine - but the call must return promptly either way).
    Circuit circuit;
    buildCounter(circuit, 4, 6);
    mc::CheckOptions opts;
    opts.maxDepth = 20;
    opts.timeoutSeconds = 120;
    opts.engines = {EngineKind::Bmc, EngineKind::KInduction,
                    EngineKind::Pdr, EngineKind::Exhaustive};
    mc::CheckResult r = mc::checkProperty(circuit, opts);
    EXPECT_EQ(r.verdict, Verdict::Attack);
    ASSERT_TRUE(r.trace.has_value());
    EXPECT_TRUE(mc::replayTrace(circuit, *r.trace).badReached);
    ASSERT_EQ(r.engines.size(), 4u);
    size_t winners = 0;
    for (const mc::EngineOutcome &eo : r.engines) {
        if (eo.winner) {
            ++winners;
            EXPECT_EQ(mc::engineKindName(eo.kind), r.winner);
            EXPECT_TRUE(eo.verdict == Verdict::Attack);
        }
    }
    EXPECT_EQ(winners, 1u);
    EXPECT_FALSE(r.winner.empty());
}

TEST(Portfolio, RepeatedRunsAreVerdictDeterministic)
{
    // Identical options => identical verdict, run after run, despite
    // the scheduling race deciding the winner (satellite: determinism).
    Circuit attack_circuit, proof_circuit;
    buildCounter(attack_circuit, 4, 6);
    buildCounter(proof_circuit, 4, 3, /*step=*/2);
    mc::CheckOptions opts;
    opts.maxDepth = 20;
    opts.engines = {EngineKind::Bmc, EngineKind::KInduction,
                    EngineKind::Pdr};
    for (int run = 0; run < 4; ++run) {
        mc::CheckResult a = mc::checkProperty(attack_circuit, opts);
        EXPECT_EQ(a.verdict, Verdict::Attack) << "run " << run;
        mc::CheckResult p = mc::checkProperty(proof_circuit, opts);
        EXPECT_EQ(p.verdict, Verdict::Proof) << "run " << run;
    }
}

TEST(Portfolio, DefaultSetKeepsAttackDepthMinimal)
{
    // With no explicit engine set the facade must stay depth-exact
    // (cross-check oracle contract): the default engines all report
    // minimal-depth counterexamples.
    Circuit circuit;
    buildCounter(circuit, 4, 6);
    mc::CheckResult r = mc::checkProperty(circuit, {.maxDepth = 20});
    EXPECT_EQ(r.verdict, Verdict::Attack);
    EXPECT_EQ(r.depth, 6u);
}

TEST(Portfolio, CancelledEnginesStillSalvagePartialFacts)
{
    // A portfolio whose engines cannot conclude within the budget must
    // synthesize the pooled bound instead of dropping it. PDR is left
    // out: it cracks this parity property via clause generalization.
    Circuit circuit;
    Builder b(circuit);
    Sig c = b.reg("c", 24, 0);
    b.connect(c, b.addConst(c, 2));
    b.assertAlways(b.ne(c, b.lit(0xffffff, 24)), "never_odd");
    b.finish();
    mc::CheckOptions opts;
    opts.maxDepth = 100000;
    opts.timeoutSeconds = 0.3;
    opts.engines = {EngineKind::Bmc, EngineKind::KInduction};
    mc::CheckResult r = mc::checkProperty(circuit, opts);
    // Depending on machine speed the run either times out mid-hunt or
    // (very fast machines) bounds out; both must carry the pooled bound.
    ASSERT_TRUE(r.verdict == Verdict::Timeout ||
                r.verdict == Verdict::BoundedSafe)
        << mc::verdictName(r.verdict);
    EXPECT_GT(r.deepestSafeBound, 0u);
    EXPECT_EQ(r.depth, r.deepestSafeBound);
    EXPECT_TRUE(r.winner.empty());
}

// --- Runner + journal plumbing -------------------------------------------

TEST(RunnerEngines, ExplicitSetIsUsedRecordedAndReadopted)
{
    std::string path = testing::TempDir() + "portfolio_engines.journal";
    std::remove(path.c_str());

    verif::VerificationTask task;
    task.core = proc::inOrderSpec();
    task.contract = contract::Contract::Sandboxing;
    task.maxDepth = 20;
    task.timeoutSeconds = 120;

    verif::RunnerOptions ropts;
    ropts.journalPath = path;
    ropts.engines = {EngineKind::KInduction};
    verif::RunnerResult rr = verif::runResilientVerification(task, ropts);
    ASSERT_EQ(rr.result.verdict, Verdict::Proof);
    EXPECT_EQ(rr.winningEngine, "kind");

    auto journal = verif::Journal::load(path);
    ASSERT_TRUE(journal.has_value());
    EXPECT_EQ(journal->param("engines"), "kind");
    EXPECT_EQ(journal->winningEngine, "kind");
    bool solver_stage_seen = false;
    for (const verif::Journal::Stage &stage : journal->stages)
        if (stage.name == "kinduction") {
            solver_stage_seen = true;
            EXPECT_EQ(stage.winner, "kind");
        }
    EXPECT_TRUE(solver_stage_seen);

    // Resume with an empty set: the journal's engine set is re-adopted
    // and the verdict reproduced.
    verif::RunnerOptions resume_opts;
    resume_opts.journalPath = path;
    resume_opts.resume = true;
    verif::RunnerResult resumed =
        verif::runResilientVerification(task, resume_opts);
    EXPECT_TRUE(resumed.resumed);
    EXPECT_EQ(resumed.result.verdict, Verdict::Proof);
    EXPECT_EQ(resumed.winningEngine, "kind");
    std::remove(path.c_str());
}

TEST(Journal, WinnerAndImportsSurviveRoundTrip)
{
    verif::Journal journal;
    journal.fingerprint = "cafe";
    journal.winningEngine = "pdr";
    journal.importedFacts = 3;
    journal.stages.push_back({"kinduction", "PROOF", 5, 1.25, "kind"});
    journal.stages.push_back({"bmc", "TIMEOUT", 9, 0.5, ""});

    std::string path = testing::TempDir() + "portfolio_journal.txt";
    ASSERT_TRUE(journal.save(path));
    auto loaded = verif::Journal::load(path);
    std::remove(path.c_str());
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->winningEngine, "pdr");
    EXPECT_EQ(loaded->importedFacts, 3u);
    ASSERT_EQ(loaded->stages.size(), 2u);
    EXPECT_EQ(loaded->stages[0].winner, "kind");
    EXPECT_EQ(loaded->stages[1].winner, "");
}

// --- Parallel Houdini prune ----------------------------------------------

TEST(HoudiniThreads, ShardedPruneMatchesSequential)
{
    // Candidate family with inductive and non-inductive members; the
    // sharded prune must converge to exactly the sequential survivors.
    Circuit circuit;
    Builder b(circuit);
    Sig c = b.reg("c", 4, 0);
    Sig d = b.reg("d", 4, 0);
    b.connect(c, b.incMod(c, 8));
    b.connect(d, b.incMod(d, 8));
    std::vector<rtl::NetId> candidates;
    candidates.push_back(b.named(b.ult(c, b.lit(8, 4)), "c_lt_8").id);
    candidates.push_back(b.named(b.eq(c, b.lit(3, 4)), "c_is_3").id);
    candidates.push_back(b.named(b.ult(d, b.lit(8, 4)), "d_lt_8").id);
    candidates.push_back(b.named(b.eq(c, d), "c_eq_d").id);
    candidates.push_back(b.named(b.ult(c, b.lit(3, 4)), "c_lt_3").id);
    candidates.push_back(b.named(b.ule(d, b.lit(9, 4)), "d_le_9").id);
    b.assertAlways(b.one(), "true_prop");
    b.finish();

    auto sequential = mc::proveInductiveInvariants(circuit, candidates);
    ASSERT_TRUE(sequential.has_value());
    auto sharded = mc::proveInductiveInvariants(
        circuit, candidates, nullptr, /*window=*/1, nullptr,
        /*threads=*/3);
    ASSERT_TRUE(sharded.has_value());
    std::vector<rtl::NetId> seq = *sequential, par = *sharded;
    std::sort(seq.begin(), seq.end());
    std::sort(par.begin(), par.end());
    EXPECT_EQ(seq, par);
}

} // namespace
} // namespace csl
