// Unit tests for the RTL IR and Builder DSL.

#include <gtest/gtest.h>

#include <sstream>

#include "rtl/builder.h"
#include "rtl/circuit.h"
#include "rtl/passes.h"

namespace csl::rtl {
namespace {

TEST(Builder, ConstantFoldingArithmetic)
{
    Circuit circuit;
    Builder b(circuit);
    Sig s = b.add(b.lit(3, 4), b.lit(5, 4));
    EXPECT_EQ(circuit.net(s.id).op, Op::Const);
    EXPECT_EQ(circuit.net(s.id).imm, 8u);

    Sig wrap = b.add(b.lit(12, 4), b.lit(7, 4));
    EXPECT_EQ(circuit.net(wrap.id).imm, 3u); // mod 16

    Sig m = b.mul(b.lit(3, 4), b.lit(6, 4));
    EXPECT_EQ(circuit.net(m.id).imm, 2u); // 18 mod 16

    Sig d = b.sub(b.lit(2, 4), b.lit(5, 4));
    EXPECT_EQ(circuit.net(d.id).imm, 13u);
}

TEST(Builder, ConstantFoldingBoolean)
{
    Circuit circuit;
    Builder b(circuit);
    Sig x = b.input("x", 4);
    EXPECT_EQ(b.andOf(x, b.lit(0, 4)).id, b.lit(0, 4).id);
    EXPECT_EQ(b.andOf(x, b.lit(0xf, 4)).id, x.id);
    EXPECT_EQ(b.orOf(x, b.lit(0, 4)).id, x.id);
    EXPECT_EQ(b.xorOf(x, x).id, b.lit(0, 4).id);
    EXPECT_EQ(b.notOf(b.notOf(x)).id, x.id);
    EXPECT_EQ(b.eq(x, x).id, b.one().id);
    EXPECT_EQ(b.ult(x, x).id, b.zero().id);
}

TEST(Builder, MuxFolding)
{
    Circuit circuit;
    Builder b(circuit);
    Sig x = b.input("x", 4);
    Sig y = b.input("y", 4);
    EXPECT_EQ(b.mux(b.one(), x, y).id, x.id);
    EXPECT_EQ(b.mux(b.zero(), x, y).id, y.id);
    EXPECT_EQ(b.mux(b.input("s", 1), x, x).id, x.id);
}

TEST(Builder, HashConsing)
{
    Circuit circuit;
    Builder b(circuit);
    Sig x = b.input("x", 4);
    Sig y = b.input("y", 4);
    Sig a1 = b.add(x, y);
    Sig a2 = b.add(y, x); // commutative canonicalization
    EXPECT_EQ(a1.id, a2.id);
    EXPECT_EQ(b.lit(7, 4).id, b.lit(7, 4).id);
}

TEST(Builder, SliceOfConcatSimplifies)
{
    Circuit circuit;
    Builder b(circuit);
    Sig hi = b.input("hi", 4);
    Sig lo = b.input("lo", 4);
    Sig cat = b.concat(hi, lo);
    EXPECT_EQ(b.slice(cat, 0, 4).id, lo.id);
    EXPECT_EQ(b.slice(cat, 4, 4).id, hi.id);
}

TEST(Builder, ResizeZeroExtends)
{
    Circuit circuit;
    Builder b(circuit);
    Sig v = b.lit(5, 3);
    Sig wide = b.resize(v, 6);
    EXPECT_EQ(circuit.net(wide.id).op, Op::Const);
    EXPECT_EQ(circuit.net(wide.id).imm, 5u);
    EXPECT_EQ(wide.width, 6);
    Sig narrow = b.resize(b.lit(0b1101, 4), 2);
    EXPECT_EQ(circuit.net(narrow.id).imm, 0b01u);
}

TEST(Builder, IncModConstants)
{
    Circuit circuit;
    Builder b(circuit);
    EXPECT_EQ(circuit.net(b.incMod(b.lit(2, 3), 6).id).imm, 3u);
    EXPECT_EQ(circuit.net(b.incMod(b.lit(5, 3), 6).id).imm, 0u);
    EXPECT_EQ(circuit.net(b.incMod(b.lit(7, 3), 8).id).imm, 0u);
}

TEST(Builder, AndAllOrAllEmpty)
{
    Circuit circuit;
    Builder b(circuit);
    EXPECT_EQ(b.andAll({}).id, b.one().id);
    EXPECT_EQ(b.orAll({}).id, b.zero().id);
}

TEST(Circuit, RegistersMustBeConnected)
{
    Circuit circuit;
    Builder b(circuit);
    b.reg("r", 4, 0);
    EXPECT_DEATH(b.finish(), "no next-state net");
}

TEST(Circuit, OperandMustPrecede)
{
    Circuit circuit;
    Net bad;
    bad.op = Op::Not;
    bad.width = 1;
    bad.a = 5; // does not exist yet
    EXPECT_DEATH(circuit.addNet(bad), "earlier net");
}

TEST(Circuit, NamesRoundTrip)
{
    Circuit circuit;
    Builder b(circuit);
    Sig x = b.named(b.input("raw", 2), "pretty");
    EXPECT_EQ(circuit.name(x.id), "pretty");
    EXPECT_EQ(circuit.findByName("pretty"), x.id);
    EXPECT_EQ(circuit.findByName("absent"), kNoNet);
}

TEST(Circuit, StatsCountStateBits)
{
    Circuit circuit;
    Builder b(circuit);
    Sig r1 = b.reg("r1", 4, 0);
    Sig r2 = b.reg("r2", 8, 0);
    b.connect(r1, r1);
    b.connect(r2, r2);
    b.input("in", 3);
    b.finish();
    CircuitStats s = circuit.stats();
    EXPECT_EQ(s.registers, 2u);
    EXPECT_EQ(s.stateBits, 12u);
    EXPECT_EQ(s.inputs, 1u);
    EXPECT_EQ(s.inputBits, 3u);
}

TEST(Circuit, ConeOfInfluenceExcludesUnrelatedLogic)
{
    Circuit circuit;
    Builder b(circuit);
    Sig used = b.reg("used", 4, 0);
    b.connect(used, b.addConst(used, 1));
    Sig unused = b.reg("unused", 4, 0);
    b.connect(unused, b.addConst(unused, 3));
    b.assertAlways(b.ne(used, b.lit(9, 4)), "prop");
    b.finish();
    auto cone = circuit.coneOfInfluence();
    EXPECT_TRUE(cone[used.id]);
    EXPECT_FALSE(cone[unused.id]);
}

TEST(Memory, ReadBackAfterWriteIsNextCycle)
{
    // Structural check only: memory lowering produces per-word registers.
    Circuit circuit;
    Builder b(circuit);
    MemArray &mem = b.memory("m", 4, 8, false);
    EXPECT_EQ(mem.depth(), 4u);
    EXPECT_EQ(mem.width(), 8);
    Sig addr = b.input("addr", 2);
    Sig data = b.input("data", 8);
    mem.write(b.input("we", 1), addr, data);
    Sig rd = mem.read(addr);
    EXPECT_EQ(rd.width, 8);
    b.finish();
    EXPECT_EQ(circuit.registers().size(), 4u);
}

TEST(Passes, SummarizeMentionsCounts)
{
    Circuit circuit;
    Builder b(circuit);
    Sig r = b.reg("r", 2, 0);
    b.connect(r, b.addConst(r, 1));
    b.assertAlways(b.ne(r, b.lit(3, 2)));
    b.finish();
    std::string s = summarize(circuit);
    EXPECT_NE(s.find("regs=1"), std::string::npos);
    EXPECT_NE(s.find("bads=1"), std::string::npos);
}

TEST(Passes, DumpContainsNames)
{
    Circuit circuit;
    Builder b(circuit);
    Sig r = b.reg("counter", 2, 0);
    b.connect(r, b.addConst(r, 1));
    b.finish();
    std::ostringstream oss;
    dumpCircuit(circuit, oss);
    EXPECT_NE(oss.str().find("counter"), std::string::npos);
}

} // namespace
} // namespace csl::rtl
