// Tests for the Tseitin encoder: word operations are checked against
// native arithmetic via SAT models, and whole circuits are cross-checked
// against the interpreter (CNF model == simulation) on random inputs.

#include <gtest/gtest.h>

#include <random>

#include "base/bits.h"
#include "bitblast/cnf_builder.h"
#include "bitblast/unroller.h"
#include "rtl/builder.h"
#include "sim/simulator.h"

namespace csl::bitblast {
namespace {

using sat::Lit;
using sat::Solver;
using sat::Status;

// Force a word to a concrete value with unit clauses.
void
fixWord(CnfBuilder &cnf, const Word &w, uint64_t value)
{
    for (size_t i = 0; i < w.size(); ++i)
        cnf.assertLit(bitAt(value, i) ? w[i] : ~w[i]);
}

class WordOps : public ::testing::TestWithParam<int>
{};

TEST_P(WordOps, ArithmeticMatchesNative)
{
    const int width = GetParam();
    std::mt19937_64 rng(99 + width);
    for (int round = 0; round < 20; ++round) {
        uint64_t va = truncBits(rng(), width);
        uint64_t vb = truncBits(rng(), width);

        Solver solver;
        CnfBuilder cnf(solver);
        Word a = cnf.freshWord(width);
        Word b = cnf.freshWord(width);
        fixWord(cnf, a, va);
        fixWord(cnf, b, vb);
        Word sum = cnf.addWord(a, b);
        Word diff = cnf.subWord(a, b);
        Word prod = cnf.mulWord(a, b);
        Lit eq = cnf.eqWord(a, b);
        Lit lt = cnf.ultWord(a, b);
        Word muxed = cnf.muxWord(cnf.litConst(va & 1), a, b);

        ASSERT_EQ(solver.solve(), Status::Sat);
        EXPECT_EQ(cnf.wordValue(sum), truncBits(va + vb, width));
        EXPECT_EQ(cnf.wordValue(diff), truncBits(va - vb, width));
        EXPECT_EQ(cnf.wordValue(prod), truncBits(va * vb, width));
        EXPECT_EQ(solver.modelValue(eq), va == vb);
        EXPECT_EQ(solver.modelValue(lt), va < vb);
        EXPECT_EQ(cnf.wordValue(muxed), (va & 1) ? va : vb);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, WordOps, ::testing::Values(1, 2, 4, 5, 8));

TEST(CnfBuilder, GateConstFolding)
{
    Solver solver;
    CnfBuilder cnf(solver);
    Lit x = cnf.fresh();
    EXPECT_EQ(cnf.andLit(x, cnf.trueLit()), x);
    EXPECT_EQ(cnf.andLit(x, cnf.falseLit()), cnf.falseLit());
    EXPECT_EQ(cnf.andLit(x, ~x), cnf.falseLit());
    EXPECT_EQ(cnf.orLit(x, cnf.falseLit()), x);
    EXPECT_EQ(cnf.xorLit(x, cnf.falseLit()), x);
    EXPECT_EQ(cnf.xorLit(x, cnf.trueLit()), ~x);
    EXPECT_EQ(cnf.muxLit(cnf.trueLit(), x, ~x), x);
}

TEST(CnfBuilder, XorGateSemantics)
{
    for (int va = 0; va <= 1; ++va) {
        for (int vb = 0; vb <= 1; ++vb) {
            Solver solver;
            CnfBuilder cnf(solver);
            Lit a = cnf.fresh(), b = cnf.fresh();
            Lit y = cnf.xorLit(a, b);
            cnf.assertLit(va ? a : ~a);
            cnf.assertLit(vb ? b : ~b);
            ASSERT_EQ(solver.solve(), Status::Sat);
            EXPECT_EQ(solver.modelValue(y), (va ^ vb) != 0);
        }
    }
}

// Build a small random combinational circuit, unroll one frame, and check
// that a SAT model's input assignment replayed in the simulator yields the
// exact same values on every cone net.
class CnfVsSimulator : public ::testing::TestWithParam<int>
{};

TEST_P(CnfVsSimulator, ModelMatchesSimulation)
{
    std::mt19937_64 rng(7000 + GetParam());
    rtl::Circuit circuit;
    rtl::Builder b(circuit);

    std::vector<rtl::Sig> pool;
    for (int i = 0; i < 4; ++i)
        pool.push_back(b.input("in" + std::to_string(i), 4));
    for (int i = 0; i < 40; ++i) {
        rtl::Sig x = pool[rng() % pool.size()];
        rtl::Sig y = pool[rng() % pool.size()];
        switch (rng() % 8) {
          case 0: pool.push_back(b.add(x, y)); break;
          case 1: pool.push_back(b.sub(x, y)); break;
          case 2: pool.push_back(b.mul(x, y)); break;
          case 3: pool.push_back(b.andOf(x, y)); break;
          case 4: pool.push_back(b.orOf(x, y)); break;
          case 5: pool.push_back(b.xorOf(x, y)); break;
          case 6: pool.push_back(b.mux(b.eq(x, y), x, y)); break;
          case 7: pool.push_back(b.resize(b.ult(x, y), 4)); break;
        }
    }
    // Make everything reachable from the property so it lands in the cone.
    rtl::Sig acc = b.lit(0, 4);
    for (rtl::Sig s : pool)
        acc = b.xorOf(acc, s);
    b.assertAlways(b.eq(acc, b.lit(0, 4)), "acc_zero");
    b.finish();

    sat::Solver solver;
    CnfBuilder cnf(solver);
    Unroller unroller(circuit, cnf, false);
    unroller.ensureFrames(1);

    // Ask for any model (bad or not bad, alternating by seed).
    std::vector<Lit> assumptions = {GetParam() % 2
                                        ? unroller.badLit(0)
                                        : ~unroller.badLit(0)};
    ASSERT_EQ(solver.solve(assumptions), Status::Sat);

    std::unordered_map<rtl::NetId, uint64_t> inputs;
    for (rtl::NetId in : circuit.inputs())
        inputs[in] = unroller.valueOf(in, 0);
    sim::Simulator simulator(circuit);
    simulator.evaluate(inputs);
    for (rtl::Sig s : pool)
        EXPECT_EQ(simulator.value(s.id), unroller.valueOf(s.id, 0))
            << "net " << circuit.name(s.id);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CnfVsSimulator,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// Sequential cross-check: a couple of registers plus feedback over several
// frames; SAT model of the final frame must match replay.
TEST(Unroller, SequentialUnrollingMatchesSimulation)
{
    rtl::Circuit circuit;
    rtl::Builder b(circuit);
    rtl::Sig in = b.input("in", 4);
    rtl::Sig r1 = b.reg("r1", 4, 3);
    rtl::Sig r2 = b.symbolicReg("r2", 4);
    b.connect(r1, b.add(r1, in));
    b.connect(r2, b.xorOf(r2, r1));
    b.assertAlways(b.ne(r2, b.lit(0xa, 4)), "r2_not_a");
    b.finish();

    sat::Solver solver;
    CnfBuilder cnf(solver);
    Unroller unroller(circuit, cnf, false);
    const size_t frames = 5;
    unroller.ensureFrames(frames);
    ASSERT_EQ(solver.solve({unroller.badLit(frames - 1)}), Status::Sat);

    sim::Simulator simulator(circuit);
    simulator.reset({{r2.id, unroller.valueOf(r2.id, 0)}});
    for (size_t f = 0; f < frames; ++f) {
        simulator.evaluate({{in.id, unroller.valueOf(in.id, f)}});
        EXPECT_EQ(simulator.value(r1.id), unroller.valueOf(r1.id, f));
        EXPECT_EQ(simulator.value(r2.id), unroller.valueOf(r2.id, f));
        simulator.tick();
    }
}

TEST(Unroller, InitConstraintsRestrictFrameZero)
{
    rtl::Circuit circuit;
    rtl::Builder b(circuit);
    rtl::Sig r = b.symbolicReg("r", 4);
    b.connect(r, r);
    b.assumeInit(b.eq(r, b.lit(7, 4)), "r_is_7");
    b.assertAlways(b.ne(r, b.lit(7, 4)), "r_not_7");
    b.finish();

    // With init constraints: bad is immediately reachable.
    {
        sat::Solver solver;
        CnfBuilder cnf(solver);
        Unroller unroller(circuit, cnf, false);
        unroller.ensureFrames(1);
        EXPECT_EQ(solver.solve({unroller.badLit(0)}), Status::Sat);
        EXPECT_EQ(unroller.valueOf(r.id, 0), 7u);
        // And not-bad is impossible.
        EXPECT_EQ(solver.solve({~unroller.badLit(0)}), Status::Unsat);
    }
    // Free initial state (induction step): both polarities possible.
    {
        sat::Solver solver;
        CnfBuilder cnf(solver);
        Unroller unroller(circuit, cnf, true);
        unroller.ensureFrames(1);
        EXPECT_EQ(solver.solve({unroller.badLit(0)}), Status::Sat);
        EXPECT_EQ(solver.solve({~unroller.badLit(0)}), Status::Sat);
    }
}

TEST(Unroller, ConstraintsPruneModels)
{
    rtl::Circuit circuit;
    rtl::Builder b(circuit);
    rtl::Sig in = b.input("in", 4);
    b.assume(b.ult(in, b.lit(4, 4)), "in_lt_4");
    b.assertAlways(b.ult(in, b.lit(8, 4)), "in_lt_8");
    b.finish();

    sat::Solver solver;
    CnfBuilder cnf(solver);
    Unroller unroller(circuit, cnf, false);
    unroller.ensureFrames(3);
    // The assumption makes the assertion unfalsifiable at any frame.
    for (size_t f = 0; f < 3; ++f)
        EXPECT_EQ(solver.solve({unroller.badLit(f)}), Status::Unsat);
}

} // namespace
} // namespace csl::bitblast
