// Unit tests for the IR interpreter, including randomized semantic checks
// of every operator against native C++ arithmetic.

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "base/bits.h"
#include "rtl/builder.h"
#include "sim/simulator.h"
#include "sim/vcd.h"

namespace csl {
namespace {

using rtl::Builder;
using rtl::Circuit;
using rtl::Sig;
using sim::Simulator;

TEST(Simulator, CounterCounts)
{
    Circuit circuit;
    Builder b(circuit);
    Sig c = b.reg("c", 4, 0);
    b.connect(c, b.addConst(c, 1));
    b.finish();

    Simulator s(circuit);
    for (uint64_t i = 0; i < 20; ++i) {
        s.evaluate();
        EXPECT_EQ(s.value(c.id), i % 16);
        s.tick();
    }
}

TEST(Simulator, RegisterEnableHoldsValue)
{
    Circuit circuit;
    Builder b(circuit);
    Sig en = b.input("en", 1);
    b.pushClockGate(en);
    Sig c = b.reg("c", 4, 0);
    b.connect(c, b.addConst(c, 1));
    b.popClockGate();
    b.finish();

    Simulator s(circuit);
    s.step({{en.id, 1}});
    s.step({{en.id, 0}});
    s.step({{en.id, 0}});
    s.evaluate();
    EXPECT_EQ(s.value(c.id), 1u); // advanced only on the enabled cycle
}

TEST(Simulator, SymbolicRegisterTakesProvidedInit)
{
    Circuit circuit;
    Builder b(circuit);
    Sig r = b.symbolicReg("r", 8);
    b.connect(r, r);
    b.finish();

    Simulator s(circuit);
    s.reset({{r.id, 0x5a}});
    s.evaluate();
    EXPECT_EQ(s.value(r.id), 0x5au);
}

TEST(Simulator, MemoryWriteThenRead)
{
    Circuit circuit;
    Builder b(circuit);
    rtl::MemArray &mem = b.memory("m", 4, 8, false);
    Sig we = b.input("we", 1);
    Sig addr = b.input("addr", 2);
    Sig wdata = b.input("wdata", 8);
    mem.write(we, addr, wdata);
    Sig rdata = b.named(mem.read(addr), "rdata");
    b.finish();

    Simulator s(circuit);
    // Write 0xab to address 2.
    s.step({{we.id, 1}, {addr.id, 2}, {wdata.id, 0xab}});
    // Read it back next cycle.
    s.evaluate({{we.id, 0}, {addr.id, 2}});
    EXPECT_EQ(s.value(rdata.id), 0xabu);
    s.tick();
    // Other addresses still zero.
    s.evaluate({{we.id, 0}, {addr.id, 1}});
    EXPECT_EQ(s.value(rdata.id), 0u);
}

TEST(Simulator, DepthOneMemory)
{
    Circuit circuit;
    Builder b(circuit);
    rtl::MemArray &mem = b.memory("m", 1, 4, false);
    Sig we = b.input("we", 1);
    Sig wdata = b.input("wdata", 4);
    mem.write(we, b.lit(0, 1), wdata);
    Sig rdata = b.named(mem.read(b.lit(0, 1)), "rdata");
    b.finish();

    Simulator s(circuit);
    s.step({{we.id, 1}, {wdata.id, 9}});
    s.evaluate();
    EXPECT_EQ(s.value(rdata.id), 9u);
}

TEST(Simulator, ConstraintsAndBads)
{
    Circuit circuit;
    Builder b(circuit);
    Sig x = b.input("x", 4);
    b.assume(b.ult(x, b.lit(8, 4)), "x_small");
    b.assertAlways(b.ne(x, b.lit(3, 4)), "x_not_3");
    b.finish();

    Simulator s(circuit);
    s.evaluate({{x.id, 2}});
    EXPECT_TRUE(s.constraintsHold());
    EXPECT_FALSE(s.anyBad());
    s.tick();
    s.evaluate({{x.id, 3}});
    EXPECT_TRUE(s.constraintsHold());
    EXPECT_TRUE(s.anyBad());
    s.tick();
    s.evaluate({{x.id, 12}});
    EXPECT_FALSE(s.constraintsHold());
}

// Property-style sweep: every operator matches native semantics on random
// operands at several widths.
class OpSemantics : public ::testing::TestWithParam<int>
{};

TEST_P(OpSemantics, MatchesNative)
{
    const int width = GetParam();
    Circuit circuit;
    Builder b(circuit);
    Sig a = b.input("a", width);
    Sig c = b.input("b", width);
    Sig s1 = b.bit(b.input("sel", 1), 0);

    // Keep the concat inside the 64-bit net-width cap.
    const bool test_concat = width + (width + 1) / 2 <= 64;
    Sig ops[] = {
        b.notOf(a),       b.andOf(a, c),   b.orOf(a, c), b.xorOf(a, c),
        b.add(a, c),      b.sub(a, c),     b.mul(a, c),  b.eq(a, c),
        b.ult(a, c),      b.mux(s1, a, c), b.ule(a, c),
        test_concat ? b.concat(b.slice(a, 0, (width + 1) / 2), c) : a,
    };
    b.finish();

    Simulator sim(circuit);
    std::mt19937_64 rng(12345 + width);
    for (int iter = 0; iter < 200; ++iter) {
        uint64_t va = truncBits(rng(), width);
        uint64_t vb = truncBits(rng(), width);
        uint64_t vs = rng() & 1;
        sim.evaluate({{a.id, va}, {c.id, vb}, {s1.id, vs}});
        EXPECT_EQ(sim.value(ops[0].id), truncBits(~va, width));
        EXPECT_EQ(sim.value(ops[1].id), (va & vb));
        EXPECT_EQ(sim.value(ops[2].id), (va | vb));
        EXPECT_EQ(sim.value(ops[3].id), (va ^ vb));
        EXPECT_EQ(sim.value(ops[4].id), truncBits(va + vb, width));
        EXPECT_EQ(sim.value(ops[5].id), truncBits(va - vb, width));
        EXPECT_EQ(sim.value(ops[6].id), truncBits(va * vb, width));
        EXPECT_EQ(sim.value(ops[7].id), uint64_t(va == vb));
        EXPECT_EQ(sim.value(ops[8].id), uint64_t(va < vb));
        EXPECT_EQ(sim.value(ops[9].id), vs ? va : vb);
        EXPECT_EQ(sim.value(ops[10].id), uint64_t(va <= vb));
        if (test_concat) {
            uint64_t lo_half = truncBits(va, (width + 1) / 2);
            EXPECT_EQ(sim.value(ops[11].id),
                      truncBits((lo_half << width) | vb,
                                width + (width + 1) / 2));
        }
        sim.tick();
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, OpSemantics,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 13, 16, 31, 32,
                                           48, 63, 64));

TEST(Vcd, ProducesHeaderAndSamples)
{
    Circuit circuit;
    Builder b(circuit);
    Sig c = b.reg("counter", 4, 0);
    b.connect(c, b.addConst(c, 1));
    b.finish();

    std::ostringstream oss;
    sim::VcdWriter vcd(oss, circuit);
    Simulator s(circuit);
    for (int i = 0; i < 3; ++i) {
        s.evaluate();
        vcd.sample(s);
        s.tick();
    }
    std::string out = oss.str();
    EXPECT_NE(out.find("$var wire 4"), std::string::npos);
    EXPECT_NE(out.find("counter"), std::string::npos);
    EXPECT_NE(out.find("#2"), std::string::npos);
}

} // namespace
} // namespace csl
