// Unit tests for src/base utilities.

#include <gtest/gtest.h>

#include "base/bits.h"
#include "base/budget.h"
#include "base/stopwatch.h"

namespace csl {
namespace {

TEST(Bits, MaskBits)
{
    EXPECT_EQ(maskBits(0), 0u);
    EXPECT_EQ(maskBits(1), 1u);
    EXPECT_EQ(maskBits(4), 0xfu);
    EXPECT_EQ(maskBits(63), 0x7fffffffffffffffull);
    EXPECT_EQ(maskBits(64), ~0ull);
}

TEST(Bits, TruncBits)
{
    EXPECT_EQ(truncBits(0xff, 4), 0xfu);
    EXPECT_EQ(truncBits(0x10, 4), 0u);
    EXPECT_EQ(truncBits(0xdeadbeef, 64), 0xdeadbeefull);
}

TEST(Bits, BitAt)
{
    EXPECT_TRUE(bitAt(0b100, 2));
    EXPECT_FALSE(bitAt(0b100, 1));
}

TEST(Bits, BitsFor)
{
    EXPECT_EQ(bitsFor(1), 1);
    EXPECT_EQ(bitsFor(2), 1);
    EXPECT_EQ(bitsFor(3), 2);
    EXPECT_EQ(bitsFor(4), 2);
    EXPECT_EQ(bitsFor(5), 3);
    EXPECT_EQ(bitsFor(8), 3);
    EXPECT_EQ(bitsFor(9), 4);
}

TEST(Bits, IsPowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(6));
}

TEST(Budget, UnlimitedNeverExhausts)
{
    Budget budget;
    for (int i = 0; i < 10000; ++i)
        budget.charge();
    EXPECT_FALSE(budget.exhausted());
}

TEST(Budget, WorkLimit)
{
    Budget budget(1e9, 10);
    for (int i = 0; i < 10; ++i)
        budget.charge();
    EXPECT_FALSE(budget.exhausted());
    budget.charge();
    EXPECT_TRUE(budget.exhausted());
}

TEST(Budget, TimeLimitEventuallyTrips)
{
    Budget budget(0.0);
    // The clock is only sampled every 1024 checks.
    bool tripped = false;
    for (int i = 0; i < 5000 && !tripped; ++i)
        tripped = budget.exhausted();
    EXPECT_TRUE(tripped);
}

TEST(Stopwatch, FormatSeconds)
{
    EXPECT_EQ(formatSeconds(0.5), "500ms");
    EXPECT_EQ(formatSeconds(2.0), "2.00s");
    EXPECT_EQ(formatSeconds(600.0), "10.0min");
    EXPECT_EQ(formatSeconds(7200.0), "2.0h");
}

TEST(Stopwatch, MonotoneElapsed)
{
    Stopwatch watch;
    double t0 = watch.seconds();
    double t1 = watch.seconds();
    EXPECT_GE(t1, t0);
    EXPECT_GE(t0, 0.0);
}

} // namespace
} // namespace csl
