// Unit and property tests for the CDCL solver, including exhaustive
// cross-checking against a brute-force enumerator on random small CNFs.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>

#include "sat/dimacs.h"
#include "sat/solver.h"

namespace csl::sat {
namespace {

TEST(Lit, Representation)
{
    Lit p = mkLit(3);
    Lit np = mkLit(3, true);
    EXPECT_EQ(var(p), 3);
    EXPECT_FALSE(sign(p));
    EXPECT_TRUE(sign(np));
    EXPECT_EQ(~p, np);
    EXPECT_EQ(~np, p);
}

TEST(Solver, TrivialSat)
{
    Solver s;
    Var a = s.newVar();
    s.addClause(mkLit(a));
    EXPECT_EQ(s.solve(), Status::Sat);
    EXPECT_TRUE(s.modelValue(mkLit(a)));
}

TEST(Solver, TrivialUnsat)
{
    Solver s;
    Var a = s.newVar();
    s.addClause(mkLit(a));
    EXPECT_FALSE(s.addClause(mkLit(a, true)));
    EXPECT_EQ(s.solve(), Status::Unsat);
    EXPECT_TRUE(s.inconsistent());
}

TEST(Solver, UnitPropagationChain)
{
    Solver s;
    const int n = 20;
    std::vector<Var> v(n);
    for (int i = 0; i < n; ++i)
        v[i] = s.newVar();
    s.addClause(mkLit(v[0]));
    for (int i = 0; i + 1 < n; ++i)
        s.addClause(mkLit(v[i], true), mkLit(v[i + 1])); // v[i] -> v[i+1]
    EXPECT_EQ(s.solve(), Status::Sat);
    for (int i = 0; i < n; ++i)
        EXPECT_TRUE(s.modelValue(mkLit(v[i])));
}

TEST(Solver, RequiresConflictAnalysis)
{
    // (a | b) & (a | ~b) & (~a | c) & (~a | ~c) is unsat.
    Solver s;
    Var a = s.newVar(), b = s.newVar(), c = s.newVar();
    s.addClause(mkLit(a), mkLit(b));
    s.addClause(mkLit(a), mkLit(b, true));
    s.addClause(mkLit(a, true), mkLit(c));
    s.addClause(mkLit(a, true), mkLit(c, true));
    EXPECT_EQ(s.solve(), Status::Unsat);
}

TEST(Solver, AssumptionsSatUnsat)
{
    Solver s;
    Var a = s.newVar(), b = s.newVar();
    s.addClause(mkLit(a, true), mkLit(b)); // a -> b
    EXPECT_EQ(s.solve({mkLit(a)}), Status::Sat);
    EXPECT_TRUE(s.modelValue(mkLit(b)));
    s.addClause(mkLit(b, true)); // now ~b holds
    EXPECT_EQ(s.solve({mkLit(a)}), Status::Unsat);
    // Without the assumption the formula stays satisfiable.
    EXPECT_EQ(s.solve(), Status::Sat);
    EXPECT_FALSE(s.modelValue(mkLit(a)));
}

TEST(Solver, IncrementalAddBetweenSolves)
{
    Solver s;
    Var a = s.newVar(), b = s.newVar(), c = s.newVar();
    s.addClause(mkLit(a), mkLit(b), mkLit(c));
    EXPECT_EQ(s.solve(), Status::Sat);
    s.addClause(mkLit(a, true));
    s.addClause(mkLit(b, true));
    EXPECT_EQ(s.solve(), Status::Sat);
    EXPECT_TRUE(s.modelValue(mkLit(c)));
    s.addClause(mkLit(c, true));
    EXPECT_EQ(s.solve(), Status::Unsat);
}

TEST(Solver, DuplicateAndTautologicalClauses)
{
    Solver s;
    Var a = s.newVar(), b = s.newVar();
    EXPECT_TRUE(s.addClause({mkLit(a), mkLit(a), mkLit(b)}));
    EXPECT_TRUE(s.addClause({mkLit(a), mkLit(a, true)})); // tautology
    EXPECT_EQ(s.solve(), Status::Sat);
}

TEST(Solver, PigeonholeUnsat)
{
    // PHP(n+1, n): n+1 pigeons, n holes. Classic hard UNSAT family;
    // n=6 exercises restarts and clause learning.
    const int pigeons = 7, holes = 6;
    Solver s;
    std::vector<std::vector<Var>> x(pigeons, std::vector<Var>(holes));
    for (auto &row : x)
        for (auto &v : row)
            v = s.newVar();
    for (int p = 0; p < pigeons; ++p) {
        std::vector<Lit> clause;
        for (int h = 0; h < holes; ++h)
            clause.push_back(mkLit(x[p][h]));
        s.addClause(clause);
    }
    for (int h = 0; h < holes; ++h)
        for (int p1 = 0; p1 < pigeons; ++p1)
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                s.addClause(mkLit(x[p1][h], true), mkLit(x[p2][h], true));
    EXPECT_EQ(s.solve(), Status::Unsat);
    EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(Solver, BudgetExhaustionReturnsUnknown)
{
    // A PHP instance large enough to exceed a 5-conflict budget.
    const int pigeons = 9, holes = 8;
    Solver s;
    std::vector<std::vector<Var>> x(pigeons, std::vector<Var>(holes));
    for (auto &row : x)
        for (auto &v : row)
            v = s.newVar();
    for (int p = 0; p < pigeons; ++p) {
        std::vector<Lit> clause;
        for (int h = 0; h < holes; ++h)
            clause.push_back(mkLit(x[p][h]));
        s.addClause(clause);
    }
    for (int h = 0; h < holes; ++h)
        for (int p1 = 0; p1 < pigeons; ++p1)
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                s.addClause(mkLit(x[p1][h], true), mkLit(x[p2][h], true));
    Budget budget(1e9, 5);
    EXPECT_EQ(s.solve({}, &budget), Status::Unknown);
    // The solver must remain usable after a timeout.
    EXPECT_EQ(s.solve(), Status::Unsat);
}

TEST(Solver, FailedAssumptionsIdentifyCore)
{
    // a -> b, c -> ~b: assuming {a, c, d} is unsat; d is irrelevant.
    Solver s;
    Var a = s.newVar(), b = s.newVar(), c = s.newVar(), d = s.newVar();
    s.addClause(mkLit(a, true), mkLit(b));
    s.addClause(mkLit(c, true), mkLit(b, true));
    ASSERT_EQ(s.solve({mkLit(a), mkLit(c), mkLit(d)}), Status::Unsat);
    const auto &core = s.failedAssumptions();
    auto contains = [&](Lit l) {
        return std::find(core.begin(), core.end(), l) != core.end();
    };
    EXPECT_TRUE(contains(mkLit(a)) || contains(mkLit(c)));
    EXPECT_FALSE(contains(mkLit(d))) << "irrelevant assumption in core";
    // The core must itself be unsatisfiable with the clauses.
    Solver s2;
    for (int i = 0; i < 4; ++i)
        s2.newVar();
    s2.addClause(mkLit(a, true), mkLit(b));
    s2.addClause(mkLit(c, true), mkLit(b, true));
    EXPECT_EQ(s2.solve(core), Status::Unsat);
}

TEST(Solver, FailedAssumptionsDirectContradiction)
{
    Solver s;
    Var a = s.newVar();
    s.newVar();
    ASSERT_EQ(s.solve({mkLit(a), mkLit(a, true)}), Status::Unsat);
    EXPECT_FALSE(s.failedAssumptions().empty());
}

TEST(Solver, FailedAssumptionsEmptyWhenFormulaUnsat)
{
    Solver s;
    Var a = s.newVar();
    s.addClause(mkLit(a));
    s.addClause(mkLit(a, true));
    ASSERT_EQ(s.solve({mkLit(a)}), Status::Unsat);
    EXPECT_TRUE(s.failedAssumptions().empty())
        << "root-level unsat has no assumption core";
}

// --- Randomized cross-check against brute force ---------------------------

bool
bruteForceSat(int num_vars, const std::vector<std::vector<Lit>> &clauses)
{
    for (uint32_t assign = 0; assign < (1u << num_vars); ++assign) {
        bool all = true;
        for (const auto &clause : clauses) {
            bool any = false;
            for (Lit l : clause) {
                bool v = (assign >> var(l)) & 1;
                if (v != sign(l)) {
                    any = true;
                    break;
                }
            }
            if (!any) {
                all = false;
                break;
            }
        }
        if (all)
            return true;
    }
    return false;
}

class RandomCnf : public ::testing::TestWithParam<int>
{};

TEST_P(RandomCnf, MatchesBruteForce)
{
    std::mt19937 rng(GetParam());
    for (int round = 0; round < 60; ++round) {
        const int num_vars = 3 + int(rng() % 10);       // 3..12
        const int num_clauses = int(num_vars * (3.0 + (rng() % 20) / 10.0));
        std::vector<std::vector<Lit>> clauses;
        for (int i = 0; i < num_clauses; ++i) {
            int len = 1 + int(rng() % 3);
            std::vector<Lit> clause;
            for (int j = 0; j < len; ++j)
                clause.push_back(
                    mkLit(int(rng() % num_vars), rng() & 1));
            clauses.push_back(clause);
        }
        Solver s;
        for (int v = 0; v < num_vars; ++v)
            s.newVar();
        for (auto &clause : clauses)
            s.addClause(clause);
        Status status = s.solve();
        bool expected = bruteForceSat(num_vars, clauses);
        ASSERT_EQ(status == Status::Sat, expected)
            << "divergence on round " << round << " seed " << GetParam();
        if (status == Status::Sat) {
            // Verify the model satisfies every clause.
            for (const auto &clause : clauses) {
                bool any = false;
                for (Lit l : clause)
                    any = any || s.modelValue(l);
                ASSERT_TRUE(any) << "model violates a clause";
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCnf,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Randomized check that assumptions behave like temporary units.
class RandomAssumptions : public ::testing::TestWithParam<int>
{};

TEST_P(RandomAssumptions, MatchesAugmentedFormula)
{
    std::mt19937 rng(1000 + GetParam());
    for (int round = 0; round < 30; ++round) {
        const int num_vars = 4 + int(rng() % 8);
        const int num_clauses = num_vars * 3;
        std::vector<std::vector<Lit>> clauses;
        for (int i = 0; i < num_clauses; ++i) {
            int len = 1 + int(rng() % 3);
            std::vector<Lit> clause;
            for (int j = 0; j < len; ++j)
                clause.push_back(mkLit(int(rng() % num_vars), rng() & 1));
            clauses.push_back(clause);
        }
        std::vector<Lit> assumptions;
        int num_assumps = 1 + int(rng() % 3);
        for (int i = 0; i < num_assumps; ++i)
            assumptions.push_back(mkLit(int(rng() % num_vars), rng() & 1));

        Solver s;
        for (int v = 0; v < num_vars; ++v)
            s.newVar();
        for (auto &clause : clauses)
            s.addClause(clause);
        Status status = s.solve(assumptions);

        auto augmented = clauses;
        for (Lit l : assumptions)
            augmented.push_back({l});
        bool expected = bruteForceSat(num_vars, augmented);
        ASSERT_EQ(status == Status::Sat, expected);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAssumptions,
                         ::testing::Values(1, 2, 3, 4));

TEST(Dimacs, RoundTrip)
{
    std::istringstream in("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n");
    Cnf cnf = parseDimacs(in);
    EXPECT_EQ(cnf.numVars, 3);
    ASSERT_EQ(cnf.clauses.size(), 2u);
    EXPECT_EQ(cnf.clauses[0][0], mkLit(0));
    EXPECT_EQ(cnf.clauses[0][1], mkLit(1, true));

    std::ostringstream out;
    writeDimacs(cnf, out);
    std::istringstream in2(out.str());
    Cnf cnf2 = parseDimacs(in2);
    EXPECT_EQ(cnf2.numVars, cnf.numVars);
    EXPECT_EQ(cnf2.clauses, cnf.clauses);

    Solver s;
    loadCnf(cnf, s);
    EXPECT_EQ(s.solve(), Status::Sat);
}

} // namespace
} // namespace csl::sat
