// Tests for BMC, k-induction, trace extraction/replay and the
// checkProperty facade, on small circuits with known answers.

#include <gtest/gtest.h>

#include "mc/bmc.h"
#include "mc/kinduction.h"
#include "mc/portfolio.h"
#include "mc/trace.h"
#include "rtl/builder.h"

namespace csl::mc {
namespace {

using rtl::Builder;
using rtl::Circuit;
using rtl::Sig;

// A counter that asserts it never reaches `target`.
void
buildCounter(Circuit &circuit, int width, uint64_t target, uint64_t step = 1)
{
    Builder b(circuit);
    Sig c = b.reg("c", width, 0);
    b.connect(c, b.addConst(c, step));
    b.assertAlways(b.ne(c, b.lit(target, width)), "c_ne_target");
    b.finish();
}

TEST(Bmc, FindsCounterexampleAtExactDepth)
{
    Circuit circuit;
    buildCounter(circuit, 4, 7);
    Bmc bmc(circuit);
    BmcResult r = bmc.run(20);
    ASSERT_EQ(r.kind, BmcResult::Kind::Cex);
    EXPECT_EQ(r.depth, 7u); // counter hits 7 at cycle 7
    ASSERT_TRUE(r.trace.has_value());
    ReplayResult replay = replayTrace(circuit, *r.trace);
    EXPECT_TRUE(replay.constraintsHeld);
    EXPECT_TRUE(replay.badReached);
}

TEST(Bmc, BoundedSafeBelowThreshold)
{
    Circuit circuit;
    buildCounter(circuit, 4, 9);
    Bmc bmc(circuit);
    BmcResult r = bmc.run(9); // frames 0..8 only
    EXPECT_EQ(r.kind, BmcResult::Kind::BoundedSafe);
    EXPECT_EQ(r.depth, 9u);
    // Resuming deeper finds the bug without re-checking old depths.
    BmcResult r2 = bmc.run(12);
    ASSERT_EQ(r2.kind, BmcResult::Kind::Cex);
    EXPECT_EQ(r2.depth, 9u);
}

TEST(Bmc, UnreachableTargetStaysSafe)
{
    Circuit circuit;
    buildCounter(circuit, 4, 3, /*step=*/2); // even counter, odd target
    Bmc bmc(circuit);
    EXPECT_EQ(bmc.run(40).kind, BmcResult::Kind::BoundedSafe);
}

TEST(KInduction, ProvesSimpleInvariant)
{
    // c counts 0..9 then wraps to 0; assert c != 12. The target is
    // unreachable; /\ c<=9 is not needed because c != 12 is preserved
    // only when c stays < 10... k-induction needs a few frames here.
    Circuit circuit;
    Builder b(circuit);
    Sig c = b.reg("c", 4, 0);
    b.connect(c, b.incMod(c, 10));
    b.assertAlways(b.ne(c, b.lit(12, 4)), "c_ne_12");
    b.finish();

    KInduction engine(circuit, {.maxK = 16, .assumedInvariants = {}});
    KInductionResult r = engine.run();
    EXPECT_EQ(r.kind, KInductionResult::Kind::Proof);
}

TEST(KInduction, FindsCexViaBaseCase)
{
    Circuit circuit;
    buildCounter(circuit, 4, 5);
    KInduction engine(circuit);
    KInductionResult r = engine.run();
    ASSERT_EQ(r.kind, KInductionResult::Kind::Cex);
    EXPECT_EQ(r.k, 5u);
    ASSERT_TRUE(r.trace.has_value());
    EXPECT_TRUE(replayTrace(circuit, *r.trace).badReached);
}

TEST(KInduction, NonInductiveWithoutInvariantNeedsHigherK)
{
    // Two counters in lockstep; assert equality-derived property that is
    // 1-inductive, proving at k=1.
    Circuit circuit;
    Builder b(circuit);
    Sig a = b.reg("a", 4, 0);
    Sig c = b.reg("c", 4, 0);
    b.connect(a, b.addConst(a, 1));
    b.connect(c, b.addConst(c, 1));
    b.assertAlways(b.eq(a, c), "a_eq_c");
    b.finish();
    KInduction engine(circuit);
    KInductionResult r = engine.run();
    EXPECT_EQ(r.kind, KInductionResult::Kind::Proof);
    EXPECT_EQ(r.k, 1u);
}

TEST(KInduction, AssumedInvariantEnablesProof)
{
    // r holds a value < 4 forever (init 0, next = (r+1) & 3), and q
    // mirrors r. Property: q != 9. Without knowing r < 4 the step case
    // at small k fails only if q can be 9 while matching r... q==r is
    // the needed lemma; feed it as an assumed invariant.
    Circuit circuit;
    Builder b(circuit);
    Sig r = b.reg("r", 4, 0);
    Sig q = b.reg("q", 4, 0);
    Sig next = b.andOf(b.addConst(r, 1), b.lit(3, 4));
    b.connect(r, next);
    b.connect(q, next);
    Sig inv = b.named(b.eq(q, r), "q_eq_r");
    b.assertAlways(b.ne(q, b.lit(9, 4)), "q_ne_9");
    b.finish();

    // First establish the lemma is inductive via Houdini.
    auto proved = proveInductiveInvariants(circuit, {inv.id});
    ASSERT_TRUE(proved.has_value());
    ASSERT_EQ(proved->size(), 1u);

    KInductionOptions opts;
    opts.maxK = 8;
    opts.assumedInvariants = *proved;
    KInduction engine(circuit, opts);
    EXPECT_EQ(engine.run().kind, KInductionResult::Kind::Proof);
}

TEST(Houdini, DropsNonInvariantCandidates)
{
    Circuit circuit;
    Builder b(circuit);
    Sig c = b.reg("c", 4, 0);
    b.connect(c, b.incMod(c, 8));
    Sig good = b.named(b.ult(c, b.lit(8, 4)), "c_lt_8");
    Sig bad_init = b.named(b.eq(c, b.lit(3, 4)), "c_is_3");
    Sig bad_step = b.named(b.ult(c, b.lit(3, 4)), "c_lt_3");
    b.assertAlways(b.one(), "true_prop");
    b.finish();

    auto proved = proveInductiveInvariants(
        circuit, {good.id, bad_init.id, bad_step.id});
    ASSERT_TRUE(proved.has_value());
    ASSERT_EQ(proved->size(), 1u);
    EXPECT_EQ((*proved)[0], good.id);
}

TEST(Houdini, KeepsMutuallyDependentInvariants)
{
    // x and y advance together; x==y and y==x are each inductive only
    // jointly with the other (trivially identical here, but the joint
    // check must not oscillate).
    Circuit circuit;
    Builder b(circuit);
    Sig x = b.reg("x", 3, 0);
    Sig y = b.reg("y", 3, 0);
    b.connect(x, b.addConst(y, 1));
    b.connect(y, b.addConst(x, 1));
    Sig inv1 = b.named(b.eq(x, y), "x_eq_y");
    Sig inv2 = b.named(b.ule(x, y), "x_le_y");
    b.assertAlways(b.one(), "true_prop");
    b.finish();

    auto proved = proveInductiveInvariants(circuit, {inv1.id, inv2.id});
    ASSERT_TRUE(proved.has_value());
    EXPECT_EQ(proved->size(), 2u);
}

TEST(Trace, FormatListsCycles)
{
    Circuit circuit;
    buildCounter(circuit, 4, 3);
    Bmc bmc(circuit);
    BmcResult r = bmc.run(10);
    ASSERT_EQ(r.kind, BmcResult::Kind::Cex);
    rtl::NetId c = circuit.findByName("c");
    std::string s = formatTrace(circuit, *r.trace, {c});
    EXPECT_NE(s.find("cycle 0: c=0"), std::string::npos);
    EXPECT_NE(s.find("cycle 3: c=3"), std::string::npos);
}

TEST(CheckProperty, AttackProofAndBoundedSafe)
{
    {
        Circuit circuit;
        buildCounter(circuit, 4, 6);
        CheckResult r = checkProperty(circuit, {.maxDepth = 20});
        EXPECT_EQ(r.verdict, Verdict::Attack);
        EXPECT_EQ(r.depth, 6u);
    }
    {
        Circuit circuit;
        buildCounter(circuit, 4, 3, /*step=*/2);
        CheckResult r = checkProperty(circuit, {.maxDepth = 20});
        EXPECT_EQ(r.verdict, Verdict::Proof);
    }
    {
        Circuit circuit;
        buildCounter(circuit, 4, 9);
        CheckOptions opts;
        opts.maxDepth = 5;
        opts.tryProof = false;
        CheckResult r = checkProperty(circuit, opts);
        EXPECT_EQ(r.verdict, Verdict::BoundedSafe);
    }
}

TEST(CheckProperty, TimeoutOnTinyBudget)
{
    // A 24-bit counter with an unreachable odd target: induction will not
    // converge quickly, and the budget is microscopic. The depth bound
    // must be deep enough that a dedicated BMC engine cannot finish the
    // (trivially unsat) frame sweep within the budget and report an
    // honest BoundedSafe instead.
    Circuit circuit;
    Builder b(circuit);
    Sig c = b.reg("c", 24, 0);
    b.connect(c, b.addConst(c, 2));
    b.assertAlways(b.ne(c, b.lit(0xffffff, 24)), "never_odd");
    b.finish();
    CheckOptions opts;
    opts.maxDepth = 1000000;
    opts.timeoutSeconds = 0.05;
    CheckResult r = checkProperty(circuit, opts);
    EXPECT_EQ(r.verdict, Verdict::Timeout);
    // The pooled partial facts survive the timeout.
    EXPECT_GT(r.deepestSafeBound, 0u);
}

TEST(VerdictName, AllNamed)
{
    EXPECT_STREQ(verdictName(Verdict::Attack), "ATTACK");
    EXPECT_STREQ(verdictName(Verdict::Proof), "PROOF");
    EXPECT_STREQ(verdictName(Verdict::BoundedSafe), "BOUNDED-SAFE");
    EXPECT_STREQ(verdictName(Verdict::Timeout), "TIMEOUT");
}

} // namespace
} // namespace csl::mc
