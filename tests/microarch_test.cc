// Additional directed microarchitecture tests: memory ordering, bus
// arbitration, exception squash behaviour, cache/MSHR states, and
// clock-gating composition - behaviours the randomized tandem suite
// exercises only incidentally.

#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "proc/presets.h"
#include "rtl/builder.h"
#include "sim/simulator.h"

namespace csl {
namespace {

using defense::Defense;
using isa::IsaConfig;
using proc::CoreIfc;
using proc::CoreSpec;
using rtl::Builder;
using rtl::Circuit;
using rtl::Sig;
using sim::Simulator;

struct Rig
{
    Circuit circuit;
    CoreIfc ifc;
    std::unique_ptr<Simulator> sim;

    Rig(const CoreSpec &spec, const std::vector<uint64_t> &imem,
        const std::vector<uint64_t> &dmem,
        const std::vector<uint64_t> &regs)
    {
        Builder b(circuit);
        ifc = proc::buildCore(b, spec, "cpu");
        b.finish();
        sim = std::make_unique<Simulator>(circuit);
        std::unordered_map<rtl::NetId, uint64_t> init;
        for (size_t i = 0; i < imem.size(); ++i)
            init[ifc.imemWords[i].id] = imem[i];
        for (size_t i = 0; i < dmem.size(); ++i)
            init[ifc.dmemWords[i].id] = dmem[i];
        for (size_t i = 0; i < regs.size(); ++i)
            init[ifc.archRegs[i].id] = regs[i];
        sim->reset(init);
    }
};

TEST(MemoryOrdering, LoadWaitsForOlderStore)
{
    CoreSpec spec = proc::boomLikeSpec();
    const IsaConfig &ic = spec.isaConfig();
    auto program = isa::assemble(R"(
        st r1, [r2]      # r1 = 5 -> dmem[2]
        ld r3, [r2]      # must observe the store (no stale read)
    )",
                                 ic);
    Rig rig(spec, program, {0, 0, 9, 0}, {0, 5, 2, 0});
    uint64_t loaded = 99;
    for (int t = 0; t < 24; ++t) {
        rig.sim->evaluate();
        const auto &slot = rig.ifc.commits[0];
        if (rig.sim->value(slot.valid.id) &&
            rig.sim->value(slot.isLoad.id))
            loaded = rig.sim->value(slot.wdata.id);
        rig.sim->tick();
    }
    EXPECT_EQ(loaded, 5u) << "load bypassed an older store";
}

TEST(MemoryOrdering, StoreGoesOnBusAtCommit)
{
    CoreSpec spec = proc::boomLikeSpec();
    const IsaConfig &ic = spec.isaConfig();
    auto program = isa::assemble("st r1, [r2]\n", ic);
    Rig rig(spec, program, {0, 0, 0, 0}, {0, 7, 2, 0});
    int bus_cycle = -1, commit_cycle = -1;
    for (int t = 0; t < 16; ++t) {
        rig.sim->evaluate();
        if (bus_cycle < 0 && rig.sim->value(rig.ifc.memBusValid.id) &&
            rig.sim->value(rig.ifc.memBusAddr.id) == 2)
            bus_cycle = t;
        const auto &slot = rig.ifc.commits[0];
        if (commit_cycle < 0 && rig.sim->value(slot.valid.id) &&
            rig.sim->value(slot.isStore.id))
            commit_cycle = t;
        rig.sim->tick();
    }
    ASSERT_GE(bus_cycle, 0);
    ASSERT_GE(commit_cycle, 0);
    EXPECT_EQ(bus_cycle, commit_cycle)
        << "stores access memory exactly at commit";
}

TEST(BusArbitration, OneLoadPerCycle)
{
    // Two independent ready loads must serialize on the bus.
    CoreSpec spec = proc::simpleOoOSpec();
    const IsaConfig &ic = spec.isaConfig();
    auto program = isa::assemble(R"(
        ld r1, [r2]
        ld r3, [r0]
    )",
                                 ic);
    Rig rig(spec, program, {1, 2, 3, 0}, {0, 0, 1, 0});
    std::vector<int> bus_cycles;
    for (int t = 0; t < 8; ++t) { // before the 8-entry imem wraps
        rig.sim->evaluate();
        if (rig.sim->value(rig.ifc.memBusValid.id))
            bus_cycles.push_back(t);
        rig.sim->tick();
    }
    ASSERT_GE(bus_cycles.size(), 2u);
    EXPECT_NE(bus_cycles[0], bus_cycles[1]);
}

TEST(Exceptions, TrapRedirectsToVectorAndSquashes)
{
    CoreSpec spec = proc::boomLikeSpec();
    const IsaConfig &ic = spec.isaConfig();
    // pc 0: the trapping load; after the trap, control returns to pc 0,
    // where r1 now... stays 1 -> infinite trap loop; the architectural
    // point is that the younger LI (pc 1) never commits.
    auto program = isa::assemble(R"(
        ld r2, [r1]      # addr 1: misaligned, traps
        li r3, 7         # squashed, must never commit
    )",
                                 ic);
    Rig rig(spec, program, {0, 9, 0, 0}, {0, 1, 0, 0});
    bool li_committed = false;
    int traps = 0;
    for (int t = 0; t < 40; ++t) {
        rig.sim->evaluate();
        const auto &slot = rig.ifc.commits[0];
        if (rig.sim->value(slot.valid.id)) {
            if (rig.sim->value(slot.exception.id))
                ++traps;
            if (rig.sim->value(slot.writesReg.id) &&
                rig.sim->value(slot.wdata.id) == 7)
                li_committed = true;
        }
        rig.sim->tick();
    }
    EXPECT_GE(traps, 2) << "trap loop expected at the trap vector";
    EXPECT_FALSE(li_committed)
        << "instruction after a trapping load must be squashed";
}

TEST(Cache, MshrBlocksSecondMissButFillsLine)
{
    CoreSpec spec = proc::simpleOoOSpec(Defense::DoMSpectre);
    const IsaConfig &ic = spec.isaConfig();
    // Two loads to the same address: first misses (slow), second hits
    // the freshly filled line (fast).
    auto program = isa::assemble(R"(
        ld r1, [r2]
        ld r3, [r2]
    )",
                                 ic);
    Rig rig(spec, program, {0, 0, 6, 0}, {0, 0, 2, 0});
    std::vector<int> commits;
    std::vector<uint64_t> values;
    for (int t = 0; t < 30 && commits.size() < 2; ++t) {
        rig.sim->evaluate();
        const auto &slot = rig.ifc.commits[0];
        if (rig.sim->value(slot.valid.id) &&
            rig.sim->value(slot.isLoad.id)) {
            commits.push_back(t);
            values.push_back(rig.sim->value(slot.wdata.id));
        }
        rig.sim->tick();
    }
    ASSERT_EQ(commits.size(), 2u);
    // The second load commits promptly after the first (hit), with a
    // spacing smaller than a full miss round-trip.
    EXPECT_LE(commits[1] - commits[0], 2);
    // Both loads return the same (correct) value.
    EXPECT_EQ(values[0], 6u);
    EXPECT_EQ(values[1], 6u);
}

TEST(ClockGate, NestedGatesCompose)
{
    Circuit circuit;
    Builder b(circuit);
    Sig en1 = b.input("en1", 1);
    Sig en2 = b.input("en2", 1);
    b.pushClockGate(en1);
    Sig outer = b.reg("outer", 4, 0);
    b.connect(outer, b.addConst(outer, 1));
    b.pushClockGate(en2);
    Sig inner = b.reg("inner", 4, 0);
    b.connect(inner, b.addConst(inner, 1));
    b.popClockGate();
    b.popClockGate();
    b.finish();

    Simulator s(circuit);
    auto step = [&](uint64_t e1, uint64_t e2) {
        s.step({{en1.id, e1}, {en2.id, e2}});
    };
    step(1, 1); // both advance
    step(1, 0); // only outer advances
    step(0, 1); // neither advances (outer gate dominates)
    step(0, 0);
    s.evaluate();
    EXPECT_EQ(s.value(outer.id), 2u);
    EXPECT_EQ(s.value(inner.id), 1u);
}

TEST(MemArray, YoungerWritePortWins)
{
    Circuit circuit;
    Builder b(circuit);
    rtl::MemArray &mem = b.memory("m", 4, 8, false);
    Sig addr = b.lit(1, 2);
    mem.write(b.input("we0", 1), addr, b.lit(0x11, 8));
    mem.write(b.input("we1", 1), addr, b.lit(0x22, 8));
    Sig rd = b.named(mem.read(addr), "rd");
    b.finish();

    Simulator s(circuit);
    rtl::NetId we0 = circuit.findByName("we0");
    rtl::NetId we1 = circuit.findByName("we1");
    s.step({{we0, 1}, {we1, 1}});
    s.evaluate();
    EXPECT_EQ(s.value(rd.id), 0x22u) << "later-added port must win";
}

TEST(Presets, ConfigsMatchPaperTable1)
{
    EXPECT_EQ(proc::simpleOoOSpec().ooo.robSize, 4);
    EXPECT_EQ(proc::simpleOoOSpec().ooo.commitWidth, 1);
    EXPECT_FALSE(proc::simpleOoOSpec().ooo.isa.hasMul);
    EXPECT_EQ(proc::rideLiteSpec().ooo.commitWidth, 2);
    EXPECT_TRUE(proc::rideLiteSpec().ooo.isa.hasMul);
    EXPECT_EQ(proc::boomLikeSpec().ooo.robSize, 8);
    EXPECT_TRUE(proc::boomLikeSpec().ooo.isa.hasStore);
    EXPECT_TRUE(proc::boomLikeSpec().ooo.isa.trapOnMisaligned);
    EXPECT_TRUE(proc::boomLikeSpec().ooo.isa.trapOnOutOfRange);
    // The paper's DoM footnote: 8-entry ROB.
    EXPECT_EQ(proc::simpleOoOSpec(Defense::DoMSpectre).ooo.robSize, 8);
    EXPECT_TRUE(proc::simpleOoOSpec(Defense::DoMSpectre).ooo.hasCache);
}

TEST(Presets, KindNames)
{
    EXPECT_STREQ(proc::coreKindName(proc::CoreKind::SimpleOoO),
                 "SimpleOoO");
    EXPECT_STREQ(proc::coreKindName(proc::CoreKind::BoomLike),
                 "BoomLike");
}

TEST(Defense, Names)
{
    using defense::Defense;
    EXPECT_STREQ(defenseName(Defense::NoFwdFuturistic),
                 "NoFwd_futuristic");
    EXPECT_STREQ(defenseName(Defense::DoMSpectre), "DoM_spectre");
    EXPECT_TRUE(isSpectreVariant(Defense::DelaySpectre));
    EXPECT_FALSE(isSpectreVariant(Defense::DelayFuturistic));
    EXPECT_TRUE(isDelayStyle(Defense::DoMSpectre));
    EXPECT_FALSE(isDelayStyle(Defense::NoFwdSpectre));
}

} // namespace
} // namespace csl
